// IRBuilder: the front end of the ttsc toolchain.
//
// Workloads (src/workloads) are written directly against this API, playing
// the role the CHStone C sources + LLVM front end play in the paper. The
// builder appends instructions to an insertion block and provides composed
// helpers for the comparison forms Table I does not provide directly
// (less-than via swapped gt, not-equal via eq + xor, ...).
#pragma once

#include "ir/function.hpp"
#include "ir/module.hpp"

namespace ttsc::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Function& func) : func_(func) {}

  Function& function() { return func_; }

  BlockId create_block(std::string name) { return func_.add_block(std::move(name)); }

  void set_insert_point(BlockId block) { insert_ = block; }
  BlockId insert_point() const { return insert_; }

  /// True when the insertion block already ends in a terminator.
  bool block_terminated() const {
    const Block& b = func_.block(insert_);
    return !b.instrs.empty() && is_terminator(b.instrs.back().op);
  }

  // ---- raw emission ------------------------------------------------------

  Vreg emit(Opcode op, std::vector<Operand> inputs) {
    TTSC_ASSERT(has_result(op), "emit() requires an opcode with a result");
    Vreg dst = func_.new_vreg();
    append(Instr(op, dst, std::move(inputs)));
    return dst;
  }

  /// Emit with an explicit destination (used for loop-carried variables in
  /// the non-SSA IR).
  void emit_into(Vreg dst, Opcode op, std::vector<Operand> inputs) {
    TTSC_ASSERT(has_result(op), "emit_into() requires an opcode with a result");
    append(Instr(op, dst, std::move(inputs)));
  }

  void emit_void(Opcode op, std::vector<Operand> inputs) {
    TTSC_ASSERT(!has_result(op) && !is_terminator(op), "emit_void() misuse");
    append(Instr(op, Vreg(), std::move(inputs)));
  }

  // ---- arithmetic / logic --------------------------------------------------

  Vreg add(Operand a, Operand b) { return emit(Opcode::Add, {a, b}); }
  Vreg sub(Operand a, Operand b) { return emit(Opcode::Sub, {a, b}); }
  Vreg mul(Operand a, Operand b) { return emit(Opcode::Mul, {a, b}); }
  Vreg band(Operand a, Operand b) { return emit(Opcode::And, {a, b}); }
  Vreg bior(Operand a, Operand b) { return emit(Opcode::Ior, {a, b}); }
  Vreg bxor(Operand a, Operand b) { return emit(Opcode::Xor, {a, b}); }
  Vreg shl(Operand a, Operand b) { return emit(Opcode::Shl, {a, b}); }
  Vreg shr(Operand a, Operand b) { return emit(Opcode::Shr, {a, b}); }
  Vreg shru(Operand a, Operand b) { return emit(Opcode::Shru, {a, b}); }
  Vreg sxhw(Operand a) { return emit(Opcode::Sxhw, {a}); }
  Vreg sxqw(Operand a) { return emit(Opcode::Sxqw, {a}); }

  Vreg eq(Operand a, Operand b) { return emit(Opcode::Eq, {a, b}); }
  Vreg gt(Operand a, Operand b) { return emit(Opcode::Gt, {a, b}); }
  Vreg gtu(Operand a, Operand b) { return emit(Opcode::Gtu, {a, b}); }
  Vreg lt(Operand a, Operand b) { return emit(Opcode::Gt, {b, a}); }
  Vreg ltu(Operand a, Operand b) { return emit(Opcode::Gtu, {b, a}); }
  /// a >= b  ==  !(b > a)
  Vreg ge(Operand a, Operand b) { return bxor(gt(b, a), 1); }
  Vreg geu(Operand a, Operand b) { return bxor(gtu(b, a), 1); }
  Vreg le(Operand a, Operand b) { return bxor(gt(a, b), 1); }
  Vreg leu(Operand a, Operand b) { return bxor(gtu(a, b), 1); }
  Vreg ne(Operand a, Operand b) { return bxor(eq(a, b), 1); }
  /// Two's-complement negation.
  Vreg neg(Operand a) { return sub(0, a); }
  /// Bitwise complement.
  Vreg bnot(Operand a) { return bxor(a, -1); }

  Vreg movi(Imm imm) { return emit(Opcode::MovI, {Operand(std::move(imm))}); }
  /// Address of `global` plus a byte offset.
  Vreg ga(const std::string& global, std::int64_t offset = 0) {
    return movi(Imm(global, offset));
  }
  Vreg copy(Operand a) { return emit(Opcode::Copy, {a}); }
  /// (cond != 0) ? a : b.
  Vreg select(Operand cond, Operand a, Operand b) {
    return emit(Opcode::Select, {cond, a, b});
  }
  void copy_into(Vreg dst, Operand a) { emit_into(dst, Opcode::Copy, {a}); }

  // ---- memory --------------------------------------------------------------

  Vreg ldw(Operand addr) { return emit(Opcode::Ldw, {addr}); }
  Vreg ldh(Operand addr) { return emit(Opcode::Ldh, {addr}); }
  Vreg ldhu(Operand addr) { return emit(Opcode::Ldhu, {addr}); }
  Vreg ldq(Operand addr) { return emit(Opcode::Ldq, {addr}); }
  Vreg ldqu(Operand addr) { return emit(Opcode::Ldqu, {addr}); }
  void stw(Operand addr, Operand value) { emit_void(Opcode::Stw, {addr, value}); }
  void sth(Operand addr, Operand value) { emit_void(Opcode::Sth, {addr, value}); }
  void stq(Operand addr, Operand value) { emit_void(Opcode::Stq, {addr, value}); }

  // ---- control flow ----------------------------------------------------------

  void jump(BlockId target) {
    Instr in;
    in.op = Opcode::Jump;
    in.targets = {target};
    append(std::move(in));
  }

  void bnz(Operand cond, BlockId taken, BlockId fallthrough) {
    Instr in;
    in.op = Opcode::Bnz;
    in.inputs = {cond};
    in.targets = {taken, fallthrough};
    append(std::move(in));
  }

  Vreg call(const std::string& callee, std::vector<Operand> args) {
    Instr in;
    in.op = Opcode::Call;
    in.dst = func_.new_vreg();
    in.inputs = std::move(args);
    in.callee = callee;
    Vreg dst = in.dst;
    append(std::move(in));
    return dst;
  }

  void call_void(const std::string& callee, std::vector<Operand> args) {
    Instr in;
    in.op = Opcode::Call;
    in.inputs = std::move(args);
    in.callee = callee;
    append(std::move(in));
  }

  void ret(Operand value) {
    Instr in;
    in.op = Opcode::Ret;
    in.inputs = {value};
    append(std::move(in));
  }

  void ret() {
    Instr in;
    in.op = Opcode::Ret;
    append(std::move(in));
  }

 private:
  void append(Instr in) {
    TTSC_ASSERT(insert_ != kInvalidBlock, "no insertion block set");
    TTSC_ASSERT(!block_terminated(), "appending to a terminated block in " + func_.name());
    func_.block(insert_).instrs.push_back(std::move(in));
  }

  Function& func_;
  BlockId insert_ = kInvalidBlock;
};

}  // namespace ttsc::ir
