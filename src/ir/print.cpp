#include "ir/print.hpp"

#include "support/strings.hpp"

namespace ttsc::ir {

std::string to_string(const Operand& opnd) {
  if (opnd.is_reg()) return format("v%u", opnd.reg.id);
  if (opnd.imm.is_global()) {
    if (opnd.imm.value != 0) return format("@%s+%lld", opnd.imm.global.c_str(),
                                           static_cast<long long>(opnd.imm.value));
    return format("@%s", opnd.imm.global.c_str());
  }
  return format("%lld", static_cast<long long>(opnd.imm.value));
}

std::string to_string(const Instr& in, const Function& f) {
  std::string out;
  if (in.dst.valid()) out += format("v%u = ", in.dst.id);
  out += std::string(opcode_name(in.op));
  if (in.op == Opcode::Call) out += " @" + in.callee;
  for (std::size_t i = 0; i < in.inputs.size(); ++i) {
    out += i == 0 ? " " : ", ";
    out += to_string(in.inputs[i]);
  }
  for (std::size_t i = 0; i < in.targets.size(); ++i) {
    out += (i == 0 && in.inputs.empty()) ? " " : ", ";
    out += format("%%%s", f.block(in.targets[i]).name.c_str());
  }
  return out;
}

std::string to_string(const Function& f) {
  std::string out = format("func %s(%u) {\n", f.name().c_str(), f.num_params());
  for (BlockId id = 0; id < f.num_blocks(); ++id) {
    const Block& b = f.block(id);
    out += format("%s:  ; #%u\n", b.name.c_str(), id);
    for (const Instr& in : b.instrs) out += "  " + to_string(in, f) + "\n";
  }
  out += "}\n";
  return out;
}

std::string to_string(const Module& m) {
  std::string out;
  for (const Global& g : m.globals()) {
    out += format("global %s: %u bytes align %u%s%s\n", g.name.c_str(), g.size, g.align,
                  g.init.empty() ? "" : " (init)", g.read_only ? " const" : "");
  }
  for (const Function& f : m.functions()) out += to_string(f);
  return out;
}

}  // namespace ttsc::ir
