#include "ir/opcode.hpp"

#include "support/assert.hpp"

namespace ttsc::ir {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::And: return "and";
    case Opcode::Eq: return "eq";
    case Opcode::Gt: return "gt";
    case Opcode::Gtu: return "gtu";
    case Opcode::Ior: return "ior";
    case Opcode::Mul: return "mul";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::Shru: return "shru";
    case Opcode::Sub: return "sub";
    case Opcode::Sxhw: return "sxhw";
    case Opcode::Sxqw: return "sxqw";
    case Opcode::Xor: return "xor";
    case Opcode::Ldw: return "ldw";
    case Opcode::Ldh: return "ldh";
    case Opcode::Ldq: return "ldq";
    case Opcode::Ldqu: return "ldqu";
    case Opcode::Ldhu: return "ldhu";
    case Opcode::Stw: return "stw";
    case Opcode::Sth: return "sth";
    case Opcode::Stq: return "stq";
    case Opcode::MovI: return "movi";
    case Opcode::Copy: return "copy";
    case Opcode::Select: return "select";
    case Opcode::Jump: return "jump";
    case Opcode::Bnz: return "bnz";
    case Opcode::Call: return "call";
    case Opcode::Ret: return "ret";
  }
  TTSC_UNREACHABLE("unknown opcode");
}

}  // namespace ttsc::ir
