// Textual dump of IR for debugging and golden tests.
#pragma once

#include <string>

#include "ir/module.hpp"

namespace ttsc::ir {

std::string to_string(const Operand& opnd);
std::string to_string(const Instr& in, const Function& f);
std::string to_string(const Function& f);
std::string to_string(const Module& m);

}  // namespace ttsc::ir
