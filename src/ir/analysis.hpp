// Dataflow and control-flow analyses over the (non-SSA) ttsc IR.
//
// These back the optimizer (DCE, LICM), the register allocator (liveness)
// and the TTA scheduler (dead-result-move elimination requires block
// live-out information on allocated registers; that variant lives in
// codegen and reuses the same algorithm over physical ids).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"

namespace ttsc::ir {

/// Predecessor / successor lists per block.
class Cfg {
 public:
  explicit Cfg(const Function& f);

  const std::vector<BlockId>& succs(BlockId b) const { return succs_[b]; }
  const std::vector<BlockId>& preds(BlockId b) const { return preds_[b]; }

  /// Blocks in reverse post-order from the entry (unreachable blocks absent).
  const std::vector<BlockId>& rpo() const { return rpo_; }

  bool reachable(BlockId b) const { return reachable_[b]; }

 private:
  std::vector<std::vector<BlockId>> succs_;
  std::vector<std::vector<BlockId>> preds_;
  std::vector<BlockId> rpo_;
  std::vector<bool> reachable_;
};

/// Immediate dominators computed by iterative RPO dataflow
/// (Cooper/Harvey/Kennedy).
class Dominators {
 public:
  Dominators(const Function& f, const Cfg& cfg);

  /// Immediate dominator; entry's idom is itself. Unreachable -> kInvalidBlock.
  BlockId idom(BlockId b) const { return idom_[b]; }
  bool dominates(BlockId a, BlockId b) const;

 private:
  std::vector<BlockId> idom_;
  std::vector<std::uint32_t> rpo_index_;
};

/// A natural loop: header plus body blocks (header included).
struct Loop {
  BlockId header = kInvalidBlock;
  std::vector<BlockId> blocks;           // includes header
  std::vector<BlockId> latches;          // sources of back edges
  bool contains(BlockId b) const {
    for (BlockId x : blocks)
      if (x == b) return true;
    return false;
  }
};

/// All natural loops (one per header; multiple back edges merged).
std::vector<Loop> find_loops(const Function& f, const Cfg& cfg, const Dominators& dom);

/// Per-block virtual-register liveness.
class Liveness {
 public:
  Liveness(const Function& f, const Cfg& cfg);

  const std::vector<bool>& live_in(BlockId b) const { return live_in_[b]; }
  const std::vector<bool>& live_out(BlockId b) const { return live_out_[b]; }
  bool live_out(BlockId b, Vreg v) const { return live_out_[b][v.id]; }

 private:
  std::vector<std::vector<bool>> live_in_;
  std::vector<std::vector<bool>> live_out_;
};

/// Registers read by an instruction.
std::vector<Vreg> uses_of(const Instr& in);
/// Register written by an instruction (invalid Vreg if none).
inline Vreg def_of(const Instr& in) { return in.dst.valid() ? in.dst : Vreg(); }

}  // namespace ttsc::ir
