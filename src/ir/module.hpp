// Module: the compilation unit — functions plus global data.
//
// Memory map used by every backend and the interpreter:
//   [0, kDataBase)                  reserved (null-guard + I/O scratch)
//   [kDataBase, ...)                globals, laid out by DataLayout
//   [spill_base, ...)               compiler spill slots (assigned by the
//                                   register allocator; absolute addresses,
//                                   valid because the paper's LSU addresses
//                                   are absolute and all calls are inlined)
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace ttsc::ir {

struct Global {
  std::string name;
  std::uint32_t size = 0;            // bytes
  std::uint32_t align = 4;           // power of two
  std::vector<std::uint8_t> init{};  // empty or exactly `size` bytes
  bool read_only = false;
};

/// Resolved addresses for the module's globals.
class DataLayout {
 public:
  static constexpr std::uint32_t kDataBase = 0x1000;

  DataLayout() = default;

  std::uint32_t address_of(const std::string& global) const {
    auto it = addresses_.find(global);
    TTSC_ASSERT(it != addresses_.end(), "unknown global: " + global);
    return it->second;
  }
  bool has(const std::string& global) const { return addresses_.count(global) != 0; }

  /// First free address after all globals; spill slots start here (rounded).
  std::uint32_t end() const { return end_; }

 private:
  friend class Module;
  std::map<std::string, std::uint32_t> addresses_;
  std::uint32_t end_ = kDataBase;
};

class Module {
 public:
  Function& add_function(std::string name, std::uint32_t num_params) {
    TTSC_ASSERT(find_function(name) == nullptr, "duplicate function: " + name);
    functions_.emplace_back(std::move(name), num_params);
    return functions_.back();
  }

  Function* find_function(const std::string& name) {
    for (Function& f : functions_)
      if (f.name() == name) return &f;
    return nullptr;
  }
  const Function* find_function(const std::string& name) const {
    for (const Function& f : functions_)
      if (f.name() == name) return &f;
    return nullptr;
  }
  Function& function(const std::string& name) {
    Function* f = find_function(name);
    TTSC_ASSERT(f != nullptr, "unknown function: " + name);
    return *f;
  }
  const Function& function(const std::string& name) const {
    const Function* f = find_function(name);
    TTSC_ASSERT(f != nullptr, "unknown function: " + name);
    return *f;
  }

  // A deque keeps Function references stable across add_function calls
  // (front ends hold IRBuilder references while adding helper functions).
  std::deque<Function>& functions() { return functions_; }
  const std::deque<Function>& functions() const { return functions_; }

  void add_global(Global g) {
    TTSC_ASSERT(g.size > 0, "global must have nonzero size: " + g.name);
    TTSC_ASSERT(g.init.empty() || g.init.size() == g.size,
                "global init size mismatch: " + g.name);
    TTSC_ASSERT(find_global(g.name) == nullptr, "duplicate global: " + g.name);
    globals_.push_back(std::move(g));
  }

  const Global* find_global(const std::string& name) const {
    for (const Global& g : globals_)
      if (g.name == name) return &g;
    return nullptr;
  }
  const std::vector<Global>& globals() const { return globals_; }

  /// Compute addresses for all globals, in declaration order.
  DataLayout layout() const {
    DataLayout dl;
    std::uint32_t cursor = DataLayout::kDataBase;
    for (const Global& g : globals_) {
      const std::uint32_t align = g.align == 0 ? 1 : g.align;
      cursor = static_cast<std::uint32_t>((cursor + align - 1) / align * align);
      dl.addresses_[g.name] = cursor;
      cursor += g.size;
    }
    dl.end_ = cursor;
    return dl;
  }

 private:
  std::deque<Function> functions_;
  std::vector<Global> globals_;
};

}  // namespace ttsc::ir
