// Operand kinds of the ttsc IR: virtual registers and immediates.
//
// The IR is not SSA: a virtual register may be redefined (loop induction
// variables are plain redefinitions, there are no phi nodes). The analyses
// in ir/analysis.hpp provide liveness over this form.
#pragma once

#include <cstdint>
#include <string>

#include "support/assert.hpp"

namespace ttsc::ir {

/// A function-local virtual register. v0..v(params-1) hold the incoming
/// arguments on entry.
struct Vreg {
  std::uint32_t id = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr Vreg() = default;
  constexpr explicit Vreg(std::uint32_t id_) : id(id_) {}

  constexpr bool valid() const { return id != kInvalid; }
  constexpr bool operator==(const Vreg&) const = default;
  constexpr auto operator<=>(const Vreg&) const = default;
};

/// An immediate: a literal 32-bit value, optionally the address of a global
/// plus a byte offset. Global addresses are resolved by DataLayout when a
/// module is finalized.
struct Imm {
  std::int64_t value = 0;     // literal, or offset when `global` is set
  std::string global;         // empty for plain literals

  Imm() = default;
  /*implicit*/ Imm(std::int64_t v) : value(v) {}
  Imm(std::string global_name, std::int64_t offset) : value(offset), global(std::move(global_name)) {}

  bool is_global() const { return !global.empty(); }
  bool operator==(const Imm&) const = default;
};

/// An instruction input: either a virtual register or an immediate.
struct Operand {
  enum class Kind : std::uint8_t { Reg, Imm } kind = Kind::Reg;
  Vreg reg;
  Imm imm;

  Operand() = default;
  /*implicit*/ Operand(Vreg r) : kind(Kind::Reg), reg(r) {}
  /*implicit*/ Operand(Imm i) : kind(Kind::Imm), imm(std::move(i)) {}
  /*implicit*/ Operand(std::int64_t v) : kind(Kind::Imm), imm(v) {}
  /*implicit*/ Operand(int v) : kind(Kind::Imm), imm(v) {}

  bool is_reg() const { return kind == Kind::Reg; }
  bool is_imm() const { return kind == Kind::Imm; }
  bool is_literal() const { return is_imm() && !imm.is_global(); }

  Vreg as_reg() const {
    TTSC_ASSERT(is_reg(), "operand is not a register");
    return reg;
  }
  const Imm& as_imm() const {
    TTSC_ASSERT(is_imm(), "operand is not an immediate");
    return imm;
  }
  std::int64_t literal() const {
    TTSC_ASSERT(is_literal(), "operand is not a literal immediate");
    return imm.value;
  }

  bool operator==(const Operand&) const = default;
};

}  // namespace ttsc::ir
