// IR verifier: structural validity checks run after construction and after
// every optimization pass (in debug pipelines).
#pragma once

#include "ir/module.hpp"

namespace ttsc::ir {

/// Throws ttsc::Error describing the first violation found.
void verify(const Function& func);
void verify(const Module& module);

}  // namespace ttsc::ir
