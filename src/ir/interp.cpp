#include "ir/interp.hpp"

#include "support/bits.hpp"

namespace ttsc::ir {

Interpreter::Interpreter(const Module& module, std::size_t mem_size)
    : module_(module), layout_(module.layout()), mem_(mem_size) {
  for (const Global& g : module.globals()) {
    if (!g.init.empty()) mem_.write_block(layout_.address_of(g.name), g.init);
  }
}

std::uint32_t Interpreter::resolve(const Imm& imm) const {
  if (imm.is_global()) {
    return layout_.address_of(imm.global) + static_cast<std::uint32_t>(imm.value);
  }
  return static_cast<std::uint32_t>(imm.value);
}

Interpreter::Result Interpreter::run(const std::string& func,
                                     const std::vector<std::uint32_t>& args) {
  executed_ = 0;
  const std::uint32_t value = eval_call(module_.function(func), args, 0);
  return Result{value, executed_};
}

std::uint32_t Interpreter::eval_call(const Function& f, const std::vector<std::uint32_t>& args,
                                     int depth) {
  if (depth > 64) throw Error("interpreter: call depth exceeded in " + f.name());
  TTSC_ASSERT(args.size() == f.num_params(), "argument count mismatch calling " + f.name());

  std::vector<std::uint32_t> regs(f.num_vregs(), 0);
  for (std::size_t i = 0; i < args.size(); ++i) regs[i] = args[i];

  auto value_of = [&](const Operand& opnd) -> std::uint32_t {
    return opnd.is_reg() ? regs[opnd.reg.id] : resolve(opnd.imm);
  };

  BlockId bb = Function::kEntry;
  while (true) {
    const Block& block = f.block(bb);
    for (std::size_t pc = 0; pc < block.instrs.size(); ++pc) {
      const Instr& in = block.instrs[pc];
      if (++executed_ > fuel_) throw Error("interpreter: fuel exhausted in " + f.name());
      switch (in.op) {
        case Opcode::Add: regs[in.dst.id] = value_of(in.inputs[0]) + value_of(in.inputs[1]); break;
        case Opcode::Sub: regs[in.dst.id] = value_of(in.inputs[0]) - value_of(in.inputs[1]); break;
        case Opcode::Mul: regs[in.dst.id] = value_of(in.inputs[0]) * value_of(in.inputs[1]); break;
        case Opcode::And: regs[in.dst.id] = value_of(in.inputs[0]) & value_of(in.inputs[1]); break;
        case Opcode::Ior: regs[in.dst.id] = value_of(in.inputs[0]) | value_of(in.inputs[1]); break;
        case Opcode::Xor: regs[in.dst.id] = value_of(in.inputs[0]) ^ value_of(in.inputs[1]); break;
        case Opcode::Shl: regs[in.dst.id] = value_of(in.inputs[0]) << (value_of(in.inputs[1]) & 31); break;
        case Opcode::Shru:
          regs[in.dst.id] = value_of(in.inputs[0]) >> (value_of(in.inputs[1]) & 31);
          break;
        case Opcode::Shr:
          regs[in.dst.id] = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(value_of(in.inputs[0])) >>
              (value_of(in.inputs[1]) & 31));
          break;
        case Opcode::Eq:
          regs[in.dst.id] = value_of(in.inputs[0]) == value_of(in.inputs[1]) ? 1u : 0u;
          break;
        case Opcode::Gt:
          regs[in.dst.id] = static_cast<std::int32_t>(value_of(in.inputs[0])) >
                                    static_cast<std::int32_t>(value_of(in.inputs[1]))
                                ? 1u
                                : 0u;
          break;
        case Opcode::Gtu:
          regs[in.dst.id] = value_of(in.inputs[0]) > value_of(in.inputs[1]) ? 1u : 0u;
          break;
        case Opcode::Sxhw:
          regs[in.dst.id] = static_cast<std::uint32_t>(sign_extend(value_of(in.inputs[0]), 16));
          break;
        case Opcode::Sxqw:
          regs[in.dst.id] = static_cast<std::uint32_t>(sign_extend(value_of(in.inputs[0]), 8));
          break;
        case Opcode::Ldw: regs[in.dst.id] = mem_.load32(value_of(in.inputs[0])); break;
        case Opcode::Ldh:
          regs[in.dst.id] =
              static_cast<std::uint32_t>(sign_extend(mem_.load16(value_of(in.inputs[0])), 16));
          break;
        case Opcode::Ldhu: regs[in.dst.id] = mem_.load16(value_of(in.inputs[0])); break;
        case Opcode::Ldq:
          regs[in.dst.id] =
              static_cast<std::uint32_t>(sign_extend(mem_.load8(value_of(in.inputs[0])), 8));
          break;
        case Opcode::Ldqu: regs[in.dst.id] = mem_.load8(value_of(in.inputs[0])); break;
        case Opcode::Stw: mem_.store32(value_of(in.inputs[0]),
                                       value_of(in.inputs[1])); break;
        case Opcode::Sth:
          mem_.store16(value_of(in.inputs[0]), static_cast<std::uint16_t>(value_of(in.inputs[1])));
          break;
        case Opcode::Stq:
          mem_.store8(value_of(in.inputs[0]), static_cast<std::uint8_t>(value_of(in.inputs[1])));
          break;
        case Opcode::MovI: regs[in.dst.id] = resolve(in.inputs[0].as_imm()); break;
        case Opcode::Copy: regs[in.dst.id] = value_of(in.inputs[0]); break;
        case Opcode::Select:
          regs[in.dst.id] =
              value_of(in.inputs[0]) != 0 ? value_of(in.inputs[1]) : value_of(in.inputs[2]);
          break;
        case Opcode::Jump: bb = in.targets[0]; goto next_block;
        case Opcode::Bnz: bb = value_of(in.inputs[0]) != 0 ? in.targets[0] : in.targets[1];
          goto next_block;
        case Opcode::Call: {
          std::vector<std::uint32_t> call_args;
          call_args.reserve(in.inputs.size());
          for (const Operand& a : in.inputs) call_args.push_back(value_of(a));
          const std::uint32_t rv = eval_call(module_.function(in.callee), call_args, depth + 1);
          if (in.dst.valid()) regs[in.dst.id] = rv;
          break;
        }
        case Opcode::Ret: return in.inputs.empty() ? 0u : value_of(in.inputs[0]);
      }
    }
    TTSC_UNREACHABLE("block fell through without terminator");
  next_block:;
  }
}

}  // namespace ttsc::ir
