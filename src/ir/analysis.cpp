#include "ir/analysis.hpp"

#include <algorithm>

namespace ttsc::ir {

Cfg::Cfg(const Function& f) {
  const std::uint32_t n = f.num_blocks();
  succs_.resize(n);
  preds_.resize(n);
  reachable_.assign(n, false);
  for (BlockId b = 0; b < n; ++b) {
    const Instr& term = f.block(b).terminator();
    for (BlockId t : term.targets) {
      succs_[b].push_back(t);
    }
  }
  // Deduplicate successor edges (bnz with identical targets) for preds.
  for (BlockId b = 0; b < n; ++b) {
    std::vector<BlockId> uniq = succs_[b];
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (BlockId t : uniq) preds_[t].push_back(b);
  }
  // Depth-first post-order from entry, then reverse.
  std::vector<BlockId> post;
  std::vector<std::uint8_t> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(Function::kEntry, 0);
  state[Function::kEntry] = 1;
  reachable_[Function::kEntry] = true;
  while (!stack.empty()) {
    auto& [b, idx] = stack.back();
    if (idx < succs_[b].size()) {
      const BlockId next = succs_[b][idx++];
      if (state[next] == 0) {
        state[next] = 1;
        reachable_[next] = true;
        stack.emplace_back(next, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo_.assign(post.rbegin(), post.rend());
}

Dominators::Dominators(const Function& f, const Cfg& cfg) {
  const std::uint32_t n = f.num_blocks();
  idom_.assign(n, kInvalidBlock);
  rpo_index_.assign(n, 0);
  const std::vector<BlockId>& rpo = cfg.rpo();
  for (std::uint32_t i = 0; i < rpo.size(); ++i) rpo_index_[rpo[i]] = i;
  idom_[Function::kEntry] = Function::kEntry;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index_[a] > rpo_index_[b]) a = idom_[a];
      while (rpo_index_[b] > rpo_index_[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == Function::kEntry) continue;
      BlockId new_idom = kInvalidBlock;
      for (BlockId p : cfg.preds(b)) {
        if (!cfg.reachable(p) || idom_[p] == kInvalidBlock) continue;
        new_idom = new_idom == kInvalidBlock ? p : intersect(new_idom, p);
      }
      if (new_idom != kInvalidBlock && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }
}

bool Dominators::dominates(BlockId a, BlockId b) const {
  if (idom_[b] == kInvalidBlock) return false;  // unreachable
  BlockId cur = b;
  while (true) {
    if (cur == a) return true;
    if (cur == Function::kEntry) return false;
    cur = idom_[cur];
  }
}

std::vector<Loop> find_loops(const Function& f, const Cfg& cfg, const Dominators& dom) {
  std::vector<Loop> loops;
  const std::uint32_t n = f.num_blocks();
  // A back edge latch->header exists when header dominates latch.
  for (BlockId header = 0; header < n; ++header) {
    if (!cfg.reachable(header)) continue;
    std::vector<BlockId> latches;
    for (BlockId p : cfg.preds(header)) {
      if (cfg.reachable(p) && dom.dominates(header, p)) latches.push_back(p);
    }
    if (latches.empty()) continue;
    // Collect the loop body: blocks that can reach a latch without passing
    // through the header (standard natural-loop construction).
    Loop loop;
    loop.header = header;
    loop.latches = latches;
    std::vector<bool> in_loop(n, false);
    in_loop[header] = true;
    std::vector<BlockId> work = latches;
    for (BlockId l : latches) in_loop[l] = true;
    while (!work.empty()) {
      const BlockId b = work.back();
      work.pop_back();
      if (b == header) continue;  // the walk stops at the header
      for (BlockId p : cfg.preds(b)) {
        if (cfg.reachable(p) && !in_loop[p]) {
          in_loop[p] = true;
          work.push_back(p);
        }
      }
    }
    for (BlockId b = 0; b < n; ++b)
      if (in_loop[b]) loop.blocks.push_back(b);
    loops.push_back(std::move(loop));
  }
  return loops;
}

std::vector<Vreg> uses_of(const Instr& in) {
  std::vector<Vreg> uses;
  for (const Operand& opnd : in.inputs) {
    if (opnd.is_reg()) uses.push_back(opnd.reg);
  }
  return uses;
}

Liveness::Liveness(const Function& f, const Cfg& cfg) {
  const std::uint32_t nb = f.num_blocks();
  const std::uint32_t nv = f.num_vregs();
  live_in_.assign(nb, std::vector<bool>(nv, false));
  live_out_.assign(nb, std::vector<bool>(nv, false));

  // Per-block gen (upward-exposed uses) and kill (defs).
  std::vector<std::vector<bool>> gen(nb, std::vector<bool>(nv, false));
  std::vector<std::vector<bool>> kill(nb, std::vector<bool>(nv, false));
  for (BlockId b = 0; b < nb; ++b) {
    for (const Instr& in : f.block(b).instrs) {
      for (Vreg u : uses_of(in)) {
        if (!kill[b][u.id]) gen[b][u.id] = true;
      }
      if (in.dst.valid()) kill[b][in.dst.id] = true;
    }
  }

  // Iterate to fixpoint over reverse RPO (fast convergence for reducible CFGs).
  std::vector<BlockId> order(cfg.rpo().rbegin(), cfg.rpo().rend());
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : order) {
      std::vector<bool>& out = live_out_[b];
      for (BlockId s : cfg.succs(b)) {
        const std::vector<bool>& sin = live_in_[s];
        for (std::uint32_t v = 0; v < nv; ++v) {
          if (sin[v] && !out[v]) {
            out[v] = true;
            changed = true;
          }
        }
      }
      std::vector<bool>& in = live_in_[b];
      for (std::uint32_t v = 0; v < nv; ++v) {
        const bool want = gen[b][v] || (out[v] && !kill[b][v]);
        if (want && !in[v]) {
          in[v] = true;
          changed = true;
        }
      }
    }
  }
  // Function parameters are live-in to the entry by definition; model them
  // as gen so allocators reserve their intervals even if unused.
  for (std::uint32_t p = 0; p < f.num_params(); ++p) live_in_[Function::kEntry][p] = true;
}

}  // namespace ttsc::ir
