// Function and basic block containers of the ttsc IR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instr.hpp"

namespace ttsc::ir {

struct Block {
  std::string name;
  std::vector<Instr> instrs;

  /// The terminator is the last instruction; the verifier enforces that a
  /// block has exactly one terminator and that it is last.
  const Instr& terminator() const {
    TTSC_ASSERT(!instrs.empty(), "block has no terminator");
    return instrs.back();
  }
  Instr& terminator() {
    TTSC_ASSERT(!instrs.empty(), "block has no terminator");
    return instrs.back();
  }
};

class Function {
 public:
  Function(std::string name, std::uint32_t num_params)
      : name_(std::move(name)), num_params_(num_params), next_vreg_(num_params) {}

  const std::string& name() const { return name_; }
  std::uint32_t num_params() const { return num_params_; }

  /// Incoming argument `i` lives in vreg i on entry.
  Vreg param(std::uint32_t i) const {
    TTSC_ASSERT(i < num_params_, "param index out of range");
    return Vreg(i);
  }

  Vreg new_vreg() { return Vreg(next_vreg_++); }
  std::uint32_t num_vregs() const { return next_vreg_; }
  /// Used by passes that renumber registers (e.g. the inliner).
  void set_num_vregs(std::uint32_t n) { next_vreg_ = n; }

  BlockId add_block(std::string block_name) {
    blocks_.push_back(Block{std::move(block_name), {}});
    return static_cast<BlockId>(blocks_.size() - 1);
  }

  Block& block(BlockId id) {
    TTSC_ASSERT(id < blocks_.size(), "block id out of range");
    return blocks_[id];
  }
  const Block& block(BlockId id) const {
    TTSC_ASSERT(id < blocks_.size(), "block id out of range");
    return blocks_[id];
  }

  std::vector<Block>& blocks() { return blocks_; }
  const std::vector<Block>& blocks() const { return blocks_; }
  std::uint32_t num_blocks() const { return static_cast<std::uint32_t>(blocks_.size()); }

  static constexpr BlockId kEntry = 0;

  /// Total instruction count over all blocks (used in reports/tests).
  std::size_t num_instrs() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.instrs.size();
    return n;
  }

 private:
  std::string name_;
  std::uint32_t num_params_;
  std::uint32_t next_vreg_;
  std::vector<Block> blocks_;
};

}  // namespace ttsc::ir
