// Byte-addressable little-endian memory shared by the IR interpreter and
// every instruction-set simulator, so all backends agree on data semantics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace ttsc::ir {

class Memory {
 public:
  explicit Memory(std::size_t size) : bytes_(size, 0) {}

  std::size_t size() const { return bytes_.size(); }

  std::uint8_t load8(std::uint32_t addr) const {
    check(addr, 1);
    return bytes_[addr];
  }
  std::uint16_t load16(std::uint32_t addr) const {
    check(addr, 2);
    return static_cast<std::uint16_t>(bytes_[addr] | (bytes_[addr + 1] << 8));
  }
  std::uint32_t load32(std::uint32_t addr) const {
    check(addr, 4);
    return static_cast<std::uint32_t>(bytes_[addr]) |
           (static_cast<std::uint32_t>(bytes_[addr + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes_[addr + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes_[addr + 3]) << 24);
  }

  void store8(std::uint32_t addr, std::uint8_t value) {
    check(addr, 1);
    bytes_[addr] = value;
  }
  void store16(std::uint32_t addr, std::uint16_t value) {
    check(addr, 2);
    bytes_[addr] = static_cast<std::uint8_t>(value);
    bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
  }
  void store32(std::uint32_t addr, std::uint32_t value) {
    check(addr, 4);
    bytes_[addr] = static_cast<std::uint8_t>(value);
    bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    bytes_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
    bytes_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
  }

  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data) {
    check(addr, static_cast<std::uint32_t>(data.size()));
    for (std::size_t i = 0; i < data.size(); ++i) bytes_[addr + i] = data[i];
  }

  std::span<const std::uint8_t> view(std::uint32_t addr, std::uint32_t len) const {
    check(addr, len);
    return {bytes_.data() + addr, len};
  }

  /// Whole-image comparison; used by the differential tests to assert two
  /// simulations left bit-identical memory.
  bool operator==(const Memory&) const = default;

  /// FNV-1a over a range; used by workloads/tests to compare backend results.
  std::uint64_t checksum(std::uint32_t addr, std::uint32_t len) const {
    check(addr, len);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint32_t i = 0; i < len; ++i) {
      h ^= bytes_[addr + i];
      h *= 0x100000001b3ull;
    }
    return h;
  }

 private:
  void check(std::uint32_t addr, std::uint32_t len) const {
    TTSC_ASSERT(static_cast<std::uint64_t>(addr) + len <= bytes_.size(),
                format("memory access out of range: addr=0x%x len=%u size=%zu", addr, len,
                       bytes_.size()));
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace ttsc::ir
