// Reference interpreter: the golden functional model.
//
// Every backend (scalar, VLIW, TTA) must produce the same return value and
// the same final memory contents as this interpreter on every workload;
// the end-to-end tests assert exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/memory.hpp"
#include "ir/module.hpp"

namespace ttsc::ir {

class Interpreter {
 public:
  struct Result {
    std::uint32_t value = 0;
    std::uint64_t instrs_executed = 0;
  };

  explicit Interpreter(const Module& module, std::size_t mem_size = 1u << 20);

  /// Execute `func` with the given arguments. Throws ttsc::Error if the
  /// fuel limit is exceeded (runaway loop in a workload).
  Result run(const std::string& func, const std::vector<std::uint32_t>& args);

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }
  const DataLayout& layout() const { return layout_; }

  void set_fuel(std::uint64_t fuel) { fuel_ = fuel; }

 private:
  std::uint32_t eval_call(const Function& f, const std::vector<std::uint32_t>& args, int depth);
  std::uint32_t resolve(const Imm& imm) const;

  const Module& module_;
  DataLayout layout_;
  Memory mem_;
  std::uint64_t fuel_ = 2'000'000'000ull;
  std::uint64_t executed_ = 0;
};

}  // namespace ttsc::ir
