#include "ir/verify.hpp"

#include "support/strings.hpp"

namespace ttsc::ir {

namespace {

[[noreturn]] void fail(const Function& f, const std::string& what) {
  throw Error(format("IR verification failed in '%s': %s", f.name().c_str(), what.c_str()));
}

void check_operand_counts(const Function& f, const Instr& in) {
  const int want = num_inputs(in.op);
  if (want >= 0 && static_cast<int>(in.inputs.size()) != want) {
    fail(f, format("%s expects %d inputs, got %zu", std::string(opcode_name(in.op)).c_str(),
                   want, in.inputs.size()));
  }
  if (in.op == Opcode::Ret && in.inputs.size() > 1) fail(f, "ret takes at most one input");
}

}  // namespace

void verify(const Function& f) {
  if (f.num_blocks() == 0) fail(f, "function has no blocks");
  for (BlockId id = 0; id < f.num_blocks(); ++id) {
    const Block& b = f.block(id);
    if (b.instrs.empty()) fail(f, format("block %u (%s) is empty", id, b.name.c_str()));
    for (std::size_t i = 0; i < b.instrs.size(); ++i) {
      const Instr& in = b.instrs[i];
      const bool last = i + 1 == b.instrs.size();
      if (is_terminator(in.op) != last) {
        fail(f, format("block %u (%s): terminator placement at instr %zu", id, b.name.c_str(), i));
      }
      check_operand_counts(f, in);
      if (has_result(in.op) && !in.dst.valid()) {
        fail(f, format("%s must define a result", std::string(opcode_name(in.op)).c_str()));
      }
      if (!has_result(in.op) && in.op != Opcode::Call && in.dst.valid()) {
        fail(f, format("%s must not define a result", std::string(opcode_name(in.op)).c_str()));
      }
      if (in.dst.valid() && in.dst.id >= f.num_vregs()) fail(f, "dst vreg out of range");
      for (const Operand& opnd : in.inputs) {
        if (opnd.is_reg()) {
          if (!opnd.reg.valid() || opnd.reg.id >= f.num_vregs()) fail(f, "input vreg out of range");
        }
      }
      if (in.op == Opcode::MovI && !in.inputs[0].is_imm()) fail(f, "movi input must be immediate");
      // Branch target arity and range.
      const std::size_t want_targets = in.op == Opcode::Jump ? 1 : in.op == Opcode::Bnz ? 2 : 0;
      if (in.targets.size() != want_targets) {
        fail(f, format("%s has %zu targets, expected %zu",
                       std::string(opcode_name(in.op)).c_str(), in.targets.size(), want_targets));
      }
      for (BlockId t : in.targets) {
        if (t >= f.num_blocks()) fail(f, "branch target out of range");
      }
      if (in.op == Opcode::Call && in.callee.empty()) fail(f, "call without callee");
    }
  }
}

void verify(const Module& m) {
  for (const Function& f : m.functions()) {
    verify(f);
    // Calls must name existing functions with matching arity.
    for (const Block& b : f.blocks()) {
      for (const Instr& in : b.instrs) {
        if (in.op != Opcode::Call) continue;
        const Function* callee = m.find_function(in.callee);
        if (callee == nullptr) {
          throw Error(format("call to unknown function '%s' in '%s'", in.callee.c_str(),
                             f.name().c_str()));
        }
        if (callee->num_params() != in.inputs.size()) {
          throw Error(format("call to '%s' with %zu args, expected %u", in.callee.c_str(),
                             in.inputs.size(), callee->num_params()));
        }
      }
    }
  }
  // Immediate global references must resolve.
  const DataLayout dl = m.layout();
  for (const Function& f : m.functions()) {
    for (const Block& b : f.blocks()) {
      for (const Instr& in : b.instrs) {
        for (const Operand& opnd : in.inputs) {
          if (opnd.is_imm() && opnd.imm.is_global() && !dl.has(opnd.imm.global)) {
            throw Error(format("reference to unknown global '%s' in '%s'",
                               opnd.imm.global.c_str(), f.name().c_str()));
          }
        }
      }
    }
  }
}

}  // namespace ttsc::ir
