// IR instruction: opcode, optional destination register, inputs, branch
// targets, and (for Call) the callee name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hpp"
#include "ir/value.hpp"

namespace ttsc::ir {

/// Index of a basic block within its function.
using BlockId = std::uint32_t;
constexpr BlockId kInvalidBlock = 0xffffffffu;

struct Instr {
  Opcode op = Opcode::MovI;
  Vreg dst;                        // invalid when the opcode has no result
  std::vector<Operand> inputs;     // operand order per ir/opcode.hpp comments
  std::vector<BlockId> targets;    // Jump: {target}; Bnz: {taken, fallthrough}
  std::string callee;              // Call only

  Instr() = default;
  Instr(Opcode op_, Vreg dst_, std::vector<Operand> inputs_)
      : op(op_), dst(dst_), inputs(std::move(inputs_)) {}

  bool has_dst() const { return dst.valid(); }
};

}  // namespace ttsc::ir
