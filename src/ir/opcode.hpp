// Opcode set of the ttsc intermediate representation.
//
// The compute opcodes mirror Table I of the paper exactly: the minimal set
// of 32-bit integer operations the TCE C compiler requires, plus integer
// multiplication. Memory operations address absolute byte addresses.
// Control flow (jump / conditional branch / call / return) and the two
// pseudo operations (MovI, Copy) complete the set; pseudo ops are lowered
// or folded before scheduling.
#pragma once

#include <cstdint>
#include <string_view>

namespace ttsc::ir {

enum class Opcode : std::uint8_t {
  // ALU (Table I, left column).
  Add,   // dst = a + b
  And,   // dst = a & b
  Eq,    // dst = (a == b) ? 1 : 0
  Gt,    // dst = (signed a > signed b) ? 1 : 0
  Gtu,   // dst = (unsigned a > unsigned b) ? 1 : 0
  Ior,   // dst = a | b
  Mul,   // dst = low 32 bits of a * b
  Shl,   // dst = a << (b & 31)
  Shr,   // dst = signed a >> (b & 31)
  Shru,  // dst = unsigned a >> (b & 31)
  Sub,   // dst = a - b
  Sxhw,  // dst = sign-extend low 16 bits of a
  Sxqw,  // dst = sign-extend low 8 bits of a
  Xor,   // dst = a ^ b

  // LSU (Table I, right column). Address operand is a byte address.
  Ldw,   // dst = mem32[a + offset-imm]
  Ldh,   // dst = sext16(mem16[a])
  Ldq,   // dst = sext8(mem8[a])
  Ldqu,  // dst = zext8(mem8[a])
  Ldhu,  // dst = zext16(mem16[a])
  Stw,   // mem32[a] = b
  Sth,   // mem16[a] = low16(b)
  Stq,   // mem8[a] = low8(b)

  // Pseudo operations.
  MovI,    // dst = immediate (possibly a global address)
  Copy,    // dst = a
  Select,  // dst = (a != 0) ? b : c — lowered to guarded moves on machines
           // with predication support, expanded to mask arithmetic elsewhere

  // Control flow (block terminators except Call).
  Jump,  // unconditional branch to targets[0]
  Bnz,   // if (a != 0) goto targets[0] else goto targets[1]
  Call,  // dst? = callee(operands...)
  Ret,   // return operand[0] if present
};

constexpr int kNumOpcodes = static_cast<int>(Opcode::Ret) + 1;

std::string_view opcode_name(Opcode op);

constexpr bool is_load(Opcode op) {
  return op == Opcode::Ldw || op == Opcode::Ldh || op == Opcode::Ldq || op == Opcode::Ldqu ||
         op == Opcode::Ldhu;
}

constexpr bool is_store(Opcode op) {
  return op == Opcode::Stw || op == Opcode::Sth || op == Opcode::Stq;
}

constexpr bool is_memory(Opcode op) { return is_load(op) || is_store(op); }

constexpr bool is_terminator(Opcode op) {
  return op == Opcode::Jump || op == Opcode::Bnz || op == Opcode::Ret;
}

constexpr bool is_branch(Opcode op) { return op == Opcode::Jump || op == Opcode::Bnz; }

/// Operations whose result only depends on the operands (candidates for
/// constant folding, CSE and LICM).
constexpr bool is_pure(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::And:
    case Opcode::Eq:
    case Opcode::Gt:
    case Opcode::Gtu:
    case Opcode::Ior:
    case Opcode::Mul:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shru:
    case Opcode::Sub:
    case Opcode::Sxhw:
    case Opcode::Sxqw:
    case Opcode::Xor:
    case Opcode::MovI:
    case Opcode::Copy:
    case Opcode::Select:
      return true;
    default:
      return false;
  }
}

constexpr bool is_commutative(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::And:
    case Opcode::Eq:
    case Opcode::Ior:
    case Opcode::Mul:
    case Opcode::Xor:
      return true;
    default:
      return false;
  }
}

/// Number of register/immediate inputs the opcode consumes.
/// Call and Ret are variadic and return -1.
constexpr int num_inputs(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::And:
    case Opcode::Eq:
    case Opcode::Gt:
    case Opcode::Gtu:
    case Opcode::Ior:
    case Opcode::Mul:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shru:
    case Opcode::Sub:
    case Opcode::Xor:
      return 2;
    case Opcode::Sxhw:
    case Opcode::Sxqw:
    case Opcode::Copy:
      return 1;
    case Opcode::Select:
      return 3;
    case Opcode::Ldw:
    case Opcode::Ldh:
    case Opcode::Ldq:
    case Opcode::Ldqu:
    case Opcode::Ldhu:
      return 1;  // address
    case Opcode::Stw:
    case Opcode::Sth:
    case Opcode::Stq:
      return 2;  // address, value
    case Opcode::MovI:
      return 1;  // the immediate operand
    case Opcode::Jump:
      return 0;
    case Opcode::Bnz:
      return 1;  // condition
    case Opcode::Call:
    case Opcode::Ret:
      return -1;
  }
  return -1;
}

constexpr bool has_result(Opcode op) {
  return !is_store(op) && !is_terminator(op) && op != Opcode::Call;
}

}  // namespace ttsc::ir
