// Hierarchical metrics registry for the toolchain.
//
// A Registry holds named counters (monotonic sums), gauges (merged by max)
// and power-of-two-bucket histograms. Names are dot-hierarchical by
// convention ("tta.schedule.bypassed_operands", "opt.dce.instrs_removed").
//
// Concurrency and determinism contract:
//
//  * Every mutator takes the registry mutex, so a Registry may be shared by
//    all workers of a parallel sweep. Hot paths must NOT bump a shared
//    registry per event: instrumented code accumulates into local state (a
//    stack-allocated Registry shard, or a plain stats struct like
//    tta::TtaScheduleStats) and folds it in with ONE merge() call at stage
//    end. The experiment driver follows this pattern — one merge per grid
//    cell — so the shared lock is touched O(cells), not O(instructions).
//  * All merge operations commute (counter/histogram addition, gauge max),
//    so a sweep's merged registry is byte-identical for any thread count or
//    interleaving as long as the same set of shards is produced. This is
//    the determinism contract tests/obs_test.cpp locks at 1/2/8 threads.
//  * A disabled pipeline passes `nullptr` wherever a `Registry*` is
//    accepted; instrumentation sites check the pointer once per stage, so
//    the disabled cost is a branch (never a lock).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace ttsc::obs {

class JsonWriter;

/// Power-of-two-bucket histogram: bucket i counts values whose bit width is
/// i, i.e. bucket 0 holds value 0, bucket i (i >= 1) holds [2^(i-1), 2^i).
struct Histogram {
  static constexpr int kBuckets = 65;
  std::uint64_t buckets[kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = UINT64_MAX;
  std::uint64_t max = 0;

  static int bucket_of(std::uint64_t v);
  void observe(std::uint64_t v);
  void merge(const Histogram& other);
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Bump counter `name` by `delta` (created at zero on first use).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Raise gauge `name` to at least `value` (merge semantics: max).
  void gauge_max(std::string_view name, std::uint64_t value);
  /// Record one sample into histogram `name`.
  void observe(std::string_view name, std::uint64_t value);

  /// Fold `other` into this registry (commutative; see contract above).
  void merge(const Registry& other);

  std::uint64_t counter(std::string_view name) const;
  std::uint64_t gauge(std::string_view name) const;

  /// Sorted snapshots (std::map keeps names ordered — deterministic).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, std::uint64_t> gauges() const;
  std::map<std::string, Histogram> histograms() const;

  bool empty() const;

  /// Human-readable dump (the `--metrics` diagnostics section).
  std::string render() const;

  /// Deterministic JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,buckets:[[bit,count],...]}}}
  /// appended as one value.
  void write_json(JsonWriter& w) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, std::uint64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Null-safe helpers for instrumentation sites.
inline void add(Registry* r, std::string_view name, std::uint64_t delta = 1) {
  if (r != nullptr) r->add(name, delta);
}
inline void observe(Registry* r, std::string_view name, std::uint64_t value) {
  if (r != nullptr) r->observe(name, value);
}
inline void gauge_max(Registry* r, std::string_view name, std::uint64_t value) {
  if (r != nullptr) r->gauge_max(name, value);
}

}  // namespace ttsc::obs
