#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace ttsc::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level value
  if (stack_.back() == Frame::Object) {
    TTSC_ASSERT(key_pending_, "JsonWriter: value inside object without key()");
    key_pending_ = false;
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

void JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::Object);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  TTSC_ASSERT(!stack_.empty() && stack_.back() == Frame::Object && !key_pending_,
              "JsonWriter: unbalanced end_object");
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
}

void JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::Array);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  TTSC_ASSERT(!stack_.empty() && stack_.back() == Frame::Array,
              "JsonWriter: unbalanced end_array");
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
}

void JsonWriter::key(std::string_view k) {
  TTSC_ASSERT(!stack_.empty() && stack_.back() == Frame::Object && !key_pending_,
              "JsonWriter: key() outside object");
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += format("%llu", static_cast<unsigned long long>(v));
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += format("%lld", static_cast<long long>(v));
}

void JsonWriter::value(double v) {
  before_value();
  out_ += format("%.10g", v);
}

void JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::raw_value(std::string_view json) {
  before_value();
  out_ += json;
}

const JsonValue* JsonValue::find(std::string_view k) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [name, v] : members) {
    if (name == k) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view k) const {
  const JsonValue* v = find(k);
  if (v == nullptr) throw Error("json: missing member \"" + std::string(k) + "\"");
  return *v;
}

std::uint64_t JsonValue::as_uint() const {
  if (kind != Kind::Number) throw Error("json: expected number");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') throw Error("json: expected integer, got " + text);
  return static_cast<std::uint64_t>(v);
}

double JsonValue::as_double() const {
  if (kind != Kind::Number) throw Error("json: expected number");
  return number;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::String) throw Error("json: expected string");
  return text;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error(format("json parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(format("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.text = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode (the writer only emits \u for control characters,
          // but accept the full BMP for robustness).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.text = std::string(text_.substr(start, pos_ - start));
    v.number = std::strtod(v.text.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace ttsc::obs
