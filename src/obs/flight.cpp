#include "obs/flight.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/assert.hpp"

namespace ttsc::obs {

FlightRecorder::FlightRecorder(const mach::Machine& machine, std::size_t capacity)
    : machine_(&machine) {
  TTSC_ASSERT(capacity > 0, "flight recorder capacity must be positive");
  storage_.resize(capacity);
}

void FlightRecorder::clear() {
  head_ = 0;
  count_ = 0;
  total_events_ = 0;
  dropped_events_ = 0;
  dropped_cycles_ = 0;
}

void FlightRecorder::evict_oldest_cycle() {
  // Drop the whole oldest cycle so the window still starts at a cycle
  // boundary. The pathological case — a single cycle producing more events
  // than the whole ring — degenerates to partially dropping the current
  // cycle, which the dropped_events counter makes visible.
  const std::uint64_t oldest = storage_[head_].cycle;
  while (count_ > 0 && storage_[head_].cycle == oldest) {
    head_ = (head_ + 1) % storage_.size();
    --count_;
    ++dropped_events_;
  }
  ++dropped_cycles_;
}

void FlightRecorder::push(const FlightEvent& ev) {
  ++total_events_;
  if (count_ == storage_.size()) evict_oldest_cycle();
  storage_[(head_ + count_) % storage_.size()] = ev;
  ++count_;
}

void FlightRecorder::on_move(std::uint64_t cycle, int bus) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::Move;
  ev.unit = static_cast<std::int16_t>(bus);
  push(ev);
}

void FlightRecorder::on_guard_squash(std::uint64_t cycle, int bus) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::GuardSquash;
  ev.unit = static_cast<std::int16_t>(bus);
  push(ev);
}

void FlightRecorder::on_trigger(std::uint64_t cycle, int fu, ir::Opcode op) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::Trigger;
  ev.unit = static_cast<std::int16_t>(fu);
  ev.value = static_cast<std::uint32_t>(op);
  push(ev);
}

void FlightRecorder::on_rf_read(std::uint64_t cycle, int rf, int index) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::RfRead;
  ev.unit = static_cast<std::int16_t>(rf);
  ev.index = index;
  push(ev);
}

void FlightRecorder::on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::RfWrite;
  ev.unit = static_cast<std::int16_t>(rf);
  ev.index = index;
  ev.value = value;
  push(ev);
}

void FlightRecorder::on_stall(std::uint64_t cycle, std::uint64_t stall_cycles) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::Stall;
  ev.value = static_cast<std::uint32_t>(stall_cycles);
  push(ev);
}

void FlightRecorder::on_block_enter(std::uint64_t cycle, std::uint32_t block) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::BlockEnter;
  ev.index = static_cast<std::int32_t>(block);
  push(ev);
}

void FlightRecorder::on_exec(std::uint64_t cycle, std::uint32_t pc, bool shadow) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::Exec;
  ev.index = static_cast<std::int32_t>(pc);
  ev.aux = shadow ? 1 : 0;
  push(ev);
}

void FlightRecorder::on_overhead(std::uint64_t cycle, sim::OverheadKind kind,
                                 std::uint64_t cycles) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::Overhead;
  ev.aux = static_cast<std::uint8_t>(kind);
  ev.value = static_cast<std::uint32_t>(cycles);
  push(ev);
}

void FlightRecorder::on_guard_write(std::uint64_t cycle, int guard, std::uint32_t value) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::GuardWrite;
  ev.unit = static_cast<std::int16_t>(guard);
  ev.value = value;
  push(ev);
}

void FlightRecorder::on_store(std::uint64_t cycle, std::uint32_t addr, std::uint32_t value,
                              std::uint8_t width) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::Store;
  ev.index = static_cast<std::int32_t>(addr);
  ev.value = value;
  ev.aux = width;
  push(ev);
}

void FlightRecorder::export_to(Registry& registry) const {
  registry.add("flight.events", total_events_);
  registry.add("flight.retained_events", count_);
  registry.add("flight.dropped_events", dropped_events_);
  registry.add("flight.dropped_cycles", dropped_cycles_);
  if (count_ > 0) registry.add("flight.window_cycles", last_cycle() - first_cycle() + 1);
}

std::string render_flight_dump(const FlightRecorder& recorder, const FlightDumpInfo& info) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ttsc-flight-dump");
  w.key("version");
  w.value(std::uint64_t{1});
  w.key("machine");
  w.value(info.machine);
  w.key("workload");
  w.value(info.workload);
  w.key("engine");
  w.value(info.engine);
  w.key("path");
  w.value(info.path);
  w.key("status");
  w.value(info.status);
  if (!info.trap_reason.empty()) {
    w.key("trap_reason");
    w.value(info.trap_reason);
    w.key("trap_cycle");
    w.value(info.trap_cycle);
  }
  w.key("cycles");
  w.value(info.cycles);
  w.key("ret");
  w.value(info.ret);
  w.key("window");
  w.begin_object();
  w.key("first_cycle");
  w.value(recorder.first_cycle());
  w.key("last_cycle");
  w.value(recorder.last_cycle());
  w.key("events");
  w.value(static_cast<std::uint64_t>(recorder.size()));
  w.key("total_events");
  w.value(recorder.total_events());
  w.key("dropped_events");
  w.value(recorder.dropped_events());
  w.key("dropped_cycles");
  w.value(recorder.dropped_cycles());
  w.end_object();
  w.key("events");
  w.begin_array();
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const FlightEvent& ev = recorder.at(i);
    w.begin_object();
    w.key("c");
    w.value(ev.cycle);
    w.key("k");
    w.value(flight_event_kind_name(ev.kind));
    switch (ev.kind) {
      case FlightEventKind::Exec:
        w.key("pc");
        w.value(static_cast<std::int64_t>(ev.index));
        if (ev.aux != 0) {
          w.key("shadow");
          w.value(true);
        }
        break;
      case FlightEventKind::BlockEnter:
        w.key("block");
        w.value(static_cast<std::int64_t>(ev.index));
        break;
      case FlightEventKind::Move:
      case FlightEventKind::GuardSquash:
        w.key("bus");
        w.value(static_cast<std::int64_t>(ev.unit));
        break;
      case FlightEventKind::Trigger:
        w.key("fu");
        w.value(static_cast<std::int64_t>(ev.unit));
        w.key("op");
        w.value(ir::opcode_name(static_cast<ir::Opcode>(ev.value)));
        break;
      case FlightEventKind::RfRead:
        w.key("rf");
        w.value(static_cast<std::int64_t>(ev.unit));
        w.key("reg");
        w.value(static_cast<std::int64_t>(ev.index));
        break;
      case FlightEventKind::RfWrite:
        w.key("rf");
        w.value(static_cast<std::int64_t>(ev.unit));
        w.key("reg");
        w.value(static_cast<std::int64_t>(ev.index));
        w.key("value");
        w.value(static_cast<std::uint64_t>(ev.value));
        break;
      case FlightEventKind::GuardWrite:
        w.key("guard");
        w.value(static_cast<std::int64_t>(ev.unit));
        w.key("value");
        w.value(static_cast<std::uint64_t>(ev.value));
        break;
      case FlightEventKind::Store:
        w.key("addr");
        w.value(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.index)));
        w.key("value");
        w.value(static_cast<std::uint64_t>(ev.value));
        w.key("width");
        w.value(static_cast<std::int64_t>(ev.aux));
        break;
      case FlightEventKind::Stall:
        w.key("cycles");
        w.value(static_cast<std::uint64_t>(ev.value));
        break;
      case FlightEventKind::Overhead:
        w.key("kind");
        w.value(static_cast<std::int64_t>(ev.aux));
        w.key("cycles");
        w.value(static_cast<std::uint64_t>(ev.value));
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

}  // namespace ttsc::obs
