#include "obs/metrics.hpp"

#include <bit>

#include "obs/json.hpp"
#include "support/strings.hpp"

namespace ttsc::obs {

int Histogram::bucket_of(std::uint64_t v) { return std::bit_width(v); }

void Histogram::observe(std::uint64_t v) {
  ++buckets[bucket_of(v)];
  ++count;
  sum += v;
  if (v < min) min = v;
  if (v > max) max = v;
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::gauge_max(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void Registry::observe(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string(name), Histogram{}).first;
  it->second.observe(value);
}

void Registry::merge(const Registry& other) {
  std::scoped_lock lock(mutex_, other.mutex_);
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, v);
    } else if (v > it->second) {
      it->second = v;
    }
  }
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t Registry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, std::uint64_t> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, Histogram> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {histograms_.begin(), histograms_.end()};
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::string Registry::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "-- metrics --\n";
  for (const auto& [name, v] : counters_) {
    out += format("  %-44s %14llu\n", name.c_str(), static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges_) {
    out += format("  %-44s %14llu (max)\n", name.c_str(), static_cast<unsigned long long>(v));
  }
  for (const auto& [name, h] : histograms_) {
    out += format("  %-44s n=%llu sum=%llu min=%llu max=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.count == 0 ? 0 : h.min),
                  static_cast<unsigned long long>(h.max));
  }
  return out;
}

void Registry::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mutex_);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters_) {
    w.key(name);
    w.value(v);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges_) {
    w.key(name);
    w.value(v);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.key("min");
    w.value(h.count == 0 ? 0 : h.min);
    w.key("max");
    w.value(h.max);
    w.key("buckets");
    w.begin_array();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      w.begin_array();
      w.value(i);
      w.value(h.buckets[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace ttsc::obs
