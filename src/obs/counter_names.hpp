// The registry of documented metric names.
//
// Every counter/histogram name recorded into an obs::Registry anywhere in
// the toolchain must appear in this table (tests/counter_names_test.cpp
// fails on any undocumented or colliding name). The table is the one place
// to look up what a name means, and adding an instrumentation site without
// documenting it here is a test failure — the name set is part of the
// run-report schema surface (--report-json serializes the merged registry).
//
// Name grammar: dot-hierarchical, lowercase, [a-z0-9_.-]. A `<i>` in a
// pattern matches one-or-more decimal digits (per-partition counters);
// per-pass / per-target / per-cause families are expanded from their fixed
// sets at table-build time, so lookups are exact-match against the expanded
// table plus the digit patterns.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ttsc::obs {

struct CounterDoc {
  /// Exact name, or a pattern containing `<i>` (one-or-more digits).
  std::string name;
  /// One-line meaning; "histogram:" prefix marks observe() names.
  std::string doc;
};

/// The documented name table. Grouped by subsystem prefix; keep sorted
/// within each group so collisions are easy to spot in review.
inline const std::vector<CounterDoc>& counter_docs() {
  static const std::vector<CounterDoc> docs = [] {
    std::vector<CounterDoc> d;
    // --- sweep bookkeeping (report/driver.cpp) ---
    d.push_back({"cells.run", "grid cells compiled+simulated"});
    d.push_back({"cell.cycles", "histogram: per-cell simulated cycle counts"});

    // --- optimizer (opt/pipeline.cpp) ---
    d.push_back({"opt.instrs_in", "IR instructions entering the pipeline"});
    d.push_back({"opt.instrs_out", "IR instructions after the pipeline"});
    d.push_back({"opt.iterations", "cleanup fixpoint iterations"});
    for (const char* pass : {"fold", "copyprop", "cse", "dce", "simplify_cfg", "licm"}) {
      for (const char* leaf : {"calls", "changed", "instrs_removed", "instrs_added"}) {
        d.push_back({std::string("opt.") + pass + "." + leaf, "per-pass IR delta"});
      }
    }

    // --- register allocation (report/driver.cpp) ---
    d.push_back({"regalloc.spill_instrs", "spill loads/stores inserted"});
    d.push_back({"regalloc.values_spilled", "distinct values spilled"});
    d.push_back({"regalloc.spills.rf<i>", "values spilled per RF partition"});

    // --- schedulers ---
    d.push_back({"scalar.emit.words", "scalar instruction words emitted"});
    d.push_back({"tta.schedule.instructions", "TTA instructions scheduled"});
    d.push_back({"tta.schedule.moves", "TTA moves scheduled"});
    d.push_back({"tta.schedule.bypassed_operands", "operands read via software bypass"});
    d.push_back({"tta.schedule.eliminated_result_moves", "dead result moves removed"});
    d.push_back({"tta.schedule.shared_operands", "operand moves elided by sharing"});
    d.push_back({"tta.schedule.guarded_selects", "Select ops lowered to guarded moves"});
    d.push_back({"tta.schedule.fail.no_bus", "placements rejected: no free bus"});
    d.push_back({"tta.schedule.fail.long_imm", "placements rejected: no extension bus"});
    d.push_back({"tta.schedule.fail.rf_read_port", "placements rejected: RF read ports"});
    d.push_back({"tta.schedule.fail.rf_write_port", "placements rejected: RF write ports"});
    d.push_back({"tta.schedule.slots_filled", "bus slots carrying a move (static)"});
    d.push_back({"tta.schedule.slot_capacity", "instrs * buses (static)"});
    d.push_back({"tta.schedule.nop_slots", "empty bus slots (static)"});
    d.push_back({"vliw.schedule.bundles", "VLIW bundles emitted"});
    d.push_back({"vliw.schedule.ops", "VLIW operations scheduled"});
    d.push_back({"vliw.schedule.slot_capacity", "bundles * slots (static)"});
    d.push_back({"vliw.schedule.nop_slots", "empty issue slots (static)"});
    d.push_back({"vliw.schedule.fail.rf_read_port", "placements rejected: RF read ports"});
    d.push_back({"vliw.schedule.fail.rf_write_port", "placements rejected: RF write port"});
    d.push_back({"vliw.schedule.fail.no_slot", "placements rejected: no capable slot/FU"});
    d.push_back({"vliw.schedule.fail.wide_imm", "placements rejected: no spare imm slot"});
    d.push_back({"sched.superblock.formed", "superblock traces adopted"});
    d.push_back({"sched.superblock.tail_dup_instrs", "instructions tail-duplicated"});
    d.push_back({"sched.superblock.cross_block_bypass", "bypasses across side exits"});

    // --- simulator utilization (sim/collectors.cpp, prefix "sim.") ---
    d.push_back({"sim.cycles", "simulated cycles (utilization runs)"});
    d.push_back({"sim.moves", "executed TTA transports"});
    d.push_back({"sim.guard_squashes", "guarded moves squashed"});
    d.push_back({"sim.rf_reads", "RF reads executed"});
    d.push_back({"sim.rf_writes", "RF writes committed"});
    d.push_back({"sim.stall_cycles", "scalar hazard stall cycles"});
    d.push_back({"sim.triggers", "operations fired"});

    // --- cycle-attribution profiler (prof/prof.cpp, prefix "prof.") ---
    for (const char* cause : {"busy", "dep", "fu_latency", "rf_read_port", "rf_write_port",
                              "bus", "long_imm", "branch", "frontend"}) {
      d.push_back({std::string("prof.cycles.") + cause, "cycles attributed to this cause"});
    }
    d.push_back({"prof.slots.capacity", "cycles * issue width"});
    d.push_back({"prof.slots.useful", "slots that did useful work"});
    d.push_back({"prof.slots.squashed", "slots occupied by squashed moves"});
    d.push_back({"prof.slots.imm_ext", "slots spent on long-imm extensions"});
    d.push_back({"prof.shadow_cycles", "cycles executed in delay-slot shadows"});
    d.push_back({"prof.static.slots_filled", "scheduler's expected slot fill"});
    d.push_back({"prof.static.slot_capacity", "scheduler's static slot capacity"});

    // --- resilience campaigns (resil/campaign.cpp) ---
    for (const char* target : {"rf", "fu-result", "guard", "imem"}) {
      for (const char* leaf : {"injections", "masked", "sdc", "timeout", "trap", "err", "latent",
                               "corrected", "recovered", "detected"}) {
        d.push_back({std::string("resil.") + target + "." + leaf,
                     "per-target fault-injection tally"});
      }
    }
    d.push_back({"resil.batch.lanes", "lockstep lanes simulated"});
    d.push_back({"resil.batch.divergences", "lanes diverged from golden"});
    d.push_back({"resil.batch.evictions", "lanes evicted to scalar replay"});
    d.push_back({"resil.cells.run", "resilience cells campaigned"});
    d.push_back({"resil.cells.err", "resilience cells that failed"});

    // --- fault protection & recovery (resil/campaign.cpp, protected cells) ---
    d.push_back({"protect.rf.corrected", "RF reads scrubbed by SEC-DED"});
    d.push_back({"protect.rf.detected", "RF reads detected uncorrectable"});
    d.push_back({"protect.fu.detected", "FU results failing DMR/residue check"});
    d.push_back({"protect.guard.corrected", "guard flips outvoted by TMR"});
    d.push_back({"protect.imem.corrected", "imem fetches scrubbed by SEC-DED"});
    d.push_back({"protect.imem.detected", "imem fetches detected uncorrectable"});
    d.push_back({"recovery.rollbacks", "checkpoint rollbacks performed"});
    d.push_back({"recovery.retries", "re-execution retries after rollback"});
    d.push_back({"recovery.recovered", "detections recovered to golden state"});
    d.push_back({"recovery.unrecoverable", "detections degraded to a safe stop"});
    d.push_back({"recovery.cycles", "total detection-to-restore latency"});

    // --- first-divergence forensics (resil/campaign.cpp) ---
    d.push_back({"forensics.candidates", "SDC/latent injections eligible for replay"});
    d.push_back({"forensics.analyzed", "injections replayed golden-vs-faulty"});
    d.push_back({"forensics.replays", "forensic simulations run (2 per analysis)"});
    d.push_back({"forensics.diverged", "analyses with a first divergence in window"});
    d.push_back({"forensics.beyond_window", "analyses whose divergence lies past the window"});
    d.push_back({"forensics.skipped_budget", "candidates past the replay budget"});

    // --- flight recorder (obs/flight.cpp) ---
    d.push_back({"flight.events", "events offered to the flight recorder"});
    d.push_back({"flight.retained_events", "events in the retained window"});
    d.push_back({"flight.dropped_events", "events evicted from the ring"});
    d.push_back({"flight.dropped_cycles", "whole cycles evicted from the ring"});
    d.push_back({"flight.window_cycles", "cycle span of the retained window"});
    return d;
  }();
  return docs;
}

/// True when `name` equals `pattern` with each `<i>` standing for
/// one-or-more decimal digits.
inline bool matches_counter_pattern(std::string_view pattern, std::string_view name) {
  std::size_t pi = 0;
  std::size_t ni = 0;
  while (pi < pattern.size()) {
    if (pattern.compare(pi, 3, "<i>") == 0) {
      std::size_t digits = 0;
      while (ni < name.size() && name[ni] >= '0' && name[ni] <= '9') {
        ++ni;
        ++digits;
      }
      if (digits == 0) return false;
      pi += 3;
      continue;
    }
    if (ni >= name.size() || pattern[pi] != name[ni]) return false;
    ++pi;
    ++ni;
  }
  return ni == name.size();
}

/// True when `name` appears in the documented table (exact or via a `<i>`
/// pattern).
inline bool is_documented_counter(std::string_view name) {
  for (const CounterDoc& doc : counter_docs()) {
    if (matches_counter_pattern(doc.name, name)) return true;
  }
  return false;
}

}  // namespace ttsc::obs
