// Cycle-accurate flight recorder: a bounded, allocation-free ring buffer of
// per-cycle architectural events fed by the sim::ExecObserver protocol.
//
// The recorder captures the full event stream of a run — pc (on_exec),
// per-bus moves and squashes, FU triggers, RF reads/writes, guard latches,
// memory stores, scalar stalls/overheads and block entries — into a
// fixed-capacity ring preallocated at construction. The run loops therefore
// never allocate on its behalf: append is a store into the ring, and when
// the ring is full the recorder evicts *whole oldest cycles* from the tail
// so the retained window always starts at a cycle boundary (a black-box
// flight recorder keeps the most recent N cycles, not an arbitrary event
// suffix). Because the event stream is identical on the fast and reference
// paths of all three engines (the observer protocol's differential
// contract), a recording — and everything rendered from it: the VCD
// waveform export (report/vcd.hpp) and the "ttsc-flight-dump" v1 JSON — is
// a pure function of (program, machine, inputs) and byte-identical across
// paths, engines aside.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mach/machine.hpp"
#include "sim/observer.hpp"

namespace ttsc::obs {

class Registry;

/// Discriminator for one recorded event. Values are part of the
/// "ttsc-flight-dump" v1 schema (rendered by name, not by number).
enum class FlightEventKind : std::uint8_t {
  Exec,        // instruction/bundle at `index` (pc) executed; aux = shadow
  BlockEnter,  // architectural entry into block `index`
  Move,        // executed TTA transport on bus `unit`
  GuardSquash, // squashed TTA transport on bus `unit`
  Trigger,     // operation fired on FU `unit` (-1 = scalar); value = opcode
  RfRead,      // RF `unit`, register `index` read
  RfWrite,     // RF `unit`, register `index` := value (commit cycle)
  GuardWrite,  // guard `unit` latched `value` (commit cycle)
  Store,       // memory[value-width bytes at addr `index`] := value; aux = width
  Stall,       // scalar hazard stall of `value` cycles
  Overhead,    // scalar timing-model overhead; aux = OverheadKind, value = cycles
};

constexpr const char* flight_event_kind_name(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::Exec: return "exec";
    case FlightEventKind::BlockEnter: return "block";
    case FlightEventKind::Move: return "move";
    case FlightEventKind::GuardSquash: return "squash";
    case FlightEventKind::Trigger: return "trigger";
    case FlightEventKind::RfRead: return "rf_read";
    case FlightEventKind::RfWrite: return "rf_write";
    case FlightEventKind::GuardWrite: return "guard_write";
    case FlightEventKind::Store: return "store";
    case FlightEventKind::Stall: return "stall";
    case FlightEventKind::Overhead: return "overhead";
  }
  return "?";
}

/// One recorded event: 24 bytes of POD. Field meaning depends on `kind`
/// (see FlightEventKind); unused fields are zero so recordings compare
/// bytewise.
struct FlightEvent {
  std::uint64_t cycle = 0;
  std::uint32_t value = 0;
  std::int32_t index = 0;
  std::int16_t unit = 0;
  FlightEventKind kind = FlightEventKind::Exec;
  std::uint8_t aux = 0;

  bool operator==(const FlightEvent&) const = default;
};

/// Bounded ring-buffer flight recorder. Attach as (or tee into) the
/// SimOptions::observer of any engine on either path. Events arrive in
/// nondecreasing cycle order on every engine (the scalar loop reports some
/// events at the issue cycle, which never precedes the cycle of an earlier
/// event), so the retained window is a contiguous, in-order suffix of the
/// run's event stream.
class FlightRecorder final : public sim::ExecObserver {
 public:
  /// Default ring capacity in events (~1.5 MB). At typical event rates of
  /// 3-10 events/cycle this retains the last several thousand cycles.
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit FlightRecorder(const mach::Machine& machine,
                          std::size_t capacity = kDefaultCapacity);

  void on_move(std::uint64_t cycle, int bus) override;
  void on_guard_squash(std::uint64_t cycle, int bus) override;
  void on_trigger(std::uint64_t cycle, int fu, ir::Opcode op) override;
  void on_rf_read(std::uint64_t cycle, int rf, int index) override;
  void on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) override;
  void on_stall(std::uint64_t cycle, std::uint64_t stall_cycles) override;
  void on_block_enter(std::uint64_t cycle, std::uint32_t block) override;
  void on_exec(std::uint64_t cycle, std::uint32_t pc, bool shadow) override;
  void on_overhead(std::uint64_t cycle, sim::OverheadKind kind, std::uint64_t cycles) override;
  void on_guard_write(std::uint64_t cycle, int guard, std::uint32_t value) override;
  void on_store(std::uint64_t cycle, std::uint32_t addr, std::uint32_t value,
                std::uint8_t width) override;

  const mach::Machine& machine() const { return *machine_; }

  /// Retained events, oldest first. `at(0)` is the start of the window.
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return storage_.size(); }
  const FlightEvent& at(std::size_t i) const { return storage_[(head_ + i) % storage_.size()]; }

  /// Lifetime totals (retained + evicted).
  std::uint64_t total_events() const { return total_events_; }
  std::uint64_t dropped_events() const { return dropped_events_; }
  std::uint64_t dropped_cycles() const { return dropped_cycles_; }

  /// Cycle bounds of the retained window (0/0 when empty).
  std::uint64_t first_cycle() const { return count_ == 0 ? 0 : at(0).cycle; }
  std::uint64_t last_cycle() const { return count_ == 0 ? 0 : at(count_ - 1).cycle; }

  /// Reset to empty (capacity and machine binding retained).
  void clear();

  /// Export flight.* counters (events/dropped/window size) into `registry`.
  void export_to(Registry& registry) const;

 private:
  void push(const FlightEvent& ev);
  void evict_oldest_cycle();

  const mach::Machine* machine_;
  std::vector<FlightEvent> storage_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t total_events_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t dropped_cycles_ = 0;
};

/// Run metadata accompanying a forensic dump (the recorder only sees
/// events; the driver knows how the run ended).
struct FlightDumpInfo {
  std::string machine;
  std::string workload;
  std::string engine;       // "scalar" | "vliw" | "tta"
  std::string path;         // "fast" | "reference"
  std::string status;       // sim::exec_status_name
  std::string trap_reason;  // empty unless status == "trap"
  std::uint64_t trap_cycle = 0;
  std::uint64_t cycles = 0;
  std::uint64_t ret = 0;
};

/// Render the retained window as a "ttsc-flight-dump" v1 JSON document
/// (deterministic: a pure function of the recording and `info`).
std::string render_flight_dump(const FlightRecorder& recorder, const FlightDumpInfo& info);

}  // namespace ttsc::obs
