// Minimal JSON support for the observability layer.
//
// JsonWriter is a streaming writer with deterministic formatting (integers
// verbatim, doubles through one fixed "%.10g" conversion) — the run reports
// and trace exports it produces are byte-identical across runs and thread
// counts as long as the values fed to it are. JsonValue/parse_json is a
// small recursive-descent parser used by report::diff_reports and by the
// tests that validate trace/report exports; it keeps each number's raw
// source text so integer counters round-trip exactly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ttsc::obs {

/// Escape `s` for inclusion in a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Streaming JSON writer. Commas and nesting are managed internally; the
/// caller alternates key()/value calls inside objects and value calls
/// inside arrays. Misuse (a value where a key is required, unbalanced
/// end_*) trips TTSC_ASSERT.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);
  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  void value(bool v);
  /// Append pre-rendered JSON as one value (caller guarantees validity).
  void raw_value(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void before_value();

  enum class Frame : std::uint8_t { Object, Array };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;
  bool key_pending_ = false;
};

/// Parsed JSON tree. Numbers keep their raw text so 64-bit counters
/// round-trip exactly (as_uint parses the text, not the double).
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;  // String: the value; Number: the raw source text
  std::vector<JsonValue> items;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Object, source order

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view k) const;
  /// As find(), but throws ttsc::Error when the member is missing.
  const JsonValue& at(std::string_view k) const;

  std::uint64_t as_uint() const;  // throws ttsc::Error unless an integer number
  double as_double() const;       // throws ttsc::Error unless a number
  const std::string& as_string() const;  // throws ttsc::Error unless a string
};

/// Parse a complete JSON document. Throws ttsc::Error with position context
/// on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace ttsc::obs
