// Span tracer: nested begin/end events across the toolchain pipeline,
// exported as Chrome trace-event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev).
//
// Usage: Tracer::instance().start() enables collection process-wide;
// obs::Span is the RAII recording primitive:
//
//   obs::Span span("schedule", [&] {
//     return obs::SpanArgs{{"machine", machine.name}, {"workload", w.name}};
//   });
//
// When the tracer is disabled a Span costs one relaxed atomic load and a
// branch — the args lambda is never invoked — so instrumentation can stay
// compiled into every pipeline stage. When enabled, each thread appends to
// its own shard (one short uncontended lock per span; shards exist so
// export is safe while pool threads are still alive), and the export phase
// merges shards into one event stream. Shards are labelled with
// support::ThreadPool worker IDs, so a parallel sweep renders as a real
// per-worker flame view.
//
// Spans nest naturally: Chrome's viewer stacks complete ("ph":"X") events
// of one thread by containment, so a "schedule" span inside a "cell" span
// draws as a child row. Trace timestamps are wall-clock measurements and
// are NOT covered by the observability determinism contract (metrics and
// table outputs are; see obs/metrics.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ttsc::obs {

using SpanArgs = std::vector<std::pair<std::string, std::string>>;

class Tracer {
 public:
  /// The process-wide tracer (--trace-out drives this one). Separate
  /// instances are only constructed by tests.
  static Tracer& instance();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Discard previous events and begin collecting.
  void start();
  /// Stop collecting (events recorded so far remain exportable).
  void stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record one complete event. `t0`/`t1` are steady_clock points taken by
  /// the caller (Span does this); thread attribution is automatic.
  void record(std::string name, std::chrono::steady_clock::time_point t0,
              std::chrono::steady_clock::time_point t1, SpanArgs args);

  /// Number of events currently buffered across all shards.
  std::size_t event_count() const;

  /// The Chrome trace document: {"traceEvents":[...]} with one metadata
  /// ("thread_name") event per shard and one "X" event per span, ordered by
  /// (tid, start, duration, name) for stable output.
  std::string chrome_json() const;

  /// Write chrome_json() to `path`. Returns false (and leaves no partial
  /// file guarantee) on I/O failure.
  bool write_file(const std::string& path) const;

  void clear();

 private:
  struct Event {
    std::string name;
    double ts_us;
    double dur_us;
    SpanArgs args;
  };
  struct Shard {
    int tid;
    std::string thread_name;
    mutable std::mutex mutex;  // append vs export; never contended cross-thread
    std::vector<Event> events;
  };

  Shard& local_shard();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  // guards shards_ vector growth
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII span against Tracer::instance(). Activation is decided once at
/// construction; a span that outlives a stop() still records (its interval
/// began inside the session).
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::instance().enabled()) open(name, SpanArgs{});
  }
  /// Lazy-args form: `args_fn` is only called when the tracer is enabled.
  template <typename F>
  Span(const char* name, F&& args_fn) {
    if (Tracer::instance().enabled()) open(name, std::forward<F>(args_fn)());
  }
  ~Span() {
    if (active_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

 private:
  void open(const char* name, SpanArgs args);
  void close();

  bool active_ = false;
  std::string name_;
  SpanArgs args_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ttsc::obs
