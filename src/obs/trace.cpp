#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "obs/json.hpp"
#include "support/thread_pool.hpp"

namespace ttsc::obs {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void Tracer::start() {
  clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->events.clear();
  }
}

Tracer::Shard& Tracer::local_shard() {
  // The shard this thread appends to, per tracer. A single thread only ever
  // talks to one tracer in practice (the process-wide instance).
  thread_local Shard* tls_shard = nullptr;
  thread_local const Tracer* tls_shard_owner = nullptr;
  if (tls_shard != nullptr && tls_shard_owner == this) return *tls_shard;
  std::lock_guard<std::mutex> lock(mutex_);
  auto shard = std::make_unique<Shard>();
  shard->tid = static_cast<int>(shards_.size());
  const int worker = support::ThreadPool::current_worker_id();
  shard->thread_name =
      worker >= 0 ? "worker-" + std::to_string(worker) : (shards_.empty() ? "main" : "thread");
  shards_.push_back(std::move(shard));
  tls_shard = shards_.back().get();
  tls_shard_owner = this;
  return *tls_shard;
}

void Tracer::record(std::string name, std::chrono::steady_clock::time_point t0,
                    std::chrono::steady_clock::time_point t1, SpanArgs args) {
  Shard& shard = local_shard();
  Event ev;
  ev.name = std::move(name);
  ev.ts_us = std::chrono::duration<double, std::micro>(t0 - epoch_).count();
  ev.dur_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(std::move(ev));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    n += shard->events.size();
  }
  return n;
}

std::string Tracer::chrome_json() const {
  struct Row {
    int tid;
    const Event* ev;
  };
  std::vector<std::pair<int, std::string>> names;
  std::vector<Row> rows;
  // Snapshot under locks, then render unlocked. Event pointers stay valid:
  // shards only grow and we hold no references across shard mutation (the
  // caller exports after parallel work quiesced; the locks make a
  // concurrent append safe, not the pointer math — so copy the events).
  std::vector<std::vector<Event>> copies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copies.reserve(shards_.size());
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mutex);
      names.emplace_back(shard->tid, shard->thread_name);
      copies.push_back(shard->events);
    }
  }
  for (std::size_t s = 0; s < copies.size(); ++s) {
    for (const Event& ev : copies[s]) rows.push_back({names[s].first, &ev});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ev->ts_us != b.ev->ts_us) return a.ev->ts_us < b.ev->ts_us;
    if (a.ev->dur_us != b.ev->dur_us) return a.ev->dur_us > b.ev->dur_us;  // parents first
    return a.ev->name < b.ev->name;
  });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& [tid, name] : names) {
    w.begin_object();
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(tid);
    w.key("name");
    w.value("thread_name");
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(name);
    w.end_object();
    w.end_object();
  }
  for (const Row& row : rows) {
    w.begin_object();
    w.key("ph");
    w.value("X");
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(row.tid);
    w.key("name");
    w.value(row.ev->name);
    w.key("ts");
    w.value(row.ev->ts_us);
    w.key("dur");
    w.value(row.ev->dur_us);
    if (!row.ev->args.empty()) {
      w.key("args");
      w.begin_object();
      for (const auto& [k, v] : row.ev->args) {
        w.key(k);
        w.value(v);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool Tracer::write_file(const std::string& path) const {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void Span::open(const char* name, SpanArgs args) {
  active_ = true;
  name_ = name;
  args_ = std::move(args);
  start_ = std::chrono::steady_clock::now();
}

void Span::close() {
  Tracer::instance().record(std::move(name_), start_, std::chrono::steady_clock::now(),
                            std::move(args_));
}

}  // namespace ttsc::obs
