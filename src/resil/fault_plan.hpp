// Deterministic SEU fault planning for resilience campaigns.
//
// A FaultPlan maps one per-injection seed to one single-bit fault over the
// machine's architecturally visible soft state, weighted by how many bits
// each storage class actually holds (the AVF convention: a uniformly random
// bit of a uniformly random cycle):
//
//  * Rf       — register-file bits (every RF, every register, 32 bits);
//  * FuResult — TTA in-flight/bypass result-register bits (the datapath
//               state the transport-triggered model exposes; TTA only);
//  * Guard    — guard (predicate) registers, one bit each;
//  * Imem     — instruction-memory bits, enumerated over the scheduled
//               program's encoding fields (src/resil/inject.hpp) and applied
//               through the validating decoder, so a corrupted encoding
//               becomes a concrete wrong-but-valid or trapping instruction.
//
// Sampling uses SplitMix64::next_below_unbiased throughout: modulo bias
// towards low bit/cycle indices would systematically skew campaign
// statistics. Every draw is a pure function of the injection seed, so a
// plan is bit-exact across threads and platforms.
#pragma once

#include <cstdint>

#include "mach/machine.hpp"
#include "sim/fault.hpp"

namespace ttsc::resil {

enum class TargetKind : std::uint8_t { Rf, FuResult, Guard, Imem };
constexpr int kNumTargetKinds = 4;

constexpr const char* target_kind_name(TargetKind k) {
  switch (k) {
    case TargetKind::Rf: return "rf";
    case TargetKind::FuResult: return "fu-result";
    case TargetKind::Guard: return "guard";
    case TargetKind::Imem: return "imem";
  }
  return "?";
}

/// One planned injection: a state fault (Rf/FuResult/Guard, carried as the
/// sim::StateFault the simulators consume) or an instruction-memory bit
/// index (Imem, applied to the program form before the run). Adjacent
/// double-bit faults (FaultPlan double_bit_permille) widen the state fault
/// (state.width == 2) or flip imem bits {imem_bit, imem_bit + 1}
/// (imem_width == 2) — the multi-cell upsets that separate SEC-DED's
/// correct regime from its detect-only regime.
struct FaultSpec {
  TargetKind target = TargetKind::Rf;
  sim::StateFault state{};
  std::uint64_t imem_bit = 0;
  std::uint8_t imem_width = 1;
};

class FaultPlan {
 public:
  /// `imem_bits` comes from resil::imem_bits(program); `golden_cycles` is
  /// the fault-free run length — state-fault cycles are drawn uniformly
  /// from [0, golden_cycles), instruction faults are present from cycle 0.
  /// FuResult bits are only weighted in for TTA machines (`tta_state`).
  /// `double_bit_permille` in [0, 1000] upgrades that fraction of Rf,
  /// FuResult and Imem faults to adjacent double-bit upsets (guards are
  /// single-bit latches — always width 1). The width draw happens after all
  /// existing draws and only when the option is non-zero, so the default
  /// plan's fault stream is bit-identical to earlier revisions.
  FaultPlan(const mach::Machine& machine, bool tta_state, std::uint64_t imem_bits,
            std::uint64_t golden_cycles, int double_bit_permille = 0);

  /// Total sampled bits per class (weights of the categorical draw).
  std::uint64_t rf_bits() const { return rf_bits_; }
  std::uint64_t fu_result_bits() const { return fu_result_bits_; }
  std::uint64_t guard_bits() const { return guard_bits_; }
  std::uint64_t imem_bits() const { return imem_bits_; }
  std::uint64_t total_bits() const {
    return rf_bits_ + fu_result_bits_ + guard_bits_ + imem_bits_;
  }

  /// The fault for one injection. Pure in `seed`: the same seed yields the
  /// same fault on any thread, platform or call order.
  FaultSpec sample(std::uint64_t seed) const;

 private:
  const mach::Machine* machine_;
  std::uint64_t rf_bits_ = 0;
  std::uint64_t fu_result_bits_ = 0;
  std::uint64_t guard_bits_ = 0;
  std::uint64_t imem_bits_ = 0;
  std::uint64_t golden_cycles_ = 0;
  int double_bit_permille_ = 0;
};

/// Deterministic seed combinator (SplitMix64 scramble of a ^ golden(b)):
/// campaigns derive per-injection seeds as
/// mix(mix(campaign_seed, cell_hash), injection_index).
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);

/// FNV-1a of a string, for hashing (machine, workload) cell names into the
/// seed chain.
std::uint64_t hash_name(const std::string& name);

}  // namespace ttsc::resil
