#include "resil/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <optional>

#include "codegen/legalize.hpp"
#include "codegen/lower.hpp"
#include "fpga/model.hpp"
#include "mach/configs.hpp"
#include "obs/json.hpp"
#include "opt/passes.hpp"
#include "opt/superblock.hpp"
#include "sim/collectors.hpp"
#include "report/driver.hpp"
#include "resil/inject.hpp"
#include "scalar/scalar.hpp"
#include "sim/lockstep.hpp"
#include "sim/predecode.hpp"
#include "sim/protect.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "tta/tta.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::resil {

namespace {

const workloads::Workload& workload_by_name(const std::string& name) {
  for (const workloads::Workload& w : workloads::all_workloads()) {
    if (w.name == name) return w;
  }
  throw Error("resil: unknown workload " + name);
}

/// Fault-free reference outcome of one cell, cached once and diffed against
/// every injection.
struct Golden {
  std::uint64_t cycles = 0;
  std::uint32_t ret = 0;
  std::uint64_t out_checksum = 0;
  std::vector<std::uint32_t> rf;
  std::vector<std::uint8_t> guards;  // TTA only
};

/// Everything one cell's injections share: the scheduled program, its
/// predecoded form (reused by every state-fault run; instruction faults
/// re-predecode their mutated program) and the golden outcome.
struct PreparedCell {
  mach::Machine machine;
  const workloads::Workload* workload = nullptr;
  ir::Module module;

  std::optional<tta::TtaProgram> tta_prog;
  std::optional<vliw::VliwProgram> vliw_prog;
  std::optional<scalar::ScalarProgram> scalar_prog;
  std::shared_ptr<const sim::PredecodedTta> tta_pre;
  std::shared_ptr<const sim::PredecodedVliw> vliw_pre;
  std::shared_ptr<const sim::PredecodedScalar> scalar_pre;

  Golden golden;
  /// Typed golden ExecResults (one engaged, per model): the lockstep
  /// reference that lets a batch stop once every lane converged/evicted.
  std::optional<scalar::ExecResult> scalar_golden;
  std::optional<vliw::ExecResult> vliw_golden;
  std::optional<tta::ExecResult> tta_golden;
  /// Pristine loaded image, copied for every injection / lockstep leader.
  std::optional<ir::Memory> initial_mem;
  std::optional<ir::Memory> golden_mem;
  std::uint64_t imem_bits = 0;
};

/// Phase-1 profiling run for a superblock cell: ordinary schedule on a
/// scratch copy of the prepared (select-expanded) module, fast path, with a
/// sim::ProfileCollector attached. Returns the profile — whose block ids
/// refer to `prepared`'s current blocks — and the baseline cycle count.
std::pair<opt::ProfileData, std::uint64_t> profile_cell(const mach::Machine& machine,
                                                        const ir::Module& prepared) {
  ir::Module m = prepared;
  if (machine.model == mach::Model::Scalar) {
    codegen::legalize_scalar_operands(m.function(workloads::entry_point()));
  }
  const codegen::LowerResult lowered = codegen::lower(m, workloads::entry_point(), machine);
  ir::Memory mem = report::make_loaded_memory(m);
  sim::ProfileCollector collector;
  sim::SimOptions opts;
  opts.observer = &collector;
  std::uint64_t cycles = 0;
  sim::ExecStatus status = sim::ExecStatus::Ok;
  switch (machine.model) {
    case mach::Model::Scalar: {
      const auto r = scalar::ScalarSim(scalar::emit_scalar(lowered.func), machine, mem, opts).run();
      cycles = r.cycles;
      status = r.status;
      break;
    }
    case mach::Model::Vliw: {
      const auto r =
          vliw::VliwSim(vliw::schedule_vliw(lowered.func, machine), machine, mem, opts).run();
      cycles = r.cycles;
      status = r.status;
      break;
    }
    case mach::Model::Tta: {
      const auto r = tta::TtaSim(tta::schedule_tta(lowered.func, machine), machine, mem, opts).run();
      cycles = r.cycles;
      status = r.status;
      break;
    }
  }
  if (status != sim::ExecStatus::Ok) {
    throw Error(format("profiling run did not complete: %s", sim::exec_status_name(status)));
  }
  return {opt::ProfileData::from_collector(collector), cycles};
}

PreparedCell prepare_cell(const std::string& machine_name, const workloads::Workload& w,
                          bool superblocks = false) {
  PreparedCell cell;
  cell.machine = mach::machine_by_name(machine_name);
  cell.workload = &w;
  // Same pipeline as report::compile_and_run_prebuilt, minus the report
  // plumbing: the campaign needs the program form itself for instruction
  // faults, which the driver does not expose.
  cell.module = report::build_optimized(w);
  ir::Function& entry = cell.module.function(workloads::entry_point());
  if (cell.machine.model == mach::Model::Tta && cell.machine.has_guards()) {
    opt::if_convert_selects(entry);
  } else {
    codegen::expand_selects(entry);
  }
  // Two-phase superblock compile: profile an ordinarily scheduled copy,
  // then form traces here so the scheduled-under-injection program is the
  // one the --superblocks harnesses ship.
  opt::SuperblockPlan sb_plan;
  std::uint64_t baseline_cycles = 0;
  if (superblocks) {
    const auto [profile, base] = profile_cell(cell.machine, cell.module);
    baseline_cycles = base;
    sb_plan = opt::form_superblocks(entry, profile, {.superblocks = true});
  }
  const opt::SuperblockPlan* sched_plan = sb_plan.formed > 0 ? &sb_plan : nullptr;
  if (cell.machine.model == mach::Model::Scalar) {
    codegen::legalize_scalar_operands(entry);
  }
  const codegen::LowerResult lowered =
      codegen::lower(cell.module, workloads::entry_point(), cell.machine);

  cell.initial_mem.emplace(report::make_loaded_memory(cell.module));
  ir::Memory mem = *cell.initial_mem;
  switch (cell.machine.model) {
    case mach::Model::Scalar: {
      cell.scalar_prog = scalar::emit_scalar(lowered.func);
      cell.scalar_pre = std::make_shared<const sim::PredecodedScalar>(
          sim::predecode(*cell.scalar_prog, cell.machine));
      cell.imem_bits = imem_bits(*cell.scalar_prog);
      scalar::ScalarSim sim(*cell.scalar_prog, cell.machine, mem);
      sim.use_predecoded(cell.scalar_pre);
      const scalar::ExecResult r = sim.run();
      if (r.status != sim::ExecStatus::Ok) {
        throw Error(format("golden run did not complete: %s", sim::exec_status_name(r.status)));
      }
      cell.golden = {r.cycles, r.ret, 0, r.rf_state, {}};
      cell.scalar_golden = r;
      break;
    }
    case mach::Model::Vliw: {
      cell.vliw_prog = vliw::schedule_vliw(lowered.func, cell.machine, nullptr, sched_plan);
      cell.vliw_pre = std::make_shared<const sim::PredecodedVliw>(
          sim::predecode(*cell.vliw_prog, cell.machine));
      cell.imem_bits = imem_bits(*cell.vliw_prog);
      vliw::VliwSim sim(*cell.vliw_prog, cell.machine, mem);
      sim.use_predecoded(cell.vliw_pre);
      const vliw::ExecResult r = sim.run();
      if (r.status != sim::ExecStatus::Ok) {
        throw Error(format("golden run did not complete: %s", sim::exec_status_name(r.status)));
      }
      cell.golden = {r.cycles, r.ret, 0, r.rf_state, {}};
      cell.vliw_golden = r;
      break;
    }
    case mach::Model::Tta: {
      cell.tta_prog = tta::schedule_tta(lowered.func, cell.machine, {}, nullptr, sched_plan);
      cell.tta_pre = std::make_shared<const sim::PredecodedTta>(
          sim::predecode(*cell.tta_prog, cell.machine));
      cell.imem_bits = imem_bits(*cell.tta_prog);
      tta::TtaSim sim(*cell.tta_prog, cell.machine, mem);
      sim.use_predecoded(cell.tta_pre);
      const tta::ExecResult r = sim.run();
      if (r.status != sim::ExecStatus::Ok) {
        throw Error(format("golden run did not complete: %s", sim::exec_status_name(r.status)));
      }
      cell.golden = {r.cycles, r.ret, 0, r.rf_state, r.guard_state};
      cell.tta_golden = r;
      break;
    }
  }
  cell.golden.out_checksum = report::workload_output_checksum(cell.module, w, mem);
  cell.golden_mem.emplace(std::move(mem));
  if (superblocks && cell.golden.cycles > baseline_cycles) {
    // The trace schedule lost on this cell: fall back to the ordinary
    // schedule, mirroring the two-phase driver's per-cell guarantee.
    return prepare_cell(machine_name, w, /*superblocks=*/false);
  }
  return cell;
}

template <typename Result>
Outcome classify(const PreparedCell& cell, const Result& r, const ir::Memory& mem,
                 bool& latent) {
  switch (r.status) {
    case sim::ExecStatus::Trapped: return Outcome::Trap;
    case sim::ExecStatus::TimedOut: return Outcome::Timeout;
    case sim::ExecStatus::Ok: break;
  }
  const std::uint64_t checksum =
      report::workload_output_checksum(cell.module, *cell.workload, mem);
  if (r.ret != cell.golden.ret || checksum != cell.golden.out_checksum) return Outcome::Sdc;
  latent = r.rf_state != cell.golden.rf || !(mem == *cell.golden_mem);
  if constexpr (requires { r.guard_state; }) {
    latent = latent || r.guard_state != cell.golden.guards;
  }
  return Outcome::Masked;
}

/// Apply an imem fault to the program form: one flipped encoding bit, or an
/// adjacent pair for double-bit upsets (FaultSpec::imem_width).
template <typename Program>
Program mutate_imem(const Program& program, const FaultSpec& spec) {
  Program mutated = flip_bit(program, spec.imem_bit);
  if (spec.imem_width >= 2) mutated = flip_bit(mutated, spec.imem_bit + 1);
  return mutated;
}

Outcome run_injection(const PreparedCell& cell, const FaultSpec& spec, std::uint64_t budget,
                      bool& latent) {
  latent = false;
  ir::Memory mem = *cell.initial_mem;
  sim::SimOptions opts;
  opts.harden = true;
  sim::FaultSet fs;
  if (spec.target != TargetKind::Imem) {
    fs.faults.push_back(spec.state);
    opts.faults = &fs;
  }
  switch (cell.machine.model) {
    case mach::Model::Scalar: {
      if (spec.target == TargetKind::Imem) {
        const scalar::ScalarProgram mutated = mutate_imem(*cell.scalar_prog, spec);
        scalar::ScalarSim sim(mutated, cell.machine, mem, opts);
        return classify(cell, sim.run(budget), mem, latent);
      }
      scalar::ScalarSim sim(*cell.scalar_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.scalar_pre);
      return classify(cell, sim.run(budget), mem, latent);
    }
    case mach::Model::Vliw: {
      if (spec.target == TargetKind::Imem) {
        const vliw::VliwProgram mutated = mutate_imem(*cell.vliw_prog, spec);
        vliw::VliwSim sim(mutated, cell.machine, mem, opts);
        return classify(cell, sim.run(budget), mem, latent);
      }
      vliw::VliwSim sim(*cell.vliw_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.vliw_pre);
      return classify(cell, sim.run(budget), mem, latent);
    }
    case mach::Model::Tta: {
      if (spec.target == TargetKind::Imem) {
        const tta::TtaProgram mutated = mutate_imem(*cell.tta_prog, spec);
        tta::TtaSim sim(mutated, cell.machine, mem, opts);
        return classify(cell, sim.run(budget), mem, latent);
      }
      tta::TtaSim sim(*cell.tta_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.tta_pre);
      return classify(cell, sim.run(budget), mem, latent);
    }
  }
  TTSC_UNREACHABLE("resil: unhandled machine model");
}

/// Decide what the imem code does with the corrupted codeword(s) and poison
/// the fetch path accordingly. Returns true when the corruption escapes the
/// code entirely and the *mutated* program must actually run (no code, or a
/// parity-even flip confined to one codeword).
bool poison_imem(mach::Protection::Code code, std::uint8_t width, std::uint32_t pc0,
                 std::uint32_t pc1, sim::ProtectState& prot) {
  switch (code) {
    case mach::Protection::Code::None:
      return true;
    case mach::Protection::Code::Parity:
      // An adjacent pair inside one codeword flips two bits: even parity —
      // the classic escape. Split across codewords each word has an odd
      // flip, so both are detectable.
      if (width >= 2 && pc0 == pc1) return true;
      prot.poison_imem_detectable(pc0);
      if (width >= 2) prot.poison_imem_detectable(pc1);
      return false;
    case mach::Protection::Code::SecDed:
      // Double flip in one codeword: detected-uncorrectable. Split across
      // codewords each is a single-bit flip: both scrub on fetch.
      if (width >= 2 && pc0 == pc1) {
        prot.poison_imem_detectable(pc0);
        return false;
      }
      prot.poison_imem_correctable(pc0);
      if (width >= 2) prot.poison_imem_correctable(pc1);
      return false;
  }
  return true;
}

/// Analytic checkpoint-rollback resolution of a detected fault.
///
/// Sound because a protected faulty run never architecturally diverges from
/// golden *before* the detection trap: the only divergent state is the
/// poisoned element itself, and every consumption of it goes through a
/// read-site check (sim/protect.hpp) that fires before the value is used.
/// So the checkpoint at cycle c_k = floor(c_d / K) * K is clean exactly
/// when the fault landed at or after c_k (imem corruption is persistent —
/// re-execution refetches the same corrupted codeword, so it is never
/// clean), and a rollback from a clean checkpoint deterministically
/// re-executes the golden run from c_k.
Outcome resolve_detection(const FaultSpec& spec, const mach::Protection& cfg,
                          std::uint64_t detect_cycle, ProtectStats& stats) {
  if (!cfg.rollback) {
    // Fail-stop DUE: detected, reported, no recovery hardware.
    return Outcome::Detected;
  }
  const std::uint64_t interval = cfg.checkpoint_interval > 0 ? cfg.checkpoint_interval : 1;
  const std::uint64_t checkpoint = (detect_cycle / interval) * interval;
  const bool clean = spec.target != TargetKind::Imem && spec.state.cycle >= checkpoint;
  const std::uint64_t replay_cycles = detect_cycle - checkpoint + cfg.rollback_penalty;
  if (clean) {
    ++stats.rollbacks;
    ++stats.recovered;
    stats.recovery_cycles += replay_cycles;
    if (replay_cycles > stats.recovery_cycles_max) stats.recovery_cycles_max = replay_cycles;
    return Outcome::Recovered;
  }
  // The corruption predates the checkpoint (or lives in imem): every
  // re-execution detects again at the same cycle until the retry budget
  // runs out, then the core degrades to a detected-unrecoverable stop.
  const std::uint64_t retries =
      cfg.retry_budget > 0 ? static_cast<std::uint64_t>(cfg.retry_budget) : 0;
  stats.rollbacks += retries;
  stats.retries += retries;
  ++stats.unrecoverable;
  return Outcome::Detected;
}

/// run_injection for a protected machine: the same hardened simulators with
/// a sim::ProtectState attached, plus campaign-side imem codeword decisions
/// and analytic checkpoint-rollback resolution of detections.
Outcome run_protected_injection(const PreparedCell& cell, const FaultSpec& spec,
                                std::uint64_t budget, const mach::Protection& cfg,
                                bool& latent, ProtectStats& stats) {
  latent = false;
  sim::ProtectState prot(cfg);
  ir::Memory mem = *cell.initial_mem;
  sim::SimOptions opts;
  opts.harden = true;
  opts.protect = &prot;
  sim::FaultSet fs;
  if (spec.target != TargetKind::Imem) {
    fs.faults.push_back(spec.state);
    opts.faults = &fs;
  }

  // Imem faults: locate the corrupted codeword(s) and let the declared code
  // decide — escape (run the mutated program), correctable or detectable
  // poison (run the pristine program; the fetch check fires if and when the
  // pc actually reaches the poisoned index, so never-fetched corruption
  // stays masked exactly like the unprotected model).
  bool imem_escape = false;
  if (spec.target == TargetKind::Imem) {
    std::uint32_t pc0 = 0;
    std::uint32_t pc1 = 0;
    switch (cell.machine.model) {
      case mach::Model::Scalar:
        pc0 = imem_instr_of_bit(*cell.scalar_prog, spec.imem_bit);
        pc1 = spec.imem_width >= 2 ? imem_instr_of_bit(*cell.scalar_prog, spec.imem_bit + 1)
                                   : pc0;
        break;
      case mach::Model::Vliw:
        pc0 = imem_instr_of_bit(*cell.vliw_prog, spec.imem_bit);
        pc1 = spec.imem_width >= 2 ? imem_instr_of_bit(*cell.vliw_prog, spec.imem_bit + 1)
                                   : pc0;
        break;
      case mach::Model::Tta:
        pc0 = imem_instr_of_bit(*cell.tta_prog, spec.imem_bit);
        pc1 = spec.imem_width >= 2 ? imem_instr_of_bit(*cell.tta_prog, spec.imem_bit + 1)
                                   : pc0;
        break;
    }
    imem_escape = poison_imem(cfg.imem, spec.imem_width, pc0, pc1, prot);
  }

  auto finish = [&](const auto& r) -> Outcome {
    stats.rf_corrected += prot.rf_corrected;
    stats.rf_detected += prot.rf_detected;
    stats.fu_detected += prot.fu_detected;
    stats.guard_corrected += prot.guard_corrected;
    stats.imem_corrected += prot.imem_corrected;
    stats.imem_detected += prot.imem_detected;
    if (r.status == sim::ExecStatus::Trapped &&
        r.trap.reason == sim::TrapReason::ProtectionDetected) {
      return resolve_detection(spec, cfg, r.trap.cycle, stats);
    }
    const Outcome o = classify(cell, r, mem, latent);
    if (o == Outcome::Masked && !latent && prot.corrections() > 0) {
      return Outcome::Corrected;
    }
    return o;
  };

  switch (cell.machine.model) {
    case mach::Model::Scalar: {
      if (spec.target == TargetKind::Imem && imem_escape) {
        const scalar::ScalarProgram mutated = mutate_imem(*cell.scalar_prog, spec);
        scalar::ScalarSim sim(mutated, cell.machine, mem, opts);
        return finish(sim.run(budget));
      }
      scalar::ScalarSim sim(*cell.scalar_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.scalar_pre);
      return finish(sim.run(budget));
    }
    case mach::Model::Vliw: {
      if (spec.target == TargetKind::Imem && imem_escape) {
        const vliw::VliwProgram mutated = mutate_imem(*cell.vliw_prog, spec);
        vliw::VliwSim sim(mutated, cell.machine, mem, opts);
        return finish(sim.run(budget));
      }
      vliw::VliwSim sim(*cell.vliw_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.vliw_pre);
      return finish(sim.run(budget));
    }
    case mach::Model::Tta: {
      if (spec.target == TargetKind::Imem && imem_escape) {
        const tta::TtaProgram mutated = mutate_imem(*cell.tta_prog, spec);
        tta::TtaSim sim(mutated, cell.machine, mem, opts);
        return finish(sim.run(budget));
      }
      tta::TtaSim sim(*cell.tta_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.tta_pre);
      return finish(sim.run(budget));
    }
  }
  TTSC_UNREACHABLE("resil: unhandled machine model");
}

/// One forensic replay pair: the fault-free and the faulted run, both
/// hardened and predecoded exactly like run_injection, each with a
/// CommitRecorder attached from the fault cycle (cycle 0 for imem faults,
/// which corrupt the program before it starts). Faults apply at the top of
/// their cycle, before that cycle's commits, so starting the window at the
/// fault cycle loses nothing (see resil/forensics.hpp).
DivergenceRecord run_forensic_replay(const PreparedCell& cell, const FaultSpec& spec,
                                     std::uint64_t budget, std::uint64_t window_cycles) {
  ForensicsWindow window;
  window.start_cycle = spec.target == TargetKind::Imem ? 0 : spec.state.cycle;
  window.window_cycles = window_cycles;
  CommitRecorder golden_rec(window);
  CommitRecorder faulty_rec(window);

  // Bounded replay: nothing after the window end can change the verdict, so
  // cap the simulation one cycle past it (the slack lets an immediate
  // post-window commit mark truncation naturally). A replay cut off at the
  // cap was still committing — mark it truncated so an identical prefix
  // reads "beyond window", never "no divergence". This cap is what keeps a
  // forensic analysis a small fixed multiple of one injection instead of
  // two full program runs.
  const std::uint64_t replay_budget =
      std::min(budget, window.start_cycle + window_cycles + 1);
  const auto note_cutoff = [](const auto& r, CommitRecorder& rec) {
    if (r.status == sim::ExecStatus::TimedOut) rec.mark_truncated();
  };

  sim::SimOptions golden_opts;
  golden_opts.harden = true;
  golden_opts.observer = &golden_rec;
  sim::SimOptions faulty_opts;
  faulty_opts.harden = true;
  faulty_opts.observer = &faulty_rec;
  sim::FaultSet fs;
  if (spec.target != TargetKind::Imem) {
    fs.faults.push_back(spec.state);
    faulty_opts.faults = &fs;
  }
  switch (cell.machine.model) {
    case mach::Model::Scalar: {
      {
        ir::Memory mem = *cell.initial_mem;
        scalar::ScalarSim sim(*cell.scalar_prog, cell.machine, mem, golden_opts);
        sim.use_predecoded(cell.scalar_pre);
        note_cutoff(sim.run(replay_budget), golden_rec);
      }
      ir::Memory mem = *cell.initial_mem;
      if (spec.target == TargetKind::Imem) {
        const scalar::ScalarProgram mutated = mutate_imem(*cell.scalar_prog, spec);
        note_cutoff(scalar::ScalarSim(mutated, cell.machine, mem, faulty_opts).run(replay_budget),
                    faulty_rec);
      } else {
        scalar::ScalarSim sim(*cell.scalar_prog, cell.machine, mem, faulty_opts);
        sim.use_predecoded(cell.scalar_pre);
        note_cutoff(sim.run(replay_budget), faulty_rec);
      }
      break;
    }
    case mach::Model::Vliw: {
      {
        ir::Memory mem = *cell.initial_mem;
        vliw::VliwSim sim(*cell.vliw_prog, cell.machine, mem, golden_opts);
        sim.use_predecoded(cell.vliw_pre);
        note_cutoff(sim.run(replay_budget), golden_rec);
      }
      ir::Memory mem = *cell.initial_mem;
      if (spec.target == TargetKind::Imem) {
        const vliw::VliwProgram mutated = mutate_imem(*cell.vliw_prog, spec);
        note_cutoff(vliw::VliwSim(mutated, cell.machine, mem, faulty_opts).run(replay_budget),
                    faulty_rec);
      } else {
        vliw::VliwSim sim(*cell.vliw_prog, cell.machine, mem, faulty_opts);
        sim.use_predecoded(cell.vliw_pre);
        note_cutoff(sim.run(replay_budget), faulty_rec);
      }
      break;
    }
    case mach::Model::Tta: {
      {
        ir::Memory mem = *cell.initial_mem;
        tta::TtaSim sim(*cell.tta_prog, cell.machine, mem, golden_opts);
        sim.use_predecoded(cell.tta_pre);
        note_cutoff(sim.run(replay_budget), golden_rec);
      }
      ir::Memory mem = *cell.initial_mem;
      if (spec.target == TargetKind::Imem) {
        const tta::TtaProgram mutated = mutate_imem(*cell.tta_prog, spec);
        note_cutoff(tta::TtaSim(mutated, cell.machine, mem, faulty_opts).run(replay_budget),
                    faulty_rec);
      } else {
        tta::TtaSim sim(*cell.tta_prog, cell.machine, mem, faulty_opts);
        sim.use_predecoded(cell.tta_pre);
        note_cutoff(sim.run(replay_budget), faulty_rec);
      }
      break;
    }
  }
  return first_divergence(golden_rec, faulty_rec);
}

/// Output checksum of a lockstep lane's image without materializing it:
/// report::workload_output_checksum with each global's region checksummed
/// through the lane's sparse delta over the leader image.
std::uint64_t delta_output_checksum(const PreparedCell& cell, const ir::Memory& leader_mem,
                                    const sim::MemDelta& delta) {
  const ir::DataLayout layout = cell.module.layout();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::string& name : cell.workload->output_globals) {
    const ir::Global* g = cell.module.find_global(name);
    TTSC_ASSERT(g != nullptr, "workload output global missing: " + name);
    h ^= sim::checksum_with_delta(leader_mem, delta, layout.address_of(name),
                                  static_cast<std::uint32_t>(g->size));
    h *= 0x100000001b3ull;
  }
  return h;
}

/// classify() for a lockstep lane. Equivalent to running the scalar path's
/// classify on the lane's materialized result/memory, but without paying
/// for a full memory image per lane: `leader_mem` is the fault-free final
/// image (== *cell.golden_mem), so "lane memory differs from golden" is
/// exactly "delta non-empty".
template <typename Result>
Outcome classify_lane(const PreparedCell& cell, const sim::LaneOutcome<Result>& lo,
                      const ir::Memory& leader_mem, bool& latent) {
  latent = false;
  if (lo.evicted) return classify(cell, lo.result, *lo.mem, latent);
  if (lo.converged) return Outcome::Masked;  // bit-identical to golden throughout
  switch (lo.result.status) {
    case sim::ExecStatus::Trapped: return Outcome::Trap;
    case sim::ExecStatus::TimedOut: return Outcome::Timeout;
    case sim::ExecStatus::Ok: break;
  }
  const std::uint64_t checksum = delta_output_checksum(cell, leader_mem, lo.delta);
  if (lo.result.ret != cell.golden.ret || checksum != cell.golden.out_checksum) {
    return Outcome::Sdc;
  }
  latent = lo.result.rf_state != cell.golden.rf || !lo.delta.empty();
  if constexpr (requires { lo.result.guard_state; }) {
    latent = latent || lo.result.guard_state != cell.golden.guards;
  }
  return Outcome::Masked;
}

/// Index-addressed injection outcome: the reduction reads slots in order,
/// so tallies are thread-count and lane-grouping independent.
struct Slot {
  TargetKind target = TargetKind::Rf;
  Outcome outcome = Outcome::Err;
  bool latent = false;
  /// Per-injection protection/recovery activity (protected machines only) —
  /// reduced into CellReport::protect in index order.
  ProtectStats prot{};
};

void accumulate(ProtectStats& into, const ProtectStats& s) {
  into.rf_corrected += s.rf_corrected;
  into.rf_detected += s.rf_detected;
  into.fu_detected += s.fu_detected;
  into.guard_corrected += s.guard_corrected;
  into.imem_corrected += s.imem_corrected;
  into.imem_detected += s.imem_detected;
  into.rollbacks += s.rollbacks;
  into.retries += s.retries;
  into.recovered += s.recovered;
  into.unrecoverable += s.unrecoverable;
  into.recovery_cycles += s.recovery_cycles;
  if (s.recovery_cycles_max > into.recovery_cycles_max) {
    into.recovery_cycles_max = s.recovery_cycles_max;
  }
}

/// Per-cell watchdog expiry (CampaignOptions::cell_timeout_seconds).
/// Distinct from Error so run_campaign can honor keep_going for watchdog
/// hits specifically while configuration errors still abort.
struct CellTimeoutError : Error {
  using Error::Error;
};

struct BatchStats {
  std::uint64_t lanes = 0;
  std::uint64_t divergences = 0;
  std::uint64_t evictions = 0;
};

/// Run one lockstep lane group (state faults only — `idxs` indexes into the
/// cell's pre-sampled spec table) and classify each lane into its slot.
/// Throws only on infrastructure failure (the caller retries, then records
/// Err for the whole group).
BatchStats run_lane_group(const PreparedCell& cell, const std::vector<FaultSpec>& specs,
                          const std::vector<std::size_t>& idxs, std::size_t begin,
                          std::size_t count, std::uint64_t budget, std::vector<Slot>& slots) {
  TTSC_ASSERT(budget == timeout_budget(cell.golden.cycles),
              "lockstep lanes in one batch must share the cell's timeout budget");
  std::vector<sim::FaultSet> lane_faults(count);
  for (std::size_t k = 0; k < count; ++k) {
    const FaultSpec& spec = specs[idxs[begin + k]];
    TTSC_ASSERT(spec.target != TargetKind::Imem, "imem faults are never batchable");
    lane_faults[k].faults.push_back(spec.state);
  }
  BatchStats stats;
  auto classify_all = [&](const auto& br) {
    stats.lanes = count;
    stats.divergences = br.divergences;
    stats.evictions = br.evictions;
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = idxs[begin + k];
      Slot s;
      s.target = specs[i].target;
      s.outcome = classify_lane(cell, br.lanes[k], br.leader_mem, s.latent);
      slots[i] = s;
    }
  };
  switch (cell.machine.model) {
    case mach::Model::Scalar:
      classify_all(sim::run_scalar_batch(*cell.scalar_prog, cell.machine, cell.scalar_pre,
                                         *cell.initial_mem, lane_faults, budget,
                                         &*cell.scalar_golden, &*cell.golden_mem));
      break;
    case mach::Model::Vliw:
      classify_all(sim::run_vliw_batch(*cell.vliw_prog, cell.machine, cell.vliw_pre,
                                       *cell.initial_mem, lane_faults, budget,
                                       &*cell.vliw_golden, &*cell.golden_mem));
      break;
    case mach::Model::Tta:
      classify_all(sim::run_tta_batch(*cell.tta_prog, cell.machine, cell.tta_pre,
                                      *cell.initial_mem, lane_faults, budget,
                                      &*cell.tta_golden, &*cell.golden_mem));
      break;
  }
  return stats;
}

void export_cell_metrics(obs::Registry* registry, const CellReport& cr) {
  if (registry == nullptr) return;
  // One shard, one merge per cell (the obs::Registry concurrency contract).
  obs::Registry shard;
  for (int t = 0; t < kNumTargetKinds; ++t) {
    const TargetTally& tt = cr.targets[static_cast<std::size_t>(t)];
    if (tt.injections == 0) continue;
    const char* tn = target_kind_name(static_cast<TargetKind>(t));
    shard.add(format("resil.%s.injections", tn), tt.injections);
    shard.add(format("resil.%s.masked", tn), tt.masked);
    shard.add(format("resil.%s.sdc", tn), tt.sdc);
    shard.add(format("resil.%s.timeout", tn), tt.timeout);
    shard.add(format("resil.%s.trap", tn), tt.trap);
    shard.add(format("resil.%s.err", tn), tt.err);
    shard.add(format("resil.%s.latent", tn), tt.latent);
    if (cr.protected_machine) {
      shard.add(format("resil.%s.corrected", tn), tt.corrected);
      shard.add(format("resil.%s.recovered", tn), tt.recovered);
      shard.add(format("resil.%s.detected", tn), tt.detected);
    }
  }
  if (cr.protected_machine) {
    shard.add("protect.rf.corrected", cr.protect.rf_corrected);
    shard.add("protect.rf.detected", cr.protect.rf_detected);
    shard.add("protect.fu.detected", cr.protect.fu_detected);
    shard.add("protect.guard.corrected", cr.protect.guard_corrected);
    shard.add("protect.imem.corrected", cr.protect.imem_corrected);
    shard.add("protect.imem.detected", cr.protect.imem_detected);
    shard.add("recovery.rollbacks", cr.protect.rollbacks);
    shard.add("recovery.retries", cr.protect.retries);
    shard.add("recovery.recovered", cr.protect.recovered);
    shard.add("recovery.unrecoverable", cr.protect.unrecoverable);
    shard.add("recovery.cycles", cr.protect.recovery_cycles);
  }
  if (cr.batch_lanes != 0) {
    shard.add("resil.batch.lanes", cr.batch_lanes);
    shard.add("resil.batch.divergences", cr.batch_divergences);
    shard.add("resil.batch.evictions", cr.batch_evictions);
  }
  if (cr.forensics_candidates != 0) {
    std::uint64_t diverged = 0, beyond = 0;
    for (const ForensicRecord& r : cr.forensics) {
      if (r.divergence.found) ++diverged;
      if (r.divergence.beyond_window) ++beyond;
    }
    shard.add("forensics.candidates", cr.forensics_candidates);
    shard.add("forensics.analyzed", cr.forensics.size());
    shard.add("forensics.replays", cr.forensics.size() * 2);  // golden + faulty
    shard.add("forensics.diverged", diverged);
    shard.add("forensics.beyond_window", beyond);
    shard.add("forensics.skipped_budget", cr.forensics_skipped);
  }
  shard.add("resil.cells.run");
  if (!cr.ok) shard.add("resil.cells.err");
  registry->merge(shard);
}

}  // namespace

void TargetTally::accumulate(const TargetTally& other) {
  injections += other.injections;
  masked += other.masked;
  sdc += other.sdc;
  timeout += other.timeout;
  trap += other.trap;
  err += other.err;
  latent += other.latent;
  corrected += other.corrected;
  recovered += other.recovered;
  detected += other.detected;
}

TargetTally CellReport::total() const {
  TargetTally t;
  for (const TargetTally& tt : targets) t.accumulate(tt);
  return t;
}

bool CampaignReport::all_ok() const {
  for (const CellReport& c : cells) {
    if (!c.ok || c.total().err != 0) return false;
  }
  return true;
}

std::uint64_t CampaignReport::infra_failures() const {
  std::uint64_t n = 0;
  for (const CellReport& c : cells) {
    if (!c.ok) {
      n += static_cast<std::uint64_t>(injections_per_cell);
    } else {
      n += c.total().err;
    }
  }
  return n;
}

CampaignReport run_campaign(const CampaignOptions& options) {
  if (options.injections_per_cell <= 0) {
    throw Error("resil: injections_per_cell must be positive");
  }
  if (options.batch && (options.batch_lanes < 1 || options.batch_lanes > sim::kMaxLanes)) {
    throw Error(format("resil: batch_lanes must be in 1..%d", sim::kMaxLanes));
  }
  // Configuration errors (unknown names) throw up front; anything that
  // fails later degrades to an ERR cell.
  std::vector<const workloads::Workload*> cell_workloads;
  for (const std::string& name : options.workloads) {
    cell_workloads.push_back(&workload_by_name(name));
  }
  CampaignReport report;
  for (const std::string& name : options.machines) {
    // Configuration validation doubles as the protection-schema gate: one
    // protected machine anywhere flips the whole report into the extended
    // (corrected/recovered/detected) form.
    report.protection = report.protection || mach::machine_by_name(name).protect.any();
  }

  report.seed = options.seed;
  report.injections_per_cell = options.injections_per_cell;
  report.forensics = options.forensics;

  std::optional<support::ThreadPool> pool;
  if (!options.serial) pool.emplace(options.threads);

  for (const std::string& machine_name : options.machines) {
    for (const workloads::Workload* w : cell_workloads) {
      if (options.cancel != nullptr && *options.cancel != 0) {
        // Cooperative cancellation (SIGINT/SIGTERM): stop at the cell
        // boundary and flush what completed as a truncated report.
        report.truncated = true;
        return report;
      }
      CellReport cr;
      cr.machine = machine_name;
      cr.workload = w->name;
      try {
        const PreparedCell cell = prepare_cell(machine_name, *w, options.superblocks);
        cr.golden_cycles = cell.golden.cycles;
        cr.imem_bits = cell.imem_bits;
        mach::Protection prot_cfg = cell.machine.protect;
        if (options.retry_budget_override > 0) prot_cfg.retry_budget = options.retry_budget_override;
        if (options.checkpoint_override > 0) {
          prot_cfg.checkpoint_interval = static_cast<std::uint32_t>(options.checkpoint_override);
        }
        cr.protected_machine = prot_cfg.any();
        const FaultPlan plan(cell.machine, cell.machine.model == mach::Model::Tta,
                             cell.imem_bits, cell.golden.cycles, options.double_bit_permille);
        const std::uint64_t cell_seed =
            mix_seed(options.seed, hash_name(machine_name + "/" + w->name));

        const std::uint64_t budget = timeout_budget(cell.golden.cycles);

        // Per-cell wall-clock watchdog. Checked at the top of every work
        // item; once tripped the remaining items record Err without running
        // and the cell degrades to a structured error after the loop.
        const bool watchdog_on = options.cell_timeout_seconds > 0.0;
        const auto cell_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(watchdog_on ? options.cell_timeout_seconds : 0.0));
        std::atomic<bool> cell_expired{false};
        auto expired = [&]() -> bool {
          if (!watchdog_on) return false;
          if (cell_expired.load(std::memory_order_relaxed)) return true;
          if (std::chrono::steady_clock::now() >= cell_deadline) {
            cell_expired.store(true, std::memory_order_relaxed);
            return true;
          }
          return false;
        };

        // Pre-sample every injection by index: the spec stream is a pure
        // function of (seed, cell, index) regardless of batching, thread
        // count or lane grouping.
        const std::size_t n = static_cast<std::size_t>(options.injections_per_cell);
        std::vector<FaultSpec> specs(n);
        for (std::size_t i = 0; i < n; ++i) specs[i] = plan.sample(mix_seed(cell_seed, i));

        // Index-addressed result table: the reduction below reads it in
        // order, so tallies are thread-count independent.
        std::vector<Slot> slots(n);

        // Retry-once-then-Err wrapper shared by both execution paths. The
        // fault model itself never throws — simulators fail closed — so a
        // throw is an infrastructure failure.
        auto attempt_twice = [](auto&& work, auto&& on_err) {
          for (int attempt = 0; attempt < 2; ++attempt) {
            try {
              work();
              return;
            } catch (const std::exception&) {
            }
          }
          on_err();
        };

        auto scalar_injection = [&](std::size_t i) {
          if (expired()) {
            slots[i] = Slot{specs[i].target, Outcome::Err, false};
            return;
          }
          Slot s;
          s.target = specs[i].target;
          if (cr.protected_machine) {
            attempt_twice(
                [&] {
                  // Retry hygiene: a second attempt must not inherit the
                  // first attempt's partial protection stats.
                  s.latent = false;
                  s.prot = ProtectStats{};
                  s.outcome =
                      run_protected_injection(cell, specs[i], budget, prot_cfg, s.latent, s.prot);
                },
                [&] { s = Slot{specs[i].target, Outcome::Err, false}; });
          } else {
            attempt_twice([&] { s.outcome = run_injection(cell, specs[i], budget, s.latent); },
                          [&] { s = Slot{specs[i].target, Outcome::Err, false}; });
          }
          slots[i] = s;
        };

        // Protected cells always take the per-injection path: each injection
        // owns a private sim::ProtectState (thread safety) and detection
        // traps are per-lane control flow the lockstep batcher does not
        // model. The unprotected report is unaffected.
        const bool use_batch = options.batch && !cr.protected_machine;
        if (!use_batch) {
          auto body = [&](std::size_t i) { scalar_injection(i); };
          if (options.serial) {
            for (std::size_t i = 0; i < n; ++i) body(i);
          } else {
            support::parallel_for(*pool, n, body);
          }
        } else {
          // Partition by index order: state faults (rf / fu-result / guard)
          // pack into lockstep lane groups; imem faults mutate the program
          // itself, so they stay on the per-injection scalar path.
          std::vector<std::size_t> state_idx;
          std::vector<std::size_t> imem_idx;
          for (std::size_t i = 0; i < n; ++i) {
            (specs[i].target == TargetKind::Imem ? imem_idx : state_idx).push_back(i);
          }
          // Group lanes by fault cycle: a batch whose faults all land early
          // can settle (or evict) early and take the leader's settled exit,
          // instead of every batch carrying one late fault to the end. Lane
          // results are grouping-invariant, so the report is unchanged; the
          // stable sort keeps the grouping deterministic.
          std::stable_sort(state_idx.begin(), state_idx.end(),
                           [&](std::size_t a, std::size_t b) {
                             return specs[a].state.cycle < specs[b].state.cycle;
                           });
          const std::size_t lanes = static_cast<std::size_t>(options.batch_lanes);
          const std::size_t num_groups = (state_idx.size() + lanes - 1) / lanes;
          std::vector<BatchStats> group_stats(num_groups);
          auto body = [&](std::size_t item) {
            if (item < num_groups) {
              const std::size_t begin = item * lanes;
              const std::size_t count = std::min(lanes, state_idx.size() - begin);
              if (expired()) {
                for (std::size_t k = 0; k < count; ++k) {
                  const std::size_t i = state_idx[begin + k];
                  slots[i] = Slot{specs[i].target, Outcome::Err, false};
                }
                return;
              }
              attempt_twice(
                  [&] {
                    group_stats[item] =
                        run_lane_group(cell, specs, state_idx, begin, count, budget, slots);
                  },
                  [&] {
                    group_stats[item] = BatchStats{};
                    for (std::size_t k = 0; k < count; ++k) {
                      const std::size_t i = state_idx[begin + k];
                      slots[i] = Slot{specs[i].target, Outcome::Err, false};
                    }
                  });
            } else {
              scalar_injection(imem_idx[item - num_groups]);
            }
          };
          const std::size_t items = num_groups + imem_idx.size();
          if (options.serial) {
            for (std::size_t item = 0; item < items; ++item) body(item);
          } else {
            support::parallel_for(*pool, items, body);
          }
          for (const BatchStats& gs : group_stats) {
            cr.batch_lanes += gs.lanes;
            cr.batch_divergences += gs.divergences;
            cr.batch_evictions += gs.evictions;
          }
        }

        if (cell_expired.load(std::memory_order_relaxed)) {
          throw CellTimeoutError(
              format("cell watchdog expired after %.1fs (%s/%s)", options.cell_timeout_seconds,
                     machine_name.c_str(), w->name.c_str()));
        }

        for (const Slot& s : slots) {
          TargetTally& tt = cr.targets[static_cast<std::size_t>(s.target)];
          ++tt.injections;
          switch (s.outcome) {
            case Outcome::Masked:
              ++tt.masked;
              if (s.latent) ++tt.latent;
              break;
            case Outcome::Corrected: ++tt.corrected; break;
            case Outcome::Recovered: ++tt.recovered; break;
            case Outcome::Detected: ++tt.detected; break;
            case Outcome::Sdc: ++tt.sdc; break;
            case Outcome::Timeout: ++tt.timeout; break;
            case Outcome::Trap: ++tt.trap; break;
            case Outcome::Err: ++tt.err; break;
          }
          accumulate(cr.protect, s.prot);
        }

        if (options.forensics) {
          // First-divergence pass: serially replay the SDC/latent slots in
          // injection-index order (deterministic regardless of thread count)
          // up to the replay budget. Candidates past the budget are counted
          // but not replayed, bounding the pass at 2*budget hardened runs.
          const int fbudget = options.effective_forensics_budget();
          for (std::size_t i = 0; i < n; ++i) {
            const Slot& s = slots[i];
            if (s.outcome != Outcome::Sdc && !(s.outcome == Outcome::Masked && s.latent)) {
              continue;
            }
            ++cr.forensics_candidates;
            if (cr.forensics.size() >= static_cast<std::size_t>(fbudget)) {
              ++cr.forensics_skipped;
              continue;
            }
            ForensicRecord rec;
            rec.injection = i;
            rec.target = s.target;
            rec.outcome = s.outcome;
            rec.latent = s.latent;
            rec.fault_cycle =
                specs[i].target == TargetKind::Imem ? 0 : specs[i].state.cycle;
            attempt_twice(
                [&] {
                  rec.divergence =
                      run_forensic_replay(cell, specs[i], budget, options.forensics_window);
                },
                [&] { rec.divergence = DivergenceRecord{}; });
            cr.forensics.push_back(rec);
          }
        }
      } catch (const CellTimeoutError& e) {
        // Watchdog expiry aborts the campaign by default; --keep-going
        // degrades it to a structured ERR cell so the rest of the grid runs.
        if (!options.keep_going) throw;
        cr.ok = false;
        cr.error = e.what();
      } catch (const std::exception& e) {
        cr.ok = false;
        cr.error = e.what();
      }
      export_cell_metrics(options.registry, cr);
      report.cells.push_back(std::move(cr));
    }
  }
  return report;
}

bool BenchReport::all_ok() const {
  for (const BenchCell& c : cells) {
    if (!c.ok) return false;
  }
  return true;
}

BenchReport run_batch_benchmark(const CampaignOptions& options) {
  if (options.injections_per_cell <= 0) {
    throw Error("resil: injections_per_cell must be positive");
  }
  if (options.batch_lanes < 1 || options.batch_lanes > sim::kMaxLanes) {
    throw Error(format("resil: batch_lanes must be in 1..%d", sim::kMaxLanes));
  }
  std::vector<const workloads::Workload*> cell_workloads;
  for (const std::string& name : options.workloads) {
    cell_workloads.push_back(&workload_by_name(name));
  }
  for (const std::string& name : options.machines) (void)mach::machine_by_name(name);

  BenchReport report;
  report.seed = options.seed;
  report.injections_per_cell = static_cast<std::uint64_t>(options.injections_per_cell);
  report.batch_lanes = options.batch_lanes;

  for (const std::string& machine_name : options.machines) {
    for (const workloads::Workload* w : cell_workloads) {
      BenchCell bc;
      bc.machine = machine_name;
      bc.workload = w->name;
      try {
        const PreparedCell cell = prepare_cell(machine_name, *w, options.superblocks);
        const std::uint64_t budget = timeout_budget(cell.golden.cycles);
        bc.protected_machine = cell.machine.protect.any();
        // State faults only: imem faults take the identical per-injection
        // path in both modes and would only dilute the measurement.
        const FaultPlan plan(cell.machine, cell.machine.model == mach::Model::Tta,
                             /*imem_bits=*/0, cell.golden.cycles, options.double_bit_permille);
        const std::uint64_t cell_seed =
            mix_seed(options.seed, hash_name(machine_name + "/" + w->name));
        const std::size_t n = static_cast<std::size_t>(options.injections_per_cell);
        std::vector<FaultSpec> specs(n);
        std::vector<std::size_t> idxs(n);
        for (std::size_t i = 0; i < n; ++i) {
          specs[i] = plan.sample(mix_seed(cell_seed, i));
          idxs[i] = i;
        }
        bc.injections = n;
        // Same fault-cycle grouping the campaign uses (see run_campaign).
        std::stable_sort(idxs.begin(), idxs.end(), [&](std::size_t a, std::size_t b) {
          return specs[a].state.cycle < specs[b].state.cycle;
        });

        // Wall clock on a shared machine is noisy; run each path three
        // times and keep its fastest pass — the minimum is the
        // least-interference estimate of the real cost. The scalar and
        // batched passes of a rep run back to back so a slow ambient phase
        // (another tenant, frequency throttling) inflates both paths of the
        // same rep instead of skewing the ratio.
        constexpr int kReps = 5;
        std::vector<Slot> scalar_slots(n);
        std::vector<Slot> batch_slots(n);
        const std::size_t lanes = static_cast<std::size_t>(options.batch_lanes);
        for (int rep = 0; rep < kReps; ++rep) {
          auto t0 = std::chrono::steady_clock::now();
          for (std::size_t i = 0; i < n; ++i) {
            Slot s;
            s.target = specs[i].target;
            s.outcome = run_injection(cell, specs[i], budget, s.latent);
            scalar_slots[i] = s;
          }
          const double scalar_sec =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
          if (rep == 0 || scalar_sec < bc.scalar_seconds) bc.scalar_seconds = scalar_sec;

          std::uint64_t divergences = 0, evictions = 0;
          t0 = std::chrono::steady_clock::now();
          for (std::size_t begin = 0; begin < n; begin += lanes) {
            const BatchStats gs = run_lane_group(cell, specs, idxs, begin,
                                                 std::min(lanes, n - begin), budget, batch_slots);
            divergences += gs.divergences;
            evictions += gs.evictions;
          }
          const double batched_sec =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
          if (rep == 0 || batched_sec < bc.batched_seconds) bc.batched_seconds = batched_sec;
          bc.divergences = divergences;
          bc.evictions = evictions;

          if (bc.protected_machine) {
            // Protection overhead: the same state faults through the
            // per-injection protected path (the one protected campaigns
            // run — protected cells never batch). Same min-of-reps policy.
            t0 = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < n; ++i) {
              bool latent = false;
              ProtectStats ps;
              (void)run_protected_injection(cell, specs[i], budget, cell.machine.protect, latent,
                                            ps);
            }
            const double protected_sec =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            if (rep == 0 || protected_sec < bc.protected_seconds) {
              bc.protected_seconds = protected_sec;
            }
          }
        }
        // Cheap differential guard (the full equivalence is locked by the
        // lockstep/campaign test suites): both paths must classify every
        // injection identically.
        for (std::size_t i = 0; i < n; ++i) {
          if (scalar_slots[i].outcome != batch_slots[i].outcome ||
              scalar_slots[i].latent != batch_slots[i].latent) {
            throw Error(format("bench: batched path diverges from scalar at injection %zu", i));
          }
        }
        if (options.forensics) {
          // Forensics overhead pass: the same budgeted replay loop the
          // campaign runs, timed once. The acceptance bar is
          // forensics_seconds / batched_seconds < 5%.
          const int fbudget = options.effective_forensics_budget();
          std::uint64_t analyzed = 0;
          const auto f0 = std::chrono::steady_clock::now();
          for (std::size_t i = 0; i < n && analyzed < static_cast<std::uint64_t>(fbudget); ++i) {
            const Slot& s = batch_slots[i];
            if (s.outcome != Outcome::Sdc && !(s.outcome == Outcome::Masked && s.latent)) {
              continue;
            }
            (void)run_forensic_replay(cell, specs[i], budget, options.forensics_window);
            ++analyzed;
          }
          bc.forensics_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - f0).count();
          bc.forensics_analyzed = analyzed;
        }
      } catch (const std::exception& e) {
        bc.ok = false;
        bc.error = e.what();
      }
      report.cells.push_back(std::move(bc));
    }
  }
  return report;
}

std::string render_resil_bench_json(const BenchReport& report) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ttsc-resil-bench");
  w.key("version");
  w.value(std::uint64_t{1});
  w.key("seed");
  w.value(report.seed);
  w.key("injections_per_cell");
  w.value(report.injections_per_cell);
  w.key("batch_lanes");
  w.value(report.batch_lanes);
  std::uint64_t total_inj = 0;
  double total_scalar = 0.0, total_batched = 0.0;
  w.key("cells");
  w.begin_array();
  for (const BenchCell& c : report.cells) {
    w.begin_object();
    w.key("machine");
    w.value(c.machine);
    w.key("workload");
    w.value(c.workload);
    if (!c.ok) {
      w.key("error");
      w.value(c.error);
      w.end_object();
      continue;
    }
    total_inj += c.injections;
    total_scalar += c.scalar_seconds;
    total_batched += c.batched_seconds;
    w.key("injections");
    w.value(c.injections);
    w.key("scalar_seconds");
    w.value(c.scalar_seconds);
    w.key("batched_seconds");
    w.value(c.batched_seconds);
    const double inj = static_cast<double>(c.injections);
    w.key("scalar_inj_per_sec");
    w.value(c.scalar_seconds > 0.0 ? inj / c.scalar_seconds : 0.0);
    w.key("batched_inj_per_sec");
    w.value(c.batched_seconds > 0.0 ? inj / c.batched_seconds : 0.0);
    w.key("speedup");
    w.value(c.batched_seconds > 0.0 ? c.scalar_seconds / c.batched_seconds : 0.0);
    w.key("divergences");
    w.value(c.divergences);
    w.key("evictions");
    w.value(c.evictions);
    if (c.forensics_analyzed > 0 || c.forensics_seconds > 0.0) {
      w.key("forensics_analyzed");
      w.value(c.forensics_analyzed);
      w.key("forensics_seconds");
      w.value(c.forensics_seconds);
      w.key("forensics_overhead");
      w.value(c.batched_seconds > 0.0 ? c.forensics_seconds / c.batched_seconds : 0.0);
    }
    if (c.protected_machine) {
      w.key("protected_seconds");
      w.value(c.protected_seconds);
      w.key("protect_overhead");
      w.value(c.scalar_seconds > 0.0 ? c.protected_seconds / c.scalar_seconds - 1.0 : 0.0);
    }
    w.end_object();
  }
  w.end_array();
  w.key("total");
  w.begin_object();
  w.key("injections");
  w.value(total_inj);
  w.key("scalar_seconds");
  w.value(total_scalar);
  w.key("batched_seconds");
  w.value(total_batched);
  w.key("speedup");
  w.value(total_batched > 0.0 ? total_scalar / total_batched : 0.0);
  w.end_object();
  w.end_object();
  return w.take() + "\n";
}

void write_resil_bench(const std::string& path, const BenchReport& report) {
  const std::string text = render_resil_bench_json(report);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << text) || (out.close(), !out)) {
    throw Error("cannot write resilience benchmark: " + path);
  }
}

std::string render_resilience(const CampaignReport& report) {
  if (!report.protection) {
    // Unprotected campaigns keep the historical table byte-for-byte.
    std::string out = format(
        "SEU resilience (AVF-style): %d single-bit injections per cell, seed 0x%llx.\n"
        "Targets: rf = register-file bits, fu-result = TTA result/bypass registers,\n"
        "guard = predicate registers, imem = instruction encodings (through the\n"
        "decoder). vuln%% = (sdc + timeout + trap) / injections.\n\n",
        report.injections_per_cell, static_cast<unsigned long long>(report.seed));
    out += format("%-10s %-9s %-10s %8s %8s %8s %8s %8s %8s %7s\n", "machine", "workload",
                  "target", "inj", "masked", "sdc", "timeout", "trap", "err", "vuln%");
    auto row = [&](const CellReport& c, const char* name, const TargetTally& t, bool lead) {
      const double vuln =
          t.injections == 0 ? 0.0
                            : 100.0 * static_cast<double>(t.vulnerable()) /
                                  static_cast<double>(t.injections);
      out += format("%-10s %-9s %-10s %8llu %8llu %8llu %8llu %8llu %8llu %7.1f\n",
                    lead ? c.machine.c_str() : "", lead ? c.workload.c_str() : "", name,
                    static_cast<unsigned long long>(t.injections),
                    static_cast<unsigned long long>(t.masked),
                    static_cast<unsigned long long>(t.sdc),
                    static_cast<unsigned long long>(t.timeout),
                    static_cast<unsigned long long>(t.trap),
                    static_cast<unsigned long long>(t.err), vuln);
    };
    for (const CellReport& c : report.cells) {
      if (!c.ok) {
        out += format("%-10s %-9s ERR: %s\n", c.machine.c_str(), c.workload.c_str(),
                      c.error.c_str());
        continue;
      }
      bool lead = true;
      for (int t = 0; t < kNumTargetKinds; ++t) {
        const TargetTally& tt = c.targets[static_cast<std::size_t>(t)];
        if (tt.injections == 0) continue;
        row(c, target_kind_name(static_cast<TargetKind>(t)), tt, lead);
        lead = false;
      }
      row(c, "total", c.total(), false);
    }
    if (report.truncated) out += "\n(campaign truncated by cancellation — partial report)\n";
    return out;
  }

  // Protected variant: wider machine column ("+profile" suffixes) and the
  // three protection outcome columns. corr/recov end with the golden
  // outcome; detect is the safe detected-unrecoverable stop — none count
  // as vulnerable.
  std::string out = format(
      "SEU resilience (AVF-style): %d injections per cell, seed 0x%llx.\n"
      "Targets: rf = register-file bits, fu-result = TTA result/bypass registers,\n"
      "guard = predicate registers, imem = instruction encodings (through the\n"
      "decoder). corr = code-corrected, recov = rollback-recovered, detect =\n"
      "detected-unrecoverable stop. vuln%% = (sdc + timeout + trap) / injections.\n\n",
      report.injections_per_cell, static_cast<unsigned long long>(report.seed));
  out += format("%-16s %-9s %-10s %7s %7s %7s %7s %7s %7s %7s %6s %5s %7s\n", "machine",
                "workload", "target", "inj", "masked", "corr", "recov", "detect", "sdc",
                "timeout", "trap", "err", "vuln%");
  auto row = [&](const CellReport& c, const char* name, const TargetTally& t, bool lead) {
    const double vuln =
        t.injections == 0 ? 0.0
                          : 100.0 * static_cast<double>(t.vulnerable()) /
                                static_cast<double>(t.injections);
    out += format("%-16s %-9s %-10s %7llu %7llu %7llu %7llu %7llu %7llu %7llu %6llu %5llu %7.1f\n",
                  lead ? c.machine.c_str() : "", lead ? c.workload.c_str() : "", name,
                  static_cast<unsigned long long>(t.injections),
                  static_cast<unsigned long long>(t.masked),
                  static_cast<unsigned long long>(t.corrected),
                  static_cast<unsigned long long>(t.recovered),
                  static_cast<unsigned long long>(t.detected),
                  static_cast<unsigned long long>(t.sdc),
                  static_cast<unsigned long long>(t.timeout),
                  static_cast<unsigned long long>(t.trap),
                  static_cast<unsigned long long>(t.err), vuln);
  };
  for (const CellReport& c : report.cells) {
    if (!c.ok) {
      out += format("%-16s %-9s ERR: %s\n", c.machine.c_str(), c.workload.c_str(),
                    c.error.c_str());
      continue;
    }
    bool lead = true;
    for (int t = 0; t < kNumTargetKinds; ++t) {
      const TargetTally& tt = c.targets[static_cast<std::size_t>(t)];
      if (tt.injections == 0) continue;
      row(c, target_kind_name(static_cast<TargetKind>(t)), tt, lead);
      lead = false;
    }
    row(c, "total", c.total(), false);
  }
  if (report.truncated) out += "\n(campaign truncated by cancellation — partial report)\n";
  return out;
}

std::string render_protection_efficiency(const CampaignReport& report) {
  if (!report.protection) return {};
  std::string out =
      "Protection efficiency: each protected machine against its unprotected\n"
      "base (same name before '+', same workload). d-avf = vulnerability drop in\n"
      "percentage points; lut+ = protection hardware (fpga model); the figure of\n"
      "merit is d-avf per 1000 extra LUTs. recov-avg/max = detection-to-restore\n"
      "latency in cycles over rollback-recovered injections.\n\n";
  out += format("%-16s %-9s %7s %7s %7s %7s %7s %9s %9s %9s\n", "machine", "workload", "lut+",
                "fmax-d%", "base-v%", "vuln%", "d-avf", "davf/kLUT", "recov-avg", "recov-max");
  auto vuln_pct = [](const TargetTally& t) {
    return t.injections == 0 ? 0.0
                             : 100.0 * static_cast<double>(t.vulnerable()) /
                                   static_cast<double>(t.injections);
  };
  for (const CellReport& c : report.cells) {
    if (!c.ok || !c.protected_machine) continue;
    const std::size_t plus = c.machine.find('+');
    const std::string base_name = plus == std::string::npos ? c.machine : c.machine.substr(0, plus);
    const CellReport* base = nullptr;
    for (const CellReport& b : report.cells) {
      if (b.ok && !b.protected_machine && b.machine == base_name && b.workload == c.workload) {
        base = &b;
        break;
      }
    }
    const mach::Machine m = mach::machine_by_name(c.machine);
    const mach::Machine bm = mach::machine_by_name(base_name);
    const fpga::AreaReport area = fpga::estimate_area(m);
    const double fmax = fpga::estimate_timing(m).fmax_mhz;
    const double base_fmax = fpga::estimate_timing(bm).fmax_mhz;
    const double fmax_drop = base_fmax > 0.0 ? 100.0 * (base_fmax - fmax) / base_fmax : 0.0;
    const double vuln = vuln_pct(c.total());
    const double recov_avg =
        c.protect.recovered > 0 ? static_cast<double>(c.protect.recovery_cycles) /
                                      static_cast<double>(c.protect.recovered)
                                : 0.0;
    if (base == nullptr) {
      out += format("%-16s %-9s %7d %7.1f %7s %7.1f %7s %9s %9.1f %9llu\n", c.machine.c_str(),
                    c.workload.c_str(), area.protect_lut, fmax_drop, "-", vuln, "-", "-",
                    recov_avg, static_cast<unsigned long long>(c.protect.recovery_cycles_max));
      continue;
    }
    const double base_vuln = vuln_pct(base->total());
    const double davf = base_vuln - vuln;
    const double davf_per_klut =
        area.protect_lut > 0 ? davf / (static_cast<double>(area.protect_lut) / 1000.0) : 0.0;
    out += format("%-16s %-9s %7d %7.1f %7.1f %7.1f %7.2f %9.2f %9.1f %9llu\n", c.machine.c_str(),
                  c.workload.c_str(), area.protect_lut, fmax_drop, base_vuln, vuln, davf,
                  davf_per_klut, recov_avg,
                  static_cast<unsigned long long>(c.protect.recovery_cycles_max));
  }
  return out;
}

std::string render_forensics(const CampaignReport& report) {
  if (!report.forensics) return {};
  std::string out =
      "First-divergence forensics: SDC/latent injections replayed golden-vs-\n"
      "faulty with paired commit recorders (budgeted per cell). cycle = first\n"
      "architecturally divergent commit; elem = diverging state element\n"
      "(pc / rf cell / guard / memory byte / early halt).\n\n";
  out += format("%-10s %-9s %6s %-9s %-7s %10s %-6s %-14s %-10s %-10s\n", "machine", "workload",
                "inj", "target", "outcome", "cycle", "elem", "coord", "golden", "faulty");
  auto coord_text = [](const DivergenceRecord& d) -> std::string {
    switch (d.element) {
      case DivergedElement::RfCell: return format("rf%d[%d]", d.unit, d.index);
      case DivergedElement::Guard: return format("g%d", d.unit);
      case DivergedElement::MemByte: return format("@0x%x", d.addr);
      case DivergedElement::Pc:
      case DivergedElement::Halt: return "-";
    }
    return "-";
  };
  for (const CellReport& c : report.cells) {
    if (!c.ok) continue;
    for (const ForensicRecord& r : c.forensics) {
      const DivergenceRecord& d = r.divergence;
      if (d.found) {
        out += format("%-10s %-9s %6llu %-9s %-7s %10llu %-6s %-14s 0x%08x 0x%08x\n",
                      c.machine.c_str(), c.workload.c_str(),
                      static_cast<unsigned long long>(r.injection), target_kind_name(r.target),
                      outcome_name(r.outcome), static_cast<unsigned long long>(d.cycle),
                      diverged_element_name(d.element), coord_text(d).c_str(), d.golden_value,
                      d.faulty_value);
      } else {
        out += format("%-10s %-9s %6llu %-9s %-7s %10s %-6s %-14s %-10s %-10s\n",
                      c.machine.c_str(), c.workload.c_str(),
                      static_cast<unsigned long long>(r.injection), target_kind_name(r.target),
                      outcome_name(r.outcome), "-", d.beyond_window ? "beyond" : "none", "-", "-",
                      "-");
      }
    }
    if (c.forensics_skipped != 0) {
      out += format("%-10s %-9s   (%llu more candidate(s) past the replay budget)\n",
                    c.machine.c_str(), c.workload.c_str(),
                    static_cast<unsigned long long>(c.forensics_skipped));
    }
  }
  return out;
}

namespace {

void write_tally(obs::JsonWriter& w, const TargetTally& t, bool protection) {
  w.begin_object();
  w.key("injections");
  w.value(t.injections);
  w.key("masked");
  w.value(t.masked);
  // Protection outcome keys only in protected campaigns: unprotected
  // reports stay byte-identical to earlier schema revisions.
  if (protection) {
    w.key("corrected");
    w.value(t.corrected);
    w.key("recovered");
    w.value(t.recovered);
    w.key("detected");
    w.value(t.detected);
  }
  w.key("sdc");
  w.value(t.sdc);
  w.key("timeout");
  w.value(t.timeout);
  w.key("trap");
  w.value(t.trap);
  w.key("err");
  w.value(t.err);
  w.key("latent");
  w.value(t.latent);
  w.end_object();
}

}  // namespace

std::string render_resil_report_json(const CampaignReport& report) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ttsc-resil-report");
  w.key("version");
  w.value(std::uint64_t{1});
  w.key("seed");
  w.value(report.seed);
  w.key("injections_per_cell");
  w.value(report.injections_per_cell);
  // Both markers appear only when set, keeping unprotected / completed
  // reports byte-identical to earlier schema revisions.
  if (report.protection) {
    w.key("protection");
    w.value(true);
  }
  if (report.truncated) {
    w.key("truncated");
    w.value(true);
  }
  // "machines" keyed by "name", like the run report, so report_diff
  // compares campaigns machine-by-machine, order-insensitively.
  w.key("machines");
  w.begin_array();
  std::vector<std::string> machine_order;
  for (const CellReport& c : report.cells) {
    bool seen = false;
    for (const std::string& m : machine_order) seen = seen || m == c.machine;
    if (!seen) machine_order.push_back(c.machine);
  }
  for (const std::string& machine : machine_order) {
    w.begin_object();
    w.key("name");
    w.value(machine);
    w.key("cells");
    w.begin_object();
    for (const CellReport& c : report.cells) {
      if (c.machine != machine) continue;
      w.key(c.workload);
      w.begin_object();
      if (!c.ok) {
        w.key("error");
        w.value(c.error);
        w.end_object();
        continue;
      }
      w.key("golden_cycles");
      w.value(c.golden_cycles);
      w.key("imem_bits");
      w.value(c.imem_bits);
      w.key("targets");
      w.begin_object();
      for (int t = 0; t < kNumTargetKinds; ++t) {
        const TargetTally& tt = c.targets[static_cast<std::size_t>(t)];
        if (tt.injections == 0) continue;
        w.key(target_kind_name(static_cast<TargetKind>(t)));
        write_tally(w, tt, report.protection);
      }
      w.end_object();
      w.key("total");
      write_tally(w, c.total(), report.protection);
      if (c.protected_machine) {
        w.key("protect");
        w.begin_object();
        w.key("rf_corrected");
        w.value(c.protect.rf_corrected);
        w.key("rf_detected");
        w.value(c.protect.rf_detected);
        w.key("fu_detected");
        w.value(c.protect.fu_detected);
        w.key("guard_corrected");
        w.value(c.protect.guard_corrected);
        w.key("imem_corrected");
        w.value(c.protect.imem_corrected);
        w.key("imem_detected");
        w.value(c.protect.imem_detected);
        w.key("rollbacks");
        w.value(c.protect.rollbacks);
        w.key("retries");
        w.value(c.protect.retries);
        w.key("recovered");
        w.value(c.protect.recovered);
        w.key("unrecoverable");
        w.value(c.protect.unrecoverable);
        w.key("recovery_cycles");
        w.value(c.protect.recovery_cycles);
        w.key("recovery_cycles_max");
        w.value(c.protect.recovery_cycles_max);
        w.end_object();
      }
      // Per-cell forensics only when the campaign ran with forensics on:
      // forensics-off reports stay byte-identical to the pre-forensics
      // schema (the existing resil_smoke.json golden depends on it).
      if (report.forensics) {
        w.key("forensics");
        w.begin_object();
        w.key("candidates");
        w.value(c.forensics_candidates);
        w.key("analyzed");
        w.value(static_cast<std::uint64_t>(c.forensics.size()));
        w.key("skipped_budget");
        w.value(c.forensics_skipped);
        w.key("records");
        w.begin_array();
        for (const ForensicRecord& r : c.forensics) {
          const DivergenceRecord& d = r.divergence;
          w.begin_object();
          w.key("injection");
          w.value(r.injection);
          w.key("target");
          w.value(target_kind_name(r.target));
          w.key("outcome");
          w.value(outcome_name(r.outcome));
          w.key("latent");
          w.value(r.latent);
          w.key("fault_cycle");
          w.value(r.fault_cycle);
          w.key("found");
          w.value(d.found);
          w.key("beyond_window");
          w.value(d.beyond_window);
          if (d.found) {
            w.key("cycle");
            w.value(d.cycle);
            w.key("element");
            w.value(diverged_element_name(d.element));
            switch (d.element) {
              case DivergedElement::RfCell:
                w.key("rf");
                w.value(d.unit);
                w.key("reg");
                w.value(d.index);
                break;
              case DivergedElement::Guard:
                w.key("guard");
                w.value(d.unit);
                break;
              case DivergedElement::MemByte:
                w.key("addr");
                w.value(std::uint64_t{d.addr});
                break;
              case DivergedElement::Pc:
              case DivergedElement::Halt:
                break;
            }
            w.key("golden_value");
            w.value(std::uint64_t{d.golden_value});
            w.key("faulty_value");
            w.value(std::uint64_t{d.faulty_value});
          }
          w.key("compared_events");
          w.value(d.compared_events);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take() + "\n";
}

void write_resil_report(const std::string& path, const CampaignReport& report) {
  const std::string text = render_resil_report_json(report);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << text) || (out.close(), !out)) {
    throw Error("cannot write resilience report: " + path);
  }
}

}  // namespace ttsc::resil
