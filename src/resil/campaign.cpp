#include "resil/campaign.hpp"

#include <fstream>
#include <optional>

#include "codegen/legalize.hpp"
#include "codegen/lower.hpp"
#include "mach/configs.hpp"
#include "obs/json.hpp"
#include "opt/passes.hpp"
#include "report/driver.hpp"
#include "resil/inject.hpp"
#include "scalar/scalar.hpp"
#include "sim/predecode.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "tta/tta.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::resil {

namespace {

const workloads::Workload& workload_by_name(const std::string& name) {
  for (const workloads::Workload& w : workloads::all_workloads()) {
    if (w.name == name) return w;
  }
  throw Error("resil: unknown workload " + name);
}

/// Fault-free reference outcome of one cell, cached once and diffed against
/// every injection.
struct Golden {
  std::uint64_t cycles = 0;
  std::uint32_t ret = 0;
  std::uint64_t out_checksum = 0;
  std::vector<std::uint32_t> rf;
  std::vector<std::uint8_t> guards;  // TTA only
};

/// Everything one cell's injections share: the scheduled program, its
/// predecoded form (reused by every state-fault run; instruction faults
/// re-predecode their mutated program) and the golden outcome.
struct PreparedCell {
  mach::Machine machine;
  const workloads::Workload* workload = nullptr;
  ir::Module module;

  std::optional<tta::TtaProgram> tta_prog;
  std::optional<vliw::VliwProgram> vliw_prog;
  std::optional<scalar::ScalarProgram> scalar_prog;
  std::shared_ptr<const sim::PredecodedTta> tta_pre;
  std::shared_ptr<const sim::PredecodedVliw> vliw_pre;
  std::shared_ptr<const sim::PredecodedScalar> scalar_pre;

  Golden golden;
  std::optional<ir::Memory> golden_mem;
  std::uint64_t imem_bits = 0;
};

PreparedCell prepare_cell(const std::string& machine_name, const workloads::Workload& w) {
  PreparedCell cell;
  cell.machine = mach::machine_by_name(machine_name);
  cell.workload = &w;
  // Same pipeline as report::compile_and_run_prebuilt, minus the report
  // plumbing: the campaign needs the program form itself for instruction
  // faults, which the driver does not expose.
  cell.module = report::build_optimized(w);
  ir::Function& entry = cell.module.function(workloads::entry_point());
  if (cell.machine.model == mach::Model::Tta && cell.machine.has_guards()) {
    opt::if_convert_selects(entry);
  } else {
    codegen::expand_selects(entry);
  }
  if (cell.machine.model == mach::Model::Scalar) {
    codegen::legalize_scalar_operands(entry);
  }
  const codegen::LowerResult lowered =
      codegen::lower(cell.module, workloads::entry_point(), cell.machine);

  ir::Memory mem = report::make_loaded_memory(cell.module);
  switch (cell.machine.model) {
    case mach::Model::Scalar: {
      cell.scalar_prog = scalar::emit_scalar(lowered.func);
      cell.scalar_pre = std::make_shared<const sim::PredecodedScalar>(
          sim::predecode(*cell.scalar_prog, cell.machine));
      cell.imem_bits = imem_bits(*cell.scalar_prog);
      scalar::ScalarSim sim(*cell.scalar_prog, cell.machine, mem);
      sim.use_predecoded(cell.scalar_pre);
      const scalar::ExecResult r = sim.run();
      if (r.status != sim::ExecStatus::Ok) {
        throw Error(format("golden run did not complete: %s", sim::exec_status_name(r.status)));
      }
      cell.golden = {r.cycles, r.ret, 0, r.rf_state, {}};
      break;
    }
    case mach::Model::Vliw: {
      cell.vliw_prog = vliw::schedule_vliw(lowered.func, cell.machine);
      cell.vliw_pre = std::make_shared<const sim::PredecodedVliw>(
          sim::predecode(*cell.vliw_prog, cell.machine));
      cell.imem_bits = imem_bits(*cell.vliw_prog);
      vliw::VliwSim sim(*cell.vliw_prog, cell.machine, mem);
      sim.use_predecoded(cell.vliw_pre);
      const vliw::ExecResult r = sim.run();
      if (r.status != sim::ExecStatus::Ok) {
        throw Error(format("golden run did not complete: %s", sim::exec_status_name(r.status)));
      }
      cell.golden = {r.cycles, r.ret, 0, r.rf_state, {}};
      break;
    }
    case mach::Model::Tta: {
      cell.tta_prog = tta::schedule_tta(lowered.func, cell.machine);
      cell.tta_pre = std::make_shared<const sim::PredecodedTta>(
          sim::predecode(*cell.tta_prog, cell.machine));
      cell.imem_bits = imem_bits(*cell.tta_prog);
      tta::TtaSim sim(*cell.tta_prog, cell.machine, mem);
      sim.use_predecoded(cell.tta_pre);
      const tta::ExecResult r = sim.run();
      if (r.status != sim::ExecStatus::Ok) {
        throw Error(format("golden run did not complete: %s", sim::exec_status_name(r.status)));
      }
      cell.golden = {r.cycles, r.ret, 0, r.rf_state, r.guard_state};
      break;
    }
  }
  cell.golden.out_checksum = report::workload_output_checksum(cell.module, w, mem);
  cell.golden_mem.emplace(std::move(mem));
  return cell;
}

template <typename Result>
Outcome classify(const PreparedCell& cell, const Result& r, const ir::Memory& mem,
                 bool& latent) {
  switch (r.status) {
    case sim::ExecStatus::Trapped: return Outcome::Trap;
    case sim::ExecStatus::TimedOut: return Outcome::Timeout;
    case sim::ExecStatus::Ok: break;
  }
  const std::uint64_t checksum =
      report::workload_output_checksum(cell.module, *cell.workload, mem);
  if (r.ret != cell.golden.ret || checksum != cell.golden.out_checksum) return Outcome::Sdc;
  latent = r.rf_state != cell.golden.rf || !(mem == *cell.golden_mem);
  if constexpr (requires { r.guard_state; }) {
    latent = latent || r.guard_state != cell.golden.guards;
  }
  return Outcome::Masked;
}

Outcome run_injection(const PreparedCell& cell, const FaultSpec& spec, bool& latent) {
  latent = false;
  // A fault can at most double the dynamic path before it either halts,
  // traps, or diverges into a hang; anything past 2x golden (+ slack for
  // short programs) is classified as Timeout.
  const std::uint64_t budget = cell.golden.cycles * 2 + 256;
  ir::Memory mem = report::make_loaded_memory(cell.module);
  sim::SimOptions opts;
  opts.harden = true;
  sim::FaultSet fs;
  if (spec.target != TargetKind::Imem) {
    fs.faults.push_back(spec.state);
    opts.faults = &fs;
  }
  switch (cell.machine.model) {
    case mach::Model::Scalar: {
      if (spec.target == TargetKind::Imem) {
        const scalar::ScalarProgram mutated = flip_bit(*cell.scalar_prog, spec.imem_bit);
        scalar::ScalarSim sim(mutated, cell.machine, mem, opts);
        return classify(cell, sim.run(budget), mem, latent);
      }
      scalar::ScalarSim sim(*cell.scalar_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.scalar_pre);
      return classify(cell, sim.run(budget), mem, latent);
    }
    case mach::Model::Vliw: {
      if (spec.target == TargetKind::Imem) {
        const vliw::VliwProgram mutated = flip_bit(*cell.vliw_prog, spec.imem_bit);
        vliw::VliwSim sim(mutated, cell.machine, mem, opts);
        return classify(cell, sim.run(budget), mem, latent);
      }
      vliw::VliwSim sim(*cell.vliw_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.vliw_pre);
      return classify(cell, sim.run(budget), mem, latent);
    }
    case mach::Model::Tta: {
      if (spec.target == TargetKind::Imem) {
        const tta::TtaProgram mutated = flip_bit(*cell.tta_prog, spec.imem_bit);
        tta::TtaSim sim(mutated, cell.machine, mem, opts);
        return classify(cell, sim.run(budget), mem, latent);
      }
      tta::TtaSim sim(*cell.tta_prog, cell.machine, mem, opts);
      sim.use_predecoded(cell.tta_pre);
      return classify(cell, sim.run(budget), mem, latent);
    }
  }
  TTSC_UNREACHABLE("resil: unhandled machine model");
}

void export_cell_metrics(obs::Registry* registry, const CellReport& cr) {
  if (registry == nullptr) return;
  // One shard, one merge per cell (the obs::Registry concurrency contract).
  obs::Registry shard;
  for (int t = 0; t < kNumTargetKinds; ++t) {
    const TargetTally& tt = cr.targets[static_cast<std::size_t>(t)];
    if (tt.injections == 0) continue;
    const char* tn = target_kind_name(static_cast<TargetKind>(t));
    shard.add(format("resil.%s.injections", tn), tt.injections);
    shard.add(format("resil.%s.masked", tn), tt.masked);
    shard.add(format("resil.%s.sdc", tn), tt.sdc);
    shard.add(format("resil.%s.timeout", tn), tt.timeout);
    shard.add(format("resil.%s.trap", tn), tt.trap);
    shard.add(format("resil.%s.err", tn), tt.err);
    shard.add(format("resil.%s.latent", tn), tt.latent);
  }
  shard.add("resil.cells.run");
  if (!cr.ok) shard.add("resil.cells.err");
  registry->merge(shard);
}

}  // namespace

void TargetTally::accumulate(const TargetTally& other) {
  injections += other.injections;
  masked += other.masked;
  sdc += other.sdc;
  timeout += other.timeout;
  trap += other.trap;
  err += other.err;
  latent += other.latent;
}

TargetTally CellReport::total() const {
  TargetTally t;
  for (const TargetTally& tt : targets) t.accumulate(tt);
  return t;
}

bool CampaignReport::all_ok() const {
  for (const CellReport& c : cells) {
    if (!c.ok || c.total().err != 0) return false;
  }
  return true;
}

std::uint64_t CampaignReport::infra_failures() const {
  std::uint64_t n = 0;
  for (const CellReport& c : cells) {
    if (!c.ok) {
      n += static_cast<std::uint64_t>(injections_per_cell);
    } else {
      n += c.total().err;
    }
  }
  return n;
}

CampaignReport run_campaign(const CampaignOptions& options) {
  if (options.injections_per_cell <= 0) {
    throw Error("resil: injections_per_cell must be positive");
  }
  // Configuration errors (unknown names) throw up front; anything that
  // fails later degrades to an ERR cell.
  std::vector<const workloads::Workload*> cell_workloads;
  for (const std::string& name : options.workloads) {
    cell_workloads.push_back(&workload_by_name(name));
  }
  for (const std::string& name : options.machines) (void)mach::machine_by_name(name);

  CampaignReport report;
  report.seed = options.seed;
  report.injections_per_cell = options.injections_per_cell;

  std::optional<support::ThreadPool> pool;
  if (!options.serial) pool.emplace(options.threads);

  for (const std::string& machine_name : options.machines) {
    for (const workloads::Workload* w : cell_workloads) {
      CellReport cr;
      cr.machine = machine_name;
      cr.workload = w->name;
      try {
        const PreparedCell cell = prepare_cell(machine_name, *w);
        cr.golden_cycles = cell.golden.cycles;
        cr.imem_bits = cell.imem_bits;
        const FaultPlan plan(cell.machine, cell.machine.model == mach::Model::Tta,
                             cell.imem_bits, cell.golden.cycles);
        const std::uint64_t cell_seed =
            mix_seed(options.seed, hash_name(machine_name + "/" + w->name));

        // Index-addressed result table: the reduction below reads it in
        // order, so tallies are thread-count independent.
        struct Slot {
          TargetKind target = TargetKind::Rf;
          Outcome outcome = Outcome::Err;
          bool latent = false;
        };
        const std::size_t n = static_cast<std::size_t>(options.injections_per_cell);
        std::vector<Slot> slots(n);
        auto body = [&](std::size_t i) {
          const FaultSpec spec = plan.sample(mix_seed(cell_seed, i));
          Slot s;
          s.target = spec.target;
          for (int attempt = 0; attempt < 2; ++attempt) {
            try {
              s.outcome = run_injection(cell, spec, s.latent);
              break;
            } catch (const std::exception&) {
              // Infrastructure failure: retry once, then record Err. The
              // fault model itself never throws — simulators fail closed.
              s.outcome = Outcome::Err;
            }
          }
          slots[i] = s;
        };
        if (options.serial) {
          for (std::size_t i = 0; i < n; ++i) body(i);
        } else {
          support::parallel_for(*pool, n, body);
        }

        for (const Slot& s : slots) {
          TargetTally& tt = cr.targets[static_cast<std::size_t>(s.target)];
          ++tt.injections;
          switch (s.outcome) {
            case Outcome::Masked:
              ++tt.masked;
              if (s.latent) ++tt.latent;
              break;
            case Outcome::Sdc: ++tt.sdc; break;
            case Outcome::Timeout: ++tt.timeout; break;
            case Outcome::Trap: ++tt.trap; break;
            case Outcome::Err: ++tt.err; break;
          }
        }
      } catch (const std::exception& e) {
        cr.ok = false;
        cr.error = e.what();
      }
      export_cell_metrics(options.registry, cr);
      report.cells.push_back(std::move(cr));
    }
  }
  return report;
}

std::string render_resilience(const CampaignReport& report) {
  std::string out = format(
      "SEU resilience (AVF-style): %d single-bit injections per cell, seed 0x%llx.\n"
      "Targets: rf = register-file bits, fu-result = TTA result/bypass registers,\n"
      "guard = predicate registers, imem = instruction encodings (through the\n"
      "decoder). vuln%% = (sdc + timeout + trap) / injections.\n\n",
      report.injections_per_cell, static_cast<unsigned long long>(report.seed));
  out += format("%-10s %-9s %-10s %8s %8s %8s %8s %8s %8s %7s\n", "machine", "workload",
                "target", "inj", "masked", "sdc", "timeout", "trap", "err", "vuln%");
  auto row = [&](const CellReport& c, const char* name, const TargetTally& t, bool lead) {
    const double vuln =
        t.injections == 0 ? 0.0
                          : 100.0 * static_cast<double>(t.vulnerable()) /
                                static_cast<double>(t.injections);
    out += format("%-10s %-9s %-10s %8llu %8llu %8llu %8llu %8llu %8llu %7.1f\n",
                  lead ? c.machine.c_str() : "", lead ? c.workload.c_str() : "", name,
                  static_cast<unsigned long long>(t.injections),
                  static_cast<unsigned long long>(t.masked),
                  static_cast<unsigned long long>(t.sdc),
                  static_cast<unsigned long long>(t.timeout),
                  static_cast<unsigned long long>(t.trap),
                  static_cast<unsigned long long>(t.err), vuln);
  };
  for (const CellReport& c : report.cells) {
    if (!c.ok) {
      out += format("%-10s %-9s ERR: %s\n", c.machine.c_str(), c.workload.c_str(),
                    c.error.c_str());
      continue;
    }
    bool lead = true;
    for (int t = 0; t < kNumTargetKinds; ++t) {
      const TargetTally& tt = c.targets[static_cast<std::size_t>(t)];
      if (tt.injections == 0) continue;
      row(c, target_kind_name(static_cast<TargetKind>(t)), tt, lead);
      lead = false;
    }
    row(c, "total", c.total(), false);
  }
  return out;
}

namespace {

void write_tally(obs::JsonWriter& w, const TargetTally& t) {
  w.begin_object();
  w.key("injections");
  w.value(t.injections);
  w.key("masked");
  w.value(t.masked);
  w.key("sdc");
  w.value(t.sdc);
  w.key("timeout");
  w.value(t.timeout);
  w.key("trap");
  w.value(t.trap);
  w.key("err");
  w.value(t.err);
  w.key("latent");
  w.value(t.latent);
  w.end_object();
}

}  // namespace

std::string render_resil_report_json(const CampaignReport& report) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ttsc-resil-report");
  w.key("version");
  w.value(std::uint64_t{1});
  w.key("seed");
  w.value(report.seed);
  w.key("injections_per_cell");
  w.value(report.injections_per_cell);
  // "machines" keyed by "name", like the run report, so report_diff
  // compares campaigns machine-by-machine, order-insensitively.
  w.key("machines");
  w.begin_array();
  std::vector<std::string> machine_order;
  for (const CellReport& c : report.cells) {
    bool seen = false;
    for (const std::string& m : machine_order) seen = seen || m == c.machine;
    if (!seen) machine_order.push_back(c.machine);
  }
  for (const std::string& machine : machine_order) {
    w.begin_object();
    w.key("name");
    w.value(machine);
    w.key("cells");
    w.begin_object();
    for (const CellReport& c : report.cells) {
      if (c.machine != machine) continue;
      w.key(c.workload);
      w.begin_object();
      if (!c.ok) {
        w.key("error");
        w.value(c.error);
        w.end_object();
        continue;
      }
      w.key("golden_cycles");
      w.value(c.golden_cycles);
      w.key("imem_bits");
      w.value(c.imem_bits);
      w.key("targets");
      w.begin_object();
      for (int t = 0; t < kNumTargetKinds; ++t) {
        const TargetTally& tt = c.targets[static_cast<std::size_t>(t)];
        if (tt.injections == 0) continue;
        w.key(target_kind_name(static_cast<TargetKind>(t)));
        write_tally(w, tt);
      }
      w.end_object();
      w.key("total");
      write_tally(w, c.total());
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take() + "\n";
}

void write_resil_report(const std::string& path, const CampaignReport& report) {
  const std::string text = render_resil_report_json(report);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << text) || (out.close(), !out)) {
    throw Error("cannot write resilience report: " + path);
  }
}

}  // namespace ttsc::resil
