#include "resil/inject.hpp"

#include "support/assert.hpp"

namespace ttsc::resil {

namespace {

// Field widths of the modelled instruction encoding (see inject.hpp).
constexpr int kImmBits = 32;
constexpr int kFuBits = 8;
constexpr int kRfBits = 4;
constexpr int kRegBits = 8;
constexpr int kOpcodeBits = 8;
constexpr int kTargetBits = 16;
constexpr int kGuardBits = 4;

/// One walker serves both counting (target out of range: nothing flips,
/// `pos` accumulates the bit total) and flipping (the field containing
/// `target` gets one bit XORed). Using the same traversal for both keeps
/// the bit numbering and the mutation in lockstep by construction.
struct BitCursor {
  std::uint64_t target;
  std::uint64_t pos = 0;
  bool flipped = false;

  explicit BitCursor(std::uint64_t t = UINT64_MAX) : target(t) {}

  template <typename T>
  void field(T& v, int width) {
    if (!flipped && target >= pos && target < pos + static_cast<std::uint64_t>(width)) {
      v = static_cast<T>(static_cast<std::uint64_t>(v) ^ (1ull << (target - pos)));
      flipped = true;
    }
    pos += static_cast<std::uint64_t>(width);
  }
};

void walk_move(tta::Move& mv, BitCursor& cur) {
  // Guard specifier, encoded as guard+1 (0 = unconditional) so a flip of an
  // unconditional move can *gain* a guard and vice versa, and the decoded
  // index can never go below -1.
  int guard_enc = mv.guard + 1;
  cur.field(guard_enc, kGuardBits);
  mv.guard = guard_enc - 1;

  switch (mv.src.kind) {
    case tta::MoveSrc::Kind::Imm: cur.field(mv.src.imm, kImmBits); break;
    case tta::MoveSrc::Kind::FuResult: cur.field(mv.src.unit, kFuBits); break;
    case tta::MoveSrc::Kind::RfRead:
      cur.field(mv.src.unit, kRfBits);
      cur.field(mv.src.reg_index, kRegBits);
      break;
  }

  switch (mv.dst.kind) {
    case tta::MoveDst::Kind::FuOperand: cur.field(mv.dst.unit, kFuBits); break;
    case tta::MoveDst::Kind::FuTrigger: {
      cur.field(mv.dst.unit, kFuBits);
      int op = static_cast<int>(mv.dst.opcode);
      cur.field(op, kOpcodeBits);
      mv.dst.opcode = static_cast<ir::Opcode>(op);
      if (mv.is_control) cur.field(mv.target, kTargetBits);
      break;
    }
    case tta::MoveDst::Kind::RfWrite:
      cur.field(mv.dst.unit, kRfBits);
      cur.field(mv.dst.reg_index, kRegBits);
      break;
    case tta::MoveDst::Kind::GuardWrite: cur.field(mv.dst.unit, kGuardBits); break;
  }
}

void walk_minstr(codegen::MInstr& in, BitCursor& cur) {
  int op = static_cast<int>(in.op);
  cur.field(op, kOpcodeBits);
  in.op = static_cast<ir::Opcode>(op);
  if (in.dst.valid()) {
    cur.field(in.dst.rf, kRfBits);
    cur.field(in.dst.index, kRegBits);
  }
  for (codegen::MOperand& s : in.srcs) {
    if (s.is_reg()) {
      cur.field(s.reg.rf, kRfBits);
      cur.field(s.reg.index, kRegBits);
    } else {
      cur.field(s.imm, kImmBits);
    }
  }
  for (std::uint32_t& t : in.targets) cur.field(t, kTargetBits);
}

void walk_program(tta::TtaProgram& p, BitCursor& cur) {
  for (tta::TtaInstruction& in : p.instrs) {
    for (tta::Move& mv : in.moves) walk_move(mv, cur);
  }
}

void walk_program(vliw::VliwProgram& p, BitCursor& cur) {
  for (vliw::Bundle& b : p.bundles) {
    for (auto& slot : b.slots) {
      if (slot.has_value()) walk_minstr(slot->instr, cur);
    }
  }
}

void walk_program(scalar::ScalarProgram& p, BitCursor& cur) {
  for (codegen::MInstr& in : p.instrs) walk_minstr(in, cur);
}

template <typename Program>
std::uint64_t count_bits(const Program& program) {
  Program copy = program;  // the counting walk never mutates, but keep const-correct
  BitCursor cur;
  walk_program(copy, cur);
  return cur.pos;
}

template <typename Program>
Program flip(const Program& program, std::uint64_t bit) {
  Program copy = program;
  BitCursor cur(bit);
  walk_program(copy, cur);
  TTSC_ASSERT(cur.flipped, "imem fault bit index out of range");
  return copy;
}

}  // namespace

std::uint64_t imem_bits(const tta::TtaProgram& program) { return count_bits(program); }
std::uint64_t imem_bits(const vliw::VliwProgram& program) { return count_bits(program); }
std::uint64_t imem_bits(const scalar::ScalarProgram& program) { return count_bits(program); }

tta::TtaProgram flip_bit(const tta::TtaProgram& program, std::uint64_t bit) {
  return flip(program, bit);
}
vliw::VliwProgram flip_bit(const vliw::VliwProgram& program, std::uint64_t bit) {
  return flip(program, bit);
}
scalar::ScalarProgram flip_bit(const scalar::ScalarProgram& program, std::uint64_t bit) {
  return flip(program, bit);
}

// Fetch-unit lookup via the same walker that defines the bit numbering (one
// unit at a time, so the boundary bookkeeping can never drift from
// flip_bit). The walk mutates nothing: the cursor's default target is out of
// range.

std::uint32_t imem_instr_of_bit(const tta::TtaProgram& program, std::uint64_t bit) {
  tta::TtaProgram copy = program;
  BitCursor cur;
  for (std::size_t i = 0; i < copy.instrs.size(); ++i) {
    for (tta::Move& mv : copy.instrs[i].moves) walk_move(mv, cur);
    if (bit < cur.pos) return static_cast<std::uint32_t>(i);
  }
  TTSC_ASSERT(false, "imem fault bit index out of range");
  return 0;
}

std::uint32_t imem_instr_of_bit(const vliw::VliwProgram& program, std::uint64_t bit) {
  vliw::VliwProgram copy = program;
  BitCursor cur;
  for (std::size_t i = 0; i < copy.bundles.size(); ++i) {
    for (auto& slot : copy.bundles[i].slots) {
      if (slot.has_value()) walk_minstr(slot->instr, cur);
    }
    if (bit < cur.pos) return static_cast<std::uint32_t>(i);
  }
  TTSC_ASSERT(false, "imem fault bit index out of range");
  return 0;
}

std::uint32_t imem_instr_of_bit(const scalar::ScalarProgram& program, std::uint64_t bit) {
  scalar::ScalarProgram copy = program;
  BitCursor cur;
  for (std::size_t i = 0; i < copy.instrs.size(); ++i) {
    walk_minstr(copy.instrs[i], cur);
    if (bit < cur.pos) return static_cast<std::uint32_t>(i);
  }
  TTSC_ASSERT(false, "imem fault bit index out of range");
  return 0;
}

}  // namespace ttsc::resil
