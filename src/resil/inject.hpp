// Instruction-memory fault injection: single-bit flips of the scheduled
// program's encoding fields, applied "through the decoder".
//
// Rather than flipping bits of an opaque binary image and re-decoding it
// (which would need a full binary round trip per backend), the injector
// enumerates the encoding-bearing fields of the program form itself and
// flips one bit of one field. Field widths mirror what an automatically
// generated encoding spends on each of them — immediates 32 bits, register
// indices 8, RF selectors 4, FU selectors and opcodes 8, branch targets 16,
// TTA guard specifiers 4 (encoded as guard+1 so "unconditional" is a
// flippable code point) — so every flip lands on a bit a real instruction
// memory would hold. Derived metadata that a decoder would recompute (move
// kinds, bus assignments, is_control, long-immediate layout) is not
// flippable.
//
// The mutated program then goes through the normal (validating) predecoder
// / reference executor: a corrupted encoding becomes either a concrete
// wrong-but-valid instruction or a structured trap — never UB.
//
// Bit indices are stable for a given program: `imem_bits` counts the
// flippable bits and `flip_bit(program, k)` for k in [0, imem_bits) flips
// the k-th one, deterministically.
#pragma once

#include <cstdint>

#include "scalar/scalar.hpp"
#include "tta/tta.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::resil {

std::uint64_t imem_bits(const tta::TtaProgram& program);
std::uint64_t imem_bits(const vliw::VliwProgram& program);
std::uint64_t imem_bits(const scalar::ScalarProgram& program);

tta::TtaProgram flip_bit(const tta::TtaProgram& program, std::uint64_t bit);
vliw::VliwProgram flip_bit(const vliw::VliwProgram& program, std::uint64_t bit);
scalar::ScalarProgram flip_bit(const scalar::ScalarProgram& program, std::uint64_t bit);

/// The pc-granular fetch unit holding encoding bit `bit` — the TTA/scalar
/// instruction or VLIW bundle index, i.e. the codeword an imem ECC/parity
/// code would protect. The protection layer keys imem poisons on this index
/// (sim/protect.hpp check_imem_fetch), so two bits map to the same codeword
/// exactly when this returns the same value for both.
std::uint32_t imem_instr_of_bit(const tta::TtaProgram& program, std::uint64_t bit);
std::uint32_t imem_instr_of_bit(const vliw::VliwProgram& program, std::uint64_t bit);
std::uint32_t imem_instr_of_bit(const scalar::ScalarProgram& program, std::uint64_t bit);

}  // namespace ttsc::resil
