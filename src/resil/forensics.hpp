// First-divergence fault forensics: where, cycle-exactly, did an injected
// fault first change architectural state?
//
// The campaign layer classifies an injection by diffing end states (return
// value, output checksum, final RF/memory image). For SDC and latent
// outcomes that says *that* the run corrupted state but not *where*: the
// first architecturally divergent cycle and the diverging state element are
// what a debugging session actually needs. This header provides the
// primitives: a bounded CommitRecorder observer that captures the commit
// stream — executed pcs, RF writes, guard latches, memory stores — from the
// fault cycle onward, and first_divergence(), which compares a golden and a
// faulty recording event-for-event and maps the first mismatch to a state
// element (pc / RF cell / guard / memory byte) or to an early halt.
//
// Soundness: state faults apply at the top of their cycle, before that
// cycle's result delivery, RF commits and guard latches (sim/fault.hpp), so
// commits up to and including the fault cycle equal the golden run's —
// recording both replays from the fault cycle loses nothing. Both replays
// are deterministic, so the comparison is exact, and the window/event
// bounds keep a forensic replay's cost within a fixed multiple of a plain
// injection (the campaign's replay budget does the rest).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "sim/observer.hpp"

namespace ttsc::resil {

/// Which architectural state element diverged first.
enum class DivergedElement : std::uint8_t {
  Pc,       // control flow: a different instruction executed
  RfCell,   // a register-file cell committed a different value
  Guard,    // a guard register latched a different value
  MemByte,  // a store wrote different bytes (or a different address)
  Halt,     // one run stopped committing (returned/trapped/hung) early
};

constexpr const char* diverged_element_name(DivergedElement e) {
  switch (e) {
    case DivergedElement::Pc: return "pc";
    case DivergedElement::RfCell: return "rf";
    case DivergedElement::Guard: return "guard";
    case DivergedElement::MemByte: return "mem";
    case DivergedElement::Halt: return "halt";
  }
  return "?";
}

/// Result of comparing a golden and a faulty commit recording.
struct DivergenceRecord {
  /// True when a first divergent commit was found inside the recorded
  /// window. False with beyond_window set means both recordings were
  /// identical but bounded (the divergence, which the SDC classification
  /// proves exists, lies past the window); false without beyond_window
  /// means the streams were identical and complete (no architectural
  /// divergence at all — a latent fault that never reached the commit
  /// stream, e.g. a flipped dead register).
  bool found = false;
  bool beyond_window = false;
  std::uint64_t cycle = 0;
  DivergedElement element = DivergedElement::Pc;
  /// Element coordinates: RF index / guard index (unit), register index
  /// (index), store address (addr) — unused fields zero.
  int unit = 0;
  int index = 0;
  std::uint32_t addr = 0;
  /// The two values of the diverging element (pc, cell value, latched
  /// guard, stored word). When the element exists on only one side (extra
  /// or missing commit), the absent side reads 0.
  std::uint32_t golden_value = 0;
  std::uint32_t faulty_value = 0;
  /// Commits compared before the verdict (diagnostic).
  std::uint64_t compared_events = 0;
};

/// Bounds for one forensic replay pair.
struct ForensicsWindow {
  /// Record commits in [start_cycle, start_cycle + window_cycles).
  std::uint64_t start_cycle = 0;
  std::uint64_t window_cycles = 4096;
  /// Hard event cap per recording (a window of dense TTA cycles can carry
  /// several commits per cycle).
  std::size_t max_events = 1u << 15;
};

/// Observer that records the commit stream — Exec, RfWrite, GuardWrite and
/// Store events — inside a ForensicsWindow. Storage is preallocated to the
/// event cap; recording past the cap or the window sets truncated().
class CommitRecorder final : public sim::ExecObserver {
 public:
  explicit CommitRecorder(const ForensicsWindow& window);

  void on_exec(std::uint64_t cycle, std::uint32_t pc, bool shadow) override;
  void on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) override;
  void on_guard_write(std::uint64_t cycle, int guard, std::uint32_t value) override;
  void on_store(std::uint64_t cycle, std::uint32_t addr, std::uint32_t value,
                std::uint8_t width) override;

  const std::vector<obs::FlightEvent>& events() const { return events_; }
  /// True when commits inside the window were dropped (event cap hit) or
  /// the run kept committing past the window end: an identical-prefix
  /// verdict is then "beyond window", not "no divergence".
  bool truncated() const { return truncated_; }
  /// External truncation: the replay driver caps its simulation budget at
  /// the window end (simulating further can only distinguish "stream
  /// complete" from "more commits later"), so a replay cut off mid-run is
  /// marked truncated here to keep the identical-prefix verdict honest.
  void mark_truncated() { truncated_ = true; }

 private:
  void push(const obs::FlightEvent& ev);

  ForensicsWindow window_;
  std::vector<obs::FlightEvent> events_;
  bool truncated_ = false;
};

/// Compare two commit recordings (same engine, same window) and report the
/// first architectural divergence.
DivergenceRecord first_divergence(const CommitRecorder& golden, const CommitRecorder& faulty);

}  // namespace ttsc::resil
