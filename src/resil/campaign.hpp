// SEU fault-injection campaigns with an AVF-style resilience report.
//
// A campaign runs, for every (machine, workload) cell, thousands of
// independent single-fault simulations against the hardened (fail-closed)
// simulators and classifies each injection by diffing against the cell's
// cached fault-free golden run:
//
//  * Masked  — the run returned with the golden return value and output
//              checksum (a `latent` sub-count records runs whose final
//              RF/memory image still differed — corrupt state that never
//              reached an output);
//  * SDC     — silent data corruption: the run returned but the return
//              value or output checksum differs;
//  * Timeout — the run exceeded 2x the golden cycle count (+ slack);
//  * Trap    — the simulator failed closed (ExecStatus::Trapped);
//  * Err     — injection infrastructure failure after one retry (never the
//              workload's fault — a campaign with errors exits non-zero).
//
// Determinism contract: every injection's fault is a pure function of
// (campaign seed, machine name, workload name, injection index) via
// resil::mix_seed, injections run into an index-addressed result table, and
// cells are reduced in option order — so the report (table text and JSON)
// is byte-identical for any thread count, including fully serial.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "resil/fault_plan.hpp"

namespace ttsc::resil {

enum class Outcome : std::uint8_t { Masked, Sdc, Timeout, Trap, Err };
constexpr int kNumOutcomes = 5;

constexpr const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Masked: return "masked";
    case Outcome::Sdc: return "sdc";
    case Outcome::Timeout: return "timeout";
    case Outcome::Trap: return "trap";
    case Outcome::Err: return "err";
  }
  return "?";
}

struct TargetTally {
  std::uint64_t injections = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t timeout = 0;
  std::uint64_t trap = 0;
  std::uint64_t err = 0;
  /// Masked runs whose final RF/memory image differed from golden.
  std::uint64_t latent = 0;

  /// Architectural vulnerability: the fraction of injections with any
  /// externally visible effect (SDC, hang, trap).
  std::uint64_t vulnerable() const { return sdc + timeout + trap; }
  void accumulate(const TargetTally& other);
};

struct CellReport {
  std::string machine;
  std::string workload;
  /// False when the cell itself could not be prepared or its golden run
  /// failed; `error` holds the message, the tallies are empty, and the
  /// campaign renders the cell as ERR (and exits non-zero).
  bool ok = true;
  std::string error;
  std::uint64_t golden_cycles = 0;
  std::uint64_t imem_bits = 0;
  /// Per fault-target tallies, indexed by TargetKind.
  std::array<TargetTally, kNumTargetKinds> targets{};

  TargetTally total() const;
};

struct CampaignOptions {
  std::uint64_t seed = 0x7715c5eedull;
  int injections_per_cell = 1000;
  int threads = 0;      // <= 0: hardware concurrency
  bool serial = false;  // plain loop, no thread pool (determinism reference)
  std::vector<std::string> machines = {"mblaze-3", "m-vliw-2", "m-tta-2", "g-tta-2"};
  std::vector<std::string> workloads = {"blowfish", "sha"};
  /// Optional metrics sink: "resil.<target>.<outcome>" counters plus
  /// "resil.cells.run"/"resil.cells.err", merged once per cell.
  obs::Registry* registry = nullptr;
};

struct CampaignReport {
  std::uint64_t seed = 0;
  int injections_per_cell = 0;
  std::vector<CellReport> cells;  // machine-major, in option order

  bool all_ok() const;
  /// Total infrastructure failures: failed cells count all their
  /// injections, plus per-injection Err outcomes in healthy cells.
  std::uint64_t infra_failures() const;
};

/// Run the campaign. Cells execute sequentially; each cell's injections fan
/// out over a support::ThreadPool (unless options.serial). Throws
/// ttsc::Error only for configuration mistakes (unknown machine/workload
/// name, non-positive injection count) — cell failures degrade to ERR
/// entries instead.
CampaignReport run_campaign(const CampaignOptions& options);

/// AVF-style text table (the paper-artifact stdout of table_resilience).
std::string render_resilience(const CampaignReport& report);

/// Machine-readable report, schema "ttsc-resil-report" v1. The top-level
/// "machines" array is keyed by each element's "name", so
/// report::diff_reports / bench report_diff compare campaigns
/// order-insensitively.
std::string render_resil_report_json(const CampaignReport& report);
void write_resil_report(const std::string& path, const CampaignReport& report);

}  // namespace ttsc::resil
