// SEU fault-injection campaigns with an AVF-style resilience report.
//
// A campaign runs, for every (machine, workload) cell, thousands of
// independent single-fault simulations against the hardened (fail-closed)
// simulators and classifies each injection by diffing against the cell's
// cached fault-free golden run:
//
//  * Masked  — the run returned with the golden return value and output
//              checksum (a `latent` sub-count records runs whose final
//              RF/memory image still differed — corrupt state that never
//              reached an output);
//  * SDC     — silent data corruption: the run returned but the return
//              value or output checksum differs;
//  * Timeout — the run exceeded 2x the golden cycle count (+ slack);
//  * Trap    — the simulator failed closed (ExecStatus::Trapped);
//  * Err     — injection infrastructure failure after one retry (never the
//              workload's fault — a campaign with errors exits non-zero).
//
// Determinism contract: every injection's fault is a pure function of
// (campaign seed, machine name, workload name, injection index) via
// resil::mix_seed, injections run into an index-addressed result table, and
// cells are reduced in option order — so the report (table text and JSON)
// is byte-identical for any thread count, including fully serial.
#pragma once

#include <array>
#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "resil/fault_plan.hpp"
#include "resil/forensics.hpp"

namespace ttsc::resil {

/// Injection outcomes. The first four are the unprotected classification;
/// protected machines (mach::Protection) add three non-vulnerable classes:
///
///  * Corrected — a protection code absorbed the fault with no architectural
///                effect (SEC-DED single-bit scrub, TMR guard vote, imem
///                codeword scrub) and the run matched golden exactly;
///  * Recovered — the fault was *detected* and checkpoint-rollback replayed
///                from a clean checkpoint to the golden outcome;
///  * Detected  — the fault was detected but not recovered (no rollback
///                configured, the checkpoint was already corrupted, or the
///                retry budget ran out): a structured
///                detected-unrecoverable stop, the safe DUE class.
enum class Outcome : std::uint8_t {
  Masked,
  Corrected,
  Recovered,
  Detected,
  Sdc,
  Timeout,
  Trap,
  Err,
};
constexpr int kNumOutcomes = 8;

constexpr const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Masked: return "masked";
    case Outcome::Corrected: return "corrected";
    case Outcome::Recovered: return "recovered";
    case Outcome::Detected: return "detected";
    case Outcome::Sdc: return "sdc";
    case Outcome::Timeout: return "timeout";
    case Outcome::Trap: return "trap";
    case Outcome::Err: return "err";
  }
  return "?";
}

struct TargetTally {
  std::uint64_t injections = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t timeout = 0;
  std::uint64_t trap = 0;
  std::uint64_t err = 0;
  /// Masked runs whose final RF/memory image differed from golden.
  std::uint64_t latent = 0;
  /// Protected-machine outcomes (always zero on unprotected machines).
  std::uint64_t corrected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t detected = 0;

  /// Architectural vulnerability: the fraction of injections with any
  /// externally visible *uncontrolled* effect (SDC, hang, fail-closed
  /// trap). Corrected/Recovered runs end with the golden outcome and
  /// Detected is the safe detected-unrecoverable stop, so none of the
  /// protected classes count as vulnerable.
  std::uint64_t vulnerable() const { return sdc + timeout + trap; }
  void accumulate(const TargetTally& other);
};

/// Per-cell injection cycle budget. A fault can at most double the dynamic
/// path before it either halts, traps, or diverges into a hang; anything
/// past 2x golden (+ slack for short programs) is classified as Timeout.
/// A pure per-cell function of the golden cycle count — computed once per
/// cell, shared by every injection and every lane of a lockstep batch.
constexpr std::uint64_t timeout_budget(std::uint64_t golden_cycles) {
  return golden_cycles * 2 + 256;
}

/// First-divergence forensics of one analyzed injection (SDC or latent):
/// the fault's identity plus where golden and faulty replays first differ.
struct ForensicRecord {
  std::uint64_t injection = 0;  // injection index within the cell
  TargetKind target = TargetKind::Rf;
  Outcome outcome = Outcome::Sdc;
  bool latent = false;
  std::uint64_t fault_cycle = 0;
  DivergenceRecord divergence;
};

/// Aggregated protection/recovery activity of one protected cell, reduced
/// from the per-injection slots in index order (thread-count independent).
/// Exported as "protect.*" / "recovery.*" counters and, for protected
/// campaigns, rendered into the report's per-cell "protect" section.
struct ProtectStats {
  std::uint64_t rf_corrected = 0;
  std::uint64_t rf_detected = 0;
  std::uint64_t fu_detected = 0;
  std::uint64_t guard_corrected = 0;
  std::uint64_t imem_corrected = 0;
  std::uint64_t imem_detected = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;
  std::uint64_t unrecoverable = 0;
  /// Total and worst-case detection-to-recovery latency over recovered
  /// runs: rollback penalty plus the re-executed cycles back to the
  /// detection point.
  std::uint64_t recovery_cycles = 0;
  std::uint64_t recovery_cycles_max = 0;

  bool any() const {
    return rf_corrected != 0 || rf_detected != 0 || fu_detected != 0 || guard_corrected != 0 ||
           imem_corrected != 0 || imem_detected != 0 || rollbacks != 0 || retries != 0 ||
           recovered != 0 || unrecoverable != 0;
  }
};

struct CellReport {
  std::string machine;
  std::string workload;
  /// False when the cell itself could not be prepared or its golden run
  /// failed; `error` holds the message, the tallies are empty, and the
  /// campaign renders the cell as ERR (and exits non-zero).
  bool ok = true;
  std::string error;
  std::uint64_t golden_cycles = 0;
  std::uint64_t imem_bits = 0;
  /// Per fault-target tallies, indexed by TargetKind.
  std::array<TargetTally, kNumTargetKinds> targets{};

  /// Lockstep batching statistics (zero on the scalar `--no-batch` path).
  /// Exported as "resil.batch.*" counters; deliberately NOT part of the
  /// report table/JSON, which batching must reproduce byte-for-byte.
  std::uint64_t batch_lanes = 0;
  std::uint64_t batch_divergences = 0;
  std::uint64_t batch_evictions = 0;

  /// First-divergence forensics (CampaignOptions::forensics): one record
  /// per analyzed SDC/latent injection, in injection-index order, bounded
  /// by the replay budget. Candidates past the budget are only counted.
  std::vector<ForensicRecord> forensics;
  std::uint64_t forensics_candidates = 0;
  std::uint64_t forensics_skipped = 0;

  /// True when the cell's machine declares any protection (a "+profile"
  /// variant); gates the protect/recovery report sections and counters.
  bool protected_machine = false;
  ProtectStats protect;

  TargetTally total() const;
};

struct CampaignOptions {
  std::uint64_t seed = 0x7715c5eedull;
  int injections_per_cell = 1000;
  int threads = 0;      // <= 0: hardware concurrency
  bool serial = false;  // plain loop, no thread pool (determinism reference)
  std::vector<std::string> machines = {"mblaze-3", "m-vliw-2", "m-tta-2", "g-tta-2"};
  std::vector<std::string> workloads = {"blowfish", "sha"};
  /// Batched lockstep execution (sim/lockstep.hpp) for the non-imem fault
  /// targets; instruction-memory faults always run the per-injection scalar
  /// path. The report is byte-identical either way — `batch = false` is the
  /// `--no-batch` escape hatch and the equivalence-test reference.
  bool batch = true;
  /// Lanes per lockstep batch, 1..sim::kMaxLanes (64). All lanes of a batch
  /// share one fault-free leader run.
  int batch_lanes = 64;
  /// Compile each cell through the two-phase profile-guided superblock
  /// pipeline (opt/superblock.hpp) before injecting: a phase-1 profiling
  /// run feeds trace formation, and the trace schedule is adopted only when
  /// it is no slower than the baseline (the driver's per-cell fallback).
  /// Campaigns then measure the resilience of the code the `--superblocks`
  /// harnesses actually ship.
  bool superblocks = false;
  /// First-divergence forensics: replay each SDC/latent-classified
  /// injection (up to the budget) golden-vs-faulty with paired commit
  /// recorders and report the first divergent cycle and state element.
  bool forensics = false;
  /// Forensic replays per cell; <= 0 selects the automatic budget
  /// max(1, injections_per_cell / 64), which keeps the two hardened
  /// replays per analyzed injection within ~5% of campaign throughput.
  int forensics_budget = 0;
  /// Commit-recording window in cycles past the fault cycle.
  std::uint64_t forensics_window = 4096;
  /// Adjacent double-bit upset fraction in permille (FaultPlan): 0 keeps
  /// the historical all-single-bit plan bit-identical.
  int double_bit_permille = 0;
  /// Override the machine's Protection::retry_budget /
  /// checkpoint_interval for every protected cell; <= 0 keeps each
  /// machine's declared value.
  int retry_budget_override = 0;
  int checkpoint_override = 0;
  /// Cooperative cancellation (SIGINT/SIGTERM in table_resilience): polled
  /// at cell boundaries; when it becomes non-zero the campaign stops after
  /// the current cell and the report is marked truncated.
  const volatile std::sig_atomic_t* cancel = nullptr;
  /// Per-cell wall-clock watchdog; <= 0 disables. An expired cell stops
  /// injecting (remaining injections never run), and either aborts the
  /// campaign (throws) or — with keep_going — degrades to a structured ERR
  /// cell so the rest of the grid still runs.
  double cell_timeout_seconds = 0.0;
  bool keep_going = false;
  /// Optional metrics sink: "resil.<target>.<outcome>" counters plus
  /// "resil.cells.run"/"resil.cells.err", merged once per cell; with
  /// forensics on, also "forensics.*"; for protected cells, also
  /// "protect.*" / "recovery.*".
  obs::Registry* registry = nullptr;

  /// Effective forensic replay budget per cell.
  int effective_forensics_budget() const {
    if (forensics_budget > 0) return forensics_budget;
    const int autob = injections_per_cell / 64;
    return autob > 0 ? autob : 1;
  }
};

struct CampaignReport {
  std::uint64_t seed = 0;
  int injections_per_cell = 0;
  /// Forensics enabled for this campaign: gates the report's per-cell
  /// "forensics" sections (absent otherwise, so forensics-off reports stay
  /// byte-identical to earlier schema revisions).
  bool forensics = false;
  /// Any machine in the campaign declares protection: gates the protected
  /// outcome columns/keys (corrected/recovered/detected) and the per-cell
  /// "protect" sections, so unprotected campaigns render byte-identically
  /// to earlier schema revisions.
  bool protection = false;
  /// The campaign was cancelled (CampaignOptions::cancel) before every cell
  /// ran: the report holds the completed prefix and renders a
  /// "truncated": true marker (the key is absent otherwise).
  bool truncated = false;
  std::vector<CellReport> cells;  // machine-major, in option order

  bool all_ok() const;
  /// Total infrastructure failures: failed cells count all their
  /// injections, plus per-injection Err outcomes in healthy cells.
  std::uint64_t infra_failures() const;
};

/// Run the campaign. Cells execute sequentially; each cell's injections fan
/// out over a support::ThreadPool (unless options.serial). Throws
/// ttsc::Error only for configuration mistakes (unknown machine/workload
/// name, non-positive injection count) — cell failures degrade to ERR
/// entries instead.
CampaignReport run_campaign(const CampaignOptions& options);

/// One cell of the batched-vs-scalar throughput benchmark: the same
/// pre-sampled state faults (imem excluded — both modes run those through
/// the identical per-injection path) executed once through the scalar path
/// and once through lockstep batches, timed serially, classifications
/// cross-checked injection-for-injection.
struct BenchCell {
  std::string machine;
  std::string workload;
  bool ok = true;
  std::string error;
  std::uint64_t injections = 0;
  double scalar_seconds = 0.0;
  double batched_seconds = 0.0;
  std::uint64_t divergences = 0;
  std::uint64_t evictions = 0;
  /// Forensics overhead pass (CampaignOptions::forensics): wall time of the
  /// budgeted replay pass and the injections it analyzed. The acceptance
  /// bar is forensics_seconds / batched_seconds < 5%.
  double forensics_seconds = 0.0;
  std::uint64_t forensics_analyzed = 0;
  /// Protection overhead pass (machines with mach::Protection declared):
  /// wall time of the same injections through the per-injection protected
  /// path (checks + analytic rollback resolution). Zero / absent from the
  /// JSON for unprotected machines.
  bool protected_machine = false;
  double protected_seconds = 0.0;
};

struct BenchReport {
  std::uint64_t seed = 0;
  std::uint64_t injections_per_cell = 0;
  int batch_lanes = 0;
  std::vector<BenchCell> cells;

  bool all_ok() const;
};

/// Run the throughput benchmark over the options' cell set (threads are
/// not used: both paths run serially so the speedup is per-core). Throws
/// ttsc::Error for configuration mistakes, like run_campaign.
BenchReport run_batch_benchmark(const CampaignOptions& options);

/// Machine-readable benchmark, schema "ttsc-resil-bench" v1 (the CI
/// artifact BENCH_resil.json). Timings are wall clock — an inspectable
/// trend artifact, not a golden-diffed report.
std::string render_resil_bench_json(const BenchReport& report);
void write_resil_bench(const std::string& path, const BenchReport& report);

/// AVF-style text table (the paper-artifact stdout of table_resilience).
std::string render_resilience(const CampaignReport& report);

/// Human-readable first-divergence table (stdout section of
/// `table_resilience --forensics`; empty string when forensics was off).
std::string render_forensics(const CampaignReport& report);

/// Protection-efficiency table: every protected machine paired with its
/// unprotected base (same base name, same workload) with ΔAVF
/// (percentage-point vulnerability reduction), the fpga model's LUT/fmax
/// overhead for the protection hardware, the resulting ΔAVF-per-kLUT
/// figure of merit, and the measured recovery-cycle overhead. Empty string
/// when the campaign had no protected machine.
std::string render_protection_efficiency(const CampaignReport& report);

/// Machine-readable report, schema "ttsc-resil-report" v1. The top-level
/// "machines" array is keyed by each element's "name", so
/// report::diff_reports / bench report_diff compare campaigns
/// order-insensitively.
std::string render_resil_report_json(const CampaignReport& report);
void write_resil_report(const std::string& path, const CampaignReport& report);

}  // namespace ttsc::resil
