#include "resil/fault_plan.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace ttsc::resil {

FaultPlan::FaultPlan(const mach::Machine& machine, bool tta_state, std::uint64_t imem_bits,
                     std::uint64_t golden_cycles, int double_bit_permille)
    : machine_(&machine),
      imem_bits_(imem_bits),
      golden_cycles_(golden_cycles),
      double_bit_permille_(double_bit_permille) {
  TTSC_ASSERT(double_bit_permille >= 0 && double_bit_permille <= 1000,
              "double_bit_permille must be in [0, 1000]");
  for (const mach::RegisterFile& rf : machine.rfs) {
    rf_bits_ += static_cast<std::uint64_t>(rf.size) * 32;
  }
  if (tta_state) fu_result_bits_ = machine.fus.size() * 32;
  guard_bits_ = static_cast<std::uint64_t>(machine.guard_regs);
  TTSC_ASSERT(total_bits() > 0, "fault plan over a machine with no sampled state");
}

FaultSpec FaultPlan::sample(std::uint64_t seed) const {
  SplitMix64 rng(seed);
  // One categorical draw over every sampled bit; the draw order below (site
  // first, then the state-fault cycle) is part of the plan's frozen output
  // contract — reordering would change every campaign's fault set.
  TTSC_ASSERT(total_bits() <= UINT32_MAX, "fault site space exceeds 32-bit sampling");
  std::uint64_t site = rng.next_below_unbiased(static_cast<std::uint32_t>(total_bits()));

  FaultSpec spec;
  if (site < rf_bits_) {
    spec.target = TargetKind::Rf;
    spec.state.kind = sim::FaultKind::RfBit;
    for (std::size_t rf = 0; rf < machine_->rfs.size(); ++rf) {
      const std::uint64_t bits = static_cast<std::uint64_t>(machine_->rfs[rf].size) * 32;
      if (site < bits) {
        spec.state.unit = static_cast<std::int16_t>(rf);
        spec.state.index = static_cast<std::int16_t>(site / 32);
        spec.state.bit = static_cast<std::uint8_t>(site % 32);
        break;
      }
      site -= bits;
    }
  } else if (site < rf_bits_ + fu_result_bits_) {
    site -= rf_bits_;
    spec.target = TargetKind::FuResult;
    spec.state.kind = sim::FaultKind::FuResultBit;
    spec.state.unit = static_cast<std::int16_t>(site / 32);
    spec.state.bit = static_cast<std::uint8_t>(site % 32);
  } else if (site < rf_bits_ + fu_result_bits_ + guard_bits_) {
    site -= rf_bits_ + fu_result_bits_;
    spec.target = TargetKind::Guard;
    spec.state.kind = sim::FaultKind::GuardBit;
    spec.state.unit = static_cast<std::int16_t>(site);
  } else {
    spec.target = TargetKind::Imem;
    spec.imem_bit = site - (rf_bits_ + fu_result_bits_ + guard_bits_);
    // Adjacent double-bit upset: the width draw comes after the site draw
    // (and only when the option is on) so the default plan's stream is
    // bit-identical to earlier revisions. The pair {bit, bit + 1} must stay
    // in range, so the start bit is clamped.
    if (double_bit_permille_ > 0 && imem_bits_ >= 2 &&
        rng.next_below_unbiased(1000) < static_cast<std::uint64_t>(double_bit_permille_)) {
      spec.imem_width = 2;
      if (spec.imem_bit > imem_bits_ - 2) spec.imem_bit = imem_bits_ - 2;
    }
    return spec;  // instruction faults are present from cycle 0 — no draw
  }
  // State faults strike a uniformly random cycle of the fault-free run.
  const std::uint64_t range = golden_cycles_ > 0 ? golden_cycles_ : 1;
  TTSC_ASSERT(range <= UINT32_MAX, "golden run too long for 32-bit cycle sampling");
  spec.state.cycle = rng.next_below_unbiased(static_cast<std::uint32_t>(range));
  // Adjacent double-bit upset for the word-shaped state classes (guards are
  // single-bit latches — always width 1). Drawn last, gated on the option,
  // for the same stream-stability reason as the imem branch; sim::fault_mask
  // clamps the start bit so the pair stays inside the 32-bit word.
  if (double_bit_permille_ > 0 && spec.target != TargetKind::Guard &&
      rng.next_below_unbiased(1000) < static_cast<std::uint64_t>(double_bit_permille_)) {
    spec.state.width = 2;
  }
  return spec;
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  return SplitMix64(a ^ (b + 0x9e3779b97f4a7c15ull)).next();
}

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace ttsc::resil
