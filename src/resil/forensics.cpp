#include "resil/forensics.hpp"

#include <algorithm>

namespace ttsc::resil {

using obs::FlightEvent;
using obs::FlightEventKind;

CommitRecorder::CommitRecorder(const ForensicsWindow& window) : window_(window) {
  events_.reserve(window.max_events);
}

void CommitRecorder::push(const FlightEvent& ev) {
  if (ev.cycle < window_.start_cycle) return;
  if (ev.cycle >= window_.start_cycle + window_.window_cycles || events_.size() >= window_.max_events) {
    truncated_ = true;
    return;
  }
  events_.push_back(ev);
}

void CommitRecorder::on_exec(std::uint64_t cycle, std::uint32_t pc, bool shadow) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::Exec;
  ev.index = static_cast<std::int32_t>(pc);
  ev.aux = shadow ? 1 : 0;
  push(ev);
}

void CommitRecorder::on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::RfWrite;
  ev.unit = static_cast<std::int16_t>(rf);
  ev.index = index;
  ev.value = value;
  push(ev);
}

void CommitRecorder::on_guard_write(std::uint64_t cycle, int guard, std::uint32_t value) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::GuardWrite;
  ev.unit = static_cast<std::int16_t>(guard);
  ev.value = value;
  push(ev);
}

void CommitRecorder::on_store(std::uint64_t cycle, std::uint32_t addr, std::uint32_t value,
                              std::uint8_t width) {
  FlightEvent ev;
  ev.cycle = cycle;
  ev.kind = FlightEventKind::Store;
  ev.index = static_cast<std::int32_t>(addr);
  ev.value = value;
  ev.aux = width;
  push(ev);
}

namespace {

DivergedElement element_of(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::Exec: return DivergedElement::Pc;
    case FlightEventKind::RfWrite: return DivergedElement::RfCell;
    case FlightEventKind::GuardWrite: return DivergedElement::Guard;
    case FlightEventKind::Store: return DivergedElement::MemByte;
    default: return DivergedElement::Pc;  // CommitRecorder records no other kind
  }
}

std::uint32_t element_value(const FlightEvent& ev) {
  // The "value" of the diverging element: the executed pc for control flow,
  // the committed value for everything else.
  return ev.kind == FlightEventKind::Exec ? static_cast<std::uint32_t>(ev.index) : ev.value;
}

void fill_coordinates(DivergenceRecord& rec, const FlightEvent& ev) {
  rec.element = element_of(ev.kind);
  rec.cycle = ev.cycle;
  switch (ev.kind) {
    case FlightEventKind::RfWrite:
      rec.unit = ev.unit;
      rec.index = ev.index;
      break;
    case FlightEventKind::GuardWrite:
      rec.unit = ev.unit;
      break;
    case FlightEventKind::Store:
      rec.addr = static_cast<std::uint32_t>(ev.index);
      break;
    case FlightEventKind::Exec:
    default:
      break;
  }
}

}  // namespace

DivergenceRecord first_divergence(const CommitRecorder& golden, const CommitRecorder& faulty) {
  const std::vector<FlightEvent>& g = golden.events();
  const std::vector<FlightEvent>& f = faulty.events();
  DivergenceRecord rec;
  const std::size_t common = std::min(g.size(), f.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (g[i] == f[i]) continue;
    rec.found = true;
    rec.compared_events = i;
    // The first differing commit position. Attribute the divergence to the
    // event that happens earlier in simulation time; on a same-cycle,
    // same-element mismatch both values are meaningful.
    const FlightEvent& lead = f[i].cycle <= g[i].cycle ? f[i] : g[i];
    fill_coordinates(rec, lead);
    const bool same_element = g[i].kind == f[i].kind && g[i].cycle == f[i].cycle &&
                              g[i].unit == f[i].unit &&
                              (g[i].kind != FlightEventKind::RfWrite || g[i].index == f[i].index);
    if (same_element) {
      rec.golden_value = element_value(g[i]);
      rec.faulty_value = element_value(f[i]);
    } else if (&lead == &f[i]) {
      rec.faulty_value = element_value(f[i]);
    } else {
      rec.golden_value = element_value(g[i]);
    }
    return rec;
  }
  rec.compared_events = common;
  if (g.size() != f.size()) {
    // Identical prefix, one stream ended early: the shorter run stopped
    // committing (returned, trapped, or went architecturally quiet) at the
    // cycle of the other's next commit. When the shorter side was merely
    // truncated by its bounds the verdict is beyond-window instead.
    const bool faulty_shorter = f.size() < g.size();
    const CommitRecorder& shorter = faulty_shorter ? faulty : golden;
    if (shorter.truncated()) {
      rec.beyond_window = true;
      return rec;
    }
    rec.found = true;
    const FlightEvent& next = faulty_shorter ? g[common] : f[common];
    rec.cycle = next.cycle;
    rec.element = DivergedElement::Halt;
    if (faulty_shorter) {
      rec.golden_value = element_value(next);
    } else {
      rec.faulty_value = element_value(next);
    }
    return rec;
  }
  // Byte-identical recordings: either genuinely no architectural divergence
  // (complete recordings) or the divergence lies past the shared bounds.
  rec.beyond_window = golden.truncated() || faulty.truncated();
  return rec;
}

}  // namespace ttsc::resil
