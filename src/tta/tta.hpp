// Transport-Triggered Architecture backend: the paper's primary subject.
//
// Programs are sequences of instructions, each a set of parallel moves over
// the machine's transport buses (Section III). Operations fire as a side
// effect of moving an operand to an FU trigger port. The scheduler applies
// the TTA-specific freedoms the paper measures:
//
//  * software bypassing     — route an FU result register directly to a
//                             consumer port, skipping the RF and saving the
//                             write-back + read-back cycle (Section III-B);
//  * dead-result-move elimination — when every consumer was bypassed and
//                             the value is not live out of the block, the
//                             RF write move disappears entirely, relieving
//                             RF write-port pressure;
//  * operand sharing        — an immediate already sitting in an FU operand
//                             port register is not moved again;
//  * early control scheduling — jumps move up into their own delay slots.
//
// Each freedom can be disabled individually (TtaOptions) for the ablation
// benchmarks; disabling all of them degenerates to an operation-triggered
// schedule, which is how the paper produces its VLIW numbers from one
// compiler.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "codegen/lower.hpp"
#include "ir/memory.hpp"
#include "mach/machine.hpp"
#include "sim/observer.hpp"

namespace ttsc::sim {
struct PredecodedTta;
}

namespace ttsc::opt {
struct SuperblockPlan;
}

namespace ttsc::tta {

struct MoveSrc {
  enum class Kind : std::uint8_t { FuResult, RfRead, Imm } kind = Kind::Imm;
  int unit = -1;       // FU or RF index
  int reg_index = -1;  // RfRead only
  std::int32_t imm = 0;

  static MoveSrc fu_result(int fu) { return {Kind::FuResult, fu, -1, 0}; }
  static MoveSrc rf_read(int rf, int index) { return {Kind::RfRead, rf, index, 0}; }
  static MoveSrc immediate(std::int32_t v) { return {Kind::Imm, -1, -1, v}; }
};

struct MoveDst {
  enum class Kind : std::uint8_t { FuOperand, FuTrigger, RfWrite, GuardWrite } kind = Kind::RfWrite;
  int unit = -1;                         // FU / RF index; guard register for GuardWrite
  int reg_index = -1;                    // RfWrite only
  ir::Opcode opcode = ir::Opcode::MovI;  // FuTrigger only: operation to fire

  static MoveDst fu_operand(int fu) { return {Kind::FuOperand, fu, -1, ir::Opcode::MovI}; }
  static MoveDst fu_trigger(int fu, ir::Opcode op) { return {Kind::FuTrigger, fu, -1, op}; }
  static MoveDst rf_write(int rf, int index) { return {Kind::RfWrite, rf, index, ir::Opcode::MovI}; }
  static MoveDst guard_write(int guard) { return {Kind::GuardWrite, guard, -1, ir::Opcode::MovI}; }
};

struct Move {
  int bus = -1;
  MoveSrc src;
  MoveDst dst;
  /// Branch target (block id) for control trigger moves; the simulator
  /// resolves it through block_entry.
  std::uint32_t target = 0;
  bool is_control = false;
  /// True when this move's immediate does not fit the bus short-immediate
  /// field and a second bus slot was consumed for the extension.
  bool long_imm = false;
  /// The bus whose move slot carries the immediate extension bits
  /// (valid when long_imm; TCE-style long immediates span two slots).
  int extra_bus = -1;
  /// Predication: index of the guard register this move is conditional on
  /// (-1 = unconditional); when guard_negate is set the move executes on a
  /// false guard.
  int guard = -1;
  bool guard_negate = false;
};

struct TtaInstruction {
  std::vector<Move> moves;  // distinct buses
};

struct TtaProgram {
  std::vector<TtaInstruction> instrs;
  std::vector<std::uint32_t> block_entry;
  /// Static empty-slot cause per instruction (one prof::Cause byte per pc),
  /// recorded by the scheduler: why this cycle slot was not (fully) used —
  /// a recorded resource conflict, a control delay slot, an FU-latency
  /// shadow, or a plain dependence. Empty for hand-built programs; the
  /// profiler then falls back to Dep/Frontend defaults.
  std::vector<std::uint8_t> stall_cause;
};

struct TtaOptions {
  bool software_bypass = true;
  bool dead_result_elim = true;  // only effective with software_bypass
  bool operand_share = true;
  bool early_control = true;
};

struct TtaScheduleStats {
  std::uint64_t instructions = 0;
  std::uint64_t moves = 0;
  std::uint64_t bypassed_operands = 0;
  std::uint64_t eliminated_result_moves = 0;
  std::uint64_t shared_operands = 0;
  std::uint64_t guarded_selects = 0;  // Select ops lowered to guarded moves

  // Trace (superblock) scheduling: operand reads bypassed from an FU result
  // register across a side-exit boundary of a merged trace — transports the
  // per-block scheduler structurally cannot make.
  std::uint64_t superblock_cross_block_bypass = 0;

  // Scheduling-failure reasons: why a move could not be placed at the cycle
  // the scheduler probed (each count is one rejected placement attempt; the
  // move was retried at a later cycle). High values mean the machine's
  // transport/RF-port resources, not data dependences, bound the schedule.
  std::uint64_t fail_no_bus = 0;            // no free matching bus this cycle
  std::uint64_t fail_long_imm = 0;          // wide immediate lacked an extension bus
  std::uint64_t fail_rf_read_port = 0;      // RF read ports exhausted this cycle
  std::uint64_t fail_rf_write_port = 0;     // RF write ports exhausted this cycle
};

/// Schedule `func` onto the TTA `machine`. When `plan` is given (profile-
/// guided superblock compile), each formed trace is scheduled as one merged
/// region sequence: bypassing, dead-result elimination and operand sharing
/// fire across the trace's side-exit boundaries. A null plan reproduces the
/// per-block schedule exactly.
TtaProgram schedule_tta(const codegen::MFunction& func, const mach::Machine& machine,
                        const TtaOptions& options = {}, TtaScheduleStats* stats = nullptr,
                        const opt::SuperblockPlan* plan = nullptr);

/// Automatically generated instruction format (Section IV: "TCE produces an
/// instruction encoding automatically"): per bus, a source field of
/// 1 immediate-select bit + max(source-id bits, short-immediate bits) and a
/// destination field addressing every reachable destination (registers
/// individually, triggers per operation), plus one NOP code; one extra bit
/// selects the long-immediate instruction template.
int instruction_bits(const mach::Machine& machine);
int bus_slot_bits(const mach::Machine& machine, int bus);

std::uint64_t image_bits(const TtaProgram& program, const mach::Machine& machine);

struct ExecResult {
  /// Ok = the program returned; TimedOut = the cycle budget was exhausted
  /// and `cycles` holds the cycles actually executed; Trapped = the
  /// simulator failed closed on an illegal state and `trap` says why.
  sim::ExecStatus status = sim::ExecStatus::Ok;
  /// Valid when status == Trapped (default-initialized otherwise).
  sim::TrapInfo trap{};
  std::uint64_t cycles = 0;
  std::uint64_t moves = 0;
  std::uint32_t ret = 0;
  /// Dynamic transport counts per bus (how often each bus actually moved
  /// data) — the utilization signal IC exploration heuristics feed on.
  std::vector<std::uint64_t> bus_moves;
  /// Architectural state at halt, for cycle-exact differential testing:
  /// register files concatenated in machine order, and the guard registers.
  std::vector<std::uint32_t> rf_state;
  std::vector<std::uint8_t> guard_state;

  bool timed_out() const { return status == sim::ExecStatus::TimedOut; }
  bool trapped() const { return status == sim::ExecStatus::Trapped; }
  bool operator==(const ExecResult&) const = default;
};

/// Cycle-accurate transport simulator with semi-virtual time latching FU
/// pipelines (Fig. 3): operand ports are registers, triggers launch
/// operations, results appear in the FU result register after the
/// operation latency and stay until replaced.
///
/// Two execution paths produce bit-identical ExecResults: the default fast
/// path runs over a predecoded flat program form (sim/predecode.hpp) with
/// no per-cycle allocation or lookup, while SimOptions{.fast_path = false}
/// selects the original interpretive reference loop the fast path is
/// differentially tested against.
class TtaSim {
 public:
  TtaSim(const TtaProgram& program, const mach::Machine& machine, ir::Memory& memory,
         sim::SimOptions options = {});
  ~TtaSim();

  /// Reuse an externally predecoded program (e.g. from report::ModuleCache)
  /// instead of predecoding on first run.
  void use_predecoded(std::shared_ptr<const sim::PredecodedTta> predecoded);

  ExecResult run(std::uint64_t max_cycles = 2'000'000'000ull);

 private:
  template <bool kObserve, bool kHarden, bool kProfile>
  ExecResult run_fast(std::uint64_t max_cycles);
  ExecResult run_reference(std::uint64_t max_cycles);

  const TtaProgram& program_;
  const mach::Machine& machine_;
  ir::Memory& mem_;
  sim::SimOptions options_;
  std::shared_ptr<const sim::PredecodedTta> predecoded_;
};

}  // namespace ttsc::tta
