// TTA move scheduler.
//
// Per block, instructions are expanded into data-transport moves and placed
// greedily in dependence order (critical-path priority). The key mechanism
// is *deferred result materialization*: when an operation is triggered, its
// result move to the register file is NOT scheduled immediately — the value
// stays in the FU result register. Consumers try to bypass straight from
// the result register; a consumer that cannot bypass forces the result move
// to materialize; a redefinition of the destination register or the end of
// the block decides between materializing (value live) and eliminating the
// move entirely (dead-result-move elimination). MovI values propagate as
// immediates directly into consumer ports.
//
// With a SuperblockPlan, each formed trace is scheduled as ONE merged block
// whose interior Bnz terminators become side exits. Instructions keep their
// trace-member index as a *region*; the invariant that makes side exits
// safe is a per-region cycle floor: every move of a region-r instruction is
// placed at or after floor_r = T_{exit r-1} + delay_slots + 1, so no
// later-region move executes on an earlier exit's path. Before an exit is
// placed, every pending (deferred) result whose register is live into the
// exit target is forced to the RF, and the exit cycle is bounded below by
// max_completion - delay_slots so every in-flight FU result lands inside
// the exit's delay slots — after the transfer, the target block sees
// exactly the RF/FU state a per-block schedule would hand it. Values NOT
// live into any exit target stay in FU result registers across the
// boundary, which is where the cross-block bypass / dead-result wins come
// from.
#include <algorithm>
#include <map>
#include <set>

#include "codegen/ddg.hpp"
#include "obs/trace.hpp"
#include "opt/superblock.hpp"
#include "prof/cause.hpp"
#include "support/bits.hpp"
#include "support/strings.hpp"
#include "tta/tta.hpp"

namespace ttsc::tta {

using codegen::BlockDdg;
using codegen::DepKind;
using codegen::MInstr;
using codegen::MOperand;
using ir::Opcode;
using mach::Machine;
using mach::PhysReg;
using mach::PortRef;

namespace {

constexpr std::int64_t kNoCycle = -1;

/// Set TTSC_TTA_TRACE=1 to stream scheduler decisions to stderr (debugging).
bool trace_enabled() {
  static const bool on = std::getenv("TTSC_TTA_TRACE") != nullptr;
  return on;
}

#define TTA_TRACE(...)                       \
  do {                                       \
    if (trace_enabled()) {                   \
      std::fprintf(stderr, __VA_ARGS__);     \
      std::fputc('\n', stderr);              \
    }                                        \
  } while (false)

int fu_latency(const Machine& m, int fu, Opcode op) {
  return m.fus[static_cast<std::size_t>(fu)].latency(op);
}

/// Attribution priority among recorded per-cycle resource conflicts: when
/// several placement attempts failed at the same cycle for different
/// reasons, the cycle is charged to the scarcest resource (DESIGN.md
/// "Cycle attribution & top-down analysis").
int conflict_rank(prof::Cause c) {
  switch (c) {
    case prof::Cause::RfWritePort: return 4;
    case prof::Cause::RfReadPort: return 3;
    case prof::Cause::LongImm: return 2;
    case prof::Cause::Bus: return 1;
    default: return 0;
  }
}

/// Operand-port/trigger-port split of an instruction's inputs:
/// index of the source operand that goes to the trigger port.
/// (Binary ops: operand port carries srcs[0], trigger carries srcs[1];
/// loads and unary ops trigger with srcs[0]; stores trigger with the
/// address srcs[0] and carry the data srcs[1] on the operand port.)
int trigger_operand_index(const MInstr& in) {
  switch (in.op) {
    case Opcode::Sxhw:
    case Opcode::Sxqw:
    case Opcode::Ldw:
    case Opcode::Ldh:
    case Opcode::Ldq:
    case Opcode::Ldqu:
    case Opcode::Ldhu:
      return 0;
    case Opcode::Stw:
    case Opcode::Sth:
    case Opcode::Stq:
      return 0;  // address triggers, data rides the operand port
    default:
      return static_cast<int>(in.srcs.size()) - 1;
  }
}

struct PlannedMove {
  MoveSrc src;
  MoveDst dst;
  std::int64_t cycle = kNoCycle;
  int bus = -1;
  int extra_bus = -1;  // long-immediate extension slot
  bool is_control = false;
  std::uint32_t target = 0;
  int guard = -1;  // predication (guarded moves)
  bool guard_negate = false;
};

class BlockScheduler {
 public:
  /// `block_id` is the block whose live-out set bounds the end of the
  /// schedule — for a merged trace, the LAST member. `region_of` (empty for
  /// a plain block) maps each instruction to its trace-member index and
  /// `interior_exits` lists the side-exit Bnz instructions in region order
  /// (one per region except the last).
  BlockScheduler(const Machine& m, const codegen::MBlock& block, const TtaOptions& opt,
                 const codegen::MLiveness& live, std::uint32_t block_id, TtaScheduleStats& stats,
                 std::vector<std::uint32_t> region_of = {},
                 std::vector<std::uint32_t> interior_exits = {})
      : machine_(m),
        block_(block),
        options_(opt),
        live_(live),
        block_id_(block_id),
        stats_(stats),
        ddg_(block),
        region_of_(std::move(region_of)),
        interior_exits_(std::move(interior_exits)) {
    fu_state_.resize(machine_.fus.size());
    guards_.resize(static_cast<std::size_t>(machine_.guard_regs));
    // Producer map: (consumer node, operand index) -> producer node.
    const std::uint32_t n = ddg_.size();
    producers_.assign(n, {});
    for (std::uint32_t i = 0; i < n; ++i) {
      producers_[i].assign(block_.instrs[i].srcs.size(), -1);
    }
    for (const auto& e : ddg_.edges()) {
      if (e.kind != DepKind::Raw) continue;
      const MInstr& cons = block_.instrs[e.to];
      for (std::size_t s = 0; s < cons.srcs.size(); ++s) {
        if (cons.srcs[s].is_reg() && cons.srcs[s].reg == e.reg) {
          producers_[e.to][s] = static_cast<std::int64_t>(e.from);
        }
      }
    }
    // Last definition per register (for live-out materialization decisions).
    for (std::uint32_t i = 0; i < n; ++i) {
      if (block_.instrs[i].has_dst()) last_def_[block_.instrs[i].dst] = i;
    }
  }

  struct Result {
    std::vector<std::pair<std::int64_t, Move>> moves;  // (cycle, move)
    std::int64_t length = 0;
    /// Static empty-slot cause per cycle 0..length-1 (prof::Cause bytes).
    std::vector<std::uint8_t> cycle_cause;
  };

  Result run();

 private:
  // ---- per-cycle transport resources ---------------------------------------

  struct CycleState {
    std::vector<bool> bus_used;
    std::vector<int> rf_reads;
    std::vector<int> rf_writes;
  };

  CycleState& cycle_state(std::int64_t c) {
    auto [it, inserted] = cycles_.try_emplace(c);
    if (inserted) {
      it->second.bus_used.assign(machine_.buses.size(), false);
      it->second.rf_reads.assign(machine_.rfs.size(), 0);
      it->second.rf_writes.assign(machine_.rfs.size(), 0);
    }
    return it->second;
  }

  /// Record a rejected placement attempt at cycle `c`; the highest-priority
  /// conflict per cycle wins (conflict_rank).
  void note_conflict(std::int64_t c, prof::Cause cause) {
    auto [it, inserted] = conflict_.try_emplace(c, static_cast<std::uint8_t>(cause));
    if (!inserted && conflict_rank(cause) > conflict_rank(static_cast<prof::Cause>(it->second))) {
      it->second = static_cast<std::uint8_t>(cause);
    }
  }

  bool src_matches(const mach::Bus& bus, const MoveSrc& src) const {
    switch (src.kind) {
      case MoveSrc::Kind::FuResult: return bus.has_source({PortRef::Kind::FuResult, src.unit});
      case MoveSrc::Kind::RfRead: return bus.has_source({PortRef::Kind::RfRead, src.unit});
      case MoveSrc::Kind::Imm: return true;
    }
    return false;
  }
  bool dst_matches(const mach::Bus& bus, const MoveDst& dst) const {
    switch (dst.kind) {
      case MoveDst::Kind::FuOperand: return bus.has_dest({PortRef::Kind::FuOperand, dst.unit});
      case MoveDst::Kind::FuTrigger: return bus.has_dest({PortRef::Kind::FuTrigger, dst.unit});
      case MoveDst::Kind::RfWrite: return bus.has_dest({PortRef::Kind::RfWrite, dst.unit});
      case MoveDst::Kind::GuardWrite: return true;  // guard regs listen to every bus
    }
    return false;
  }

  /// Find a bus (and extension bus for wide immediates) for a move at a
  /// cycle; returns false if transport resources are unavailable. Does not
  /// commit.
  bool find_bus(const PlannedMove& mv, std::int64_t c, int& bus_out, int& extra_out) {
    CycleState& cs = cycle_state(c);
    for (std::size_t b = 0; b < machine_.buses.size(); ++b) {
      if (cs.bus_used[b]) continue;
      if (!src_matches(machine_.buses[b], mv.src) || !dst_matches(machine_.buses[b], mv.dst)) {
        continue;
      }
      if (mv.src.kind == MoveSrc::Kind::Imm && !mv.is_control &&
          !fits_signed(mv.src.imm, machine_.buses[b].simm_bits)) {
        // Needs a long-immediate template: one extra free bus.
        int extra = -1;
        for (std::size_t b2 = 0; b2 < machine_.buses.size(); ++b2) {
          if (b2 != b && !cs.bus_used[b2]) {
            extra = static_cast<int>(b2);
            break;
          }
        }
        if (extra < 0) {
          ++stats_.fail_long_imm;
          note_conflict(c, prof::Cause::LongImm);
          continue;
        }
        bus_out = static_cast<int>(b);
        extra_out = extra;
        return true;
      }
      bus_out = static_cast<int>(b);
      extra_out = -1;
      return true;
    }
    ++stats_.fail_no_bus;
    note_conflict(c, prof::Cause::Bus);
    return false;
  }

  void commit_move(PlannedMove& mv) {
    CycleState& cs = cycle_state(mv.cycle);
    TTSC_ASSERT(mv.bus >= 0 && !cs.bus_used[static_cast<std::size_t>(mv.bus)], "bus double-booked");
    cs.bus_used[static_cast<std::size_t>(mv.bus)] = true;
    if (mv.extra_bus >= 0) cs.bus_used[static_cast<std::size_t>(mv.extra_bus)] = true;
    if (mv.src.kind == MoveSrc::Kind::RfRead) {
      ++cs.rf_reads[static_cast<std::size_t>(mv.src.unit)];
      last_rf_read_[PhysReg{static_cast<std::int16_t>(mv.src.unit),
                            static_cast<std::int16_t>(mv.src.reg_index)}] =
          std::max(last_rf_read_[PhysReg{static_cast<std::int16_t>(mv.src.unit),
                                         static_cast<std::int16_t>(mv.src.reg_index)}],
                   mv.cycle);
    }
    if (mv.dst.kind == MoveDst::Kind::RfWrite) {
      ++cs.rf_writes[static_cast<std::size_t>(mv.dst.unit)];
    }
    Move out;
    out.bus = mv.bus;
    out.src = mv.src;
    out.dst = mv.dst;
    out.target = mv.target;
    out.is_control = mv.is_control;
    out.long_imm = mv.extra_bus >= 0;
    out.extra_bus = mv.extra_bus;
    out.guard = mv.guard;
    out.guard_negate = mv.guard_negate;
    moves_.emplace_back(mv.cycle, out);
    max_move_cycle_ = std::max(max_move_cycle_, mv.cycle);
    ++stats_.moves;
  }

  bool rf_read_ok(std::int64_t c, int rf) {
    const bool ok = cycle_state(c).rf_reads[static_cast<std::size_t>(rf)] <
                    machine_.rfs[static_cast<std::size_t>(rf)].read_ports;
    if (!ok) {
      ++stats_.fail_rf_read_port;
      note_conflict(c, prof::Cause::RfReadPort);
    }
    return ok;
  }
  bool rf_write_ok(std::int64_t c, int rf) {
    const bool ok = cycle_state(c).rf_writes[static_cast<std::size_t>(rf)] <
                    machine_.rfs[static_cast<std::size_t>(rf)].write_ports;
    if (!ok) {
      ++stats_.fail_rf_write_port;
      note_conflict(c, prof::Cause::RfWritePort);
    }
    return ok;
  }

  // ---- FU state --------------------------------------------------------------

  struct OperandWrite {
    std::int64_t cycle;
    bool is_imm = false;
    std::int32_t imm = 0;
    std::int64_t hold_until;  // last trigger relying on this value
  };

  struct FuState {
    std::set<std::int64_t> triggers;
    std::map<std::int64_t, std::uint32_t> completions;  // completion -> node
    std::vector<OperandWrite> operand_writes;
    std::int64_t pending_node = -1;  // op whose result move is deferred
  };

  struct OpSched {
    bool scheduled = false;
    std::int64_t trigger = kNoCycle;
    int fu = -1;
    std::int64_t comp = kNoCycle;
    std::int64_t rf_write = kNoCycle;  // materialized result-move cycle
    std::int64_t last_result_read = kNoCycle;
    bool write_done = false;
    bool eliminated = false;
  };

  std::int64_t next_completion_after(const FuState& fs, std::int64_t comp) const {
    auto it = fs.completions.upper_bound(comp);
    return it == fs.completions.end() ? INT64_MAX : it->first;
  }

  /// Whether node p's result register can be read at cycle c.
  bool bypass_window_open(std::uint32_t p, std::int64_t c) const {
    const OpSched& ps = sched_[p];
    if (ps.fu < 0 || ps.comp == kNoCycle) return false;
    if (c < ps.comp) return false;
    const FuState& fs = fu_state_[static_cast<std::size_t>(ps.fu)];
    return c < next_completion_after(fs, ps.comp);
  }

  void record_result_read(std::uint32_t p, std::int64_t c) {
    sched_[p].last_result_read = std::max(sched_[p].last_result_read, c);
  }

  // ---- trace regions ---------------------------------------------------------

  std::uint32_t region(std::uint32_t node) const {
    return region_of_.empty() ? 0 : region_of_[node];
  }

  /// Earliest cycle any move of `node` may occupy: moves of a region must
  /// stay past every earlier side exit's delay slots so they never execute
  /// on an exit path.
  std::int64_t node_floor(std::uint32_t node) const {
    return region_floor_.empty() ? 0 : region_floor_[region(node)];
  }

  /// A result-register read bypassed from producer `prod` into `cons`.
  void note_bypass(std::int64_t prod, std::uint32_t cons) {
    ++stats_.bypassed_operands;
    if (!region_of_.empty() &&
        region_of_[static_cast<std::uint32_t>(prod)] != region_of_[cons]) {
      ++stats_.superblock_cross_block_bypass;
    }
  }

  /// Materialize node p's deferred result move to the register file.
  /// Returns the write cycle.
  std::int64_t materialize(std::uint32_t p) {
    OpSched& ps = sched_[p];
    TTSC_ASSERT(!ps.eliminated, "materializing an eliminated result");
    if (ps.write_done) return ps.rf_write;
    const MInstr& in = block_.instrs[p];
    TTSC_ASSERT(in.has_dst(), "materializing an op with no destination");
    const PhysReg r = in.dst;

    std::int64_t lower = node_floor(p);
    PlannedMove mv;
    if (ps.fu >= 0) {
      lower = std::max(lower, ps.comp);
      mv.src = MoveSrc::fu_result(ps.fu);
    } else {
      // Deferred MovI: the move carries the immediate.
      TTSC_ASSERT(in.op == Opcode::MovI && in.srcs[0].is_imm(), "deferred non-imm pseudo op");
      mv.src = MoveSrc::immediate(in.srcs[0].imm);
    }
    mv.dst = MoveDst::rf_write(r.rf, r.index);

    auto lw = last_rf_write_.find(r);
    if (lw != last_rf_write_.end()) lower = std::max(lower, lw->second + 1);
    auto lr = last_rf_read_.find(r);
    if (lr != last_rf_read_.end()) lower = std::max(lower, lr->second);

    for (std::int64_t c = lower;; ++c) {
      TTSC_ASSERT(c < lower + 100000,
                  format("materialize: no feasible cycle (node=%u fu=%d comp=%lld lower=%lld "
                         "next_comp=%lld rf=%d)",
                         p, ps.fu, static_cast<long long>(ps.comp), static_cast<long long>(lower),
                         static_cast<long long>(
                             ps.fu >= 0 ? next_completion_after(
                                              fu_state_[static_cast<std::size_t>(ps.fu)], ps.comp)
                                        : -1),
                         static_cast<int>(r.rf)));
      if (!rf_write_ok(c, r.rf)) continue;
      // The result move reads the FU result register: the bypass window
      // must still be open (it always is — new completions check reads).
      if (ps.fu >= 0 && !bypass_window_open(p, c)) continue;
      int bus = -1;
      int extra = -1;
      if (!find_bus(mv, c, bus, extra)) continue;
      mv.cycle = c;
      mv.bus = bus;
      mv.extra_bus = extra;
      commit_move(mv);
      if (ps.fu >= 0) record_result_read(p, c);
      TTA_TRACE("materialize node=%u fu=%d w=%lld", p, ps.fu, static_cast<long long>(c));
      ps.rf_write = c;
      ps.write_done = true;
      last_rf_write_[r] = std::max(last_rf_write_[r], c);
      if (ps.fu >= 0) {
        FuState& fs = fu_state_[static_cast<std::size_t>(ps.fu)];
        if (fs.pending_node == static_cast<std::int64_t>(p)) fs.pending_node = -1;
      }
      if (pending_def_.count(r) && pending_def_[r] == p) pending_def_.erase(r);
      return c;
    }
  }

  void eliminate(std::uint32_t p) {
    OpSched& ps = sched_[p];
    TTSC_ASSERT(!ps.write_done, "eliminating a materialized result");
    TTA_TRACE("eliminate node=%u", p);
    ps.eliminated = true;
    ++stats_.eliminated_result_moves;
    if (ps.fu >= 0) {
      FuState& fs = fu_state_[static_cast<std::size_t>(ps.fu)];
      if (fs.pending_node == static_cast<std::int64_t>(p)) fs.pending_node = -1;
    }
    const PhysReg r = block_.instrs[p].dst;
    if (pending_def_.count(r) && pending_def_[r] == p) pending_def_.erase(r);
  }

  // ---- source resolution -----------------------------------------------------

  struct ResolvedSrc {
    MoveSrc src;
    std::int64_t bypass_of = -1;  // producer node when bypassing
    bool shared = false;          // operand-sharing hit: no move needed
  };

  /// Try to resolve operand `index` of node `node` as a move source readable
  /// at cycle `c`. May materialize the producer (a persistent but safe side
  /// effect). Returns nullopt if the value cannot be read at `c`.
  std::optional<ResolvedSrc> resolve_src(std::uint32_t node, std::size_t index, std::int64_t c) {
    const MOperand& opnd = block_.instrs[node].srcs[index];
    ResolvedSrc out;
    if (opnd.is_imm()) {
      out.src = MoveSrc::immediate(opnd.imm);
      return out;
    }
    const PhysReg r = opnd.reg;
    const std::int64_t p = producers_[node][index];
    if (p < 0) {
      // Live-in: read from the RF (value present since block entry).
      if (!rf_read_ok(c, r.rf)) return std::nullopt;
      out.src = MoveSrc::rf_read(r.rf, r.index);
      return out;
    }
    const std::uint32_t prod = static_cast<std::uint32_t>(p);
    const MInstr& pin = block_.instrs[prod];
    // Immediate propagation: a MovI value is a constant; feed it straight
    // into the port (TCE folds immediates into moves the same way).
    if (options_.software_bypass && pin.op == Opcode::MovI && pin.srcs[0].is_imm()) {
      out.src = MoveSrc::immediate(pin.srcs[0].imm);
      out.bypass_of = p;
      return out;
    }
    if (options_.software_bypass && bypass_window_open(prod, c)) {
      out.src = MoveSrc::fu_result(sched_[prod].fu);
      out.bypass_of = p;
      return out;
    }
    // Fall back to the RF: force the producer's result move.
    if (sched_[prod].eliminated) {
      throw Error("TTA scheduler: consumer of an eliminated result");
    }
    const std::int64_t w = materialize(prod);
    if (c < w + 1) return std::nullopt;
    if (!rf_read_ok(c, r.rf)) return std::nullopt;
    out.src = MoveSrc::rf_read(r.rf, r.index);
    return out;
  }

  // ---- operand sharing ---------------------------------------------------------

  /// Whether writing the operand port at cycle `write_cycle` and relying on
  /// the value until `hold_until` is legal: the write must not clobber an
  /// existing held value, and no existing write may clobber ours before the
  /// trigger consumes it.
  bool operand_hold_ok(int fu, std::int64_t write_cycle, std::int64_t hold_until) const {
    for (const OperandWrite& w : fu_state_[static_cast<std::size_t>(fu)].operand_writes) {
      if (w.cycle == write_cycle) return false;  // one write per port per cycle
      if (w.cycle < write_cycle && write_cycle <= w.hold_until) return false;
      if (write_cycle < w.cycle && w.cycle <= hold_until) return false;
    }
    return true;
  }

  /// Operand sharing: if the port already holds this immediate at cycle t
  /// (latest write at or before t), reuse it and extend the hold.
  bool try_share_operand(int fu, std::int64_t t, const MoveSrc& src) {
    if (!options_.operand_share || src.kind != MoveSrc::Kind::Imm) return false;
    FuState& fs = fu_state_[static_cast<std::size_t>(fu)];
    OperandWrite* latest = nullptr;
    for (OperandWrite& w : fs.operand_writes) {
      if (w.cycle <= t && (latest == nullptr || w.cycle > latest->cycle)) latest = &w;
    }
    if (latest == nullptr || !latest->is_imm || latest->imm != src.imm) return false;
    // No other write may sit between the hold start and t.
    for (const OperandWrite& w : fs.operand_writes) {
      if (w.cycle > latest->cycle && w.cycle <= t) return false;
    }
    latest->hold_until = std::max(latest->hold_until, t);
    ++stats_.shared_operands;
    return true;
  }

  // ---- main loop ---------------------------------------------------------------

  std::int64_t edge_delay(const codegen::DdgEdge& e) const {
    switch (e.kind) {
      case DepKind::Raw: {
        const MInstr& pin = block_.instrs[e.from];
        if (pin.op == Opcode::MovI || pin.op == Opcode::Copy) return 1;
        const int fu = machine_.fu_for(pin.op);
        return fu >= 0 ? fu_latency(machine_, fu, pin.op) : 1;
      }
      case DepKind::War: return 0;
      case DepKind::Waw: return 1;
      case DepKind::MemRaw: return 1;
      case DepKind::MemWar: return 0;
      case DepKind::MemWaw: return 1;
    }
    return 0;
  }

  /// Trigger-cycle lower bound from memory ordering edges (register flow is
  /// handled by source resolution).
  std::int64_t mem_lower_bound(std::uint32_t node) const {
    std::int64_t lower = 0;
    for (std::uint32_t e : ddg_.pred_edges(node)) {
      const auto& edge = ddg_.edge(e);
      if (edge.kind == DepKind::MemRaw || edge.kind == DepKind::MemWar ||
          edge.kind == DepKind::MemWaw) {
        TTSC_ASSERT(sched_[edge.from].trigger != kNoCycle, "memory pred not scheduled");
        lower = std::max(lower, sched_[edge.from].trigger + edge_delay(edge));
      }
    }
    return lower;
  }

  void schedule_pseudo(std::uint32_t node);
  void schedule_copy(std::uint32_t node);
  void schedule_select(std::uint32_t node);
  void schedule_fu_op(std::uint32_t node, std::int64_t extra_lower);
  void handle_redefinition(std::uint32_t node);
  void finalize_pending();

  const Machine& machine_;
  const codegen::MBlock& block_;
  const TtaOptions& options_;
  const codegen::MLiveness& live_;
  std::uint32_t block_id_;
  TtaScheduleStats& stats_;
  BlockDdg ddg_;

  std::map<std::int64_t, CycleState> cycles_;
  std::vector<FuState> fu_state_;
  std::vector<OpSched> sched_;
  std::vector<std::vector<std::int64_t>> producers_;
  std::map<PhysReg, std::uint32_t> last_def_;
  std::map<PhysReg, std::int64_t> last_rf_read_;
  std::map<PhysReg, std::int64_t> last_rf_write_;
  std::map<PhysReg, std::uint32_t> pending_def_;
  std::vector<std::pair<std::int64_t, Move>> moves_;
  std::int64_t max_move_cycle_ = -1;
  /// Rejected-placement causes per cycle (highest conflict_rank wins).
  std::map<std::int64_t, std::uint8_t> conflict_;

  // Trace scheduling state (empty / unused for plain single-block runs).
  std::vector<std::uint32_t> region_of_;
  std::vector<std::uint32_t> interior_exits_;
  std::vector<std::int64_t> region_floor_;
  std::int64_t max_comp_cycle_ = kNoCycle;     // latest FU completion so far
  std::int64_t max_interior_exit_ = kNoCycle;  // latest side-exit trigger

  /// Guard register occupancy: write cycle and the last cycle a guarded
  /// move still relies on the value.
  struct GuardState {
    std::int64_t last_write = kNoCycle;
    std::int64_t last_use = kNoCycle;
  };
  std::vector<GuardState> guards_;
};

/// A value definition is needed after this block if the register is live
/// out and this is the last in-block definition of it.
bool needed_after_block(const codegen::MLiveness& live, std::uint32_t block_id,
                        const std::map<PhysReg, std::uint32_t>& last_def, std::uint32_t node,
                        const MInstr& in) {
  if (!in.has_dst()) return false;
  auto it = last_def.find(in.dst);
  if (it == last_def.end() || it->second != node) return false;
  return live.live_out(block_id, in.dst);
}

void BlockScheduler::handle_redefinition(std::uint32_t node) {
  // Called at commit time, after the redefining instruction resolved its
  // own sources: every consumer of the pending value is then scheduled
  // (readers are anti-dependence predecessors of the redefinition, plus
  // possibly the redefinition itself) and none forced a materialization,
  // so the old result move is dead.
  const MInstr& in = block_.instrs[node];
  if (!in.has_dst()) return;
  auto it = pending_def_.find(in.dst);
  if (it == pending_def_.end() || it->second == node) return;
  if (options_.dead_result_elim) {
    eliminate(it->second);
  } else {
    materialize(it->second);
  }
}

void BlockScheduler::schedule_pseudo(std::uint32_t node) {
  // MovI: defer the write; consumers receive the immediate directly.
  handle_redefinition(node);
  OpSched& s = sched_[node];
  s.scheduled = true;
  if (!options_.software_bypass) {
    // Without bypassing the immediate must land in the RF right away.
    pending_def_[block_.instrs[node].dst] = node;
    materialize(node);
    return;
  }
  pending_def_[block_.instrs[node].dst] = node;
}

void BlockScheduler::schedule_copy(std::uint32_t node) {
  // Copy: a single RF->RF (or result->RF) move, scheduled immediately so
  // its source read is recorded before any redefinition of the source.
  handle_redefinition(node);
  const MInstr& in = block_.instrs[node];
  const PhysReg d = in.dst;

  std::int64_t lower = node_floor(node);
  auto lw = last_rf_write_.find(d);
  if (lw != last_rf_write_.end()) lower = std::max(lower, lw->second + 1);
  auto lr = last_rf_read_.find(d);
  if (lr != last_rf_read_.end()) lower = std::max(lower, lr->second);

  for (std::int64_t c = lower;; ++c) {
    TTSC_ASSERT(c < lower + 100000, "copy: no feasible cycle");
    auto src = resolve_src(node, 0, c);
    if (!src.has_value()) continue;
    if (!rf_write_ok(c, d.rf)) continue;
    PlannedMove mv;
    mv.src = src->src;
    mv.dst = MoveDst::rf_write(d.rf, d.index);
    int bus = -1;
    int extra = -1;
    if (!find_bus(mv, c, bus, extra)) continue;
    mv.cycle = c;
    mv.bus = bus;
    mv.extra_bus = extra;
    commit_move(mv);
    if (src->bypass_of >= 0) {
      if (src->src.kind == MoveSrc::Kind::FuResult) {
        record_result_read(static_cast<std::uint32_t>(src->bypass_of), c);
        note_bypass(src->bypass_of, node);
      }
    }
    OpSched& s = sched_[node];
    s.scheduled = true;
    s.rf_write = c;
    s.write_done = true;
    last_rf_write_[d] = std::max(last_rf_write_[d], c);
    return;
  }
}

void BlockScheduler::schedule_select(std::uint32_t node) {
  // Select lowers to guarded moves (the BOOLRF path of Fig. 4): the
  // condition moves into a guard register, then the two value moves write
  // the same destination register under opposite guards — only one
  // commits. Machines without guard registers never see Select (the
  // driver expands it to mask arithmetic before lowering).
  TTSC_ASSERT(machine_.has_guards(), "Select reached a machine without guard registers");
  const MInstr& in = block_.instrs[node];
  const PhysReg d = in.dst;

  // 1. Condition -> guard register.
  int guard = -1;
  std::int64_t guard_write = kNoCycle;
  const std::int64_t floor = node_floor(node);
  for (std::int64_t c = floor;; ++c) {
    TTSC_ASSERT(c < floor + 100000, "select: no feasible guard-write cycle");
    auto cond = resolve_src(node, 0, c);
    if (!cond.has_value()) continue;
    // A guard register whose previous value has no uses after this write.
    int g = -1;
    for (std::size_t i = 0; i < guards_.size(); ++i) {
      if (guards_[i].last_use <= c && guards_[i].last_write != c) {
        g = static_cast<int>(i);
        break;
      }
    }
    if (g < 0) continue;
    PlannedMove mv;
    mv.src = cond->src;
    mv.dst = MoveDst::guard_write(g);
    int bus = -1;
    int extra = -1;
    if (!find_bus(mv, c, bus, extra)) continue;
    mv.cycle = c;
    mv.bus = bus;
    mv.extra_bus = extra;
    commit_move(mv);
    if (cond->bypass_of >= 0 && cond->src.kind == MoveSrc::Kind::FuResult) {
      record_result_read(static_cast<std::uint32_t>(cond->bypass_of), c);
      note_bypass(cond->bypass_of, node);
    }
    guard = g;
    guard_write = c;
    guards_[static_cast<std::size_t>(g)].last_write = c;
    break;
  }

  // 2. The two guarded writes (readable from guard_write + 1 on).
  std::int64_t lower = guard_write + 1;
  auto lw = last_rf_write_.find(d);
  if (lw != last_rf_write_.end()) lower = std::max(lower, lw->second + 1);
  auto lr = last_rf_read_.find(d);
  if (lr != last_rf_read_.end()) lower = std::max(lower, lr->second);

  std::int64_t last_write = kNoCycle;
  for (int side = 0; side < 2; ++side) {
    const std::size_t src_index = side == 0 ? 1 : 2;
    for (std::int64_t c = lower;; ++c) {
      TTSC_ASSERT(c < lower + 100000, "select: no feasible guarded-write cycle");
      auto src = resolve_src(node, src_index, c);
      if (!src.has_value()) continue;
      if (!rf_write_ok(c, d.rf)) continue;
      PlannedMove mv;
      mv.src = src->src;
      mv.dst = MoveDst::rf_write(d.rf, d.index);
      int bus = -1;
      int extra = -1;
      if (!find_bus(mv, c, bus, extra)) continue;
      mv.cycle = c;
      mv.bus = bus;
      mv.extra_bus = extra;
      mv.guard = guard;
      mv.guard_negate = side == 1;
      commit_move(mv);
      if (src->bypass_of >= 0 && src->src.kind == MoveSrc::Kind::FuResult) {
        record_result_read(static_cast<std::uint32_t>(src->bypass_of), c);
        note_bypass(src->bypass_of, node);
      }
      guards_[static_cast<std::size_t>(guard)].last_use =
          std::max(guards_[static_cast<std::size_t>(guard)].last_use, c);
      last_write = std::max(last_write, c);
      break;
    }
    lower = last_write;  // the second write may share the cycle on another port
  }

  handle_redefinition(node);
  OpSched& st = sched_[node];
  st.scheduled = true;
  st.rf_write = last_write;
  st.write_done = true;
  last_rf_write_[d] = std::max(last_rf_write_[d], last_write);
  ++stats_.guarded_selects;
}

void BlockScheduler::schedule_fu_op(std::uint32_t node, std::int64_t extra_lower) {
  const MInstr& in = block_.instrs[node];
  const bool control = ir::is_branch(in.op) || in.op == Opcode::Ret;

  // Candidate function units (3-issue machines have two ALUs).
  std::vector<int> candidates;
  for (std::size_t f = 0; f < machine_.fus.size(); ++f) {
    if (machine_.fus[f].supports(in.op)) candidates.push_back(static_cast<int>(f));
  }
  TTSC_ASSERT(!candidates.empty(),
              format("no FU for %s on %s", std::string(ir::opcode_name(in.op)).c_str(),
                     machine_.name.c_str()));

  // Without dead-result elimination a superseded pending definition will be
  // materialized anyway; do it before placement so its result-register read
  // cannot land after our completion.
  if (in.has_dst() && !options_.dead_result_elim) {
    auto it = pending_def_.find(in.dst);
    if (it != pending_def_.end() && it->second != node) materialize(it->second);
  }

  // If every candidate carries a deferred result (which a new completion
  // would clobber), settle one so progress is guaranteed; candidates with
  // pending results are otherwise skipped to preserve their bypass windows.
  if (in.has_dst()) {
    bool any_clear = false;
    for (int f : candidates) {
      any_clear |= fu_state_[static_cast<std::size_t>(f)].pending_node < 0;
    }
    if (!any_clear) {
      materialize(
          static_cast<std::uint32_t>(fu_state_[static_cast<std::size_t>(candidates[0])].pending_node));
    }
  }

  const int trig_idx = control ? 0 : trigger_operand_index(in);
  const int oper_idx = (!control && in.srcs.size() > 1) ? (trig_idx == 0 ? 1 : 0) : -1;

  std::int64_t lower = std::max<std::int64_t>(mem_lower_bound(node), extra_lower);
  lower = std::max(lower, node_floor(node));
  // Producers' completions give a cheap lower bound on the trigger cycle.
  for (std::size_t i = 0; i < in.srcs.size(); ++i) {
    const std::int64_t p = producers_[node][i];
    if (p >= 0 && sched_[p].fu >= 0) lower = std::max(lower, sched_[p].comp);
  }

  for (std::int64_t t = lower;; ++t) {
    TTSC_ASSERT(t < lower + 100000, "fu op: no feasible cycle");
    for (int fu : candidates) {
      FuState& fs = fu_state_[static_cast<std::size_t>(fu)];
      if (fs.triggers.count(t)) continue;
      const int lat = fu_latency(machine_, fu, in.op);
      const std::int64_t comp = t + lat;
      if (in.has_dst()) {
        if (fs.pending_node >= 0) continue;  // keep that bypass window open
        // Completions stay monotonic per FU so every result gets an open
        // window starting at its completion (a new result may never slip in
        // front of an existing one — the older result's window would
        // collapse before its reads / write-back happened).
        if (!fs.completions.empty() && comp <= fs.completions.rbegin()->first) continue;
        // The previous completion's readers must all be earlier than ours.
        if (!fs.completions.empty() &&
            sched_[fs.completions.rbegin()->second].last_result_read >= comp) {
          continue;
        }
      }

      // Resolve the trigger source at t (control triggers carry the target
      // label; the condition / return value rides the operand port).
      ResolvedSrc trig_src;
      if (control) {
        trig_src.src = MoveSrc::immediate(0);
      } else {
        auto resolved = resolve_src(node, static_cast<std::size_t>(trig_idx), t);
        if (!resolved.has_value()) break;  // cycle too early; no FU will do
        trig_src = *resolved;
      }

      PlannedMove trig_mv;
      trig_mv.dst = MoveDst::fu_trigger(fu, in.op);
      trig_mv.is_control = control;
      trig_mv.src = trig_src.src;
      if (control && !in.targets.empty()) trig_mv.target = in.targets[0];
      int trig_bus = -1;
      int trig_extra = -1;
      trig_mv.cycle = t;
      if (!find_bus(trig_mv, t, trig_bus, trig_extra)) continue;
      trig_mv.bus = trig_bus;
      trig_mv.extra_bus = trig_extra;
      // Tentatively claim the trigger bus (and RF read port) while placing
      // the operand move, so the two moves cannot oversubscribe a port.
      cycle_state(t).bus_used[static_cast<std::size_t>(trig_bus)] = true;
      if (trig_extra >= 0) cycle_state(t).bus_used[static_cast<std::size_t>(trig_extra)] = true;
      const bool trig_reads_rf = trig_mv.src.kind == MoveSrc::Kind::RfRead;
      if (trig_reads_rf) ++cycle_state(t).rf_reads[static_cast<std::size_t>(trig_mv.src.unit)];
      auto release_tentative = [&] {
        cycle_state(t).bus_used[static_cast<std::size_t>(trig_bus)] = false;
        if (trig_extra >= 0) cycle_state(t).bus_used[static_cast<std::size_t>(trig_extra)] = false;
        if (trig_reads_rf) --cycle_state(t).rf_reads[static_cast<std::size_t>(trig_mv.src.unit)];
      };

      bool need_operand = false;
      std::size_t operand_src_index = 0;
      if (control) {
        if ((in.op == Opcode::Bnz || in.op == Opcode::Ret) && !in.srcs.empty()) {
          need_operand = true;
        }
      } else if (oper_idx >= 0) {
        need_operand = true;
        operand_src_index = static_cast<std::size_t>(oper_idx);
      }

      PlannedMove oper_mv;
      bool operand_shared = false;
      bool operand_ok = !need_operand;
      std::int64_t oper_bypass_of = -1;
      if (need_operand) {
        // Try the trigger cycle first, then a few earlier cycles (the
        // operand port is a register; the value stays until overwritten).
        const std::int64_t earliest = std::max<std::int64_t>(node_floor(node), t - 6);
        for (std::int64_t oc = t; oc >= earliest && !operand_ok; --oc) {
          auto src = resolve_src(node, operand_src_index, oc);
          if (!src.has_value()) continue;
          if (try_share_operand(fu, t, src->src)) {
            operand_shared = true;
            operand_ok = true;
            oper_bypass_of = -1;  // no move, no result-register read
            break;
          }
          if (!operand_hold_ok(fu, oc, t)) continue;
          oper_mv.src = src->src;
          oper_mv.dst = MoveDst::fu_operand(fu);
          oper_mv.cycle = oc;
          int ob = -1;
          int oe = -1;
          if (!find_bus(oper_mv, oc, ob, oe)) continue;
          oper_mv.bus = ob;
          oper_mv.extra_bus = oe;
          oper_bypass_of = src->bypass_of;
          operand_ok = true;
        }
      }

      if (!operand_ok) {
        release_tentative();
        continue;
      }

      // Commit. Release the tentative claims; commit_move re-claims them.
      release_tentative();
      commit_move(trig_mv);
      if (!control && trig_src.bypass_of >= 0 && trig_src.src.kind == MoveSrc::Kind::FuResult) {
        record_result_read(static_cast<std::uint32_t>(trig_src.bypass_of), t);
        note_bypass(trig_src.bypass_of, node);
      }
      if (need_operand && !operand_shared) {
        commit_move(oper_mv);
        OperandWrite ow;
        ow.cycle = oper_mv.cycle;
        ow.is_imm = oper_mv.src.kind == MoveSrc::Kind::Imm;
        ow.imm = oper_mv.src.imm;
        ow.hold_until = t;
        fs.operand_writes.push_back(ow);
        if (oper_bypass_of >= 0 && oper_mv.src.kind == MoveSrc::Kind::FuResult) {
          record_result_read(static_cast<std::uint32_t>(oper_bypass_of), oper_mv.cycle);
          note_bypass(oper_bypass_of, node);
        }
      }

      fs.triggers.insert(t);
      OpSched& s = sched_[node];
      s.scheduled = true;
      s.trigger = t;
      s.fu = fu;
      TTA_TRACE("fu_op node=%u op=%s fu=%d t=%lld comp=%lld", node,
                std::string(ir::opcode_name(in.op)).c_str(), fu,
                static_cast<long long>(t), static_cast<long long>(t + fu_latency(machine_, fu, in.op)));
      if (in.has_dst()) {
        // Settle a superseded pending definition of our destination now
        // that our own reads of its value are resolved and recorded.
        handle_redefinition(node);
        TTSC_ASSERT(fs.pending_node < 0, "clobbering a pending result");
        s.comp = comp;
        max_comp_cycle_ = std::max(max_comp_cycle_, comp);
        fs.completions[comp] = node;
        fs.pending_node = node;
        pending_def_[in.dst] = node;
      }
      return;
    }
  }
}

void BlockScheduler::finalize_pending() {
  for (std::uint32_t i = 0; i < ddg_.size(); ++i) {
    OpSched& s = sched_[i];
    if (!s.scheduled || s.write_done || s.eliminated) continue;
    const MInstr& in = block_.instrs[i];
    if (!in.has_dst()) continue;
    // A not-yet-scheduled consumer (the block's control operation) still
    // needs this value from the RF.
    bool consumer_remaining = false;
    for (std::uint32_t e : ddg_.succ_edges(i)) {
      const auto& edge = ddg_.edge(e);
      if (edge.kind == DepKind::Raw && !sched_[edge.to].scheduled) consumer_remaining = true;
    }
    const bool live = needed_after_block(live_, block_id_, last_def_, i, in);
    // Another pending def may have superseded this one.
    auto it = pending_def_.find(in.dst);
    const bool superseded = it == pending_def_.end() || it->second != i;
    if (live && !superseded) {
      materialize(i);
    } else if (consumer_remaining &&
               (options_.dead_result_elim ||
                (in.op == Opcode::MovI && options_.software_bypass))) {
      // At this point only the block's control operations are unscheduled,
      // so the remaining consumer is the branch: leave the value pending —
      // the branch bypasses the result register (or takes the immediate)
      // and the second finalize_pending() pass eliminates the dead write.
    } else if (consumer_remaining) {
      materialize(i);
    } else if (options_.dead_result_elim || in.op == Opcode::MovI) {
      eliminate(i);
    } else {
      materialize(i);
    }
  }
}

BlockScheduler::Result BlockScheduler::run() {
  const std::uint32_t n = ddg_.size();
  sched_.assign(n, OpSched{});
  Result out;
  if (n == 0) return out;

  // Critical-path priorities.
  std::vector<std::int64_t> height(n, 0);
  for (std::uint32_t i = n; i-- > 0;) {
    for (std::uint32_t e : ddg_.succ_edges(i)) {
      const auto& edge = ddg_.edge(e);
      height[i] = std::max(height[i], edge_delay(edge) + height[edge.to]);
    }
  }

  std::vector<bool> is_control(n, false);
  std::uint32_t remaining_datapath = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Opcode op = block_.instrs[i].op;
    is_control[i] = ir::is_branch(op) || op == Opcode::Ret;
    if (!is_control[i]) ++remaining_datapath;
  }

  auto preds_done = [&](std::uint32_t i) {
    for (std::uint32_t e : ddg_.pred_edges(i)) {
      if (!sched_[ddg_.edge(e).from].scheduled) return false;
    }
    return true;
  };

  const std::uint32_t num_regions = static_cast<std::uint32_t>(interior_exits_.size()) + 1;
  region_floor_.assign(num_regions, 0);
  std::int64_t last_control = kNoCycle;

  for (std::uint32_t r = 0; r < num_regions; ++r) {
    // Datapath of region r, critical-path priority. Regions run in trace
    // order, so every DDG predecessor of a ready node is already placed.
    std::uint32_t remaining = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!is_control[i] && region(i) == r) ++remaining;
    }
    while (remaining > 0) {
      std::uint32_t best = n;
      std::int64_t best_height = -1;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (is_control[i] || sched_[i].scheduled || region(i) != r) continue;
        if (!preds_done(i)) continue;
        if (height[i] > best_height) {
          best_height = height[i];
          best = i;
        }
      }
      TTSC_ASSERT(best < n, "TTA scheduler: no ready datapath node");
      const MInstr& in = block_.instrs[best];
      if (in.op == Opcode::MovI) {
        schedule_pseudo(best);
      } else if (in.op == Opcode::Copy) {
        schedule_copy(best);
      } else if (in.op == Opcode::Select) {
        schedule_select(best);
      } else {
        schedule_fu_op(best, 0);
      }
      --remaining;
    }
    if (r + 1 == num_regions) break;

    // Side exit closing region r. Pending results the exit path still
    // needs must reach the RF first (values dead on the exit path stay in
    // their FU result registers — that is the cross-block win).
    const std::uint32_t exit = interior_exits_[r];
    const std::uint32_t target = block_.instrs[exit].targets[0];
    std::vector<std::uint32_t> forced;
    for (const auto& [reg, def] : pending_def_) {
      if (live_.live_in(target, reg)) forced.push_back(def);
    }
    for (const std::uint32_t p : forced) materialize(p);

    // Every in-flight FU completion must land inside the exit's delay
    // slots: a completion arriving after the exit target's first cycle
    // could collapse a bypass window the target's own schedule relies on.
    std::int64_t lower = options_.early_control
                             ? std::max<std::int64_t>(0, max_move_cycle_ - machine_.delay_slots)
                             : max_move_cycle_ + 1;
    lower = std::max(lower, max_comp_cycle_ - machine_.delay_slots);
    lower = std::max(lower, region_floor_[r]);
    if (last_control != kNoCycle) lower = std::max(lower, last_control + 1);
    schedule_fu_op(exit, lower);
    last_control = sched_[exit].trigger;
    max_interior_exit_ = last_control;
    region_floor_[r + 1] = last_control + machine_.delay_slots + 1;
  }

  // Live-out values must reach the RF before control leaves the block.
  finalize_pending();

  // Final-region control operations, in program order (Bnz then trailing
  // Jump); interior side exits are already placed.
  bool have_final_control = false;
  bool is_ret = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!is_control[i] || sched_[i].scheduled) continue;
    std::int64_t lower = region_floor_[num_regions - 1];
    if (options_.early_control) {
      lower = std::max(lower, max_move_cycle_ - machine_.delay_slots);
      if (block_.instrs[i].op == Opcode::Ret) lower = std::max(lower, max_move_cycle_);
      lower = std::max<std::int64_t>(lower, 0);
    } else {
      lower = std::max(lower, max_move_cycle_ + 1);
    }
    if (last_control != kNoCycle) lower = std::max(lower, last_control + 1);
    schedule_fu_op(i, lower);
    last_control = sched_[i].trigger;
    is_ret = block_.instrs[i].op == Opcode::Ret;
    have_final_control = true;
  }

  // Settle pseudo ops that were left pending for the control operations.
  finalize_pending();

  if (have_final_control) {
    out.length = last_control + 1 + (is_ret ? 0 : machine_.delay_slots);
    TTSC_ASSERT(max_move_cycle_ <= last_control + machine_.delay_slots,
                "moves scheduled past the control transfer");
  } else {
    out.length = max_move_cycle_ + 1;
  }
  if (max_interior_exit_ != kNoCycle) {
    // A taken side exit's delay slots must stay inside the block.
    out.length = std::max(out.length, max_interior_exit_ + machine_.delay_slots + 1);
  }

  // Static per-cycle empty-slot cause annotation (prof/cause.hpp). Recorded
  // resource conflicts win; an unexplained empty cycle inside a control
  // transfer's delay slots is branch overhead, inside an FU's latency
  // shadow it is a latency wait, and anything left is a dependence stall.
  // Cycles that carry moves keep their conflict cause (why the REST of the
  // cycle's slots went unused) or default to Frontend.
  {
    const std::size_t len = static_cast<std::size_t>(out.length);
    std::vector<bool> busy(len, false);
    for (const auto& [cycle, mv] : moves_) {
      if (cycle >= 0 && static_cast<std::size_t>(cycle) < len) {
        busy[static_cast<std::size_t>(cycle)] = true;
      }
    }
    std::vector<bool> branch_shadow(len, false);
    std::vector<bool> fu_shadow(len, false);
    for (std::uint32_t i = 0; i < n; ++i) {
      const OpSched& s = sched_[i];
      if (s.trigger == kNoCycle) continue;
      if (is_control[i]) {
        for (std::int64_t c = s.trigger + 1;
             c <= s.trigger + machine_.delay_slots && c < out.length; ++c) {
          branch_shadow[static_cast<std::size_t>(c)] = true;
        }
      } else if (s.fu >= 0 && s.comp != kNoCycle) {
        for (std::int64_t c = s.trigger + 1; c < s.comp && c < out.length; ++c) {
          fu_shadow[static_cast<std::size_t>(c)] = true;
        }
      }
    }
    out.cycle_cause.resize(len);
    for (std::size_t c = 0; c < len; ++c) {
      const auto it = conflict_.find(static_cast<std::int64_t>(c));
      std::uint8_t cause;
      if (it != conflict_.end()) {
        cause = it->second;
      } else if (busy[c]) {
        cause = static_cast<std::uint8_t>(prof::Cause::Frontend);
      } else if (branch_shadow[c]) {
        cause = static_cast<std::uint8_t>(prof::Cause::Branch);
      } else if (fu_shadow[c]) {
        cause = static_cast<std::uint8_t>(prof::Cause::FuLatency);
      } else {
        cause = static_cast<std::uint8_t>(prof::Cause::Dep);
      }
      out.cycle_cause[c] = cause;
    }
  }

  out.moves = std::move(moves_);
  return out;
}

}  // namespace

TtaProgram schedule_tta(const codegen::MFunction& func, const Machine& machine,
                        const TtaOptions& options, TtaScheduleStats* stats,
                        const opt::SuperblockPlan* plan) {
  TTSC_ASSERT(machine.model == mach::Model::Tta, "schedule_tta needs a TTA machine");
  obs::Span span("tta.schedule", [&] { return obs::SpanArgs{{"machine", machine.name}}; });
  TtaScheduleStats local_stats;
  TtaScheduleStats& st = stats != nullptr ? *stats : local_stats;

  const codegen::MLiveness live(func, machine);

  TtaProgram prog;
  prog.block_entry.resize(func.blocks.size());
  std::size_t b = 0;
  while (b < func.blocks.size()) {
    const std::uint32_t base_pc = static_cast<std::uint32_t>(prog.instrs.size());
    prog.block_entry[b] = base_pc;

    // A trace from the superblock plan is scheduled as one merged block;
    // formation made interior members single-predecessor, so only the side
    // exits' taken targets are ever branched to.
    std::uint32_t len = 1;
    if (plan != nullptr) {
      const int ti = plan->trace_of(static_cast<std::uint32_t>(b));
      if (ti >= 0) {
        const opt::SuperblockTrace& tr = plan->traces[static_cast<std::size_t>(ti)];
        TTSC_ASSERT(b == tr.first, "trace entered mid-run");
        len = tr.len;
        for (std::uint32_t m = 1; m < len; ++m) prog.block_entry[b + m] = base_pc;
      }
    }

    codegen::MBlock block;
    std::vector<std::uint32_t> region_of;
    std::vector<std::uint32_t> interior_exits;
    for (std::uint32_t m = 0; m < len; ++m) {
      codegen::MBlock member = func.blocks[b + m];
      // Fallthrough elision: drop a trailing jump to the next block (for
      // trace interiors that is always the next member).
      if (!member.instrs.empty() && member.instrs.back().op == ir::Opcode::Jump &&
          member.instrs.back().targets[0] == b + m + 1) {
        member.instrs.pop_back();
      }
      if (m + 1 < len) {
        TTSC_ASSERT(!member.instrs.empty() && member.instrs.back().op == ir::Opcode::Bnz,
                    "trace interior boundary must be a side-exit branch");
        interior_exits.push_back(
            static_cast<std::uint32_t>(block.instrs.size() + member.instrs.size() - 1));
      }
      for (codegen::MInstr& in : member.instrs) {
        block.instrs.push_back(std::move(in));
        region_of.push_back(m);
      }
    }
    if (block.instrs.empty()) {
      b += len;
      continue;
    }

    if (len > 1) {
      BlockScheduler sched(machine, block, options, live,
                           static_cast<std::uint32_t>(b + len - 1), st, std::move(region_of),
                           std::move(interior_exits));
      BlockScheduler::Result r = sched.run();
      prog.instrs.resize(base_pc + static_cast<std::size_t>(r.length));
      prog.stall_cause.resize(prog.instrs.size(),
                              static_cast<std::uint8_t>(prof::Cause::Dep));
      for (std::size_t i = 0; i < r.cycle_cause.size(); ++i) {
        prog.stall_cause[base_pc + i] = r.cycle_cause[i];
      }
      for (auto& [cycle, mv] : r.moves) {
        TTSC_ASSERT(cycle >= 0 && cycle < r.length, "move outside block window");
        prog.instrs[base_pc + static_cast<std::size_t>(cycle)].moves.push_back(mv);
      }
      b += len;
      continue;
    }

    BlockScheduler sched(machine, block, options, live, static_cast<std::uint32_t>(b), st);
    BlockScheduler::Result r = sched.run();

    const std::size_t base = prog.instrs.size();
    prog.instrs.resize(base + static_cast<std::size_t>(r.length));
    prog.stall_cause.resize(prog.instrs.size(),
                            static_cast<std::uint8_t>(prof::Cause::Dep));
    for (std::size_t i = 0; i < r.cycle_cause.size(); ++i) {
      prog.stall_cause[base + i] = r.cycle_cause[i];
    }
    for (auto& [cycle, mv] : r.moves) {
      TTSC_ASSERT(cycle >= 0 && cycle < r.length, "move outside block window");
      prog.instrs[base + static_cast<std::size_t>(cycle)].moves.push_back(mv);
    }
    ++b;
  }
  st.instructions = prog.instrs.size();
  return prog;
}

}  // namespace ttsc::tta
