// Bit-exact binary encoding of TTA programs in the automatically generated
// instruction format, plus the decoder that reconstructs an executable
// program from the bits — the proof that the format generator is real.
//
// Format (per instruction, fixed width = instruction_bits(machine)):
//   for each bus, in index order, one move slot:
//     [dst field]  bits_for_codes(1 + #destination codes); code 0 = NOP,
//                  then one code per operand port, per (trigger port,
//                  operation), and per writable register, in connectivity
//                  order.
//     [src field]  2-bit source type + payload:
//                  type 0 = socket code (FU results, then RF registers),
//                  type 1 = short immediate (sign-extended payload),
//                  type 2 = literal-pool reference (payload = pool index).
//   Wide immediates and far control-transfer targets live in a per-program
//   literal pool (deduplicated 32-bit words, reported as part of the
//   program image; on hardware this is the instruction ROM's literal
//   section). The transport cost of wide immediates (the extra bus slot
//   the scheduler charges) is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "tta/tta.hpp"

namespace ttsc::tta {

struct EncodedProgram {
  std::vector<std::uint8_t> bits;          // packed little-endian bitstream
  std::uint32_t instruction_count = 0;
  int bits_per_instruction = 0;
  std::vector<std::uint32_t> pool;         // literal pool (constants + targets)
  std::vector<std::uint32_t> block_entry;  // block -> instruction index

  /// Total program image: instruction stream + literal pool.
  std::uint64_t image_bits() const {
    return static_cast<std::uint64_t>(instruction_count) *
               static_cast<std::uint64_t>(bits_per_instruction) +
           static_cast<std::uint64_t>(pool.size()) * 32;
  }
};

/// Encode a scheduled program. Throws ttsc::Error if a move cannot be
/// represented (it always can for programs produced by schedule_tta on the
/// same machine).
EncodedProgram encode_program(const TtaProgram& program, const mach::Machine& machine);

/// Rebuild an executable TtaProgram from the bits. decode(encode(p)) is
/// semantically identical to p (same moves per cycle; scheduler-internal
/// bookkeeping like the immediate-extension bus is not represented).
TtaProgram decode_program(const EncodedProgram& encoded, const mach::Machine& machine);

/// Human-readable disassembly of a scheduled program.
std::string disassemble(const TtaProgram& program, const mach::Machine& machine);

}  // namespace ttsc::tta
