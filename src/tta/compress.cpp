#include "tta/compress.hpp"

#include <map>
#include <vector>

#include "support/bits.hpp"

namespace ttsc::tta {

CompressionResult compress_dictionary(const EncodedProgram& encoded) {
  CompressionResult out;
  out.original_bits = static_cast<std::uint64_t>(encoded.instruction_count) *
                      static_cast<std::uint64_t>(encoded.bits_per_instruction);
  out.pool_bits = static_cast<std::uint64_t>(encoded.pool.size()) * 32;

  // Extract each instruction's bit pattern and count unique ones.
  std::map<std::vector<std::uint8_t>, std::uint32_t> dictionary;
  const int width = encoded.bits_per_instruction;
  for (std::uint32_t pc = 0; pc < encoded.instruction_count; ++pc) {
    std::vector<std::uint8_t> pattern((static_cast<std::size_t>(width) + 7) / 8, 0);
    const std::size_t base = static_cast<std::size_t>(pc) * static_cast<std::size_t>(width);
    for (int i = 0; i < width; ++i) {
      const std::size_t bit = base + static_cast<std::size_t>(i);
      const std::size_t byte = bit >> 3;
      if (byte < encoded.bits.size() && ((encoded.bits[byte] >> (bit & 7)) & 1)) {
        pattern[static_cast<std::size_t>(i) >> 3] |=
            static_cast<std::uint8_t>(1u << (i & 7));
      }
    }
    dictionary.emplace(std::move(pattern), static_cast<std::uint32_t>(dictionary.size()));
  }

  out.dictionary_entries = static_cast<std::uint32_t>(dictionary.size());
  out.index_bits = bits_for_codes(dictionary.size());
  out.compressed_bits = static_cast<std::uint64_t>(encoded.instruction_count) *
                        static_cast<std::uint64_t>(out.index_bits);
  out.dictionary_bits = static_cast<std::uint64_t>(out.dictionary_entries) *
                        static_cast<std::uint64_t>(width);
  return out;
}

}  // namespace ttsc::tta
