// Dictionary-based program compression (Heikkinen, Takala & Corporaal
// [24]; listed as future work in the paper's conclusions).
//
// TTA instruction streams are wide but highly repetitive — the same move
// combinations recur across loop iterations. Dictionary compression stores
// each *unique* instruction word once in an on-chip dictionary and replaces
// the program stream with ceil(log2(#unique)) -bit indices, trading a small
// decode ROM for a large instruction-memory reduction.
#pragma once

#include <cstdint>

#include "tta/binary.hpp"

namespace ttsc::tta {

struct CompressionResult {
  std::uint64_t original_bits = 0;       // instruction stream before
  std::uint64_t compressed_bits = 0;     // index stream
  std::uint64_t dictionary_bits = 0;     // unique patterns * instruction width
  std::uint64_t pool_bits = 0;           // literal pool (uncompressed)
  std::uint32_t dictionary_entries = 0;
  int index_bits = 0;

  std::uint64_t total_bits() const { return compressed_bits + dictionary_bits + pool_bits; }
  /// Compression ratio including the dictionary (< 1 means smaller).
  double ratio() const {
    const double before = static_cast<double>(original_bits + pool_bits);
    return before > 0 ? static_cast<double>(total_bits()) / before : 1.0;
  }
};

/// Compress an encoded program with a full-instruction dictionary.
CompressionResult compress_dictionary(const EncodedProgram& encoded);

}  // namespace ttsc::tta
