// Automatic instruction-format generation from the machine's connectivity,
// following TCE's scheme (Section IV): per bus, the source field selects
// among all readable endpoints reachable on that bus (each RF register is
// an individual code, each FU result one code) or a short immediate; the
// destination field addresses all writable endpoints (RF registers
// individually, one code per triggerable operation, one per operand port)
// plus a NOP code. One extra bit selects the long-immediate template.
#include "support/bits.hpp"
#include "tta/tta.hpp"

namespace ttsc::tta {

using mach::Machine;
using mach::PortRef;

int bus_slot_bits(const Machine& machine, int bus_index) {
  const mach::Bus& bus = machine.buses[static_cast<std::size_t>(bus_index)];

  std::uint64_t src_codes = 0;
  for (const PortRef& s : bus.sources) {
    if (s.kind == PortRef::Kind::FuResult) {
      src_codes += 1;
    } else {
      src_codes += static_cast<std::uint64_t>(machine.rfs[static_cast<std::size_t>(s.unit)].size);
    }
  }
  // 2-bit source type (socket / short immediate / literal-pool reference,
  // see tta/binary.hpp) plus the payload.
  const int src_bits = 2 + std::max(bits_for_codes(src_codes), bus.simm_bits);

  std::uint64_t dst_codes = 1;  // NOP
  dst_codes += static_cast<std::uint64_t>(machine.guard_regs);  // guard writes
  for (const PortRef& d : bus.dests) {
    switch (d.kind) {
      case PortRef::Kind::FuOperand:
        dst_codes += 1;
        break;
      case PortRef::Kind::FuTrigger:
        dst_codes += machine.fus[static_cast<std::size_t>(d.unit)].ops.size();
        break;
      case PortRef::Kind::RfWrite:
        dst_codes += static_cast<std::uint64_t>(machine.rfs[static_cast<std::size_t>(d.unit)].size);
        break;
      default:
        TTSC_UNREACHABLE("source endpoint in bus dests");
    }
  }
  const int dst_bits = bits_for_codes(dst_codes);
  // Guarded machines spend a guard field per slot: unconditional, or
  // true/false per guard register.
  const int guard_bits =
      machine.guard_regs > 0
          ? bits_for_codes(1 + 2 * static_cast<std::uint64_t>(machine.guard_regs))
          : 0;
  return src_bits + dst_bits + guard_bits;
}

int instruction_bits(const Machine& machine) {
  int bits = 0;
  for (std::size_t b = 0; b < machine.buses.size(); ++b) {
    bits += bus_slot_bits(machine, static_cast<int>(b));
  }
  return bits;
}

std::uint64_t image_bits(const TtaProgram& program, const Machine& machine) {
  return static_cast<std::uint64_t>(program.instrs.size()) *
         static_cast<std::uint64_t>(instruction_bits(machine));
}

}  // namespace ttsc::tta
