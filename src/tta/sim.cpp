// Cycle-accurate transport simulator.
//
// Per cycle: (1) FU pipelines deliver results whose latency elapsed into
// the result registers, (2) register-file writes from the previous cycle
// become readable, (3) all of the instruction's moves sample their sources,
// (4) destinations are written — operand ports first, then trigger ports
// fire operations (semi-virtual time latching: an operation starts when its
// trigger port is written and uses the operand port contents of that
// cycle).
#include <queue>

#include "support/bits.hpp"
#include "tta/tta.hpp"

namespace ttsc::tta {

using ir::Opcode;

TtaSim::TtaSim(const TtaProgram& program, const mach::Machine& machine, ir::Memory& memory)
    : program_(program), machine_(machine), mem_(memory) {
  TTSC_ASSERT(machine.model == mach::Model::Tta, "TtaSim needs a TTA machine");
}

namespace {

struct FuRuntime {
  std::uint32_t operand = 0;
  std::uint32_t result = 0;
  // In-flight operations: (completion cycle, value).
  std::priority_queue<std::pair<std::uint64_t, std::uint32_t>,
                      std::vector<std::pair<std::uint64_t, std::uint32_t>>, std::greater<>>
      in_flight;
};

struct RfWritePending {
  std::uint64_t visible_at;
  int rf;
  int index;
  std::uint32_t value;
  bool operator>(const RfWritePending& o) const { return visible_at > o.visible_at; }
};

std::uint32_t compute(Opcode op, std::uint32_t a, std::uint32_t b, ir::Memory& mem) {
  switch (op) {
    case Opcode::Add: return a + b;
    case Opcode::Sub: return a - b;
    case Opcode::Mul: return a * b;
    case Opcode::And: return a & b;
    case Opcode::Ior: return a | b;
    case Opcode::Xor: return a ^ b;
    case Opcode::Shl: return a << (b & 31);
    case Opcode::Shru: return a >> (b & 31);
    case Opcode::Shr: return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
    case Opcode::Eq: return a == b ? 1 : 0;
    case Opcode::Gt: return static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0;
    case Opcode::Gtu: return a > b ? 1 : 0;
    case Opcode::Sxhw: return static_cast<std::uint32_t>(sign_extend(a, 16));
    case Opcode::Sxqw: return static_cast<std::uint32_t>(sign_extend(a, 8));
    case Opcode::Ldw: return mem.load32(a);
    case Opcode::Ldh: return static_cast<std::uint32_t>(sign_extend(mem.load16(a), 16));
    case Opcode::Ldhu: return mem.load16(a);
    case Opcode::Ldq: return static_cast<std::uint32_t>(sign_extend(mem.load8(a), 8));
    case Opcode::Ldqu: return mem.load8(a);
    default: TTSC_UNREACHABLE("compute: unsupported opcode");
  }
}

}  // namespace

ExecResult TtaSim::run(std::uint64_t max_cycles) {
  std::vector<std::vector<std::uint32_t>> rfs;
  for (const mach::RegisterFile& rf : machine_.rfs) {
    rfs.emplace_back(static_cast<std::size_t>(rf.size), 0u);
  }
  std::vector<FuRuntime> fus(machine_.fus.size());
  std::priority_queue<RfWritePending, std::vector<RfWritePending>, std::greater<>> rf_pending;

  ExecResult result;
  result.bus_moves.assign(machine_.buses.size(), 0);
  // Guard registers: current values plus next-cycle updates.
  std::vector<bool> guard_regs(static_cast<std::size_t>(machine_.guard_regs), false);
  std::vector<std::pair<int, bool>> guard_pending;  // applied at next cycle
  std::uint64_t cycle = 0;
  std::size_t pc = 0;
  int transfer_in = -1;
  std::size_t transfer_target = 0;

  // Trigger port writes collected per cycle, fired after operand writes.
  struct TriggerFire {
    int fu;
    Opcode op;
    std::uint32_t value;
    std::uint32_t target_block;
    bool is_control;
  };

  while (cycle < max_cycles) {
    // 1. Results whose latency elapsed land in the result registers.
    for (FuRuntime& fu : fus) {
      while (!fu.in_flight.empty() && fu.in_flight.top().first <= cycle) {
        fu.result = fu.in_flight.top().second;
        fu.in_flight.pop();
      }
    }
    // 2. RF writes from earlier cycles become readable.
    while (!rf_pending.empty() && rf_pending.top().visible_at <= cycle) {
      const RfWritePending& w = rf_pending.top();
      rfs[static_cast<std::size_t>(w.rf)][static_cast<std::size_t>(w.index)] = w.value;
      rf_pending.pop();
    }
    // 2b. Guard writes from the previous cycle latch in.
    for (const auto& [g, v] : guard_pending) guard_regs[static_cast<std::size_t>(g)] = v;
    guard_pending.clear();

    TTSC_ASSERT(pc < program_.instrs.size() || transfer_in >= 0,
                "TTA PC ran off the end of the program");
    if (pc < program_.instrs.size()) {
      const TtaInstruction& instr = program_.instrs[pc];
      // 3. Sample all sources.
      std::vector<std::uint32_t> values(instr.moves.size());
      for (std::size_t m = 0; m < instr.moves.size(); ++m) {
        const Move& mv = instr.moves[m];
        switch (mv.src.kind) {
          case MoveSrc::Kind::Imm: values[m] = static_cast<std::uint32_t>(mv.src.imm); break;
          case MoveSrc::Kind::FuResult:
            values[m] = fus[static_cast<std::size_t>(mv.src.unit)].result;
            break;
          case MoveSrc::Kind::RfRead:
            values[m] = rfs[static_cast<std::size_t>(mv.src.unit)]
                           [static_cast<std::size_t>(mv.src.reg_index)];
            break;
        }
      }
      result.moves += instr.moves.size();
      for (const Move& mv : instr.moves) {
        if (mv.bus >= 0 && static_cast<std::size_t>(mv.bus) < result.bus_moves.size()) {
          ++result.bus_moves[static_cast<std::size_t>(mv.bus)];
        }
      }

      // 4a. Non-trigger destinations. A guarded move whose guard register
      // disagrees is squashed (semi-virtual time latching keeps everything
      // else untouched).
      std::vector<TriggerFire> fires;
      for (std::size_t m = 0; m < instr.moves.size(); ++m) {
        const Move& mv = instr.moves[m];
        if (mv.guard >= 0) {
          const bool g = guard_regs[static_cast<std::size_t>(mv.guard)];
          if (g == mv.guard_negate) continue;  // squashed
        }
        switch (mv.dst.kind) {
          case MoveDst::Kind::FuOperand:
            fus[static_cast<std::size_t>(mv.dst.unit)].operand = values[m];
            break;
          case MoveDst::Kind::RfWrite:
            rf_pending.push(RfWritePending{cycle + 1, mv.dst.unit, mv.dst.reg_index, values[m]});
            break;
          case MoveDst::Kind::GuardWrite:
            guard_pending.emplace_back(mv.dst.unit, values[m] != 0);
            break;
          case MoveDst::Kind::FuTrigger:
            fires.push_back(
                TriggerFire{mv.dst.unit, mv.dst.opcode, values[m], mv.target, mv.is_control});
            break;
        }
      }
      // 4b. Triggers fire using this cycle's operand port contents.
      for (const TriggerFire& f : fires) {
        FuRuntime& fu = fus[static_cast<std::size_t>(f.fu)];
        if (f.is_control) {
          if (transfer_in >= 0) continue;  // squashed in a transfer shadow
          switch (f.op) {
            case Opcode::Jump:
              transfer_in = machine_.delay_slots;
              transfer_target = program_.block_entry[f.target_block];
              break;
            case Opcode::Bnz:
              if (fu.operand != 0) {
                transfer_in = machine_.delay_slots;
                transfer_target = program_.block_entry[f.target_block];
              }
              break;
            case Opcode::Ret:
              result.cycles = cycle + 1;
              result.ret = fu.operand;
              return result;
            case Opcode::Call:
              TTSC_UNREACHABLE("calls must be inlined before TTA scheduling");
            default:
              TTSC_UNREACHABLE("bad control trigger opcode");
          }
          continue;
        }
        const int lat = machine_.fus[static_cast<std::size_t>(f.fu)].latency(f.op);
        switch (f.op) {
          // Stores commit their side effect in the trigger cycle.
          case Opcode::Stw: mem_.store32(f.value, fu.operand); break;
          case Opcode::Sth: mem_.store16(f.value, static_cast<std::uint16_t>(fu.operand)); break;
          case Opcode::Stq: mem_.store8(f.value, static_cast<std::uint8_t>(fu.operand)); break;
          default: {
            // Binary ops: operand port is the first input, trigger the
            // second — except loads/unary where the trigger is the input,
            // and stores (above) where the trigger is the address.
            std::uint32_t a;
            std::uint32_t b;
            if (ir::is_load(f.op) || f.op == Opcode::Sxhw || f.op == Opcode::Sxqw) {
              a = f.value;
              b = 0;
            } else {
              a = fu.operand;
              b = f.value;
            }
            fu.in_flight.push({cycle + static_cast<std::uint64_t>(lat), compute(f.op, a, b, mem_)});
            break;
          }
        }
      }
    }

    ++cycle;
    if (transfer_in >= 0) {
      if (transfer_in == 0) {
        pc = transfer_target;
        transfer_in = -1;
      } else {
        --transfer_in;
        ++pc;
      }
    } else {
      ++pc;
    }
  }
  throw Error("TTA simulation exceeded cycle limit");
}

}  // namespace ttsc::tta
