// Cycle-accurate transport simulator.
//
// Per cycle: (1) FU pipelines deliver results whose latency elapsed into
// the result registers, (2) register-file writes from the previous cycle
// become readable, (3) all of the instruction's moves sample their sources,
// (4) destinations are written — operand ports first, then trigger ports
// fire operations (semi-virtual time latching: an operation starts when its
// trigger port is written and uses the operand port contents of that
// cycle).
//
// Two implementations of the same semantics live here:
//  * run_reference — the original interpretive loop over TtaProgram,
//    selected by SimOptions{.fast_path = false}; the differential baseline.
//  * run_fast<kObserve> — executes the predecoded flat form
//    (sim/predecode.hpp): no per-cycle allocation, no latency lookups, FU
//    in-flight results in a circular buffer instead of a priority queue,
//    RF/guard write delays as double buffers. Instantiated with and
//    without observer dispatch so a null observer is free.
// The two paths are locked together cycle-for-cycle (ExecResult including
// halt-time RF/guard state) by the differential suite in
// tests/property_test.cpp.
#include <algorithm>
#include <queue>

#include "sim/fault.hpp"
#include "sim/harden.hpp"
#include "sim/predecode.hpp"
#include "sim/protect.hpp"
#include "support/bits.hpp"
#include "tta/tta.hpp"

namespace ttsc::tta {

using ir::Opcode;

TtaSim::TtaSim(const TtaProgram& program, const mach::Machine& machine, ir::Memory& memory,
               sim::SimOptions options)
    : program_(program), machine_(machine), mem_(memory), options_(options) {
  TTSC_ASSERT(machine.model == mach::Model::Tta, "TtaSim needs a TTA machine");
}

TtaSim::~TtaSim() = default;

void TtaSim::use_predecoded(std::shared_ptr<const sim::PredecodedTta> predecoded) {
  predecoded_ = std::move(predecoded);
}

namespace {

struct FuRuntime {
  std::uint32_t operand = 0;
  std::uint32_t result = 0;
  // In-flight operations: (completion cycle, value).
  std::priority_queue<std::pair<std::uint64_t, std::uint32_t>,
                      std::vector<std::pair<std::uint64_t, std::uint32_t>>, std::greater<>>
      in_flight;
};

struct RfWritePending {
  std::uint64_t visible_at;
  int rf;
  int index;
  std::uint32_t value;
  bool operator>(const RfWritePending& o) const { return visible_at > o.visible_at; }
};

std::uint32_t compute(Opcode op, std::uint32_t a, std::uint32_t b, ir::Memory& mem) {
  switch (op) {
    case Opcode::Add: return a + b;
    case Opcode::Sub: return a - b;
    case Opcode::Mul: return a * b;
    case Opcode::And: return a & b;
    case Opcode::Ior: return a | b;
    case Opcode::Xor: return a ^ b;
    case Opcode::Shl: return a << (b & 31);
    case Opcode::Shru: return a >> (b & 31);
    case Opcode::Shr: return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
    case Opcode::Eq: return a == b ? 1 : 0;
    case Opcode::Gt: return static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0;
    case Opcode::Gtu: return a > b ? 1 : 0;
    case Opcode::Sxhw: return static_cast<std::uint32_t>(sign_extend(a, 16));
    case Opcode::Sxqw: return static_cast<std::uint32_t>(sign_extend(a, 8));
    case Opcode::Ldw: return mem.load32(a);
    case Opcode::Ldh: return static_cast<std::uint32_t>(sign_extend(mem.load16(a), 16));
    case Opcode::Ldhu: return mem.load16(a);
    case Opcode::Ldq: return static_cast<std::uint32_t>(sign_extend(mem.load8(a), 8));
    case Opcode::Ldqu: return mem.load8(a);
    default: TTSC_UNREACHABLE("compute: unsupported opcode");
  }
}

}  // namespace

ExecResult TtaSim::run(std::uint64_t max_cycles) {
  if (!options_.fast_path) return run_reference(max_cycles);
  if (predecoded_ == nullptr) {
    predecoded_ = std::make_shared<const sim::PredecodedTta>(sim::predecode(program_, machine_));
  }
  const bool harden =
      options_.harden || options_.faults != nullptr || options_.protect != nullptr;
  if (options_.profile != nullptr) {
    if (options_.observer != nullptr) {
      return harden ? run_fast<true, true, true>(max_cycles)
                    : run_fast<true, false, true>(max_cycles);
    }
    return harden ? run_fast<false, true, true>(max_cycles)
                  : run_fast<false, false, true>(max_cycles);
  }
  if (options_.observer != nullptr) {
    return harden ? run_fast<true, true, false>(max_cycles)
                  : run_fast<true, false, false>(max_cycles);
  }
  return harden ? run_fast<false, true, false>(max_cycles)
                : run_fast<false, false, false>(max_cycles);
}

template <bool kObserve, bool kHarden, bool kProfile>
ExecResult TtaSim::run_fast(std::uint64_t max_cycles) {
  using sim::TtaPMove;
  const sim::PredecodedTta& pre = *predecoded_;
  sim::ExecObserver* const obs = options_.observer;
  sim::ProfileCounts* const prof = options_.profile;
  const std::size_t nfus = machine_.fus.size();
  const std::uint64_t ring = static_cast<std::uint64_t>(pre.ring);
  const std::size_t num_instrs = pre.num_instrs();

  // All run state is allocated up front; the cycle loop is allocation-free.
  std::vector<std::uint32_t> rf(pre.rf_slots, 0u);
  std::vector<std::uint32_t> fu_operand(nfus, 0u);
  std::vector<std::uint32_t> fu_result(nfus, 0u);
  std::vector<std::uint8_t> guard_regs(static_cast<std::size_t>(machine_.guard_regs), 0u);

  // In-flight results as per-completion-column entry lists: column c holds
  // the results landing when the ring cursor reaches c, at most one entry
  // per FU (same-FU ties merge at push). Delivery then touches only the
  // results that actually land instead of scanning every FU every cycle.
  struct InFlight {
    std::uint32_t fu;
    std::uint32_t value;
  };
  std::vector<InFlight> ring_entry(ring * nfus);
  std::vector<std::uint32_t> ring_count(ring, 0u);

  struct RfWrite {
    std::uint32_t slot;
    std::uint32_t value;
    std::int16_t rf;
    std::int16_t reg;
  };
  std::vector<RfWrite> rf_pending[2];
  struct GuardWrite {
    std::uint32_t guard;
    std::uint8_t value;
  };
  std::vector<GuardWrite> guard_pending[2];
  struct Fire {
    const TtaPMove* mv;
    std::uint32_t value;
  };
  // At most one move (and so one trigger) per instruction move slot.
  std::uint32_t max_instr_moves = 0;
  for (std::size_t i = 0; i < num_instrs; ++i) {
    max_instr_moves = std::max(max_instr_moves, pre.instr_begin[i + 1] - pre.instr_begin[i]);
  }
  std::vector<Fire> fires(max_instr_moves + 1);

  ExecResult result;
  result.bus_moves.assign(machine_.buses.size(), 0);
  std::uint64_t cycle = 0;
  std::size_t pc = 0;
  int transfer_in = -1;
  std::size_t transfer_target = 0;
  [[maybe_unused]] std::uint32_t last_arch = 0;

  // Transport occupancy (result.moves / bus_moves) counts every move of an
  // executed instruction, squashed ones included — a static per-instruction
  // property, so the hot loop only counts instruction executions and the
  // occupancy totals are folded in at halt.
  std::vector<std::uint64_t> instr_exec(num_instrs, 0ull);
  auto capture_state = [&] {
    if constexpr (kProfile) {
      // Writes still pending at halt never commit (the observer's
      // on_rf_write never fires for them either).
      for (const std::vector<RfWrite>& pend : rf_pending) {
        for (const RfWrite& w : pend) {
          ++prof->uncommitted_rf_writes[static_cast<std::size_t>(w.rf)];
        }
      }
      prof->final_pc = last_arch;
      prof->end_pc = static_cast<std::uint32_t>(pc);
      prof->end_transfer_in = transfer_in;
      prof->end_transfer_target =
          transfer_in >= 0 ? static_cast<std::int32_t>(transfer_target) : -1;
    }
    result.rf_state = rf;
    result.guard_state = guard_regs;
    for (std::size_t i = 0; i < num_instrs; ++i) {
      const std::uint64_t n = instr_exec[i];
      if (n == 0) continue;
      result.moves += n * (pre.instr_begin[i + 1] - pre.instr_begin[i]);
      for (std::uint32_t m = pre.instr_begin[i]; m < pre.instr_begin[i + 1]; ++m) {
        const auto bus = pre.moves[m].bus;
        if (bus >= 0) result.bus_moves[static_cast<std::size_t>(bus)] += n;
      }
    }
  };

  auto set_trap = [&](sim::TrapReason reason, int unit, std::uint32_t detail) {
    result.status = sim::ExecStatus::Trapped;
    result.trap = sim::TrapInfo{reason, cycle, unit, detail};
    result.cycles = cycle;
    capture_state();
  };

  // SEU state faults (sim/fault.hpp), applied at the top of their cycle.
  [[maybe_unused]] const sim::StateFault* fault_next = nullptr;
  [[maybe_unused]] const sim::StateFault* fault_end = nullptr;
  if (options_.faults != nullptr) {
    fault_next = options_.faults->faults.data();
    fault_end = fault_next + options_.faults->faults.size();
  }
  // Declared protection semantics (sim/protect.hpp): fault filters at the
  // apply sites, code/checker checks at the read sites, poison clears at
  // the commit sites. Null on unprotected runs.
  [[maybe_unused]] sim::ProtectState* const prot = options_.protect;
  [[maybe_unused]] auto apply_fault = [&](const sim::StateFault& f) {
    switch (f.kind) {
      case sim::FaultKind::RfBit: {
        if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= machine_.rfs.size()) return;
        if (f.index < 0 || f.index >= machine_.rfs[static_cast<std::size_t>(f.unit)].size) return;
        const std::uint32_t slot =
            pre.rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index);
        const std::uint32_t mask = sim::fault_mask(f);
        if (prot != nullptr) prot->on_rf_flip(slot, mask);
        rf[slot] ^= mask;
        break;
      }
      case sim::FaultKind::FuResultBit: {
        if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= nfus) return;
        const std::uint32_t mask = sim::fault_mask(f);
        if (prot != nullptr) prot->on_fu_flip(static_cast<std::uint32_t>(f.unit), mask);
        fu_result[static_cast<std::size_t>(f.unit)] ^= mask;
        break;
      }
      case sim::FaultKind::GuardBit:
        if (f.unit < 0 || f.unit >= machine_.guard_regs) return;
        if (prot == nullptr || prot->on_guard_flip()) {
          guard_regs[static_cast<std::size_t>(f.unit)] ^= 1u;
        }
        break;
    }
  };

  // Block-entry lookup for on_block_enter: entry pc -> block id, last block
  // wins when empty blocks share a pc. Only built when observing.
  std::vector<std::int32_t> entry_of;
  if constexpr (kObserve) {
    entry_of.assign(num_instrs, -1);
    for (std::size_t b = 0; b < program_.block_entry.size(); ++b) {
      const std::size_t entry = program_.block_entry[b];
      if (entry < num_instrs) entry_of[entry] = static_cast<std::int32_t>(b);
    }
  }

  std::size_t ring_idx = 0;
  while (cycle < max_cycles) {
    // 0. State faults land between cycles: before result delivery, RF
    // commits and guard latching, so both execution paths observe the
    // identical corrupted state from this cycle on.
    if constexpr (kHarden) {
      while (fault_next != fault_end && fault_next->cycle <= cycle) {
        apply_fault(*fault_next);
        ++fault_next;
      }
    }
    // 1. Results whose latency elapsed land in the result registers.
    if (ring_count[ring_idx] != 0) {
      InFlight* const col = &ring_entry[ring_idx * nfus];
      const std::uint32_t n = ring_count[ring_idx];
      for (std::uint32_t e = 0; e < n; ++e) {
        fu_result[col[e].fu] = col[e].value;
        if constexpr (kHarden) {
          if (prot != nullptr) prot->clear_fu(col[e].fu);
        }
      }
      ring_count[ring_idx] = 0;
    }
    // 2. RF writes from the previous cycle become readable.
    std::vector<RfWrite>& commits = rf_pending[cycle & 1];
    for (const RfWrite& w : commits) {
      rf[w.slot] = w.value;
      if constexpr (kHarden) {
        if (prot != nullptr) prot->clear_rf(w.slot);
      }
      if constexpr (kObserve) obs->on_rf_write(cycle, w.rf, w.reg, w.value);
    }
    commits.clear();
    // 2b. Guard writes from the previous cycle latch in.
    std::vector<GuardWrite>& latches = guard_pending[cycle & 1];
    for (const GuardWrite& g : latches) {
      guard_regs[g.guard] = g.value;
      if constexpr (kObserve) obs->on_guard_write(cycle, static_cast<int>(g.guard), g.value);
    }
    latches.clear();

    if (pc >= num_instrs && transfer_in < 0) {
      // The PC ran off the end with no transfer pending: fail closed.
      set_trap(sim::TrapReason::PcOutOfRange, -1, static_cast<std::uint32_t>(pc));
      return result;
    }
    if (pc < num_instrs) {
      if constexpr (kHarden) {
        // Protected imem: the fetch either scrubs a correctable codeword
        // (counted once) or detects an uncorrectable one and fails closed.
        if (prot != nullptr &&
            prot->check_imem_fetch(static_cast<std::uint32_t>(pc)) ==
                sim::ProtectState::ImemAction::Detected) {
          set_trap(sim::TrapReason::ProtectionDetected, -1, static_cast<std::uint32_t>(pc));
          return result;
        }
      }
      if constexpr (kObserve) {
        // Only architectural block entries: a block-entry pc executing in a
        // pending transfer's delay-slot shadow does not enter that block
        // (the profile layer relies on this for clean IR-level edges).
        const std::int32_t blk = transfer_in < 0 ? entry_of[pc] : -1;
        if (blk >= 0) obs->on_block_enter(cycle, static_cast<std::uint32_t>(blk));
        obs->on_exec(cycle, static_cast<std::uint32_t>(pc), transfer_in >= 0);
      }
      if constexpr (kProfile) {
        // Register-only: derive_profile reconstructs the per-pc execution
        // counts from the taken-transfer counters, so the hot loop touches
        // no profile memory per cycle.
        if (transfer_in < 0) last_arch = static_cast<std::uint32_t>(pc);
      }
      const std::uint32_t begin = pre.instr_begin[pc];
      const std::uint32_t end = pre.instr_begin[pc + 1];
      ++instr_exec[pc];
      std::size_t nfires = 0;
      // 3+4a. Sample sources and write non-trigger destinations (RF and
      // guard writes are deferred a cycle; sources never read a state this
      // pass mutates, so sampling and writing interleave exactly).
      for (std::uint32_t m = begin; m < end; ++m) {
        const TtaPMove& mv = pre.moves[m];
        if (mv.guard >= 0) {
          const bool g = guard_regs[static_cast<std::size_t>(mv.guard)] != 0;
          if (g == mv.guard_negate) {  // squashed
            if constexpr (kObserve) obs->on_guard_squash(cycle, mv.bus);
            if constexpr (kProfile) {
              ++prof->squash[2 * static_cast<std::size_t>(m) + (transfer_in >= 0 ? 1u : 0u)];
            }
            continue;
          }
        }
        // Fail-closed: an illegal move (decode-time trap marker) traps when
        // it executes; a squashed guard suppressed it above. Valid programs
        // never carry trap moves, so this branch never fires for them.
        if (mv.trap != 0) {
          set_trap(static_cast<sim::TrapReason>(mv.trap - 1), mv.bus, mv.trap_detail);
          return result;
        }
        std::uint32_t value = mv.imm;
        switch (mv.src) {
          case TtaPMove::Src::Imm: break;
          case TtaPMove::Src::FuResult:
            if constexpr (kHarden) {
              // DMR/residue checkers compare when the result is consumed.
              if (prot != nullptr && prot->check_fu_read(mv.src_slot, fu_result[mv.src_slot])) {
                set_trap(sim::TrapReason::ProtectionDetected, -1, mv.src_slot);
                return result;
              }
            }
            value = fu_result[mv.src_slot];
            break;
          case TtaPMove::Src::RfRead:
            if constexpr (kHarden) {
              // Storage codes check (and SEC-DED scrubs) on read.
              if (prot != nullptr && prot->check_rf_read(mv.src_slot, &rf[mv.src_slot])) {
                set_trap(sim::TrapReason::ProtectionDetected, -1, mv.src_slot);
                return result;
              }
            }
            value = rf[mv.src_slot];
            if constexpr (kObserve) obs->on_rf_read(cycle, mv.src_rf, mv.src_reg);
            break;
        }
        if constexpr (kObserve) obs->on_move(cycle, mv.bus);
        switch (mv.dst) {
          case TtaPMove::Dst::FuOperand: fu_operand[mv.dst_slot] = value; break;
          case TtaPMove::Dst::RfWrite:
            rf_pending[(cycle + 1) & 1].push_back(
                RfWrite{mv.dst_slot, value, mv.dst_rf, mv.dst_reg});
            break;
          case TtaPMove::Dst::GuardWrite:
            guard_pending[(cycle + 1) & 1].push_back(
                GuardWrite{mv.dst_slot, static_cast<std::uint8_t>(value != 0)});
            break;
          case TtaPMove::Dst::FuTrigger:
          case TtaPMove::Dst::ControlTrigger: fires[nfires++] = Fire{&mv, value}; break;
        }
      }
      // 4b. Triggers fire using this cycle's operand port contents.
      for (std::size_t fi = 0; fi < nfires; ++fi) {
        const Fire& f = fires[fi];
        const TtaPMove& mv = *f.mv;
        const std::size_t fu = mv.dst_slot;
        if (mv.dst == TtaPMove::Dst::ControlTrigger) {
          if (transfer_in >= 0) continue;  // squashed in a transfer shadow
          if constexpr (kObserve) obs->on_trigger(cycle, static_cast<int>(fu), mv.opcode);
          switch (mv.fire) {
            case TtaPMove::Fire::Jump:
              transfer_in = machine_.delay_slots;
              transfer_target = mv.target_pc;
              if constexpr (kProfile) {
                ++prof->taken[static_cast<std::size_t>(f.mv - pre.moves.data())];
              }
              break;
            case TtaPMove::Fire::Bnz:
              if (fu_operand[fu] != 0) {
                transfer_in = machine_.delay_slots;
                transfer_target = mv.target_pc;
                if constexpr (kProfile) {
                  ++prof->taken[static_cast<std::size_t>(f.mv - pre.moves.data())];
                }
              }
              break;
            case TtaPMove::Fire::Ret:
              result.cycles = cycle + 1;
              result.ret = fu_operand[fu];
              capture_state();
              return result;
            default: TTSC_UNREACHABLE("bad control trigger opcode");
          }
          continue;
        }
        if constexpr (kHarden) {
          // The trigger value is the address of every memory operation.
          if (ir::is_memory(mv.opcode) && !sim::mem_in_bounds(mv.opcode, f.value, mem_.size())) {
            set_trap(sim::TrapReason::MemoryOutOfRange, static_cast<int>(fu), f.value);
            return result;
          }
        }
        if constexpr (kObserve) obs->on_trigger(cycle, static_cast<int>(fu), mv.opcode);
        switch (mv.fire) {
          // Stores commit their side effect in the trigger cycle.
          case TtaPMove::Fire::Store:
            switch (mv.opcode) {
              case Opcode::Stw:
                mem_.store32(f.value, fu_operand[fu]);
                if constexpr (kObserve) obs->on_store(cycle, f.value, fu_operand[fu], 4);
                break;
              case Opcode::Sth:
                mem_.store16(f.value, static_cast<std::uint16_t>(fu_operand[fu]));
                if constexpr (kObserve)
                  obs->on_store(cycle, f.value, fu_operand[fu] & 0xffffu, 2);
                break;
              case Opcode::Stq:
                mem_.store8(f.value, static_cast<std::uint8_t>(fu_operand[fu]));
                if constexpr (kObserve)
                  obs->on_store(cycle, f.value, fu_operand[fu] & 0xffu, 1);
                break;
              default: TTSC_UNREACHABLE("bad store opcode");
            }
            break;
          case TtaPMove::Fire::Input:
          case TtaPMove::Fire::Binary: {
            // Binary ops: operand port is the first input, trigger the
            // second; loads/unary read only the triggered value.
            const std::uint32_t a =
                mv.fire == TtaPMove::Fire::Input ? f.value : fu_operand[fu];
            const std::uint32_t b = mv.fire == TtaPMove::Fire::Input ? 0 : f.value;
            const std::uint32_t v = compute(mv.opcode, a, b, mem_);
            std::size_t col = ring_idx + static_cast<std::size_t>(mv.latency);
            if (col >= ring) col -= ring;  // latency < ring: one wrap at most
            InFlight* const entries = &ring_entry[col * nfus];
            const std::uint32_t n = ring_count[col];
            // Same-cycle completion ties on one FU resolve to the larger
            // value, matching the reference priority queue's pop order.
            std::uint32_t e = 0;
            while (e < n && entries[e].fu != fu) ++e;
            if (e < n) {
              entries[e].value = std::max(entries[e].value, v);
            } else {
              entries[n] = InFlight{static_cast<std::uint32_t>(fu), v};
              ring_count[col] = n + 1;
            }
            break;
          }
          default: TTSC_UNREACHABLE("bad trigger fire class");
        }
      }
    }

    ++cycle;
    if (++ring_idx == ring) ring_idx = 0;
    if (transfer_in >= 0) {
      if (transfer_in == 0) {
        pc = transfer_target;
        transfer_in = -1;
      } else {
        --transfer_in;
        ++pc;
      }
    } else {
      ++pc;
    }
  }
  result.status = sim::ExecStatus::TimedOut;
  result.cycles = max_cycles;
  capture_state();
  return result;
}

ExecResult TtaSim::run_reference(std::uint64_t max_cycles) {
  sim::ExecObserver* const obs = options_.observer;
  sim::ProfileCounts* const prof = options_.profile;
  // Flat program-order move indices for the squash and taken-transfer
  // counters — the same numbering the predecoded path gets for free
  // (predecode emits exactly one record per source move, trap markers
  // included).
  std::vector<std::uint32_t> move_begin;
  if (prof != nullptr) {
    move_begin.reserve(program_.instrs.size() + 1);
    std::uint32_t flat = 0;
    move_begin.push_back(0);
    for (const TtaInstruction& in : program_.instrs) {
      flat += static_cast<std::uint32_t>(in.moves.size());
      move_begin.push_back(flat);
    }
  }
  std::vector<std::vector<std::uint32_t>> rfs;
  // Flat-slot bases mirroring sim/predecode.hpp's rf_base numbering, so
  // protection poison keys agree byte-for-byte with the fast path.
  std::vector<std::uint32_t> rf_base;
  std::uint32_t rf_slots = 0;
  for (const mach::RegisterFile& rf : machine_.rfs) {
    rfs.emplace_back(static_cast<std::size_t>(rf.size), 0u);
    rf_base.push_back(rf_slots);
    rf_slots += static_cast<std::uint32_t>(rf.size);
  }
  std::vector<FuRuntime> fus(machine_.fus.size());
  sim::ProtectState* const prot = options_.protect;
  std::priority_queue<RfWritePending, std::vector<RfWritePending>, std::greater<>> rf_pending;

  ExecResult result;
  result.bus_moves.assign(machine_.buses.size(), 0);
  // Guard registers: current values plus next-cycle updates.
  std::vector<bool> guard_regs(static_cast<std::size_t>(machine_.guard_regs), false);
  std::vector<std::pair<int, bool>> guard_pending;  // applied at next cycle
  std::uint64_t cycle = 0;
  std::size_t pc = 0;
  int transfer_in = -1;
  std::size_t transfer_target = 0;
  std::uint32_t last_arch = 0;

  auto capture_state = [&] {
    if (prof != nullptr) {
      // Writes still in flight at halt were issued but never committed —
      // same one-time fill as the fast loop's capture_state.
      auto pend = rf_pending;
      while (!pend.empty()) {
        ++prof->uncommitted_rf_writes[static_cast<std::size_t>(pend.top().rf)];
        pend.pop();
      }
      prof->final_pc = last_arch;
      prof->end_pc = static_cast<std::uint32_t>(pc);
      prof->end_transfer_in = transfer_in;
      prof->end_transfer_target =
          transfer_in >= 0 ? static_cast<std::int32_t>(transfer_target) : -1;
    }
    result.rf_state.clear();
    for (const auto& rf : rfs) result.rf_state.insert(result.rf_state.end(), rf.begin(), rf.end());
    result.guard_state.clear();
    for (const bool g : guard_regs) result.guard_state.push_back(g ? 1 : 0);
  };

  auto set_trap = [&](sim::TrapReason reason, int unit, std::uint32_t detail) {
    result.status = sim::ExecStatus::Trapped;
    result.trap = sim::TrapInfo{reason, cycle, unit, detail};
    result.cycles = cycle;
    capture_state();
  };

  // SEU state faults: same application point as the fast loop.
  const sim::StateFault* fault_next = nullptr;
  const sim::StateFault* fault_end = nullptr;
  if (options_.faults != nullptr) {
    fault_next = options_.faults->faults.data();
    fault_end = fault_next + options_.faults->faults.size();
  }
  auto apply_fault = [&](const sim::StateFault& f) {
    switch (f.kind) {
      case sim::FaultKind::RfBit: {
        if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= rfs.size()) return;
        auto& file = rfs[static_cast<std::size_t>(f.unit)];
        if (f.index < 0 || static_cast<std::size_t>(f.index) >= file.size()) return;
        const std::uint32_t mask = sim::fault_mask(f);
        if (prot != nullptr) {
          prot->on_rf_flip(
              rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index),
              mask);
        }
        file[static_cast<std::size_t>(f.index)] ^= mask;
        break;
      }
      case sim::FaultKind::FuResultBit: {
        if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= fus.size()) return;
        const std::uint32_t mask = sim::fault_mask(f);
        if (prot != nullptr) prot->on_fu_flip(static_cast<std::uint32_t>(f.unit), mask);
        fus[static_cast<std::size_t>(f.unit)].result ^= mask;
        break;
      }
      case sim::FaultKind::GuardBit:
        if (f.unit < 0 || f.unit >= machine_.guard_regs) return;
        if (prot == nullptr || prot->on_guard_flip()) {
          guard_regs[static_cast<std::size_t>(f.unit)] =
              !guard_regs[static_cast<std::size_t>(f.unit)];
        }
        break;
    }
  };

  // Block-entry lookup for on_block_enter (same semantics as the fast loop).
  std::vector<std::int32_t> entry_of;
  if (obs != nullptr) {
    entry_of.assign(program_.instrs.size(), -1);
    for (std::size_t b = 0; b < program_.block_entry.size(); ++b) {
      const std::size_t entry = program_.block_entry[b];
      if (entry < program_.instrs.size()) entry_of[entry] = static_cast<std::int32_t>(b);
    }
  }

  // Trigger port writes collected per cycle, fired after operand writes.
  struct TriggerFire {
    int fu;
    Opcode op;
    std::uint32_t value;
    std::uint32_t target_block;
    std::uint32_t flat;  // flat program-order move index (profiling only)
    bool is_control;
  };

  while (cycle < max_cycles) {
    // 0. State faults land between cycles (see the fast loop).
    while (fault_next != fault_end && fault_next->cycle <= cycle) {
      apply_fault(*fault_next);
      ++fault_next;
    }
    // 1. Results whose latency elapsed land in the result registers.
    for (std::size_t fi = 0; fi < fus.size(); ++fi) {
      FuRuntime& fu = fus[fi];
      while (!fu.in_flight.empty() && fu.in_flight.top().first <= cycle) {
        fu.result = fu.in_flight.top().second;
        fu.in_flight.pop();
        if (prot != nullptr) prot->clear_fu(static_cast<std::uint32_t>(fi));
      }
    }
    // 2. RF writes from earlier cycles become readable.
    while (!rf_pending.empty() && rf_pending.top().visible_at <= cycle) {
      const RfWritePending& w = rf_pending.top();
      rfs[static_cast<std::size_t>(w.rf)][static_cast<std::size_t>(w.index)] = w.value;
      if (prot != nullptr) {
        prot->clear_rf(rf_base[static_cast<std::size_t>(w.rf)] +
                       static_cast<std::uint32_t>(w.index));
      }
      if (obs != nullptr) obs->on_rf_write(cycle, w.rf, w.index, w.value);
      rf_pending.pop();
    }
    // 2b. Guard writes from the previous cycle latch in.
    for (const auto& [g, v] : guard_pending) {
      guard_regs[static_cast<std::size_t>(g)] = v;
      if (obs != nullptr) obs->on_guard_write(cycle, g, v ? 1u : 0u);
    }
    guard_pending.clear();

    if (pc >= program_.instrs.size() && transfer_in < 0) {
      // The PC ran off the end with no transfer pending: fail closed.
      set_trap(sim::TrapReason::PcOutOfRange, -1, static_cast<std::uint32_t>(pc));
      return result;
    }
    if (pc < program_.instrs.size()) {
      // Protected imem: same fetch check as the fast loop.
      if (prot != nullptr &&
          prot->check_imem_fetch(static_cast<std::uint32_t>(pc)) ==
              sim::ProtectState::ImemAction::Detected) {
        set_trap(sim::TrapReason::ProtectionDetected, -1, static_cast<std::uint32_t>(pc));
        return result;
      }
      if (obs != nullptr) {
        if (transfer_in < 0 && entry_of[pc] >= 0) {
          obs->on_block_enter(cycle, static_cast<std::uint32_t>(entry_of[pc]));
        }
        obs->on_exec(cycle, static_cast<std::uint32_t>(pc), transfer_in >= 0);
      }
      if (prof != nullptr && transfer_in < 0) last_arch = static_cast<std::uint32_t>(pc);
      const TtaInstruction& instr = program_.instrs[pc];
      result.moves += instr.moves.size();
      for (const Move& mv : instr.moves) {
        if (mv.bus >= 0 && static_cast<std::size_t>(mv.bus) < result.bus_moves.size()) {
          ++result.bus_moves[static_cast<std::size_t>(mv.bus)];
        }
      }

      // 3+4a. Sample sources and write non-trigger destinations move by
      // move, exactly like the fast loop (sources never read a state this
      // pass mutates, so per-move interleaving equals bulk sampling). Each
      // move is validated first — the execute-time mirror of the fail-closed
      // decode on the predecoded path (sim/harden.hpp): a corrupt guard
      // index traps unconditionally, any other illegal field traps unless a
      // valid guard squashed the move.
      std::vector<TriggerFire> fires;
      for (std::size_t mi = 0; mi < instr.moves.size(); ++mi) {
        const Move& mv = instr.moves[mi];
        const int bus =
            (mv.bus >= 0 && static_cast<std::size_t>(mv.bus) < result.bus_moves.size()) ? mv.bus
                                                                                        : -1;
        const sim::DecodeCheck chk =
            sim::check_tta_move(mv, machine_, program_.block_entry.size());
        if (!chk.ok() && chk.guard_trap) {
          set_trap(chk.reason(), bus, chk.detail);
          return result;
        }
        if (mv.guard >= 0) {
          const bool g = guard_regs[static_cast<std::size_t>(mv.guard)];
          if (g == mv.guard_negate) {  // squashed
            if (obs != nullptr) obs->on_guard_squash(cycle, mv.bus);
            if (prof != nullptr) {
              ++prof->squash[2 * static_cast<std::size_t>(move_begin[pc] + mi) +
                             (transfer_in >= 0 ? 1u : 0u)];
            }
            continue;
          }
        }
        if (!chk.ok()) {
          set_trap(chk.reason(), bus, chk.detail);
          return result;
        }
        std::uint32_t value = 0;
        switch (mv.src.kind) {
          case MoveSrc::Kind::Imm: value = static_cast<std::uint32_t>(mv.src.imm); break;
          case MoveSrc::Kind::FuResult:
            if (prot != nullptr &&
                prot->check_fu_read(static_cast<std::uint32_t>(mv.src.unit),
                                    fus[static_cast<std::size_t>(mv.src.unit)].result)) {
              set_trap(sim::TrapReason::ProtectionDetected, -1,
                       static_cast<std::uint32_t>(mv.src.unit));
              return result;
            }
            value = fus[static_cast<std::size_t>(mv.src.unit)].result;
            break;
          case MoveSrc::Kind::RfRead: {
            std::uint32_t& stored = rfs[static_cast<std::size_t>(mv.src.unit)]
                                       [static_cast<std::size_t>(mv.src.reg_index)];
            if (prot != nullptr) {
              const std::uint32_t slot = rf_base[static_cast<std::size_t>(mv.src.unit)] +
                                         static_cast<std::uint32_t>(mv.src.reg_index);
              if (prot->check_rf_read(slot, &stored)) {
                set_trap(sim::TrapReason::ProtectionDetected, -1, slot);
                return result;
              }
            }
            value = stored;
            break;
          }
        }
        if (obs != nullptr) {
          if (mv.src.kind == MoveSrc::Kind::RfRead) {
            obs->on_rf_read(cycle, mv.src.unit, mv.src.reg_index);
          }
          obs->on_move(cycle, mv.bus);
        }
        switch (mv.dst.kind) {
          case MoveDst::Kind::FuOperand:
            fus[static_cast<std::size_t>(mv.dst.unit)].operand = value;
            break;
          case MoveDst::Kind::RfWrite:
            rf_pending.push(RfWritePending{cycle + 1, mv.dst.unit, mv.dst.reg_index, value});
            break;
          case MoveDst::Kind::GuardWrite:
            guard_pending.emplace_back(mv.dst.unit, value != 0);
            break;
          case MoveDst::Kind::FuTrigger:
            fires.push_back(TriggerFire{
                mv.dst.unit, mv.dst.opcode, value, mv.target,
                prof != nullptr ? move_begin[pc] + static_cast<std::uint32_t>(mi) : 0u,
                mv.is_control});
            break;
        }
      }
      // 4b. Triggers fire using this cycle's operand port contents.
      for (const TriggerFire& f : fires) {
        FuRuntime& fu = fus[static_cast<std::size_t>(f.fu)];
        if (f.is_control) {
          if (transfer_in >= 0) continue;  // squashed in a transfer shadow
          if (obs != nullptr) obs->on_trigger(cycle, f.fu, f.op);
          switch (f.op) {
            case Opcode::Jump:
              transfer_in = machine_.delay_slots;
              transfer_target = program_.block_entry[f.target_block];
              if (prof != nullptr) ++prof->taken[f.flat];
              break;
            case Opcode::Bnz:
              if (fu.operand != 0) {
                transfer_in = machine_.delay_slots;
                transfer_target = program_.block_entry[f.target_block];
                if (prof != nullptr) ++prof->taken[f.flat];
              }
              break;
            case Opcode::Ret:
              result.cycles = cycle + 1;
              result.ret = fu.operand;
              capture_state();
              return result;
            case Opcode::Call:
              TTSC_UNREACHABLE("calls must be inlined before TTA scheduling");
            default:
              TTSC_UNREACHABLE("bad control trigger opcode");
          }
          continue;
        }
        // The trigger value is the address of every memory operation; fail
        // closed on an out-of-range access (always: this is not a hot path).
        if (ir::is_memory(f.op) && !sim::mem_in_bounds(f.op, f.value, mem_.size())) {
          set_trap(sim::TrapReason::MemoryOutOfRange, f.fu, f.value);
          return result;
        }
        if (obs != nullptr) obs->on_trigger(cycle, f.fu, f.op);
        const int lat = machine_.fus[static_cast<std::size_t>(f.fu)].latency(f.op);
        switch (f.op) {
          // Stores commit their side effect in the trigger cycle.
          case Opcode::Stw:
            mem_.store32(f.value, fu.operand);
            if (obs != nullptr) obs->on_store(cycle, f.value, fu.operand, 4);
            break;
          case Opcode::Sth:
            mem_.store16(f.value, static_cast<std::uint16_t>(fu.operand));
            if (obs != nullptr) obs->on_store(cycle, f.value, fu.operand & 0xffffu, 2);
            break;
          case Opcode::Stq:
            mem_.store8(f.value, static_cast<std::uint8_t>(fu.operand));
            if (obs != nullptr) obs->on_store(cycle, f.value, fu.operand & 0xffu, 1);
            break;
          default: {
            // Binary ops: operand port is the first input, trigger the
            // second — except loads/unary where the trigger is the input,
            // and stores (above) where the trigger is the address.
            std::uint32_t a;
            std::uint32_t b;
            if (ir::is_load(f.op) || f.op == Opcode::Sxhw || f.op == Opcode::Sxqw) {
              a = f.value;
              b = 0;
            } else {
              a = fu.operand;
              b = f.value;
            }
            fu.in_flight.push({cycle + static_cast<std::uint64_t>(lat), compute(f.op, a, b, mem_)});
            break;
          }
        }
      }
    }

    ++cycle;
    if (transfer_in >= 0) {
      if (transfer_in == 0) {
        pc = transfer_target;
        transfer_in = -1;
      } else {
        --transfer_in;
        ++pc;
      }
    } else {
      ++pc;
    }
  }
  result.status = sim::ExecStatus::TimedOut;
  result.cycles = max_cycles;
  capture_state();
  return result;
}

}  // namespace ttsc::tta
