#include "tta/verify.hpp"

#include <vector>

#include "support/bits.hpp"
#include "support/strings.hpp"

namespace ttsc::tta {

using mach::Machine;
using mach::PortRef;

void verify_program(const TtaProgram& program, const Machine& machine) {
  const std::size_t num_buses = machine.buses.size();
  for (std::size_t pc = 0; pc < program.instrs.size(); ++pc) {
    const TtaInstruction& instr = program.instrs[pc];
    std::vector<int> bus_claims(num_buses, 0);
    std::vector<int> rf_reads(machine.rfs.size(), 0);
    std::vector<int> rf_writes(machine.rfs.size(), 0);
    std::vector<int> triggers(machine.fus.size(), 0);
    std::vector<int> operand_writes(machine.fus.size(), 0);

    auto fail = [&](const std::string& what) {
      throw Error(format("TTA program invalid at instruction %zu: %s", pc, what.c_str()));
    };

    for (const Move& mv : instr.moves) {
      if (mv.bus < 0 || static_cast<std::size_t>(mv.bus) >= num_buses) fail("bus out of range");
      const mach::Bus& bus = machine.buses[static_cast<std::size_t>(mv.bus)];
      ++bus_claims[static_cast<std::size_t>(mv.bus)];

      // Source connectivity.
      switch (mv.src.kind) {
        case MoveSrc::Kind::FuResult:
          if (mv.src.unit < 0 || static_cast<std::size_t>(mv.src.unit) >= machine.fus.size()) {
            fail("FU result source out of range");
          }
          if (!bus.has_source({PortRef::Kind::FuResult, mv.src.unit})) {
            fail("bus cannot read FU result " + machine.fus[static_cast<std::size_t>(mv.src.unit)].name);
          }
          break;
        case MoveSrc::Kind::RfRead: {
          if (!bus.has_source({PortRef::Kind::RfRead, mv.src.unit})) fail("bus cannot read RF");
          const mach::RegisterFile& rf = machine.rfs[static_cast<std::size_t>(mv.src.unit)];
          if (mv.src.reg_index < 0 || mv.src.reg_index >= rf.size) fail("RF read index range");
          ++rf_reads[static_cast<std::size_t>(mv.src.unit)];
          break;
        }
        case MoveSrc::Kind::Imm:
          if (!mv.is_control && !mv.long_imm && !fits_signed(mv.src.imm, bus.simm_bits)) {
            fail(format("immediate %d does not fit %d-bit field", mv.src.imm, bus.simm_bits));
          }
          break;
      }

      // Destination connectivity.
      switch (mv.dst.kind) {
        case MoveDst::Kind::FuOperand:
          if (!bus.has_dest({PortRef::Kind::FuOperand, mv.dst.unit})) fail("operand port unreachable");
          ++operand_writes[static_cast<std::size_t>(mv.dst.unit)];
          break;
        case MoveDst::Kind::FuTrigger: {
          if (!bus.has_dest({PortRef::Kind::FuTrigger, mv.dst.unit})) fail("trigger port unreachable");
          const mach::FunctionUnit& fu = machine.fus[static_cast<std::size_t>(mv.dst.unit)];
          if (!fu.supports(mv.dst.opcode)) fail("FU does not implement the triggered operation");
          ++triggers[static_cast<std::size_t>(mv.dst.unit)];
          break;
        }
        case MoveDst::Kind::RfWrite: {
          if (!bus.has_dest({PortRef::Kind::RfWrite, mv.dst.unit})) fail("RF write unreachable");
          const mach::RegisterFile& rf = machine.rfs[static_cast<std::size_t>(mv.dst.unit)];
          if (mv.dst.reg_index < 0 || mv.dst.reg_index >= rf.size) fail("RF write index range");
          ++rf_writes[static_cast<std::size_t>(mv.dst.unit)];
          break;
        }
        case MoveDst::Kind::GuardWrite:
          if (mv.dst.unit < 0 || mv.dst.unit >= machine.guard_regs) {
            fail("guard register out of range");
          }
          break;
      }

      if (mv.guard >= 0 && mv.guard >= machine.guard_regs) fail("guarded move without guard regs");

      if (mv.is_control) {
        if (mv.dst.kind != MoveDst::Kind::FuTrigger) fail("control move must trigger the CU");
        if (ir::is_branch(mv.dst.opcode) &&
            static_cast<std::size_t>(mv.target) >= program.block_entry.size()) {
          fail("branch target out of range");
        }
      }
    }

    // Long immediates claim one extra bus slot each.
    int long_imm_count = 0;
    for (const Move& mv : instr.moves) {
      if (mv.long_imm) ++long_imm_count;
    }
    int total_claims = long_imm_count;
    for (std::size_t b = 0; b < num_buses; ++b) {
      if (bus_claims[b] > 1) fail(format("bus %zu carries %d moves", b, bus_claims[b]));
      total_claims += bus_claims[b];
    }
    if (total_claims > static_cast<int>(num_buses)) {
      fail("more transports (incl. long-immediate slots) than buses");
    }

    for (std::size_t r = 0; r < machine.rfs.size(); ++r) {
      if (rf_reads[r] > machine.rfs[r].read_ports) fail("RF read ports oversubscribed");
      if (rf_writes[r] > machine.rfs[r].write_ports) fail("RF write ports oversubscribed");
    }
    for (std::size_t f = 0; f < machine.fus.size(); ++f) {
      if (triggers[f] > 1) fail("multiple triggers on one FU");
      if (operand_writes[f] > 1) fail("multiple operand writes on one FU port");
    }
  }
}

}  // namespace ttsc::tta
