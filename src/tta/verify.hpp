// Static legality checks for scheduled TTA programs.
#pragma once

#include "tta/tta.hpp"

namespace ttsc::tta {

/// Verifies that every move in `program` is legal on `machine`:
///  * each move's bus exists and connects its source to its destination,
///  * at most one move per bus per instruction (long immediates occupy a
///    second bus slot),
///  * register file read/write port capacities are respected per cycle,
///  * at most one trigger and one operand write per FU per cycle,
///  * short immediates fit the bus immediate field unless flagged long,
///  * control moves carry resolvable block targets.
/// Throws ttsc::Error on the first violation.
void verify_program(const TtaProgram& program, const mach::Machine& machine);

}  // namespace ttsc::tta
