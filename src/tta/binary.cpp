#include "tta/binary.hpp"

#include <map>

#include "support/bits.hpp"
#include "support/strings.hpp"

namespace ttsc::tta {

using mach::Machine;
using mach::PortRef;

namespace {

/// Per-bus code tables derived from the connectivity graph (the same
/// enumeration instruction_bits() counts).
struct BusCodec {
  std::vector<MoveSrc> src_codes;
  std::vector<MoveDst> dst_codes;  // index 0 is NOP (default constructed)
  int src_payload_bits = 0;
  int dst_bits = 0;
  int slot_bits() const { return 2 + src_payload_bits + dst_bits; }
};

BusCodec make_codec(const Machine& m, int bus_index) {
  const mach::Bus& bus = m.buses[static_cast<std::size_t>(bus_index)];
  BusCodec c;
  for (const PortRef& s : bus.sources) {
    if (s.kind == PortRef::Kind::FuResult) {
      c.src_codes.push_back(MoveSrc::fu_result(s.unit));
    } else {
      const int size = m.rfs[static_cast<std::size_t>(s.unit)].size;
      for (int i = 0; i < size; ++i) c.src_codes.push_back(MoveSrc::rf_read(s.unit, i));
    }
  }
  c.dst_codes.emplace_back();  // NOP
  for (int g = 0; g < m.guard_regs; ++g) c.dst_codes.push_back(MoveDst::guard_write(g));
  for (const PortRef& d : bus.dests) {
    switch (d.kind) {
      case PortRef::Kind::FuOperand:
        c.dst_codes.push_back(MoveDst::fu_operand(d.unit));
        break;
      case PortRef::Kind::FuTrigger:
        for (const mach::Operation& op : m.fus[static_cast<std::size_t>(d.unit)].ops) {
          c.dst_codes.push_back(MoveDst::fu_trigger(d.unit, op.opcode));
        }
        break;
      case PortRef::Kind::RfWrite: {
        const int size = m.rfs[static_cast<std::size_t>(d.unit)].size;
        for (int i = 0; i < size; ++i) c.dst_codes.push_back(MoveDst::rf_write(d.unit, i));
        break;
      }
      default:
        TTSC_UNREACHABLE("source endpoint in dests");
    }
  }
  c.src_payload_bits = std::max(bits_for_codes(c.src_codes.size()), bus.simm_bits);
  c.dst_bits = bits_for_codes(c.dst_codes.size());
  return c;
}

std::vector<BusCodec> make_codecs(const Machine& m) {
  std::vector<BusCodec> out;
  for (std::size_t b = 0; b < m.buses.size(); ++b) {
    out.push_back(make_codec(m, static_cast<int>(b)));
  }
  return out;
}

class BitWriter {
 public:
  void put(std::uint32_t value, int bits) {
    for (int i = 0; i < bits; ++i) {
      if (pos_ == 0) bytes_.push_back(0);
      if ((value >> i) & 1) bytes_.back() |= static_cast<std::uint8_t>(1u << pos_);
      pos_ = (pos_ + 1) & 7;
    }
  }
  void align_instruction(std::size_t instr_index, int bits_per_instruction) {
    // Pad to the exact bit offset so random access per instruction works.
    const std::size_t want = instr_index * static_cast<std::size_t>(bits_per_instruction);
    TTSC_ASSERT(bit_count() <= want, "encoder overflowed the instruction width");
    while (bit_count() < want) put(0, 1);
  }
  std::size_t bit_count() const { return bytes_.size() * 8 - (pos_ == 0 ? 0 : (8 - pos_)); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  int pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}
  void seek(std::size_t bit) { bit_ = bit; }
  std::uint32_t get(int bits) {
    std::uint32_t value = 0;
    for (int i = 0; i < bits; ++i) {
      const std::size_t byte = bit_ >> 3;
      TTSC_ASSERT(byte < bytes_.size(), "bit reader out of range");
      if ((bytes_[byte] >> (bit_ & 7)) & 1) value |= 1u << i;
      ++bit_;
    }
    return value;
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t bit_ = 0;
};

bool same_src(const MoveSrc& a, const MoveSrc& b) {
  return a.kind == b.kind && a.unit == b.unit && a.reg_index == b.reg_index;
}
bool same_dst(const MoveDst& a, const MoveDst& b) {
  return a.kind == b.kind && a.unit == b.unit && a.reg_index == b.reg_index &&
         (a.kind != MoveDst::Kind::FuTrigger || a.opcode == b.opcode);
}

int guard_field_bits(const Machine& m) {
  return m.guard_regs > 0 ? bits_for_codes(1 + 2 * static_cast<std::uint64_t>(m.guard_regs)) : 0;
}

enum SrcType : std::uint32_t { kSocket = 0, kShortImm = 1, kPoolImm = 2 };

}  // namespace

EncodedProgram encode_program(const TtaProgram& program, const Machine& machine) {
  const std::vector<BusCodec> codecs = make_codecs(machine);
  EncodedProgram out;
  out.instruction_count = static_cast<std::uint32_t>(program.instrs.size());
  out.bits_per_instruction = instruction_bits(machine);
  out.block_entry = program.block_entry;

  std::map<std::uint32_t, std::uint32_t> pool_index;
  auto pool_ref = [&](std::uint32_t value) {
    auto it = pool_index.find(value);
    if (it != pool_index.end()) return it->second;
    const std::uint32_t idx = static_cast<std::uint32_t>(out.pool.size());
    out.pool.push_back(value);
    pool_index[value] = idx;
    return idx;
  };

  BitWriter writer;
  for (std::size_t pc = 0; pc < program.instrs.size(); ++pc) {
    writer.align_instruction(pc, out.bits_per_instruction);
    const TtaInstruction& instr = program.instrs[pc];
    for (std::size_t b = 0; b < machine.buses.size(); ++b) {
      const BusCodec& codec = codecs[b];
      const Move* move = nullptr;
      for (const Move& mv : instr.moves) {
        if (mv.bus == static_cast<int>(b)) move = &mv;
      }
      if (move == nullptr) {
        writer.put(0, codec.dst_bits);  // NOP
        writer.put(0, 2 + codec.src_payload_bits);
        writer.put(0, guard_field_bits(machine));
        continue;
      }
      // Destination code.
      std::uint32_t dst_code = 0;
      bool found = false;
      for (std::size_t i = 1; i < codec.dst_codes.size(); ++i) {
        if (same_dst(codec.dst_codes[i], move->dst)) {
          dst_code = static_cast<std::uint32_t>(i);
          found = true;
          break;
        }
      }
      if (!found) {
        throw Error(format("encode: destination unreachable from bus %zu at pc %zu", b, pc));
      }
      writer.put(dst_code, codec.dst_bits);
      // Source field.
      switch (move->src.kind) {
        case MoveSrc::Kind::Imm: {
          const std::int32_t value =
              move->is_control ? static_cast<std::int32_t>(move->target) : move->src.imm;
          if (fits_signed(value, codec.src_payload_bits)) {
            writer.put(kShortImm, 2);
            writer.put(static_cast<std::uint32_t>(value) &
                           ((codec.src_payload_bits >= 32 ? ~0u
                                                          : ((1u << codec.src_payload_bits) - 1))),
                       codec.src_payload_bits);
          } else {
            const std::uint32_t idx = pool_ref(static_cast<std::uint32_t>(value));
            if (!fits_signed(static_cast<std::int64_t>(idx), codec.src_payload_bits)) {
              throw Error("encode: literal pool overflow");
            }
            writer.put(kPoolImm, 2);
            writer.put(idx, codec.src_payload_bits);
          }
          break;
        }
        default: {
          std::uint32_t src_code = 0;
          bool src_found = false;
          for (std::size_t i = 0; i < codec.src_codes.size(); ++i) {
            if (same_src(codec.src_codes[i], move->src)) {
              src_code = static_cast<std::uint32_t>(i);
              src_found = true;
              break;
            }
          }
          if (!src_found) {
            throw Error(format("encode: source unreachable from bus %zu at pc %zu", b, pc));
          }
          writer.put(kSocket, 2);
          writer.put(src_code, codec.src_payload_bits);
          break;
        }
      }
      // Guard field: 0 = unconditional, then (true,false) per guard reg.
      if (machine.guard_regs > 0) {
        std::uint32_t code = 0;
        if (move->guard >= 0) {
          code = 1 + 2 * static_cast<std::uint32_t>(move->guard) + (move->guard_negate ? 1 : 0);
        }
        writer.put(code, guard_field_bits(machine));
      }
    }
  }
  writer.align_instruction(program.instrs.size(), out.bits_per_instruction);
  out.bits = writer.take();
  return out;
}

TtaProgram decode_program(const EncodedProgram& encoded, const Machine& machine) {
  const std::vector<BusCodec> codecs = make_codecs(machine);
  TtaProgram out;
  out.block_entry = encoded.block_entry;
  BitReader reader(encoded.bits);

  for (std::uint32_t pc = 0; pc < encoded.instruction_count; ++pc) {
    reader.seek(static_cast<std::size_t>(pc) *
                static_cast<std::size_t>(encoded.bits_per_instruction));
    TtaInstruction instr;
    for (std::size_t b = 0; b < machine.buses.size(); ++b) {
      const BusCodec& codec = codecs[b];
      const std::uint32_t dst_code = reader.get(codec.dst_bits);
      const std::uint32_t src_type = reader.get(2);
      const std::uint32_t payload = reader.get(codec.src_payload_bits);
      std::uint32_t guard_code = 0;
      if (machine.guard_regs > 0) guard_code = reader.get(guard_field_bits(machine));
      if (dst_code == 0) continue;  // NOP slot
      TTSC_ASSERT(dst_code < codec.dst_codes.size(), "decode: bad destination code");
      Move mv;
      mv.bus = static_cast<int>(b);
      mv.dst = codec.dst_codes[dst_code];
      mv.is_control = mv.dst.kind == MoveDst::Kind::FuTrigger &&
                      (ir::is_branch(mv.dst.opcode) || mv.dst.opcode == ir::Opcode::Ret ||
                       mv.dst.opcode == ir::Opcode::Call);
      std::int32_t imm_value = 0;
      switch (src_type) {
        case kSocket:
          TTSC_ASSERT(payload < codec.src_codes.size(), "decode: bad source code");
          mv.src = codec.src_codes[payload];
          break;
        case kShortImm:
          imm_value = sign_extend(payload, codec.src_payload_bits);
          mv.src = MoveSrc::immediate(imm_value);
          break;
        case kPoolImm:
          TTSC_ASSERT(payload < encoded.pool.size(), "decode: bad pool index");
          imm_value = static_cast<std::int32_t>(encoded.pool[payload]);
          mv.src = MoveSrc::immediate(imm_value);
          mv.long_imm = !mv.is_control;
          break;
        default:
          throw Error("decode: reserved source type");
      }
      if (mv.is_control) {
        mv.target = static_cast<std::uint32_t>(imm_value);
        mv.src = MoveSrc::immediate(0);
      }
      if (guard_code > 0) {
        mv.guard = static_cast<int>((guard_code - 1) / 2);
        mv.guard_negate = ((guard_code - 1) % 2) != 0;
      }
      instr.moves.push_back(mv);
    }
    out.instrs.push_back(std::move(instr));
  }
  return out;
}

std::string disassemble(const TtaProgram& program, const Machine& machine) {
  std::string out;
  auto src_str = [&](const Move& mv) -> std::string {
    if (mv.is_control) return format("-> @%u", mv.target);
    switch (mv.src.kind) {
      case MoveSrc::Kind::Imm: return format("#%d", mv.src.imm);
      case MoveSrc::Kind::FuResult:
        return machine.fus[static_cast<std::size_t>(mv.src.unit)].name + ".r";
      case MoveSrc::Kind::RfRead:
        return format("%s.%d", machine.rfs[static_cast<std::size_t>(mv.src.unit)].name.c_str(),
                      mv.src.reg_index);
    }
    return "?";
  };
  auto dst_str = [&](const Move& mv) -> std::string {
    switch (mv.dst.kind) {
      case MoveDst::Kind::FuOperand:
        return machine.fus[static_cast<std::size_t>(mv.dst.unit)].name + ".o";
      case MoveDst::Kind::FuTrigger:
        return format("%s.t:%s", machine.fus[static_cast<std::size_t>(mv.dst.unit)].name.c_str(),
                      std::string(ir::opcode_name(mv.dst.opcode)).c_str());
      case MoveDst::Kind::RfWrite:
        return format("%s.%d", machine.rfs[static_cast<std::size_t>(mv.dst.unit)].name.c_str(),
                      mv.dst.reg_index);
      case MoveDst::Kind::GuardWrite:
        return format("guard.%d", mv.dst.unit);
    }
    return "?";
  };

  // Reverse block-entry map for labels.
  std::map<std::uint32_t, std::uint32_t> labels;
  for (std::size_t blk = 0; blk < program.block_entry.size(); ++blk) {
    labels.emplace(program.block_entry[blk], static_cast<std::uint32_t>(blk));
  }
  for (std::size_t pc = 0; pc < program.instrs.size(); ++pc) {
    auto lab = labels.find(static_cast<std::uint32_t>(pc));
    if (lab != labels.end()) out += format("B%u:\n", lab->second);
    out += format("%5zu:", pc);
    if (program.instrs[pc].moves.empty()) {
      out += "  (nop)";
    }
    for (const Move& mv : program.instrs[pc].moves) {
      std::string guard;
      if (mv.guard >= 0) guard = format(" ?%sg%d", mv.guard_negate ? "!" : "", mv.guard);
      out += format("  [%d]%s %s -> %s%s;", mv.bus, guard.c_str(), src_str(mv).c_str(),
                    dst_str(mv).c_str(), mv.long_imm ? " (limm)" : "");
    }
    out += "\n";
  }
  return out;
}

}  // namespace ttsc::tta
