// CHStone "aes" equivalent: AES-128 ECB encryption of 8 blocks, including
// the key expansion, with S-box / permutation / round constants as constant
// global tables (computed host-side from the GF(2^8) definition, not typed
// in). Byte-granular loads/stores and GF arithmetic via shifts and masks.
#include "support/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace ttsc::workloads {

namespace {

constexpr int kBlocks = 8;

// GF(2^8) helpers (host side) to synthesize the S-box.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

std::vector<std::uint8_t> make_sbox() {
  // Multiplicative inverse table by brute force, then the affine transform.
  std::uint8_t inv[256] = {0};
  for (int a = 1; a < 256; ++a) {
    for (int x = 1; x < 256; ++x) {
      if (gf_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(x)) == 1) {
        inv[a] = static_cast<std::uint8_t>(x);
        break;
      }
    }
  }
  std::vector<std::uint8_t> sbox(256);
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t x = inv[i];
    std::uint8_t y = 0;
    for (int bit = 0; bit < 8; ++bit) {
      const int v = ((x >> bit) & 1) ^ ((x >> ((bit + 4) & 7)) & 1) ^ ((x >> ((bit + 5) & 7)) & 1) ^
                    ((x >> ((bit + 6) & 7)) & 1) ^ ((x >> ((bit + 7) & 7)) & 1) ^
                    ((0x63 >> bit) & 1);
      y = static_cast<std::uint8_t>(y | (v << bit));
    }
    sbox[static_cast<std::size_t>(i)] = y;
  }
  return sbox;
}

/// Combined SubBytes+ShiftRows permutation: out[r + 4c] = in[r + 4((c+r)%4)].
std::vector<std::uint8_t> make_shift_perm() {
  std::vector<std::uint8_t> perm(16);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      perm[static_cast<std::size_t>(r + 4 * c)] = static_cast<std::uint8_t>(r + 4 * ((c + r) % 4));
    }
  }
  return perm;
}

std::vector<std::uint8_t> make_rcon() {
  std::vector<std::uint8_t> rcon(10);
  std::uint8_t v = 1;
  for (int i = 0; i < 10; ++i) {
    rcon[static_cast<std::size_t>(i)] = v;
    v = gf_mul(v, 2);
  }
  return rcon;
}

std::vector<std::uint8_t> make_input(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> data(n);
  SplitMix64 rng(seed);
  for (auto& x : data) x = static_cast<std::uint8_t>(rng.next() & 0xff);
  return data;
}

}  // namespace

Workload make_aes() {
  Workload w;
  w.name = "aes";
  w.output_globals = {"cipher"};
  w.build = [](ir::Module& m) {
    m.add_global(bytes_global("sbox", make_sbox()));
    m.add_global(bytes_global("shift_perm", make_shift_perm()));
    m.add_global(bytes_global("rcon", make_rcon()));
    m.add_global(bytes_global("key", make_input(0x4145534b, 16)));
    m.add_global(bytes_global("plain", make_input(0x41455350, kBlocks * 16)));
    m.add_global(buffer_global("rk", 176));      // 11 round keys, byte layout
    m.add_global(buffer_global("state", 16));
    m.add_global(buffer_global("tmp", 16));
    m.add_global(buffer_global("cipher", kBlocks * 16));

    ir::Function& f = m.add_function("main", 0);
    IRBuilder b(f);
    b.set_insert_point(b.create_block("entry"));

    auto sbox_at = [&](Vreg x) { return b.ldqu(b.add(b.ga("sbox"), x)); };
    auto xtime = [&](Vreg x) {
      Vreg doubled = b.shl(x, 1);
      Vreg hi = b.band(b.shru(x, 7), 1);
      Vreg poly = b.band(b.neg(hi), 0x1b);
      return b.band(b.bxor(doubled, poly), 0xff);
    };

    // ---- key expansion ------------------------------------------------------
    for_range(b, 0, 16, [&](Vreg i) {
      b.stq(b.add(b.ga("rk"), i), b.ldqu(b.add(b.ga("key"), i)));
    });
    // Expand 4 bytes at a time: words 4..43.
    Vreg rcon_idx = b.movi(0);
    for_range(b, 4, 44, [&](Vreg word) {
      Vreg prev = b.shl(b.sub(word, 1), 2);   // byte offset of word-1
      Vreg back4 = b.shl(b.sub(word, 4), 2);  // byte offset of word-4
      Vreg t0 = b.ldqu(b.add(b.ga("rk"), prev));
      Vreg t1 = b.ldqu(b.add(b.ga("rk"), b.add(prev, 1)));
      Vreg t2 = b.ldqu(b.add(b.ga("rk"), b.add(prev, 2)));
      Vreg t3 = b.ldqu(b.add(b.ga("rk"), b.add(prev, 3)));
      // word % 4 == 0: RotWord + SubWord + Rcon.
      Vreg is_head = b.eq(b.band(word, 3), 0);
      if_then(b, is_head, [&] {
        Vreg s0 = sbox_at(t1);
        Vreg s1 = sbox_at(t2);
        Vreg s2 = sbox_at(t3);
        Vreg s3 = sbox_at(t0);
        Vreg rc = b.ldqu(b.add(b.ga("rcon"), rcon_idx));
        b.copy_into(t0, b.bxor(s0, rc));
        b.copy_into(t1, s1);
        b.copy_into(t2, s2);
        b.copy_into(t3, s3);
        b.emit_into(rcon_idx, ir::Opcode::Add, {rcon_idx, 1});
      });
      Vreg out = b.shl(word, 2);
      b.stq(b.add(b.ga("rk"), out),
            b.bxor(t0, b.ldqu(b.add(b.ga("rk"), back4))));
      b.stq(b.add(b.ga("rk"), b.add(out, 1)),
            b.bxor(t1, b.ldqu(b.add(b.ga("rk"), b.add(back4, 1)))));
      b.stq(b.add(b.ga("rk"), b.add(out, 2)),
            b.bxor(t2, b.ldqu(b.add(b.ga("rk"), b.add(back4, 2)))));
      b.stq(b.add(b.ga("rk"), b.add(out, 3)),
            b.bxor(t3, b.ldqu(b.add(b.ga("rk"), b.add(back4, 3)))));
    });

    auto add_round_key = [&](Vreg round) {
      Vreg rk_base = b.add(b.ga("rk"), b.shl(round, 4));
      for_range(b, 0, 16, [&](Vreg i) {
        Vreg sv = b.ldqu(b.add(b.ga("state"), i));
        Vreg kv = b.ldqu(b.add(rk_base, i));
        b.stq(b.add(b.ga("state"), i), b.bxor(sv, kv));
      });
    };

    auto sub_shift = [&] {
      // tmp[i] = sbox[state[perm[i]]], then copy back.
      for_range(b, 0, 16, [&](Vreg i) {
        Vreg p = b.ldqu(b.add(b.ga("shift_perm"), i));
        Vreg sv = b.ldqu(b.add(b.ga("state"), p));
        b.stq(b.add(b.ga("tmp"), i), sbox_at(sv));
      });
      for_range(b, 0, 16, [&](Vreg i) {
        b.stq(b.add(b.ga("state"), i), b.ldqu(b.add(b.ga("tmp"), i)));
      });
    };

    auto mix_columns = [&] {
      for_range(b, 0, 4, [&](Vreg col) {
        Vreg base = b.add(b.ga("state"), b.shl(col, 2));
        Vreg a0 = b.ldqu(base);
        Vreg a1 = b.ldqu(b.add(base, 1));
        Vreg a2 = b.ldqu(b.add(base, 2));
        Vreg a3 = b.ldqu(b.add(base, 3));
        Vreg x0 = xtime(a0);
        Vreg x1 = xtime(a1);
        Vreg x2 = xtime(a2);
        Vreg x3 = xtime(a3);
        // r0 = 2a0 ^ 3a1 ^ a2 ^ a3, and rotations thereof.
        Vreg r0 = b.bxor(b.bxor(x0, b.bxor(x1, a1)), b.bxor(a2, a3));
        Vreg r1 = b.bxor(b.bxor(x1, b.bxor(x2, a2)), b.bxor(a0, a3));
        Vreg r2 = b.bxor(b.bxor(x2, b.bxor(x3, a3)), b.bxor(a0, a1));
        Vreg r3 = b.bxor(b.bxor(x3, b.bxor(x0, a0)), b.bxor(a1, a2));
        b.stq(base, r0);
        b.stq(b.add(base, 1), r1);
        b.stq(b.add(base, 2), r2);
        b.stq(b.add(base, 3), r3);
      });
    };

    // ---- encrypt blocks --------------------------------------------------------
    Vreg digest = b.movi(0);
    for_range(b, 0, kBlocks, [&](Vreg blk) {
      Vreg src = b.add(b.ga("plain"), b.shl(blk, 4));
      for_range(b, 0, 16, [&](Vreg i) {
        b.stq(b.add(b.ga("state"), i), b.ldqu(b.add(src, i)));
      });
      add_round_key(b.movi(0));
      for_range(b, 1, 10, [&](Vreg round) {
        sub_shift();
        mix_columns();
        add_round_key(round);
      });
      sub_shift();
      add_round_key(b.movi(10));
      Vreg dst = b.add(b.ga("cipher"), b.shl(blk, 4));
      for_range(b, 0, 16, [&](Vreg i) {
        Vreg c = b.ldqu(b.add(b.ga("state"), i));
        b.stq(b.add(dst, i), c);
        b.emit_into(digest, ir::Opcode::Add, {b.bxor(digest, c), 1});
      });
    });

    b.ret(digest);
  };
  return w;
}

}  // namespace ttsc::workloads
