// CHStone "motion" equivalent: MPEG-style motion vector decoding — a
// bit-serial bitstream reader, Exp-Golomb VLC decode of signed differentials
// and predictor reconstruction with the MPEG wrap rule. Bit twiddling and
// data-dependent short loops.
#include "support/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace ttsc::workloads {

namespace {

constexpr int kVectors = 256;

// ---- host-side Exp-Golomb encoder to synthesize the bitstream ---------------

class BitWriter {
 public:
  void put_bit(int bit) {
    if (pos_ == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - pos_));
    pos_ = (pos_ + 1) & 7;
    if (pos_ == 0 && !bytes_.empty()) {
      // next put_bit appends a fresh byte
    }
  }
  void put_ue(std::uint32_t value) {
    const std::uint32_t v = value + 1;
    int bits = 0;
    while ((v >> bits) != 0) ++bits;
    for (int i = 0; i < bits - 1; ++i) put_bit(0);
    for (int i = bits - 1; i >= 0; --i) put_bit((v >> i) & 1);
  }
  void put_se(std::int32_t value) {
    const std::uint32_t k =
        value > 0 ? static_cast<std::uint32_t>(2 * value - 1)
                  : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(value));
    put_ue(k);
  }
  std::vector<std::uint8_t> finish() {
    // Pad with a stop pattern of ones so a trailing read never underflows.
    for (int i = 0; i < 32; ++i) put_bit(1);
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  int pos_ = 0;
};

std::vector<std::uint8_t> make_bitstream() {
  BitWriter bw;
  SplitMix64 rng(0x4d4f544e);
  for (int i = 0; i < kVectors; ++i) {
    const std::int32_t dx = static_cast<std::int32_t>(rng.next_below(33)) - 16;
    const std::int32_t dy = static_cast<std::int32_t>(rng.next_below(33)) - 16;
    bw.put_se(dx);
    bw.put_se(dy);
  }
  return bw.finish();
}

/// Fix the byte-alignment edge case in put_bit: the first bit of each byte
/// must allocate the byte. (Handled above; helper retained for clarity.)

}  // namespace

Workload make_motion() {
  Workload w;
  w.name = "motion";
  w.output_globals = {"vectors"};
  w.build = [](ir::Module& m) {
    m.add_global(bytes_global("stream", make_bitstream()));
    m.add_global(buffer_global("vectors", kVectors * 8));  // (x, y) pairs

    ir::Function& f = m.add_function("main", 0);
    IRBuilder b(f);

    // get_bit(pos) -> bit; ue_decode/se_decode as real functions so the
    // whole-program inliner earns its keep.
    ir::Function& gb = m.add_function("get_bit", 1);
    {
      IRBuilder g(gb);
      g.set_insert_point(g.create_block("entry"));
      Vreg pos = gb.param(0);
      Vreg byte = g.ldqu(g.add(g.ga("stream"), g.shru(pos, 3)));
      Vreg shift = g.sub(7, g.band(pos, 7));
      g.ret(g.band(g.shru(byte, shift), 1));
    }

    b.set_insert_point(b.create_block("entry"));
    Vreg bitpos = b.movi(0);
    Vreg pred_x = b.movi(0);
    Vreg pred_y = b.movi(0);
    Vreg digest = b.movi(0);

    // se_decode inline recipe shared for the two components.
    auto decode_se = [&]() -> Vreg {
      // Count leading zeros.
      const auto zhead = b.create_block("z.head");
      const auto zbody = b.create_block("z.body");
      const auto zdone = b.create_block("z.done");
      Vreg zeros = b.movi(0);
      b.jump(zhead);
      b.set_insert_point(zhead);
      Vreg bit = b.call("get_bit", {bitpos});
      b.emit_into(bitpos, ir::Opcode::Add, {bitpos, 1});
      b.bnz(bit, zdone, zbody);
      b.set_insert_point(zbody);
      b.emit_into(zeros, ir::Opcode::Add, {zeros, 1});
      b.jump(zhead);
      b.set_insert_point(zdone);
      // value = (1 << zeros) - 1 + read_bits(zeros)
      Vreg value = b.sub(b.shl(1, zeros), 1);
      Vreg extra = b.movi(0);
      for_range(b, 0, Operand(zeros), 1, [&](Vreg) {
        Vreg nb = b.call("get_bit", {bitpos});
        b.emit_into(bitpos, ir::Opcode::Add, {bitpos, 1});
        b.emit_into(extra, ir::Opcode::Shl, {extra, 1});
        b.emit_into(extra, ir::Opcode::Ior, {extra, nb});
      });
      Vreg k = b.add(value, extra);
      // signed mapping: odd k -> (k+1)/2, even k -> -(k/2)
      Vreg odd = b.band(k, 1);
      Vreg pos_v = b.shru(b.add(k, 1), 1);
      Vreg neg_v = b.neg(b.shru(k, 1));
      return select01(b, odd, pos_v, neg_v);
    };

    auto wrap = [&](Vreg v) {
      // MPEG range wrap into [-1024, 1023].
      Vreg too_big = b.gt(v, 1023);
      Vreg w1 = select01(b, too_big, b.sub(v, 2048), v);
      Vreg too_small = b.gt(-1024, w1);
      return select01(b, too_small, b.add(w1, 2048), w1);
    };

    for_range(b, 0, kVectors, [&](Vreg i) {
      Vreg dx = decode_se();
      Vreg dy = decode_se();
      Vreg mvx = wrap(b.add(pred_x, dx));
      Vreg mvy = wrap(b.add(pred_y, dy));
      b.copy_into(pred_x, mvx);
      b.copy_into(pred_y, mvy);
      Vreg off = b.shl(i, 3);
      b.stw(b.add(b.ga("vectors"), off), mvx);
      b.stw(b.add(b.ga("vectors"), b.add(off, 4)), mvy);
      b.emit_into(digest, ir::Opcode::Add, {digest, b.bxor(mvx, b.shl(mvy, 8))});
    });
    b.ret(digest);
  };
  return w;
}

}  // namespace ttsc::workloads
