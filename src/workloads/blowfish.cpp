// CHStone "bf" (blowfish) equivalent: Blowfish-structured Feistel cipher —
// 18-entry P-array, four 256-entry S-boxes, 16 rounds with the
// F(x) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d] round function — encrypting 64
// eight-byte blocks in ECB mode. The subkey tables are pseudo-random
// constants (the reference uses hexadecimal pi; any fixed table exercises
// the identical datapath).
#include "support/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace ttsc::workloads {

namespace {

constexpr int kBlocks = 64;
constexpr int kRounds = 16;

std::vector<std::uint32_t> make_table(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint32_t> t(n);
  SplitMix64 rng(seed);
  for (auto& x : t) x = rng.next_u32();
  return t;
}

}  // namespace

Workload make_blowfish() {
  Workload w;
  w.name = "blowfish";
  w.output_globals = {"cipher"};
  w.build = [](ir::Module& m) {
    m.add_global(words_global("parr", make_table(0x50415252, kRounds + 2)));
    m.add_global(words_global("sbox0", make_table(0x53423030, 256)));
    m.add_global(words_global("sbox1", make_table(0x53423131, 256)));
    m.add_global(words_global("sbox2", make_table(0x53423232, 256)));
    m.add_global(words_global("sbox3", make_table(0x53423333, 256)));
    m.add_global(words_global("plain", make_table(0x424c4f57, kBlocks * 2), false));
    m.add_global(buffer_global("cipher", kBlocks * 8));

    ir::Function& f = m.add_function("main", 0);
    IRBuilder b(f);
    b.set_insert_point(b.create_block("entry"));

    // Round function F, as its own function so the inliner gets exercised.
    ir::Function& ff = m.add_function("feistel_f", 1);
    {
      IRBuilder fb(ff);
      fb.set_insert_point(fb.create_block("entry"));
      Vreg x = ff.param(0);
      Vreg a = fb.shru(x, 24);
      Vreg bq = fb.band(fb.shru(x, 16), 0xff);
      Vreg c = fb.band(fb.shru(x, 8), 0xff);
      Vreg d = fb.band(x, 0xff);
      Vreg s0 = fb.ldw(fb.add(fb.ga("sbox0"), fb.shl(a, 2)));
      Vreg s1 = fb.ldw(fb.add(fb.ga("sbox1"), fb.shl(bq, 2)));
      Vreg s2 = fb.ldw(fb.add(fb.ga("sbox2"), fb.shl(c, 2)));
      Vreg s3 = fb.ldw(fb.add(fb.ga("sbox3"), fb.shl(d, 2)));
      fb.ret(fb.add(fb.bxor(fb.add(s0, s1), s2), s3));
    }

    Vreg digest = b.movi(0);
    for_range(b, 0, kBlocks, [&](Vreg blk) {
      Vreg off = b.shl(blk, 3);
      Vreg xl = b.ldw(b.add(b.ga("plain"), off));
      Vreg xr = b.ldw(b.add(b.ga("plain"), b.add(off, 4)));

      for_range(b, 0, kRounds, [&](Vreg round) {
        Vreg p = b.ldw(b.add(b.ga("parr"), b.shl(round, 2)));
        b.emit_into(xl, ir::Opcode::Xor, {xl, p});
        Vreg fv = b.call("feistel_f", {xl});
        b.emit_into(xr, ir::Opcode::Xor, {xr, fv});
        // swap halves
        Vreg t = b.copy(xl);
        b.copy_into(xl, xr);
        b.copy_into(xr, t);
      });
      // undo the final swap, apply the last two subkeys
      Vreg t = b.copy(xl);
      b.copy_into(xl, xr);
      b.copy_into(xr, t);
      Vreg p16 = b.ldw(b.ga("parr", 4 * kRounds));
      Vreg p17 = b.ldw(b.ga("parr", 4 * (kRounds + 1)));
      b.emit_into(xr, ir::Opcode::Xor, {xr, p16});
      b.emit_into(xl, ir::Opcode::Xor, {xl, p17});

      b.stw(b.add(b.ga("cipher"), off), xl);
      b.stw(b.add(b.ga("cipher"), b.add(off, 4)), xr);
      b.emit_into(digest, ir::Opcode::Add, {digest, b.bxor(xl, xr)});
    });
    b.ret(digest);
  };
  return w;
}

}  // namespace ttsc::workloads
