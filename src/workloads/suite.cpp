#include "workloads/workload.hpp"

namespace ttsc::workloads {

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> suite = {
      make_adpcm(), make_aes(),  make_blowfish(), make_gsm(),
      make_jpeg(),  make_mips(), make_motion(),   make_sha(),
  };
  return suite;
}

}  // namespace ttsc::workloads
