// CHStone-equivalent workload suite.
//
// The paper evaluates eight CHStone programs (adpcm, aes, blowfish, gsm,
// jpeg, mips, motion, sha; SoftFloat excluded for lack of double support in
// TCE). Each ttsc workload builds the same algorithm class directly in IR
// through the IRBuilder front end, with deterministic inputs embedded as
// global data and outputs written to named global arrays so every backend
// run can be checksummed against the reference interpreter.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace ttsc::workloads {

struct Workload {
  std::string name;
  /// Populates the module: globals plus a parameterless function "main"
  /// returning a 32-bit result digest.
  std::function<void(ir::Module&)> build;
  /// Globals whose final contents constitute the observable output.
  std::vector<std::string> output_globals;
};

Workload make_adpcm();
Workload make_aes();
Workload make_blowfish();
Workload make_gsm();
Workload make_jpeg();
Workload make_mips();
Workload make_motion();
Workload make_sha();

/// All eight workloads in the paper's reporting order.
const std::vector<Workload>& all_workloads();

/// Entry-point function name used by every workload.
inline const char* entry_point() { return "main"; }

}  // namespace ttsc::workloads
