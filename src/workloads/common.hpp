// Structured control-flow helpers for writing workloads against the
// IRBuilder: counted loops, if/else, branch-free select/clamp, and host-side
// data packing for global initializers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/builder.hpp"

namespace ttsc::workloads {

using ir::IRBuilder;
using ir::Operand;
using ir::Vreg;

/// Counted loop: for (i = start; i < bound; i += step) body(i).
/// The body receives the induction register and may itself build nested
/// control flow, as long as it leaves the insertion point in a block that
/// falls through. Assumes at least one iteration executes bound > start
/// checks up front (a pre-test is emitted, so zero-trip counts are fine).
inline void for_range(IRBuilder& b, std::int32_t start, Operand bound, std::int32_t step,
                      const std::function<void(Vreg)>& body) {
  ir::Function& f = b.function();
  const ir::BlockId head = b.create_block("for.head");
  const ir::BlockId body_bb = b.create_block("for.body");
  const ir::BlockId exit = b.create_block("for.exit");
  (void)f;

  Vreg i = b.copy(start);
  b.jump(head);

  b.set_insert_point(head);
  Vreg enter = b.gt(bound, i);
  b.bnz(enter, body_bb, exit);

  b.set_insert_point(body_bb);
  body(i);
  b.emit_into(i, ir::Opcode::Add, {i, step});
  b.jump(head);

  b.set_insert_point(exit);
}

inline void for_range(IRBuilder& b, std::int32_t start, std::int32_t bound,
                      const std::function<void(Vreg)>& body) {
  for_range(b, start, Operand(bound), 1, body);
}

/// if (cond != 0) then_body(); else else_body();  Bodies must leave their
/// insertion point in a falling-through block.
inline void if_else(IRBuilder& b, Operand cond, const std::function<void()>& then_body,
                    const std::function<void()>& else_body) {
  const ir::BlockId then_bb = b.create_block("if.then");
  const ir::BlockId else_bb = b.create_block("if.else");
  const ir::BlockId join = b.create_block("if.join");
  b.bnz(cond, then_bb, else_bb);
  b.set_insert_point(then_bb);
  then_body();
  b.jump(join);
  b.set_insert_point(else_bb);
  else_body();
  b.jump(join);
  b.set_insert_point(join);
}

inline void if_then(IRBuilder& b, Operand cond, const std::function<void()>& then_body) {
  if_else(b, cond, then_body, [] {});
}

/// Branch-free select: cond (0/1) ? a : b.
inline Vreg select01(IRBuilder& b, Operand cond01, Operand a, Operand bv) {
  Vreg mask = b.neg(cond01);  // 0 -> 0, 1 -> 0xffffffff
  Vreg lhs = b.band(a, mask);
  Vreg rhs = b.band(bv, b.bnot(mask));
  return b.bior(lhs, rhs);
}

/// Branch-free clamp of x into [lo, hi] (signed).
inline Vreg clamp(IRBuilder& b, Vreg x, std::int32_t lo, std::int32_t hi) {
  Vreg too_low = b.gt(lo, x);
  Vreg v = select01(b, too_low, lo, x);
  Vreg too_high = b.gt(v, hi);
  return select01(b, too_high, hi, v);
}

// ---- host-side initializer packing ------------------------------------------

inline std::vector<std::uint8_t> pack_u32(const std::vector<std::uint32_t>& words) {
  std::vector<std::uint8_t> out;
  out.reserve(words.size() * 4);
  for (std::uint32_t w : words) {
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  return out;
}

inline std::vector<std::uint8_t> pack_u16(const std::vector<std::uint16_t>& halves) {
  std::vector<std::uint8_t> out;
  out.reserve(halves.size() * 2);
  for (std::uint16_t h : halves) {
    out.push_back(static_cast<std::uint8_t>(h));
    out.push_back(static_cast<std::uint8_t>(h >> 8));
  }
  return out;
}

/// Global holding `words.size()` little-endian 32-bit words.
inline ir::Global words_global(std::string name, const std::vector<std::uint32_t>& words,
                               bool read_only = true) {
  ir::Global g;
  g.name = std::move(name);
  g.size = static_cast<std::uint32_t>(words.size() * 4);
  g.align = 4;
  g.init = pack_u32(words);
  g.read_only = read_only;
  return g;
}

inline ir::Global bytes_global(std::string name, std::vector<std::uint8_t> bytes,
                               bool read_only = true) {
  ir::Global g;
  g.name = std::move(name);
  g.size = static_cast<std::uint32_t>(bytes.size());
  g.align = 4;
  g.init = std::move(bytes);
  g.read_only = read_only;
  return g;
}

/// Uninitialized (zeroed) output buffer.
inline ir::Global buffer_global(std::string name, std::uint32_t size) {
  ir::Global g;
  g.name = std::move(name);
  g.size = size;
  g.align = 4;
  return g;
}

}  // namespace ttsc::workloads
