// CHStone "sha" equivalent: SHA-1 over a 1 KiB message (16 padded 64-byte
// chunks preprocessed host-side; the full 80-round compression runs in IR).
// Pure 32-bit rotate/xor/add workload — the paper's most ILP-regular case.
#include "support/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace ttsc::workloads {

namespace {

constexpr int kChunks = 16;

std::vector<std::uint32_t> make_message_words() {
  // kChunks 64-byte chunks, already laid out as big-endian words the way
  // SHA-1 consumes them (padding folded into the data for simplicity; the
  // compression function is the measured kernel).
  std::vector<std::uint32_t> words(static_cast<std::size_t>(kChunks) * 16);
  SplitMix64 rng(0x53484131);  // "SHA1"
  for (auto& w : words) w = rng.next_u32();
  return words;
}

}  // namespace

Workload make_sha() {
  Workload w;
  w.name = "sha";
  w.output_globals = {"digest"};
  w.build = [](ir::Module& m) {
    m.add_global(words_global("msg", make_message_words()));
    m.add_global(buffer_global("wbuf", 80 * 4));
    m.add_global(buffer_global("digest", 5 * 4));

    ir::Function& f = m.add_function("main", 0);
    IRBuilder b(f);
    b.set_insert_point(b.create_block("entry"));

    auto rotl = [&](Vreg x, int n) {
      return b.bior(b.shl(x, n), b.shru(x, 32 - n));
    };

    Vreg h0 = b.movi(0x67452301);
    Vreg h1 = b.movi(static_cast<std::int32_t>(0xEFCDAB89));
    Vreg h2 = b.movi(static_cast<std::int32_t>(0x98BADCFE));
    Vreg h3 = b.movi(0x10325476);
    Vreg h4 = b.movi(static_cast<std::int32_t>(0xC3D2E1F0));

    for_range(b, 0, kChunks, [&](Vreg chunk) {
      Vreg base = b.add(b.ga("msg"), b.shl(chunk, 6));

      // Message schedule: w[0..15] from the chunk, w[16..79] expanded.
      for_range(b, 0, 16, [&](Vreg t) {
        Vreg word = b.ldw(b.add(base, b.shl(t, 2)));
        b.stw(b.add(b.ga("wbuf"), b.shl(t, 2)), word);
      });
      for_range(b, 16, 80, [&](Vreg t) {
        Vreg w3 = b.ldw(b.add(b.ga("wbuf"), b.shl(b.sub(t, 3), 2)));
        Vreg w8 = b.ldw(b.add(b.ga("wbuf"), b.shl(b.sub(t, 8), 2)));
        Vreg w14 = b.ldw(b.add(b.ga("wbuf"), b.shl(b.sub(t, 14), 2)));
        Vreg w16 = b.ldw(b.add(b.ga("wbuf"), b.shl(b.sub(t, 16), 2)));
        Vreg x = b.bxor(b.bxor(w3, w8), b.bxor(w14, w16));
        Vreg r = rotl(x, 1);
        b.stw(b.add(b.ga("wbuf"), b.shl(t, 2)), r);
      });

      Vreg a = b.copy(h0);
      Vreg bb = b.copy(h1);
      Vreg c = b.copy(h2);
      Vreg d = b.copy(h3);
      Vreg e = b.copy(h4);

      // Four round groups with their f-functions and constants.
      struct Round {
        int lo;
        int hi;
        std::int32_t k;
      };
      const Round rounds[4] = {{0, 20, 0x5A827999},
                               {20, 40, 0x6ED9EBA1},
                               {40, 60, static_cast<std::int32_t>(0x8F1BBCDC)},
                               {60, 80, static_cast<std::int32_t>(0xCA62C1D6)}};
      for (int g = 0; g < 4; ++g) {
        for_range(b, rounds[g].lo, rounds[g].hi, [&](Vreg t) {
          Vreg fv;
          if (g == 0) {
            // (b & c) | (~b & d)
            fv = b.bior(b.band(bb, c), b.band(b.bnot(bb), d));
          } else if (g == 2) {
            // (b & c) | (b & d) | (c & d)
            fv = b.bior(b.bior(b.band(bb, c), b.band(bb, d)), b.band(c, d));
          } else {
            fv = b.bxor(b.bxor(bb, c), d);
          }
          Vreg wt = b.ldw(b.add(b.ga("wbuf"), b.shl(t, 2)));
          Vreg tmp = b.add(b.add(rotl(a, 5), fv), b.add(b.add(e, wt), rounds[g].k));
          b.copy_into(e, d);
          b.copy_into(d, c);
          Vreg c_new = rotl(bb, 30);
          b.copy_into(c, c_new);
          b.copy_into(bb, a);
          b.copy_into(a, tmp);
        });
      }

      b.emit_into(h0, ir::Opcode::Add, {h0, a});
      b.emit_into(h1, ir::Opcode::Add, {h1, bb});
      b.emit_into(h2, ir::Opcode::Add, {h2, c});
      b.emit_into(h3, ir::Opcode::Add, {h3, d});
      b.emit_into(h4, ir::Opcode::Add, {h4, e});
    });

    b.stw(b.ga("digest", 0), h0);
    b.stw(b.ga("digest", 4), h1);
    b.stw(b.ga("digest", 8), h2);
    b.stw(b.ga("digest", 12), h3);
    b.stw(b.ga("digest", 16), h4);
    b.ret(b.bxor(b.bxor(h0, h1), b.bxor(h2, b.bxor(h3, h4))));
  };
  return w;
}

}  // namespace ttsc::workloads
