// CHStone "mips" equivalent: an instruction-set interpreter for a MIPS
// subset (R-type add/sub/slt/sll, addiu, lw/sw, beq/bne, j, halt) executing
// an embedded bubble-sort guest program over 16 words. Decode is a chain of
// compares and masks — the branchiest workload in the suite, which is why
// the paper sees the smallest TTA gains on it.
#include <map>

#include "support/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace ttsc::workloads {

namespace {

constexpr int kSortN = 16;

// ---- tiny two-pass MIPS assembler (host side) -------------------------------

class MipsAsm {
 public:
  void label(const std::string& name) { labels_[name] = static_cast<int>(code_.size()); }

  void r_type(int funct, int rd, int rs, int rt, int shamt = 0) {
    code_.push_back(static_cast<std::uint32_t>((rs << 21) | (rt << 16) | (rd << 11) |
                                               (shamt << 6) | funct));
  }
  void addiu(int rt, int rs, int imm) { i_type(8, rs, rt, imm); }
  void lw(int rt, int rs, int imm) { i_type(0x23, rs, rt, imm); }
  void sw(int rt, int rs, int imm) { i_type(0x2b, rs, rt, imm); }
  void beq(int rs, int rt, const std::string& target) { branch(4, rs, rt, target); }
  void bne(int rs, int rt, const std::string& target) { branch(5, rs, rt, target); }
  void j(const std::string& target) {
    fixups_.push_back({static_cast<int>(code_.size()), target, true});
    code_.push_back(2u << 26);
  }
  void halt() { code_.push_back(0x3fu << 26); }

  std::vector<std::uint32_t> finish() {
    for (const Fixup& fx : fixups_) {
      const int target = labels_.at(fx.label);
      if (fx.is_jump) {
        code_[static_cast<std::size_t>(fx.index)] |= static_cast<std::uint32_t>(target) & 0x3ffffff;
      } else {
        const int offset = target - (fx.index + 1);
        code_[static_cast<std::size_t>(fx.index)] |=
            static_cast<std::uint32_t>(offset) & 0xffff;
      }
    }
    return code_;
  }

 private:
  struct Fixup {
    int index;
    std::string label;
    bool is_jump;
  };
  void i_type(int op, int rs, int rt, int imm) {
    code_.push_back(static_cast<std::uint32_t>((op << 26) | (rs << 21) | (rt << 16) |
                                               (imm & 0xffff)));
  }
  void branch(int op, int rs, int rt, const std::string& target) {
    fixups_.push_back({static_cast<int>(code_.size()), target, false});
    code_.push_back(static_cast<std::uint32_t>((op << 26) | (rs << 21) | (rt << 16)));
  }

  std::vector<std::uint32_t> code_;
  std::map<std::string, int> labels_;
  std::vector<Fixup> fixups_;
};

std::vector<std::uint32_t> make_guest_program() {
  // Bubble sort of kSortN words at guest address 0.
  constexpr int kAdd = 0x20;
  constexpr int kSub = 0x22;
  constexpr int kSlt = 0x2a;
  MipsAsm a;
  a.addiu(1, 0, 0);        // r1 = data base (guest address 0)
  a.addiu(2, 0, kSortN);   // r2 = n
  a.addiu(3, 0, 0);        // r3 = i
  a.label("outer");
  a.r_type(kSlt, 8, 3, 2);  // r8 = i < n
  a.beq(8, 0, "done");
  a.r_type(kSub, 9, 2, 3);  // r9 = n - i
  a.addiu(9, 9, -1);        // r9 = n - i - 1
  a.addiu(4, 0, 0);         // r4 = j
  a.label("inner");
  a.r_type(kSlt, 8, 4, 9);
  a.beq(8, 0, "end_inner");
  a.r_type(0, 5, 0, 4, 2);  // sll r5 = j << 2
  a.r_type(kAdd, 5, 5, 1);
  a.lw(6, 5, 0);
  a.lw(7, 5, 4);
  a.r_type(kSlt, 8, 7, 6);  // r8 = a[j+1] < a[j]
  a.beq(8, 0, "noswap");
  a.sw(7, 5, 0);
  a.sw(6, 5, 4);
  a.label("noswap");
  a.addiu(4, 4, 1);
  a.j("inner");
  a.label("end_inner");
  a.addiu(3, 3, 1);
  a.j("outer");
  a.label("done");
  a.halt();
  return a.finish();
}

std::vector<std::uint32_t> make_guest_data() {
  std::vector<std::uint32_t> data(kSortN);
  SplitMix64 rng(0x4d495053);
  for (auto& x : data) x = rng.next_below(100000);
  return data;
}

}  // namespace

Workload make_mips() {
  Workload w;
  w.name = "mips";
  w.output_globals = {"guest_mem"};
  w.build = [](ir::Module& m) {
    m.add_global(words_global("imem", make_guest_program()));
    m.add_global(words_global("guest_mem", make_guest_data(), false));
    m.add_global(buffer_global("regs", 32 * 4));

    ir::Function& f = m.add_function("main", 0);
    IRBuilder b(f);
    const auto entry = b.create_block("entry");
    const auto fetch = b.create_block("fetch");
    const auto done = b.create_block("done");
    b.set_insert_point(entry);

    Vreg pc = b.movi(0);
    Vreg executed = b.movi(0);
    Vreg halted = b.movi(0);
    b.jump(fetch);

    b.set_insert_point(fetch);
    Vreg instr = b.ldw(b.add(b.ga("imem"), pc));
    b.emit_into(pc, ir::Opcode::Add, {pc, 4});
    b.emit_into(executed, ir::Opcode::Add, {executed, 1});
    Vreg op = b.shru(instr, 26);
    Vreg rs = b.band(b.shru(instr, 21), 31);
    Vreg rt = b.band(b.shru(instr, 16), 31);
    Vreg rd = b.band(b.shru(instr, 11), 31);
    Vreg shamt = b.band(b.shru(instr, 6), 31);
    Vreg imm = b.sxhw(instr);

    auto reg_read = [&](Vreg idx) { return b.ldw(b.add(b.ga("regs"), b.shl(idx, 2))); };
    auto reg_write = [&](Vreg idx, Vreg value) {
      // r0 is hardwired to zero: squash writes with a select on idx != 0.
      Vreg keep = b.ne(idx, 0);
      Vreg masked = b.band(value, b.neg(keep));
      b.stw(b.add(b.ga("regs"), b.shl(idx, 2)), masked);
    };

    if_else(
        b, b.eq(op, 0),
        [&] {
          // R-type dispatch on funct.
          Vreg funct = b.band(instr, 63);
          Vreg a = reg_read(rs);
          Vreg c = reg_read(rt);
          if_else(
              b, b.eq(funct, 0x20), [&] { reg_write(rd, b.add(a, c)); },
              [&] {
                if_else(
                    b, b.eq(funct, 0x22), [&] { reg_write(rd, b.sub(a, c)); },
                    [&] {
                      if_else(
                          b, b.eq(funct, 0x2a), [&] { reg_write(rd, b.gt(c, a)); },
                          [&] {
                            // funct 0: sll rd, rt, shamt
                            reg_write(rd, b.shl(c, shamt));
                          });
                    });
              });
        },
        [&] {
          if_else(
              b, b.eq(op, 8), [&] { reg_write(rt, b.add(reg_read(rs), imm)); },
              [&] {
                if_else(
                    b, b.eq(op, 0x23),
                    [&] {
                      Vreg addr = b.add(reg_read(rs), imm);
                      reg_write(rt, b.ldw(b.add(b.ga("guest_mem"), addr)));
                    },
                    [&] {
                      if_else(
                          b, b.eq(op, 0x2b),
                          [&] {
                            Vreg addr = b.add(reg_read(rs), imm);
                            b.stw(b.add(b.ga("guest_mem"), addr), reg_read(rt));
                          },
                          [&] {
                            if_else(
                                b, b.eq(op, 4),
                                [&] {
                                  Vreg taken = b.eq(reg_read(rs), reg_read(rt));
                                  if_then(b, taken, [&] {
                                    b.emit_into(pc, ir::Opcode::Add, {pc, b.shl(imm, 2)});
                                  });
                                },
                                [&] {
                                  if_else(
                                      b, b.eq(op, 5),
                                      [&] {
                                        Vreg taken = b.ne(reg_read(rs), reg_read(rt));
                                        if_then(b, taken, [&] {
                                          b.emit_into(pc, ir::Opcode::Add,
                                                      {pc, b.shl(imm, 2)});
                                        });
                                      },
                                      [&] {
                                        if_else(
                                            b, b.eq(op, 2),
                                            [&] {
                                              Vreg target =
                                                  b.band(instr, 0x3ffffff);
                                              b.copy_into(pc, b.shl(target, 2));
                                            },
                                            [&] {
                                              // halt (or unknown opcode)
                                              b.copy_into(halted, 1);
                                            });
                                      });
                                });
                          });
                    });
              });
        });

    b.bnz(halted, done, fetch);

    b.set_insert_point(done);
    b.ret(executed);
  };
  return w;
}

}  // namespace ttsc::workloads
