// CHStone "jpeg" equivalent: the decoder's arithmetic core — dequantization
// and 2-D 8x8 inverse DCT (fixed-point Q14 basis matrix, row pass + column
// pass) over 16 coefficient blocks, with final level shift and clamp to
// 8-bit samples. Multiplier-heavy with strided byte/word memory traffic.
#include <cmath>

#include "support/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace ttsc::workloads {

namespace {

constexpr int kBlocks = 16;

std::vector<std::uint32_t> make_idct_matrix() {
  // basis[i][j] = c(i) * cos((2j+1) i pi / 16) in Q14, laid out row-major.
  std::vector<std::uint32_t> mat(64);
  const double pi = 3.14159265358979323846;
  for (int i = 0; i < 8; ++i) {
    const double ci = i == 0 ? std::sqrt(0.5) : 1.0;
    for (int j = 0; j < 8; ++j) {
      const double v = 0.5 * ci * std::cos((2 * j + 1) * i * pi / 16.0);
      mat[static_cast<std::size_t>(i * 8 + j)] =
          static_cast<std::uint32_t>(static_cast<std::int32_t>(std::lround(v * 16384.0)));
    }
  }
  return mat;
}

std::vector<std::uint32_t> make_quant_table() {
  // Luminance-like table: larger steps at high frequencies.
  std::vector<std::uint32_t> q(64);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      q[static_cast<std::size_t>(i * 8 + j)] = static_cast<std::uint32_t>(8 + 2 * (i + j));
    }
  }
  return q;
}

std::vector<std::uint32_t> make_coefficients() {
  // Sparse quantized coefficients, as a real entropy decoder would emit.
  std::vector<std::uint32_t> c(static_cast<std::size_t>(kBlocks) * 64);
  SplitMix64 rng(0x4a504547);
  for (int blk = 0; blk < kBlocks; ++blk) {
    for (int k = 0; k < 64; ++k) {
      const bool keep = k == 0 || rng.next_below(100) < (k < 16 ? 70u : 15u);
      std::int32_t v = 0;
      if (keep) v = static_cast<std::int32_t>(rng.next_below(61)) - 30;
      if (k == 0) v = static_cast<std::int32_t>(rng.next_below(120)) - 20;
      c[static_cast<std::size_t>(blk * 64 + k)] = static_cast<std::uint32_t>(v);
    }
  }
  return c;
}

}  // namespace

Workload make_jpeg() {
  Workload w;
  w.name = "jpeg";
  w.output_globals = {"pixels"};
  w.build = [](ir::Module& m) {
    m.add_global(words_global("idct_mat", make_idct_matrix()));
    m.add_global(words_global("qtab", make_quant_table()));
    m.add_global(words_global("coeffs", make_coefficients()));
    m.add_global(buffer_global("work", 64 * 4));   // dequantized block
    m.add_global(buffer_global("inter", 64 * 4));  // after row pass
    m.add_global(buffer_global("pixels", kBlocks * 64));

    ir::Function& f = m.add_function("main", 0);
    IRBuilder b(f);
    b.set_insert_point(b.create_block("entry"));

    Vreg digest = b.movi(0);
    for_range(b, 0, kBlocks, [&](Vreg blk) {
      Vreg cbase = b.add(b.ga("coeffs"), b.shl(b.mul(blk, 64), 2));

      // Dequantize into work[].
      for_range(b, 0, 64, [&](Vreg k) {
        Vreg coef = b.ldw(b.add(cbase, b.shl(k, 2)));
        Vreg q = b.ldw(b.add(b.ga("qtab"), b.shl(k, 2)));
        b.stw(b.add(b.ga("work"), b.shl(k, 2)), b.mul(coef, q));
      });

      // Row pass: inter[r][j] = sum_i work[r][i] * mat[i][j] >> 14.
      for_range(b, 0, 8, [&](Vreg r) {
        Vreg rbase = b.add(b.ga("work"), b.shl(b.shl(r, 3), 2));
        for_range(b, 0, 8, [&](Vreg j) {
          Vreg acc = b.movi(8192);  // rounding bias (0.5 in Q14)
          for_range(b, 0, 8, [&](Vreg i) {
            Vreg x = b.ldw(b.add(rbase, b.shl(i, 2)));
            Vreg cidx = b.add(b.shl(i, 3), j);
            Vreg cv = b.ldw(b.add(b.ga("idct_mat"), b.shl(cidx, 2)));
            b.emit_into(acc, ir::Opcode::Add, {acc, b.mul(x, cv)});
          });
          Vreg out_idx = b.add(b.shl(r, 3), j);
          b.stw(b.add(b.ga("inter"), b.shl(out_idx, 2)), b.shr(acc, 14));
        });
      });

      // Column pass + level shift + clamp into pixels.
      Vreg pbase = b.add(b.ga("pixels"), b.mul(blk, 64));
      for_range(b, 0, 8, [&](Vreg cgrid) {
        for_range(b, 0, 8, [&](Vreg j) {
          Vreg acc = b.movi(8192);
          for_range(b, 0, 8, [&](Vreg i) {
            Vreg idx = b.add(b.shl(i, 3), cgrid);
            Vreg x = b.ldw(b.add(b.ga("inter"), b.shl(idx, 2)));
            Vreg cidx = b.add(b.shl(i, 3), j);
            Vreg cv = b.ldw(b.add(b.ga("idct_mat"), b.shl(cidx, 2)));
            b.emit_into(acc, ir::Opcode::Add, {acc, b.mul(x, cv)});
          });
          Vreg sample = b.add(b.shr(acc, 14), 128);
          Vreg px = clamp(b, sample, 0, 255);
          Vreg out_idx = b.add(b.shl(j, 3), cgrid);
          b.stq(b.add(pbase, out_idx), px);
          b.emit_into(digest, ir::Opcode::Add, {digest, px});
        });
      });
    });
    b.ret(digest);
  };
  return w;
}

}  // namespace ttsc::workloads
