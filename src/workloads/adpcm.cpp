// CHStone "adpcm" equivalent: IMA ADPCM encode of a synthesized 16-bit PCM
// waveform followed by decode of the produced nibble stream. Exercises the
// compare/select/shift-heavy integer style of the original benchmark plus
// table lookups for the step-size adaptation.
#include <cmath>

#include "support/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace ttsc::workloads {

namespace {

constexpr int kSamples = 512;

const std::int32_t kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};

const std::int32_t kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,    19,    21,    23,
    25,    28,    31,    34,    37,    41,    45,    50,    55,    60,    66,    73,    80,
    88,    97,    107,   118,   130,   143,   157,   173,   190,   209,   230,   253,   279,
    307,   337,   371,   408,   449,   494,   544,   598,   658,   724,   796,   876,   963,
    1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,  3024,  3327,
    3660,  4026,  4428,  4871,  5358,  5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

std::vector<std::uint16_t> make_pcm() {
  std::vector<std::uint16_t> pcm(kSamples);
  SplitMix64 rng(0x41445043);  // "ADPC"
  for (int i = 0; i < kSamples; ++i) {
    const double t = static_cast<double>(i);
    double v = 9000.0 * std::sin(t * 0.081) + 4500.0 * std::sin(t * 0.353 + 1.1);
    v += static_cast<double>(rng.next_below(801)) - 400.0;
    pcm[static_cast<std::size_t>(i)] =
        static_cast<std::uint16_t>(static_cast<std::int16_t>(v));
  }
  return pcm;
}

/// One ADPCM step-size adaptation + predictor update, shared between the
/// encoder and decoder bodies. Updates valpred/index/step in place.
void update_predictor(IRBuilder& b, Vreg delta, Vreg sign, Vreg step, Vreg valpred, Vreg index,
                      const char* index_table) {
  // vpdiff = (delta_bits ? ...) + step>>3
  Vreg vpdiff = b.shr(step, 3);
  if_then(b, b.band(delta, 4), [&] { b.emit_into(vpdiff, ir::Opcode::Add, {vpdiff, step}); });
  if_then(b, b.band(delta, 2),
          [&] { b.emit_into(vpdiff, ir::Opcode::Add, {vpdiff, b.shr(step, 1)}); });
  if_then(b, b.band(delta, 1),
          [&] { b.emit_into(vpdiff, ir::Opcode::Add, {vpdiff, b.shr(step, 2)}); });

  if_else(
      b, sign, [&] { b.emit_into(valpred, ir::Opcode::Sub, {valpred, vpdiff}); },
      [&] { b.emit_into(valpred, ir::Opcode::Add, {valpred, vpdiff}); });
  Vreg clamped = clamp(b, valpred, -32768, 32767);
  b.copy_into(valpred, clamped);

  // index += index_table[delta]; clamp to [0, 88]; step = step_table[index]
  Vreg tbl = b.ldw(b.add(b.ga(index_table), b.shl(b.band(delta, 15), 2)));
  b.emit_into(index, ir::Opcode::Add, {index, tbl});
  Vreg iclamped = clamp(b, index, 0, 88);
  b.copy_into(index, iclamped);
  Vreg new_step = b.ldw(b.add(b.ga("step_table"), b.shl(index, 2)));
  b.copy_into(step, new_step);
}

}  // namespace

Workload make_adpcm() {
  Workload w;
  w.name = "adpcm";
  w.output_globals = {"encoded", "decoded"};
  w.build = [](ir::Module& m) {
    m.add_global(bytes_global("pcm", pack_u16(make_pcm())));
    m.add_global(words_global(
        "index_table", std::vector<std::uint32_t>(reinterpret_cast<const std::uint32_t*>(kIndexTable),
                                                  reinterpret_cast<const std::uint32_t*>(kIndexTable) + 16)));
    m.add_global(words_global(
        "step_table", std::vector<std::uint32_t>(reinterpret_cast<const std::uint32_t*>(kStepTable),
                                                 reinterpret_cast<const std::uint32_t*>(kStepTable) + 89)));
    m.add_global(buffer_global("encoded", kSamples));      // one nibble per byte
    m.add_global(buffer_global("decoded", kSamples * 2));  // 16-bit samples

    ir::Function& f = m.add_function("main", 0);
    IRBuilder b(f);
    b.set_insert_point(b.create_block("entry"));

    // ---- encoder ----------------------------------------------------------
    Vreg valpred = b.movi(0);
    Vreg index = b.movi(0);
    Vreg step = b.movi(7);
    for_range(b, 0, kSamples, [&](Vreg i) {
      Vreg sample = b.ldh(b.add(b.ga("pcm"), b.shl(i, 1)));
      Vreg diff = b.sub(sample, valpred);
      Vreg sign = b.gt(0, diff);
      if_then(b, sign, [&] { b.emit_into(diff, ir::Opcode::Sub, {0, diff}); });

      Vreg delta = b.movi(0);
      Vreg d = b.copy(diff);
      Vreg s = b.copy(step);
      if_then(b, b.geu(d, s), [&] {
        b.emit_into(delta, ir::Opcode::Ior, {delta, 4});
        b.emit_into(d, ir::Opcode::Sub, {d, s});
      });
      b.emit_into(s, ir::Opcode::Shr, {s, 1});
      if_then(b, b.geu(d, s), [&] {
        b.emit_into(delta, ir::Opcode::Ior, {delta, 2});
        b.emit_into(d, ir::Opcode::Sub, {d, s});
      });
      b.emit_into(s, ir::Opcode::Shr, {s, 1});
      if_then(b, b.geu(d, s), [&] { b.emit_into(delta, ir::Opcode::Ior, {delta, 1}); });

      Vreg sign_bit = b.shl(sign, 3);
      Vreg code = b.bior(delta, sign_bit);
      b.stq(b.add(b.ga("encoded"), i), code);

      update_predictor(b, delta, sign, step, valpred, index, "index_table");
    });

    // ---- decoder ----------------------------------------------------------
    Vreg dv = b.movi(0);
    Vreg di = b.movi(0);
    Vreg ds = b.movi(7);
    Vreg checksum = b.movi(0);
    for_range(b, 0, kSamples, [&](Vreg i) {
      Vreg code = b.ldqu(b.add(b.ga("encoded"), i));
      Vreg sign = b.shru(code, 3);
      Vreg delta = b.band(code, 7);
      update_predictor(b, delta, sign, ds, dv, di, "index_table");
      b.sth(b.add(b.ga("decoded"), b.shl(i, 1)), dv);
      b.emit_into(checksum, ir::Opcode::Add, {checksum, dv});
    });

    b.ret(checksum);
  };
  return w;
}

}  // namespace ttsc::workloads
