// CHStone "gsm" equivalent: GSM 06.10 LPC analysis front end —
// autocorrelation over a 160-sample speech window, Schur recursion yielding
// eight reflection coefficients (with the shift-subtract fixed-point
// division GSM uses, since the datapath has no divider), and the
// piecewise-linear transformation to log-area ratios.
#include <cmath>

#include "support/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace ttsc::workloads {

namespace {

constexpr int kFrameLen = 160;
constexpr int kFrames = 4;
constexpr int kOrder = 8;

std::vector<std::uint16_t> make_speech() {
  std::vector<std::uint16_t> s(static_cast<std::size_t>(kFrameLen * kFrames));
  SplitMix64 rng(0x47534d21);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double t = static_cast<double>(i);
    double v = 5000.0 * std::sin(t * 0.117) + 2100.0 * std::sin(t * 0.041 + 0.7) +
               900.0 * std::sin(t * 0.551);
    v += static_cast<double>(rng.next_below(501)) - 250.0;
    s[i] = static_cast<std::uint16_t>(static_cast<std::int16_t>(v));
  }
  return s;
}

}  // namespace

Workload make_gsm() {
  Workload w;
  w.name = "gsm";
  w.output_globals = {"lar_out", "acf_out"};
  w.build = [](ir::Module& m) {
    m.add_global(bytes_global("speech", pack_u16(make_speech())));
    m.add_global(buffer_global("acf", (kOrder + 1) * 4));        // scratch per frame
    m.add_global(buffer_global("pp", (kOrder + 1) * 4));         // Schur scratch
    m.add_global(buffer_global("kk", (kOrder + 1) * 4));         // Schur scratch
    m.add_global(buffer_global("acf_out", kFrames * (kOrder + 1) * 4));
    m.add_global(buffer_global("lar_out", kFrames * kOrder * 4));

    // gsm_div(num, denom): Q15 division by shift-subtract, 0 <= num < denom.
    ir::Function& divf = m.add_function("gsm_div", 2);
    {
      IRBuilder db(divf);
      db.set_insert_point(db.create_block("entry"));
      Vreg num = db.copy(divf.param(0));
      Vreg denom = db.copy(divf.param(1));
      Vreg div = db.movi(0);
      for_range(db, 0, 15, [&](Vreg) {
        db.emit_into(div, ir::Opcode::Shl, {div, 1});
        db.emit_into(num, ir::Opcode::Shl, {num, 1});
        if_then(db, db.geu(num, denom), [&] {
          db.emit_into(num, ir::Opcode::Sub, {num, denom});
          db.emit_into(div, ir::Opcode::Add, {div, 1});
        });
      });
      db.ret(div);
    }

    ir::Function& f = m.add_function("main", 0);
    IRBuilder b(f);
    b.set_insert_point(b.create_block("entry"));

    auto abs_of = [&](Vreg x) {
      Vreg isneg = b.gt(0, x);
      return select01(b, isneg, b.neg(x), x);
    };

    Vreg digest = b.movi(0);
    for_range(b, 0, kFrames, [&](Vreg frame) {
      Vreg sbase = b.add(b.ga("speech"), b.mul(frame, kFrameLen * 2));

      // ---- autocorrelation (samples pre-scaled >> 3 against overflow) ----
      for_range(b, 0, kOrder + 1, [&](Vreg k) {
        Vreg acc = b.movi(0);
        for_range(b, 0, Operand(kFrameLen), 1, [&](Vreg i) {
          Vreg in_range = b.geu(i, k);  // i >= k (both non-negative)
          if_then(b, in_range, [&] {
            Vreg si = b.shr(b.ldh(b.add(sbase, b.shl(i, 1))), 3);
            Vreg sk = b.shr(b.ldh(b.add(sbase, b.shl(b.sub(i, k), 1))), 3);
            b.emit_into(acc, ir::Opcode::Add, {acc, b.mul(si, sk)});
          });
        });
        b.stw(b.add(b.ga("acf"), b.shl(k, 2)), acc);
        Vreg out_off = b.add(b.mul(frame, (kOrder + 1) * 4), b.shl(k, 2));
        b.stw(b.add(b.ga("acf_out"), out_off), acc);
      });

      // ---- Schur recursion -> reflection coefficients (Q15) ----
      // p[0..8] = acf[0..8]; k_arr unneeded beyond the loop.
      for_range(b, 0, kOrder + 1, [&](Vreg i) {
        Vreg v = b.ldw(b.add(b.ga("acf"), b.shl(i, 2)));
        b.stw(b.add(b.ga("pp"), b.shl(i, 2)), v);
        b.stw(b.add(b.ga("kk"), b.shl(i, 2)), v);
      });

      for_range(b, 0, kOrder, [&](Vreg n) {
        Vreg p0 = b.ldw(b.ga("pp"));
        Vreg p1 = b.ldw(b.ga("pp", 4));
        Vreg ap1 = abs_of(p1);
        // r = p1 >= p0 ? +-32767 : +-gsm_div(|p1|, p0)
        Vreg r = b.movi(0);
        if_then(b, b.gt(p0, 0), [&] {
          Vreg sat = b.geu(ap1, p0);
          if_else(
              b, sat, [&] { b.copy_into(r, 32767); },
              [&] {
                Vreg q = b.call("gsm_div", {ap1, p0});
                b.copy_into(r, q);
              });
          if_then(b, b.gt(0, p1), [&] { b.emit_into(r, ir::Opcode::Sub, {0, r}); });
        });
        // store reflection coefficient as LAR surrogate below
        // p[i] += (k[i+1] * r) >> 15 ; k[i+1] += (p[i] * r) >> 15
        for_range(b, 0, Operand(b.sub(kOrder, n)), 1, [&](Vreg i) {
          Vreg pi = b.ldw(b.add(b.ga("pp"), b.shl(i, 2)));
          Vreg ki1 = b.ldw(b.add(b.ga("kk"), b.shl(b.add(i, 1), 2)));
          Vreg pi_new = b.add(pi, b.shr(b.mul(ki1, r), 15));
          Vreg ki_new = b.add(ki1, b.shr(b.mul(pi, r), 15));
          b.stw(b.add(b.ga("pp"), b.shl(i, 2)), pi_new);
          b.stw(b.add(b.ga("kk"), b.shl(b.add(i, 1), 2)), ki_new);
        });
        // Actually GSM shifts p by one each iteration: p[i] = p[i+1] pattern.
        for_range(b, 0, Operand(kOrder), 1, [&](Vreg i) {
          Vreg nxt = b.ldw(b.add(b.ga("pp"), b.shl(b.add(i, 1), 2)));
          b.stw(b.add(b.ga("pp"), b.shl(i, 2)), nxt);
        });

        // ---- reflection coefficient -> LAR (piecewise linear) ----
        Vreg ar = abs_of(r);
        Vreg lar = b.copy(ar);
        Vreg seg2 = b.geu(ar, 22118);  // 0.675 in Q15
        Vreg seg3 = b.geu(ar, 31130);  // 0.950 in Q15
        if_then(b, seg2, [&] { b.copy_into(lar, b.add(b.shr(ar, 1), 11059)); });
        if_then(b, seg3, [&] { b.copy_into(lar, b.add(b.shl(ar, 2), -26112)); });
        if_then(b, b.gt(0, r), [&] { b.copy_into(lar, b.neg(lar)); });

        Vreg lar_off = b.add(b.mul(frame, kOrder * 4), b.shl(n, 2));
        b.stw(b.add(b.ga("lar_out"), lar_off), lar);
        b.emit_into(digest, ir::Opcode::Add, {digest, b.bxor(lar, n)});
      });
    });
    b.ret(digest);
  };
  return w;
}

}  // namespace ttsc::workloads
