// Backend-specific IR legalization run after the optimizer, before lowering.
#pragma once

#include "ir/function.hpp"

namespace ttsc::codegen {

/// Scalar (RISC-encoding) constraints: store data must live in a register
/// and a conditional branch cannot test an immediate. TTA moves and the
/// paper's VLIW slot encoding (two immediate-capable source fields) need no
/// such rewrite.
void legalize_scalar_operands(ir::Function& func);

/// Expand ir::Select into mask arithmetic (eq/sub/and/xor/and/ior) for
/// targets without predication support.
void expand_selects(ir::Function& func);

}  // namespace ttsc::codegen
