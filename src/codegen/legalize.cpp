#include "codegen/legalize.hpp"

namespace ttsc::codegen {

using namespace ir;

void legalize_scalar_operands(Function& func) {
  for (Block& block : func.blocks()) {
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      Instr& in = block.instrs[i];
      const bool store_imm_data = is_store(in.op) && in.inputs[1].is_imm();
      const bool branch_imm_cond = in.op == Opcode::Bnz && in.inputs[0].is_imm();
      if (!store_imm_data && !branch_imm_cond) continue;
      const std::size_t operand_index = store_imm_data ? 1 : 0;
      Instr mov;
      mov.op = Opcode::MovI;
      mov.dst = func.new_vreg();
      mov.inputs = {in.inputs[operand_index]};
      const Vreg materialized = mov.dst;
      block.instrs.insert(block.instrs.begin() + static_cast<std::ptrdiff_t>(i), std::move(mov));
      block.instrs[i + 1].inputs[operand_index] = Operand(materialized);
      ++i;  // skip the inserted MovI
    }
  }
}

void expand_selects(Function& func) {
  for (Block& block : func.blocks()) {
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      if (block.instrs[i].op != Opcode::Select) continue;
      const Instr sel = block.instrs[i];
      std::vector<Instr> seq;
      const Vreg is_zero = func.new_vreg();
      seq.push_back(Instr(Opcode::Eq, is_zero, {sel.inputs[0], Operand(std::int64_t{0})}));
      const Vreg mask = func.new_vreg();
      seq.push_back(Instr(Opcode::Sub, mask, {Operand(is_zero), Operand(std::int64_t{1})}));
      const Vreg then_masked = func.new_vreg();
      seq.push_back(Instr(Opcode::And, then_masked, {sel.inputs[1], Operand(mask)}));
      const Vreg inv = func.new_vreg();
      seq.push_back(Instr(Opcode::Xor, inv, {Operand(mask), Operand(std::int64_t{-1})}));
      const Vreg else_masked = func.new_vreg();
      seq.push_back(Instr(Opcode::And, else_masked, {sel.inputs[2], Operand(inv)}));
      seq.push_back(Instr(Opcode::Ior, sel.dst, {Operand(then_masked), Operand(else_masked)}));
      block.instrs.erase(block.instrs.begin() + static_cast<std::ptrdiff_t>(i));
      block.instrs.insert(block.instrs.begin() + static_cast<std::ptrdiff_t>(i),
                          seq.begin(), seq.end());
      i += seq.size() - 1;
    }
  }
}

}  // namespace ttsc::codegen
