// Machine-level program form shared by all backends.
//
// Lowering (codegen/lower.cpp) turns the optimized, fully inlined IR of the
// root function into an MFunction: same block structure, virtual registers
// replaced by physical registers (register file + index) via linear scan
// allocation with spilling, global immediates resolved to absolute
// addresses. The scalar, VLIW and TTA backends consume this one form, so
// every measured difference downstream comes from the programming model,
// mirroring the paper's single-compiler methodology (Section IV).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/opcode.hpp"
#include "mach/machine.hpp"

namespace ttsc::codegen {

struct MOperand {
  enum class Kind : std::uint8_t { Reg, Imm } kind = Kind::Reg;
  mach::PhysReg reg;
  std::int32_t imm = 0;

  MOperand() = default;
  /*implicit*/ MOperand(mach::PhysReg r) : kind(Kind::Reg), reg(r) {}
  static MOperand immediate(std::int32_t v) {
    MOperand o;
    o.kind = Kind::Imm;
    o.imm = v;
    return o;
  }
  bool is_reg() const { return kind == Kind::Reg; }
  bool is_imm() const { return kind == Kind::Imm; }
  bool operator==(const MOperand&) const = default;
};

struct MInstr {
  ir::Opcode op = ir::Opcode::MovI;
  mach::PhysReg dst;               // invalid if none
  std::vector<MOperand> srcs;
  std::vector<std::uint32_t> targets;  // branch targets (block indices)

  bool has_dst() const { return dst.valid(); }
};

struct MBlock {
  std::vector<MInstr> instrs;
};

struct MFunction {
  std::vector<MBlock> blocks;

  // Spill bookkeeping (absolute addresses; the paper's LSU is
  // absolute-addressed and the whole program is inlined, so spill slots are
  // static).
  std::uint32_t spill_base = 0;
  std::uint32_t spill_slots = 0;

  std::size_t num_instrs() const {
    std::size_t n = 0;
    for (const MBlock& b : blocks) n += b.instrs.size();
    return n;
  }
};

/// Registers read by a machine instruction.
inline std::vector<mach::PhysReg> uses_of(const MInstr& in) {
  std::vector<mach::PhysReg> uses;
  for (const MOperand& s : in.srcs)
    if (s.is_reg()) uses.push_back(s.reg);
  return uses;
}

}  // namespace ttsc::codegen
