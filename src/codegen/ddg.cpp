#include "codegen/ddg.hpp"

#include <map>

namespace ttsc::codegen {

using ir::Opcode;
using mach::PhysReg;

int access_bytes(Opcode op) {
  switch (op) {
    case Opcode::Ldw:
    case Opcode::Stw:
      return 4;
    case Opcode::Ldh:
    case Opcode::Ldhu:
    case Opcode::Sth:
      return 2;
    case Opcode::Ldq:
    case Opcode::Ldqu:
    case Opcode::Stq:
      return 1;
    default:
      TTSC_ASSERT(false, "not a memory opcode");
      return 0;
  }
}

bool may_alias(const MInstr& a, const MInstr& b) {
  TTSC_ASSERT(ir::is_memory(a.op) && ir::is_memory(b.op), "may_alias on non-memory op");
  const MOperand& addr_a = a.srcs[0];
  const MOperand& addr_b = b.srcs[0];
  if (!addr_a.is_imm() || !addr_b.is_imm()) return true;
  const std::int64_t lo_a = addr_a.imm;
  const std::int64_t hi_a = lo_a + access_bytes(a.op);
  const std::int64_t lo_b = addr_b.imm;
  const std::int64_t hi_b = lo_b + access_bytes(b.op);
  return lo_a < hi_b && lo_b < hi_a;
}

void BlockDdg::add_edge(std::uint32_t from, std::uint32_t to, DepKind kind, PhysReg reg) {
  const std::uint32_t index = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(DdgEdge{from, to, kind, reg});
  succs_[from].push_back(index);
  preds_[to].push_back(index);
}

BlockDdg::BlockDdg(const MBlock& block) {
  const std::uint32_t n = static_cast<std::uint32_t>(block.instrs.size());
  preds_.resize(n);
  succs_.resize(n);

  // Register dependences via last-def / uses-since-last-def tracking.
  struct RegState {
    std::int64_t last_def = -1;
    std::vector<std::uint32_t> uses_since_def;
  };
  std::map<PhysReg, RegState> regs;

  // Memory dependences: conservative pairwise scan over stores/loads.
  std::vector<std::uint32_t> mem_ops;

  for (std::uint32_t i = 0; i < n; ++i) {
    const MInstr& in = block.instrs[i];

    for (PhysReg u : uses_of(in)) {
      RegState& st = regs[u];
      if (st.last_def >= 0) {
        add_edge(static_cast<std::uint32_t>(st.last_def), i, DepKind::Raw, u);
      }
      st.uses_since_def.push_back(i);
    }
    if (in.has_dst()) {
      RegState& st = regs[in.dst];
      if (st.last_def >= 0) {
        add_edge(static_cast<std::uint32_t>(st.last_def), i, DepKind::Waw, in.dst);
      }
      for (std::uint32_t u : st.uses_since_def) {
        if (u != i) add_edge(u, i, DepKind::War, in.dst);
      }
      st.last_def = i;
      st.uses_since_def.clear();
      // A same-instruction read of dst still forms its RAW edge above; the
      // instruction reads before it writes.
    }

    if (ir::is_memory(in.op)) {
      for (std::uint32_t j : mem_ops) {
        const MInstr& prev = block.instrs[j];
        const bool prev_store = ir::is_store(prev.op);
        const bool cur_store = ir::is_store(in.op);
        if (!prev_store && !cur_store) continue;  // load-load never conflicts
        if (!may_alias(prev, in)) continue;
        if (prev_store && cur_store) {
          add_edge(j, i, DepKind::MemWaw);
        } else if (prev_store) {
          add_edge(j, i, DepKind::MemRaw);
        } else {
          add_edge(j, i, DepKind::MemWar);
        }
      }
      mem_ops.push_back(i);
    }
  }
}

}  // namespace ttsc::codegen
