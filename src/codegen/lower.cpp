#include "codegen/lower.hpp"

#include <algorithm>
#include <map>

#include "ir/analysis.hpp"
#include "obs/trace.hpp"
#include "support/bits.hpp"
#include "support/strings.hpp"

namespace ttsc::codegen {

using ir::BlockId;
using ir::Function;
using ir::Instr;
using ir::Opcode;
using ir::Operand;
using ir::Vreg;
using mach::Machine;
using mach::PhysReg;

namespace {

/// Live interval of a vreg over linearized positions (reads at 2p, writes
/// at 2p+1, block boundaries at the enclosing positions).
struct Interval {
  std::uint32_t vreg = 0;
  std::int64_t start = -1;
  std::int64_t end = -1;
  PhysReg assigned;
  bool spilled = false;
  std::int32_t spill_slot = -1;
};

struct Allocator {
  const Machine& machine;
  std::vector<std::vector<bool>> free_regs;  // per RF, per index
  std::vector<PhysReg> scratch;

  explicit Allocator(const Machine& m) : machine(m) {
    for (const mach::RegisterFile& rf : m.rfs) {
      free_regs.emplace_back(static_cast<std::size_t>(rf.size), true);
    }
    // Reserve two scratch registers for spill-code (highest indices, spread
    // over the first two register files when partitioned).
    const int rf_a = 0;
    const int rf_b = m.rfs.size() > 1 ? 1 : 0;
    PhysReg s0{static_cast<std::int16_t>(rf_a),
               static_cast<std::int16_t>(m.rfs[static_cast<std::size_t>(rf_a)].size - 1)};
    const int b_index = rf_b == rf_a ? m.rfs[static_cast<std::size_t>(rf_b)].size - 2
                                     : m.rfs[static_cast<std::size_t>(rf_b)].size - 1;
    PhysReg s1{static_cast<std::int16_t>(rf_b), static_cast<std::int16_t>(b_index)};
    scratch = {s0, s1};
    for (PhysReg s : scratch) {
      free_regs[static_cast<std::size_t>(s.rf)][static_cast<std::size_t>(s.index)] = false;
    }
  }

  /// Pick a register from the RF with the most free registers (balances
  /// pressure across partitioned files).
  PhysReg try_alloc() {
    int best_rf = -1;
    int best_free = 0;
    for (std::size_t r = 0; r < free_regs.size(); ++r) {
      const int n = static_cast<int>(std::count(free_regs[r].begin(), free_regs[r].end(), true));
      if (n > best_free) {
        best_free = n;
        best_rf = static_cast<int>(r);
      }
    }
    if (best_rf < 0) return PhysReg{};
    auto& file = free_regs[static_cast<std::size_t>(best_rf)];
    for (std::size_t i = 0; i < file.size(); ++i) {
      if (file[i]) {
        file[i] = false;
        return PhysReg{static_cast<std::int16_t>(best_rf), static_cast<std::int16_t>(i)};
      }
    }
    return PhysReg{};
  }

  void release(PhysReg r) {
    free_regs[static_cast<std::size_t>(r.rf)][static_cast<std::size_t>(r.index)] = true;
  }
};

}  // namespace

LowerResult lower(const ir::Module& module, const std::string& root, const Machine& machine) {
  obs::Span span("codegen.lower", [&] {
    return obs::SpanArgs{{"func", root}, {"machine", machine.name}};
  });
  const Function& f = module.function(root);
  for (const ir::Block& b : f.blocks()) {
    for (const Instr& in : b.instrs) {
      if (in.op == Opcode::Call) {
        throw Error("lower: calls must be inlined before lowering (" + f.name() + ")");
      }
    }
  }

  const ir::DataLayout layout = module.layout();
  const ir::Cfg cfg(f);
  const ir::Liveness live(f, cfg);

  // ---- linear positions -----------------------------------------------------
  std::vector<std::int64_t> block_start(f.num_blocks());
  std::vector<std::int64_t> block_end(f.num_blocks());
  std::int64_t pos = 0;
  for (BlockId b = 0; b < f.num_blocks(); ++b) {
    block_start[b] = pos;
    pos += static_cast<std::int64_t>(f.block(b).instrs.size());
    block_end[b] = pos - 1;
  }

  // ---- intervals --------------------------------------------------------------
  std::map<std::uint32_t, Interval> by_vreg;
  auto touch = [&](Vreg v, std::int64_t at) {
    Interval& iv = by_vreg[v.id];
    iv.vreg = v.id;
    if (iv.start < 0 || at < iv.start) iv.start = at;
    if (at > iv.end) iv.end = at;
  };
  for (std::uint32_t p = 0; p < f.num_params(); ++p) touch(Vreg(p), 0);
  {
    std::int64_t q = 0;
    for (BlockId b = 0; b < f.num_blocks(); ++b) {
      for (const Instr& in : f.block(b).instrs) {
        for (Vreg u : ir::uses_of(in)) touch(u, 2 * q);
        if (in.dst.valid()) touch(in.dst, 2 * q + 1);
        ++q;
      }
      const std::uint32_t nv = f.num_vregs();
      for (std::uint32_t v = 0; v < nv; ++v) {
        if (live.live_in(b)[v]) touch(Vreg(v), 2 * block_start[b]);
        if (live.live_out(b)[v]) touch(Vreg(v), 2 * block_end[b] + 1);
      }
    }
  }

  // ---- linear scan ------------------------------------------------------------
  std::vector<Interval*> order;
  order.reserve(by_vreg.size());
  for (auto& [id, iv] : by_vreg) order.push_back(&iv);
  std::sort(order.begin(), order.end(), [](const Interval* a, const Interval* b) {
    return a->start != b->start ? a->start < b->start : a->vreg < b->vreg;
  });

  Allocator alloc(machine);
  std::vector<Interval*> active;
  std::int32_t next_spill_slot = 0;
  int values_spilled = 0;
  std::vector<int> spilled_per_rf(machine.rfs.size(), 0);

  for (Interval* iv : order) {
    // Expire finished intervals.
    std::erase_if(active, [&](Interval* a) {
      if (a->end < iv->start) {
        alloc.release(a->assigned);
        return true;
      }
      return false;
    });
    PhysReg reg = alloc.try_alloc();
    if (reg.valid()) {
      iv->assigned = reg;
      active.push_back(iv);
      continue;
    }
    // Spill the active interval with the furthest end (or this one).
    Interval* victim = iv;
    for (Interval* a : active) {
      if (a->end > victim->end) victim = a;
    }
    ++values_spilled;
    if (victim == iv) {
      ++spilled_per_rf[0];
      iv->spilled = true;
      iv->spill_slot = next_spill_slot++;
    } else {
      ++spilled_per_rf[static_cast<std::size_t>(victim->assigned.rf)];
      iv->assigned = victim->assigned;
      victim->spilled = true;
      victim->spill_slot = next_spill_slot++;
      victim->assigned = PhysReg{};
      std::erase(active, victim);
      active.push_back(iv);
    }
  }

  // ---- rewrite ---------------------------------------------------------------
  const std::uint32_t spill_base =
      static_cast<std::uint32_t>(round_up(layout.end() + 64, 16));
  auto slot_addr = [&](std::int32_t slot) {
    return static_cast<std::int32_t>(spill_base + 4u * static_cast<std::uint32_t>(slot));
  };

  MFunction out;
  out.blocks.resize(f.num_blocks());
  out.spill_base = spill_base;
  out.spill_slots = static_cast<std::uint32_t>(next_spill_slot);
  int spills_inserted = 0;

  auto resolve_imm = [&](const ir::Imm& imm) -> std::int32_t {
    if (imm.is_global()) {
      return static_cast<std::int32_t>(layout.address_of(imm.global) +
                                       static_cast<std::uint32_t>(imm.value));
    }
    return static_cast<std::int32_t>(imm.value);
  };

  for (BlockId b = 0; b < f.num_blocks(); ++b) {
    MBlock& mb = out.blocks[b];
    for (const Instr& in : f.block(b).instrs) {
      MInstr mi;
      mi.op = in.op;
      mi.targets.assign(in.targets.begin(), in.targets.end());

      int scratch_used = 0;
      for (const Operand& src : in.inputs) {
        if (src.is_imm()) {
          mi.srcs.push_back(MOperand::immediate(resolve_imm(src.imm)));
          continue;
        }
        const Interval& iv = by_vreg.at(src.reg.id);
        if (!iv.spilled) {
          mi.srcs.push_back(MOperand(iv.assigned));
          continue;
        }
        // Reload into a scratch register just before this instruction.
        TTSC_ASSERT(scratch_used < 2, "more than two spilled sources in one instruction");
        const PhysReg sc = alloc.scratch[static_cast<std::size_t>(scratch_used++)];
        MInstr reload;
        reload.op = Opcode::Ldw;
        reload.dst = sc;
        reload.srcs = {MOperand::immediate(slot_addr(iv.spill_slot))};
        mb.instrs.push_back(std::move(reload));
        ++spills_inserted;
        mi.srcs.push_back(MOperand(sc));
      }

      bool store_after = false;
      std::int32_t store_slot = 0;
      if (in.dst.valid()) {
        const Interval& iv = by_vreg.at(in.dst.id);
        if (iv.spilled) {
          mi.dst = alloc.scratch[0];
          store_after = true;
          store_slot = slot_addr(iv.spill_slot);
        } else {
          mi.dst = iv.assigned;
        }
      }

      // Register allocation may map a copy's source and destination to the
      // same physical register; such copies are complete no-ops.
      const bool nop_copy = mi.op == Opcode::Copy && mi.dst.valid() && mi.srcs[0].is_reg() &&
                            mi.srcs[0].reg == mi.dst;
      if (!nop_copy) mb.instrs.push_back(std::move(mi));
      if (store_after) {
        MInstr spill;
        spill.op = Opcode::Stw;
        spill.srcs = {MOperand::immediate(store_slot), MOperand(alloc.scratch[0])};
        mb.instrs.push_back(std::move(spill));
        ++spills_inserted;
      }
    }
    // The hardware bnz falls through when not taken; when the IR
    // fallthrough target is not the next block, add an explicit jump.
    if (!mb.instrs.empty() && mb.instrs.back().op == Opcode::Bnz &&
        mb.instrs.back().targets[1] != b + 1) {
      MInstr jmp;
      jmp.op = Opcode::Jump;
      jmp.targets = {mb.instrs.back().targets[1]};
      mb.instrs.push_back(std::move(jmp));
    }
  }

  LowerResult result;
  result.func = std::move(out);
  result.spills_inserted = spills_inserted;
  result.values_spilled = values_spilled;
  result.spilled_per_rf = std::move(spilled_per_rf);
  return result;
}

MLiveness::MLiveness(const MFunction& func, const Machine& machine) {
  // Dense key space over all physical registers.
  rf_base_.resize(machine.rfs.size() + 1, 0);
  for (std::size_t r = 0; r < machine.rfs.size(); ++r) {
    rf_base_[r + 1] = rf_base_[r] + static_cast<std::size_t>(machine.rfs[r].size);
  }
  const std::size_t nregs = rf_base_.back();
  const std::size_t nb = func.blocks.size();
  live_out_.assign(nb, std::vector<bool>(nregs, false));
  live_in_.assign(nb, std::vector<bool>(nregs, false));
  auto& live_in = live_in_;
  std::vector<std::vector<bool>> gen(nb, std::vector<bool>(nregs, false));
  std::vector<std::vector<bool>> kill(nb, std::vector<bool>(nregs, false));
  std::vector<std::vector<std::uint32_t>> succs(nb);

  for (std::size_t b = 0; b < nb; ++b) {
    for (const MInstr& in : func.blocks[b].instrs) {
      for (mach::PhysReg u : uses_of(in)) {
        if (!kill[b][key(u)]) gen[b][key(u)] = true;
      }
      if (in.has_dst()) kill[b][key(in.dst)] = true;
    }
    // Lowered blocks may end with a Bnz/Jump pair; union the targets of
    // every control instruction.
    for (const MInstr& in : func.blocks[b].instrs) {
      if (ir::is_branch(in.op)) {
        succs[b].insert(succs[b].end(), in.targets.begin(), in.targets.end());
      }
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = nb; b-- > 0;) {
      for (std::uint32_t s : succs[b]) {
        for (std::size_t k = 0; k < nregs; ++k) {
          if (live_in[s][k] && !live_out_[b][k]) {
            live_out_[b][k] = true;
            changed = true;
          }
        }
      }
      for (std::size_t k = 0; k < nregs; ++k) {
        const bool want = gen[b][k] || (live_out_[b][k] && !kill[b][k]);
        if (want && !live_in[b][k]) {
          live_in[b][k] = true;
          changed = true;
        }
      }
    }
  }
}

}  // namespace ttsc::codegen
