// IR -> MFunction lowering: register allocation + immediate resolution.
#pragma once

#include "codegen/minstr.hpp"
#include "ir/module.hpp"

namespace ttsc::codegen {

struct LowerResult {
  MFunction func;
  int spills_inserted = 0;     // reload/store instructions added
  int values_spilled = 0;      // live ranges sent to memory
  /// Live ranges evicted per register-file partition (index = RF; sums to
  /// values_spilled). An interval spilled without ever holding a register
  /// (every file full, no further-ending victim) is charged to partition 0.
  std::vector<int> spilled_per_rf;
};

/// Lower the (fully inlined, call-free) function `root` of `module` onto
/// `machine`'s register files. Throws ttsc::Error if calls remain or if the
/// machine cannot host the program.
LowerResult lower(const ir::Module& module, const std::string& root,
                  const mach::Machine& machine);

/// Per-block liveness over physical registers (used by the TTA scheduler's
/// dead-result-move elimination and by schedulers to bound block lengths).
class MLiveness {
 public:
  MLiveness(const MFunction& func, const mach::Machine& machine);

  bool live_out(std::uint32_t block, mach::PhysReg reg) const {
    return live_out_[block][key(reg)];
  }

  /// Live on entry to `block` (used by the trace schedulers to force
  /// pending results to materialize before a side exit whose target still
  /// needs them).
  bool live_in(std::uint32_t block, mach::PhysReg reg) const {
    return live_in_[block][key(reg)];
  }

 private:
  std::size_t key(mach::PhysReg r) const {
    return rf_base_[static_cast<std::size_t>(r.rf)] + static_cast<std::size_t>(r.index);
  }
  std::vector<std::size_t> rf_base_;
  std::vector<std::vector<bool>> live_out_;
  std::vector<std::vector<bool>> live_in_;
};

}  // namespace ttsc::codegen
