// Per-block data dependence graph over machine instructions.
//
// Edges always point forward in program order. The DDG is shared by the
// VLIW and TTA schedulers; each scheduler assigns model-specific minimum
// delays to the edge kinds (e.g. a register RAW edge costs producer
// latency + 1 through a register file without forwarding, but only the
// producer latency over a TTA software bypass).
#pragma once

#include <cstdint>
#include <vector>

#include "codegen/minstr.hpp"

namespace ttsc::codegen {

enum class DepKind : std::uint8_t {
  Raw,     // register true dependence
  War,     // register anti dependence
  Waw,     // register output dependence
  MemRaw,  // store -> load (may alias)
  MemWar,  // load -> store (may alias)
  MemWaw,  // store -> store (may alias)
};

struct DdgEdge {
  std::uint32_t from;
  std::uint32_t to;
  DepKind kind;
  mach::PhysReg reg;  // valid for register dependences
};

class BlockDdg {
 public:
  explicit BlockDdg(const MBlock& block);

  std::uint32_t size() const { return static_cast<std::uint32_t>(preds_.size()); }
  const std::vector<DdgEdge>& edges() const { return edges_; }
  const std::vector<std::uint32_t>& pred_edges(std::uint32_t node) const { return preds_[node]; }
  const std::vector<std::uint32_t>& succ_edges(std::uint32_t node) const { return succs_[node]; }
  const DdgEdge& edge(std::uint32_t index) const { return edges_[index]; }

 private:
  void add_edge(std::uint32_t from, std::uint32_t to, DepKind kind, mach::PhysReg reg = {});

  std::vector<DdgEdge> edges_;
  std::vector<std::vector<std::uint32_t>> preds_;  // edge indices into edges_
  std::vector<std::vector<std::uint32_t>> succs_;
};

/// Conservative may-alias test between the address operands of two memory
/// instructions: absolute (immediate) addresses with non-overlapping access
/// ranges are independent, anything involving a register address may alias.
bool may_alias(const MInstr& a, const MInstr& b);

/// Access width in bytes of a load/store opcode.
int access_bytes(ir::Opcode op);

}  // namespace ttsc::codegen
