#include "explore/explore.hpp"

#include "fpga/model.hpp"
#include "report/driver.hpp"
#include "support/stats.hpp"
#include "tta/tta.hpp"

namespace ttsc::explore {

DesignPoint evaluate(const mach::Machine& machine,
                     const std::vector<workloads::Workload>& suite,
                     report::ModuleCache* cache, support::ThreadPool* pool) {
  TTSC_ASSERT(machine.model == mach::Model::Tta, "exploration targets TTA machines");
  DesignPoint point;
  point.machine = machine;
  point.buses = static_cast<int>(machine.buses.size());
  point.instruction_bits = tta::instruction_bits(machine);

  const fpga::AreaReport area = fpga::estimate_area(machine);
  const fpga::TimingReport timing = fpga::estimate_timing(machine);
  point.core_lut = area.core_lut;
  point.fmax_mhz = timing.fmax_mhz;

  report::ModuleCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  // Per-suite-index slots, reduced in order below: deterministic whether
  // the cells run serially or on the pool.
  std::vector<report::RunOutcome> outcomes(suite.size());
  auto run_cell = [&](std::size_t i) {
    outcomes[i] = report::compile_and_run_prebuilt(cache->get(suite[i]), suite[i], machine, {},
                                                   nullptr, {}, cache);
  };
  if (pool != nullptr) {
    support::parallel_for(*pool, suite.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < suite.size(); ++i) run_cell(i);
  }

  std::vector<double> cycles;
  std::vector<double> runtimes;
  std::vector<double> images;
  for (const report::RunOutcome& r : outcomes) {
    cycles.push_back(static_cast<double>(r.cycles));
    runtimes.push_back(static_cast<double>(r.cycles) / timing.fmax_mhz);
    images.push_back(static_cast<double>(r.image_bits));
  }
  point.geomean_cycles = geomean(cycles);
  point.geomean_runtime_us = geomean(runtimes);
  point.geomean_image_bits = static_cast<std::uint64_t>(geomean(images));
  return point;
}

std::vector<DesignPoint> explore_bus_merging(const mach::Machine& start,
                                             const std::vector<workloads::Workload>& suite,
                                             double max_cycle_overhead) {
  // One module build per workload and one thread pool for the whole greedy
  // walk: every candidate machine re-evaluates the same suite.
  report::ModuleCache cache;
  support::ThreadPool pool;
  std::vector<DesignPoint> trace;
  DesignPoint baseline = evaluate(start, suite, &cache, &pool);
  baseline.accepted = true;
  const double budget = baseline.geomean_cycles * (1.0 + max_cycle_overhead);
  trace.push_back(baseline);

  mach::Machine current = start;
  while (current.buses.size() > 1) {
    // Merge: drop the last bus, keeping full connectivity on the rest (all
    // buses are interchangeable in a fully connected IC, so "which" bus is
    // immaterial; what matters is the transport capacity).
    mach::Machine candidate = current;
    candidate.buses.pop_back();
    candidate.name = start.name + "-merged" + std::to_string(candidate.buses.size());
    try {
      candidate.validate();
      DesignPoint point = evaluate(candidate, suite, &cache, &pool);
      point.accepted = point.geomean_cycles <= budget;
      trace.push_back(point);
      if (!point.accepted) break;
      current = std::move(candidate);
    } catch (const Error&) {
      break;  // no longer schedulable/valid: stop merging
    }
  }
  return trace;
}

}  // namespace ttsc::explore
