#include "explore/explore.hpp"

#include "fpga/model.hpp"
#include "report/driver.hpp"
#include "support/stats.hpp"
#include "tta/tta.hpp"

namespace ttsc::explore {

DesignPoint evaluate(const mach::Machine& machine,
                     const std::vector<workloads::Workload>& suite) {
  TTSC_ASSERT(machine.model == mach::Model::Tta, "exploration targets TTA machines");
  DesignPoint point;
  point.machine = machine;
  point.buses = static_cast<int>(machine.buses.size());
  point.instruction_bits = tta::instruction_bits(machine);

  const fpga::AreaReport area = fpga::estimate_area(machine);
  const fpga::TimingReport timing = fpga::estimate_timing(machine);
  point.core_lut = area.core_lut;
  point.fmax_mhz = timing.fmax_mhz;

  std::vector<double> cycles;
  std::vector<double> runtimes;
  std::vector<double> images;
  for (const workloads::Workload& w : suite) {
    const ir::Module optimized = report::build_optimized(w);
    const report::RunOutcome r = report::compile_and_run_prebuilt(optimized, w, machine);
    cycles.push_back(static_cast<double>(r.cycles));
    runtimes.push_back(static_cast<double>(r.cycles) / timing.fmax_mhz);
    images.push_back(static_cast<double>(r.image_bits));
  }
  point.geomean_cycles = geomean(cycles);
  point.geomean_runtime_us = geomean(runtimes);
  point.geomean_image_bits = static_cast<std::uint64_t>(geomean(images));
  return point;
}

std::vector<DesignPoint> explore_bus_merging(const mach::Machine& start,
                                             const std::vector<workloads::Workload>& suite,
                                             double max_cycle_overhead) {
  std::vector<DesignPoint> trace;
  DesignPoint baseline = evaluate(start, suite);
  baseline.accepted = true;
  const double budget = baseline.geomean_cycles * (1.0 + max_cycle_overhead);
  trace.push_back(baseline);

  mach::Machine current = start;
  while (current.buses.size() > 1) {
    // Merge: drop the last bus, keeping full connectivity on the rest (all
    // buses are interchangeable in a fully connected IC, so "which" bus is
    // immaterial; what matters is the transport capacity).
    mach::Machine candidate = current;
    candidate.buses.pop_back();
    candidate.name = start.name + "-merged" + std::to_string(candidate.buses.size());
    try {
      candidate.validate();
      DesignPoint point = evaluate(candidate, suite);
      point.accepted = point.geomean_cycles <= budget;
      trace.push_back(point);
      if (!point.accepted) break;
      current = std::move(candidate);
    } catch (const Error&) {
      break;  // no longer schedulable/valid: stop merging
    }
  }
  return trace;
}

}  // namespace ttsc::explore
