// Greedy transport-triggered interconnect exploration (Viitanen et al.
// [25]: "Heuristics for greedy transport triggered architecture
// interconnect exploration") — the procedure behind the paper's bus-merged
// (bm-tta) design points.
//
// Starting from a fully connected TTA, buses are removed one at a time as
// long as the geometric-mean cycle count over a workload suite stays within
// a budget; each step reports cycles, the automatically generated
// instruction width, and the modelled FPGA cost, tracing the
// area/code-size/performance frontier of Section III-D.
#pragma once

#include <vector>

#include "mach/machine.hpp"
#include "report/parallel_runner.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace ttsc::explore {

struct DesignPoint {
  mach::Machine machine;
  int buses = 0;
  double geomean_cycles = 0.0;
  int instruction_bits = 0;
  std::uint64_t geomean_image_bits = 0;
  int core_lut = 0;
  double fmax_mhz = 0.0;
  double geomean_runtime_us = 0.0;
  bool accepted = false;  // within the cycle budget
};

/// Evaluate one machine over a workload suite (all runs cross-checked
/// against the reference interpreter). With `cache` the per-workload
/// optimized modules are reused across evaluations (exploration evaluates
/// the same suite on dozens of candidate machines); with `pool` the suite
/// is fanned out across its threads. The reduction order is the suite
/// order, so results are identical with or without a pool.
DesignPoint evaluate(const mach::Machine& machine,
                     const std::vector<workloads::Workload>& suite,
                     report::ModuleCache* cache = nullptr,
                     support::ThreadPool* pool = nullptr);

/// Greedy bus-merging exploration: drop one bus per step (rebuilding full
/// connectivity over the remaining buses) while the geomean cycle count
/// stays within `max_cycle_overhead` (e.g. 0.05 = +5%) of the starting
/// machine. Returns every evaluated point, accepted or not, ending with the
/// last accepted design.
std::vector<DesignPoint> explore_bus_merging(const mach::Machine& start,
                                             const std::vector<workloads::Workload>& suite,
                                             double max_cycle_overhead);

}  // namespace ttsc::explore
