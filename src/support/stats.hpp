// Small statistics helpers for the experiment harnesses.
#pragma once

#include <cmath>
#include <span>

#include "support/assert.hpp"

namespace ttsc {

/// Geometric mean of strictly positive values (the paper uses geomean over
/// the eight CHStone benchmarks in Fig. 6).
inline double geomean(std::span<const double> values) {
  TTSC_ASSERT(!values.empty(), "geomean of empty set");
  double log_sum = 0.0;
  for (double v : values) {
    TTSC_ASSERT(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace ttsc
