// Diagnostics for the ttsc toolchain.
//
// The toolchain is a compiler: internal invariant violations should abort
// loudly with context (TTSC_ASSERT), while malformed user input (a machine
// description that cannot be validated, an IR module that fails
// verification) raises ttsc::Error which callers may catch and report.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ttsc {

/// Error raised for invalid user-visible input (bad machine description,
/// unverifiable IR, unschedulable program). Internal bugs use TTSC_ASSERT.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

[[noreturn]] inline void fatal(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "ttsc fatal: %s:%d: %s\n", file, line, message.c_str());
  std::abort();
}

}  // namespace ttsc

/// Always-on invariant check. The toolchain is not performance critical
/// enough to justify compiling assertions out, and a silently-corrupt
/// schedule is far more expensive than the branch.
#define TTSC_ASSERT(cond, msg)                                  \
  do {                                                          \
    if (!(cond)) ::ttsc::fatal(__FILE__, __LINE__, (msg));      \
  } while (false)

#define TTSC_UNREACHABLE(msg) ::ttsc::fatal(__FILE__, __LINE__, (msg))
