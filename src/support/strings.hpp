// String formatting helpers used by printers and table renderers.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace ttsc {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] inline std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(size > 0 ? static_cast<std::size_t>(size) : 0, '\0');
  if (size > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

/// Join elements with a separator.
inline std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace ttsc
