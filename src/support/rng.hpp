// Deterministic pseudo-random generator for workload input synthesis.
//
// Workload inputs must be bit-identical across runs and platforms so that
// simulator checksums can be asserted exactly in tests; std::mt19937 would
// work but splitmix64 is smaller and unambiguous.
#pragma once

#include <cstdint>

namespace ttsc {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound) for bound >= 1.
  constexpr std::uint32_t next_below(std::uint32_t bound) {
    return static_cast<std::uint32_t>(next() % bound);
  }

  constexpr std::uint32_t next_u32() { return static_cast<std::uint32_t>(next() >> 32); }

 private:
  std::uint64_t state_;
};

}  // namespace ttsc
