// Deterministic pseudo-random generator for workload input synthesis.
//
// Workload inputs must be bit-identical across runs and platforms so that
// simulator checksums can be asserted exactly in tests; std::mt19937 would
// work but splitmix64 is smaller and unambiguous.
#pragma once

#include <cstdint>

namespace ttsc {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Value in [0, bound) for bound >= 1, by modulo reduction. FROZEN: the
  /// modulo bias (negligible for the small bounds used) is part of the
  /// generator's output contract — workload inputs and golden checksums are
  /// bit-exact functions of it, so changing this would invalidate every
  /// golden file. New samplers that need uniformity use
  /// next_below_unbiased instead.
  constexpr std::uint32_t next_below(std::uint32_t bound) {
    return static_cast<std::uint32_t>(next() % bound);
  }

  /// Uniform value in [0, bound) for bound >= 1, without modulo bias
  /// (Lemire's multiply-shift with rejection of the biased low range).
  /// Used for fault-site sampling, where a bias towards low bit/cycle
  /// indices would systematically skew campaign statistics. Draws one u32
  /// per attempt; rejection probability is < bound / 2^32.
  constexpr std::uint32_t next_below_unbiased(std::uint32_t bound) {
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto low = static_cast<std::uint32_t>(m);
    if (low < bound) {
      // Reject draws from the partial (biased) interval: anything below
      // 2^32 mod bound maps to an over-represented remainder.
      const std::uint32_t threshold = static_cast<std::uint32_t>(-bound) % bound;
      while (low < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * bound;
        low = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  constexpr std::uint32_t next_u32() { return static_cast<std::uint32_t>(next() >> 32); }

 private:
  std::uint64_t state_;
};

}  // namespace ttsc
