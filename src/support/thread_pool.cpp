#include "support/thread_pool.hpp"

#include <atomic>

#include "support/assert.hpp"

namespace ttsc::support {

namespace {
// Identity of the pool (if any) the current thread works for; the
// nested-submit deadlock guard keys off this.
thread_local const ThreadPool* tls_owner = nullptr;
// Index of the current thread within its owning pool (-1 off-pool); see
// ThreadPool::current_worker_id().
thread_local int tls_worker_id = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads <= 0) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return tls_owner == this; }

int ThreadPool::current_worker_id() { return tls_worker_id; }

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TTSC_ASSERT(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop(int index) {
  tls_owner = this;
  tls_worker_id = index;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted work always runs, so
      // futures obtained before the destructor never dangle unfulfilled.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the future
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  const std::size_t tasks =
      std::min<std::size_t>(n, static_cast<std::size_t>(pool.size()));
  std::vector<std::future<void>> pending;
  pending.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) pending.push_back(pool.submit(drain));
  for (std::future<void>& f : pending) f.get();  // drain never throws
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace ttsc::support
