// Per-stage timing/counter instrumentation for the toolchain pipeline.
//
// A Timeline accumulates wall time and invocation counts for the six
// pipeline stages (frontend, opt, regalloc, schedule, predecode, simulate)
// plus a set
// of named counters (modules built, cells run, cycles simulated, spills).
// All mutation is mutex-protected so one Timeline can be shared by every
// worker of a parallel sweep; the render() text is the `--stats` section
// the bench harnesses print.
//
// Timing can be recorded two ways: explicitly via add_seconds(), or with an
// RAII Timeline::Scope. Scopes are nesting-aware per thread: a scope opened
// inside another scope of the SAME stage on the same thread contributes
// nothing (the outermost scope already covers its interval), so recursive
// helpers cannot double-count a stage.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/strings.hpp"

namespace ttsc::support {

enum class Stage : int { kFrontend = 0, kOpt, kRegalloc, kSchedule, kPredecode, kSimulate };

inline constexpr int kNumStages = 6;

inline const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kFrontend: return "frontend";
    case Stage::kOpt: return "opt";
    case Stage::kRegalloc: return "regalloc";
    case Stage::kSchedule: return "schedule";
    case Stage::kPredecode: return "predecode";
    case Stage::kSimulate: return "simulate";
  }
  return "?";
}

/// Wall time of one pipeline run broken down by stage (seconds). Carried in
/// report::RunOutcome so every grid cell exposes where its time went.
struct StageSeconds {
  double frontend = 0.0;
  double opt = 0.0;
  double regalloc = 0.0;
  double schedule = 0.0;
  double predecode = 0.0;
  double simulate = 0.0;

  double total() const { return frontend + opt + regalloc + schedule + predecode + simulate; }
};

class Timeline {
 public:
  Timeline() = default;
  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// Record one timed invocation of `stage`.
  void add_seconds(Stage stage, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    seconds_[index(stage)] += seconds;
    ++calls_[index(stage)];
  }

  /// Bump a named counter (creates it at zero on first use).
  void bump(const std::string& counter, std::uint64_t delta = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[counter] += delta;
  }

  double seconds(Stage stage) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seconds_[index(stage)];
  }

  std::uint64_t calls(Stage stage) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return calls_[index(stage)];
  }

  /// Value of a named counter; zero when it was never bumped.
  std::uint64_t counter(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Fold another timeline's stages and counters into this one.
  void merge(const Timeline& other) {
    std::scoped_lock lock(mutex_, other.mutex_);  // deadlock-free ordering
    for (int i = 0; i < kNumStages; ++i) {
      seconds_[static_cast<std::size_t>(i)] += other.seconds_[static_cast<std::size_t>(i)];
      calls_[static_cast<std::size_t>(i)] += other.calls_[static_cast<std::size_t>(i)];
    }
    for (const auto& [name, value] : other.counters_) counters_[name] += value;
  }

  /// The `--stats` report section.
  std::string render() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "-- stats: toolchain stage profile --\n";
    out += format("%-10s %8s %10s\n", "stage", "calls", "wall_s");
    double total = 0.0;
    for (int i = 0; i < kNumStages; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      out += format("%-10s %8llu %10.3f\n", stage_name(static_cast<Stage>(i)),
                    static_cast<unsigned long long>(calls_[idx]), seconds_[idx]);
      total += seconds_[idx];
    }
    out += format("%-10s %8s %10.3f\n", "total", "", total);
    if (!counters_.empty()) {
      out += "counters:\n";
      for (const auto& [name, value] : counters_) {
        out += format("  %-24s %12llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
      }
    }
    return out;
  }

  /// RAII stage timer. Nesting-aware: see the header comment.
  class Scope {
   public:
    Scope(Timeline& timeline, Stage stage)
        : timeline_(&timeline),
          stage_(stage),
          prev_(top()),
          start_(std::chrono::steady_clock::now()) {
      for (const Scope* p = prev_; p != nullptr; p = p->prev_) {
        if (p->timeline_ == timeline_ && p->stage_ == stage_) {
          nested_ = true;
          break;
        }
      }
      top() = this;
    }

    ~Scope() {
      top() = prev_;
      if (nested_) return;
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      timeline_->add_seconds(stage_, elapsed.count());
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    static Scope*& top() {
      thread_local Scope* tls_top = nullptr;
      return tls_top;
    }

    Timeline* timeline_;
    Stage stage_;
    Scope* prev_;
    bool nested_ = false;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  static std::size_t index(Stage s) { return static_cast<std::size_t>(s); }

  mutable std::mutex mutex_;
  std::array<double, kNumStages> seconds_{};
  std::array<std::uint64_t, kNumStages> calls_{};
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace ttsc::support
