// Fixed-size thread pool for the experiment engine.
//
// Deliberately minimal: a FIFO queue, N worker threads, futures for result
// and exception transport, and no work stealing — experiment grids are
// drained through an atomic index (parallel_for) so there is nothing to
// steal. Two properties the engine relies on:
//
//  * Nested-submit deadlock guard: a task submitted from one of the pool's
//    own worker threads executes inline on that worker instead of being
//    queued. A saturated pool whose tasks submit-and-wait therefore cannot
//    deadlock (the wait observes a completed future).
//  * Deterministic error propagation: parallel_for captures one exception
//    per index and, after every index has run, rethrows the lowest-index
//    failure — independent of thread interleaving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ttsc::support {

class ThreadPool {
 public:
  /// `threads <= 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Index of the calling thread within its owning pool, or -1 when the
  /// caller is not a pool worker. Observability uses this to label trace
  /// shards ("worker-3") so a parallel sweep renders as a per-worker flame
  /// view; indices are per-pool (two pools both have a worker 0).
  static int current_worker_id();

  /// Queue `fn` for execution (FIFO). The future carries the result or the
  /// exception `fn` threw. Called from a worker of this pool, `fn` runs
  /// inline immediately (see the deadlock guard above).
  template <typename F>
  auto submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    if (on_worker_thread()) {
      (*task)();
    } else {
      enqueue([task] { (*task)(); });
    }
    return future;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

/// Run fn(0) .. fn(n-1) across the pool's workers, blocking until every
/// index has executed. Indices are claimed through a shared atomic counter,
/// so the set of executed indices (and hence any side effect written to a
/// per-index slot) is deterministic even though the interleaving is not.
/// If one or more invocations throw, the exception of the lowest failing
/// index is rethrown after the whole range has run.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ttsc::support
