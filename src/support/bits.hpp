// Small bit-manipulation helpers shared by encoders and simulators.
#pragma once

#include <cstdint>

namespace ttsc {

/// Number of bits needed to represent `count` distinct codes.
/// bits_for_codes(0) == 0, bits_for_codes(1) == 0 (a single code needs no
/// selector), bits_for_codes(2) == 1, bits_for_codes(5) == 3.
constexpr int bits_for_codes(std::uint64_t count) {
  if (count <= 1) return 0;
  int bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < count) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

/// Ceil(log2(value)) for value >= 1; index width of a `value`-entry table.
constexpr int index_bits(std::uint64_t value) { return bits_for_codes(value); }

/// Smallest signed value representable in `bits` two's-complement bits.
constexpr std::int64_t min_signed(int bits) { return bits == 0 ? 0 : -(std::int64_t{1} << (bits - 1)); }

/// Largest signed value representable in `bits` two's-complement bits.
constexpr std::int64_t max_signed(int bits) { return bits == 0 ? 0 : (std::int64_t{1} << (bits - 1)) - 1; }

/// Whether `value` fits in `bits` two's-complement bits.
constexpr bool fits_signed(std::int64_t value, int bits) {
  return value >= min_signed(bits) && value <= max_signed(bits);
}

/// Sign-extend the low `bits` of `value` to 32 bits.
constexpr std::int32_t sign_extend(std::uint32_t value, int bits) {
  const std::uint32_t mask = bits >= 32 ? ~0u : ((1u << bits) - 1u);
  value &= mask;
  const std::uint32_t sign = bits == 0 ? 0u : (1u << (bits - 1));
  return static_cast<std::int32_t>((value ^ sign) - sign);
}

/// Round `value` up to the next multiple of `unit` (unit > 0).
constexpr std::uint64_t round_up(std::uint64_t value, std::uint64_t unit) {
  return (value + unit - 1) / unit * unit;
}

}  // namespace ttsc
