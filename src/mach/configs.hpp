// The thirteen machine configurations evaluated in the paper (Section IV).
//
//   1-issue:  mblaze-3, mblaze-5 (MicroBlaze stand-ins), m-tta-1
//   2-issue:  m-vliw-2, p-vliw-2, m-tta-2, p-tta-2, bm-tta-2
//   3-issue:  m-vliw-3, p-vliw-3, m-tta-3, p-tta-3, bm-tta-3
//
// All machines share the FU operation set of Table I (two fully pipelined
// datapath FUs in the 2-issue case, plus a second ALU in the 3-issue case).
// Register file geometry follows Section IV: monolithic VLIW RFs with
// 2R+1W per issue, TTA RFs reduced to 1R1W (2R1W for the 96-register
// monolithic 3-issue TTA), partitioned variants with one 32-register file
// per partition. "Bus-merged" (bm) TTAs keep partitioned RFs but merge the
// interconnect to fewer, fully connected buses (Fig. 4d).
#pragma once

#include <vector>

#include "mach/machine.hpp"

namespace ttsc::mach {

Machine make_mblaze3();
Machine make_mblaze5();
Machine make_m_tta_1();

Machine make_m_vliw_2();
Machine make_p_vliw_2();
Machine make_m_tta_2();
Machine make_p_tta_2();
Machine make_bm_tta_2();

Machine make_m_vliw_3();
Machine make_p_vliw_3();
Machine make_m_tta_3();
Machine make_p_tta_3();
Machine make_bm_tta_3();

/// Guarded-execution variants (not part of the paper's 13; used by the
/// predication ablation): partitioned TTAs with two 1-bit guard registers.
Machine make_g_tta_2();
Machine make_g_tta_3();

/// All 13 configurations in the paper's reporting order.
std::vector<Machine> all_machines();

/// Look up by paper name (e.g. "m-tta-2"). A "+<profile>" suffix yields the
/// protected variant: "+parity" (parity on RFs and imem, fail-stop),
/// "+eccdmr" (SEC-DED on RFs and imem, DMR on FU results, TMR guards,
/// fail-stop) or "+full" ("+eccdmr" plus checkpoint-rollback recovery).
/// Throws ttsc::Error if unknown.
Machine machine_by_name(const std::string& name);

/// The named protection profile behind a "+<profile>" machine suffix.
/// Throws ttsc::Error for unknown profile names.
Protection protection_profile(const std::string& profile);

/// 1, 2 or 3 parallel datapath issues (for report grouping).
int issue_width(const Machine& machine);

}  // namespace ttsc::mach
