// Architecture description: the ttsc equivalent of TCE's ADF.
//
// A Machine describes datapath resources — function units with their
// operation sets and latencies (Table I), register files with explicit
// read/write port counts, and the interconnection network as a list of
// transport buses with per-bus source/destination connectivity (Section
// III-A's bus/socket structure, at unit granularity).
//
// One Machine type describes all three programming models evaluated in the
// paper. For VLIW machines the bus list mirrors the point-to-point
// RF-to-FU connections of Fig. 4a (used by the FPGA area model), while the
// VLIW scheduler works from `vliw_slots`. For scalar (MicroBlaze stand-in)
// machines `scalar` carries the pipeline timing parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hpp"
#include "support/assert.hpp"

namespace ttsc::mach {

/// A hardware operation: an IR opcode plus its FU latency in cycles.
/// Latency 0 (stores, Table I) means the side effect commits in the trigger
/// cycle and there is no result to read.
struct Operation {
  ir::Opcode opcode;
  int latency;
};

/// Function unit with the paper's port discipline: one operand input port
/// ("o"), one trigger input port ("t", writing it starts the operation) and
/// one result output port ("r"). The control unit is a FunctionUnit whose
/// operations are the control-flow opcodes.
struct FunctionUnit {
  std::string name;
  std::vector<Operation> ops;

  bool supports(ir::Opcode op) const {
    for (const Operation& o : ops)
      if (o.opcode == op) return true;
    return false;
  }
  int latency(ir::Opcode op) const {
    for (const Operation& o : ops)
      if (o.opcode == op) return o.latency;
    TTSC_ASSERT(false, "FU " + name + " does not support opcode");
    return -1;
  }
  bool is_control_unit() const {
    return supports(ir::Opcode::Jump) || supports(ir::Opcode::Bnz);
  }
};

struct RegisterFile {
  std::string name;
  int size = 32;        // number of registers
  int width = 32;       // bits
  int read_ports = 1;
  int write_ports = 1;
};

/// Endpoint of a bus connection, at unit granularity: an FU port role or a
/// register file (any of its registers, subject to the RF's port capacity).
struct PortRef {
  enum class Kind : std::uint8_t { FuOperand, FuTrigger, FuResult, RfRead, RfWrite };
  Kind kind;
  int unit;  // index into Machine::fus or Machine::rfs

  bool operator==(const PortRef&) const = default;
};

/// A transport bus: which endpoints it can read from / write to, and the
/// width of the short immediate its source field can carry directly.
struct Bus {
  std::string name;
  int simm_bits = 8;                 // signed short-immediate width
  std::vector<PortRef> sources;      // FuResult / RfRead
  std::vector<PortRef> dests;        // FuOperand / FuTrigger / RfWrite

  bool has_source(PortRef p) const {
    for (const PortRef& s : sources)
      if (s == p) return true;
    return false;
  }
  bool has_dest(PortRef p) const {
    for (const PortRef& d : dests)
      if (d == p) return true;
    return false;
  }
};

/// Pipeline timing parameters for the scalar (MicroBlaze stand-in) model.
struct ScalarTiming {
  int pipeline_stages = 3;
  bool forwarding = false;  // results forwarded to the next instruction
  int load_use_stall = 2;   // extra cycles when a load feeds the next use
  int mul_stall = 2;        // extra cycles when a mul feeds the next use
  int shift_stall = 1;      // extra cycles when a shift feeds the next use
  int branch_penalty = 2;   // bubbles after a taken branch
  /// The paper evaluates the *minimum* MicroBlaze configuration (Section
  /// IV), which omits the optional barrel shifter: a shift by a constant k
  /// becomes a sequence of single-bit shift instructions (capped — the
  /// compiler falls back to byte-extraction tricks for large k) and a
  /// shift by a register amount becomes a loop.
  bool barrel_shifter = false;
  int max_unrolled_shift = 8;    // single-bit instructions before the cap
  int variable_shift_setup = 4;  // loop prologue cycles
  int variable_shift_per_bit = 2;
};

enum class Model : std::uint8_t { Tta, Vliw, Scalar };

/// Per-structure SEU hardening a machine description can declare (the
/// mitigation side of the src/resil fault model). Every option is costed by
/// the src/fpga area/fmax model and simulated architecturally by all three
/// simulators (src/sim/protect.hpp): codes detect (parity) or correct
/// (SEC-DED) storage bit flips when the corrupted element is *read*, result
/// checking (DMR / mod-3 residue) detects datapath flips when the corrupted
/// FU result register is consumed, and TMR guard latches outvote a flipped
/// predicate bit. Detection without `rollback` fails stop (a structured
/// ProtectionDetected trap); with `rollback` the recovery policy re-executes
/// from the last periodic architectural checkpoint, degrading to a
/// DetectedUnrecoverable trap when the retry budget is exhausted.
struct Protection {
  /// Storage code on RF partitions / instruction memory.
  enum class Code : std::uint8_t { None, Parity, SecDed };
  /// FU result checking: duplicate-and-compare or a mod-3 residue check.
  enum class FuCheck : std::uint8_t { None, Residue3, Dmr };

  Code rf = Code::None;
  Code imem = Code::None;
  FuCheck fu = FuCheck::None;
  /// Triplicated guard latches with a majority voter (single flips masked).
  bool guard_tmr = false;

  /// Checkpoint-rollback recovery on detection (vs fail-stop).
  bool rollback = false;
  /// Cycles between architectural checkpoints.
  std::uint32_t checkpoint_interval = 256;
  /// Re-execution attempts before degrading to DetectedUnrecoverable.
  int retry_budget = 3;
  /// Cycles to restore a checkpoint before re-execution starts.
  std::uint32_t rollback_penalty = 16;

  bool any() const {
    return rf != Code::None || imem != Code::None || fu != FuCheck::None || guard_tmr;
  }
  bool operator==(const Protection&) const = default;
};

struct Machine {
  std::string name;
  Model model = Model::Tta;
  std::vector<FunctionUnit> fus;
  std::vector<RegisterFile> rfs;
  std::vector<Bus> buses;

  /// VLIW only: issue slots; slot i may host an operation on any FU whose
  /// index appears in vliw_slots[i] (the paper's encoding has one opcode +
  /// two sources + one destination per slot).
  std::vector<std::vector<int>> vliw_slots;

  /// TTA/VLIW: delay slots after a control-flow trigger (TCE default GCU:
  /// 3-cycle jump latency = 2 delay slots).
  int delay_slots = 2;

  /// TTA guarded execution (the BOOLRF of Fig. 4): number of 1-bit guard
  /// registers moves can predicate on. A guard is written by moving any
  /// value to it (latched as value != 0, readable the next cycle); a
  /// guarded move is squashed when its guard disagrees. 0 = no predication
  /// (the paper's evaluated machines; the g-tta variants enable it).
  int guard_regs = 0;
  bool has_guards() const { return guard_regs > 0; }

  ScalarTiming scalar;

  /// Declared SEU hardening (default: none — the paper's machines are
  /// unprotected; the `+parity`/`+eccdmr`/`+full` name suffixes parsed by
  /// mach::machine_by_name enable the profiled variants).
  Protection protect;

  int control_unit() const {
    for (std::size_t i = 0; i < fus.size(); ++i)
      if (fus[i].is_control_unit()) return static_cast<int>(i);
    TTSC_ASSERT(false, "machine " + name + " has no control unit");
    return -1;
  }

  /// Indices of non-CU function units.
  std::vector<int> datapath_fus() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < fus.size(); ++i)
      if (!fus[i].is_control_unit()) out.push_back(static_cast<int>(i));
    return out;
  }

  /// First FU (by index) that supports `op`; -1 if none.
  int fu_for(ir::Opcode op) const {
    for (std::size_t i = 0; i < fus.size(); ++i)
      if (fus[i].supports(op)) return static_cast<int>(i);
    return -1;
  }

  int total_registers() const {
    int n = 0;
    for (const RegisterFile& rf : rfs) n += rf.size;
    return n;
  }

  /// Throws ttsc::Error on structural problems (missing CU, unconnected
  /// ports on TTA machines, empty slots on VLIW machines, ...).
  void validate() const;
};

/// A physical register after allocation: register file index + register
/// index within that file.
struct PhysReg {
  std::int16_t rf = -1;
  std::int16_t index = -1;

  bool valid() const { return rf >= 0; }
  bool operator==(const PhysReg&) const = default;
  auto operator<=>(const PhysReg&) const = default;
};

}  // namespace ttsc::mach
