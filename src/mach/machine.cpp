#include "mach/machine.hpp"

#include "support/strings.hpp"

namespace ttsc::mach {

namespace {

[[noreturn]] void fail(const Machine& m, const std::string& what) {
  throw Error(format("machine '%s' invalid: %s", m.name.c_str(), what.c_str()));
}

}  // namespace

void Machine::validate() const {
  if (fus.empty()) fail(*this, "no function units");
  int cus = 0;
  for (const FunctionUnit& fu : fus) {
    if (fu.is_control_unit()) ++cus;
    if (fu.ops.empty()) fail(*this, "FU " + fu.name + " has no operations");
    for (const Operation& op : fu.ops) {
      if (op.latency < 0) fail(*this, "negative latency in " + fu.name);
      if (ir::is_store(op.opcode) && op.latency != 0) {
        fail(*this, "stores must have latency 0 (Table I) in " + fu.name);
      }
      if (ir::is_load(op.opcode) && op.latency < 1) {
        fail(*this, "loads need latency >= 1 in " + fu.name);
      }
    }
  }
  if (cus != 1) fail(*this, format("expected exactly one control unit, found %d", cus));

  for (const RegisterFile& rf : rfs) {
    if (rf.size <= 0 || rf.width <= 0) fail(*this, "bad RF geometry in " + rf.name);
    if (rf.read_ports < 1 || rf.write_ports < 1) fail(*this, "RF needs ports: " + rf.name);
  }

  for (const Bus& bus : buses) {
    for (const PortRef& p : bus.sources) {
      if (p.kind != PortRef::Kind::FuResult && p.kind != PortRef::Kind::RfRead) {
        fail(*this, "bus " + bus.name + " has a non-source endpoint in sources");
      }
      const int limit = p.kind == PortRef::Kind::FuResult ? static_cast<int>(fus.size())
                                                          : static_cast<int>(rfs.size());
      if (p.unit < 0 || p.unit >= limit) fail(*this, "bus " + bus.name + " source out of range");
    }
    for (const PortRef& p : bus.dests) {
      if (p.kind == PortRef::Kind::FuResult || p.kind == PortRef::Kind::RfRead) {
        fail(*this, "bus " + bus.name + " has a non-dest endpoint in dests");
      }
      const int limit = (p.kind == PortRef::Kind::RfWrite) ? static_cast<int>(rfs.size())
                                                           : static_cast<int>(fus.size());
      if (p.unit < 0 || p.unit >= limit) fail(*this, "bus " + bus.name + " dest out of range");
    }
  }

  if (model == Model::Tta) {
    if (buses.empty()) fail(*this, "TTA machine needs buses");
    // Every FU port and every RF must be reachable through some bus.
    auto any_source = [&](PortRef p) {
      for (const Bus& b : buses)
        if (b.has_source(p)) return true;
      return false;
    };
    auto any_dest = [&](PortRef p) {
      for (const Bus& b : buses)
        if (b.has_dest(p)) return true;
      return false;
    };
    for (int f = 0; f < static_cast<int>(fus.size()); ++f) {
      if (!any_dest({PortRef::Kind::FuTrigger, f})) {
        fail(*this, "FU " + fus[f].name + " trigger port unconnected");
      }
      // Result ports: CU has no result consumers; compute FUs need one.
      if (!fus[f].is_control_unit() && !any_source({PortRef::Kind::FuResult, f})) {
        fail(*this, "FU " + fus[f].name + " result port unconnected");
      }
      // Operand port required for 2-input operations.
      bool needs_operand = false;
      for (const Operation& op : fus[f].ops) {
        needs_operand |= ir::num_inputs(op.opcode) >= 2 ||
                         (fus[f].is_control_unit() && op.opcode == ir::Opcode::Bnz);
      }
      if (needs_operand && !any_dest({PortRef::Kind::FuOperand, f})) {
        fail(*this, "FU " + fus[f].name + " operand port unconnected");
      }
    }
    for (int r = 0; r < static_cast<int>(rfs.size()); ++r) {
      if (!any_source({PortRef::Kind::RfRead, r}) || !any_dest({PortRef::Kind::RfWrite, r})) {
        fail(*this, "RF " + rfs[r].name + " unconnected");
      }
    }
  }

  if (model == Model::Vliw) {
    if (vliw_slots.empty()) fail(*this, "VLIW machine needs issue slots");
    std::vector<bool> seen(fus.size(), false);
    for (const auto& slot : vliw_slots) {
      if (slot.empty()) fail(*this, "empty VLIW slot");
      for (int f : slot) {
        if (f < 0 || f >= static_cast<int>(fus.size())) fail(*this, "slot FU out of range");
        seen[static_cast<std::size_t>(f)] = true;
      }
    }
    for (std::size_t f = 0; f < fus.size(); ++f) {
      if (!seen[f]) fail(*this, "FU " + fus[f].name + " not assigned to any VLIW slot");
    }
  }

  if (rfs.empty()) fail(*this, "machine needs at least one register file");
  if (delay_slots < 0) fail(*this, "negative delay slots");
}

}  // namespace ttsc::mach
