#include "mach/configs.hpp"

#include "support/strings.hpp"

namespace ttsc::mach {

using ir::Opcode;

namespace {

/// Table I ALU: integer arithmetic/logic with the listed latencies,
/// including the 3-cycle multiplier (mapped to DSP blocks on the FPGA).
FunctionUnit make_alu(std::string name) {
  FunctionUnit fu;
  fu.name = std::move(name);
  fu.ops = {
      {Opcode::Add, 1},  {Opcode::And, 1},  {Opcode::Eq, 1},   {Opcode::Gt, 1},
      {Opcode::Gtu, 1},  {Opcode::Ior, 1},  {Opcode::Mul, 3},  {Opcode::Shl, 2},
      {Opcode::Shr, 2},  {Opcode::Shru, 2}, {Opcode::Sub, 1},  {Opcode::Sxhw, 1},
      {Opcode::Sxqw, 1}, {Opcode::Xor, 1},
  };
  return fu;
}

/// Table I LSU: 3-cycle loads, 0-latency stores, absolute addresses.
FunctionUnit make_lsu(std::string name) {
  FunctionUnit fu;
  fu.name = std::move(name);
  fu.ops = {
      {Opcode::Ldw, 3}, {Opcode::Ldh, 3}, {Opcode::Ldq, 3}, {Opcode::Ldqu, 3},
      {Opcode::Ldhu, 3}, {Opcode::Stw, 0}, {Opcode::Sth, 0}, {Opcode::Stq, 0},
  };
  return fu;
}

/// Control unit: absolute jump, conditional branch, call with return
/// address saving, and return. The `latency` is 1 + delay slots.
FunctionUnit make_cu() {
  FunctionUnit fu;
  fu.name = "cu";
  fu.ops = {
      {Opcode::Jump, 3}, {Opcode::Bnz, 3}, {Opcode::Call, 3}, {Opcode::Ret, 3},
  };
  return fu;
}

/// Fully connected TTA interconnect: every bus can move from any FU result
/// or RF read to any FU input or RF write (monolithic-style IC, Fig. 4a/b).
void add_full_buses(Machine& m, int count, int simm_bits) {
  for (int b = 0; b < count; ++b) {
    Bus bus;
    bus.name = format("B%d", b);
    bus.simm_bits = simm_bits;
    for (int f = 0; f < static_cast<int>(m.fus.size()); ++f) {
      if (!m.fus[f].is_control_unit()) bus.sources.push_back({PortRef::Kind::FuResult, f});
      bus.dests.push_back({PortRef::Kind::FuOperand, f});
      bus.dests.push_back({PortRef::Kind::FuTrigger, f});
    }
    for (int r = 0; r < static_cast<int>(m.rfs.size()); ++r) {
      bus.sources.push_back({PortRef::Kind::RfRead, r});
      bus.dests.push_back({PortRef::Kind::RfWrite, r});
    }
    m.buses.push_back(std::move(bus));
  }
}

/// Point-to-point connections of an operation-triggered datapath (Fig. 4a):
/// one bus per FU input port (fed by all RF read ports and able to inject an
/// immediate) and one bus per FU result (to all RF write ports). Used by
/// VLIW and scalar machines for FPGA interconnect modelling; their
/// schedulers do not consult buses.
void add_p2p_buses(Machine& m, int simm_bits) {
  int counter = 0;
  for (int f = 0; f < static_cast<int>(m.fus.size()); ++f) {
    for (PortRef::Kind kind : {PortRef::Kind::FuOperand, PortRef::Kind::FuTrigger}) {
      Bus bus;
      bus.name = format("P%d", counter++);
      bus.simm_bits = simm_bits;
      for (int r = 0; r < static_cast<int>(m.rfs.size()); ++r) {
        bus.sources.push_back({PortRef::Kind::RfRead, r});
      }
      bus.dests.push_back({kind, f});
      m.buses.push_back(std::move(bus));
    }
    if (!m.fus[f].is_control_unit()) {
      Bus bus;
      bus.name = format("P%d", counter++);
      bus.simm_bits = 0;
      bus.sources.push_back({PortRef::Kind::FuResult, f});
      for (int r = 0; r < static_cast<int>(m.rfs.size()); ++r) {
        bus.dests.push_back({PortRef::Kind::RfWrite, r});
      }
      m.buses.push_back(std::move(bus));
    }
  }
}

void add_rf(Machine& m, std::string name, int size, int read_ports, int write_ports) {
  RegisterFile rf;
  rf.name = std::move(name);
  rf.size = size;
  rf.read_ports = read_ports;
  rf.write_ports = write_ports;
  m.rfs.push_back(rf);
}

constexpr int kSimmBits = 8;

Machine base_2issue(const std::string& name, Model model) {
  Machine m;
  m.name = name;
  m.model = model;
  m.fus = {make_lsu("lsu"), make_alu("alu"), make_cu()};
  return m;
}

Machine base_3issue(const std::string& name, Model model) {
  Machine m;
  m.name = name;
  m.model = model;
  m.fus = {make_lsu("lsu"), make_alu("alu0"), make_alu("alu1"), make_cu()};
  return m;
}

/// VLIW issue slots: the memory slot also hosts control flow (the encoding
/// has one opcode field per slot; Section IV).
void set_vliw_slots(Machine& m) {
  const int cu = m.control_unit();
  std::vector<int> mem_slot = {0, cu};
  m.vliw_slots.push_back(mem_slot);
  for (int f = 1; f < static_cast<int>(m.fus.size()); ++f) {
    if (f != cu) m.vliw_slots.push_back({f});
  }
}

}  // namespace

Machine make_mblaze3() {
  Machine m;
  m.name = "mblaze-3";
  m.model = Model::Scalar;
  m.fus = {make_lsu("lsu"), make_alu("alu"), make_cu()};
  add_rf(m, "rf", 32, 2, 1);
  add_p2p_buses(m, 16);
  m.scalar = ScalarTiming{.pipeline_stages = 3,
                          .forwarding = true,
                          .load_use_stall = 2,
                          .mul_stall = 2,
                          .shift_stall = 0,
                          .branch_penalty = 2,
                          .barrel_shifter = false};
  m.validate();
  return m;
}

Machine make_mblaze5() {
  Machine m = make_mblaze3();
  m.name = "mblaze-5";
  // The deeper pipeline resolves hazards with forwarding stages: cheaper
  // dependent-use stalls at a slightly higher resource cost (Table III).
  m.scalar = ScalarTiming{.pipeline_stages = 5,
                          .forwarding = true,
                          .load_use_stall = 1,
                          .mul_stall = 0,
                          .shift_stall = 0,
                          .branch_penalty = 2,
                          .barrel_shifter = false};
  m.validate();
  return m;
}

Machine make_m_tta_1() {
  Machine m;
  m.name = "m-tta-1";
  m.model = Model::Tta;
  m.fus = {make_lsu("lsu"), make_alu("alu"), make_cu()};
  add_rf(m, "rf", 32, 1, 1);
  add_full_buses(m, 3, kSimmBits);
  m.validate();
  return m;
}

Machine make_m_vliw_2() {
  Machine m = base_2issue("m-vliw-2", Model::Vliw);
  add_rf(m, "rf", 64, 4, 2);
  set_vliw_slots(m);
  add_p2p_buses(m, kSimmBits);
  m.validate();
  return m;
}

Machine make_p_vliw_2() {
  Machine m = base_2issue("p-vliw-2", Model::Vliw);
  add_rf(m, "rf0", 32, 2, 1);
  add_rf(m, "rf1", 32, 2, 1);
  set_vliw_slots(m);
  add_p2p_buses(m, kSimmBits);
  m.validate();
  return m;
}

Machine make_m_tta_2() {
  Machine m = base_2issue("m-tta-2", Model::Tta);
  add_rf(m, "rf", 64, 1, 1);
  add_full_buses(m, 5, kSimmBits);
  m.validate();
  return m;
}

Machine make_p_tta_2() {
  Machine m = base_2issue("p-tta-2", Model::Tta);
  add_rf(m, "rf0", 32, 1, 1);
  add_rf(m, "rf1", 32, 1, 1);
  add_full_buses(m, 5, kSimmBits);
  m.validate();
  return m;
}

Machine make_bm_tta_2() {
  Machine m = base_2issue("bm-tta-2", Model::Tta);
  add_rf(m, "rf0", 32, 1, 1);
  add_rf(m, "rf1", 32, 1, 1);
  add_full_buses(m, 4, kSimmBits);  // merged interconnect (Fig. 4d)
  m.validate();
  return m;
}

Machine make_m_vliw_3() {
  Machine m = base_3issue("m-vliw-3", Model::Vliw);
  add_rf(m, "rf", 96, 6, 3);
  set_vliw_slots(m);
  add_p2p_buses(m, kSimmBits);
  m.validate();
  return m;
}

Machine make_p_vliw_3() {
  Machine m = base_3issue("p-vliw-3", Model::Vliw);
  add_rf(m, "rf0", 32, 2, 1);
  add_rf(m, "rf1", 32, 2, 1);
  add_rf(m, "rf2", 32, 2, 1);
  set_vliw_slots(m);
  add_p2p_buses(m, kSimmBits);
  m.validate();
  return m;
}

Machine make_m_tta_3() {
  Machine m = base_3issue("m-tta-3", Model::Tta);
  add_rf(m, "rf", 96, 2, 1);
  add_full_buses(m, 8, kSimmBits);
  m.validate();
  return m;
}

Machine make_p_tta_3() {
  Machine m = base_3issue("p-tta-3", Model::Tta);
  add_rf(m, "rf0", 32, 1, 1);
  add_rf(m, "rf1", 32, 1, 1);
  add_rf(m, "rf2", 32, 1, 1);
  add_full_buses(m, 8, kSimmBits);
  m.validate();
  return m;
}

Machine make_bm_tta_3() {
  Machine m = base_3issue("bm-tta-3", Model::Tta);
  add_rf(m, "rf0", 32, 1, 1);
  add_rf(m, "rf1", 32, 1, 1);
  add_rf(m, "rf2", 32, 1, 1);
  add_full_buses(m, 6, kSimmBits);  // merged interconnect (Fig. 4d)
  m.validate();
  return m;
}

Machine make_g_tta_2() {
  Machine m = make_p_tta_2();
  m.name = "g-tta-2";
  m.guard_regs = 2;
  m.validate();
  return m;
}

Machine make_g_tta_3() {
  Machine m = make_p_tta_3();
  m.name = "g-tta-3";
  m.guard_regs = 2;
  m.validate();
  return m;
}

std::vector<Machine> all_machines() {
  return {make_mblaze3(),  make_mblaze5(),  make_m_tta_1(), make_m_vliw_2(), make_p_vliw_2(),
          make_m_tta_2(),  make_p_tta_2(),  make_bm_tta_2(), make_m_vliw_3(), make_p_vliw_3(),
          make_m_tta_3(),  make_p_tta_3(),  make_bm_tta_3()};
}

Protection protection_profile(const std::string& profile) {
  Protection p;
  if (profile == "parity") {
    // Cheapest detect-only hardening: fail-stop on any odd storage flip.
    p.rf = Protection::Code::Parity;
    p.imem = Protection::Code::Parity;
  } else if (profile == "eccdmr") {
    // Correcting codes on storage plus full datapath duplication, still
    // fail-stop on anything the codes cannot correct.
    p.rf = Protection::Code::SecDed;
    p.imem = Protection::Code::SecDed;
    p.fu = Protection::FuCheck::Dmr;
    p.guard_tmr = true;
  } else if (profile == "full") {
    // eccdmr plus checkpoint-rollback recovery on detection.
    p.rf = Protection::Code::SecDed;
    p.imem = Protection::Code::SecDed;
    p.fu = Protection::FuCheck::Dmr;
    p.guard_tmr = true;
    p.rollback = true;
  } else {
    throw Error("unknown protection profile: +" + profile +
                " (expected +parity, +eccdmr or +full)");
  }
  return p;
}

Machine machine_by_name(const std::string& name) {
  // "<base>+<profile>" names a protected variant: the base machine with a
  // named mach::Protection profile applied. The suffixed string stays the
  // machine's name, so campaign cells, reports and FPGA tables key the
  // protected variant without any schema change.
  const std::size_t plus = name.find('+');
  if (plus != std::string::npos) {
    Machine m = machine_by_name(name.substr(0, plus));
    m.protect = protection_profile(name.substr(plus + 1));
    m.name = name;
    return m;
  }
  for (Machine& m : all_machines()) {
    if (m.name == name) return m;
  }
  if (name == "g-tta-2") return make_g_tta_2();
  if (name == "g-tta-3") return make_g_tta_3();
  throw Error("unknown machine: " + name);
}

int issue_width(const Machine& machine) {
  if (machine.model == Model::Scalar) return 1;
  int width = static_cast<int>(machine.datapath_fus().size());
  return machine.model == Model::Tta && width == 2 && machine.buses.size() <= 3 ? 1 : width;
}

}  // namespace ttsc::mach
