// Built-in ExecObserver implementations.
//
//  * UtilizationCollector — per-FU trigger counts, per-bus transport
//    occupancy, dynamic opcode histogram and RF traffic, aggregated into a
//    UtilizationReport (mergeable across runs, renderable as a table).
//  * TraceObserver — human-readable cycle-by-cycle event log, capped at a
//    fixed number of events (--trace in the bench harnesses).
//  * TeeObserver — fans events out to two observers.
//  * ProfileCollector — per-block execution counts and block-to-block edge
//    counts from on_block_enter events (the input to opt::ProfileData and
//    profile-guided superblock formation).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ir/opcode.hpp"
#include "mach/machine.hpp"
#include "sim/observer.hpp"

namespace ttsc::obs {
class Registry;
}

namespace ttsc::sim {

/// Aggregated execution profile of one or more simulation runs.
struct UtilizationReport {
  std::uint64_t cycles = 0;  // summed across merged runs
  std::uint64_t moves = 0;   // executed TTA transports
  std::uint64_t guard_squashes = 0;
  std::uint64_t rf_reads = 0;
  std::uint64_t rf_writes = 0;
  std::uint64_t stall_cycles = 0;
  std::vector<std::uint64_t> fu_triggers;  // per FU (index -1 → slot 0 of scalar)
  std::vector<std::uint64_t> bus_busy;     // per bus: executed + squashed moves
  std::array<std::uint64_t, static_cast<std::size_t>(ir::kNumOpcodes)> op_histogram{};

  std::uint64_t total_triggers() const;

  /// Accumulate another report (e.g. the other workloads of a sweep).
  /// Vector fields grow to the larger operand.
  void merge(const UtilizationReport& other);

  /// Render as a table using `machine` for FU/bus names. The machine is
  /// optional context: pass the machine the runs used, or nullptr for the
  /// generic layout (merged heterogeneous runs).
  std::string render(const mach::Machine* machine = nullptr) const;

  /// Export scalar totals into a metrics registry under `prefix` (e.g.
  /// "sim." -> "sim.moves", "sim.triggers", "sim.rf_reads", ...). Counts
  /// are simulation events, hence deterministic; wall time never enters.
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

/// Observer that accumulates a UtilizationReport over a run. The simulators
/// do not report total cycles through the observer protocol; the driver
/// records ExecResult::cycles via add_cycles() after the run.
class UtilizationCollector final : public ExecObserver {
 public:
  explicit UtilizationCollector(const mach::Machine& machine);

  void on_move(std::uint64_t cycle, int bus) override;
  void on_guard_squash(std::uint64_t cycle, int bus) override;
  void on_trigger(std::uint64_t cycle, int fu, ir::Opcode op) override;
  void on_rf_read(std::uint64_t cycle, int rf, int index) override;
  void on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) override;
  void on_stall(std::uint64_t cycle, std::uint64_t stall_cycles) override;

  void add_cycles(std::uint64_t cycles) { report_.cycles += cycles; }
  const UtilizationReport& report() const { return report_; }

 private:
  UtilizationReport report_;
};

/// Observer that formats the first `max_events` events as one line each.
class TraceObserver final : public ExecObserver {
 public:
  explicit TraceObserver(std::size_t max_events = 200) : max_events_(max_events) {}

  void on_move(std::uint64_t cycle, int bus) override;
  void on_guard_squash(std::uint64_t cycle, int bus) override;
  void on_trigger(std::uint64_t cycle, int fu, ir::Opcode op) override;
  void on_rf_read(std::uint64_t cycle, int rf, int index) override;
  void on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) override;
  void on_stall(std::uint64_t cycle, std::uint64_t stall_cycles) override;
  void on_block_enter(std::uint64_t cycle, std::uint32_t block) override;

  std::size_t events() const { return events_; }
  bool truncated() const { return events_ > max_events_; }
  /// The formatted trace; ends with an ellipsis line when truncated.
  std::string text() const;

 private:
  void line(std::uint64_t cycle, const std::string& body);

  std::size_t max_events_;
  std::size_t events_ = 0;
  std::string text_;
};

/// Fans every event out to two observers (either may be null).
class TeeObserver final : public ExecObserver {
 public:
  TeeObserver(ExecObserver* a, ExecObserver* b) : a_(a), b_(b) {}

  void on_move(std::uint64_t cycle, int bus) override;
  void on_guard_squash(std::uint64_t cycle, int bus) override;
  void on_trigger(std::uint64_t cycle, int fu, ir::Opcode op) override;
  void on_rf_read(std::uint64_t cycle, int rf, int index) override;
  void on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) override;
  void on_stall(std::uint64_t cycle, std::uint64_t stall_cycles) override;
  void on_block_enter(std::uint64_t cycle, std::uint32_t block) override;
  void on_exec(std::uint64_t cycle, std::uint32_t pc, bool shadow) override;
  void on_overhead(std::uint64_t cycle, OverheadKind kind, std::uint64_t cycles) override;
  void on_guard_write(std::uint64_t cycle, int guard, std::uint32_t value) override;
  void on_store(std::uint64_t cycle, std::uint32_t addr, std::uint32_t value,
                std::uint8_t width) override;

 private:
  ExecObserver* a_;
  ExecObserver* b_;
};

/// Observer that accumulates per-block execution frequencies and taken
/// control-flow edge counts from on_block_enter events. The collector is
/// engine-agnostic: block ids are whatever the simulated program's
/// block_entry table indexes (source IR block ids for all three backends),
/// so a profile gathered on one engine can drive recompilation for another.
/// Chains of empty (zero-length) blocks attribute to the last block sharing
/// the entry pc — see ExecObserver::on_block_enter.
class ProfileCollector final : public ExecObserver {
 public:
  void on_block_enter(std::uint64_t cycle, std::uint32_t block) override;

  /// Execution count per block id (indexable up to the largest observed id).
  const std::vector<std::uint64_t>& block_counts() const { return block_counts_; }
  /// Count per observed (from, to) block transition, in block-id order.
  const std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>& edge_counts() const {
    return edge_counts_;
  }

 private:
  std::vector<std::uint64_t> block_counts_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edge_counts_;
  bool have_last_ = false;
  std::uint32_t last_block_ = 0;
};

}  // namespace ttsc::sim
