// Predecoded program forms for the simulator fast paths.
//
// The interpretive run loops re-resolve per cycle what is statically known:
// FU/RF/bus indices live in nested structs chased through vectors of
// vectors, FU latencies are found by scanning operation lists, branch
// targets go through block_entry, and the TTA loop even allocates a scratch
// vector every cycle. Predecoding resolves all of it once per
// (machine, program) pair into dense flat arrays:
//
//  * moves/ops flattened across instructions/bundles, with a [begin, end)
//    index range per instruction — one contiguous scan per cycle;
//  * register files concatenated into one flat array (rf_base[rf] + index
//    precomputed into a single slot number);
//  * FU latencies, trigger fire classes and branch targets (resolved to
//    instruction indices) baked into each decoded move/op;
//  * the in-flight result ring size (max FU latency + 1) precomputed so the
//    run loop can replace priority queues with circular buffers.
//
// A predecoded program is self-contained (no pointers into the source
// program) and immutable, so report::ModuleCache can memoize it across a
// sweep, keyed by machine/program fingerprints.
#pragma once

#include <cstdint>
#include <vector>

#include "scalar/scalar.hpp"
#include "tta/tta.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::sim {

// ---- TTA ---------------------------------------------------------------

struct TtaPMove {
  enum class Src : std::uint8_t { Imm, FuResult, RfRead };
  enum class Dst : std::uint8_t { FuOperand, FuTrigger, ControlTrigger, RfWrite, GuardWrite };
  /// Trigger dispatch, resolved at decode time: Binary ops read
  /// (operand port, moved value); Input ops (loads, sign-extends) read only
  /// the moved value; Store commits to memory in the trigger cycle.
  enum class Fire : std::uint8_t { Binary, Input, Store, Jump, Bnz, Ret };

  Src src = Src::Imm;
  Dst dst = Dst::RfWrite;
  Fire fire = Fire::Binary;
  ir::Opcode opcode = ir::Opcode::MovI;  // trigger opcode (compute + observer)
  std::uint8_t latency = 0;              // FU result latency for compute triggers
  std::int16_t guard = -1;               // guard register, -1 = unconditional
  bool guard_negate = false;
  std::int16_t bus = -1;                 // -1 when outside the machine's bus range
  std::uint32_t src_slot = 0;            // FU index or flat RF slot
  std::uint32_t dst_slot = 0;            // FU index / flat RF slot / guard index
  std::uint32_t imm = 0;
  std::uint32_t target_pc = 0;           // control: block_entry already applied
  std::int16_t src_rf = -1, src_reg = -1;  // observer: RF read (rf, index)
  std::int16_t dst_rf = -1, dst_reg = -1;  // observer: RF write (rf, index)
  /// 0 = legal; else TrapReason + 1 (sim/harden.hpp). The run loops raise
  /// ExecStatus::Trapped when the move executes (a squashed guard still
  /// suppresses it, matching execute-time validation in the reference loop).
  std::uint8_t trap = 0;
  std::uint32_t trap_detail = 0;
};

struct PredecodedTta {
  std::vector<TtaPMove> moves;             // flat, instruction-major
  std::vector<std::uint32_t> instr_begin;  // size num_instrs + 1
  std::vector<std::uint32_t> rf_base;      // flat slot base per register file
  std::uint32_t rf_slots = 0;              // total registers across all RFs
  int ring = 2;                            // in-flight result ring (max latency + 1)

  std::size_t num_instrs() const { return instr_begin.size() - 1; }
};

PredecodedTta predecode(const tta::TtaProgram& program, const mach::Machine& machine);

// ---- VLIW --------------------------------------------------------------

struct VliwPOp {
  ir::Opcode op = ir::Opcode::MovI;
  bool a_imm = true, b_imm = true;
  std::uint32_t a_val = 0, b_val = 0;      // immediate values (0 for absent srcs)
  std::uint32_t a_slot = 0, b_slot = 0;    // flat register slots
  std::int32_t dst_slot = -1;              // -1 = no destination
  std::uint8_t latency = 1;
  bool is_control = false;
  std::uint32_t target_pc = 0;             // block_entry already applied
  std::int16_t fu = -1;                    // observer: issue slot's FU
  std::int16_t a_rf = -1, a_reg = -1, b_rf = -1, b_reg = -1;
  std::int16_t dst_rf = -1, dst_reg = -1;
  std::uint8_t nsrcs = 0;
  std::uint8_t trap = 0;  // 0 = legal; else TrapReason + 1 (sim/harden.hpp)
  std::uint32_t trap_detail = 0;
};

struct PredecodedVliw {
  std::vector<VliwPOp> ops;                 // flat, bundle-major, empty slots dropped
  std::vector<std::uint32_t> bundle_begin;  // size num_bundles + 1
  std::vector<std::uint32_t> rf_base;
  std::uint32_t rf_slots = 0;
  int ring = 3;  // write-back ring (max latency + 2: visible at issue+lat+1)

  std::size_t num_bundles() const { return bundle_begin.size() - 1; }
};

PredecodedVliw predecode(const vliw::VliwProgram& program, const mach::Machine& machine);

// ---- Scalar ------------------------------------------------------------

struct ScalarPInstr {
  ir::Opcode op = ir::Opcode::MovI;
  bool a_imm = true, b_imm = true;
  std::uint32_t a_val = 0, b_val = 0;
  std::uint32_t a_slot = 0, b_slot = 0;
  std::int32_t dst_slot = -1;
  std::uint8_t extra_words = 0;   // instruction words beyond the first
  std::uint8_t stall = 0;         // dependent-use stall cycles for this op
  bool var_shift = false;         // register-amount shift without barrel shifter
  std::uint32_t target_pc = 0;    // block_entry already applied
  std::int16_t a_rf = -1, a_reg = -1, b_rf = -1, b_reg = -1;
  std::int16_t dst_rf = -1, dst_reg = -1;
  std::uint8_t nsrcs = 0;
  std::uint8_t trap = 0;  // 0 = legal; else TrapReason + 1 (sim/harden.hpp)
  std::uint32_t trap_detail = 0;
};

struct PredecodedScalar {
  std::vector<ScalarPInstr> instrs;
  std::vector<std::uint32_t> rf_base;
  std::uint32_t rf_slots = 0;
};

PredecodedScalar predecode(const scalar::ScalarProgram& program, const mach::Machine& machine);

// ---- Cache keys --------------------------------------------------------

/// Structural fingerprints (FNV-1a over the semantically relevant fields)
/// used by report::ModuleCache to memoize predecoded programs. Machine and
/// program fingerprints are combined, so two same-named machine variants or
/// two schedules of the same workload cannot alias.
std::uint64_t fingerprint(const mach::Machine& machine);
std::uint64_t fingerprint(const tta::TtaProgram& program);
std::uint64_t fingerprint(const vliw::VliwProgram& program);
std::uint64_t fingerprint(const scalar::ScalarProgram& program);

}  // namespace ttsc::sim
