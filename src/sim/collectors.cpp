#include "sim/collectors.hpp"

#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace ttsc::sim {

namespace {

void grow_add(std::vector<std::uint64_t>& dst, const std::vector<std::uint64_t>& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
}

std::string format(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

}  // namespace

std::uint64_t UtilizationReport::total_triggers() const {
  std::uint64_t n = 0;
  for (const std::uint64_t t : fu_triggers) n += t;
  return n;
}

void UtilizationReport::merge(const UtilizationReport& other) {
  cycles += other.cycles;
  moves += other.moves;
  guard_squashes += other.guard_squashes;
  rf_reads += other.rf_reads;
  rf_writes += other.rf_writes;
  stall_cycles += other.stall_cycles;
  grow_add(fu_triggers, other.fu_triggers);
  grow_add(bus_busy, other.bus_busy);
  for (std::size_t i = 0; i < op_histogram.size(); ++i) op_histogram[i] += other.op_histogram[i];
}

void UtilizationReport::export_to(obs::Registry& registry, const std::string& prefix) const {
  registry.add(prefix + "cycles", cycles);
  registry.add(prefix + "moves", moves);
  registry.add(prefix + "guard_squashes", guard_squashes);
  registry.add(prefix + "rf_reads", rf_reads);
  registry.add(prefix + "rf_writes", rf_writes);
  registry.add(prefix + "stall_cycles", stall_cycles);
  registry.add(prefix + "triggers", total_triggers());
}

std::string UtilizationReport::render(const mach::Machine* machine) const {
  std::string out;
  const double cyc = cycles > 0 ? static_cast<double>(cycles) : 1.0;
  out += format("cycles %llu, triggers %llu, rf reads %llu, rf writes %llu\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(total_triggers()),
                static_cast<unsigned long long>(rf_reads),
                static_cast<unsigned long long>(rf_writes));
  if (moves > 0 || guard_squashes > 0) {
    out += format("moves %llu executed, %llu squashed\n",
                  static_cast<unsigned long long>(moves),
                  static_cast<unsigned long long>(guard_squashes));
  }
  if (stall_cycles > 0) {
    out += format("stall cycles %llu (%.1f%%)\n", static_cast<unsigned long long>(stall_cycles),
                  100.0 * static_cast<double>(stall_cycles) / cyc);
  }
  for (std::size_t f = 0; f < fu_triggers.size(); ++f) {
    const char* name = machine != nullptr && f < machine->fus.size()
                           ? machine->fus[f].name.c_str()
                           : nullptr;
    std::string label = name != nullptr ? name : format("fu%zu", f);
    out += format("  fu %-8s %10llu triggers  %5.1f%% busy\n", label.c_str(),
                  static_cast<unsigned long long>(fu_triggers[f]),
                  100.0 * static_cast<double>(fu_triggers[f]) / cyc);
  }
  for (std::size_t b = 0; b < bus_busy.size(); ++b) {
    const char* name = machine != nullptr && b < machine->buses.size()
                           ? machine->buses[b].name.c_str()
                           : nullptr;
    std::string label = name != nullptr ? name : format("bus%zu", b);
    out += format("  bus %-7s %10llu moves     %5.1f%% occupied\n", label.c_str(),
                  static_cast<unsigned long long>(bus_busy[b]),
                  100.0 * static_cast<double>(bus_busy[b]) / cyc);
  }
  // Dynamic opcode mix, most frequent first.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < op_histogram.size(); ++i) {
    if (op_histogram[i] > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return op_histogram[a] > op_histogram[b]; });
  for (const std::size_t i : order) {
    out += format("  op %-8s %10llu\n",
                  std::string(ir::opcode_name(static_cast<ir::Opcode>(i))).c_str(),
                  static_cast<unsigned long long>(op_histogram[i]));
  }
  return out;
}

UtilizationCollector::UtilizationCollector(const mach::Machine& machine) {
  report_.fu_triggers.assign(machine.fus.size(), 0);
  report_.bus_busy.assign(machine.buses.size(), 0);
}

void UtilizationCollector::on_move(std::uint64_t, int bus) {
  ++report_.moves;
  if (bus >= 0 && static_cast<std::size_t>(bus) < report_.bus_busy.size()) {
    ++report_.bus_busy[static_cast<std::size_t>(bus)];
  }
}

void UtilizationCollector::on_guard_squash(std::uint64_t, int bus) {
  ++report_.guard_squashes;
  // A squashed move still occupied its transport slot.
  if (bus >= 0 && static_cast<std::size_t>(bus) < report_.bus_busy.size()) {
    ++report_.bus_busy[static_cast<std::size_t>(bus)];
  }
}

void UtilizationCollector::on_trigger(std::uint64_t, int fu, ir::Opcode op) {
  if (fu >= 0) {
    if (static_cast<std::size_t>(fu) >= report_.fu_triggers.size()) {
      report_.fu_triggers.resize(static_cast<std::size_t>(fu) + 1, 0);
    }
    ++report_.fu_triggers[static_cast<std::size_t>(fu)];
  } else {
    // Scalar model: single implicit execution unit.
    if (report_.fu_triggers.empty()) report_.fu_triggers.resize(1, 0);
    ++report_.fu_triggers[0];
  }
  ++report_.op_histogram[static_cast<std::size_t>(op)];
}

void UtilizationCollector::on_rf_read(std::uint64_t, int, int) { ++report_.rf_reads; }

void UtilizationCollector::on_rf_write(std::uint64_t, int, int, std::uint32_t) {
  ++report_.rf_writes;
}

void UtilizationCollector::on_stall(std::uint64_t, std::uint64_t stall_cycles) {
  report_.stall_cycles += stall_cycles;
}

void TraceObserver::line(std::uint64_t cycle, const std::string& body) {
  ++events_;
  if (events_ > max_events_) return;
  text_ += format("[%8llu] ", static_cast<unsigned long long>(cycle));
  text_ += body;
  text_ += '\n';
}

void TraceObserver::on_move(std::uint64_t cycle, int bus) {
  line(cycle, format("move        bus %d", bus));
}

void TraceObserver::on_guard_squash(std::uint64_t cycle, int bus) {
  line(cycle, format("squash      bus %d", bus));
}

void TraceObserver::on_trigger(std::uint64_t cycle, int fu, ir::Opcode op) {
  line(cycle, format("trigger     fu %d %s", fu, std::string(ir::opcode_name(op)).c_str()));
}

void TraceObserver::on_rf_read(std::uint64_t cycle, int rf, int index) {
  line(cycle, format("rf read     rf%d[%d]", rf, index));
}

void TraceObserver::on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) {
  line(cycle, format("rf write    rf%d[%d] = %u", rf, index, value));
}

void TraceObserver::on_stall(std::uint64_t cycle, std::uint64_t stall_cycles) {
  line(cycle, format("stall       %llu cycles", static_cast<unsigned long long>(stall_cycles)));
}

std::string TraceObserver::text() const {
  if (!truncated()) return text_;
  return text_ + format("... %zu further events suppressed\n", events_ - max_events_);
}

void TeeObserver::on_move(std::uint64_t cycle, int bus) {
  if (a_ != nullptr) a_->on_move(cycle, bus);
  if (b_ != nullptr) b_->on_move(cycle, bus);
}

void TeeObserver::on_guard_squash(std::uint64_t cycle, int bus) {
  if (a_ != nullptr) a_->on_guard_squash(cycle, bus);
  if (b_ != nullptr) b_->on_guard_squash(cycle, bus);
}

void TeeObserver::on_trigger(std::uint64_t cycle, int fu, ir::Opcode op) {
  if (a_ != nullptr) a_->on_trigger(cycle, fu, op);
  if (b_ != nullptr) b_->on_trigger(cycle, fu, op);
}

void TeeObserver::on_rf_read(std::uint64_t cycle, int rf, int index) {
  if (a_ != nullptr) a_->on_rf_read(cycle, rf, index);
  if (b_ != nullptr) b_->on_rf_read(cycle, rf, index);
}

void TeeObserver::on_rf_write(std::uint64_t cycle, int rf, int index, std::uint32_t value) {
  if (a_ != nullptr) a_->on_rf_write(cycle, rf, index, value);
  if (b_ != nullptr) b_->on_rf_write(cycle, rf, index, value);
}

void TeeObserver::on_stall(std::uint64_t cycle, std::uint64_t stall_cycles) {
  if (a_ != nullptr) a_->on_stall(cycle, stall_cycles);
  if (b_ != nullptr) b_->on_stall(cycle, stall_cycles);
}

void TeeObserver::on_block_enter(std::uint64_t cycle, std::uint32_t block) {
  if (a_ != nullptr) a_->on_block_enter(cycle, block);
  if (b_ != nullptr) b_->on_block_enter(cycle, block);
}

void TeeObserver::on_exec(std::uint64_t cycle, std::uint32_t pc, bool shadow) {
  if (a_ != nullptr) a_->on_exec(cycle, pc, shadow);
  if (b_ != nullptr) b_->on_exec(cycle, pc, shadow);
}

void TeeObserver::on_overhead(std::uint64_t cycle, OverheadKind kind, std::uint64_t cycles) {
  if (a_ != nullptr) a_->on_overhead(cycle, kind, cycles);
  if (b_ != nullptr) b_->on_overhead(cycle, kind, cycles);
}

void TeeObserver::on_guard_write(std::uint64_t cycle, int guard, std::uint32_t value) {
  if (a_ != nullptr) a_->on_guard_write(cycle, guard, value);
  if (b_ != nullptr) b_->on_guard_write(cycle, guard, value);
}

void TeeObserver::on_store(std::uint64_t cycle, std::uint32_t addr, std::uint32_t value,
                           std::uint8_t width) {
  if (a_ != nullptr) a_->on_store(cycle, addr, value, width);
  if (b_ != nullptr) b_->on_store(cycle, addr, value, width);
}

void TraceObserver::on_block_enter(std::uint64_t cycle, std::uint32_t block) {
  line(cycle, format("block enter b%u", block));
}

void ProfileCollector::on_block_enter(std::uint64_t, std::uint32_t block) {
  if (block_counts_.size() <= block) block_counts_.resize(block + 1, 0);
  ++block_counts_[block];
  if (have_last_) ++edge_counts_[{last_block_, block}];
  have_last_ = true;
  last_block_ = block;
}

}  // namespace ttsc::sim
