// Batched lockstep fault-injection execution (see lockstep.hpp).
//
// Each engine below is a line-for-line mirror of the corresponding
// run_fast<kObserve=false, kHarden=true> loop (scalar/scalar.cpp,
// vliw/sim.cpp, tta/sim.cpp) with lane hooks inserted at every point the
// leader reads or writes architectural state. The mirrored loops are the
// correctness-critical part: any drift from the scalar semantics is caught
// by the differential fleet in tests/lockstep_test.cpp, which locks every
// lane's ExecResult and memory image to a scalar hardened rerun.
//
// Hook discipline shared by all three engines:
//  * lane processing happens BEFORE the leader's write lands, using operand
//    values captured before the leader mutates them (read-before-write);
//    set() then compares the lane's value against the value the leader is
//    about to write, maintaining the exact-diff invariant;
//  * stores are the one exception: the leader's bytes land first, and each
//    lane's bytes are then set-or-erased against the post-store image;
//  * the `affected` lane set for an operation is the union of the dirty
//    masks of every location it reads or writes (plus, for loads, lanes
//    whose memory delta overlaps the accessed range), always intersected
//    with the live mask — a fully clean lane never costs more than the
//    mask-word unions.
#include "sim/lockstep.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "sim/harden.hpp"
#include "sim/observer.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace ttsc::sim {

using ir::Opcode;

// ---- MemDelta ----------------------------------------------------------

namespace {

template <typename Vec>
auto delta_lower_bound(Vec& bytes, std::uint32_t addr) {
  return std::lower_bound(
      bytes.begin(), bytes.end(), addr,
      [](const std::pair<std::uint32_t, std::uint8_t>& e, std::uint32_t a) { return e.first < a; });
}

}  // namespace

std::uint64_t MemDelta::page_bit(std::uint32_t addr) const {
  return 1ull << ((addr >> 4) & 63);
}

void MemDelta::set(std::uint32_t addr, std::uint8_t lane_byte, std::uint8_t leader_byte) {
  auto it = delta_lower_bound(bytes_, addr);
  if (lane_byte == leader_byte) {
    if (it != bytes_.end() && it->first == addr) {
      bytes_.erase(it);
      if (bytes_.empty()) {  // exact again: drop the stale superset
        lo_ = 0xffffffffu;
        hi_ = 0;
        pages_ = 0;
      }
    }
    return;
  }
  if (it != bytes_.end() && it->first == addr) {
    it->second = lane_byte;
  } else {
    bytes_.insert(it, {addr, lane_byte});
    lo_ = std::min(lo_, addr);
    hi_ = std::max(hi_, addr);
    pages_ |= page_bit(addr);
  }
}

const std::uint8_t* MemDelta::find(std::uint32_t addr) const {
  if (addr < lo_ || addr > hi_ || (pages_ & page_bit(addr)) == 0) return nullptr;
  auto it = delta_lower_bound(bytes_, addr);
  if (it != bytes_.end() && it->first == addr) return &it->second;
  return nullptr;
}

bool MemDelta::overlaps(std::uint32_t addr, std::uint32_t len) const {
  if (len == 0 || bytes_.empty()) return false;
  const std::uint64_t last = static_cast<std::uint64_t>(addr) + len - 1;
  if (addr > hi_ || last < lo_) return false;
  const std::uint32_t pa = addr >> 4;
  const std::uint64_t pb = last >> 4;
  if (pb - pa < 63) {  // spans <64 pages: exact bloom window (rotl handles wrap)
    const std::uint64_t n = pb - pa + 1;
    const std::uint64_t window = std::rotl(n == 64 ? ~0ull : (1ull << n) - 1, pa & 63);
    if ((pages_ & window) == 0) return false;
  }
  auto it = delta_lower_bound(bytes_, addr);
  return it != bytes_.end() &&
         static_cast<std::uint64_t>(it->first) < static_cast<std::uint64_t>(addr) + len;
}

ir::Memory materialize(const ir::Memory& leader, const MemDelta& delta) {
  ir::Memory out = leader;
  for (const auto& [addr, byte] : delta.entries()) out.store8(addr, byte);
  return out;
}

std::uint64_t checksum_with_delta(const ir::Memory& leader, const MemDelta& delta,
                                  std::uint32_t addr, std::uint32_t len) {
  const std::span<const std::uint8_t> view = leader.view(addr, len);
  const auto es = delta.entries();
  auto it = std::lower_bound(
      es.begin(), es.end(), addr,
      [](const std::pair<std::uint32_t, std::uint8_t>& e, std::uint32_t a) { return e.first < a; });
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint32_t i = 0; i < len; ++i) {
    std::uint8_t byte = view[i];
    if (it != es.end() && it->first == addr + i) {
      byte = it->second;
      ++it;
    }
    h ^= byte;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// Call fn(lane) for every set bit.
template <typename Fn>
void for_lanes(const LaneMask& m, Fn&& fn) {
  for (int wi = 0; wi < LaneMask::kWords; ++wi) {
    std::uint64_t word = m.w[static_cast<std::size_t>(wi)];
    while (word != 0) {
      fn(wi * 64 + std::countr_zero(word));
      word &= word - 1;
    }
  }
}

// ---- Sparse lane diffs -------------------------------------------------

/// Structure-of-arrays diff of up to kMaxLanes lanes against the leader.
/// Every piece of leader state the lanes can diverge in gets a location id;
/// `mask[id]` is the set of lanes whose value at that location differs and
/// `value[lane * n_ids + id]` holds the differing value. All storage is
/// allocated once at batch start; the per-cycle loop only flips mask bits.
struct LaneDiffs {
  std::size_t n_ids = 0;
  std::vector<LaneMask> mask;        // [id] -> lanes differing from leader
  std::vector<std::uint32_t> value;  // [lane * n_ids + id] -> lane value
  std::array<std::uint32_t, kMaxLanes> dirty_count{};  // dirty ids per lane
  std::array<MemDelta, kMaxLanes> delta;
  LaneMask diff_mask = 0;   // lanes with any dirty id or delta byte
  LaneMask delta_mask = 0;  // lanes with a non-empty memory delta

  void init(std::size_t ids, int lanes) {
    n_ids = ids;
    mask.assign(ids, 0u);
    value.assign(ids * static_cast<std::size_t>(lanes), 0u);
  }

  bool dirty(int lane, std::size_t id) const { return mask[id].test(lane); }

  std::uint32_t get(int lane, std::size_t id, std::uint32_t leader_value) const {
    return dirty(lane, id) ? value[static_cast<std::size_t>(lane) * n_ids + id] : leader_value;
  }

  void update_diff(int lane) {
    const LaneMask bit = LaneMask::bit(lane);
    if (delta[static_cast<std::size_t>(lane)].empty()) {
      delta_mask &= ~bit;
    } else {
      delta_mask |= bit;
    }
    if (dirty_count[static_cast<std::size_t>(lane)] != 0 || (delta_mask & bit) != 0) {
      diff_mask |= bit;
    } else {
      diff_mask &= ~bit;
    }
  }

  /// Set-or-erase: record the lane's value at `id` against the value the
  /// leader holds (or is about to write) there.
  void set(int lane, std::size_t id, std::uint32_t lane_value, std::uint32_t leader_value) {
    const LaneMask bit = LaneMask::bit(lane);
    if (lane_value == leader_value) {
      if ((mask[id] & bit).any()) {
        mask[id] &= ~bit;
        --dirty_count[static_cast<std::size_t>(lane)];
        update_diff(lane);
      }
      return;
    }
    if ((mask[id] & bit) == 0) {
      mask[id] |= bit;
      ++dirty_count[static_cast<std::size_t>(lane)];
      diff_mask |= bit;
    }
    value[static_cast<std::size_t>(lane) * n_ids + id] = lane_value;
  }

  /// Drop every lane's dirt at `id` (a ring/pending entry that was consumed
  /// and is about to be reused for an unrelated write).
  void clear_all(std::size_t id) {
    for_lanes(mask[id], [&](int l) {
      --dirty_count[static_cast<std::size_t>(l)];
      update_diff(l);
    });
    mask[id] = 0;
  }

  void mem_set(int lane, std::uint32_t addr, std::uint8_t lane_byte, std::uint8_t leader_byte) {
    delta[static_cast<std::size_t>(lane)].set(addr, lane_byte, leader_byte);
    update_diff(lane);
  }
};

// ---- Batch bookkeeping -------------------------------------------------

/// Live/evicted masks plus the per-lane fault cursors. Fault application is
/// pointer-gated exactly like the scalar loops: every head entry whose cycle
/// has been reached applies, in FaultSet array order per lane.
struct BatchCore {
  LaneDiffs d;
  int n_lanes = 0;
  LaneMask live = 0;
  LaneMask evicted_mask = 0;
  LaneMask fault_pending = 0;
  std::array<const StateFault*, kMaxLanes> fcur{};
  std::array<const StateFault*, kMaxLanes> fend{};
  std::uint64_t next_due = ~0ull;
  std::array<std::uint64_t, kMaxLanes> diverge_cycle{};
  std::uint64_t divergences = 0;
  std::uint64_t evictions = 0;

  void init(std::size_t n_ids, std::span<const FaultSet> lane_faults) {
    n_lanes = static_cast<int>(lane_faults.size());
    TTSC_ASSERT(n_lanes >= 1 && n_lanes <= kMaxLanes, "lockstep: 1..kMaxLanes lanes per batch");
    d.init(n_ids, n_lanes);
    live = LaneMask::first_n(n_lanes);
    for (int l = 0; l < n_lanes; ++l) {
      const auto sl = static_cast<std::size_t>(l);
      fcur[sl] = lane_faults[sl].faults.data();
      fend[sl] = fcur[sl] + lane_faults[sl].faults.size();
      if (fcur[sl] != fend[sl]) fault_pending |= LaneMask::bit(l);
    }
    recompute_next_due();
  }

  void recompute_next_due() {
    next_due = ~0ull;
    for_lanes(fault_pending & live, [&](int l) {
      next_due = std::min(next_due, fcur[static_cast<std::size_t>(l)]->cycle);
    });
  }

  /// Apply every due fault via fn(lane, fault). Fast-exits on the cached
  /// minimum head cycle, so fault-free stretches cost one compare.
  template <typename Fn>
  void apply_due(std::uint64_t now, Fn&& fn) {
    if (now < next_due) return;
    for_lanes(fault_pending & live, [&](int l) {
      const auto sl = static_cast<std::size_t>(l);
      while (fcur[sl] != fend[sl] && fcur[sl]->cycle <= now) {
        fn(l, *fcur[sl]);
        ++fcur[sl];
      }
      if (fcur[sl] == fend[sl]) fault_pending &= ~LaneMask::bit(l);
    });
    recompute_next_due();
  }

  /// Remove a lane from lockstep. `proven` marks a detected control-flow /
  /// timing divergence; conservative evictions (e.g. a dirty memory-address
  /// operand) count as evictions only.
  void evict(int lane, std::uint64_t cycle, bool proven) {
    const LaneMask bit = LaneMask::bit(lane);
    live &= ~bit;
    evicted_mask |= bit;
    diverge_cycle[static_cast<std::size_t>(lane)] = cycle;
    ++evictions;
    if (proven) ++divergences;
    recompute_next_due();
  }

  void evict_lanes(LaneMask lanes, std::uint64_t cycle, bool proven) {
    for_lanes(lanes, [&](int l) { evict(l, cycle, proven); });
  }

  /// True when no live lane can ever diverge from the leader again: no
  /// state/memory diff left and no fault still to apply.
  bool settled() const { return (d.diff_mask & live) == 0 && (fault_pending & live) == 0; }
};

// ---- Lane-side operand evaluation --------------------------------------

/// Loads patched through a lane's memory delta (nullptr = leader view).
[[gnu::always_inline]] inline std::uint32_t load8d(const ir::Memory& mem, const MemDelta* delta, std::uint32_t addr) {
  if (delta != nullptr) {
    if (const std::uint8_t* p = delta->find(addr)) return *p;
  }
  return mem.load8(addr);
}

[[gnu::always_inline]] inline std::uint32_t load16d(const ir::Memory& mem, const MemDelta* delta, std::uint32_t addr) {
  return load8d(mem, delta, addr) | (load8d(mem, delta, addr + 1) << 8);
}

[[gnu::always_inline]] inline std::uint32_t load32d(const ir::Memory& mem, const MemDelta* delta, std::uint32_t addr) {
  return load8d(mem, delta, addr) | (load8d(mem, delta, addr + 1) << 8) |
         (load8d(mem, delta, addr + 2) << 16) | (load8d(mem, delta, addr + 3) << 24);
}

/// Exact dirty-address store: lane `l` stores `lane_val` at `lane_addr`
/// while the leader is about to store `leader_val` at `leader_addr` (`mem`
/// is the pre-store image). Rewrites the lane's delta over both (possibly
/// overlapping) byte ranges so the exact-diff invariant holds afterwards:
/// over the leader's range the lane keeps its own pre-store bytes, over the
/// lane's range it holds the stored value against the leader's post-store
/// image.
void store_diverged(LaneDiffs& d, int l, const ir::Memory& mem, int nbytes,
                    std::uint32_t leader_addr, std::uint32_t leader_val,
                    std::uint32_t lane_addr, std::uint32_t lane_val) {
  const MemDelta& delta = d.delta[static_cast<std::size_t>(l)];
  std::array<std::uint8_t, 4> lane_pre{};
  for (int i = 0; i < nbytes; ++i) {
    lane_pre[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        load8d(mem, &delta, leader_addr + static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < nbytes; ++i) {
    d.mem_set(l, leader_addr + static_cast<std::uint32_t>(i),
              lane_pre[static_cast<std::size_t>(i)],
              static_cast<std::uint8_t>(leader_val >> (8 * i)));
  }
  for (int i = 0; i < nbytes; ++i) {
    const std::uint32_t x = lane_addr + static_cast<std::uint32_t>(i);
    const std::uint32_t off = x - leader_addr;
    const std::uint8_t leader_post =
        off < static_cast<std::uint32_t>(nbytes)
            ? static_cast<std::uint8_t>(leader_val >> (8 * off))
            : static_cast<std::uint8_t>(mem.load8(x));
    d.mem_set(l, x, static_cast<std::uint8_t>(lane_val >> (8 * i)), leader_post);
  }
}

/// One value-producing step, shared verbatim by leader (delta = nullptr)
/// and lanes. Expression-identical to the run_fast compute switches.
[[gnu::always_inline]] inline std::uint32_t lane_compute(Opcode op, std::uint32_t a, std::uint32_t b, const ir::Memory& mem,
                           const MemDelta* delta) {
  switch (op) {
    case Opcode::Add: return a + b;
    case Opcode::Sub: return a - b;
    case Opcode::Mul: return a * b;
    case Opcode::And: return a & b;
    case Opcode::Ior: return a | b;
    case Opcode::Xor: return a ^ b;
    case Opcode::Shl: return a << (b & 31);
    case Opcode::Shru: return a >> (b & 31);
    case Opcode::Shr:
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
    case Opcode::Eq: return a == b ? 1 : 0;
    case Opcode::Gt: return static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0;
    case Opcode::Gtu: return a > b ? 1 : 0;
    case Opcode::Sxhw: return static_cast<std::uint32_t>(sign_extend(a, 16));
    case Opcode::Sxqw: return static_cast<std::uint32_t>(sign_extend(a, 8));
    case Opcode::MovI:
    case Opcode::Copy: return a;
    case Opcode::Ldw: return load32d(mem, delta, a);
    case Opcode::Ldh:
      return static_cast<std::uint32_t>(sign_extend(load16d(mem, delta, a), 16));
    case Opcode::Ldhu: return load16d(mem, delta, a);
    case Opcode::Ldq: return static_cast<std::uint32_t>(sign_extend(load8d(mem, delta, a), 8));
    case Opcode::Ldqu: return load8d(mem, delta, a);
    default: TTSC_UNREACHABLE("lane_compute: unsupported opcode");
  }
}

// ---- Scalar tail resume ------------------------------------------------

/// Everything a diverged scalar lane needs to continue standalone from the
/// leader cycle it was evicted at: its full register/scoreboard view, its
/// materialized memory image, and its remaining fault cursor. Captured at
/// the eviction site as a *top-of-loop* state — the divergent instruction
/// itself has not executed yet, so the tail interpreter re-issues it with
/// the lane's own operands (taking the lane's branch direction, shift
/// duration or trap naturally). `instrs` is adjusted at sites past the
/// leader's `++result.instrs`.
struct ScalarTailState {
  std::vector<std::uint32_t> regs;
  std::vector<std::uint64_t> ready;
  ir::Memory mem;  // no default ctor: the struct is always aggregate-built
  std::uint64_t cycle;
  std::uint32_t pc;
  std::uint64_t instrs;
  const StateFault* fcur;
  const StateFault* fend;
};

/// Continue a lane from a captured top-of-loop state. Byte-for-byte mirror
/// of ScalarSim::run_fast<false, true> (scalar/scalar.cpp) from an arbitrary
/// iteration boundary; the lockstep invariant (lane state == standalone
/// state until the divergence cycle) makes the tail's results identical to a
/// from-scratch hardened run — the differential corpus locks this.
scalar::ExecResult run_scalar_tail(const PredecodedScalar& pre, const mach::Machine& machine,
                                   ScalarTailState& st, std::uint64_t max_cycles) {
  const mach::ScalarTiming& timing = machine.scalar;
  std::vector<std::uint32_t>& regs = st.regs;
  std::vector<std::uint64_t>& ready = st.ready;
  ir::Memory& mem = st.mem;
  std::uint64_t cycle = st.cycle;
  std::uint32_t pc = st.pc;

  scalar::ExecResult result;
  result.instrs = st.instrs;

  auto set_trap = [&](TrapReason reason, std::uint32_t detail) {
    result.status = ExecStatus::Trapped;
    result.trap = TrapInfo{reason, cycle, -1, detail};
    result.cycles = cycle;
    result.rf_state = regs;
  };

  auto apply_fault = [&](const StateFault& f) {
    if (f.kind != FaultKind::RfBit) return;
    if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= machine.rfs.size()) return;
    if (f.index < 0 || f.index >= machine.rfs[static_cast<std::size_t>(f.unit)].size) return;
    regs[pre.rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index)] ^=
        fault_mask(f);
  };

  while (true) {
    while (st.fcur != st.fend && st.fcur->cycle <= cycle) {
      apply_fault(*st.fcur);
      ++st.fcur;
    }
    if (pc >= pre.instrs.size()) {
      set_trap(TrapReason::PcOutOfRange, pc);
      return result;
    }
    const ScalarPInstr& in = pre.instrs[pc];
    if (in.trap != 0) {
      set_trap(static_cast<TrapReason>(in.trap - 1), in.trap_detail);
      return result;
    }

    std::uint64_t issue = cycle;
    std::uint32_t a = in.a_val;
    std::uint32_t b = in.b_val;
    if (!in.a_imm) {
      issue = std::max(issue, ready[in.a_slot]);
      a = regs[in.a_slot];
    }
    if (!in.b_imm) {
      issue = std::max(issue, ready[in.b_slot]);
      b = regs[in.b_slot];
    }
    if (in.var_shift) {
      issue += static_cast<std::uint64_t>(timing.variable_shift_setup) +
               static_cast<std::uint64_t>(timing.variable_shift_per_bit) * (b & 31);
    } else {
      issue += in.extra_words;
    }
    if (issue + 1 > max_cycles) {
      result.status = ExecStatus::TimedOut;
      result.cycles = cycle;
      result.rf_state = regs;
      return result;
    }
    ++result.instrs;
    if (ir::is_memory(in.op) && !mem_in_bounds(in.op, a, mem.size())) {
      set_trap(TrapReason::MemoryOutOfRange, a);
      return result;
    }

    std::uint32_t value = 0;
    switch (in.op) {
      case Opcode::Stw: mem.store32(a, b); break;
      case Opcode::Sth: mem.store16(a, static_cast<std::uint16_t>(b)); break;
      case Opcode::Stq: mem.store8(a, static_cast<std::uint8_t>(b)); break;
      case Opcode::Jump: {
        cycle = issue + 1 + static_cast<std::uint64_t>(timing.branch_penalty);
        pc = in.target_pc;
        result.cycles = cycle;
        continue;
      }
      case Opcode::Bnz: {
        const bool taken = a != 0;
        cycle = issue + 1 + (taken ? static_cast<std::uint64_t>(timing.branch_penalty) : 0ull);
        pc = taken ? in.target_pc : pc + 1;
        result.cycles = cycle;
        continue;
      }
      case Opcode::Ret: {
        result.cycles = issue + 1;
        result.ret = a;
        result.rf_state = regs;
        return result;
      }
      default: value = lane_compute(in.op, a, b, mem, nullptr); break;
    }

    cycle = issue + 1;
    if (in.dst_slot >= 0) {
      const std::size_t slot = static_cast<std::size_t>(in.dst_slot);
      regs[slot] = value;
      ready[slot] =
          issue + 1 + static_cast<std::uint64_t>(in.stall) + (timing.forwarding ? 0 : 1);
    }
    ++pc;
  }
}

// ---- Result assembly ---------------------------------------------------

/// Build the BatchResult: per lane, either a scalar-fast-path rerun
/// (evicted) or the leader result with the lane's overlays applied.
template <typename ResultT, typename OverlayFn, typename RerunFn>
BatchResult<ResultT> assemble_batch(BatchCore& core, ResultT leader_result, ir::Memory leader_mem,
                                    OverlayFn&& overlay, RerunFn&& rerun) {
  BatchResult<ResultT> out;
  out.leader = std::move(leader_result);
  out.leader_mem = std::move(leader_mem);
  out.divergences = core.divergences;
  out.evictions = core.evictions;
  out.lanes.resize(static_cast<std::size_t>(core.n_lanes));
  for (int l = 0; l < core.n_lanes; ++l) {
    const auto sl = static_cast<std::size_t>(l);
    LaneOutcome<ResultT>& lo = out.lanes[sl];
    if (core.evicted_mask.test(l)) {
      lo.evicted = true;
      lo.diverge_cycle = core.diverge_cycle[sl];
      rerun(l, lo);
      continue;
    }
    lo.result = out.leader;
    overlay(l, lo.result);
    lo.delta = std::move(core.d.delta[sl]);
    lo.converged = core.d.dirty_count[sl] == 0 && lo.delta.empty();
  }
  return out;
}

}  // namespace

// ---- Scalar engine -----------------------------------------------------
//
// Mirrors ScalarSim::run_fast<false, true> (scalar/scalar.cpp). Location
// ids are the flat RF slots only: the `ready` scoreboard timing is shared
// by construction (reads stall on shared issue cycles), except for the
// variable-shift loop whose duration depends on the masked shift amount —
// a lane whose masked amount differs is a proven timing divergence.

ScalarBatchResult run_scalar_batch(const scalar::ScalarProgram& program,
                                   const mach::Machine& machine,
                                   std::shared_ptr<const PredecodedScalar> pre_ptr,
                                   const ir::Memory& initial_mem,
                                   std::span<const FaultSet> lane_faults,
                                   std::uint64_t max_cycles, const scalar::ExecResult* reference,
                                   const ir::Memory* reference_mem) {
  TTSC_ASSERT(pre_ptr != nullptr, "run_scalar_batch needs a predecoded program");
  TTSC_ASSERT((reference == nullptr) == (reference_mem == nullptr),
              "reference result and memory must be passed together");
  const PredecodedScalar& pre = *pre_ptr;
  const mach::ScalarTiming& timing = machine.scalar;

  BatchCore core;
  core.init(pre.rf_slots, lane_faults);
  LaneDiffs& d = core.d;

  ir::Memory mem = initial_mem;
  std::vector<std::uint32_t> regs(pre.rf_slots, 0u);
  std::vector<std::uint64_t> ready(pre.rf_slots, 0ull);

  scalar::ExecResult result;
  std::uint64_t cycle = static_cast<std::uint64_t>(timing.pipeline_stages - 1);  // fill
  std::uint32_t pc = 0;

  // Tail-resume captures, one per evicted lane. Until its divergence cycle a
  // lane's state is the leader's plus its diffs — byte-identical to a
  // standalone hardened run — so the rerun continues from the capture
  // instead of re-simulating the shared prefix from cycle 0.
  std::vector<std::pair<int, ScalarTailState>> tails;
  auto capture_tail = [&](int l, std::uint64_t instrs_done) {
    const auto sl = static_cast<std::size_t>(l);
    ScalarTailState st{regs,  ready,       materialize(mem, d.delta[sl]), cycle,
                       pc,    instrs_done, core.fcur[sl],                 core.fend[sl]};
    const std::size_t base = sl * d.n_ids;
    for (std::uint32_t id = 0; id < pre.rf_slots; ++id) {
      if (d.dirty(l, id)) st.regs[id] = d.value[base + id];
    }
    tails.emplace_back(l, std::move(st));
  };

  auto rerun = [&](int lane, LaneOutcome<scalar::ExecResult>& lo) {
    for (auto& [l, st] : tails) {
      if (l == lane) {
        lo.result = run_scalar_tail(pre, machine, st, max_cycles);
        lo.mem.emplace(std::move(st.mem));
        return;
      }
    }
    // No capture (defensive fallback): full from-scratch hardened rerun.
    ir::Memory m = initial_mem;
    SimOptions o;
    o.harden = true;
    o.faults = &lane_faults[static_cast<std::size_t>(lane)];
    scalar::ScalarSim s(program, machine, m, o);
    s.use_predecoded(pre_ptr);
    lo.result = s.run(max_cycles);
    lo.mem.emplace(std::move(m));
  };

  // Halt: `ret_id` is the flat RF slot the return value was read from
  // (-1 when immediate or when the halt carries no return value).
  auto finish = [&](scalar::ExecResult leader, ir::Memory leader_mem, std::int32_t ret_id) {
    auto overlay = [&](int l, scalar::ExecResult& r) {
      for (std::uint32_t id = 0; id < pre.rf_slots; ++id) {
        if (d.dirty(l, id)) r.rf_state[id] = d.value[static_cast<std::size_t>(l) * d.n_ids + id];
      }
      if (ret_id >= 0 && d.dirty(l, static_cast<std::size_t>(ret_id))) {
        r.ret = d.value[static_cast<std::size_t>(l) * d.n_ids + static_cast<std::size_t>(ret_id)];
      }
    };
    return assemble_batch(core, std::move(leader), std::move(leader_mem), overlay, rerun);
  };

  auto set_trap = [&](TrapReason reason, std::uint32_t detail) {
    result.status = ExecStatus::Trapped;
    result.trap = TrapInfo{reason, cycle, -1, detail};
    result.cycles = cycle;
    result.rf_state = regs;
  };

  auto apply_lane_fault = [&](int lane, const StateFault& f) {
    if (f.kind != FaultKind::RfBit) return;
    if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= machine.rfs.size()) return;
    if (f.index < 0 || f.index >= machine.rfs[static_cast<std::size_t>(f.unit)].size) return;
    const std::size_t slot =
        pre.rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index);
    const std::uint32_t lv = d.get(lane, slot, regs[slot]) ^ fault_mask(f);
    d.set(lane, slot, lv, regs[slot]);
  };

  while (true) {
    core.apply_due(cycle, apply_lane_fault);
    if (reference != nullptr && core.settled()) {
      return finish(*reference, *reference_mem, /*ret_id=*/-1);
    }
    // All-clean fast path: when no live lane differs anywhere (diff_mask
    // covers dirty ids and memory deltas both), every lane hook below is a
    // no-op — its masks intersected with `live` are zero — so the leader
    // executes the instruction at plain fast-path cost. Evicted lanes may
    // hold stale dirt (their clear_all is skipped too); every consumer
    // filters with `& core.live`, so that dirt is unreachable.
    const bool lanes_dirty = (d.diff_mask & core.live) != 0;
    if (pc >= pre.instrs.size()) {
      set_trap(TrapReason::PcOutOfRange, pc);
      return finish(std::move(result), std::move(mem), -1);
    }
    const ScalarPInstr& in = pre.instrs[pc];
    if (in.trap != 0) {
      set_trap(static_cast<TrapReason>(in.trap - 1), in.trap_detail);
      return finish(std::move(result), std::move(mem), -1);
    }

    std::uint64_t issue = cycle;
    std::uint32_t a = in.a_val;
    std::uint32_t b = in.b_val;
    if (!in.a_imm) {
      issue = std::max(issue, ready[in.a_slot]);
      a = regs[in.a_slot];
    }
    if (!in.b_imm) {
      issue = std::max(issue, ready[in.b_slot]);
      b = regs[in.b_slot];
    }
    if (in.var_shift) {
      // The shift-loop duration depends on the masked amount: a lane whose
      // amount differs runs a different number of cycles — proven timing
      // divergence (the result diff alone would be handled below).
      if (lanes_dirty && !in.b_imm) {
        LaneMask divergent = 0;
        for_lanes(d.mask[in.b_slot] & core.live, [&](int l) {
          if ((d.get(l, in.b_slot, b) & 31) != (b & 31)) {
            divergent |= LaneMask::bit(l);
            capture_tail(l, result.instrs);  // pre-increment: instr not issued yet
          }
        });
        core.evict_lanes(divergent, cycle, /*proven=*/true);
      }
      issue += static_cast<std::uint64_t>(timing.variable_shift_setup) +
               static_cast<std::uint64_t>(timing.variable_shift_per_bit) * (b & 31);
    } else {
      issue += in.extra_words;
    }
    if (issue + 1 > max_cycles) {
      result.status = ExecStatus::TimedOut;
      result.cycles = cycle;
      result.rf_state = regs;
      return finish(std::move(result), std::move(mem), -1);
    }
    ++result.instrs;
    if (ir::is_memory(in.op)) {
      const bool leader_ok = mem_in_bounds(in.op, a, mem.size());
      if (lanes_dirty && !in.a_imm) {
        if (ir::is_load(in.op) && leader_ok) {
          // A dirty load address stays exact in lockstep: the operand hook
          // below reads the lane's own address through its delta. Only a
          // lane failing the bounds check the leader passes behaves
          // differently (it traps) — proven divergence.
          LaneMask oob = 0;
          for_lanes(d.mask[in.a_slot] & core.live, [&](int l) {
            if (!mem_in_bounds(in.op, d.get(l, in.a_slot, a), mem.size())) {
              oob |= LaneMask::bit(l);
              capture_tail(l, result.instrs - 1);  // tail re-counts this instr
            }
          });
          core.evict_lanes(oob, cycle, /*proven=*/true);
        } else if (!leader_ok) {
          // The leader traps here; any dirty-address lane's TrapInfo detail
          // would differ — proven.
          for_lanes(d.mask[in.a_slot] & core.live,
                    [&](int l) { capture_tail(l, result.instrs - 1); });
          core.evict_lanes(d.mask[in.a_slot] & core.live, cycle, /*proven=*/true);
        } else {
          // Dirty store addresses stay exact too: store_diverged rewrites
          // the lane's delta over the leader's range and the lane's own.
          // Only a lane failing the bounds check traps — proven divergence.
          const int nbytes = mem_access_bytes(in.op);
          LaneMask oob = 0;
          for_lanes(d.mask[in.a_slot] & core.live, [&](int l) {
            const std::uint32_t la = d.get(l, in.a_slot, a);
            if (!mem_in_bounds(in.op, la, mem.size())) {
              oob |= LaneMask::bit(l);
              capture_tail(l, result.instrs - 1);  // tail re-counts this instr
              return;
            }
            const std::uint32_t lb = in.b_imm ? b : d.get(l, in.b_slot, b);
            store_diverged(d, l, mem, nbytes, a, b, la, lb);
          });
          core.evict_lanes(oob, cycle, /*proven=*/true);
        }
      }
      if (!leader_ok) {
        set_trap(TrapReason::MemoryOutOfRange, a);
        return finish(std::move(result), std::move(mem), -1);
      }
    }

    switch (in.op) {
      case Opcode::Stw:
      case Opcode::Sth:
      case Opcode::Stq: {
        // Leader bytes land first; lane bytes set-or-erase against them.
        // `a` is the (shared) address, `b` the data operand.
        switch (in.op) {
          case Opcode::Stw: mem.store32(a, b); break;
          case Opcode::Sth: mem.store16(a, static_cast<std::uint16_t>(b)); break;
          default: mem.store8(a, static_cast<std::uint8_t>(b)); break;
        }
        if (lanes_dirty) {
          const int nbytes = mem_access_bytes(in.op);
          LaneMask affected = d.delta_mask;
          if (!in.b_imm) affected |= d.mask[in.b_slot];
          // Dirty-address lanes were fully handled by store_diverged above.
          if (!in.a_imm) affected &= ~d.mask[in.a_slot];
          for_lanes(affected & core.live, [&](int l) {
            if (in.b_imm || !d.dirty(l, in.b_slot)) {
              // Clean data: only process lanes whose delta overlaps the range
              // (their divergent bytes get overwritten and erased).
              if (!d.delta[static_cast<std::size_t>(l)].overlaps(
                      a, static_cast<std::uint32_t>(nbytes))) {
                return;
              }
            }
            const std::uint32_t lb = in.b_imm ? b : d.get(l, in.b_slot, b);
            for (int i = 0; i < nbytes; ++i) {
              d.mem_set(l, a + static_cast<std::uint32_t>(i),
                        static_cast<std::uint8_t>(lb >> (8 * i)),
                        static_cast<std::uint8_t>(b >> (8 * i)));
            }
          });
        }
        break;
      }
      case Opcode::Jump: {
        cycle = issue + 1 + static_cast<std::uint64_t>(timing.branch_penalty);
        pc = in.target_pc;
        result.cycles = cycle;
        continue;
      }
      case Opcode::Bnz: {
        const bool taken = a != 0;
        if (lanes_dirty && !in.a_imm) {
          LaneMask divergent = 0;
          for_lanes(d.mask[in.a_slot] & core.live, [&](int l) {
            if ((d.get(l, in.a_slot, a) != 0) != taken) {
              divergent |= LaneMask::bit(l);
              capture_tail(l, result.instrs - 1);  // tail re-counts this instr
            }
          });
          core.evict_lanes(divergent, cycle, /*proven=*/true);
        }
        cycle = issue + 1 + (taken ? static_cast<std::uint64_t>(timing.branch_penalty) : 0ull);
        pc = taken ? in.target_pc : pc + 1;
        result.cycles = cycle;
        continue;
      }
      case Opcode::Ret: {
        result.cycles = issue + 1;
        result.ret = a;
        result.rf_state = regs;
        return finish(std::move(result), std::move(mem),
                      in.a_imm ? -1 : static_cast<std::int32_t>(in.a_slot));
      }
      default: {
        const std::uint32_t value = lane_compute(in.op, a, b, mem, nullptr);
        if (in.dst_slot >= 0) {
          const std::size_t slot = static_cast<std::size_t>(in.dst_slot);
          if (lanes_dirty) {
            LaneMask affected = d.mask[slot];
            if (!in.a_imm) affected |= d.mask[in.a_slot];
            if (!in.b_imm) affected |= d.mask[in.b_slot];
            if (ir::is_load(in.op)) {
              for_lanes(d.delta_mask & core.live, [&](int l) {
                if (d.delta[static_cast<std::size_t>(l)].overlaps(
                        a, static_cast<std::uint32_t>(mem_access_bytes(in.op)))) {
                  affected |= LaneMask::bit(l);
                }
              });
            }
            for_lanes(affected & core.live, [&](int l) {
              const std::uint32_t la = in.a_imm ? a : d.get(l, in.a_slot, a);
              const std::uint32_t lb = in.b_imm ? b : d.get(l, in.b_slot, b);
              const std::uint32_t lv =
                  lane_compute(in.op, la, lb, mem, &d.delta[static_cast<std::size_t>(l)]);
              d.set(l, slot, lv, value);
            });
          }
          regs[slot] = value;
          ready[slot] =
              issue + 1 + static_cast<std::uint64_t>(in.stall) + (timing.forwarding ? 0 : 1);
        }
        break;
      }
    }

    cycle = issue + 1;
    ++pc;
  }
}

// ---- VLIW engine -------------------------------------------------------
//
// Mirrors VliwSim::run_fast<false, true> (vliw/sim.cpp). Location ids are
// the flat RF slots plus one id per write-back ring entry, so an in-flight
// divergent value stays a lane diff until its commit cycle, where it is
// folded into the destination slot's diff and the entry id is cleared for
// reuse. Control flow (transfer_in/pc) and the ring cursor are shared;
// a lane whose Bnz decision differs from the leader's is evicted.

VliwBatchResult run_vliw_batch(const vliw::VliwProgram& program, const mach::Machine& machine,
                               std::shared_ptr<const PredecodedVliw> pre_ptr,
                               const ir::Memory& initial_mem,
                               std::span<const FaultSet> lane_faults, std::uint64_t max_cycles,
                               const vliw::ExecResult* reference,
                               const ir::Memory* reference_mem) {
  TTSC_ASSERT(pre_ptr != nullptr, "run_vliw_batch needs a predecoded program");
  TTSC_ASSERT((reference == nullptr) == (reference_mem == nullptr),
              "reference result and memory must be passed together");
  const PredecodedVliw& pre = *pre_ptr;
  const std::uint64_t ring = static_cast<std::uint64_t>(pre.ring);
  const std::size_t num_bundles = pre.num_bundles();
  const std::size_t row_cap = static_cast<std::size_t>(program.num_slots) * ring;
  const std::size_t eid_base = pre.rf_slots;  // ring entry ids follow the RF slots

  BatchCore core;
  core.init(static_cast<std::size_t>(pre.rf_slots) + ring * row_cap, lane_faults);
  LaneDiffs& d = core.d;

  ir::Memory mem = initial_mem;
  std::vector<std::uint32_t> regs(pre.rf_slots, 0u);
  struct Write {
    std::uint32_t slot;
    std::uint32_t value;
  };
  std::vector<Write> wb(ring * row_cap);
  std::vector<std::uint32_t> wb_count(ring, 0u);

  vliw::ExecResult result;
  std::uint64_t cycle = 0;
  std::size_t pc = 0;
  int transfer_in = -1;
  std::size_t transfer_target = 0;

  // Trap synthesis (see the TTA engine): a lane whose memory address is
  // provably out of bounds traps at exactly this cycle with state the
  // lockstep already holds, so its eviction needs no rerun. `result` carries
  // the shared running counters (ops) accrued to this point.
  struct SynthTrap {
    int lane;
    vliw::ExecResult res;
    ir::Memory mem;
  };
  std::vector<SynthTrap> synths;
  auto synth_trap = [&](int l, int unit, std::uint32_t lane_addr) {
    vliw::ExecResult r = result;
    r.status = ExecStatus::Trapped;
    r.trap = TrapInfo{TrapReason::MemoryOutOfRange, cycle, unit, lane_addr};
    r.cycles = cycle;
    r.rf_state = regs;
    for (std::uint32_t id = 0; id < pre.rf_slots; ++id) {
      if (d.dirty(l, id)) {
        r.rf_state[id] = d.value[static_cast<std::size_t>(l) * d.n_ids + id];
      }
    }
    synths.push_back(
        SynthTrap{l, std::move(r), materialize(mem, d.delta[static_cast<std::size_t>(l)])});
  };

  auto rerun = [&](int lane, LaneOutcome<vliw::ExecResult>& lo) {
    for (SynthTrap& st : synths) {
      if (st.lane == lane) {
        lo.result = std::move(st.res);
        lo.mem.emplace(std::move(st.mem));
        return;
      }
    }
    ir::Memory m = initial_mem;
    SimOptions o;
    o.harden = true;
    o.faults = &lane_faults[static_cast<std::size_t>(lane)];
    vliw::VliwSim s(program, machine, m, o);
    s.use_predecoded(pre_ptr);
    lo.result = s.run(max_cycles);
    lo.mem.emplace(std::move(m));
  };

  auto finish = [&](vliw::ExecResult leader, ir::Memory leader_mem, std::int32_t ret_id) {
    auto overlay = [&](int l, vliw::ExecResult& r) {
      for (std::uint32_t id = 0; id < pre.rf_slots; ++id) {
        if (d.dirty(l, id)) r.rf_state[id] = d.value[static_cast<std::size_t>(l) * d.n_ids + id];
      }
      if (ret_id >= 0 && d.dirty(l, static_cast<std::size_t>(ret_id))) {
        r.ret = d.value[static_cast<std::size_t>(l) * d.n_ids + static_cast<std::size_t>(ret_id)];
      }
    };
    return assemble_batch(core, std::move(leader), std::move(leader_mem), overlay, rerun);
  };

  auto set_trap = [&](TrapReason reason, int unit, std::uint32_t detail) {
    result.status = ExecStatus::Trapped;
    result.trap = TrapInfo{reason, cycle, unit, detail};
    result.cycles = cycle;
    result.rf_state = regs;
  };

  auto apply_lane_fault = [&](int lane, const StateFault& f) {
    if (f.kind != FaultKind::RfBit) return;
    if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= machine.rfs.size()) return;
    if (f.index < 0 || f.index >= machine.rfs[static_cast<std::size_t>(f.unit)].size) return;
    const std::size_t slot =
        pre.rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index);
    const std::uint32_t lv = d.get(lane, slot, regs[slot]) ^ fault_mask(f);
    d.set(lane, slot, lv, regs[slot]);
  };

  std::size_t wb_idx = 0;
  while (cycle < max_cycles) {
    core.apply_due(cycle, apply_lane_fault);
    if (reference != nullptr && core.settled()) {
      return finish(*reference, *reference_mem, /*ret_id=*/-1);
    }
    // All-clean fast path (see the scalar engine): no live lane differs, so
    // every lane hook this cycle is a no-op and only leader state advances.
    const bool lanes_dirty = (d.diff_mask & core.live) != 0;
    if (wb_count[wb_idx] != 0) {
      Write* const commits = &wb[wb_idx * row_cap];
      const std::uint32_t n = wb_count[wb_idx];
      for (std::uint32_t i = 0; i < n; ++i) {
        const Write& w = commits[i];
        if (lanes_dirty) {
          const std::size_t eid = eid_base + wb_idx * row_cap + i;
          for_lanes((d.mask[eid] | d.mask[w.slot]) & core.live, [&](int l) {
            d.set(l, w.slot, d.get(l, eid, w.value), w.value);
          });
          d.clear_all(eid);
        }
        regs[w.slot] = w.value;
      }
      wb_count[wb_idx] = 0;
    }

    if (pc >= num_bundles && transfer_in < 0) {
      set_trap(TrapReason::PcOutOfRange, -1, static_cast<std::uint32_t>(pc));
      return finish(std::move(result), std::move(mem), -1);
    }
    if (pc < num_bundles) {
      const std::uint32_t begin = pre.bundle_begin[pc];
      const std::uint32_t end = pre.bundle_begin[pc + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        const VliwPOp& op = pre.ops[i];
        if (op.is_control && transfer_in >= 0) continue;
        if (op.trap != 0) {
          set_trap(static_cast<TrapReason>(op.trap - 1), op.fu, op.trap_detail);
          return finish(std::move(result), std::move(mem), -1);
        }
        ++result.ops;

        std::uint32_t a = op.a_val;
        std::uint32_t b = op.b_val;
        if (!op.a_imm) a = regs[op.a_slot];
        if (!op.b_imm) b = regs[op.b_slot];
        if (ir::is_memory(op.op)) {
          const bool leader_ok = mem_in_bounds(op.op, a, mem.size());
          if (lanes_dirty && !op.a_imm) {
            if (ir::is_load(op.op) && leader_ok) {
              // Dirty load addresses stay exact (see the scalar engine).
              LaneMask oob = 0;
              for_lanes(d.mask[op.a_slot] & core.live, [&](int l) {
                const std::uint32_t la = d.get(l, op.a_slot, a);
                if (!mem_in_bounds(op.op, la, mem.size())) {
                  oob |= LaneMask::bit(l);
                  synth_trap(l, op.fu, la);
                }
              });
              core.evict_lanes(oob, cycle, /*proven=*/true);
            } else if (!leader_ok) {
              for_lanes(d.mask[op.a_slot] & core.live, [&](int l) {
                const std::uint32_t la = d.get(l, op.a_slot, a);
                if (!mem_in_bounds(op.op, la, mem.size())) synth_trap(l, op.fu, la);
              });
              core.evict_lanes(d.mask[op.a_slot] & core.live, cycle, /*proven=*/true);
            } else {
              // Dirty store addresses stay exact (see the scalar engine).
              const int nbytes = mem_access_bytes(op.op);
              LaneMask oob = 0;
              for_lanes(d.mask[op.a_slot] & core.live, [&](int l) {
                const std::uint32_t la = d.get(l, op.a_slot, a);
                if (!mem_in_bounds(op.op, la, mem.size())) {
                  oob |= LaneMask::bit(l);
                  synth_trap(l, op.fu, la);
                  return;
                }
                const std::uint32_t lb = op.b_imm ? b : d.get(l, op.b_slot, b);
                store_diverged(d, l, mem, nbytes, a, b, la, lb);
              });
              core.evict_lanes(oob, cycle, /*proven=*/true);
            }
          }
          if (!leader_ok) {
            set_trap(TrapReason::MemoryOutOfRange, op.fu, a);
            return finish(std::move(result), std::move(mem), -1);
          }
        }

        switch (op.op) {
          case Opcode::Stw:
          case Opcode::Sth:
          case Opcode::Stq: {
            switch (op.op) {
              case Opcode::Stw: mem.store32(a, b); break;
              case Opcode::Sth: mem.store16(a, static_cast<std::uint16_t>(b)); break;
              default: mem.store8(a, static_cast<std::uint8_t>(b)); break;
            }
            if (lanes_dirty) {
              const int nbytes = mem_access_bytes(op.op);
              LaneMask affected = d.delta_mask;
              if (!op.b_imm) affected |= d.mask[op.b_slot];
              // Dirty-address lanes were fully handled by store_diverged.
              if (!op.a_imm) affected &= ~d.mask[op.a_slot];
              for_lanes(affected & core.live, [&](int l) {
                if (op.b_imm || !d.dirty(l, op.b_slot)) {
                  if (!d.delta[static_cast<std::size_t>(l)].overlaps(
                          a, static_cast<std::uint32_t>(nbytes))) {
                    return;
                  }
                }
                const std::uint32_t lb = op.b_imm ? b : d.get(l, op.b_slot, b);
                for (int j = 0; j < nbytes; ++j) {
                  d.mem_set(l, a + static_cast<std::uint32_t>(j),
                            static_cast<std::uint8_t>(lb >> (8 * j)),
                            static_cast<std::uint8_t>(b >> (8 * j)));
                }
              });
            }
            break;
          }
          case Opcode::Jump:
            transfer_in = machine.delay_slots;
            transfer_target = op.target_pc;
            break;
          case Opcode::Bnz: {
            const bool taken = a != 0;
            if (lanes_dirty && !op.a_imm) {
              LaneMask divergent = 0;
              for_lanes(d.mask[op.a_slot] & core.live, [&](int l) {
                if ((d.get(l, op.a_slot, a) != 0) != taken) divergent |= LaneMask::bit(l);
              });
              core.evict_lanes(divergent, cycle, /*proven=*/true);
            }
            if (taken) {
              transfer_in = machine.delay_slots;
              transfer_target = op.target_pc;
            }
            break;
          }
          case Opcode::Ret:
            result.cycles = cycle + 1;
            result.ret = a;
            result.rf_state = regs;
            return finish(std::move(result), std::move(mem),
                          op.a_imm ? -1 : static_cast<std::int32_t>(op.a_slot));
          default: {
            const std::uint32_t value = lane_compute(op.op, a, b, mem, nullptr);
            if (op.dst_slot >= 0) {
              std::size_t row = wb_idx + static_cast<std::size_t>(op.latency) + 1;
              if (row >= ring) row -= ring;  // latency + 1 < ring: one wrap at most
              const std::uint32_t idx = wb_count[row];
              if (lanes_dirty) {
                const std::size_t eid = eid_base + row * row_cap + idx;
                LaneMask affected = d.mask[eid];
                if (!op.a_imm) affected |= d.mask[op.a_slot];
                if (!op.b_imm) affected |= d.mask[op.b_slot];
                if (ir::is_load(op.op)) {
                  for_lanes(d.delta_mask & core.live, [&](int l) {
                    if (d.delta[static_cast<std::size_t>(l)].overlaps(
                            a, static_cast<std::uint32_t>(mem_access_bytes(op.op)))) {
                      affected |= LaneMask::bit(l);
                    }
                  });
                }
                for_lanes(affected & core.live, [&](int l) {
                  const std::uint32_t la = op.a_imm ? a : d.get(l, op.a_slot, a);
                  const std::uint32_t lb = op.b_imm ? b : d.get(l, op.b_slot, b);
                  const std::uint32_t lv =
                      lane_compute(op.op, la, lb, mem, &d.delta[static_cast<std::size_t>(l)]);
                  d.set(l, eid, lv, value);
                });
              }
              wb[row * row_cap + idx] = Write{static_cast<std::uint32_t>(op.dst_slot), value};
              wb_count[row] = idx + 1;
            }
            break;
          }
        }
      }
    }

    ++cycle;
    if (++wb_idx == ring) wb_idx = 0;
    if (transfer_in >= 0) {
      if (transfer_in == 0) {
        pc = transfer_target;
        transfer_in = -1;
      } else {
        --transfer_in;
        ++pc;
      }
    } else {
      ++pc;
    }
  }
  result.status = ExecStatus::TimedOut;
  result.cycles = max_cycles;
  result.rf_state = regs;
  return finish(std::move(result), std::move(mem), -1);
}

// ---- TTA engine --------------------------------------------------------
//
// Mirrors TtaSim::run_fast<false, true> (tta/sim.cpp). Location ids cover
// every piece of leader state a lane can diverge in: flat RF slots, guard
// registers, FU operand and result ports, the in-flight result ring
// (one id per (column, entry)) and the double-buffered RF/guard pending
// lists (one id per list position). Pending/ring diffs fold into their
// destination's diff at the commit phase that consumes them, mirroring the
// leader's data flow; guard values are stored as 0/1 words. A lane whose
// guard-squash or Bnz decision differs from the leader's is evicted as a
// proven divergence; a dirty trigger value on a memory operation (the
// address) is a conservative eviction.

TtaBatchResult run_tta_batch(const tta::TtaProgram& program, const mach::Machine& machine,
                             std::shared_ptr<const PredecodedTta> pre_ptr,
                             const ir::Memory& initial_mem,
                             std::span<const FaultSet> lane_faults, std::uint64_t max_cycles,
                             const tta::ExecResult* reference, const ir::Memory* reference_mem) {
  TTSC_ASSERT(pre_ptr != nullptr, "run_tta_batch needs a predecoded program");
  TTSC_ASSERT((reference == nullptr) == (reference_mem == nullptr),
              "reference result and memory must be passed together");
  const PredecodedTta& pre = *pre_ptr;
  const std::size_t nfus = machine.fus.size();
  const std::size_t ring = static_cast<std::size_t>(pre.ring);
  const std::size_t num_instrs = pre.num_instrs();
  const std::size_t guard_regs_n = static_cast<std::size_t>(machine.guard_regs);

  std::uint32_t max_instr_moves = 0;
  for (std::size_t i = 0; i < num_instrs; ++i) {
    max_instr_moves = std::max(max_instr_moves, pre.instr_begin[i + 1] - pre.instr_begin[i]);
  }
  const std::size_t max_moves = max_instr_moves;

  // Location-id layout (see the engine comment above).
  const std::size_t gbase = pre.rf_slots;
  const std::size_t fobase = gbase + guard_regs_n;
  const std::size_t frbase = fobase + nfus;
  const std::size_t rbase = frbase + nfus;
  const std::size_t pbase = rbase + ring * nfus;
  const std::size_t gpbase = pbase + 2 * max_moves;
  const std::size_t n_ids = gpbase + 2 * max_moves;

  BatchCore core;
  core.init(n_ids, lane_faults);
  LaneDiffs& d = core.d;

  ir::Memory mem = initial_mem;
  std::vector<std::uint32_t> rf(pre.rf_slots, 0u);
  std::vector<std::uint32_t> fu_operand(nfus, 0u);
  std::vector<std::uint32_t> fu_result(nfus, 0u);
  std::vector<std::uint8_t> guard_regs(guard_regs_n, 0u);

  struct InFlight {
    std::uint32_t fu;
    std::uint32_t value;
  };
  std::vector<InFlight> ring_entry(ring * nfus);
  std::vector<std::uint32_t> ring_count(ring, 0u);

  struct RfWrite {
    std::uint32_t slot;
    std::uint32_t value;
  };
  std::vector<RfWrite> rf_pending[2];
  struct GuardWrite {
    std::uint32_t guard;
    std::uint8_t value;
  };
  std::vector<GuardWrite> guard_pending[2];
  for (int p = 0; p < 2; ++p) {
    rf_pending[p].reserve(max_moves);
    guard_pending[p].reserve(max_moves);
  }
  struct Fire {
    const TtaPMove* mv;
    std::uint32_t value;
  };
  std::vector<Fire> fires(max_instr_moves + 1);

  tta::ExecResult result;
  result.bus_moves.assign(machine.buses.size(), 0);
  std::uint64_t cycle = 0;
  std::size_t pc = 0;
  int transfer_in = -1;
  std::size_t transfer_target = 0;
  std::vector<std::uint64_t> instr_exec(num_instrs, 0ull);

  auto capture_state_into = [&](tta::ExecResult& r) {
    r.rf_state = rf;
    r.guard_state = guard_regs;
    for (std::size_t i = 0; i < num_instrs; ++i) {
      const std::uint64_t n = instr_exec[i];
      if (n == 0) continue;
      r.moves += n * (pre.instr_begin[i + 1] - pre.instr_begin[i]);
      for (std::uint32_t m = pre.instr_begin[i]; m < pre.instr_begin[i + 1]; ++m) {
        const auto bus = pre.moves[m].bus;
        if (bus >= 0) r.bus_moves[static_cast<std::size_t>(bus)] += n;
      }
    }
  };
  auto capture_state = [&] { capture_state_into(result); };

  // Trap synthesis: a lane evicted because its memory address is provably
  // out of bounds traps at exactly this cycle, before any further state
  // change — its standalone hardened run's result is fully determined by
  // the shared counters plus the lane's state view, so the rerun is skipped.
  struct SynthTrap {
    int lane;
    tta::ExecResult res;
    ir::Memory mem;
  };
  std::vector<SynthTrap> synths;
  auto synth_trap = [&](int l, int fu, std::uint32_t lane_addr) {
    tta::ExecResult r;
    r.bus_moves.assign(machine.buses.size(), 0);
    r.status = ExecStatus::Trapped;
    r.trap = TrapInfo{TrapReason::MemoryOutOfRange, cycle, fu, lane_addr};
    r.cycles = cycle;
    capture_state_into(r);
    const std::size_t base = static_cast<std::size_t>(l) * d.n_ids;
    for (std::uint32_t id = 0; id < pre.rf_slots; ++id) {
      if (d.dirty(l, id)) r.rf_state[id] = d.value[base + id];
    }
    for (std::size_t g = 0; g < guard_regs_n; ++g) {
      if (d.dirty(l, gbase + g)) {
        r.guard_state[g] = static_cast<std::uint8_t>(d.value[base + gbase + g]);
      }
    }
    synths.push_back(
        SynthTrap{l, std::move(r), materialize(mem, d.delta[static_cast<std::size_t>(l)])});
  };

  auto rerun = [&](int lane, LaneOutcome<tta::ExecResult>& lo) {
    for (SynthTrap& st : synths) {
      if (st.lane == lane) {
        lo.result = std::move(st.res);
        lo.mem.emplace(std::move(st.mem));
        return;
      }
    }
    ir::Memory m = initial_mem;
    SimOptions o;
    o.harden = true;
    o.faults = &lane_faults[static_cast<std::size_t>(lane)];
    tta::TtaSim s(program, machine, m, o);
    s.use_predecoded(pre_ptr);
    lo.result = s.run(max_cycles);
    lo.mem.emplace(std::move(m));
  };

  auto finish = [&](tta::ExecResult leader, ir::Memory leader_mem, std::int64_t ret_id) {
    auto overlay = [&](int l, tta::ExecResult& r) {
      const std::size_t base = static_cast<std::size_t>(l) * d.n_ids;
      for (std::uint32_t id = 0; id < pre.rf_slots; ++id) {
        if (d.dirty(l, id)) r.rf_state[id] = d.value[base + id];
      }
      for (std::size_t g = 0; g < guard_regs_n; ++g) {
        if (d.dirty(l, gbase + g)) {
          r.guard_state[g] = static_cast<std::uint8_t>(d.value[base + gbase + g]);
        }
      }
      if (ret_id >= 0 && d.dirty(l, static_cast<std::size_t>(ret_id))) {
        r.ret = d.value[base + static_cast<std::size_t>(ret_id)];
      }
    };
    return assemble_batch(core, std::move(leader), std::move(leader_mem), overlay, rerun);
  };

  auto set_trap = [&](TrapReason reason, int unit, std::uint32_t detail) {
    result.status = ExecStatus::Trapped;
    result.trap = TrapInfo{reason, cycle, unit, detail};
    result.cycles = cycle;
    capture_state();
  };

  auto apply_lane_fault = [&](int lane, const StateFault& f) {
    switch (f.kind) {
      case FaultKind::RfBit: {
        if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= machine.rfs.size()) return;
        if (f.index < 0 || f.index >= machine.rfs[static_cast<std::size_t>(f.unit)].size) return;
        const std::size_t slot =
            pre.rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index);
        d.set(lane, slot, d.get(lane, slot, rf[slot]) ^ fault_mask(f), rf[slot]);
        break;
      }
      case FaultKind::FuResultBit: {
        if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= nfus) return;
        const std::size_t id = frbase + static_cast<std::size_t>(f.unit);
        const std::uint32_t leader = fu_result[static_cast<std::size_t>(f.unit)];
        d.set(lane, id, d.get(lane, id, leader) ^ fault_mask(f), leader);
        break;
      }
      case FaultKind::GuardBit: {
        if (f.unit < 0 || f.unit >= machine.guard_regs) return;
        const std::size_t id = gbase + static_cast<std::size_t>(f.unit);
        const std::uint32_t leader = guard_regs[static_cast<std::size_t>(f.unit)];
        d.set(lane, id, d.get(lane, id, leader) ^ 1u, leader);
        break;
      }
    }
  };

  // Lane-side view of a move's sampled source value. Valid from phase 3
  // through 4b: fu_result mutates only in phase 1, rf only in phase 2, and
  // FU operand ports are never move sources.
  auto lane_src = [&](int l, const TtaPMove& mv) -> std::uint32_t {
    switch (mv.src) {
      case TtaPMove::Src::Imm: return mv.imm;
      case TtaPMove::Src::FuResult:
        return d.get(l, frbase + mv.src_slot, fu_result[mv.src_slot]);
      case TtaPMove::Src::RfRead: return d.get(l, mv.src_slot, rf[mv.src_slot]);
    }
    TTSC_UNREACHABLE("bad move source");
  };
  auto src_mask = [&](const TtaPMove& mv) -> LaneMask {
    switch (mv.src) {
      case TtaPMove::Src::Imm: return 0;
      case TtaPMove::Src::FuResult: return d.mask[frbase + mv.src_slot];
      case TtaPMove::Src::RfRead: return d.mask[mv.src_slot];
    }
    TTSC_UNREACHABLE("bad move source");
  };

  std::size_t ring_idx = 0;
  while (cycle < max_cycles) {
    // 0. State faults land between cycles, then the settled check: a batch
    // with a known fault-free reference stops once no live lane can ever
    // diverge again.
    core.apply_due(cycle, apply_lane_fault);
    if (reference != nullptr && core.settled()) {
      return finish(*reference, *reference_mem, /*ret_id=*/-1);
    }
    // All-clean fast path (see the scalar engine): no live lane differs, so
    // every lane hook this cycle is a no-op and only leader state advances.
    const bool lanes_dirty = (d.diff_mask & core.live) != 0;
    // 1. Results whose latency elapsed land in the result registers.
    if (ring_count[ring_idx] != 0) {
      InFlight* const col = &ring_entry[ring_idx * nfus];
      const std::uint32_t n = ring_count[ring_idx];
      for (std::uint32_t e = 0; e < n; ++e) {
        const std::uint32_t val = col[e].value;
        if (lanes_dirty) {
          const std::size_t eid = rbase + ring_idx * nfus + e;
          const std::size_t frid = frbase + col[e].fu;
          for_lanes((d.mask[eid] | d.mask[frid]) & core.live, [&](int l) {
            d.set(l, frid, d.get(l, eid, val), val);
          });
          d.clear_all(eid);
        }
        fu_result[col[e].fu] = val;
      }
      ring_count[ring_idx] = 0;
    }
    // 2. RF writes from the previous cycle become readable.
    {
      std::vector<RfWrite>& commits = rf_pending[cycle & 1];
      for (std::size_t i = 0; i < commits.size(); ++i) {
        const RfWrite& w = commits[i];
        if (lanes_dirty) {
          const std::size_t eid = pbase + (cycle & 1) * max_moves + i;
          for_lanes((d.mask[eid] | d.mask[w.slot]) & core.live, [&](int l) {
            d.set(l, w.slot, d.get(l, eid, w.value), w.value);
          });
          d.clear_all(eid);
        }
        rf[w.slot] = w.value;
      }
      commits.clear();
    }
    // 2b. Guard writes from the previous cycle latch in.
    {
      std::vector<GuardWrite>& latches = guard_pending[cycle & 1];
      for (std::size_t i = 0; i < latches.size(); ++i) {
        const GuardWrite& g = latches[i];
        if (lanes_dirty) {
          const std::size_t eid = gpbase + (cycle & 1) * max_moves + i;
          const std::size_t gid = gbase + g.guard;
          for_lanes((d.mask[eid] | d.mask[gid]) & core.live, [&](int l) {
            d.set(l, gid, d.get(l, eid, g.value), g.value);
          });
          d.clear_all(eid);
        }
        guard_regs[g.guard] = g.value;
      }
      latches.clear();
    }

    if (pc >= num_instrs && transfer_in < 0) {
      set_trap(TrapReason::PcOutOfRange, -1, static_cast<std::uint32_t>(pc));
      return finish(std::move(result), std::move(mem), -1);
    }
    if (pc < num_instrs) {
      const std::uint32_t begin = pre.instr_begin[pc];
      const std::uint32_t end = pre.instr_begin[pc + 1];
      ++instr_exec[pc];
      std::size_t nfires = 0;
      // 3+4a. Sample sources and write non-trigger destinations.
      for (std::uint32_t m = begin; m < end; ++m) {
        const TtaPMove& mv = pre.moves[m];
        if (mv.guard >= 0) {
          const bool g = guard_regs[static_cast<std::size_t>(mv.guard)] != 0;
          const bool squash = g == mv.guard_negate;
          if (lanes_dirty) {
            // A lane whose squash decision differs executes a different move
            // set from here on: proven divergence.
            const std::size_t gid = gbase + static_cast<std::size_t>(mv.guard);
            LaneMask divergent = 0;
            for_lanes(d.mask[gid] & core.live, [&](int l) {
              const bool lg = d.get(l, gid, g ? 1u : 0u) != 0;
              if ((lg == mv.guard_negate) != squash) divergent |= LaneMask::bit(l);
            });
            core.evict_lanes(divergent, cycle, /*proven=*/true);
          }
          if (squash) continue;
        }
        if (mv.trap != 0) {
          set_trap(static_cast<TrapReason>(mv.trap - 1), mv.bus, mv.trap_detail);
          return finish(std::move(result), std::move(mem), -1);
        }
        std::uint32_t value = mv.imm;
        switch (mv.src) {
          case TtaPMove::Src::Imm: break;
          case TtaPMove::Src::FuResult: value = fu_result[mv.src_slot]; break;
          case TtaPMove::Src::RfRead: value = rf[mv.src_slot]; break;
        }
        switch (mv.dst) {
          case TtaPMove::Dst::FuOperand: {
            if (lanes_dirty) {
              const std::size_t foid = fobase + mv.dst_slot;
              for_lanes((src_mask(mv) | d.mask[foid]) & core.live,
                        [&](int l) { d.set(l, foid, lane_src(l, mv), value); });
            }
            fu_operand[mv.dst_slot] = value;
            break;
          }
          case TtaPMove::Dst::RfWrite: {
            std::vector<RfWrite>& list = rf_pending[(cycle + 1) & 1];
            if (lanes_dirty) {
              const std::size_t eid = pbase + ((cycle + 1) & 1) * max_moves + list.size();
              for_lanes((src_mask(mv) | d.mask[eid]) & core.live,
                        [&](int l) { d.set(l, eid, lane_src(l, mv), value); });
            }
            list.push_back(RfWrite{mv.dst_slot, value});
            break;
          }
          case TtaPMove::Dst::GuardWrite: {
            std::vector<GuardWrite>& list = guard_pending[(cycle + 1) & 1];
            const std::uint32_t v01 = value != 0 ? 1u : 0u;
            if (lanes_dirty) {
              const std::size_t eid = gpbase + ((cycle + 1) & 1) * max_moves + list.size();
              for_lanes((src_mask(mv) | d.mask[eid]) & core.live, [&](int l) {
                d.set(l, eid, lane_src(l, mv) != 0 ? 1u : 0u, v01);
              });
            }
            list.push_back(GuardWrite{mv.dst_slot, static_cast<std::uint8_t>(v01)});
            break;
          }
          case TtaPMove::Dst::FuTrigger:
          case TtaPMove::Dst::ControlTrigger:
            fires[nfires++] = Fire{&mv, value};
            break;
        }
      }
      // 4b. Triggers fire using this cycle's operand port contents.
      for (std::size_t fi = 0; fi < nfires; ++fi) {
        const Fire& f = fires[fi];
        const TtaPMove& mv = *f.mv;
        const std::size_t fu = mv.dst_slot;
        const std::size_t foid = fobase + fu;
        if (mv.dst == TtaPMove::Dst::ControlTrigger) {
          if (transfer_in >= 0) continue;  // squashed in a transfer shadow
          switch (mv.fire) {
            case TtaPMove::Fire::Jump:
              transfer_in = machine.delay_slots;
              transfer_target = mv.target_pc;
              break;
            case TtaPMove::Fire::Bnz: {
              const bool taken = fu_operand[fu] != 0;
              if (lanes_dirty) {
                LaneMask divergent = 0;
                for_lanes(d.mask[foid] & core.live, [&](int l) {
                  if ((d.get(l, foid, fu_operand[fu]) != 0) != taken) divergent |= LaneMask::bit(l);
                });
                core.evict_lanes(divergent, cycle, /*proven=*/true);
              }
              if (taken) {
                transfer_in = machine.delay_slots;
                transfer_target = mv.target_pc;
              }
              break;
            }
            case TtaPMove::Fire::Ret:
              result.cycles = cycle + 1;
              result.ret = fu_operand[fu];
              capture_state();
              return finish(std::move(result), std::move(mem),
                            static_cast<std::int64_t>(foid));
            default: TTSC_UNREACHABLE("bad control trigger opcode");
          }
          continue;
        }
        if (ir::is_memory(mv.opcode)) {
          // The trigger value is the address.
          const bool leader_ok = mem_in_bounds(mv.opcode, f.value, mem.size());
          if (lanes_dirty) {
            if (ir::is_load(mv.opcode) && leader_ok) {
              // Dirty load addresses stay exact (see the scalar engine).
              LaneMask oob = 0;
              for_lanes(src_mask(mv) & core.live, [&](int l) {
                const std::uint32_t la = lane_src(l, mv);
                if (!mem_in_bounds(mv.opcode, la, mem.size())) {
                  oob |= LaneMask::bit(l);
                  synth_trap(l, static_cast<int>(fu), la);
                }
              });
              core.evict_lanes(oob, cycle, /*proven=*/true);
            } else if (!leader_ok) {
              for_lanes(src_mask(mv) & core.live, [&](int l) {
                const std::uint32_t la = lane_src(l, mv);
                if (!mem_in_bounds(mv.opcode, la, mem.size())) {
                  synth_trap(l, static_cast<int>(fu), la);
                }
              });
              core.evict_lanes(src_mask(mv) & core.live, cycle, /*proven=*/true);
            } else {
              // Dirty store addresses stay exact (see the scalar engine).
              const int nbytes = mem_access_bytes(mv.opcode);
              const std::uint32_t data = fu_operand[fu];
              LaneMask oob = 0;
              for_lanes(src_mask(mv) & core.live, [&](int l) {
                const std::uint32_t la = lane_src(l, mv);
                if (!mem_in_bounds(mv.opcode, la, mem.size())) {
                  oob |= LaneMask::bit(l);
                  synth_trap(l, static_cast<int>(fu), la);
                  return;
                }
                store_diverged(d, l, mem, nbytes, f.value, data, la,
                               d.get(l, foid, data));
              });
              core.evict_lanes(oob, cycle, /*proven=*/true);
            }
          }
          if (!leader_ok) {
            set_trap(TrapReason::MemoryOutOfRange, static_cast<int>(fu), f.value);
            return finish(std::move(result), std::move(mem), -1);
          }
        }
        switch (mv.fire) {
          case TtaPMove::Fire::Store: {
            const std::uint32_t data = fu_operand[fu];
            switch (mv.opcode) {
              case Opcode::Stw: mem.store32(f.value, data); break;
              case Opcode::Sth: mem.store16(f.value, static_cast<std::uint16_t>(data)); break;
              case Opcode::Stq: mem.store8(f.value, static_cast<std::uint8_t>(data)); break;
              default: TTSC_UNREACHABLE("bad store opcode");
            }
            if (lanes_dirty) {
              const int nbytes = mem_access_bytes(mv.opcode);
              // Dirty-address lanes were fully handled by store_diverged.
              for_lanes((d.mask[foid] | d.delta_mask) & core.live & ~src_mask(mv),
                        [&](int l) {
                if (!d.dirty(l, foid) &&
                    !d.delta[static_cast<std::size_t>(l)].overlaps(
                        f.value, static_cast<std::uint32_t>(nbytes))) {
                  return;
                }
                const std::uint32_t ld = d.get(l, foid, data);
                for (int j = 0; j < nbytes; ++j) {
                  d.mem_set(l, f.value + static_cast<std::uint32_t>(j),
                            static_cast<std::uint8_t>(ld >> (8 * j)),
                            static_cast<std::uint8_t>(data >> (8 * j)));
                }
              });
            }
            break;
          }
          case TtaPMove::Fire::Input:
          case TtaPMove::Fire::Binary: {
            const bool input = mv.fire == TtaPMove::Fire::Input;
            const std::uint32_t a = input ? f.value : fu_operand[fu];
            const std::uint32_t b = input ? 0 : f.value;
            const std::uint32_t v = lane_compute(mv.opcode, a, b, mem, nullptr);
            std::size_t col = ring_idx + static_cast<std::size_t>(mv.latency);
            if (col >= ring) col -= ring;  // latency < ring: one wrap at most
            InFlight* const entries = &ring_entry[col * nfus];
            const std::uint32_t n = ring_count[col];
            // Same-cycle completion ties on one FU resolve to the larger
            // value, per lane, matching the scalar fast path's merge.
            std::uint32_t e = 0;
            while (e < n && entries[e].fu != fu) ++e;
            if (lanes_dirty) {
              LaneMask affected = src_mask(mv);
              if (!input) affected |= d.mask[foid];
              if (ir::is_load(mv.opcode)) {
                for_lanes(d.delta_mask & core.live, [&](int l) {
                  if (d.delta[static_cast<std::size_t>(l)].overlaps(
                          a, static_cast<std::uint32_t>(mem_access_bytes(mv.opcode)))) {
                    affected |= LaneMask::bit(l);
                  }
                });
              }
              auto lane_value = [&](int l) {
                const std::uint32_t la =
                    input ? lane_src(l, mv) : d.get(l, foid, fu_operand[fu]);
                const std::uint32_t lb = input ? 0 : lane_src(l, mv);
                return lane_compute(mv.opcode, la, lb, mem,
                                    &d.delta[static_cast<std::size_t>(l)]);
              };
              const std::size_t eid = rbase + col * nfus + e;
              if (e < n) {
                const std::uint32_t leader_prev = entries[e].value;
                const std::uint32_t leader_final = std::max(leader_prev, v);
                for_lanes((d.mask[eid] | affected) & core.live, [&](int l) {
                  const std::uint32_t lprev = d.get(l, eid, leader_prev);
                  d.set(l, eid, std::max(lprev, lane_value(l)), leader_final);
                });
              } else {
                for_lanes((d.mask[eid] | affected) & core.live,
                          [&](int l) { d.set(l, eid, lane_value(l), v); });
              }
            }
            if (e < n) {
              entries[e].value = std::max(entries[e].value, v);
            } else {
              entries[n] = InFlight{static_cast<std::uint32_t>(fu), v};
              ring_count[col] = n + 1;
            }
            break;
          }
          default: TTSC_UNREACHABLE("bad trigger fire class");
        }
      }
    }

    ++cycle;
    if (++ring_idx == ring) ring_idx = 0;
    if (transfer_in >= 0) {
      if (transfer_in == 0) {
        pc = transfer_target;
        transfer_in = -1;
      } else {
        --transfer_in;
        ++pc;
      }
    } else {
      ++pc;
    }
  }
  result.status = ExecStatus::TimedOut;
  result.cycles = max_cycles;
  capture_state();
  return finish(std::move(result), std::move(mem), -1);
}

}  // namespace ttsc::sim
