#include "sim/predecode.hpp"

#include <algorithm>

#include "sim/harden.hpp"

namespace ttsc::sim {

namespace {

using ir::Opcode;

/// Flat register-slot bases: one contiguous array spanning all RFs.
std::vector<std::uint32_t> rf_bases(const mach::Machine& machine, std::uint32_t* total) {
  std::vector<std::uint32_t> base;
  std::uint32_t next = 0;
  for (const mach::RegisterFile& rf : machine.rfs) {
    base.push_back(next);
    next += static_cast<std::uint32_t>(rf.size);
  }
  *total = next;
  return base;
}

int max_result_latency(const mach::Machine& machine) {
  int lat = 1;
  for (const mach::FunctionUnit& fu : machine.fus) {
    for (const mach::Operation& op : fu.ops) lat = std::max(lat, op.latency);
  }
  return lat;
}

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
};

}  // namespace

// ---- TTA ---------------------------------------------------------------

PredecodedTta predecode(const tta::TtaProgram& program, const mach::Machine& machine) {
  PredecodedTta out;
  out.rf_base = rf_bases(machine, &out.rf_slots);
  out.ring = max_result_latency(machine) + 1;
  out.instr_begin.reserve(program.instrs.size() + 1);

  for (const tta::TtaInstruction& instr : program.instrs) {
    out.instr_begin.push_back(static_cast<std::uint32_t>(out.moves.size()));
    for (const tta::Move& mv : instr.moves) {
      TtaPMove p;
      p.bus = (mv.bus >= 0 && static_cast<std::size_t>(mv.bus) < machine.buses.size())
                  ? static_cast<std::int16_t>(mv.bus)
                  : std::int16_t{-1};

      // Fail-closed decode: an illegal move (possible only in malformed or
      // fault-corrupted programs) becomes a trap marker the run loops raise
      // when it executes. A valid guard still squashes it first, so the
      // field decode below is skipped but the guard fields are kept.
      const DecodeCheck chk = check_tta_move(mv, machine, program.block_entry.size());
      if (!chk.ok()) {
        p.trap = chk.trap;
        p.trap_detail = chk.detail;
        if (!chk.guard_trap) {
          p.guard = static_cast<std::int16_t>(mv.guard);
          p.guard_negate = mv.guard_negate;
        }
        out.moves.push_back(p);
        continue;
      }

      p.guard = static_cast<std::int16_t>(mv.guard);
      p.guard_negate = mv.guard_negate;

      switch (mv.src.kind) {
        case tta::MoveSrc::Kind::Imm:
          p.src = TtaPMove::Src::Imm;
          p.imm = static_cast<std::uint32_t>(mv.src.imm);
          break;
        case tta::MoveSrc::Kind::FuResult:
          p.src = TtaPMove::Src::FuResult;
          p.src_slot = static_cast<std::uint32_t>(mv.src.unit);
          break;
        case tta::MoveSrc::Kind::RfRead:
          p.src = TtaPMove::Src::RfRead;
          p.src_slot = out.rf_base[static_cast<std::size_t>(mv.src.unit)] +
                       static_cast<std::uint32_t>(mv.src.reg_index);
          p.src_rf = static_cast<std::int16_t>(mv.src.unit);
          p.src_reg = static_cast<std::int16_t>(mv.src.reg_index);
          break;
      }

      switch (mv.dst.kind) {
        case tta::MoveDst::Kind::FuOperand:
          p.dst = TtaPMove::Dst::FuOperand;
          p.dst_slot = static_cast<std::uint32_t>(mv.dst.unit);
          break;
        case tta::MoveDst::Kind::RfWrite:
          p.dst = TtaPMove::Dst::RfWrite;
          p.dst_slot = out.rf_base[static_cast<std::size_t>(mv.dst.unit)] +
                       static_cast<std::uint32_t>(mv.dst.reg_index);
          p.dst_rf = static_cast<std::int16_t>(mv.dst.unit);
          p.dst_reg = static_cast<std::int16_t>(mv.dst.reg_index);
          break;
        case tta::MoveDst::Kind::GuardWrite:
          p.dst = TtaPMove::Dst::GuardWrite;
          p.dst_slot = static_cast<std::uint32_t>(mv.dst.unit);
          break;
        case tta::MoveDst::Kind::FuTrigger: {
          p.dst_slot = static_cast<std::uint32_t>(mv.dst.unit);
          p.opcode = mv.dst.opcode;
          if (mv.is_control) {
            p.dst = TtaPMove::Dst::ControlTrigger;
            switch (mv.dst.opcode) {
              case Opcode::Jump: p.fire = TtaPMove::Fire::Jump; break;
              case Opcode::Bnz: p.fire = TtaPMove::Fire::Bnz; break;
              case Opcode::Ret: p.fire = TtaPMove::Fire::Ret; break;
              default: TTSC_UNREACHABLE("predecode: bad control trigger opcode");
            }
            if (p.fire != TtaPMove::Fire::Ret) {
              p.target_pc = program.block_entry[mv.target];
            }
          } else {
            p.dst = TtaPMove::Dst::FuTrigger;
            const Opcode op = mv.dst.opcode;
            if (ir::is_store(op)) {
              p.fire = TtaPMove::Fire::Store;
            } else {
              p.fire = (ir::is_load(op) || op == Opcode::Sxhw || op == Opcode::Sxqw)
                           ? TtaPMove::Fire::Input
                           : TtaPMove::Fire::Binary;
              p.latency = static_cast<std::uint8_t>(
                  machine.fus[static_cast<std::size_t>(mv.dst.unit)].latency(op));
            }
          }
          break;
        }
      }
      out.moves.push_back(p);
    }
  }
  out.instr_begin.push_back(static_cast<std::uint32_t>(out.moves.size()));
  return out;
}

// ---- VLIW --------------------------------------------------------------

namespace {

void decode_operand(const codegen::MOperand& s, const std::vector<std::uint32_t>& rf_base,
                    bool* is_imm, std::uint32_t* val, std::uint32_t* slot, std::int16_t* rf,
                    std::int16_t* reg) {
  if (s.is_imm()) {
    *is_imm = true;
    *val = static_cast<std::uint32_t>(s.imm);
  } else {
    *is_imm = false;
    *slot = rf_base[static_cast<std::size_t>(s.reg.rf)] + static_cast<std::uint32_t>(s.reg.index);
    *rf = s.reg.rf;
    *reg = s.reg.index;
  }
}

}  // namespace

PredecodedVliw predecode(const vliw::VliwProgram& program, const mach::Machine& machine) {
  PredecodedVliw out;
  out.rf_base = rf_bases(machine, &out.rf_slots);
  out.ring = max_result_latency(machine) + 2;  // visible at issue + latency + 1
  out.bundle_begin.reserve(program.bundles.size() + 1);

  for (const vliw::Bundle& bundle : program.bundles) {
    out.bundle_begin.push_back(static_cast<std::uint32_t>(out.ops.size()));
    for (const auto& slot : bundle.slots) {
      if (!slot.has_value()) continue;
      const codegen::MInstr& in = slot->instr;
      VliwPOp p;
      p.op = in.op;
      p.fu = static_cast<std::int16_t>(slot->fu);

      // Fail-closed decode (see check_tta_move above). is_control is kept
      // so a trap op flipped from a control op still squashes in a transfer
      // shadow, exactly like the reference loop's execute-time check.
      const DecodeCheck chk = check_minstr(in, machine, /*needs_fu=*/true,
                                           program.block_entry.size());
      if (!chk.ok()) {
        p.is_control = ir::is_branch(in.op) || in.op == Opcode::Ret;
        p.trap = chk.trap;
        p.trap_detail = chk.detail;
        out.ops.push_back(p);
        continue;
      }

      p.nsrcs = static_cast<std::uint8_t>(in.srcs.size());
      if (!in.srcs.empty()) {
        decode_operand(in.srcs[0], out.rf_base, &p.a_imm, &p.a_val, &p.a_slot, &p.a_rf, &p.a_reg);
      }
      if (in.srcs.size() > 1) {
        decode_operand(in.srcs[1], out.rf_base, &p.b_imm, &p.b_val, &p.b_slot, &p.b_rf, &p.b_reg);
      }
      p.is_control = ir::is_branch(in.op) || in.op == Opcode::Ret;
      if (ir::is_branch(in.op)) {
        p.target_pc = program.block_entry[in.targets[0]];
      }
      if (in.has_dst()) {
        p.dst_slot = static_cast<std::int32_t>(
            out.rf_base[static_cast<std::size_t>(in.dst.rf)] +
            static_cast<std::uint32_t>(in.dst.index));
        p.dst_rf = in.dst.rf;
        p.dst_reg = in.dst.index;
        if (in.op == Opcode::MovI || in.op == Opcode::Copy) {
          p.latency = 1;
        } else {
          const int fu = machine.fu_for(in.op);
          TTSC_ASSERT(fu >= 0, "predecode: no FU for opcode");
          p.latency = static_cast<std::uint8_t>(
              machine.fus[static_cast<std::size_t>(fu)].latency(in.op));
        }
      }
      out.ops.push_back(p);
    }
  }
  out.bundle_begin.push_back(static_cast<std::uint32_t>(out.ops.size()));
  return out;
}

// ---- Scalar ------------------------------------------------------------

PredecodedScalar predecode(const scalar::ScalarProgram& program, const mach::Machine& machine) {
  const mach::ScalarTiming& timing = machine.scalar;
  PredecodedScalar out;
  out.rf_base = rf_bases(machine, &out.rf_slots);
  out.instrs.reserve(program.instrs.size());

  for (const codegen::MInstr& in : program.instrs) {
    ScalarPInstr p;
    p.op = in.op;

    // Fail-closed decode (see check_tta_move above). Timing fields stay
    // zero: the trap fires before the instruction's issue accounting.
    const DecodeCheck chk = check_minstr(in, machine, /*needs_fu=*/false,
                                         program.block_entry.size());
    if (!chk.ok()) {
      p.trap = chk.trap;
      p.trap_detail = chk.detail;
      out.instrs.push_back(p);
      continue;
    }

    p.nsrcs = static_cast<std::uint8_t>(in.srcs.size());
    if (!in.srcs.empty()) {
      decode_operand(in.srcs[0], out.rf_base, &p.a_imm, &p.a_val, &p.a_slot, &p.a_rf, &p.a_reg);
    }
    if (in.srcs.size() > 1) {
      decode_operand(in.srcs[1], out.rf_base, &p.b_imm, &p.b_val, &p.b_slot, &p.b_rf, &p.b_reg);
    }
    if (in.has_dst()) {
      p.dst_slot = static_cast<std::int32_t>(
          out.rf_base[static_cast<std::size_t>(in.dst.rf)] +
          static_cast<std::uint32_t>(in.dst.index));
      p.dst_rf = in.dst.rf;
      p.dst_reg = in.dst.index;
    }
    const bool is_shift =
        in.op == Opcode::Shl || in.op == Opcode::Shr || in.op == Opcode::Shru;
    p.var_shift = is_shift && !timing.barrel_shifter && in.srcs.size() > 1 && in.srcs[1].is_reg();
    p.extra_words = static_cast<std::uint8_t>(scalar::instr_words(timing, in) - 1);
    p.stall = static_cast<std::uint8_t>(scalar::dependent_use_stall(timing, in.op));
    if (ir::is_branch(in.op)) {
      p.target_pc = program.block_entry[in.targets[0]];
    }
    out.instrs.push_back(p);
  }
  return out;
}

// ---- Fingerprints ------------------------------------------------------

std::uint64_t fingerprint(const mach::Machine& machine) {
  Fnv f;
  f.add(static_cast<std::uint64_t>(machine.model));
  f.add(static_cast<std::uint64_t>(machine.delay_slots));
  f.add(static_cast<std::uint64_t>(machine.guard_regs));
  f.add(machine.fus.size());
  for (const mach::FunctionUnit& fu : machine.fus) {
    f.add(fu.ops.size());
    for (const mach::Operation& op : fu.ops) {
      f.add(static_cast<std::uint64_t>(op.opcode));
      f.add(static_cast<std::uint64_t>(op.latency));
    }
  }
  f.add(machine.rfs.size());
  for (const mach::RegisterFile& rf : machine.rfs) f.add(static_cast<std::uint64_t>(rf.size));
  f.add(machine.buses.size());
  const mach::ScalarTiming& t = machine.scalar;
  f.add(static_cast<std::uint64_t>(t.pipeline_stages));
  f.add(static_cast<std::uint64_t>(t.forwarding));
  f.add(static_cast<std::uint64_t>(t.load_use_stall));
  f.add(static_cast<std::uint64_t>(t.mul_stall));
  f.add(static_cast<std::uint64_t>(t.shift_stall));
  f.add(static_cast<std::uint64_t>(t.branch_penalty));
  f.add(static_cast<std::uint64_t>(t.barrel_shifter));
  f.add(static_cast<std::uint64_t>(t.max_unrolled_shift));
  f.add(static_cast<std::uint64_t>(t.variable_shift_setup));
  f.add(static_cast<std::uint64_t>(t.variable_shift_per_bit));
  return f.h;
}

std::uint64_t fingerprint(const tta::TtaProgram& program) {
  Fnv f;
  f.add(0x54);  // 'T': salt the program kind
  f.add(program.instrs.size());
  for (const tta::TtaInstruction& instr : program.instrs) {
    f.add(instr.moves.size());
    for (const tta::Move& mv : instr.moves) {
      f.add(static_cast<std::uint64_t>(mv.bus));
      f.add(static_cast<std::uint64_t>(mv.src.kind));
      f.add(static_cast<std::uint64_t>(mv.src.unit));
      f.add(static_cast<std::uint64_t>(mv.src.reg_index));
      f.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(mv.src.imm)));
      f.add(static_cast<std::uint64_t>(mv.dst.kind));
      f.add(static_cast<std::uint64_t>(mv.dst.unit));
      f.add(static_cast<std::uint64_t>(mv.dst.reg_index));
      f.add(static_cast<std::uint64_t>(mv.dst.opcode));
      f.add(mv.target);
      f.add(static_cast<std::uint64_t>(mv.is_control));
      f.add(static_cast<std::uint64_t>(mv.guard));
      f.add(static_cast<std::uint64_t>(mv.guard_negate));
    }
  }
  for (std::uint32_t e : program.block_entry) f.add(e);
  return f.h;
}

namespace {

void add_minstr(Fnv& f, const codegen::MInstr& in) {
  f.add(static_cast<std::uint64_t>(in.op));
  f.add(static_cast<std::uint64_t>(in.dst.rf));
  f.add(static_cast<std::uint64_t>(in.dst.index));
  f.add(in.srcs.size());
  for (const codegen::MOperand& s : in.srcs) {
    f.add(static_cast<std::uint64_t>(s.kind));
    f.add(static_cast<std::uint64_t>(s.reg.rf));
    f.add(static_cast<std::uint64_t>(s.reg.index));
    f.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.imm)));
  }
  for (std::uint32_t t : in.targets) f.add(t);
}

}  // namespace

std::uint64_t fingerprint(const vliw::VliwProgram& program) {
  Fnv f;
  f.add(0x56);  // 'V'
  f.add(program.bundles.size());
  for (const vliw::Bundle& bundle : program.bundles) {
    f.add(bundle.slots.size());
    for (const auto& slot : bundle.slots) {
      f.add(static_cast<std::uint64_t>(slot.has_value()));
      if (slot.has_value()) {
        f.add(static_cast<std::uint64_t>(slot->fu));
        add_minstr(f, slot->instr);
      }
    }
  }
  for (std::uint32_t e : program.block_entry) f.add(e);
  return f.h;
}

std::uint64_t fingerprint(const scalar::ScalarProgram& program) {
  Fnv f;
  f.add(0x53);  // 'S'
  f.add(program.instrs.size());
  for (const codegen::MInstr& in : program.instrs) add_minstr(f, in);
  for (std::uint32_t e : program.block_entry) f.add(e);
  f.add(program.spill_base);
  return f.h;
}

}  // namespace ttsc::sim
