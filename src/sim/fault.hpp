// Mid-run single-bit state faults (SEU model) consumed by the simulators.
//
// A StateFault flips one bit of live architectural state at the start of a
// given cycle — before result delivery, write-back commits and guard
// latching — so the flip lands exactly between two architecturally visible
// cycles and both execution paths (predecoded fast loop and interpretive
// reference loop) observe the identical corrupted state from then on.
//
// Targets mirror the storage a soft core keeps in SRAM/FFs:
//  * RfBit       — one bit of one register of one register file;
//  * FuResultBit — one bit of a TTA FU result (bypass) register, the
//                  datapath state the TTA programming model exposes;
//  * GuardBit    — one guard (predicate) register (single-bit storage; the
//                  bit index is ignored).
//
// Instruction-memory faults are NOT StateFaults: they are applied to the
// program form before the run and go through the (validating) decoder — see
// src/resil/inject.hpp.
//
// Faults must be sorted by cycle; each simulator keeps a cursor and applies
// every fault whose cycle has been reached. A fault cycle past the halt
// cycle is simply never applied (trivially masked).
#pragma once

#include <cstdint>
#include <vector>

namespace ttsc::sim {

enum class FaultKind : std::uint8_t { RfBit, FuResultBit, GuardBit };

struct StateFault {
  std::uint64_t cycle = 0;
  FaultKind kind = FaultKind::RfBit;
  std::int16_t unit = 0;   // register file / FU / guard register index
  std::int16_t index = 0;  // register index within the RF (RfBit only)
  std::uint8_t bit = 0;    // bit position (0-31; ignored for GuardBit)
  /// Bits flipped starting at `bit`: 1 (classic SEU) or 2 (adjacent double
  /// bit, the multi-cell upset that separates SEC-DED correct from detect).
  /// Guard registers hold one bit, so a width-2 guard fault degrades to a
  /// single flip.
  std::uint8_t width = 1;
};

/// The XOR mask a fault applies to its 32-bit word. Width-2 faults clamp the
/// start bit to 30 so both flipped bits stay inside the word (the sampler
/// draws bit < 31 for double faults; the clamp keeps hand-built faults
/// well-defined too).
constexpr std::uint32_t fault_mask(const StateFault& f) {
  const std::uint32_t start = f.width >= 2 ? (f.bit & 31u) > 30u ? 30u : (f.bit & 31u)
                                           : (f.bit & 31u);
  const std::uint32_t bits = f.width >= 2 ? 3u : 1u;
  return bits << start;
}

struct FaultSet {
  std::vector<StateFault> faults;  // sorted by cycle, ascending

  bool empty() const { return faults.empty(); }
};

}  // namespace ttsc::sim
