// Mid-run single-bit state faults (SEU model) consumed by the simulators.
//
// A StateFault flips one bit of live architectural state at the start of a
// given cycle — before result delivery, write-back commits and guard
// latching — so the flip lands exactly between two architecturally visible
// cycles and both execution paths (predecoded fast loop and interpretive
// reference loop) observe the identical corrupted state from then on.
//
// Targets mirror the storage a soft core keeps in SRAM/FFs:
//  * RfBit       — one bit of one register of one register file;
//  * FuResultBit — one bit of a TTA FU result (bypass) register, the
//                  datapath state the TTA programming model exposes;
//  * GuardBit    — one guard (predicate) register (single-bit storage; the
//                  bit index is ignored).
//
// Instruction-memory faults are NOT StateFaults: they are applied to the
// program form before the run and go through the (validating) decoder — see
// src/resil/inject.hpp.
//
// Faults must be sorted by cycle; each simulator keeps a cursor and applies
// every fault whose cycle has been reached. A fault cycle past the halt
// cycle is simply never applied (trivially masked).
#pragma once

#include <cstdint>
#include <vector>

namespace ttsc::sim {

enum class FaultKind : std::uint8_t { RfBit, FuResultBit, GuardBit };

struct StateFault {
  std::uint64_t cycle = 0;
  FaultKind kind = FaultKind::RfBit;
  std::int16_t unit = 0;   // register file / FU / guard register index
  std::int16_t index = 0;  // register index within the RF (RfBit only)
  std::uint8_t bit = 0;    // bit position (0-31; ignored for GuardBit)
};

struct FaultSet {
  std::vector<StateFault> faults;  // sorted by cycle, ascending

  bool empty() const { return faults.empty(); }
};

}  // namespace ttsc::sim
