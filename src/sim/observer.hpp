// Execution observability protocol shared by the three instruction-set
// simulators (TTA, VLIW, scalar).
//
// An ExecObserver receives cycle-level execution events. The fast-path run
// loops are instantiated twice — once with observer dispatch compiled in,
// once without — so a null observer costs nothing per cycle (no branch, no
// virtual call). The reference loops use plain null checks (they are the
// differential baseline, not a hot path).
//
// Event semantics (identical on the fast and reference paths, so observer
// counts can be differentially tested too):
//  * on_move         — one executed (non-squashed) TTA transport on `bus`.
//  * on_guard_squash — a guarded TTA move whose guard disagreed; the move
//                      occupied its bus but had no effect.
//  * on_trigger      — an operation fired: a TTA trigger-port write, a VLIW
//                      operation issue (fu = issue slot's FU), or a scalar
//                      instruction execution (fu = -1). Control operations
//                      included; squashed ones are not.
//  * on_rf_read      — a register-file read by an executing move/operation.
//  * on_rf_write     — a register-file write at the cycle it commits
//                      (becomes architecturally visible).
//  * on_stall        — scalar only: cycles the pipeline waited for an
//                      operand that was not ready (hazard stalls; multi-word
//                      expansions and branch penalties are not stalls).
//  * on_block_enter  — the instruction at a block-entry pc began executing.
//                      `block` is the source-program block id (an index into
//                      the program's block_entry table). When several blocks
//                      share an entry pc (empty or fully-elided blocks), the
//                      event attributes to the LAST block id with that pc on
//                      both paths, so profile counts stay differentially
//                      comparable. Fires only on architectural entries: a
//                      block-entry pc executing inside a pending control
//                      transfer's delay-slot shadow is NOT an entry (the
//                      profile layer depends on this — a taken branch must
//                      produce one clean (source, target) edge, not a fake
//                      detour through the fallthrough block).
#pragma once

#include <cstdint>

#include "ir/opcode.hpp"

namespace ttsc::sim {

/// How a simulation ended. TimedOut means the cycle budget (`max_cycles`)
/// was exhausted before the program returned; the ExecResult then carries
/// the cycles actually executed, distinguishable from a normal halt.
/// Trapped means the simulator detected an illegal architectural state —
/// an out-of-range RF/FU/guard index, an invalid or unsupported opcode, a
/// branch target outside the program, a memory access outside the address
/// space, or the PC running off the end — and failed closed instead of
/// asserting. Traps only arise from malformed or fault-corrupted programs
/// (see src/resil/); a well-formed program never traps.
enum class ExecStatus : std::uint8_t { Ok, TimedOut, Trapped };

constexpr const char* exec_status_name(ExecStatus s) {
  switch (s) {
    case ExecStatus::Ok: return "ok";
    case ExecStatus::TimedOut: return "timeout";
    case ExecStatus::Trapped: return "trap";
  }
  return "?";
}

/// Why a simulator trapped. The reasons mirror the decoder/executor checks:
/// any single-bit corruption of an instruction encoding or of architectural
/// state resolves to exactly one of these (or to a wrong-but-valid
/// execution that the resilience layer classifies by output diffing).
enum class TrapReason : std::uint8_t {
  InvalidOpcode,        // opcode outside the ISA, or unsupported by the FU
  RfIndexOutOfRange,    // register-file or register index out of range
  FuIndexOutOfRange,    // function-unit index out of range
  GuardIndexOutOfRange, // guard register index out of range
  BadJumpTarget,        // branch target outside the program's blocks
  MemoryOutOfRange,     // load/store address outside the memory image
  PcOutOfRange,         // PC ran off the end with no transfer pending
};

constexpr const char* trap_reason_name(TrapReason r) {
  switch (r) {
    case TrapReason::InvalidOpcode: return "invalid-opcode";
    case TrapReason::RfIndexOutOfRange: return "rf-index";
    case TrapReason::FuIndexOutOfRange: return "fu-index";
    case TrapReason::GuardIndexOutOfRange: return "guard-index";
    case TrapReason::BadJumpTarget: return "bad-jump-target";
    case TrapReason::MemoryOutOfRange: return "memory";
    case TrapReason::PcOutOfRange: return "pc";
  }
  return "?";
}

/// Structured trap record carried by ExecResult when status == Trapped.
/// Identical on the fast and reference paths (differentially tested): the
/// trap fires at the same cycle with the same reason/unit/detail whether
/// the illegal encoding was caught at predecode time (fast path) or at
/// execute time (reference path).
struct TrapInfo {
  TrapReason reason = TrapReason::InvalidOpcode;
  std::uint64_t cycle = 0;
  /// Offending unit: the move's bus (TTA), the issue slot's FU (VLIW),
  /// -1 (scalar / not applicable).
  int unit = -1;
  /// Offending value: the out-of-range index, raw opcode byte, address…
  std::uint32_t detail = 0;

  bool operator==(const TrapInfo&) const = default;
};

struct FaultSet;  // sim/fault.hpp: mid-run single-bit state faults

class ExecObserver {
 public:
  virtual ~ExecObserver() = default;

  virtual void on_move(std::uint64_t /*cycle*/, int /*bus*/) {}
  virtual void on_guard_squash(std::uint64_t /*cycle*/, int /*bus*/) {}
  virtual void on_trigger(std::uint64_t /*cycle*/, int /*fu*/, ir::Opcode /*op*/) {}
  virtual void on_rf_read(std::uint64_t /*cycle*/, int /*rf*/, int /*index*/) {}
  virtual void on_rf_write(std::uint64_t /*cycle*/, int /*rf*/, int /*index*/,
                           std::uint32_t /*value*/) {}
  virtual void on_stall(std::uint64_t /*cycle*/, std::uint64_t /*stall_cycles*/) {}
  virtual void on_block_enter(std::uint64_t /*cycle*/, std::uint32_t /*block*/) {}
};

/// Per-run simulator configuration, accepted by all three simulators.
struct SimOptions {
  /// Execute over the predecoded program form (src/sim/predecode.hpp).
  /// false selects the original interpretive loop — the cycle-exact
  /// reference the fast path is differentially tested against.
  bool fast_path = true;

  /// Cycle-level event sink; nullptr disables observation entirely.
  ExecObserver* observer = nullptr;

  /// Driver-level convenience (report::compile_and_run_prebuilt): attach a
  /// UtilizationCollector for the run and surface its report through
  /// RunOutcome::utilization. The simulators themselves ignore this flag.
  bool collect_utilization = false;

  /// Fail-closed execution: bounds-check memory accesses (and apply
  /// `faults`, when given) on the fast path, turning illegal states into
  /// ExecStatus::Trapped instead of assertions. Selected automatically
  /// whenever `faults` is set; the reference loops always fail closed.
  /// Off (the default) keeps the no-fault fast path's cycle stream and
  /// instruction mix untouched.
  bool harden = false;

  /// Mid-run single-bit state faults (sim/fault.hpp), applied at the top of
  /// their cycle by both execution paths. Implies hardened execution on the
  /// fast path. The caller owns the set; it must stay alive for the run.
  const FaultSet* faults = nullptr;
};

}  // namespace ttsc::sim
