// Execution observability protocol shared by the three instruction-set
// simulators (TTA, VLIW, scalar).
//
// An ExecObserver receives cycle-level execution events. The fast-path run
// loops are instantiated twice — once with observer dispatch compiled in,
// once without — so a null observer costs nothing per cycle (no branch, no
// virtual call). The reference loops use plain null checks (they are the
// differential baseline, not a hot path).
//
// Event semantics (identical on the fast and reference paths, so observer
// counts can be differentially tested too):
//  * on_move         — one executed (non-squashed) TTA transport on `bus`.
//  * on_guard_squash — a guarded TTA move whose guard disagreed; the move
//                      occupied its bus but had no effect.
//  * on_trigger      — an operation fired: a TTA trigger-port write, a VLIW
//                      operation issue (fu = issue slot's FU), or a scalar
//                      instruction execution (fu = -1). Control operations
//                      included; squashed ones are not.
//  * on_rf_read      — a register-file read by an executing move/operation.
//  * on_rf_write     — a register-file write at the cycle it commits
//                      (becomes architecturally visible).
//  * on_stall        — scalar only: cycles the pipeline waited for an
//                      operand that was not ready (hazard stalls; multi-word
//                      expansions and branch penalties are not stalls).
#pragma once

#include <cstdint>

#include "ir/opcode.hpp"

namespace ttsc::sim {

/// How a simulation ended. TimedOut means the cycle budget (`max_cycles`)
/// was exhausted before the program returned; the ExecResult then carries
/// the cycles actually executed, distinguishable from a normal halt.
enum class ExecStatus : std::uint8_t { Ok, TimedOut };

class ExecObserver {
 public:
  virtual ~ExecObserver() = default;

  virtual void on_move(std::uint64_t /*cycle*/, int /*bus*/) {}
  virtual void on_guard_squash(std::uint64_t /*cycle*/, int /*bus*/) {}
  virtual void on_trigger(std::uint64_t /*cycle*/, int /*fu*/, ir::Opcode /*op*/) {}
  virtual void on_rf_read(std::uint64_t /*cycle*/, int /*rf*/, int /*index*/) {}
  virtual void on_rf_write(std::uint64_t /*cycle*/, int /*rf*/, int /*index*/,
                           std::uint32_t /*value*/) {}
  virtual void on_stall(std::uint64_t /*cycle*/, std::uint64_t /*stall_cycles*/) {}
};

/// Per-run simulator configuration, accepted by all three simulators.
struct SimOptions {
  /// Execute over the predecoded program form (src/sim/predecode.hpp).
  /// false selects the original interpretive loop — the cycle-exact
  /// reference the fast path is differentially tested against.
  bool fast_path = true;

  /// Cycle-level event sink; nullptr disables observation entirely.
  ExecObserver* observer = nullptr;

  /// Driver-level convenience (report::compile_and_run_prebuilt): attach a
  /// UtilizationCollector for the run and surface its report through
  /// RunOutcome::utilization. The simulators themselves ignore this flag.
  bool collect_utilization = false;
};

}  // namespace ttsc::sim
