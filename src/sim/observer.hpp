// Execution observability protocol shared by the three instruction-set
// simulators (TTA, VLIW, scalar).
//
// An ExecObserver receives cycle-level execution events. The fast-path run
// loops are instantiated twice — once with observer dispatch compiled in,
// once without — so a null observer costs nothing per cycle (no branch, no
// virtual call). The reference loops use plain null checks (they are the
// differential baseline, not a hot path).
//
// Event semantics (identical on the fast and reference paths, so observer
// counts can be differentially tested too):
//  * on_move         — one executed (non-squashed) TTA transport on `bus`.
//  * on_guard_squash — a guarded TTA move whose guard disagreed; the move
//                      occupied its bus but had no effect.
//  * on_trigger      — an operation fired: a TTA trigger-port write, a VLIW
//                      operation issue (fu = issue slot's FU), or a scalar
//                      instruction execution (fu = -1). Control operations
//                      included; squashed ones are not.
//  * on_rf_read      — a register-file read by an executing move/operation.
//  * on_rf_write     — a register-file write at the cycle it commits
//                      (becomes architecturally visible).
//  * on_stall        — scalar only: cycles the pipeline waited for an
//                      operand that was not ready (hazard stalls; multi-word
//                      expansions and branch penalties are not stalls).
//                      The statically-scheduled cores have no dynamic
//                      stall event: their equivalent of a stall is an
//                      *empty slot* baked into the schedule — a VLIW bundle
//                      slot or TTA bus with no operation in a cycle — which
//                      is visible as the complement of on_trigger/on_move
//                      occupancy and is classified per cause by the static
//                      stall_cause tables (prof/cause.hpp). Consumers that
//                      need per-cycle idleness (the flight recorder's VCD
//                      export renders idle buses/FUs as their idle level)
//                      reconstruct it from the absence of events at a
//                      cycle rather than from a callback.
//  * on_block_enter  — the instruction at a block-entry pc began executing.
//                      `block` is the source-program block id (an index into
//                      the program's block_entry table). When several blocks
//                      share an entry pc (empty or fully-elided blocks), the
//                      event attributes to the LAST block id with that pc on
//                      both paths, so profile counts stay differentially
//                      comparable. Fires only on architectural entries: a
//                      block-entry pc executing inside a pending control
//                      transfer's delay-slot shadow is NOT an entry (the
//                      profile layer depends on this — a taken branch must
//                      produce one clean (source, target) edge, not a fake
//                      detour through the fallthrough block).
//  * on_exec         — one instruction/bundle execution cycle: the TTA/VLIW
//                      instruction at `pc` executed this cycle (`shadow` set
//                      when inside a pending control transfer's delay-slot
//                      shadow), or the scalar instruction at `pc` issued
//                      (shadow always false; the issue cycle is reported,
//                      after any hazard stall). The cycle-attribution
//                      profiler keys its per-cycle classification off this
//                      event plus the program's static stall_cause table.
//  * on_overhead     — scalar only: non-stall overhead cycles folded into
//                      the instruction-stepped timing model, by kind —
//                      pipeline fill before the first instruction,
//                      multi-word immediate fetch, unrolled/variable shift
//                      sequencing, and the taken-branch penalty. Together
//                      with on_exec and on_stall these partition a scalar
//                      run's cycle count exactly.
//  * on_guard_write  — TTA only: a guard register latched a new value at
//                      the cycle it becomes architecturally visible (one
//                      cycle after the guard-write move executed), mirroring
//                      on_rf_write's commit-cycle convention. `value` is the
//                      latched boolean (guard writes latch `v != 0`).
//  * on_store        — a memory store became architecturally visible: the
//                      byte/halfword/word at `addr` now holds `value`
//                      (low `width` bytes). Fires on all three engines at
//                      the commit cycle (scalar reports the issue cycle,
//                      like its on_trigger/on_rf_write), after the
//                      operation's on_trigger. Together with on_rf_write
//                      and on_guard_write this makes the observer stream a
//                      complete commit log of architectural state changes —
//                      what the flight recorder and the resilience layer's
//                      first-divergence forensics replay against.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/opcode.hpp"

namespace ttsc::sim {

/// How a simulation ended. TimedOut means the cycle budget (`max_cycles`)
/// was exhausted before the program returned; the ExecResult then carries
/// the cycles actually executed, distinguishable from a normal halt.
/// Trapped means the simulator detected an illegal architectural state —
/// an out-of-range RF/FU/guard index, an invalid or unsupported opcode, a
/// branch target outside the program, a memory access outside the address
/// space, or the PC running off the end — and failed closed instead of
/// asserting. Traps only arise from malformed or fault-corrupted programs
/// (see src/resil/); a well-formed program never traps.
enum class ExecStatus : std::uint8_t { Ok, TimedOut, Trapped };

constexpr const char* exec_status_name(ExecStatus s) {
  switch (s) {
    case ExecStatus::Ok: return "ok";
    case ExecStatus::TimedOut: return "timeout";
    case ExecStatus::Trapped: return "trap";
  }
  return "?";
}

/// Why a simulator trapped. The reasons mirror the decoder/executor checks:
/// any single-bit corruption of an instruction encoding or of architectural
/// state resolves to exactly one of these (or to a wrong-but-valid
/// execution that the resilience layer classifies by output diffing).
enum class TrapReason : std::uint8_t {
  InvalidOpcode,        // opcode outside the ISA, or unsupported by the FU
  RfIndexOutOfRange,    // register-file or register index out of range
  FuIndexOutOfRange,    // function-unit index out of range
  GuardIndexOutOfRange, // guard register index out of range
  BadJumpTarget,        // branch target outside the program's blocks
  MemoryOutOfRange,     // load/store address outside the memory image
  PcOutOfRange,         // PC ran off the end with no transfer pending
  ProtectionDetected,   // a declared protection mechanism (parity, SEC-DED
                        // detect, DMR/residue compare, imem code) caught a
                        // corrupted element at its read/fetch site; the
                        // recovery policy decides what happens next
  DetectedUnrecoverable,// detection with rollback enabled, but re-execution
                        // exhausted the retry budget (or rollback was
                        // impossible) — the structured "DUE" end state
};

constexpr const char* trap_reason_name(TrapReason r) {
  switch (r) {
    case TrapReason::InvalidOpcode: return "invalid-opcode";
    case TrapReason::RfIndexOutOfRange: return "rf-index";
    case TrapReason::FuIndexOutOfRange: return "fu-index";
    case TrapReason::GuardIndexOutOfRange: return "guard-index";
    case TrapReason::BadJumpTarget: return "bad-jump-target";
    case TrapReason::MemoryOutOfRange: return "memory";
    case TrapReason::PcOutOfRange: return "pc";
    case TrapReason::ProtectionDetected: return "protect-detected";
    case TrapReason::DetectedUnrecoverable: return "detect-unrecoverable";
  }
  return "?";
}

/// Structured trap record carried by ExecResult when status == Trapped.
/// Identical on the fast and reference paths (differentially tested): the
/// trap fires at the same cycle with the same reason/unit/detail whether
/// the illegal encoding was caught at predecode time (fast path) or at
/// execute time (reference path).
struct TrapInfo {
  TrapReason reason = TrapReason::InvalidOpcode;
  std::uint64_t cycle = 0;
  /// Offending unit: the move's bus (TTA), the issue slot's FU (VLIW),
  /// -1 (scalar / not applicable).
  int unit = -1;
  /// Offending value: the out-of-range index, raw opcode byte, address…
  std::uint32_t detail = 0;

  bool operator==(const TrapInfo&) const = default;
};

struct FaultSet;      // sim/fault.hpp: mid-run single-bit state faults
struct ProtectState;  // sim/protect.hpp: architectural protection semantics

/// Scalar timing-model overhead categories, reported via on_overhead. The
/// pipelined cores have no equivalent events: their overhead cycles are
/// classified from the static schedule instead (prof/cause.hpp).
enum class OverheadKind : std::uint8_t {
  FrontendFill,   // pipeline fill before the first instruction issues
  ImmWords,       // extra instruction words fetched for wide immediates
  VarShift,       // unrolled / data-dependent shift sequencing cycles
  BranchPenalty,  // taken-branch redirect penalty
};

/// Flat execution tallies the run loops fill when SimOptions::profile is
/// set — the cheap collection mode behind the cycle-attribution profiler
/// (src/prof). Unlike an ExecObserver there is no per-event virtual
/// dispatch — and no per-cycle work at all: the loops count only *taken
/// control transfers* (rare), guard squashes (rare), the scalar timing
/// model's overhead events (rare), and a one-time state capture at halt.
/// prof::derive_profile() reconstructs the per-pc execution counts from the
/// transfer counts by prefix-summing a difference array over the program's
/// straight-line flow (control enters at pc 0 and only the counted
/// transfers redirect it), then folds the static schedule over them.
///
/// Sizing contract (prof::make_profile_counts sizes all of this): `taken`
/// holds one slot per flat slot-op in program order (only control ops ever
/// count — a slot's completed taken transfers, i.e. those whose landing at
/// the target actually executed); `squash` holds two slots per TTA move in
/// flat program order (2*move for architectural squashes, 2*move+1 for
/// squashes inside a shadow); the scalar arrays hold one slot per pc; and
/// `uncommitted_rf_writes` holds one slot per register file, filled at halt
/// with writes still in flight (issued, never committed — so never seen by
/// ExecObserver::on_rf_write either).
struct ProfileCounts {
  /// Per flat slot-op: taken control transfers that completed (landed and
  /// executed their target). A transfer still in flight at a timeout is
  /// counted here too and backed out via the end_* capture below.
  std::vector<std::uint64_t> taken;
  std::vector<std::uint64_t> squash;

  // Scalar timing-model events (data-dependent, so counted at the event
  // sites rather than derived): hazard stalls, variable/unrolled shift
  // cycles, extra immediate fetch words, taken-branch penalties — each a
  // per-pc cycle total — and the one-time pipeline fill.
  std::vector<std::uint64_t> stall;
  std::vector<std::uint64_t> var_shift;
  std::vector<std::uint64_t> imm_words;
  std::vector<std::uint64_t> branch_penalty;
  std::uint64_t frontend_fill = 0;

  // Filled once at run exit.
  std::vector<std::uint64_t> uncommitted_rf_writes;
  /// Last architecturally-executed pc (shadow executions excluded): closes
  /// the final straight-line flow segment, and the residual drain past the
  /// program end is attributed to its block.
  std::uint32_t final_pc = 0;
  /// TTA/VLIW halt state: the pc about to execute next (`end_pc`) and the
  /// pending control transfer, if any (`end_transfer_in` cycles left until
  /// redirect to `end_transfer_target`; -1 when none). A timeout can halt
  /// mid-shadow; derive_profile backs the unexecuted tail of the final
  /// taken transfer out of the reconstruction with these.
  std::uint32_t end_pc = 0;
  std::int32_t end_transfer_in = -1;
  std::int32_t end_transfer_target = -1;
};

class ExecObserver {
 public:
  virtual ~ExecObserver() = default;

  virtual void on_move(std::uint64_t /*cycle*/, int /*bus*/) {}
  virtual void on_guard_squash(std::uint64_t /*cycle*/, int /*bus*/) {}
  virtual void on_trigger(std::uint64_t /*cycle*/, int /*fu*/, ir::Opcode /*op*/) {}
  virtual void on_rf_read(std::uint64_t /*cycle*/, int /*rf*/, int /*index*/) {}
  virtual void on_rf_write(std::uint64_t /*cycle*/, int /*rf*/, int /*index*/,
                           std::uint32_t /*value*/) {}
  virtual void on_stall(std::uint64_t /*cycle*/, std::uint64_t /*stall_cycles*/) {}
  virtual void on_block_enter(std::uint64_t /*cycle*/, std::uint32_t /*block*/) {}
  virtual void on_exec(std::uint64_t /*cycle*/, std::uint32_t /*pc*/, bool /*shadow*/) {}
  virtual void on_overhead(std::uint64_t /*cycle*/, OverheadKind /*kind*/,
                           std::uint64_t /*cycles*/) {}
  virtual void on_guard_write(std::uint64_t /*cycle*/, int /*guard*/, std::uint32_t /*value*/) {}
  virtual void on_store(std::uint64_t /*cycle*/, std::uint32_t /*addr*/,
                        std::uint32_t /*value*/, std::uint8_t /*width*/) {}
};

/// Per-run simulator configuration, accepted by all three simulators.
struct SimOptions {
  /// Execute over the predecoded program form (src/sim/predecode.hpp).
  /// false selects the original interpretive loop — the cycle-exact
  /// reference the fast path is differentially tested against.
  bool fast_path = true;

  /// Cycle-level event sink; nullptr disables observation entirely.
  ExecObserver* observer = nullptr;

  /// Cheap profile-collection sink; nullptr disables it entirely (the fast
  /// paths template it out, so the off cost is zero). Must be sized for the
  /// program being run — see ProfileCounts / prof::make_profile_counts.
  ProfileCounts* profile = nullptr;

  /// Driver-level convenience (report::compile_and_run_prebuilt): attach a
  /// UtilizationCollector for the run and surface its report through
  /// RunOutcome::utilization. The simulators themselves ignore this flag.
  bool collect_utilization = false;

  /// Driver-level convenience: attach a prof::CycleProfiler for the run and
  /// surface its cycle-attribution profile through RunOutcome::profile.
  /// The simulators themselves ignore this flag.
  bool collect_profile = false;

  /// Fail-closed execution: bounds-check memory accesses (and apply
  /// `faults`, when given) on the fast path, turning illegal states into
  /// ExecStatus::Trapped instead of assertions. Selected automatically
  /// whenever `faults` is set; the reference loops always fail closed.
  /// Off (the default) keeps the no-fault fast path's cycle stream and
  /// instruction mix untouched.
  bool harden = false;

  /// Mid-run single-bit state faults (sim/fault.hpp), applied at the top of
  /// their cycle by both execution paths. Implies hardened execution on the
  /// fast path. The caller owns the set; it must stay alive for the run.
  const FaultSet* faults = nullptr;

  /// Architectural fault-protection semantics (sim/protect.hpp): filters
  /// applied faults (TMR suppression, parity masking), tracks poisoned
  /// elements, and turns read/fetch-site detections into
  /// ProtectionDetected traps. Implies hardened execution on the fast path.
  /// With no faults applied a protected run is byte-identical to an
  /// unprotected one (the mechanisms only ever react to corruption). The
  /// caller owns the state; it must stay alive for the run and be reset
  /// between runs.
  ProtectState* protect = nullptr;
};

}  // namespace ttsc::sim
