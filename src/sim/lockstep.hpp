// Batched lockstep fault-injection execution.
//
// A resilience campaign (resil/campaign.hpp) runs thousands of single-fault
// simulations of the *same* predecoded program, and almost every one of them
// tracks the fault-free golden run bit-for-bit except in a handful of
// locations touched by the flipped bit. The lockstep stepper exploits that:
// one fault-free **leader** executes the program once per batch, and up to
// kMaxLanes faulty lanes ride along as sparse diffs against the leader's
// architectural state —
//
//  * a per-location lane bitmask (structure-of-arrays: one mask word per RF
//    slot / guard / FU port / in-flight ring entry, one value word per
//    (lane, location)) says which lanes differ where, so a clean lane costs
//    nothing in the per-cycle inner loop;
//  * a sorted per-lane byte delta (MemDelta) carries memory divergence from
//    the leader image under an exact-diff invariant: an entry exists iff the
//    lane's byte differs from the leader's current byte;
//  * each lane's sim::FaultSet applies at the top of its cycle, exactly
//    where the scalar simulators apply it.
//
// Lanes stay in lockstep only while that sparse representation is exact.
// The moment a lane's *behaviour* could differ from the leader's — a Bnz or
// guard-squash decision flips, a variable-shift amount (and so the timing)
// changes, or a memory operation's address operand is dirty — the lane is
// marked diverged and **evicted**: its result comes from a full rerun on the
// existing hardened scalar fast path (harden=true, same predecoded program,
// fresh copy of the initial memory, same cycle budget), so sim/harden.hpp
// rules and TrapInfo semantics are reused byte-for-byte rather than
// duplicated. Eviction is the universal correctness escape hatch: lockstep
// only ever handles the cases it can represent exactly.
//
// Conversely a lane whose diffs all cancel (the flip was masked) converges:
// once its dirty set, memory delta and fault queue are empty it can never
// differ from the leader again, and its result is the leader's verbatim.
// When the caller already knows the fault-free outcome (the campaign's
// golden run), passing it as `reference` lets a batch stop as soon as every
// lane has converged or been evicted — the big throughput lever for
// masked-dominated fault populations.
//
// Instruction-memory faults are *not* batchable: they change the program
// all lanes decode, so there is no shared leader to diff against. The
// campaign keeps them on the scalar per-injection path.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "ir/memory.hpp"
#include "mach/machine.hpp"
#include "scalar/scalar.hpp"
#include "sim/fault.hpp"
#include "sim/predecode.hpp"
#include "tta/tta.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::sim {

/// Batches are capped by the lane-mask width. One 64-bit word keeps the
/// per-instruction dirty checks — the hottest loads in the cascade loop — a
/// single load-and-test; wider masks were measured to cost far more there
/// than they save in shared leader runs.
inline constexpr int kMaxLanes = 64;

/// Fixed-width set of lanes. Only the operations the lockstep engines need;
/// an implicit low-word constructor keeps `LaneMask m = 0;` and `m != 0`
/// reading like the plain integer mask this started as.
struct LaneMask {
  static constexpr int kWords = kMaxLanes / 64;
  std::array<std::uint64_t, kWords> w{};

  constexpr LaneMask() = default;
  constexpr LaneMask(std::uint64_t w0) : w{w0} {}  // NOLINT(google-explicit-constructor)

  static constexpr LaneMask bit(int lane) {
    LaneMask m;
    m.w[static_cast<std::size_t>(lane) >> 6] = 1ull << (lane & 63);
    return m;
  }
  /// The set {0, ..., n - 1} (n <= kMaxLanes).
  static constexpr LaneMask first_n(int n) {
    LaneMask m;
    for (int i = 0; i < kWords; ++i) {
      const int lo = i * 64;
      if (n >= lo + 64) {
        m.w[static_cast<std::size_t>(i)] = ~0ull;
      } else if (n > lo) {
        m.w[static_cast<std::size_t>(i)] = (1ull << (n - lo)) - 1;
      }
    }
    return m;
  }

  constexpr bool test(int lane) const {
    return ((w[static_cast<std::size_t>(lane) >> 6] >> (lane & 63)) & 1u) != 0;
  }
  constexpr bool any() const {
    std::uint64_t o = 0;
    for (const std::uint64_t x : w) o |= x;
    return o != 0;
  }
  constexpr explicit operator bool() const { return any(); }

  constexpr LaneMask& operator|=(const LaneMask& o) {
    for (int i = 0; i < kWords; ++i) w[static_cast<std::size_t>(i)] |= o.w[static_cast<std::size_t>(i)];
    return *this;
  }
  constexpr LaneMask& operator&=(const LaneMask& o) {
    for (int i = 0; i < kWords; ++i) w[static_cast<std::size_t>(i)] &= o.w[static_cast<std::size_t>(i)];
    return *this;
  }
  constexpr LaneMask operator~() const {
    LaneMask m;
    for (int i = 0; i < kWords; ++i) m.w[static_cast<std::size_t>(i)] = ~w[static_cast<std::size_t>(i)];
    return m;
  }
  friend constexpr LaneMask operator|(LaneMask a, const LaneMask& b) { return a |= b; }
  friend constexpr LaneMask operator&(LaneMask a, const LaneMask& b) { return a &= b; }
  constexpr bool operator==(const LaneMask&) const = default;
};

/// Sparse per-lane memory diff against the leader image: sorted
/// (address, lane byte) pairs with the exact-diff invariant — an entry
/// exists iff the lane byte differs from the leader's *current* byte, so
/// `empty()` means "lane memory identical to leader memory".
class MemDelta {
 public:
  bool empty() const { return bytes_.empty(); }
  std::size_t size() const { return bytes_.size(); }

  /// Set-or-erase: records `lane_byte` when it differs from `leader_byte`,
  /// erases any entry when they agree (preserving the invariant).
  void set(std::uint32_t addr, std::uint8_t lane_byte, std::uint8_t leader_byte);

  /// The lane's byte at `addr`, or nullptr when it equals the leader's.
  const std::uint8_t* find(std::uint32_t addr) const;

  /// Any entry in [addr, addr + len)?
  bool overlaps(std::uint32_t addr, std::uint32_t len) const;

  std::span<const std::pair<std::uint32_t, std::uint8_t>> entries() const { return bytes_; }

 private:
  std::uint64_t page_bit(std::uint32_t addr) const;

  std::vector<std::pair<std::uint32_t, std::uint8_t>> bytes_;  // sorted by address
  // Conservative coverage summary, consulted before the binary search: every
  // entry lies in [lo_, hi_] and has its 16-byte-page bloom bit set. Erases
  // leave the summary stale-but-superset (it resets when the delta empties),
  // so a miss here proves no overlap while a hit still runs the exact check.
  // This is what keeps the per-load delta scan in the lockstep cascade cheap:
  // most loads probe lanes whose divergent bytes live elsewhere.
  std::uint32_t lo_ = 0xffffffffu;
  std::uint32_t hi_ = 0;
  std::uint64_t pages_ = 0;
};

/// The lane's full memory image: leader image with the delta applied.
ir::Memory materialize(const ir::Memory& leader, const MemDelta& delta);

/// FNV-1a checksum over [addr, addr + len) of the lane's image without
/// materializing it; bit-identical to ir::Memory::checksum on materialize().
std::uint64_t checksum_with_delta(const ir::Memory& leader, const MemDelta& delta,
                                  std::uint32_t addr, std::uint32_t len);

/// One lane's outcome. Exactly one of three shapes:
///  * evicted   — `result` and `mem` come from a scalar-fast-path rerun;
///                `diverge_cycle` is the leader cycle the divergence was
///                detected at; `delta` is empty and `mem` is engaged.
///  * converged — the fault was fully masked: `result` is the leader's
///                verbatim and `delta` is empty (lane memory == leader_mem).
///  * in-diff   — the lane halted with the leader but carries live state
///                diffs: `result` is the leader's with RF/guard/ret overlays
///                applied and `delta` holds the memory divergence.
template <typename ExecResultT>
struct LaneOutcome {
  ExecResultT result;
  bool evicted = false;
  bool converged = false;
  std::uint64_t diverge_cycle = 0;
  MemDelta delta;
  std::optional<ir::Memory> mem;  // engaged iff evicted
};

template <typename ExecResultT>
struct BatchResult {
  /// Fault-free reference outcome (the leader's run, or `reference` when the
  /// batch settled early). leader_mem is always the fault-free final image.
  ExecResultT leader;
  ir::Memory leader_mem{0};
  std::vector<LaneOutcome<ExecResultT>> lanes;
  /// Lanes whose control flow / timing provably diverged from the leader.
  std::uint64_t divergences = 0;
  /// Lanes evicted to the scalar path (divergences plus conservative
  /// evictions such as a dirty memory-address operand).
  std::uint64_t evictions = 0;
};

using ScalarBatchResult = BatchResult<scalar::ExecResult>;
using VliwBatchResult = BatchResult<vliw::ExecResult>;
using TtaBatchResult = BatchResult<tta::ExecResult>;

/// Run up to kMaxLanes faulty instances in lockstep against one fault-free
/// leader. `initial_mem` is the pristine loaded image (copied for the leader
/// and for every eviction rerun). Hardened (fail-closed) semantics are
/// always on, matching the campaign's per-injection runs. When `reference`
/// and `reference_mem` (the known fault-free result and final memory) are
/// given, the batch may stop as soon as every lane converged or was evicted.
ScalarBatchResult run_scalar_batch(const scalar::ScalarProgram& program,
                                   const mach::Machine& machine,
                                   std::shared_ptr<const PredecodedScalar> pre,
                                   const ir::Memory& initial_mem,
                                   std::span<const FaultSet> lane_faults,
                                   std::uint64_t max_cycles,
                                   const scalar::ExecResult* reference = nullptr,
                                   const ir::Memory* reference_mem = nullptr);

VliwBatchResult run_vliw_batch(const vliw::VliwProgram& program, const mach::Machine& machine,
                               std::shared_ptr<const PredecodedVliw> pre,
                               const ir::Memory& initial_mem,
                               std::span<const FaultSet> lane_faults, std::uint64_t max_cycles,
                               const vliw::ExecResult* reference = nullptr,
                               const ir::Memory* reference_mem = nullptr);

TtaBatchResult run_tta_batch(const tta::TtaProgram& program, const mach::Machine& machine,
                             std::shared_ptr<const PredecodedTta> pre,
                             const ir::Memory& initial_mem,
                             std::span<const FaultSet> lane_faults, std::uint64_t max_cycles,
                             const tta::ExecResult* reference = nullptr,
                             const ir::Memory* reference_mem = nullptr);

}  // namespace ttsc::sim
