// Architectural fault-protection semantics shared by all six engine loops
// (TTA/VLIW/scalar, fast and reference paths) — the mitigation counterpart
// of sim/fault.hpp, driven by a machine's declared mach::Protection.
//
// The model is detect-on-consume: codes and checkers sit on the *read*
// side of every protected structure, which is where FPGA soft-core ECC and
// DMR actually compare. A ProtectState tracks which elements currently hold
// corrupted-but-coded contents ("poisoned"), established when a fault is
// applied and cleared when the element is overwritten:
//
//  * RF partitions (Protection::rf) — parity records a poison only when an
//    odd number of bits flipped (an even flip is the classic parity
//    escape); SEC-DED records every flip. On read, SEC-DED corrects a
//    single-bit flip in place (scrubbing the stored value) and detects a
//    double flip; parity detects odd flips. Detection raises a
//    ProtectionDetected trap at the read cycle.
//  * Instruction memory (Protection::imem) — the campaign layer decides
//    per corrupted instruction whether its codeword is correctable
//    (SEC-DED single flip), detectable, or an escape (parity even flip),
//    and poisons the instruction *index*; the fetch check fires when the
//    pc actually reaches it, so never-fetched corruption stays masked
//    exactly like the unprotected model.
//  * FU result registers (Protection::fu, TTA only) — DMR detects any
//    mismatch when the corrupted result is consumed; a mod-3 residue check
//    detects only flips that change the value's residue (the cheap
//    checker's real escape rate).
//  * Guard latches (Protection::guard_tmr) — TMR outvotes the flip at
//    apply time: the fault is suppressed and counted as corrected.
//
// Both execution paths call the same ProtectState methods at equivalent
// architectural points, keyed by flat RF slots (sim/predecode.hpp rf_base
// numbering, which the reference loops reproduce with a local prefix-sum
// table), so a protected run is byte-identical fast==reference. A protected
// run with no faults applied never creates a poison and thus never perturbs
// execution — protected goldens equal unprotected goldens.
//
// Detection traps carry unit = -1 and detail = the flat RF slot, FU index
// or pc. Checkpoint-rollback recovery is resolved by the campaign layer
// (resil/campaign.cpp) from the detection cycle; the simulators only ever
// fail stop with ProtectionDetected.
#pragma once

#include <cstdint>
#include <vector>

#include "mach/machine.hpp"

namespace ttsc::sim {

struct ProtectState {
  /// What the machine declared (copied so the state is self-contained).
  mach::Protection cfg;

  explicit ProtectState(const mach::Protection& p) : cfg(p) {}

  /// Detection/correction tallies, read by the campaign after each run and
  /// exported as "protect.*" counters.
  std::uint64_t rf_corrected = 0;
  std::uint64_t rf_detected = 0;
  std::uint64_t fu_detected = 0;
  std::uint64_t guard_corrected = 0;
  std::uint64_t imem_corrected = 0;
  std::uint64_t imem_detected = 0;

  std::uint64_t corrections() const { return rf_corrected + guard_corrected + imem_corrected; }
  std::uint64_t detections() const { return rf_detected + fu_detected + imem_detected; }

  /// Clear poisons AND tallies (between independent runs).
  void reset() {
    rf_poison_.clear();
    fu_poison_.clear();
    imem_correctable_.clear();
    imem_detectable_.clear();
    rf_corrected = rf_detected = fu_detected = 0;
    guard_corrected = imem_corrected = imem_detected = 0;
  }

  // ---- fault-apply filters (top-of-cycle, before the flip lands) --------

  /// An RF bit-flip with XOR `mask` landed on flat slot `slot`. The flip is
  /// always applied to storage; this records whether the code will notice.
  void on_rf_flip(std::uint32_t slot, std::uint32_t mask) {
    if (cfg.rf == mach::Protection::Code::None) return;
    if (cfg.rf == mach::Protection::Code::Parity && even_bits(mask)) return;  // escape
    merge_poison(rf_poison_, slot, mask);
  }

  /// A TTA FU result-register flip landed on FU `fu`.
  void on_fu_flip(std::uint32_t fu, std::uint32_t mask) {
    if (cfg.fu == mach::Protection::FuCheck::None) return;
    merge_poison(fu_poison_, fu, mask);
  }

  /// A guard-latch flip is about to land. Returns false when TMR outvotes
  /// it (the caller must suppress the flip).
  bool on_guard_flip() {
    if (!cfg.guard_tmr) return true;
    ++guard_corrected;
    return false;
  }

  // ---- read-site checks -------------------------------------------------

  /// RF read of flat slot `slot`. SEC-DED corrects a single-bit poison by
  /// scrubbing `*stored` in place (the read then sees the corrected value);
  /// returns true when the code *detects* — the caller raises
  /// ProtectionDetected with detail = slot.
  bool check_rf_read(std::uint32_t slot, std::uint32_t* stored) {
    if (rf_poison_.empty()) return false;
    for (std::size_t i = 0; i < rf_poison_.size(); ++i) {
      if (rf_poison_[i].key != slot) continue;
      const std::uint32_t mask = rf_poison_[i].mask;
      if (cfg.rf == mach::Protection::Code::SecDed && single_bit(mask)) {
        *stored ^= mask;  // scrub
        rf_poison_.erase(rf_poison_.begin() + static_cast<std::ptrdiff_t>(i));
        ++rf_corrected;
        return false;
      }
      if (cfg.rf == mach::Protection::Code::Parity && even_bits(mask)) {
        // Composed flips cancelled the parity error (multi-fault only).
        rf_poison_.erase(rf_poison_.begin() + static_cast<std::ptrdiff_t>(i));
        return false;
      }
      ++rf_detected;
      return true;
    }
    return false;
  }

  /// TTA FU result read of FU `fu`. DMR detects any poison; residue-3
  /// detects only when the flip changed the value mod 3 (otherwise the
  /// poison silently escapes the checker and is dropped). Returns true on
  /// detection — detail = fu.
  bool check_fu_read(std::uint32_t fu, std::uint32_t stored) {
    if (fu_poison_.empty()) return false;
    for (std::size_t i = 0; i < fu_poison_.size(); ++i) {
      if (fu_poison_[i].key != fu) continue;
      if (cfg.fu == mach::Protection::FuCheck::Residue3 &&
          stored % 3u == (stored ^ fu_poison_[i].mask) % 3u) {
        fu_poison_.erase(fu_poison_.begin() + static_cast<std::ptrdiff_t>(i));  // escape
        return false;
      }
      ++fu_detected;
      return true;
    }
    return false;
  }

  enum class ImemAction : std::uint8_t { Clean, Corrected, Detected };

  /// Instruction fetch at `pc`. Correctable codewords scrub on first fetch
  /// (counted once); detectable ones raise ProtectionDetected with
  /// detail = pc.
  ImemAction check_imem_fetch(std::uint32_t pc) {
    if (!imem_correctable_.empty()) {
      for (std::size_t i = 0; i < imem_correctable_.size(); ++i) {
        if (imem_correctable_[i] != pc) continue;
        imem_correctable_.erase(imem_correctable_.begin() + static_cast<std::ptrdiff_t>(i));
        ++imem_corrected;
        return ImemAction::Corrected;
      }
    }
    for (std::uint32_t p : imem_detectable_) {
      if (p == pc) {
        ++imem_detected;
        return ImemAction::Detected;
      }
    }
    return ImemAction::Clean;
  }

  // ---- overwrite clears -------------------------------------------------

  /// A write committed to flat slot `slot`: fresh data, fresh code.
  void clear_rf(std::uint32_t slot) {
    if (rf_poison_.empty()) return;
    erase_key(rf_poison_, slot);
  }

  /// A new result was delivered to FU `fu`.
  void clear_fu(std::uint32_t fu) {
    if (fu_poison_.empty()) return;
    erase_key(fu_poison_, fu);
  }

  // ---- campaign-side imem poisoning -------------------------------------

  /// Mark the instruction at index `pc` as holding a correctable codeword
  /// (the run executes the pristine program; the scrub is counted at the
  /// first fetch).
  void poison_imem_correctable(std::uint32_t pc) { imem_correctable_.push_back(pc); }
  /// Mark the instruction at index `pc` as holding a detected-uncorrectable
  /// codeword (the run executes the pristine program; the fetch traps).
  void poison_imem_detectable(std::uint32_t pc) { imem_detectable_.push_back(pc); }

  bool any_poison() const {
    return !rf_poison_.empty() || !fu_poison_.empty() || !imem_correctable_.empty() ||
           !imem_detectable_.empty();
  }

 private:
  struct Poison {
    std::uint32_t key;
    std::uint32_t mask;
  };

  static bool single_bit(std::uint32_t m) { return m != 0 && (m & (m - 1)) == 0; }
  static bool even_bits(std::uint32_t m) {
    int n = 0;
    for (std::uint32_t v = m; v != 0; v &= v - 1) ++n;
    return (n & 1) == 0;
  }
  static void merge_poison(std::vector<Poison>& v, std::uint32_t key, std::uint32_t mask) {
    for (Poison& p : v) {
      if (p.key == key) {
        p.mask ^= mask;  // a second flip on the same element composes
        if (p.mask == 0) erase_key(v, key);
        return;
      }
    }
    v.push_back({key, mask});
  }
  static void erase_key(std::vector<Poison>& v, std::uint32_t key) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i].key == key) {
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  std::vector<Poison> rf_poison_;   // key = flat RF slot
  std::vector<Poison> fu_poison_;   // key = FU index
  std::vector<std::uint32_t> imem_correctable_;  // instruction indices
  std::vector<std::uint32_t> imem_detectable_;
};

}  // namespace ttsc::sim
