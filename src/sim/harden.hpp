// Fail-closed validation shared by the decoder and the reference loops.
//
// A single-bit flip in an instruction encoding either yields another valid
// instruction (wrong-but-valid: executed normally, classified by output
// diffing) or an illegal one. These helpers decide which, with ONE rule set
// used from both sides of the differential pair:
//
//  * sim::predecode() runs the checks at decode time and marks illegal
//    moves/ops with a trap code, which the fast loops surface as
//    ExecStatus::Trapped at the cycle the corrupted instruction first
//    executes;
//  * the interpretive reference loops run the same checks at execute time,
//    at the same point of the cycle, producing a bit-identical TrapInfo.
//
// A move/op with more than one corrupted field cannot occur under the
// single-event-upset model, so check order never matters for equivalence;
// it is still fixed (guard, source, destination, opcode, target) so both
// paths agree by construction.
#pragma once

#include <cstdint>

#include "codegen/minstr.hpp"
#include "mach/machine.hpp"
#include "sim/observer.hpp"
#include "tta/tta.hpp"

namespace ttsc::sim {

/// Decode-time verdict for one TTA move or one machine instruction.
/// `trap` is 0 when legal, else TrapReason + 1 (the predecoded forms store
/// this byte directly so "no trap" tests as zero).
struct DecodeCheck {
  std::uint8_t trap = 0;
  std::uint32_t detail = 0;
  /// The guard index itself is corrupt: the trap fires unconditionally
  /// (the guard cannot be evaluated to squash the move).
  bool guard_trap = false;

  bool ok() const { return trap == 0; }
  TrapReason reason() const { return static_cast<TrapReason>(trap - 1); }
};

inline DecodeCheck decode_fail(TrapReason r, std::uint32_t detail, bool guard_trap = false) {
  return DecodeCheck{static_cast<std::uint8_t>(static_cast<std::uint8_t>(r) + 1), detail,
                     guard_trap};
}

/// Bytes touched by a memory opcode (0 for non-memory ops).
constexpr int mem_access_bytes(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::Ldw:
    case ir::Opcode::Stw: return 4;
    case ir::Opcode::Ldh:
    case ir::Opcode::Ldhu:
    case ir::Opcode::Sth: return 2;
    case ir::Opcode::Ldq:
    case ir::Opcode::Ldqu:
    case ir::Opcode::Stq: return 1;
    default: return 0;
  }
}

/// Address-range check for a (possibly fault-corrupted) memory access.
constexpr bool mem_in_bounds(ir::Opcode op, std::uint32_t addr, std::size_t mem_size) {
  return static_cast<std::uint64_t>(addr) + static_cast<std::uint64_t>(mem_access_bytes(op)) <=
         static_cast<std::uint64_t>(mem_size);
}

/// Validate one TTA move against the machine and program shape.
inline DecodeCheck check_tta_move(const tta::Move& mv, const mach::Machine& machine,
                                  std::size_t num_blocks) {
  const std::size_t nfus = machine.fus.size();
  const std::size_t nrfs = machine.rfs.size();

  // Guard index first: an unevaluable guard cannot squash the move.
  // (-1 is the unconditional encoding; anything else outside the guard
  // register range traps.)
  if (mv.guard < -1 || mv.guard >= machine.guard_regs) {
    return decode_fail(TrapReason::GuardIndexOutOfRange,
                       static_cast<std::uint32_t>(mv.guard), /*guard_trap=*/true);
  }

  switch (mv.src.kind) {
    case tta::MoveSrc::Kind::Imm: break;
    case tta::MoveSrc::Kind::FuResult:
      if (mv.src.unit < 0 || static_cast<std::size_t>(mv.src.unit) >= nfus) {
        return decode_fail(TrapReason::FuIndexOutOfRange, static_cast<std::uint32_t>(mv.src.unit));
      }
      break;
    case tta::MoveSrc::Kind::RfRead:
      if (mv.src.unit < 0 || static_cast<std::size_t>(mv.src.unit) >= nrfs) {
        return decode_fail(TrapReason::RfIndexOutOfRange, static_cast<std::uint32_t>(mv.src.unit));
      }
      if (mv.src.reg_index < 0 ||
          mv.src.reg_index >= machine.rfs[static_cast<std::size_t>(mv.src.unit)].size) {
        return decode_fail(TrapReason::RfIndexOutOfRange,
                           static_cast<std::uint32_t>(mv.src.reg_index));
      }
      break;
  }

  switch (mv.dst.kind) {
    case tta::MoveDst::Kind::FuOperand:
      if (mv.dst.unit < 0 || static_cast<std::size_t>(mv.dst.unit) >= nfus) {
        return decode_fail(TrapReason::FuIndexOutOfRange, static_cast<std::uint32_t>(mv.dst.unit));
      }
      break;
    case tta::MoveDst::Kind::RfWrite:
      if (mv.dst.unit < 0 || static_cast<std::size_t>(mv.dst.unit) >= nrfs) {
        return decode_fail(TrapReason::RfIndexOutOfRange, static_cast<std::uint32_t>(mv.dst.unit));
      }
      if (mv.dst.reg_index < 0 ||
          mv.dst.reg_index >= machine.rfs[static_cast<std::size_t>(mv.dst.unit)].size) {
        return decode_fail(TrapReason::RfIndexOutOfRange,
                           static_cast<std::uint32_t>(mv.dst.reg_index));
      }
      break;
    case tta::MoveDst::Kind::GuardWrite:
      if (mv.dst.unit < 0 || mv.dst.unit >= machine.guard_regs) {
        return decode_fail(TrapReason::GuardIndexOutOfRange,
                           static_cast<std::uint32_t>(mv.dst.unit));
      }
      break;
    case tta::MoveDst::Kind::FuTrigger: {
      if (mv.dst.unit < 0 || static_cast<std::size_t>(mv.dst.unit) >= nfus) {
        return decode_fail(TrapReason::FuIndexOutOfRange, static_cast<std::uint32_t>(mv.dst.unit));
      }
      const ir::Opcode op = mv.dst.opcode;
      const auto raw = static_cast<std::uint32_t>(static_cast<std::uint8_t>(op));
      if (mv.is_control) {
        // Control triggers execute Jump/Bnz/Ret only (Call is inlined away
        // before scheduling and has no transport semantics).
        if (op != ir::Opcode::Jump && op != ir::Opcode::Bnz && op != ir::Opcode::Ret) {
          return decode_fail(TrapReason::InvalidOpcode, raw);
        }
        if (op != ir::Opcode::Ret && mv.target >= num_blocks) {
          return decode_fail(TrapReason::BadJumpTarget, mv.target);
        }
      } else {
        if (raw >= static_cast<std::uint32_t>(ir::kNumOpcodes) || ir::is_terminator(op) ||
            op == ir::Opcode::Call ||
            !machine.fus[static_cast<std::size_t>(mv.dst.unit)].supports(op)) {
          return decode_fail(TrapReason::InvalidOpcode, raw);
        }
      }
      break;
    }
  }
  return DecodeCheck{};
}

/// Validate one machine instruction for the VLIW (`needs_fu` = true) or
/// scalar executor.
inline DecodeCheck check_minstr(const codegen::MInstr& in, const mach::Machine& machine,
                                bool needs_fu, std::size_t num_blocks) {
  const ir::Opcode op = in.op;
  const auto raw = static_cast<std::uint32_t>(static_cast<std::uint8_t>(op));
  if (raw >= static_cast<std::uint32_t>(ir::kNumOpcodes)) {
    return decode_fail(TrapReason::InvalidOpcode, raw);
  }
  // Call is inlined away before scheduling and Select is expanded/lowered;
  // neither has executor semantics, so a flip into them is illegal.
  if (op == ir::Opcode::Call || op == ir::Opcode::Select) {
    return decode_fail(TrapReason::InvalidOpcode, raw);
  }
  // An opcode flip that raises the arity lands on operand fields the
  // encoded instruction does not carry: illegal encoding.
  const int arity = ir::num_inputs(op);
  if (arity >= 0 && static_cast<std::size_t>(arity) > in.srcs.size()) {
    return decode_fail(TrapReason::InvalidOpcode, raw);
  }
  for (const codegen::MOperand& s : in.srcs) {
    if (!s.is_reg()) continue;
    if (s.reg.rf < 0 || static_cast<std::size_t>(s.reg.rf) >= machine.rfs.size()) {
      return decode_fail(TrapReason::RfIndexOutOfRange, static_cast<std::uint32_t>(s.reg.rf));
    }
    if (s.reg.index < 0 || s.reg.index >= machine.rfs[static_cast<std::size_t>(s.reg.rf)].size) {
      return decode_fail(TrapReason::RfIndexOutOfRange, static_cast<std::uint32_t>(s.reg.index));
    }
  }
  if (in.has_dst()) {
    if (static_cast<std::size_t>(in.dst.rf) >= machine.rfs.size()) {
      return decode_fail(TrapReason::RfIndexOutOfRange, static_cast<std::uint32_t>(in.dst.rf));
    }
    if (in.dst.index < 0 ||
        in.dst.index >= machine.rfs[static_cast<std::size_t>(in.dst.rf)].size) {
      return decode_fail(TrapReason::RfIndexOutOfRange, static_cast<std::uint32_t>(in.dst.index));
    }
    if (needs_fu && op != ir::Opcode::MovI && op != ir::Opcode::Copy &&
        machine.fu_for(op) < 0) {
      return decode_fail(TrapReason::InvalidOpcode, raw);
    }
  }
  if (ir::is_branch(op)) {
    if (in.targets.empty()) return decode_fail(TrapReason::BadJumpTarget, 0);
    if (in.targets[0] >= num_blocks) {
      return decode_fail(TrapReason::BadJumpTarget, in.targets[0]);
    }
  }
  return DecodeCheck{};
}

}  // namespace ttsc::sim
