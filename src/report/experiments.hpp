// Experiment matrix and paper-artifact renderers.
//
// Each render_* function regenerates one table or figure from the paper's
// evaluation section (Section V) in the same layout: absolute numbers for
// the baseline rows (MicroBlaze for the 1-issue group, m-vliw-2/3 for the
// multi-issue groups) and relative factors for everything else.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fpga/model.hpp"
#include "report/driver.hpp"

namespace ttsc::report {

struct MachineResults {
  mach::Machine machine;
  fpga::AreaReport area;
  fpga::TimingReport timing;
  std::map<std::string, RunOutcome> by_workload;  // workload name -> outcome
};

/// Full evaluation matrix: all 13 machines x all 8 workloads, each run
/// cross-checked against the reference interpreter.
class Matrix {
 public:
  /// Runs the full matrix serially (compiles and simulates 104
  /// configurations; each workload's module is built once and shared
  /// across machines). ParallelRunner produces the identical matrix using
  /// a thread pool — this serial path is the determinism reference.
  /// `sim_options` selects the simulator path for every cell (e.g.
  /// fast_path = false for the reference interpreters). `metrics`
  /// (optional) receives every cell's compiler/scheduler/sim counters; the
  /// merged registry is byte-identical to a ParallelRunner sweep's at any
  /// thread count (all merge operations commute and each build/cell
  /// contributes exactly once).
  ///
  /// `keep_going = false` (the default) rethrows the first cell failure,
  /// the historical behavior. With `keep_going = true` a cell whose
  /// pipeline or simulation fails (timeout, trap, divergence) is captured
  /// as a RunOutcome with ok = false and the error message, the sweep
  /// continues, and renderers show the cell as ERR.
  ///
  /// `superblocks` (optional) runs every cell through the two-phase
  /// profile-guided superblock compile (see compile_and_run_prebuilt); each
  /// outcome then carries baseline_cycles for delta reporting.
  static Matrix run(support::Timeline* timeline = nullptr,
                    const sim::SimOptions& sim_options = {},
                    obs::Registry* metrics = nullptr, bool keep_going = false,
                    const opt::SuperblockOptions* superblocks = nullptr);

  const MachineResults& machine(const std::string& name) const;

  /// Failed cells (ok == false), machine-major in suite order. Empty for a
  /// fully successful sweep; harnesses render these on stderr and exit
  /// non-zero.
  std::vector<const RunOutcome*> failures() const;
  const std::vector<MachineResults>& machines() const { return machines_; }
  const std::vector<std::string>& workload_names() const { return workload_names_; }

  /// Cycles for (machine, workload).
  std::uint64_t cycles(const std::string& machine, const std::string& workload) const;
  /// Runtime in microseconds at the machine's modelled fmax.
  double runtime_us(const std::string& machine, const std::string& workload) const;

 private:
  friend class ParallelRunner;  // fills the same private tables

  std::vector<MachineResults> machines_;
  std::vector<std::string> workload_names_;
};

std::string render_table2_program_size(const Matrix& m);
std::string render_table3_synthesis(const Matrix& m);
std::string render_table4_cycles(const Matrix& m);
std::string render_fig5_runtime(const Matrix& m);
std::string render_fig6_efficiency(const Matrix& m);

/// Ablation: per-freedom cycle contribution on the TTA machines (A1).
std::string render_ablation_tta_freedoms();

/// Ablation: RF partitioning — ports vs serialization vs area (A2).
std::string render_ablation_rf_partitioning(const Matrix& m);

}  // namespace ttsc::report
