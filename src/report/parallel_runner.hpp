// Parallel experiment engine.
//
// ModuleCache compiles each workload's optimized module exactly once
// (keyed by workload name, shared by every machine and every worker
// thread); ParallelRunner fans a (machines x workloads) grid of
// compile_and_run_prebuilt cells out across a support::ThreadPool and
// reduces the outcomes into the same MachineResults tables the serial
// driver produces.
//
// Determinism contract: cell (i, j) of the grid depends only on
// (machine i, workload j) — compilation and simulation are pure — and the
// reduction writes results machine-major in suite order, so every table or
// figure rendered from a ParallelRunner matrix is byte-identical to the
// serial Matrix::run() output regardless of thread count or interleaving.
// Errors are captured per cell and the lowest-numbered cell's exception is
// rethrown after the whole grid has run (again interleaving-independent).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "report/experiments.hpp"
#include "support/thread_pool.hpp"
#include "support/timeline.hpp"

namespace ttsc::report {

/// Thread-safe per-workload cache of optimized modules. Each workload is
/// built exactly once no matter how many threads or machines request it
/// (verified by the timeline's "modules_built" counter).
class ModuleCache {
 public:
  /// The optimized module for `workload`, building it on first use. The
  /// returned reference stays valid for the cache's lifetime. When given,
  /// `build_times` receives the frontend/opt wall time of the (possibly
  /// earlier, cached) build.
  const ir::Module& get(const workloads::Workload& workload,
                        support::Timeline* timeline = nullptr,
                        support::StageSeconds* build_times = nullptr);

 private:
  // Hand-rolled once-per-entry instead of std::call_once: libstdc++'s
  // call_once can leave waiters hung when the callable throws (PR 66146),
  // and a failed build must be retryable by the next caller anyway.
  struct Entry {
    std::mutex build_mutex;
    bool built = false;
    ir::Module module;
    support::StageSeconds build_times;
  };

  std::mutex mutex_;                                      // guards the map only
  std::map<std::string, std::unique_ptr<Entry>> entries_;  // keyed by workload name
};

class ParallelRunner {
 public:
  struct Options {
    int threads = 0;                         // <= 0: hardware concurrency
    support::Timeline* timeline = nullptr;   // optional --stats aggregation
  };

  ParallelRunner() : ParallelRunner(Options{}) {}
  explicit ParallelRunner(Options options);

  /// The paper's full sweep: all machines x all workloads, byte-identical
  /// to Matrix::run().
  Matrix run();

  /// Arbitrary grid. Machines keep their given order in the result.
  Matrix run_grid(const std::vector<mach::Machine>& machines,
                  const std::vector<workloads::Workload>& workloads,
                  const tta::TtaOptions& tta_options = {});

  ModuleCache& cache() { return cache_; }
  support::ThreadPool& pool() { return pool_; }

 private:
  Options options_;
  support::ThreadPool pool_;
  ModuleCache cache_;
};

}  // namespace ttsc::report
