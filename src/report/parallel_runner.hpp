// Parallel experiment engine.
//
// ModuleCache compiles each workload's optimized module exactly once
// (keyed by workload name, shared by every machine and every worker
// thread); ParallelRunner fans a (machines x workloads) grid of
// compile_and_run_prebuilt cells out across a support::ThreadPool and
// reduces the outcomes into the same MachineResults tables the serial
// driver produces.
//
// Determinism contract: cell (i, j) of the grid depends only on
// (machine i, workload j) — compilation and simulation are pure — and the
// reduction writes results machine-major in suite order, so every table or
// figure rendered from a ParallelRunner matrix is byte-identical to the
// serial Matrix::run() output regardless of thread count or interleaving.
// Errors are captured per cell and the lowest-numbered cell's exception is
// rethrown after the whole grid has run (again interleaving-independent).
#pragma once

#include <vector>

#include "report/experiments.hpp"
#include "report/module_cache.hpp"
#include "support/thread_pool.hpp"
#include "support/timeline.hpp"

namespace ttsc::report {

class ParallelRunner {
 public:
  struct Options {
    int threads = 0;                         // <= 0: hardware concurrency
    support::Timeline* timeline = nullptr;   // optional --stats aggregation
    /// Simulator configuration for every cell. A non-null observer is
    /// ignored (observers are not thread-safe across cells); use
    /// sim.collect_utilization to get per-cell reports instead.
    sim::SimOptions sim{};
    /// Optional shared metrics registry. Each cell accumulates into a local
    /// shard and merges once, so the registry is never touched on simulator
    /// hot paths; the merged result is byte-identical to a serial
    /// Matrix::run(..., registry) sweep at any thread count.
    obs::Registry* registry = nullptr;
    /// Capture a failed cell (timeout/trap/divergence) as a RunOutcome with
    /// ok = false instead of rethrowing, exactly like
    /// Matrix::run(..., keep_going = true); the rest of the grid still runs
    /// and renderers show the cell as ERR.
    bool keep_going = false;
    /// When non-null, every cell runs the two-phase profile-guided
    /// superblock compile (see compile_and_run_prebuilt). Both phases are
    /// deterministic per cell, so the engine's byte-identical-at-any-
    /// thread-count contract is unchanged.
    const opt::SuperblockOptions* superblocks = nullptr;
  };

  ParallelRunner() : ParallelRunner(Options{}) {}
  explicit ParallelRunner(Options options);

  /// The paper's full sweep: all machines x all workloads, byte-identical
  /// to Matrix::run().
  Matrix run();

  /// Arbitrary grid. Machines keep their given order in the result.
  Matrix run_grid(const std::vector<mach::Machine>& machines,
                  const std::vector<workloads::Workload>& workloads,
                  const tta::TtaOptions& tta_options = {});

  ModuleCache& cache() { return cache_; }
  support::ThreadPool& pool() { return pool_; }

 private:
  Options options_;
  support::ThreadPool pool_;
  ModuleCache cache_;
};

}  // namespace ttsc::report
