#include "report/profile_report.hpp"

#include <algorithm>
#include <fstream>

#include "obs/json.hpp"
#include "support/strings.hpp"

namespace ttsc::report {

namespace {

const char* model_name(mach::Model model) {
  switch (model) {
    case mach::Model::Tta: return "tta";
    case mach::Model::Vliw: return "vliw";
    case mach::Model::Scalar: return "scalar";
  }
  return "?";
}

std::uint64_t cause_of(const prof::CellProfile& p, prof::Cause c) {
  return p.cause_cycles[static_cast<std::size_t>(c)];
}

/// Hottest blocks by attributed cycles (descending, block id breaks ties),
/// capped — the per-block hot list, not the full table.
constexpr std::size_t kHotBlocks = 8;

std::vector<std::uint32_t> hot_blocks(const prof::CellProfile& p) {
  std::vector<std::uint32_t> blocks;
  for (std::uint32_t b = 0; b < p.num_blocks; ++b) {
    if (p.block_cycles(b) > 0) blocks.push_back(b);
  }
  std::sort(blocks.begin(), blocks.end(), [&](std::uint32_t a, std::uint32_t b) {
    const std::uint64_t ca = p.block_cycles(a);
    const std::uint64_t cb = p.block_cycles(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  if (blocks.size() > kHotBlocks) blocks.resize(kHotBlocks);
  return blocks;
}

/// The block's dominant non-Busy cause (enum order breaks ties); "busy"
/// when the block never stalled.
const char* block_top_cause(const prof::CellProfile& p, std::uint32_t b) {
  const std::size_t base = static_cast<std::size_t>(b) * prof::kNumCauses;
  std::size_t best = 0;
  std::uint64_t best_cycles = 0;
  for (std::size_t c = 1; c < prof::kNumCauses; ++c) {
    if (p.block_cause_cycles[base + c] > best_cycles) {
      best_cycles = p.block_cause_cycles[base + c];
      best = c;
    }
  }
  return prof::cause_name(static_cast<prof::Cause>(best));
}

void write_cell_profile(obs::JsonWriter& w, const prof::CellProfile& p) {
  using prof::Cause;
  w.begin_object();
  w.key("cycles");
  w.value(p.cycles);
  w.key("attributed");
  w.value(p.attributed());
  w.key("binding");
  w.value(prof::cause_name(p.binding()));

  // The flat nine-way partition.
  w.key("attribution");
  w.begin_object();
  for (std::size_t c = 0; c < prof::kNumCauses; ++c) {
    w.key(prof::cause_name(static_cast<Cause>(c)));
    w.value(p.cause_cycles[c]);
  }
  w.end_object();

  // The same cycles rolled up as a top-down tree (retiring vs stalled,
  // stalls grouped by the microarchitectural resource they charge).
  w.key("top_down");
  w.begin_object();
  w.key("retiring");
  w.value(cause_of(p, Cause::Busy));
  w.key("stalled");
  w.begin_object();
  w.key("dep");
  w.value(cause_of(p, Cause::Dep));
  w.key("fu_latency");
  w.value(cause_of(p, Cause::FuLatency));
  w.key("ports");
  w.begin_object();
  w.key("rf_read");
  w.value(cause_of(p, Cause::RfReadPort));
  w.key("rf_write");
  w.value(cause_of(p, Cause::RfWritePort));
  w.end_object();
  w.key("transport");
  w.begin_object();
  w.key("bus");
  w.value(cause_of(p, Cause::Bus));
  w.key("long_imm");
  w.value(cause_of(p, Cause::LongImm));
  w.end_object();
  w.key("control");
  w.begin_object();
  w.key("branch");
  w.value(cause_of(p, Cause::Branch));
  w.end_object();
  w.key("frontend");
  w.value(cause_of(p, Cause::Frontend));
  w.end_object();
  w.end_object();

  // Slot accounting: achieved fill vs the scheduler's static expectation.
  w.key("slots");
  w.begin_object();
  w.key("capacity");
  w.value(p.slot_capacity);
  w.key("useful");
  w.value(p.useful_slots);
  w.key("squashed");
  w.value(p.squashed_slots);
  w.key("imm_ext");
  w.value(p.imm_ext_slots);
  w.key("shadow_cycles");
  w.value(p.shadow_cycles);
  w.key("static_filled");
  w.value(p.static_slots_filled);
  w.key("static_capacity");
  w.value(p.static_slot_capacity);
  w.end_object();

  w.key("units");
  w.begin_object();
  w.key("fus");
  w.begin_object();
  if (!p.fu_triggers.empty() && p.fu_triggers[0] != 0) {
    w.key("core");
    w.value(p.fu_triggers[0]);
  }
  for (std::size_t f = 0; f + 1 < p.fu_triggers.size(); ++f) {
    w.key(p.fu_names[f]);
    w.value(p.fu_triggers[f + 1]);
  }
  w.end_object();
  w.key("buses");
  w.begin_object();
  for (std::size_t b = 0; b < p.bus_moves.size(); ++b) {
    w.key(p.bus_names[b]);
    w.begin_object();
    w.key("moves");
    w.value(p.bus_moves[b]);
    w.key("squashes");
    w.value(p.bus_squashes[b]);
    w.end_object();
  }
  w.end_object();
  w.key("rfs");
  w.begin_object();
  for (std::size_t r = 0; r < p.rf_reads.size(); ++r) {
    w.key(p.rf_names[r]);
    w.begin_object();
    w.key("reads");
    w.value(p.rf_reads[r]);
    w.key("writes");
    w.value(p.rf_writes[r]);
    w.end_object();
  }
  w.end_object();
  w.end_object();

  w.key("hot_blocks");
  w.begin_array();
  for (std::uint32_t b : hot_blocks(p)) {
    w.begin_object();
    w.key("block");
    w.value(static_cast<std::uint64_t>(b));
    w.key("cycles");
    w.value(p.block_cycles(b));
    w.key("busy");
    w.value(p.block_cause_cycles[static_cast<std::size_t>(b) * prof::kNumCauses]);
    w.key("top_cause");
    w.value(block_top_cause(p, b));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string render_profile_report(const Matrix& matrix) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ttsc-profile-report");
  w.key("version");
  w.value(std::uint64_t{1});
  w.key("workloads");
  w.begin_array();
  for (const std::string& name : matrix.workload_names()) w.value(name);
  w.end_array();
  w.key("machines");
  w.begin_array();
  for (const MachineResults& r : matrix.machines()) {
    w.begin_object();
    w.key("name");
    w.value(r.machine.name);
    w.key("model");
    w.value(model_name(r.machine.model));
    w.key("cells");
    w.begin_object();
    for (const std::string& name : matrix.workload_names()) {
      const auto it = r.by_workload.find(name);
      if (it == r.by_workload.end() || !it->second.ok || !it->second.profile.has_value()) continue;
      w.key(name);
      write_cell_profile(w, *it->second.profile);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take() + "\n";
}

void write_profile_report(const std::string& path, const Matrix& matrix) {
  const std::string text = render_profile_report(matrix);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << text) || (out.close(), !out)) {
    throw Error("cannot write profile report: " + path);
  }
}

std::string render_profile_folded(const Matrix& matrix) {
  std::string out;
  for (const MachineResults& r : matrix.machines()) {
    for (const std::string& name : matrix.workload_names()) {
      const auto it = r.by_workload.find(name);
      if (it == r.by_workload.end() || !it->second.ok || !it->second.profile.has_value()) continue;
      const prof::CellProfile& p = *it->second.profile;
      for (std::uint32_t b = 0; b < p.num_blocks; ++b) {
        const std::size_t base = static_cast<std::size_t>(b) * prof::kNumCauses;
        for (std::size_t c = 0; c < prof::kNumCauses; ++c) {
          const std::uint64_t cycles = p.block_cause_cycles[base + c];
          if (cycles == 0) continue;
          out += format("%s;%s;block%u;%s %llu\n", r.machine.name.c_str(), name.c_str(), b,
                        prof::cause_name(static_cast<prof::Cause>(c)),
                        static_cast<unsigned long long>(cycles));
        }
      }
    }
  }
  return out;
}

void write_profile_folded(const std::string& path, const Matrix& matrix) {
  const std::string text = render_profile_folded(matrix);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << text) || (out.close(), !out)) {
    throw Error("cannot write folded profile: " + path);
  }
}

}  // namespace ttsc::report
