// Machine-readable run reports ("ttsc-run-report" schema, version 1).
//
// A run report serializes one evaluation matrix — every (machine, workload)
// cell's cycle count, code-size figures, scheduler counters and spill
// breakdown, plus the machine's modelled area/timing and the sweep-wide
// merged metrics registry — as one JSON document.
//
// Determinism contract: the report contains NO wall-clock times (stage
// timings live in --stats output and BENCH_*.json only), so a report is a
// pure function of (machine set, workload suite, compiler options). Two
// sweeps of the same grid produce byte-identical reports regardless of
// thread count, engine (serial/parallel) or whether tracing was enabled —
// which is what makes reports golden-testable and diffable across commits.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "report/experiments.hpp"

namespace ttsc::report {

/// Render the matrix (and optionally the sweep's merged metrics registry)
/// as a "ttsc-run-report" version-1 JSON document, newline-terminated.
std::string render_run_report(const Matrix& matrix, const obs::Registry* metrics = nullptr);

/// Write render_run_report() to `path`. Throws ttsc::Error on I/O failure.
void write_run_report(const std::string& path, const Matrix& matrix,
                      const obs::Registry* metrics = nullptr);

/// One semantic difference between two reports.
struct ReportDelta {
  std::string path;  // e.g. "machines.m-tta-2.cells.blowfish.cycles"
  std::string before;
  std::string after;
};

/// Structural diff of two parsed run reports: every leaf present in either
/// document is compared by path; missing members are reported with
/// "(absent)". Array elements are matched by index except "machines", which
/// is matched by machine name so reordering is not a difference. Numbers
/// compare by raw token text (exact, no float tolerance).
std::vector<ReportDelta> diff_reports(const obs::JsonValue& before, const obs::JsonValue& after);

/// Parse and diff two report files; `out` receives a human-readable
/// summary. Returns true when the reports are identical.
bool diff_report_files(const std::string& before_path, const std::string& after_path,
                       std::string& out);

}  // namespace ttsc::report
