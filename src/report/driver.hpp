// Experiment driver: the full toolchain pipeline for one (workload,
// machine) pair — front end, optimizer, register allocation, the
// model-specific scheduler/code emitter, and the matching cycle-accurate
// simulator — with the result cross-checked against the reference
// interpreter (return value and output-global checksums must match
// exactly).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "ir/interp.hpp"
#include "mach/machine.hpp"
#include "obs/metrics.hpp"
#include "opt/superblock.hpp"
#include "prof/prof.hpp"
#include "sim/collectors.hpp"
#include "support/timeline.hpp"
#include "tta/tta.hpp"
#include "workloads/workload.hpp"

namespace ttsc::report {

class ModuleCache;

/// Memory image with globals loaded, as every simulator expects it.
ir::Memory make_loaded_memory(const ir::Module& module, std::size_t size = 1u << 20);

/// FNV-1a digest over the workload's output globals in `mem` — the
/// observable-output checksum every backend run is compared on (also used
/// by the resilience layer to classify silent data corruption).
std::uint64_t workload_output_checksum(const ir::Module& module,
                                       const workloads::Workload& workload,
                                       const ir::Memory& mem);

struct RunOutcome {
  std::string machine;
  std::string workload;

  /// Structured per-cell failure capture: false when the cell's pipeline or
  /// simulation failed and a keep-going sweep recorded it instead of
  /// aborting. Only machine/workload/error are meaningful then; renderers
  /// show such cells as ERR.
  bool ok = true;
  std::string error;

  std::uint64_t cycles = 0;
  std::uint32_t ret = 0;
  std::uint64_t output_checksum = 0;

  // Static code properties.
  int instruction_bits = 0;
  std::uint64_t instruction_count = 0;  // bundles / TTA instructions / words
  std::uint64_t image_bits = 0;

  // Dynamic/scheduler statistics (model-dependent; zero when n/a).
  std::uint64_t moves = 0;
  std::uint64_t bypassed_operands = 0;
  std::uint64_t eliminated_result_moves = 0;
  std::uint64_t shared_operands = 0;
  int spills = 0;

  // Two-phase superblock compile (profile -> recompile -> rerun): cycles of
  // the phase-1 baseline run, for delta reporting, and whether the phase-2
  // superblock schedule was adopted (it is kept only when no worse than the
  // baseline, so `cycles <= baseline_cycles` always holds). Both stay zero/
  // false when superblocks were not requested.
  std::uint64_t baseline_cycles = 0;
  bool superblocks_applied = false;

  // Wall time per pipeline stage. compile_and_run_prebuilt fills regalloc/
  // schedule/predecode/simulate; frontend/opt belong to the shared
  // build_optimized call and are filled in by whoever owns that call (the
  // experiment engine's module cache reports the one-time build cost of the
  // cell's workload there).
  support::StageSeconds stage_seconds;

  // Execution profile, present when SimOptions::collect_utilization was set.
  std::optional<sim::UtilizationReport> utilization;

  // Cycle-attribution profile (prof/prof.hpp), present when
  // SimOptions::collect_profile was set: every cycle of the run classified
  // into exactly one stall/busy cause, per source block and per unit.
  std::optional<prof::CellProfile> profile;

  // Per-cell metric snapshot (sorted, deterministic): the scheduler/
  // regalloc/optimizer-independent counters this cell contributed to the
  // sweep registry — scheduler freedoms taken ("tta.schedule.*"), slot/NOP
  // density, scheduling-failure reasons, spills per RF partition
  // ("regalloc.spills.rf<i>"), and "sim.*" utilization totals when
  // collected. Exported per cell by --report-json.
  std::map<std::string, std::uint64_t> metrics;
};

/// Reference-interpreter outcome for a workload (golden model).
struct GoldenOutcome {
  std::uint32_t ret = 0;
  std::uint64_t output_checksum = 0;
  std::uint64_t instrs_executed = 0;
};

GoldenOutcome run_golden(const workloads::Workload& workload);

/// Compile and simulate `workload` on `machine`. Throws ttsc::Error if the
/// simulated result diverges from the reference interpreter.
RunOutcome compile_and_run(const workloads::Workload& workload, const mach::Machine& machine,
                           const tta::TtaOptions& tta_options = {});

/// Build + optimize a workload once (shared across machines — reuse the
/// result via compile_and_run_prebuilt or, across a whole sweep, via
/// report::ModuleCache). The returned module contains the fully inlined,
/// optimized entry function. When given, `timeline` accrues the frontend
/// and opt stages plus a "modules_built" counter, and `build_times`
/// receives this call's frontend/opt wall time. `metrics` (optional)
/// receives the optimizer's per-pass IR deltas ("opt.*" counters).
ir::Module build_optimized(const workloads::Workload& workload,
                           support::Timeline* timeline = nullptr,
                           support::StageSeconds* build_times = nullptr,
                           obs::Registry* metrics = nullptr);

/// As compile_and_run, but reusing a pre-optimized module. When given,
/// `timeline` accrues the regalloc/schedule/predecode/simulate stages and
/// the "cells_run" / "cycles_simulated" / "spills" counters (plus the
/// sim_* observer counters when utilization is collected); the same stage
/// times are always reported in the outcome's stage_seconds.
///
/// `sim_options` selects the simulator path (fast/reference), an optional
/// observer and utilization collection; `cache` (when given) memoizes the
/// fast path's predecoded programs across cells.
///
/// `metrics` (optional) receives the cell's scheduler/regalloc/sim counters
/// with ONE merge at cell end (the obs::Registry shard contract) plus a
/// "cell.cycles" histogram sample; the same counters are always snapshotted
/// into the outcome's `metrics` map. All recorded values are deterministic
/// functions of (workload, machine, options), so a sweep's merged registry
/// is byte-identical for any thread count.
///
/// `superblocks` (optional) enables the two-phase profile-guided superblock
/// compile: phase 1 runs the ordinary schedule with a profile collector
/// attached, phase 2 re-prepares the module, forms superblocks along the
/// measured edge biases (opt/superblock.hpp) and schedules the traces as
/// merged blocks. The phase whose run is cheaper wins the cell (ties go to
/// the superblock schedule), so a cell can never regress; both phases are
/// cross-checked against the reference interpreter. The adopted cell's
/// metrics gain "sched.superblock.{formed,tail_dup_instrs,
/// cross_block_bypass}" counters and the outcome records the baseline
/// cycles for delta reporting.
RunOutcome compile_and_run_prebuilt(const ir::Module& optimized,
                                    const workloads::Workload& workload,
                                    const mach::Machine& machine,
                                    const tta::TtaOptions& tta_options = {},
                                    support::Timeline* timeline = nullptr,
                                    const sim::SimOptions& sim_options = {},
                                    ModuleCache* cache = nullptr,
                                    obs::Registry* metrics = nullptr,
                                    const opt::SuperblockOptions* superblocks = nullptr);

/// Raw single-cell replay result for the flight-recorder exports: the
/// simulator's own verdict, never cross-checked against the reference
/// interpreter and never thrown as an error.
struct ReplayOutcome {
  sim::ExecStatus status = sim::ExecStatus::Ok;
  sim::TrapInfo trap{};  // valid when status == Trapped
  std::uint64_t cycles = 0;
  std::uint32_t ret = 0;
};

/// Compile `workload` for `machine` through the standard pipeline and run
/// it once on the chosen path with `observer` attached, returning the raw
/// result. Unlike compile_and_run, a Trapped or TimedOut run is a *result*
/// here, not an error — the flight-recorder exports (--vcd-out,
/// --flight-dump) replay healthy and failing cells alike through this.
ReplayOutcome replay_with_observer(const workloads::Workload& workload,
                                   const mach::Machine& machine, sim::ExecObserver* observer,
                                   bool fast_path = true);

}  // namespace ttsc::report
