#include "report/run_report.hpp"

#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"
#include "support/strings.hpp"

namespace ttsc::report {

namespace {

const char* model_name(mach::Model model) {
  switch (model) {
    case mach::Model::Tta: return "tta";
    case mach::Model::Vliw: return "vliw";
    case mach::Model::Scalar: return "scalar";
  }
  return "?";
}

void write_cell(obs::JsonWriter& w, const RunOutcome& out) {
  w.begin_object();
  // Failed keep-going cells carry only the error; successful cells keep the
  // historical layout byte-for-byte (no "ok"/"error" keys), so existing
  // golden reports stay valid.
  if (!out.ok) {
    w.key("error");
    w.value(out.error);
    w.end_object();
    return;
  }
  w.key("cycles");
  w.value(out.cycles);
  w.key("instruction_count");
  w.value(out.instruction_count);
  w.key("instruction_bits");
  w.value(out.instruction_bits);
  w.key("image_bits");
  w.value(out.image_bits);
  w.key("spills");
  w.value(out.spills);
  w.key("moves");
  w.value(out.moves);
  w.key("bypassed_operands");
  w.value(out.bypassed_operands);
  w.key("eliminated_result_moves");
  w.value(out.eliminated_result_moves);
  w.key("shared_operands");
  w.value(out.shared_operands);
  w.key("output_checksum");
  w.value(format("%016llx", static_cast<unsigned long long>(out.output_checksum)));
  // Two-phase superblock cells report the phase-1 baseline for delta
  // analysis; ordinary cells keep the historical layout byte-for-byte.
  if (out.baseline_cycles != 0) {
    w.key("baseline_cycles");
    w.value(out.baseline_cycles);
    w.key("superblocks_applied");
    w.value(out.superblocks_applied);
  }
  // Profiled cells name their binding resource (the dominant stall cause);
  // unprofiled cells keep the historical layout byte-for-byte.
  if (out.profile.has_value()) {
    w.key("binding");
    w.value(prof::cause_name(out.profile->binding()));
  }
  w.key("metrics");
  w.begin_object();
  for (const auto& [name, v] : out.metrics) {
    w.key(name);
    w.value(v);
  }
  w.end_object();
  w.end_object();
}

void write_machine(obs::JsonWriter& w, const MachineResults& r,
                   const std::vector<std::string>& workload_names) {
  w.begin_object();
  w.key("name");
  w.value(r.machine.name);
  w.key("model");
  w.value(model_name(r.machine.model));
  w.key("area");
  w.begin_object();
  w.key("slices");
  w.value(r.area.slices);
  w.key("core_lut");
  w.value(r.area.core_lut);
  w.key("rf_lut");
  w.value(r.area.rf_lut);
  w.key("rf_lut_as_ram");
  w.value(r.area.rf_lut_as_ram);
  w.key("ic_lut");
  w.value(r.area.ic_lut);
  w.key("fu_lut");
  w.value(r.area.fu_lut);
  w.key("control_lut");
  w.value(r.area.control_lut);
  w.key("ff");
  w.value(r.area.ff);
  w.key("dsp");
  w.value(r.area.dsp);
  w.end_object();
  w.key("timing");
  w.begin_object();
  w.key("critical_path_ns");
  w.value(r.timing.critical_path_ns);
  w.key("fmax_mhz");
  w.value(r.timing.fmax_mhz);
  w.end_object();
  w.key("cells");
  w.begin_object();
  // Suite order (not by_workload's map order) so the document layout is
  // stable even if the map type changes.
  for (const std::string& name : workload_names) {
    auto it = r.by_workload.find(name);
    if (it == r.by_workload.end()) continue;
    w.key(name);
    write_cell(w, it->second);
  }
  w.end_object();
  w.end_object();
}

std::string leaf_text(const obs::JsonValue& v) {
  switch (v.kind) {
    case obs::JsonValue::Kind::Null: return "null";
    case obs::JsonValue::Kind::Bool: return v.boolean ? "true" : "false";
    case obs::JsonValue::Kind::Number: return v.text;
    case obs::JsonValue::Kind::String: return v.text;
    default: return "?";
  }
}

void diff_values(const std::string& path, const obs::JsonValue* a, const obs::JsonValue* b,
                 std::vector<ReportDelta>& out);

void diff_objects(const std::string& path, const obs::JsonValue& a, const obs::JsonValue& b,
                  std::vector<ReportDelta>& out) {
  // Union of member names, in "before" order with "after"-only names
  // appended — member order differences alone are not reported.
  std::vector<std::string> names;
  for (const auto& [k, v] : a.members) names.push_back(k);
  for (const auto& [k, v] : b.members) {
    if (a.find(k) == nullptr) names.push_back(k);
  }
  for (const std::string& k : names) {
    diff_values(path.empty() ? k : path + "." + k, a.find(k), b.find(k), out);
  }
}

/// "machines" arrays are keyed by each element's "name" member so machine
/// reordering is not a semantic difference.
void diff_machine_arrays(const std::string& path, const obs::JsonValue& a,
                         const obs::JsonValue& b, std::vector<ReportDelta>& out) {
  auto by_name = [](const obs::JsonValue& arr) {
    std::vector<std::pair<std::string, const obs::JsonValue*>> entries;
    for (const obs::JsonValue& item : arr.items) {
      const obs::JsonValue* name = item.find("name");
      entries.emplace_back(name != nullptr && name->is_string() ? name->text : "?", &item);
    }
    return entries;
  };
  const auto lhs = by_name(a);
  const auto rhs = by_name(b);
  auto lookup = [](const auto& entries, const std::string& name) -> const obs::JsonValue* {
    for (const auto& [n, v] : entries) {
      if (n == name) return v;
    }
    return nullptr;
  };
  for (const auto& [name, v] : lhs) {
    diff_values(path + "." + name, v, lookup(rhs, name), out);
  }
  for (const auto& [name, v] : rhs) {
    if (lookup(lhs, name) == nullptr) diff_values(path + "." + name, nullptr, v, out);
  }
}

void diff_values(const std::string& path, const obs::JsonValue* a, const obs::JsonValue* b,
                 std::vector<ReportDelta>& out) {
  if (a == nullptr && b == nullptr) return;
  if (a == nullptr || b == nullptr || a->kind != b->kind) {
    out.push_back({path, a == nullptr ? "(absent)" : leaf_text(*a),
                   b == nullptr ? "(absent)" : leaf_text(*b)});
    return;
  }
  switch (a->kind) {
    case obs::JsonValue::Kind::Object:
      diff_objects(path, *a, *b, out);
      return;
    case obs::JsonValue::Kind::Array: {
      if (path == "machines") {
        diff_machine_arrays(path, *a, *b, out);
        return;
      }
      const std::size_t n = std::max(a->items.size(), b->items.size());
      for (std::size_t i = 0; i < n; ++i) {
        diff_values(format("%s[%zu]", path.c_str(), i),
                    i < a->items.size() ? &a->items[i] : nullptr,
                    i < b->items.size() ? &b->items[i] : nullptr, out);
      }
      return;
    }
    default:
      // Leaves compare by raw token text: exact for integers, and two
      // doubles rendered by the same %.10g writer only differ if the
      // values do.
      if (leaf_text(*a) != leaf_text(*b)) out.push_back({path, leaf_text(*a), leaf_text(*b)});
      return;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open report file: " + path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return text;
}

}  // namespace

std::string render_run_report(const Matrix& matrix, const obs::Registry* metrics) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ttsc-run-report");
  w.key("version");
  w.value(std::uint64_t{1});
  w.key("workloads");
  w.begin_array();
  for (const std::string& name : matrix.workload_names()) w.value(name);
  w.end_array();
  w.key("machines");
  w.begin_array();
  for (const MachineResults& r : matrix.machines()) {
    write_machine(w, r, matrix.workload_names());
  }
  w.end_array();
  if (metrics != nullptr) {
    w.key("metrics");
    metrics->write_json(w);
  }
  w.end_object();
  return w.take() + "\n";
}

void write_run_report(const std::string& path, const Matrix& matrix,
                      const obs::Registry* metrics) {
  const std::string text = render_run_report(matrix, metrics);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << text) || (out.close(), !out)) {
    throw Error("cannot write run report: " + path);
  }
}

std::vector<ReportDelta> diff_reports(const obs::JsonValue& before, const obs::JsonValue& after) {
  std::vector<ReportDelta> out;
  diff_values("", &before, &after, out);
  return out;
}

bool diff_report_files(const std::string& before_path, const std::string& after_path,
                       std::string& out) {
  const obs::JsonValue before = obs::parse_json(read_file(before_path));
  const obs::JsonValue after = obs::parse_json(read_file(after_path));
  const std::vector<ReportDelta> deltas = diff_reports(before, after);
  if (deltas.empty()) {
    out = format("reports identical: %s == %s\n", before_path.c_str(), after_path.c_str());
    return true;
  }
  out = format("%zu difference(s) between %s and %s:\n", deltas.size(), before_path.c_str(),
               after_path.c_str());
  for (const ReportDelta& d : deltas) {
    out += format("  %-60s %s -> %s\n", d.path.c_str(), d.before.c_str(), d.after.c_str());
  }
  return false;
}

}  // namespace ttsc::report
