// Deterministic VCD (Value Change Dump, IEEE 1364) waveform export of a
// flight recording — the GTKWave-compatible view of a simulated run.
//
// The signal set is derived purely from the recording's machine
// description: pc and the delay-slot shadow flag, one 2-bit activity signal
// per transport bus (0 idle / 1 move / 2 squashed), one 8-bit operation
// signal per FU trigger port (opcode + 1; 0 = idle; scalar machines get a
// single "cpu_op" port), we/addr/data signals per RF write port, one level
// signal per guard bit, a scalar stall counter, and a store commit port.
// The output is a pure function of (recording, machine): fixed $date and
// $version strings, no wall-clock anywhere — so fast-path and
// reference-path recordings of the same run render byte-identical VCD, and
// golden snapshots can gate it in CI.
#pragma once

#include <string>

#include "obs/flight.hpp"

namespace ttsc::report {

/// Render `recorder`'s retained window as a complete VCD document.
/// Timestamps are absolute simulation cycles (1 cycle = 1 ns of VCD time).
std::string render_vcd(const obs::FlightRecorder& recorder);

}  // namespace ttsc::report
