#include "report/experiments.hpp"

#include <algorithm>

#include "mach/configs.hpp"
#include "report/parallel_runner.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

namespace ttsc::report {

namespace {

const std::vector<std::string> kOneIssue = {"mblaze-3", "mblaze-5", "m-tta-1"};
const std::vector<std::string> kTwoIssue = {"m-vliw-2", "p-vliw-2", "m-tta-2", "p-tta-2",
                                            "bm-tta-2"};
const std::vector<std::string> kThreeIssue = {"m-vliw-3", "p-vliw-3", "m-tta-3", "p-tta-3",
                                              "bm-tta-3"};

std::string header_row(const std::vector<std::string>& workloads) {
  std::string out = format("%-10s %-11s", "machine", "instr.width");
  for (const std::string& w : workloads) out += format(" %9s", w.c_str());
  return out + "\n";
}

}  // namespace

Matrix Matrix::run(support::Timeline* timeline, const sim::SimOptions& sim_options,
                   obs::Registry* metrics, bool keep_going,
                   const opt::SuperblockOptions* superblocks) {
  Matrix m;
  for (const workloads::Workload& w : workloads::all_workloads()) {
    m.workload_names_.push_back(w.name);
  }
  // Each workload's optimized module is machine-independent: build it once
  // and share it across all 13 machines (the cache is what the parallel
  // runner uses too, so serial and parallel sweeps compile identically).
  // The cache also memoizes the simulator fast path's predecoded programs.
  ModuleCache cache;
  for (const mach::Machine& machine : mach::all_machines()) {
    MachineResults r;
    r.machine = machine;
    r.area = fpga::estimate_area(machine);
    r.timing = fpga::estimate_timing(machine);
    for (const workloads::Workload& w : workloads::all_workloads()) {
      if (keep_going) {
        try {
          r.by_workload[w.name] =
              compile_and_run_prebuilt(cache.get(w, timeline, nullptr, metrics), w, machine, {},
                                       timeline, sim_options, &cache, metrics, superblocks);
        } catch (const std::exception& e) {
          RunOutcome failed;
          failed.machine = machine.name;
          failed.workload = w.name;
          failed.ok = false;
          failed.error = e.what();
          r.by_workload[w.name] = std::move(failed);
        }
      } else {
        r.by_workload[w.name] =
            compile_and_run_prebuilt(cache.get(w, timeline, nullptr, metrics), w, machine, {},
                                     timeline, sim_options, &cache, metrics, superblocks);
      }
    }
    m.machines_.push_back(std::move(r));
  }
  return m;
}

std::vector<const RunOutcome*> Matrix::failures() const {
  std::vector<const RunOutcome*> out;
  for (const MachineResults& r : machines_) {
    for (const std::string& w : workload_names_) {
      auto it = r.by_workload.find(w);
      if (it != r.by_workload.end() && !it->second.ok) out.push_back(&it->second);
    }
  }
  return out;
}

const MachineResults& Matrix::machine(const std::string& name) const {
  for (const MachineResults& r : machines_) {
    if (r.machine.name == name) return r;
  }
  throw Error("matrix: unknown machine " + name);
}

std::uint64_t Matrix::cycles(const std::string& machine_name,
                             const std::string& workload) const {
  return machine(machine_name).by_workload.at(workload).cycles;
}

double Matrix::runtime_us(const std::string& machine_name, const std::string& workload) const {
  const MachineResults& r = machine(machine_name);
  return static_cast<double>(r.by_workload.at(workload).cycles) / r.timing.fmax_mhz;
}

std::string render_table2_program_size(const Matrix& m) {
  std::string out =
      "TABLE II equivalent: instruction widths and total program image sizes,\n"
      "relative to MicroBlaze (1-issue group) and to m-vliw-2/3 (multi-issue groups).\n\n";

  auto group = [&](const std::vector<std::string>& names, const std::string& base,
                   const std::string& title) {
    out += title + "\n" + header_row(m.workload_names());
    const MachineResults& baseline = m.machine(base);
    for (const std::string& name : names) {
      const MachineResults& r = m.machine(name);
      const RunOutcome& first = r.by_workload.at(m.workload_names().front());
      const RunOutcome& base_first = baseline.by_workload.at(m.workload_names().front());
      std::string row;
      if (!first.ok || !base_first.ok) {
        row = format("%-10s %12s", name.c_str(), "ERR");
      } else {
        row = format("%-10s %3db (%.2fx)", name.c_str(), first.instruction_bits,
                     static_cast<double>(first.instruction_bits) / base_first.instruction_bits);
      }
      for (const std::string& w : m.workload_names()) {
        const RunOutcome& cell = r.by_workload.at(w);
        const RunOutcome& base_cell = baseline.by_workload.at(w);
        if (!cell.ok || (name != base && !base_cell.ok)) {
          row += format(" %9s ", "ERR");
          continue;
        }
        const double bits = static_cast<double>(cell.image_bits);
        if (name == base) {
          row += format(" %8.0fkb", bits / 1000.0);
        } else {
          row += format(" %8.2fx ", bits / static_cast<double>(base_cell.image_bits));
        }
      }
      out += row + "\n";
    }
    out += "\n";
  };

  group(kOneIssue, "mblaze-3", "-- 1-issue --");
  group(kTwoIssue, "m-vliw-2", "-- 2-issue --");
  group(kThreeIssue, "m-vliw-3", "-- 3-issue --");
  return out;
}

std::string render_table3_synthesis(const Matrix& m) {
  std::string out =
      "TABLE III equivalent: modelled FPGA resource usage and fmax\n"
      "(analytical Zynq Z7020 model; see DESIGN.md for the substitution).\n\n";
  out += format("%-10s %3s %3s %6s %8s %8s %8s %8s %8s %6s\n", "machine", "rdP", "wrP", "fmax",
                "coreLUT", "rfLUT", "lutRAM", "icLUT", "FF", "DSP");
  for (const MachineResults& r : m.machines()) {
    int read_ports = 0;
    int write_ports = 0;
    for (const mach::RegisterFile& rf : r.machine.rfs) {
      read_ports = std::max(read_ports, rf.read_ports);
      write_ports = std::max(write_ports, rf.write_ports);
    }
    out += format("%-10s %3d %3d %6.0f %8d %8d %8d %8d %8d %6d\n", r.machine.name.c_str(),
                  read_ports, write_ports, r.timing.fmax_mhz, r.area.core_lut, r.area.rf_lut,
                  r.area.rf_lut_as_ram, r.area.ic_lut, r.area.ff, r.area.dsp);
  }
  return out;
}

std::string render_table4_cycles(const Matrix& m) {
  std::string out =
      "TABLE IV equivalent: instruction cycle counts (absolute for the\n"
      "baselines, relative for the alternatives).\n\n";

  auto group = [&](const std::vector<std::string>& names, const std::string& base,
                   const std::string& title) {
    out += title + "\n";
    out += format("%-10s", "machine");
    for (const std::string& w : m.workload_names()) out += format(" %9s", w.c_str());
    out += "\n";
    const MachineResults& baseline = m.machine(base);
    for (const std::string& name : names) {
      const MachineResults& r = m.machine(name);
      out += format("%-10s", name.c_str());
      for (const std::string& w : m.workload_names()) {
        const RunOutcome& cell = r.by_workload.at(w);
        const RunOutcome& base_cell = baseline.by_workload.at(w);
        if (!cell.ok || (name != base && !base_cell.ok)) {
          out += format(" %9s", "ERR");
        } else if (name == base) {
          out += format(" %9llu", static_cast<unsigned long long>(cell.cycles));
        } else {
          out += format(" %8.2fx",
                        static_cast<double>(cell.cycles) / static_cast<double>(base_cell.cycles));
        }
      }
      out += "\n";
    }
    out += "\n";
  };

  group(kOneIssue, "mblaze-3", "-- 1-issue (baseline mblaze-3) --");
  group(kTwoIssue, "m-vliw-2", "-- 2-issue (baseline m-vliw-2) --");
  group(kThreeIssue, "m-vliw-3", "-- 3-issue (baseline m-vliw-3) --");
  return out;
}

std::string render_fig5_runtime(const Matrix& m) {
  std::string out =
      "FIG. 5 equivalent: execution times at modelled max clock frequency,\n"
      "normalized to mblaze-3 (1-issue) and m-vliw-2/3 (multi-issue).\n\n";

  auto group = [&](const std::vector<std::string>& names, const std::string& base,
                   const std::string& title) {
    out += title + "\n";
    out += format("%-10s", "machine");
    for (const std::string& w : m.workload_names()) out += format(" %9s", w.c_str());
    out += "\n";
    const MachineResults& baseline = m.machine(base);
    for (const std::string& name : names) {
      const MachineResults& r = m.machine(name);
      out += format("%-10s", name.c_str());
      for (const std::string& w : m.workload_names()) {
        if (!r.by_workload.at(w).ok || !baseline.by_workload.at(w).ok) {
          out += format(" %9s", "ERR");
        } else {
          out += format(" %9.2f", m.runtime_us(name, w) / m.runtime_us(base, w));
        }
      }
      out += "\n";
    }
    out += "\n";
  };

  group(kOneIssue, "mblaze-3", "-- 1-issue, normalized to mblaze-3 --");
  group(kTwoIssue, "m-vliw-2", "-- 2-issue, normalized to m-vliw-2 --");
  group(kThreeIssue, "m-vliw-3", "-- 3-issue, normalized to m-vliw-3 --");
  return out;
}

std::string render_fig6_efficiency(const Matrix& m) {
  std::string out =
      "FIG. 6 equivalent: slice utilization vs overall execution time\n"
      "(geometric mean over the benchmark suite, normalized to m-tta-1).\n\n";
  // Geomean runtime per machine. Machines with any failed cell are left out
  // of `geo` and render as ERR below (and are dropped from the scatter).
  std::map<std::string, double> geo;
  for (const MachineResults& r : m.machines()) {
    std::vector<double> times;
    bool ok = true;
    for (const std::string& w : m.workload_names()) {
      if (!r.by_workload.at(w).ok) {
        ok = false;
        break;
      }
      times.push_back(m.runtime_us(r.machine.name, w));
    }
    if (ok) geo[r.machine.name] = geomean(times);
  }
  const double base = geo.count("m-tta-1") != 0 ? geo.at("m-tta-1") : 1.0;
  out += format("%-10s %8s %12s\n", "machine", "slices", "rel.runtime");
  for (const MachineResults& r : m.machines()) {
    if (geo.count(r.machine.name) == 0) {
      out += format("%-10s %8d %12s\n", r.machine.name.c_str(), r.area.slices, "ERR");
    } else {
      out += format("%-10s %8d %12.3f\n", r.machine.name.c_str(), r.area.slices,
                    geo.at(r.machine.name) / base);
    }
  }

  // Coarse ASCII scatter so the "figure" reads as one.
  out += "\nscatter (x = slices, y = relative runtime):\n";
  constexpr int kW = 64;
  constexpr int kH = 16;
  int max_slices = 1;
  double max_rt = 0.0;
  for (const MachineResults& r : m.machines()) {
    if (geo.count(r.machine.name) == 0) continue;
    max_slices = std::max(max_slices, r.area.slices);
    max_rt = std::max(max_rt, geo.at(r.machine.name) / base);
  }
  if (max_rt <= 0.0) max_rt = 1.0;
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  char label = 'a';
  std::string legend;
  for (const MachineResults& r : m.machines()) {
    if (geo.count(r.machine.name) == 0) continue;
    const int x = std::min(kW - 1, static_cast<int>(r.area.slices * (kW - 1.0) / max_slices));
    const int y = std::min(
        kH - 1, static_cast<int>(geo.at(r.machine.name) / base * (kH - 1.0) / max_rt));
    grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = label;
    legend += format("  %c = %s\n", label, r.machine.name.c_str());
    ++label;
  }
  for (const std::string& row : grid) out += "|" + row + "\n";
  out += "+" + std::string(kW, '-') + "\n" + legend;
  return out;
}

std::string render_ablation_tta_freedoms() {
  std::string out =
      "ABLATION A1: contribution of each TTA scheduling freedom (cycles,\n"
      "relative to all freedoms enabled) on the TTA machines.\n\n";
  const std::vector<std::string> machines = {"m-tta-1", "m-tta-2", "p-tta-2", "m-tta-3"};
  struct Variant {
    const char* name;
    tta::TtaOptions opt;
  };
  std::vector<Variant> variants;
  variants.push_back({"all-on", tta::TtaOptions{}});
  {
    tta::TtaOptions o;
    o.software_bypass = false;
    o.dead_result_elim = false;
    variants.push_back({"no-bypass", o});
  }
  {
    tta::TtaOptions o;
    o.dead_result_elim = false;
    variants.push_back({"no-dre", o});
  }
  {
    tta::TtaOptions o;
    o.operand_share = false;
    variants.push_back({"no-share", o});
  }
  {
    tta::TtaOptions o;
    o.early_control = false;
    variants.push_back({"late-ctrl", o});
  }
  {
    tta::TtaOptions o;
    o.software_bypass = false;
    o.dead_result_elim = false;
    o.operand_share = false;
    o.early_control = false;
    variants.push_back({"all-off", o});
  }

  ModuleCache cache;  // one build per workload across all machine/variant rows
  for (const std::string& mname : machines) {
    const mach::Machine machine = mach::machine_by_name(mname);
    out += "-- " + mname + " --\n";
    out += format("%-10s", "variant");
    for (const workloads::Workload& w : workloads::all_workloads()) {
      out += format(" %9s", w.name.c_str());
    }
    out += "\n";
    std::map<std::string, std::uint64_t> baseline;
    for (const Variant& v : variants) {
      out += format("%-10s", v.name);
      for (const workloads::Workload& w : workloads::all_workloads()) {
        const RunOutcome r =
            compile_and_run_prebuilt(cache.get(w), w, machine, v.opt, nullptr, {}, &cache);
        if (std::string(v.name) == "all-on") {
          baseline[w.name] = r.cycles;
          out += format(" %9llu", static_cast<unsigned long long>(r.cycles));
        } else {
          out += format(" %8.2fx",
                        static_cast<double>(r.cycles) / static_cast<double>(baseline[w.name]));
        }
      }
      out += "\n";
    }
    out += "\n";
  }
  return out;
}

std::string render_ablation_rf_partitioning(const Matrix& m) {
  std::string out =
      "ABLATION A2: register file partitioning (Section III-D) — RF port\n"
      "complexity vs serialization. Cycles, RF LUTs and fmax per machine.\n\n";
  out += format("%-10s %10s %8s %8s %10s\n", "machine", "geo.cycles", "rfLUT", "fmax",
                "geo.runtime");
  for (const MachineResults& r : m.machines()) {
    bool ok = true;
    for (const std::string& w : m.workload_names()) ok = ok && r.by_workload.at(w).ok;
    if (!ok) {
      out += format("%-10s %10s %8d %8.0f %10s\n", r.machine.name.c_str(), "ERR", r.area.rf_lut,
                    r.timing.fmax_mhz, "ERR");
      continue;
    }
    std::vector<double> cyc;
    std::vector<double> rt;
    for (const std::string& w : m.workload_names()) {
      cyc.push_back(static_cast<double>(m.cycles(r.machine.name, w)));
      rt.push_back(m.runtime_us(r.machine.name, w));
    }
    out += format("%-10s %10.0f %8d %8.0f %10.1f\n", r.machine.name.c_str(), geomean(cyc),
                  r.area.rf_lut, r.timing.fmax_mhz, geomean(rt));
  }
  return out;
}

}  // namespace ttsc::report
