#include "report/driver.hpp"

#include <chrono>
#include <mutex>
#include <optional>

#include "codegen/legalize.hpp"
#include "codegen/lower.hpp"
#include "ir/verify.hpp"
#include "obs/trace.hpp"
#include "opt/passes.hpp"
#include "report/module_cache.hpp"
#include "scalar/scalar.hpp"
#include "sim/predecode.hpp"
#include "support/strings.hpp"
#include "tta/binary.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::report {

using workloads::Workload;

ir::Memory make_loaded_memory(const ir::Module& module, std::size_t size) {
  ir::Memory mem(size);
  const ir::DataLayout layout = module.layout();
  for (const ir::Global& g : module.globals()) {
    if (!g.init.empty()) mem.write_block(layout.address_of(g.name), g.init);
  }
  return mem;
}

std::uint64_t workload_output_checksum(const ir::Module& module, const Workload& workload,
                                       const ir::Memory& mem) {
  const ir::DataLayout layout = module.layout();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::string& name : workload.output_globals) {
    const ir::Global* g = module.find_global(name);
    TTSC_ASSERT(g != nullptr, "workload output global missing: " + name);
    h ^= mem.checksum(layout.address_of(name), g->size);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::uint64_t output_checksum(const ir::Module& module, const Workload& workload,
                              const ir::Memory& mem) {
  return workload_output_checksum(module, workload, mem);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Per-RF spill breakdown -> "regalloc.spills.rf<i>" counters.
void record_regalloc_metrics(obs::Registry& cell, const codegen::LowerResult& lowered) {
  cell.add("regalloc.spill_instrs", static_cast<std::uint64_t>(lowered.spills_inserted));
  cell.add("regalloc.values_spilled", static_cast<std::uint64_t>(lowered.values_spilled));
  for (std::size_t rf = 0; rf < lowered.spilled_per_rf.size(); ++rf) {
    if (lowered.spilled_per_rf[rf] != 0) {
      cell.add(format("regalloc.spills.rf%zu", rf),
               static_cast<std::uint64_t>(lowered.spilled_per_rf[rf]));
    }
  }
}

/// Move-slot / NOP density of a TTA program: filled bus slots (a wide
/// immediate fills its extension slot too) against instrs * buses capacity.
void record_tta_density(obs::Registry& cell, const tta::TtaProgram& prog,
                        const mach::Machine& machine) {
  std::uint64_t filled = 0;
  for (const tta::TtaInstruction& in : prog.instrs) {
    filled += in.moves.size();
    for (const tta::Move& mv : in.moves) {
      if (mv.long_imm) ++filled;
    }
  }
  const std::uint64_t capacity = prog.instrs.size() * machine.buses.size();
  cell.add("tta.schedule.slots_filled", filled);
  cell.add("tta.schedule.slot_capacity", capacity);
  cell.add("tta.schedule.nop_slots", capacity - filled);
}

}  // namespace

GoldenOutcome run_golden(const Workload& workload) {
  // Workloads are deterministic; memoize (the driver cross-checks every
  // machine run against the golden outcome). The cache is shared by every
  // thread of a parallel sweep; a workload interpreted concurrently by two
  // threads is computed twice but stored consistently.
  static std::mutex cache_mutex;
  static std::map<std::string, GoldenOutcome> cache;
  {
    std::lock_guard<std::mutex> lock(cache_mutex);
    auto it = cache.find(workload.name);
    if (it != cache.end()) return it->second;
  }
  ir::Module module;
  workload.build(module);
  ir::verify(module);
  ir::Interpreter interp(module);
  const ir::Interpreter::Result r = interp.run(workloads::entry_point(), {});
  GoldenOutcome out;
  out.ret = r.value;
  out.instrs_executed = r.instrs_executed;
  out.output_checksum = output_checksum(module, workload, interp.memory());
  std::lock_guard<std::mutex> lock(cache_mutex);
  cache[workload.name] = out;
  return out;
}

ir::Module build_optimized(const Workload& workload, support::Timeline* timeline,
                           support::StageSeconds* build_times, obs::Registry* metrics) {
  ir::Module module;
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::Span span("frontend", [&] { return obs::SpanArgs{{"workload", workload.name}}; });
    workload.build(module);
    ir::verify(module);
  }
  const double frontend_s = seconds_since(t0);
  const auto t1 = std::chrono::steady_clock::now();
  // opt::optimize opens its own "opt" span and records "opt.*" metrics.
  opt::optimize(module, workloads::entry_point(), {}, metrics);
  const double opt_s = seconds_since(t1);
  if (timeline != nullptr) {
    timeline->add_seconds(support::Stage::kFrontend, frontend_s);
    timeline->add_seconds(support::Stage::kOpt, opt_s);
    timeline->bump("modules_built");
  }
  if (build_times != nullptr) {
    build_times->frontend = frontend_s;
    build_times->opt = opt_s;
  }
  return module;
}

namespace {

/// One full backend compile + simulate of `optimized` on `machine`. When
/// `profile` is given, superblocks are formed along it (after the backend's
/// IR preparation, mirroring the profiled phase-1 pipeline so block ids
/// line up) and the TTA/VLIW schedulers consume the resulting plan;
/// `plan_out` receives the formation plan.
RunOutcome compile_cell(const ir::Module& optimized, const Workload& workload,
                        const mach::Machine& machine, const tta::TtaOptions& tta_options,
                        support::Timeline* timeline, const sim::SimOptions& sim_options,
                        ModuleCache* cache, obs::Registry* metrics,
                        const opt::ProfileData* profile, const opt::SuperblockOptions& sb_options,
                        opt::SuperblockPlan* plan_out) {
  obs::Span cell_span("cell", [&] {
    return obs::SpanArgs{{"machine", machine.name}, {"workload", workload.name}};
  });
  const auto stage_args = [&] {
    return obs::SpanArgs{{"machine", machine.name}, {"workload", workload.name}};
  };
  // Cell-local metric shard: every counter below accumulates here and is
  // merged into the shared registry exactly once at cell end (see the
  // obs::Registry concurrency contract).
  obs::Registry cell_metrics;
  std::optional<obs::Span> stage_span;

  // Backend-specific IR preparation on a copy of the shared optimized
  // module: the scalar model legalizes RISC operand constraints.
  // (opt::if_convert is deliberately NOT applied: without hardware
  // predication the 4-op select expansion costs more than the branch it
  // removes on every machine here — see bench/ablation_tta_freedoms.)
  const auto t_regalloc = std::chrono::steady_clock::now();
  stage_span.emplace("regalloc", stage_args);
  ir::Module module = optimized;
  if (machine.model == mach::Model::Tta && machine.has_guards()) {
    // Guarded TTAs predicate short conditionals: if-convert to Select ops,
    // which the scheduler lowers to guarded moves (one conditional
    // transport per merged value instead of 4-op mask arithmetic).
    opt::if_convert_selects(module.function(workloads::entry_point()));
  } else {
    codegen::expand_selects(module.function(workloads::entry_point()));
  }

  // Profile-guided superblock formation: the phase-2 module has gone
  // through exactly the transforms the profiled phase-1 module did, so the
  // profile's block ids refer to this function's current blocks.
  opt::SuperblockPlan plan;
  if (profile != nullptr) {
    plan = opt::form_superblocks(module.function(workloads::entry_point()), *profile, sb_options);
  }
  const opt::SuperblockPlan* sched_plan = plan.formed > 0 ? &plan : nullptr;
  if (plan_out != nullptr) *plan_out = plan;

  if (machine.model == mach::Model::Scalar) {
    codegen::legalize_scalar_operands(module.function(workloads::entry_point()));
  }

  const codegen::LowerResult lowered = codegen::lower(module, workloads::entry_point(), machine);

  RunOutcome out;
  out.machine = machine.name;
  out.workload = workload.name;
  out.spills = lowered.spills_inserted;
  out.stage_seconds.regalloc = seconds_since(t_regalloc);
  stage_span.reset();
  record_regalloc_metrics(cell_metrics, lowered);

  // Observer plumbing: optionally attach a per-run utilization collector,
  // teeing with a caller-provided observer when both are requested.
  sim::SimOptions sim_opts = sim_options;
  std::unique_ptr<sim::UtilizationCollector> util;
  sim::TeeObserver tee(nullptr, nullptr);
  if (sim_opts.collect_utilization) {
    util = std::make_unique<sim::UtilizationCollector>(machine);
    if (sim_opts.observer != nullptr) {
      tee = sim::TeeObserver(sim_opts.observer, util.get());
      sim_opts.observer = &tee;
    } else {
      sim_opts.observer = util.get();
    }
  }

  // Cycle-attribution profiler: built per model below (it needs the
  // scheduled program's static profile). Collection uses the counts mode
  // (sim::ProfileCounts — two array increments per cycle, no observer
  // dispatch); the profile is derived from the counts after the run, byte-
  // identical to the event-driven prof::CycleProfiler (differentially
  // tested in tests/property_test.cpp).
  std::unique_ptr<prof::StaticProfile> static_prof;
  sim::ProfileCounts prof_counts;
  const auto attach_profiler = [&](prof::StaticProfile sp) {
    static_prof = std::make_unique<prof::StaticProfile>(std::move(sp));
    prof_counts = prof::make_profile_counts(*static_prof);
    sim_opts.profile = &prof_counts;
  };

  ir::Memory mem = make_loaded_memory(module);
  const auto t_schedule = std::chrono::steady_clock::now();
  stage_span.emplace("schedule", stage_args);
  switch (machine.model) {
    case mach::Model::Scalar: {
      const scalar::ScalarProgram prog = scalar::emit_scalar(lowered.func);
      out.stage_seconds.schedule = seconds_since(t_schedule);
      stage_span.reset();
      cell_metrics.add("scalar.emit.words", prog.code_words(machine.scalar));
      if (sim_opts.collect_profile) attach_profiler(prof::build_static_profile(prog, machine));
      scalar::ScalarSim simulator(prog, machine, mem, sim_opts);
      if (sim_opts.fast_path) {
        const auto t_pre = std::chrono::steady_clock::now();
        stage_span.emplace("predecode", stage_args);
        simulator.use_predecoded(
            cache != nullptr
                ? cache->predecoded(prog, machine, timeline)
                : std::make_shared<const sim::PredecodedScalar>(sim::predecode(prog, machine)));
        out.stage_seconds.predecode = seconds_since(t_pre);
        stage_span.reset();
      }
      const auto t_sim = std::chrono::steady_clock::now();
      stage_span.emplace("simulate", stage_args);
      const scalar::ExecResult r = simulator.run();
      out.stage_seconds.simulate = seconds_since(t_sim);
      stage_span.reset();
      switch (r.status) {
        case sim::ExecStatus::Ok: break;
        case sim::ExecStatus::TimedOut: throw Error("scalar simulation exceeded cycle limit");
        case sim::ExecStatus::Trapped:
          throw Error(format("scalar simulation trapped: %s (detail %u) at cycle %llu",
                             sim::trap_reason_name(r.trap.reason), r.trap.detail,
                             static_cast<unsigned long long>(r.trap.cycle)));
      }
      out.cycles = r.cycles;
      out.ret = r.ret;
      out.instruction_bits = scalar::ScalarProgram::kInstrBits;
      out.instruction_count = prog.code_words(machine.scalar);
      out.image_bits = prog.image_bits(machine.scalar);
      break;
    }
    case mach::Model::Vliw: {
      vliw::ScheduleStats stats;
      const vliw::VliwProgram prog = vliw::schedule_vliw(lowered.func, machine, &stats, sched_plan);
      out.stage_seconds.schedule = seconds_since(t_schedule);
      stage_span.reset();
      cell_metrics.add("vliw.schedule.bundles", stats.bundles);
      cell_metrics.add("vliw.schedule.ops", stats.ops);
      const std::uint64_t capacity =
          stats.bundles * static_cast<std::uint64_t>(prog.num_slots);
      cell_metrics.add("vliw.schedule.slot_capacity", capacity);
      cell_metrics.add("vliw.schedule.nop_slots", capacity - stats.ops);
      cell_metrics.add("vliw.schedule.fail.rf_read_port", stats.fail_rf_read_port);
      cell_metrics.add("vliw.schedule.fail.rf_write_port", stats.fail_rf_write_port);
      cell_metrics.add("vliw.schedule.fail.no_slot", stats.fail_no_slot);
      cell_metrics.add("vliw.schedule.fail.wide_imm", stats.fail_wide_imm);
      if (sim_opts.collect_profile) attach_profiler(prof::build_static_profile(prog, machine));
      vliw::VliwSim simulator(prog, machine, mem, sim_opts);
      if (sim_opts.fast_path) {
        const auto t_pre = std::chrono::steady_clock::now();
        stage_span.emplace("predecode", stage_args);
        simulator.use_predecoded(
            cache != nullptr
                ? cache->predecoded(prog, machine, timeline)
                : std::make_shared<const sim::PredecodedVliw>(sim::predecode(prog, machine)));
        out.stage_seconds.predecode = seconds_since(t_pre);
        stage_span.reset();
      }
      const auto t_sim = std::chrono::steady_clock::now();
      stage_span.emplace("simulate", stage_args);
      const vliw::ExecResult r = simulator.run();
      out.stage_seconds.simulate = seconds_since(t_sim);
      stage_span.reset();
      switch (r.status) {
        case sim::ExecStatus::Ok: break;
        case sim::ExecStatus::TimedOut: throw Error("VLIW simulation exceeded cycle limit");
        case sim::ExecStatus::Trapped:
          throw Error(format("VLIW simulation trapped: %s (unit %d, detail %u) at cycle %llu",
                             sim::trap_reason_name(r.trap.reason), r.trap.unit, r.trap.detail,
                             static_cast<unsigned long long>(r.trap.cycle)));
      }
      out.cycles = r.cycles;
      out.ret = r.ret;
      out.instruction_bits = vliw::instruction_bits(machine);
      out.instruction_count = prog.num_bundles();
      out.image_bits = vliw::image_bits(prog, machine);
      break;
    }
    case mach::Model::Tta: {
      tta::TtaScheduleStats stats;
      const tta::TtaProgram prog =
          tta::schedule_tta(lowered.func, machine, tta_options, &stats, sched_plan);
      if (profile != nullptr) {
        cell_metrics.add("sched.superblock.cross_block_bypass",
                         stats.superblock_cross_block_bypass);
      }
      // Image size from the real binary encoder (instruction stream plus
      // the literal pool holding wide constants and far branch targets).
      out.image_bits = tta::encode_program(prog, machine).image_bits();
      out.stage_seconds.schedule = seconds_since(t_schedule);
      stage_span.reset();
      cell_metrics.add("tta.schedule.instructions", stats.instructions);
      cell_metrics.add("tta.schedule.moves", stats.moves);
      cell_metrics.add("tta.schedule.bypassed_operands", stats.bypassed_operands);
      cell_metrics.add("tta.schedule.eliminated_result_moves", stats.eliminated_result_moves);
      cell_metrics.add("tta.schedule.shared_operands", stats.shared_operands);
      cell_metrics.add("tta.schedule.guarded_selects", stats.guarded_selects);
      cell_metrics.add("tta.schedule.fail.no_bus", stats.fail_no_bus);
      cell_metrics.add("tta.schedule.fail.long_imm", stats.fail_long_imm);
      cell_metrics.add("tta.schedule.fail.rf_read_port", stats.fail_rf_read_port);
      cell_metrics.add("tta.schedule.fail.rf_write_port", stats.fail_rf_write_port);
      record_tta_density(cell_metrics, prog, machine);
      if (sim_opts.collect_profile) attach_profiler(prof::build_static_profile(prog, machine));
      tta::TtaSim simulator(prog, machine, mem, sim_opts);
      if (sim_opts.fast_path) {
        const auto t_pre = std::chrono::steady_clock::now();
        stage_span.emplace("predecode", stage_args);
        simulator.use_predecoded(
            cache != nullptr
                ? cache->predecoded(prog, machine, timeline)
                : std::make_shared<const sim::PredecodedTta>(sim::predecode(prog, machine)));
        out.stage_seconds.predecode = seconds_since(t_pre);
        stage_span.reset();
      }
      const auto t_sim = std::chrono::steady_clock::now();
      stage_span.emplace("simulate", stage_args);
      const tta::ExecResult r = simulator.run();
      out.stage_seconds.simulate = seconds_since(t_sim);
      stage_span.reset();
      switch (r.status) {
        case sim::ExecStatus::Ok: break;
        case sim::ExecStatus::TimedOut: throw Error("TTA simulation exceeded cycle limit");
        case sim::ExecStatus::Trapped:
          throw Error(format("TTA simulation trapped: %s (bus %d, detail %u) at cycle %llu",
                             sim::trap_reason_name(r.trap.reason), r.trap.unit, r.trap.detail,
                             static_cast<unsigned long long>(r.trap.cycle)));
      }
      out.cycles = r.cycles;
      out.ret = r.ret;
      out.instruction_bits = tta::instruction_bits(machine);
      out.instruction_count = prog.instrs.size();
      out.moves = stats.moves;
      out.bypassed_operands = stats.bypassed_operands;
      out.eliminated_result_moves = stats.eliminated_result_moves;
      out.shared_operands = stats.shared_operands;
      break;
    }
  }
  out.output_checksum = output_checksum(module, workload, mem);
  if (util != nullptr) {
    util->add_cycles(out.cycles);
    out.utilization = util->report();
    out.utilization->export_to(cell_metrics, "sim.");
  }
  if (static_prof != nullptr) {
    // Only Ok runs reach this point (timeouts and traps throw above).
    out.profile =
        prof::derive_profile(*static_prof, prof_counts, out.cycles, sim::ExecStatus::Ok);
    out.profile->export_to(cell_metrics, "prof.");
  }
  out.metrics = cell_metrics.counters();
  if (metrics != nullptr) {
    metrics->merge(cell_metrics);
    metrics->observe("cell.cycles", out.cycles);
    metrics->add("cells.run");
  }
  if (timeline != nullptr) {
    timeline->add_seconds(support::Stage::kRegalloc, out.stage_seconds.regalloc);
    timeline->add_seconds(support::Stage::kSchedule, out.stage_seconds.schedule);
    timeline->add_seconds(support::Stage::kPredecode, out.stage_seconds.predecode);
    timeline->add_seconds(support::Stage::kSimulate, out.stage_seconds.simulate);
    timeline->bump("cells_run");
    timeline->bump("cycles_simulated", out.cycles);
    timeline->bump("spills", static_cast<std::uint64_t>(out.spills));
    if (util != nullptr) {
      const sim::UtilizationReport& u = util->report();
      timeline->bump("sim_triggers", u.total_triggers());
      timeline->bump("sim_moves", u.moves);
      timeline->bump("sim_guard_squashes", u.guard_squashes);
      timeline->bump("sim_rf_reads", u.rf_reads);
      timeline->bump("sim_rf_writes", u.rf_writes);
      timeline->bump("sim_stall_cycles", u.stall_cycles);
    }
  }

  // Cross-check against the golden model.
  const GoldenOutcome golden = run_golden(workload);
  if (golden.ret != out.ret || golden.output_checksum != out.output_checksum) {
    throw Error(format(
        "backend result diverges from reference: %s on %s (ret %u vs %u, checksum %llx vs %llx)",
        workload.name.c_str(), machine.name.c_str(), out.ret, golden.ret,
        static_cast<unsigned long long>(out.output_checksum),
        static_cast<unsigned long long>(golden.output_checksum)));
  }
  return out;
}

}  // namespace

RunOutcome compile_and_run_prebuilt(const ir::Module& optimized, const Workload& workload,
                                    const mach::Machine& machine,
                                    const tta::TtaOptions& tta_options,
                                    support::Timeline* timeline,
                                    const sim::SimOptions& sim_options, ModuleCache* cache,
                                    obs::Registry* metrics,
                                    const opt::SuperblockOptions* superblocks) {
  if (superblocks == nullptr || !superblocks->superblocks) {
    return compile_cell(optimized, workload, machine, tta_options, timeline, sim_options, cache,
                        metrics, nullptr, {}, nullptr);
  }

  // Phase 1: the ordinary schedule, run with a block-frequency collector
  // attached (tee'd with any caller observer). Its outcome doubles as the
  // baseline the superblock schedule must beat.
  sim::ProfileCollector collector;
  sim::SimOptions phase1 = sim_options;
  sim::TeeObserver tee(sim_options.observer, &collector);
  phase1.observer = sim_options.observer != nullptr ? static_cast<sim::ExecObserver*>(&tee)
                                                    : static_cast<sim::ExecObserver*>(&collector);
  RunOutcome base = compile_cell(optimized, workload, machine, tta_options, timeline, phase1,
                                 cache, nullptr, nullptr, {}, nullptr);

  // Phase 2: recompile along the measured edge biases and rerun.
  const opt::ProfileData profile = opt::ProfileData::from_collector(collector);
  opt::SuperblockPlan plan;
  RunOutcome sb = compile_cell(optimized, workload, machine, tta_options, timeline, sim_options,
                               cache, nullptr, &profile, *superblocks, &plan);

  // Empirical per-cell fallback: adopt the superblock schedule only when it
  // is no worse than the baseline, so no cell can ever regress (a cold-path
  // tail duplicate could otherwise outweigh the hot-path win).
  const bool adopt = sb.cycles <= base.cycles;
  const std::uint64_t base_cycles = base.cycles;
  RunOutcome out = adopt ? std::move(sb) : std::move(base);
  out.baseline_cycles = base_cycles;
  out.superblocks_applied = adopt && plan.formed > 0;
  out.metrics["sched.superblock.formed"] = adopt ? plan.formed : 0;
  out.metrics["sched.superblock.tail_dup_instrs"] = adopt ? plan.tail_dup_instrs : 0;
  // The cross-block counter only exists on adopted TTA cells; pin it to
  // zero everywhere else so superblock sweeps report a stable counter set.
  out.metrics.try_emplace("sched.superblock.cross_block_bypass", 0);
  if (!adopt) out.metrics["sched.superblock.cross_block_bypass"] = 0;
  if (metrics != nullptr) {
    // Merge only the adopted cell's counters (one merge per cell, as the
    // registry contract requires — the discarded phase never lands).
    obs::Registry cell;
    for (const auto& [name, value] : out.metrics) cell.add(name, value);
    metrics->merge(cell);
    metrics->observe("cell.cycles", out.cycles);
    metrics->add("cells.run");
  }
  return out;
}

RunOutcome compile_and_run(const Workload& workload, const mach::Machine& machine,
                           const tta::TtaOptions& tta_options) {
  const ir::Module optimized = build_optimized(workload);
  return compile_and_run_prebuilt(optimized, workload, machine, tta_options);
}

ReplayOutcome replay_with_observer(const Workload& workload, const mach::Machine& machine,
                                   sim::ExecObserver* observer, bool fast_path) {
  // The standard pipeline, minus the report plumbing and the golden
  // cross-check: the replayed run's own status IS the result.
  ir::Module module = build_optimized(workload);
  ir::Function& entry = module.function(workloads::entry_point());
  if (machine.model == mach::Model::Tta && machine.has_guards()) {
    opt::if_convert_selects(entry);
  } else {
    codegen::expand_selects(entry);
  }
  if (machine.model == mach::Model::Scalar) {
    codegen::legalize_scalar_operands(entry);
  }
  const codegen::LowerResult lowered = codegen::lower(module, workloads::entry_point(), machine);
  ir::Memory mem = make_loaded_memory(module);
  sim::SimOptions opts;
  opts.fast_path = fast_path;
  opts.observer = observer;
  ReplayOutcome out;
  const auto capture = [&](const auto& r) {
    out.status = r.status;
    out.trap = r.trap;
    out.cycles = r.cycles;
    out.ret = r.ret;
  };
  switch (machine.model) {
    case mach::Model::Scalar: {
      const scalar::ScalarProgram prog = scalar::emit_scalar(lowered.func);
      scalar::ScalarSim sim(prog, machine, mem, opts);
      if (fast_path) {
        sim.use_predecoded(
            std::make_shared<const sim::PredecodedScalar>(sim::predecode(prog, machine)));
      }
      capture(sim.run());
      break;
    }
    case mach::Model::Vliw: {
      const vliw::VliwProgram prog = vliw::schedule_vliw(lowered.func, machine);
      vliw::VliwSim sim(prog, machine, mem, opts);
      if (fast_path) {
        sim.use_predecoded(
            std::make_shared<const sim::PredecodedVliw>(sim::predecode(prog, machine)));
      }
      capture(sim.run());
      break;
    }
    case mach::Model::Tta: {
      const tta::TtaProgram prog = tta::schedule_tta(lowered.func, machine);
      tta::TtaSim sim(prog, machine, mem, opts);
      if (fast_path) {
        sim.use_predecoded(
            std::make_shared<const sim::PredecodedTta>(sim::predecode(prog, machine)));
      }
      capture(sim.run());
      break;
    }
  }
  return out;
}

}  // namespace ttsc::report
