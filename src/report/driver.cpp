#include "report/driver.hpp"

#include <chrono>
#include <mutex>

#include "codegen/legalize.hpp"
#include "codegen/lower.hpp"
#include "ir/verify.hpp"
#include "opt/passes.hpp"
#include "report/module_cache.hpp"
#include "scalar/scalar.hpp"
#include "sim/predecode.hpp"
#include "support/strings.hpp"
#include "tta/binary.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::report {

using workloads::Workload;

ir::Memory make_loaded_memory(const ir::Module& module, std::size_t size) {
  ir::Memory mem(size);
  const ir::DataLayout layout = module.layout();
  for (const ir::Global& g : module.globals()) {
    if (!g.init.empty()) mem.write_block(layout.address_of(g.name), g.init);
  }
  return mem;
}

namespace {

std::uint64_t output_checksum(const ir::Module& module, const Workload& workload,
                              const ir::Memory& mem) {
  const ir::DataLayout layout = module.layout();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::string& name : workload.output_globals) {
    const ir::Global* g = module.find_global(name);
    TTSC_ASSERT(g != nullptr, "workload output global missing: " + name);
    h ^= mem.checksum(layout.address_of(name), g->size);
    h *= 0x100000001b3ull;
  }
  return h;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

GoldenOutcome run_golden(const Workload& workload) {
  // Workloads are deterministic; memoize (the driver cross-checks every
  // machine run against the golden outcome). The cache is shared by every
  // thread of a parallel sweep; a workload interpreted concurrently by two
  // threads is computed twice but stored consistently.
  static std::mutex cache_mutex;
  static std::map<std::string, GoldenOutcome> cache;
  {
    std::lock_guard<std::mutex> lock(cache_mutex);
    auto it = cache.find(workload.name);
    if (it != cache.end()) return it->second;
  }
  ir::Module module;
  workload.build(module);
  ir::verify(module);
  ir::Interpreter interp(module);
  const ir::Interpreter::Result r = interp.run(workloads::entry_point(), {});
  GoldenOutcome out;
  out.ret = r.value;
  out.instrs_executed = r.instrs_executed;
  out.output_checksum = output_checksum(module, workload, interp.memory());
  std::lock_guard<std::mutex> lock(cache_mutex);
  cache[workload.name] = out;
  return out;
}

ir::Module build_optimized(const Workload& workload, support::Timeline* timeline,
                           support::StageSeconds* build_times) {
  ir::Module module;
  const auto t0 = std::chrono::steady_clock::now();
  workload.build(module);
  ir::verify(module);
  const double frontend_s = seconds_since(t0);
  const auto t1 = std::chrono::steady_clock::now();
  opt::optimize(module, workloads::entry_point());
  const double opt_s = seconds_since(t1);
  if (timeline != nullptr) {
    timeline->add_seconds(support::Stage::kFrontend, frontend_s);
    timeline->add_seconds(support::Stage::kOpt, opt_s);
    timeline->bump("modules_built");
  }
  if (build_times != nullptr) {
    build_times->frontend = frontend_s;
    build_times->opt = opt_s;
  }
  return module;
}

RunOutcome compile_and_run_prebuilt(const ir::Module& optimized, const Workload& workload,
                                    const mach::Machine& machine,
                                    const tta::TtaOptions& tta_options,
                                    support::Timeline* timeline,
                                    const sim::SimOptions& sim_options, ModuleCache* cache) {
  // Backend-specific IR preparation on a copy of the shared optimized
  // module: the scalar model legalizes RISC operand constraints.
  // (opt::if_convert is deliberately NOT applied: without hardware
  // predication the 4-op select expansion costs more than the branch it
  // removes on every machine here — see bench/ablation_tta_freedoms.)
  const auto t_regalloc = std::chrono::steady_clock::now();
  ir::Module module = optimized;
  if (machine.model == mach::Model::Tta && machine.has_guards()) {
    // Guarded TTAs predicate short conditionals: if-convert to Select ops,
    // which the scheduler lowers to guarded moves (one conditional
    // transport per merged value instead of 4-op mask arithmetic).
    opt::if_convert_selects(module.function(workloads::entry_point()));
  } else {
    codegen::expand_selects(module.function(workloads::entry_point()));
  }
  if (machine.model == mach::Model::Scalar) {
    codegen::legalize_scalar_operands(module.function(workloads::entry_point()));
  }

  const codegen::LowerResult lowered = codegen::lower(module, workloads::entry_point(), machine);

  RunOutcome out;
  out.machine = machine.name;
  out.workload = workload.name;
  out.spills = lowered.spills_inserted;
  out.stage_seconds.regalloc = seconds_since(t_regalloc);

  // Observer plumbing: optionally attach a per-run utilization collector,
  // teeing with a caller-provided observer when both are requested.
  sim::SimOptions sim_opts = sim_options;
  std::unique_ptr<sim::UtilizationCollector> util;
  sim::TeeObserver tee(nullptr, nullptr);
  if (sim_opts.collect_utilization) {
    util = std::make_unique<sim::UtilizationCollector>(machine);
    if (sim_opts.observer != nullptr) {
      tee = sim::TeeObserver(sim_opts.observer, util.get());
      sim_opts.observer = &tee;
    } else {
      sim_opts.observer = util.get();
    }
  }

  ir::Memory mem = make_loaded_memory(module);
  const auto t_schedule = std::chrono::steady_clock::now();
  switch (machine.model) {
    case mach::Model::Scalar: {
      const scalar::ScalarProgram prog = scalar::emit_scalar(lowered.func);
      out.stage_seconds.schedule = seconds_since(t_schedule);
      scalar::ScalarSim simulator(prog, machine, mem, sim_opts);
      if (sim_opts.fast_path) {
        const auto t_pre = std::chrono::steady_clock::now();
        simulator.use_predecoded(
            cache != nullptr
                ? cache->predecoded(prog, machine, timeline)
                : std::make_shared<const sim::PredecodedScalar>(sim::predecode(prog, machine)));
        out.stage_seconds.predecode = seconds_since(t_pre);
      }
      const auto t_sim = std::chrono::steady_clock::now();
      const scalar::ExecResult r = simulator.run();
      out.stage_seconds.simulate = seconds_since(t_sim);
      if (r.timed_out()) throw Error("scalar simulation exceeded cycle limit");
      out.cycles = r.cycles;
      out.ret = r.ret;
      out.instruction_bits = scalar::ScalarProgram::kInstrBits;
      out.instruction_count = prog.code_words(machine.scalar);
      out.image_bits = prog.image_bits(machine.scalar);
      break;
    }
    case mach::Model::Vliw: {
      const vliw::VliwProgram prog = vliw::schedule_vliw(lowered.func, machine);
      out.stage_seconds.schedule = seconds_since(t_schedule);
      vliw::VliwSim simulator(prog, machine, mem, sim_opts);
      if (sim_opts.fast_path) {
        const auto t_pre = std::chrono::steady_clock::now();
        simulator.use_predecoded(
            cache != nullptr
                ? cache->predecoded(prog, machine, timeline)
                : std::make_shared<const sim::PredecodedVliw>(sim::predecode(prog, machine)));
        out.stage_seconds.predecode = seconds_since(t_pre);
      }
      const auto t_sim = std::chrono::steady_clock::now();
      const vliw::ExecResult r = simulator.run();
      out.stage_seconds.simulate = seconds_since(t_sim);
      if (r.timed_out()) throw Error("VLIW simulation exceeded cycle limit");
      out.cycles = r.cycles;
      out.ret = r.ret;
      out.instruction_bits = vliw::instruction_bits(machine);
      out.instruction_count = prog.num_bundles();
      out.image_bits = vliw::image_bits(prog, machine);
      break;
    }
    case mach::Model::Tta: {
      tta::TtaScheduleStats stats;
      const tta::TtaProgram prog = tta::schedule_tta(lowered.func, machine, tta_options, &stats);
      // Image size from the real binary encoder (instruction stream plus
      // the literal pool holding wide constants and far branch targets).
      out.image_bits = tta::encode_program(prog, machine).image_bits();
      out.stage_seconds.schedule = seconds_since(t_schedule);
      tta::TtaSim simulator(prog, machine, mem, sim_opts);
      if (sim_opts.fast_path) {
        const auto t_pre = std::chrono::steady_clock::now();
        simulator.use_predecoded(
            cache != nullptr
                ? cache->predecoded(prog, machine, timeline)
                : std::make_shared<const sim::PredecodedTta>(sim::predecode(prog, machine)));
        out.stage_seconds.predecode = seconds_since(t_pre);
      }
      const auto t_sim = std::chrono::steady_clock::now();
      const tta::ExecResult r = simulator.run();
      out.stage_seconds.simulate = seconds_since(t_sim);
      if (r.timed_out()) throw Error("TTA simulation exceeded cycle limit");
      out.cycles = r.cycles;
      out.ret = r.ret;
      out.instruction_bits = tta::instruction_bits(machine);
      out.instruction_count = prog.instrs.size();
      out.moves = stats.moves;
      out.bypassed_operands = stats.bypassed_operands;
      out.eliminated_result_moves = stats.eliminated_result_moves;
      out.shared_operands = stats.shared_operands;
      break;
    }
  }
  out.output_checksum = output_checksum(module, workload, mem);
  if (util != nullptr) {
    util->add_cycles(out.cycles);
    out.utilization = util->report();
  }
  if (timeline != nullptr) {
    timeline->add_seconds(support::Stage::kRegalloc, out.stage_seconds.regalloc);
    timeline->add_seconds(support::Stage::kSchedule, out.stage_seconds.schedule);
    timeline->add_seconds(support::Stage::kPredecode, out.stage_seconds.predecode);
    timeline->add_seconds(support::Stage::kSimulate, out.stage_seconds.simulate);
    timeline->bump("cells_run");
    timeline->bump("cycles_simulated", out.cycles);
    timeline->bump("spills", static_cast<std::uint64_t>(out.spills));
    if (util != nullptr) {
      const sim::UtilizationReport& u = util->report();
      timeline->bump("sim_triggers", u.total_triggers());
      timeline->bump("sim_moves", u.moves);
      timeline->bump("sim_guard_squashes", u.guard_squashes);
      timeline->bump("sim_rf_reads", u.rf_reads);
      timeline->bump("sim_rf_writes", u.rf_writes);
      timeline->bump("sim_stall_cycles", u.stall_cycles);
    }
  }

  // Cross-check against the golden model.
  const GoldenOutcome golden = run_golden(workload);
  if (golden.ret != out.ret || golden.output_checksum != out.output_checksum) {
    throw Error(format(
        "backend result diverges from reference: %s on %s (ret %u vs %u, checksum %llx vs %llx)",
        workload.name.c_str(), machine.name.c_str(), out.ret, golden.ret,
        static_cast<unsigned long long>(out.output_checksum),
        static_cast<unsigned long long>(golden.output_checksum)));
  }
  return out;
}

RunOutcome compile_and_run(const Workload& workload, const mach::Machine& machine,
                           const tta::TtaOptions& tta_options) {
  const ir::Module optimized = build_optimized(workload);
  return compile_and_run_prebuilt(optimized, workload, machine, tta_options);
}

}  // namespace ttsc::report
