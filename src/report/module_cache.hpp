// Thread-safe memoization shared across an experiment sweep.
//
// ModuleCache caches two kinds of work that repeat across grid cells:
//
//  * optimized modules — each workload's frontend + optimizer run happens
//    exactly once no matter how many threads or machines request it
//    (verified by the timeline's "modules_built" counter);
//  * predecoded programs — the simulator fast path's flat program form
//    (src/sim/predecode.hpp), keyed by (machine, program) structural
//    fingerprints so two machine variants or two schedules of the same
//    workload cannot alias. Predecoded programs are immutable and returned
//    as shared_ptr, so concurrent simulations share one copy.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/predecode.hpp"
#include "support/timeline.hpp"
#include "workloads/workload.hpp"

namespace ttsc::obs {
class Registry;
}

namespace ttsc::report {

class ModuleCache {
 public:
  /// The optimized module for `workload`, building it on first use. The
  /// returned reference stays valid for the cache's lifetime. When given,
  /// `build_times` receives the frontend/opt wall time of the (possibly
  /// earlier, cached) build, and `metrics` receives the optimizer's "opt.*"
  /// counters — exactly once per workload regardless of thread count or how
  /// many cells request the module, so merged registries stay deterministic.
  const ir::Module& get(const workloads::Workload& workload,
                        support::Timeline* timeline = nullptr,
                        support::StageSeconds* build_times = nullptr,
                        obs::Registry* metrics = nullptr);

  /// Predecoded form of `program` on `machine`, memoized by structural
  /// fingerprint. When given, `timeline` counts "predecodes_built" /
  /// "predecode_hits".
  std::shared_ptr<const sim::PredecodedTta> predecoded(const tta::TtaProgram& program,
                                                       const mach::Machine& machine,
                                                       support::Timeline* timeline = nullptr);
  std::shared_ptr<const sim::PredecodedVliw> predecoded(const vliw::VliwProgram& program,
                                                        const mach::Machine& machine,
                                                        support::Timeline* timeline = nullptr);
  std::shared_ptr<const sim::PredecodedScalar> predecoded(const scalar::ScalarProgram& program,
                                                          const mach::Machine& machine,
                                                          support::Timeline* timeline = nullptr);

 private:
  // Hand-rolled once-per-entry instead of std::call_once: libstdc++'s
  // call_once can leave waiters hung when the callable throws (PR 66146),
  // and a failed build must be retryable by the next caller anyway.
  struct Entry {
    std::mutex build_mutex;
    bool built = false;
    ir::Module module;
    support::StageSeconds build_times;
  };

  template <typename Predecoded, typename Program>
  std::shared_ptr<const Predecoded> predecoded_impl(const Program& program,
                                                    const mach::Machine& machine,
                                                    support::Timeline* timeline);

  std::mutex mutex_;                                       // guards the map only
  std::map<std::string, std::unique_ptr<Entry>> entries_;  // keyed by workload name
  std::mutex predecoded_mutex_;
  // Type-erased: the fingerprint key encodes the program kind, so a key
  // always maps back to the Predecoded type it was stored as.
  std::map<std::uint64_t, std::shared_ptr<const void>> predecoded_;
};

}  // namespace ttsc::report
