#include "report/module_cache.hpp"

#include "report/driver.hpp"

namespace ttsc::report {

const ir::Module& ModuleCache::get(const workloads::Workload& workload,
                                   support::Timeline* timeline,
                                   support::StageSeconds* build_times, obs::Registry* metrics) {
  Entry* entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Entry>& slot = entries_[workload.name];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  // Build under the entry's own mutex, outside the map lock: concurrent
  // requests for *different* workloads build in parallel; requests for the
  // same workload block until the one build completes. A build that threw
  // leaves the entry unbuilt, so the next caller retries (and the error
  // reaches every waiter that raced this build attempt via its own retry).
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (!entry->built) {
    // `metrics` is threaded through only on the one real build, so "opt.*"
    // counters land in the registry exactly once per workload per sweep.
    entry->module = build_optimized(workload, timeline, &entry->build_times, metrics);
    entry->built = true;
  }
  if (build_times != nullptr) *build_times = entry->build_times;
  return entry->module;
}

template <typename Predecoded, typename Program>
std::shared_ptr<const Predecoded> ModuleCache::predecoded_impl(const Program& program,
                                                               const mach::Machine& machine,
                                                               support::Timeline* timeline) {
  const std::uint64_t key =
      sim::fingerprint(machine) ^ (sim::fingerprint(program) * 0x9e3779b97f4a7c15ull);
  {
    std::lock_guard<std::mutex> lock(predecoded_mutex_);
    auto it = predecoded_.find(key);
    if (it != predecoded_.end()) {
      if (timeline != nullptr) timeline->bump("predecode_hits");
      return std::static_pointer_cast<const Predecoded>(it->second);
    }
  }
  // Predecode outside the lock: a rare duplicate race costs one redundant
  // predecode; the first stored copy wins and is what everyone shares.
  auto built = std::make_shared<const Predecoded>(sim::predecode(program, machine));
  std::lock_guard<std::mutex> lock(predecoded_mutex_);
  auto [it, inserted] = predecoded_.emplace(key, built);
  if (timeline != nullptr) timeline->bump(inserted ? "predecodes_built" : "predecode_hits");
  return std::static_pointer_cast<const Predecoded>(it->second);
}

std::shared_ptr<const sim::PredecodedTta> ModuleCache::predecoded(const tta::TtaProgram& program,
                                                                  const mach::Machine& machine,
                                                                  support::Timeline* timeline) {
  return predecoded_impl<sim::PredecodedTta>(program, machine, timeline);
}

std::shared_ptr<const sim::PredecodedVliw> ModuleCache::predecoded(const vliw::VliwProgram& program,
                                                                   const mach::Machine& machine,
                                                                   support::Timeline* timeline) {
  return predecoded_impl<sim::PredecodedVliw>(program, machine, timeline);
}

std::shared_ptr<const sim::PredecodedScalar> ModuleCache::predecoded(
    const scalar::ScalarProgram& program, const mach::Machine& machine,
    support::Timeline* timeline) {
  return predecoded_impl<sim::PredecodedScalar>(program, machine, timeline);
}

}  // namespace ttsc::report
