// Cycle-attribution profile reports ("ttsc-profile-report" schema,
// version 1) and folded-stack flamegraph export.
//
// Rendered from a Matrix whose cells were run with
// SimOptions::collect_profile: per cell the nine-way cycle-attribution
// table (an exact partition of the run's cycles), the top-down tree the
// table rolls up into, per-unit counters, slot-level fill against the
// scheduler's static expectation, and the hottest source basic blocks.
//
// Determinism contract: like the run report, a profile report contains NO
// wall-clock times — it is a pure function of (machine set, workload suite,
// compiler options), byte-identical across simulation paths (fast vs
// reference) and sweep thread counts, so it is golden-testable via
// report_diff (the "machines" array diffs by element name).
#pragma once

#include <string>

#include "report/experiments.hpp"

namespace ttsc::report {

/// Render the matrix's cycle-attribution profiles as a
/// "ttsc-profile-report" version-1 JSON document, newline-terminated.
/// Cells without a profile (failed, or profiling was off) are omitted.
std::string render_profile_report(const Matrix& matrix);

/// Write render_profile_report() to `path`. Throws ttsc::Error on I/O
/// failure.
void write_profile_report(const std::string& path, const Matrix& matrix);

/// Folded-stack export (one "frame1;frame2;... count" line per stack, the
/// flamegraph.pl / inferno input format): stacks are
/// machine;workload;block<id>;<cause> with the attributed cycle count.
std::string render_profile_folded(const Matrix& matrix);

/// Write render_profile_folded() to `path`. Throws ttsc::Error on I/O
/// failure.
void write_profile_folded(const std::string& path, const Matrix& matrix);

}  // namespace ttsc::report
