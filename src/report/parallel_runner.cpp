#include "report/parallel_runner.hpp"

#include "mach/configs.hpp"

namespace ttsc::report {

ParallelRunner::ParallelRunner(Options options)
    : options_(options), pool_(options.threads) {}

Matrix ParallelRunner::run() {
  return run_grid(mach::all_machines(), workloads::all_workloads());
}

Matrix ParallelRunner::run_grid(const std::vector<mach::Machine>& machines,
                                const std::vector<workloads::Workload>& workloads,
                                const tta::TtaOptions& tta_options) {
  Matrix m;
  for (const workloads::Workload& w : workloads) m.workload_names_.push_back(w.name);

  const std::size_t cols = workloads.size();
  const std::size_t cells = machines.size() * cols;
  std::vector<RunOutcome> outcomes(cells);
  support::parallel_for(pool_, cells, [&](std::size_t i) {
    const mach::Machine& machine = machines[i / cols];
    const workloads::Workload& w = workloads[i % cols];
    auto run_cell = [&] {
      support::StageSeconds build_times;
      const ir::Module& optimized =
          cache_.get(w, options_.timeline, &build_times, options_.registry);
      // Observers are per-run state; never share one across worker threads.
      sim::SimOptions sim = options_.sim;
      sim.observer = nullptr;
      RunOutcome out = compile_and_run_prebuilt(optimized, w, machine, tta_options,
                                                options_.timeline, sim, &cache_,
                                                options_.registry, options_.superblocks);
      out.stage_seconds.frontend = build_times.frontend;
      out.stage_seconds.opt = build_times.opt;
      outcomes[i] = std::move(out);
    };
    if (!options_.keep_going) {
      run_cell();
      return;
    }
    try {
      run_cell();
    } catch (const std::exception& e) {
      RunOutcome failed;
      failed.machine = machine.name;
      failed.workload = w.name;
      failed.ok = false;
      failed.error = e.what();
      outcomes[i] = std::move(failed);
    }
  });

  // Deterministic reduction: machine-major, workloads in suite order.
  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    MachineResults r;
    r.machine = machines[mi];
    r.area = fpga::estimate_area(machines[mi]);
    r.timing = fpga::estimate_timing(machines[mi]);
    for (std::size_t wi = 0; wi < cols; ++wi) {
      r.by_workload[workloads[wi].name] = std::move(outcomes[mi * cols + wi]);
    }
    m.machines_.push_back(std::move(r));
  }
  return m;
}

}  // namespace ttsc::report
