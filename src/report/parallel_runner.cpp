#include "report/parallel_runner.hpp"

#include "mach/configs.hpp"

namespace ttsc::report {

const ir::Module& ModuleCache::get(const workloads::Workload& workload,
                                   support::Timeline* timeline,
                                   support::StageSeconds* build_times) {
  Entry* entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Entry>& slot = entries_[workload.name];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  // Build under the entry's own mutex, outside the map lock: concurrent
  // requests for *different* workloads build in parallel; requests for the
  // same workload block until the one build completes. A build that threw
  // leaves the entry unbuilt, so the next caller retries (and the error
  // reaches every waiter that raced this build attempt via its own retry).
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (!entry->built) {
    entry->module = build_optimized(workload, timeline, &entry->build_times);
    entry->built = true;
  }
  if (build_times != nullptr) *build_times = entry->build_times;
  return entry->module;
}

ParallelRunner::ParallelRunner(Options options)
    : options_(options), pool_(options.threads) {}

Matrix ParallelRunner::run() {
  return run_grid(mach::all_machines(), workloads::all_workloads());
}

Matrix ParallelRunner::run_grid(const std::vector<mach::Machine>& machines,
                                const std::vector<workloads::Workload>& workloads,
                                const tta::TtaOptions& tta_options) {
  Matrix m;
  for (const workloads::Workload& w : workloads) m.workload_names_.push_back(w.name);

  const std::size_t cols = workloads.size();
  const std::size_t cells = machines.size() * cols;
  std::vector<RunOutcome> outcomes(cells);
  support::parallel_for(pool_, cells, [&](std::size_t i) {
    const mach::Machine& machine = machines[i / cols];
    const workloads::Workload& w = workloads[i % cols];
    support::StageSeconds build_times;
    const ir::Module& optimized = cache_.get(w, options_.timeline, &build_times);
    RunOutcome out =
        compile_and_run_prebuilt(optimized, w, machine, tta_options, options_.timeline);
    out.stage_seconds.frontend = build_times.frontend;
    out.stage_seconds.opt = build_times.opt;
    outcomes[i] = std::move(out);
  });

  // Deterministic reduction: machine-major, workloads in suite order.
  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    MachineResults r;
    r.machine = machines[mi];
    r.area = fpga::estimate_area(machines[mi]);
    r.timing = fpga::estimate_timing(machines[mi]);
    for (std::size_t wi = 0; wi < cols; ++wi) {
      r.by_workload[workloads[wi].name] = std::move(outcomes[mi * cols + wi]);
    }
    m.machines_.push_back(std::move(r));
  }
  return m;
}

}  // namespace ttsc::report
