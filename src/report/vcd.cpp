#include "report/vcd.hpp"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace ttsc::report {

namespace {

using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;

/// VCD identifier for signal `n`: base-94 over the printable ASCII range
/// '!'..'~', shortest-first — unique by construction.
std::string vcd_id(std::size_t n) {
  std::string id;
  do {
    id += static_cast<char>('!' + n % 94);
    n /= 94;
  } while (n > 0);
  return id;
}

/// VCD scope/reference names: letters, digits and underscores only.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

struct Signal {
  std::string name;
  int width = 1;
  std::uint32_t idle = 0;     // value outside any event (pulses reset to it)
  std::uint32_t cur = 0;      // pending value for the open timestep
  std::uint32_t emitted = 0;  // value as of the last flushed timestep
  bool touched = false;
};

/// Accumulates value changes per timestep and emits only net changes: a
/// pulse signal held at the same active value across consecutive cycles
/// renders as one continuous level (a value-change dump cannot express
/// "same value again" anyway), and a reset that an event immediately
/// overrides produces no line at all.
class VcdBuilder {
 public:
  std::size_t add(std::string name, int width, std::uint32_t idle = 0) {
    signals_.push_back(Signal{std::move(name), width, idle, idle, idle, false});
    return signals_.size() - 1;
  }

  std::string header(const std::string& scope_name) const {
    std::string out;
    out += "$date\n  deterministic export (simulation cycles, no wall clock)\n$end\n";
    out += "$version\n  ttsc flight recorder vcd 1\n$end\n";
    out += "$timescale 1 ns $end\n";
    out += "$scope module " + scope_name + " $end\n";
    for (std::size_t i = 0; i < signals_.size(); ++i) {
      const Signal& s = signals_[i];
      out += "$var wire " + std::to_string(s.width) + " " + vcd_id(i) + " " + s.name;
      if (s.width > 1) out += " [" + std::to_string(s.width - 1) + ":0]";
      out += " $end\n";
    }
    out += "$upscope $end\n";
    out += "$enddefinitions $end\n";
    return out;
  }

  /// Initial-value section: every signal at its idle level.
  std::string dumpvars() const {
    std::string out = "$dumpvars\n";
    for (std::size_t i = 0; i < signals_.size(); ++i) out += change_text(i, signals_[i].idle);
    out += "$end\n";
    return out;
  }

  /// Queue a value change for the open timestep.
  void set(std::size_t sig, std::uint32_t value) {
    Signal& s = signals_[sig];
    if (s.cur == value) return;
    s.cur = value;
    if (!s.touched) {
      s.touched = true;
      touched_.push_back(sig);
    }
  }

  /// Queue a pulse: the value now, the idle level at the next timestep.
  void pulse(std::size_t sig, std::uint32_t value) {
    set(sig, value);
    resets_.push_back(sig);
  }

  /// Emit the open timestep's net changes under `#time` (nothing if the
  /// queued changes cancelled out).
  void flush(std::string& out, std::uint64_t time) {
    std::string body;
    for (const std::size_t sig : touched_) {
      Signal& s = signals_[sig];
      s.touched = false;
      if (s.cur != s.emitted) {
        body += change_text(sig, s.cur);
        s.emitted = s.cur;
      }
    }
    touched_.clear();
    if (!body.empty()) {
      out += '#' + std::to_string(time) + '\n';
      out += body;
    }
  }

  /// Queue the idle level of every pulsed signal (call at the timestep
  /// after the pulses fired; an event re-pulsing the signal overrides it).
  void queue_resets() {
    for (const std::size_t sig : resets_) set(sig, signals_[sig].idle);
    resets_.clear();
  }

  bool has_pending_resets() const { return !resets_.empty(); }

 private:
  std::string change_text(std::size_t sig, std::uint32_t value) const {
    const Signal& s = signals_[sig];
    if (s.width == 1) return std::string(1, value != 0 ? '1' : '0') + vcd_id(sig) + "\n";
    std::string bits;
    if (value == 0) {
      bits = "0";
    } else {
      for (std::uint32_t v = value; v != 0; v >>= 1) bits += static_cast<char>('0' + (v & 1));
      std::string rev(bits.rbegin(), bits.rend());
      bits = std::move(rev);
    }
    return "b" + bits + " " + vcd_id(sig) + "\n";
  }

  std::vector<Signal> signals_;
  std::vector<std::size_t> touched_;
  std::vector<std::size_t> resets_;
};

}  // namespace

std::string render_vcd(const FlightRecorder& recorder) {
  const mach::Machine& m = recorder.machine();
  VcdBuilder b;

  // Signal layout (declaration order is the waveform viewer's default
  // display order): control first, then datapath, then memory traffic.
  const std::size_t sig_pc = b.add("pc", 32);
  const std::size_t sig_shadow = b.add("shadow", 1);
  std::vector<std::size_t> sig_bus;
  for (const mach::Bus& bus : m.buses) sig_bus.push_back(b.add("bus_" + sanitize(bus.name), 2));
  std::vector<std::size_t> sig_fu;
  for (const mach::FunctionUnit& fu : m.fus)
    sig_fu.push_back(b.add("fu_" + sanitize(fu.name) + "_op", 8));
  // Scalar machines have no explicit FU list; triggers arrive with fu = -1.
  const std::size_t sig_cpu =
      m.model == mach::Model::Scalar ? b.add("cpu_op", 8) : static_cast<std::size_t>(-1);
  struct RfPort {
    std::size_t we, addr, data;
  };
  std::vector<std::vector<RfPort>> sig_rf(m.rfs.size());
  for (std::size_t r = 0; r < m.rfs.size(); ++r) {
    const int ports = m.rfs[r].write_ports > 0 ? m.rfs[r].write_ports : 1;
    const std::string base = "rf_" + sanitize(m.rfs[r].name);
    for (int p = 0; p < ports; ++p) {
      const std::string port = base + "_w" + std::to_string(p);
      sig_rf[r].push_back(
          RfPort{b.add(port + "_we", 1), b.add(port + "_addr", 16), b.add(port + "_data", 32)});
    }
  }
  std::vector<std::size_t> sig_guard;
  for (int g = 0; g < m.guard_regs; ++g)
    sig_guard.push_back(b.add("guard" + std::to_string(g), 1));
  const std::size_t sig_stall =
      m.model == mach::Model::Scalar ? b.add("stall", 16) : static_cast<std::size_t>(-1);
  const std::size_t sig_store_we = b.add("store_we", 1);
  const std::size_t sig_store_addr = b.add("store_addr", 32);
  const std::size_t sig_store_data = b.add("store_data", 32);
  const std::size_t sig_store_width = b.add("store_width", 3);

  std::string out = b.header(sanitize(m.name));
  out += b.dumpvars();

  // Walk the retained window cycle group by cycle group. Pulse signals
  // reset one cycle after they fired; when the event stream skips cycles
  // the reset gets its own timestep.
  std::size_t i = 0;
  std::uint64_t prev_cycle = 0;
  bool have_prev = false;
  while (i < recorder.size()) {
    const std::uint64_t cycle = recorder.at(i).cycle;
    if (have_prev && b.has_pending_resets() && prev_cycle + 1 < cycle) {
      b.queue_resets();
      b.flush(out, prev_cycle + 1);
    }
    b.queue_resets();  // same-timestep resets merge with this cycle's events

    // Per-cycle RF write port rotation: successive commits to the same RF
    // within one cycle land on successive write ports (clamped to the
    // machine's port count — the schedulers respect it, so the clamp only
    // matters for fault-corrupted runs).
    std::vector<int> rf_port(m.rfs.size(), 0);
    for (; i < recorder.size() && recorder.at(i).cycle == cycle; ++i) {
      const FlightEvent& ev = recorder.at(i);
      switch (ev.kind) {
        case FlightEventKind::Exec:
          b.set(sig_pc, static_cast<std::uint32_t>(ev.index));
          b.set(sig_shadow, ev.aux);
          break;
        case FlightEventKind::Move:
        case FlightEventKind::GuardSquash: {
          const std::size_t bus = static_cast<std::size_t>(ev.unit);
          if (ev.unit >= 0 && bus < sig_bus.size()) {
            b.pulse(sig_bus[bus], ev.kind == FlightEventKind::Move ? 1 : 2);
          }
          break;
        }
        case FlightEventKind::Trigger: {
          const std::uint32_t op = (ev.value + 1) & 0xffu;
          if (ev.unit < 0) {
            if (sig_cpu != static_cast<std::size_t>(-1)) b.pulse(sig_cpu, op);
          } else if (static_cast<std::size_t>(ev.unit) < sig_fu.size()) {
            b.pulse(sig_fu[static_cast<std::size_t>(ev.unit)], op);
          }
          break;
        }
        case FlightEventKind::RfWrite: {
          const std::size_t rf = static_cast<std::size_t>(ev.unit);
          if (ev.unit >= 0 && rf < sig_rf.size()) {
            const int last = static_cast<int>(sig_rf[rf].size()) - 1;
            const int p = rf_port[rf] < last ? rf_port[rf] : last;
            ++rf_port[rf];
            const RfPort& port = sig_rf[rf][static_cast<std::size_t>(p)];
            b.pulse(port.we, 1);
            b.set(port.addr, static_cast<std::uint32_t>(ev.index) & 0xffffu);
            b.set(port.data, ev.value);
          }
          break;
        }
        case FlightEventKind::GuardWrite: {
          const std::size_t g = static_cast<std::size_t>(ev.unit);
          if (ev.unit >= 0 && g < sig_guard.size()) b.set(sig_guard[g], ev.value != 0 ? 1 : 0);
          break;
        }
        case FlightEventKind::Store:
          b.pulse(sig_store_we, 1);
          b.set(sig_store_addr, static_cast<std::uint32_t>(ev.index));
          b.set(sig_store_data, ev.value);
          b.set(sig_store_width, ev.aux);
          break;
        case FlightEventKind::Stall:
          if (sig_stall != static_cast<std::size_t>(-1)) {
            b.pulse(sig_stall, ev.value & 0xffffu);
          }
          break;
        case FlightEventKind::BlockEnter:
        case FlightEventKind::RfRead:
        case FlightEventKind::Overhead:
          break;  // JSON-dump-only events; no waveform signal
      }
    }
    b.flush(out, cycle);
    prev_cycle = cycle;
    have_prev = true;
  }
  if (have_prev && b.has_pending_resets()) {
    b.queue_resets();
    b.flush(out, prev_cycle + 1);
  }
  return out;
}

}  // namespace ttsc::report
