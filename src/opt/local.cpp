// Local (per-block) scalar optimizations: constant propagation + folding,
// copy propagation, and common-subexpression elimination.
#include <map>
#include <optional>

#include "support/bits.hpp"
#include "opt/passes.hpp"

namespace ttsc::opt {

using namespace ir;

namespace {

/// Fold a pure binary/unary op over literal operands.
std::optional<std::uint32_t> fold_literal(Opcode op, std::uint32_t a, std::uint32_t b) {
  switch (op) {
    case Opcode::Add: return a + b;
    case Opcode::Sub: return a - b;
    case Opcode::Mul: return a * b;
    case Opcode::And: return a & b;
    case Opcode::Ior: return a | b;
    case Opcode::Xor: return a ^ b;
    case Opcode::Shl: return a << (b & 31);
    case Opcode::Shru: return a >> (b & 31);
    case Opcode::Shr:
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
    case Opcode::Eq: return a == b ? 1u : 0u;
    case Opcode::Gt:
      return static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1u : 0u;
    case Opcode::Gtu: return a > b ? 1u : 0u;
    case Opcode::Sxhw: return static_cast<std::uint32_t>(sign_extend(a, 16));
    case Opcode::Sxqw: return static_cast<std::uint32_t>(sign_extend(a, 8));
    default: return std::nullopt;
  }
}

bool is_lit(const Operand& o, std::int64_t v) { return o.is_literal() && o.imm.value == v; }

/// Rewrite `in` using algebraic identities. Returns true on change.
bool simplify_algebraic(Instr& in) {
  auto to_copy = [&](const Operand& src) {
    in.op = Opcode::Copy;
    in.inputs = {src};
    return true;
  };
  auto to_movi = [&](std::int64_t v) {
    in.op = Opcode::MovI;
    in.inputs = {Operand(Imm(v))};
    return true;
  };
  switch (in.op) {
    case Opcode::Add:
      if (is_lit(in.inputs[0], 0)) return to_copy(in.inputs[1]);
      if (is_lit(in.inputs[1], 0)) return to_copy(in.inputs[0]);
      break;
    case Opcode::Sub:
      if (is_lit(in.inputs[1], 0)) return to_copy(in.inputs[0]);
      if (in.inputs[0] == in.inputs[1] && in.inputs[0].is_reg()) return to_movi(0);
      break;
    case Opcode::Mul: {
      if (is_lit(in.inputs[0], 1)) return to_copy(in.inputs[1]);
      if (is_lit(in.inputs[1], 1)) return to_copy(in.inputs[0]);
      if (is_lit(in.inputs[0], 0) || is_lit(in.inputs[1], 0)) return to_movi(0);
      // Strength reduction: multiply by a power of two becomes a shift
      // (2-cycle shifter beats the 3-cycle multiplier on every machine).
      auto power_of_two = [](const Operand& o) -> int {
        if (!o.is_literal()) return -1;
        const std::uint32_t v = static_cast<std::uint32_t>(o.imm.value);
        if (v == 0 || (v & (v - 1)) != 0) return -1;
        int k = 0;
        while ((v >> k) != 1) ++k;
        return k;
      };
      for (int side = 0; side < 2; ++side) {
        const int k = power_of_two(in.inputs[static_cast<std::size_t>(side)]);
        if (k > 0) {
          const Operand value = in.inputs[static_cast<std::size_t>(1 - side)];
          in.op = Opcode::Shl;
          in.inputs = {value, Operand(std::int64_t{k})};
          return true;
        }
      }
      break;
    }
    case Opcode::And:
      if (is_lit(in.inputs[0], 0) || is_lit(in.inputs[1], 0)) return to_movi(0);
      if (is_lit(in.inputs[0], -1)) return to_copy(in.inputs[1]);
      if (is_lit(in.inputs[1], -1)) return to_copy(in.inputs[0]);
      if (in.inputs[0] == in.inputs[1] && in.inputs[0].is_reg()) return to_copy(in.inputs[0]);
      break;
    case Opcode::Ior:
      if (is_lit(in.inputs[0], 0)) return to_copy(in.inputs[1]);
      if (is_lit(in.inputs[1], 0)) return to_copy(in.inputs[0]);
      if (in.inputs[0] == in.inputs[1] && in.inputs[0].is_reg()) return to_copy(in.inputs[0]);
      break;
    case Opcode::Xor:
      if (is_lit(in.inputs[0], 0)) return to_copy(in.inputs[1]);
      if (is_lit(in.inputs[1], 0)) return to_copy(in.inputs[0]);
      if (in.inputs[0] == in.inputs[1] && in.inputs[0].is_reg()) return to_movi(0);
      break;
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shru:
      if (is_lit(in.inputs[1], 0)) return to_copy(in.inputs[0]);
      break;
    default:
      break;
  }
  return false;
}

}  // namespace

bool fold_constants(Function& func) {
  bool changed = false;
  for (Block& block : func.blocks()) {
    // Known literal / global-immediate values per vreg within the block.
    std::map<std::uint32_t, Imm> known;
    for (Instr& in : block.instrs) {
      // Substitute known register values into operands.
      for (Operand& opnd : in.inputs) {
        if (!opnd.is_reg()) continue;
        auto it = known.find(opnd.reg.id);
        if (it != known.end()) {
          opnd = Operand(it->second);
          changed = true;
        }
      }

      changed |= simplify_algebraic(in);

      // Global-address arithmetic: add/sub of a global immediate and a
      // literal folds into a relocated immediate.
      if ((in.op == Opcode::Add || in.op == Opcode::Sub) && in.inputs[0].is_imm() &&
          in.inputs[1].is_literal() && in.inputs[0].imm.is_global()) {
        const std::int64_t off = in.inputs[1].imm.value;
        Imm folded = in.inputs[0].imm;
        folded.value += in.op == Opcode::Add ? off : -off;
        in.op = Opcode::MovI;
        in.inputs = {Operand(folded)};
        changed = true;
      } else if (in.op == Opcode::Add && in.inputs[1].is_imm() && in.inputs[1].imm.is_global() &&
                 in.inputs[0].is_literal()) {
        Imm folded = in.inputs[1].imm;
        folded.value += in.inputs[0].imm.value;
        in.op = Opcode::MovI;
        in.inputs = {Operand(folded)};
        changed = true;
      }

      // Full literal folding.
      if (is_pure(in.op) && in.op != Opcode::MovI && in.op != Opcode::Copy) {
        bool all_literal = true;
        for (const Operand& opnd : in.inputs) all_literal &= opnd.is_literal();
        if (all_literal) {
          const std::uint32_t a = static_cast<std::uint32_t>(in.inputs[0].literal());
          const std::uint32_t b = in.inputs.size() > 1
                                      ? static_cast<std::uint32_t>(in.inputs[1].literal())
                                      : 0u;
          if (auto v = fold_literal(in.op, a, b)) {
            in.op = Opcode::MovI;
            in.inputs = {Operand(Imm(static_cast<std::int64_t>(static_cast<std::int32_t>(*v))))};
            changed = true;
          }
        }
      }

      // Copy of an immediate is a MovI.
      if (in.op == Opcode::Copy && in.inputs[0].is_imm()) {
        in.op = Opcode::MovI;
        changed = true;
      }

      // Constant branch -> unconditional jump.
      if (in.op == Opcode::Bnz && in.inputs[0].is_literal()) {
        const BlockId target = in.inputs[0].literal() != 0 ? in.targets[0] : in.targets[1];
        in.op = Opcode::Jump;
        in.inputs.clear();
        in.targets = {target};
        changed = true;
      }

      // Update known-values map.
      if (in.dst.valid()) {
        if (in.op == Opcode::MovI) {
          known[in.dst.id] = in.inputs[0].as_imm();
        } else {
          known.erase(in.dst.id);
        }
      }
    }
  }
  return changed;
}

bool propagate_copies(Function& func) {
  bool changed = false;
  for (Block& block : func.blocks()) {
    // copy_of[v] = operand whose value v currently holds.
    std::map<std::uint32_t, Operand> copy_of;
    auto invalidate = [&](Vreg v) {
      copy_of.erase(v.id);
      for (auto it = copy_of.begin(); it != copy_of.end();) {
        if (it->second.is_reg() && it->second.reg == v) {
          it = copy_of.erase(it);
        } else {
          ++it;
        }
      }
    };
    for (Instr& in : block.instrs) {
      for (Operand& opnd : in.inputs) {
        if (!opnd.is_reg()) continue;
        auto it = copy_of.find(opnd.reg.id);
        if (it != copy_of.end()) {
          opnd = it->second;
          changed = true;
        }
      }
      if (in.dst.valid()) {
        invalidate(in.dst);
        if (in.op == Opcode::Copy && !(in.inputs[0].is_reg() && in.inputs[0].reg == in.dst)) {
          copy_of[in.dst.id] = in.inputs[0];
        }
      }
    }
  }
  return changed;
}

bool eliminate_common_subexpressions(Function& func) {
  bool changed = false;
  for (Block& block : func.blocks()) {
    struct Entry {
      Opcode op;
      std::vector<Operand> inputs;
      Vreg dst;
    };
    std::vector<Entry> available;
    auto invalidate_reg = [&](Vreg v) {
      std::erase_if(available, [&](const Entry& e) {
        if (e.dst == v) return true;
        for (const Operand& opnd : e.inputs)
          if (opnd.is_reg() && opnd.reg == v) return true;
        return false;
      });
    };
    auto invalidate_loads = [&] {
      std::erase_if(available, [&](const Entry& e) { return is_load(e.op); });
    };

    for (Instr& in : block.instrs) {
      const bool candidate =
          (is_pure(in.op) && in.op != Opcode::MovI && in.op != Opcode::Copy) || is_load(in.op);
      if (candidate) {
        // Canonicalize commutative operand order for better hit rates.
        std::vector<Operand> key_inputs = in.inputs;
        if (is_commutative(in.op) && key_inputs.size() == 2) {
          const auto rank = [](const Operand& o) {
            return o.is_reg() ? std::pair<int, std::int64_t>{0, o.reg.id}
                              : std::pair<int, std::int64_t>{1, o.imm.value};
          };
          if (rank(key_inputs[1]) < rank(key_inputs[0])) std::swap(key_inputs[0], key_inputs[1]);
        }
        bool hit = false;
        for (const Entry& e : available) {
          if (e.op == in.op && e.inputs == key_inputs) {
            in.op = Opcode::Copy;
            in.inputs = {Operand(e.dst)};
            changed = true;
            hit = true;
            break;
          }
        }
        if (!hit && in.dst.valid()) {
          invalidate_reg(in.dst);
          // An expression that overwrites one of its own inputs (x = x+1)
          // must not be recorded: the key would name the pre-update value.
          bool self_referential = false;
          for (const Operand& opnd : key_inputs) {
            if (opnd.is_reg() && opnd.reg == in.dst) self_referential = true;
          }
          if (!self_referential) {
            available.push_back(Entry{in.op, std::move(key_inputs), in.dst});
          }
          continue;  // dst invalidation already handled
        }
      }
      if (is_store(in.op)) invalidate_loads();
      if (in.op == Opcode::Call) {
        available.clear();  // calls may write memory and clobber anything
      }
      if (in.dst.valid()) invalidate_reg(in.dst);
    }
  }
  return changed;
}

}  // namespace ttsc::opt
