// Global dead-code elimination over the non-SSA IR using block liveness.
#include "ir/analysis.hpp"
#include "opt/passes.hpp"

namespace ttsc::opt {

using namespace ir;

bool eliminate_dead_code(Function& func) {
  bool changed_any = false;
  // Removing one instruction can make another dead; iterate to fixpoint.
  while (true) {
    const Cfg cfg(func);
    const Liveness live(func, cfg);
    bool changed = false;
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      Block& block = func.block(b);
      std::vector<bool> alive = live.live_out(b);
      // Backward scan: an instruction is removable when pure and its dst is
      // not live below it.
      for (std::size_t i = block.instrs.size(); i-- > 0;) {
        Instr& in = block.instrs[i];
        const bool removable = is_pure(in.op) && in.dst.valid() && !alive[in.dst.id];
        if (removable) {
          block.instrs.erase(block.instrs.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          continue;
        }
        if (in.dst.valid()) alive[in.dst.id] = false;
        for (Vreg u : uses_of(in)) alive[u.id] = true;
      }
    }
    changed_any |= changed;
    if (!changed) break;
  }
  return changed_any;
}

}  // namespace ttsc::opt
