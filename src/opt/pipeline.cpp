#include "ir/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/passes.hpp"

namespace ttsc::opt {

void optimize(ir::Module& module, const std::string& root, const PipelineOptions& options,
              obs::Registry* metrics) {
  obs::Span span("opt", [&] { return obs::SpanArgs{{"root", root}}; });
  inline_all(module, root);
  ir::Function& func = module.function(root);
  obs::add(metrics, "opt.instrs_in", func.num_instrs());

  // Per-pass IR deltas, accumulated locally and merged once at pipeline end
  // (the hot-path shard contract of obs::Registry).
  obs::Registry local;
  obs::Registry* const shard = metrics != nullptr ? &local : nullptr;
  auto run_pass = [&](const char* name, auto&& pass) {
    const std::uint64_t before = func.num_instrs();
    const bool changed = pass();
    if (shard != nullptr) {
      const std::uint64_t after = func.num_instrs();
      const std::string prefix = std::string("opt.") + name;
      shard->add(prefix + ".calls");
      if (changed) shard->add(prefix + ".changed");
      if (after < before) shard->add(prefix + ".instrs_removed", before - after);
      if (after > before) shard->add(prefix + ".instrs_added", after - before);
    }
    return changed;
  };

  auto local_cleanup = [&] {
    bool any = false;
    for (int i = 0; i < options.max_iterations; ++i) {
      bool changed = false;
      changed |= run_pass("fold", [&] { return fold_constants(func); });
      changed |= run_pass("copyprop", [&] { return propagate_copies(func); });
      changed |= run_pass("cse", [&] { return eliminate_common_subexpressions(func); });
      changed |= run_pass("dce", [&] { return eliminate_dead_code(func); });
      changed |= run_pass("simplify_cfg", [&] { return simplify_cfg(func); });
      obs::add(shard, "opt.iterations");
      any |= changed;
      if (!changed) break;
    }
    return any;
  };

  local_cleanup();
  if (options.enable_licm) {
    for (int i = 0; i < 4; ++i) {
      const bool hoisted = run_pass("licm", [&] { return hoist_loop_invariants(func); });
      const bool cleaned = local_cleanup();
      if (!hoisted && !cleaned) break;
    }
  }
  ir::verify(func);
  if (metrics != nullptr) {
    local.add("opt.instrs_out", func.num_instrs());
    metrics->merge(local);
  }
}

}  // namespace ttsc::opt
