#include "ir/verify.hpp"
#include "opt/passes.hpp"

namespace ttsc::opt {

void optimize(ir::Module& module, const std::string& root, const PipelineOptions& options) {
  inline_all(module, root);
  ir::Function& func = module.function(root);

  auto local_cleanup = [&] {
    bool any = false;
    for (int i = 0; i < options.max_iterations; ++i) {
      bool changed = false;
      changed |= fold_constants(func);
      changed |= propagate_copies(func);
      changed |= eliminate_common_subexpressions(func);
      changed |= eliminate_dead_code(func);
      changed |= simplify_cfg(func);
      any |= changed;
      if (!changed) break;
    }
    return any;
  };

  local_cleanup();
  if (options.enable_licm) {
    for (int i = 0; i < 4; ++i) {
      const bool hoisted = hoist_loop_invariants(func);
      const bool cleaned = local_cleanup();
      if (!hoisted && !cleaned) break;
    }
  }
  ir::verify(func);
}

}  // namespace ttsc::opt
