// Profile-guided superblock formation.
//
// A superblock is a hot acyclic trace of basic blocks with a single entry
// (the head) and possibly many side exits: interior branches may leave the
// trace, but control can only enter at the top. form_superblocks selects
// traces along the most-biased profile edges, makes every on-trace
// successor the fallthrough (inverting Bnz conditions with an extra
// `Eq cond, 0` where needed), and restores the single-entry property with
// tail duplication: when a trace block other than the head has an external
// predecessor, the trace suffix from the first such side entrance is cloned
// and all off-trace predecessors are redirected to the clones. The clones
// plus the inverted branches ARE the compensation code — every side path
// re-enters a stand-alone copy of the code it would have run, so program
// results are unchanged by construction (locked by the differential fleet
// in tests/property_test.cpp).
//
// The IR keeps one terminator per block, so a formed trace is not merged
// into one ir::Block. Unconditional interior boundaries (Jump to the next
// trace block, which tail duplication leaves with a single predecessor)
// are physically merged here; conditional boundaries survive as contiguous
// block runs recorded in the returned SuperblockPlan, which the TTA/VLIW
// schedulers consume to schedule across the side exits
// (tta/schedule.cpp, vliw/schedule.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"
#include "opt/profile.hpp"

namespace ttsc::opt {

struct SuperblockOptions {
  /// Master switch; off leaves the function untouched (default: the
  /// baseline compile stays byte-identical without a profile).
  bool superblocks = false;
  /// Minimum fraction of a block's outgoing profile mass an edge needs to
  /// extend the trace along it.
  double bias = 0.6;
  /// Minimum execution count for a block to join a trace.
  std::uint64_t min_count = 4;
  /// Maximum blocks per trace.
  std::uint32_t max_trace_len = 8;
  /// Maximum total instructions cloned by tail duplication per function;
  /// traces are truncated before the side entrance that would exceed it.
  std::uint32_t tail_dup_budget = 64;
};

/// One formed trace: `len` contiguous blocks starting at `first` (indices
/// into the function's post-formation block order). Interior blocks have
/// exactly one predecessor (the previous trace block) and end in a Bnz
/// whose fallthrough is the next trace block — the taken target is the
/// side exit.
struct SuperblockTrace {
  std::uint32_t first = 0;
  std::uint32_t len = 0;
};

struct SuperblockPlan {
  std::vector<SuperblockTrace> traces;
  /// Number of traces formed (== traces.size(); counted for metrics).
  std::uint64_t formed = 0;
  /// Total instructions cloned by tail duplication.
  std::uint64_t tail_dup_instrs = 0;

  /// The trace index whose run contains `block`, or -1.
  int trace_of(std::uint32_t block) const {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      if (block >= traces[t].first && block < traces[t].first + traces[t].len) {
        return static_cast<int>(t);
      }
    }
    return -1;
  }
};

/// Form superblocks in `func` along `profile` (block ids must refer to
/// `func`'s current blocks). Reorders blocks so each trace is contiguous;
/// the entry block stays first. Verifies the rewritten function. Returns
/// the plan the backend schedulers consume; an empty plan (no formation)
/// leaves the function byte-identical.
SuperblockPlan form_superblocks(ir::Function& func, const ProfileData& profile,
                                const SuperblockOptions& options);

}  // namespace ttsc::opt
