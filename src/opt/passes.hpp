// Optimization passes of the ttsc compiler.
//
// The pipeline stands in for the LLVM middle end the paper's TCE compiler
// uses (Section V-A attributes part of the TTA code-size advantage to
// LLVM's aggressive whole-program optimization). All passes are
// model-agnostic: the same optimized IR feeds the scalar, VLIW and TTA
// backends so measured differences come from the programming models alone.
#pragma once

#include "ir/module.hpp"

namespace ttsc::obs {
class Registry;
}

namespace ttsc::opt {

/// Inline every call reachable from `root` (whole-program inlining; the
/// evaluated workloads are non-recursive). Throws ttsc::Error if calls
/// remain after the iteration limit (recursion).
void inline_all(ir::Module& module, const std::string& root);

/// Local constant propagation + folding + algebraic simplification.
/// Returns true if anything changed.
bool fold_constants(ir::Function& func);

/// Local copy propagation (forwards Copy sources into uses).
bool propagate_copies(ir::Function& func);

/// Local common-subexpression elimination over pure ops and loads
/// (loads invalidated by stores).
bool eliminate_common_subexpressions(ir::Function& func);

/// Global dead-code elimination of pure instructions whose results are
/// never used.
bool eliminate_dead_code(ir::Function& func);

/// CFG cleanup: constant branches, unreachable blocks, jump threading,
/// straight-line block merging.
bool simplify_cfg(ir::Function& func);

/// Loop-invariant code motion with conservative non-SSA legality rules.
bool hoist_loop_invariants(ir::Function& func);

/// Flatten small pure branch triangles/diamonds into branch-free code.
/// if_convert expands the merges into 4-op mask arithmetic (profitable
/// only with abundant issue slots); if_convert_selects emits ir::Select
/// ops for machines with predication (guarded moves), where a merge costs
/// a single conditional transport.
bool if_convert(ir::Function& func);
bool if_convert_selects(ir::Function& func);

struct PipelineOptions {
  bool enable_licm = true;
  int max_iterations = 10;
};

/// Run the standard pipeline: inline_all(root) followed by iterated local
/// cleanup and LICM until fixpoint. Verifies the module afterwards.
///
/// When `metrics` is given, the pipeline records per-pass IR deltas into it
/// ("opt.<pass>.calls" / ".changed" / ".instrs_removed" / ".instrs_added"
/// counters plus whole-pipeline "opt.instrs_in" / "opt.instrs_out" /
/// "opt.iterations"). The pipeline is deterministic, so the recorded
/// metrics are too.
void optimize(ir::Module& module, const std::string& root, const PipelineOptions& options = {},
              obs::Registry* metrics = nullptr);

}  // namespace ttsc::opt
