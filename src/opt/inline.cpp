#include "support/strings.hpp"
#include "ir/verify.hpp"
#include "opt/passes.hpp"

namespace ttsc::opt {

using namespace ir;

namespace {

/// Inline one call site: blocks_ of `caller` gain a remapped copy of
/// `callee`'s body; the containing block is split at the call.
/// Returns true if a call was found and inlined.
bool inline_one(Function& caller, const Function& callee) {
  for (BlockId b = 0; b < caller.num_blocks(); ++b) {
    Block& block = caller.block(b);
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      if (block.instrs[i].op != Opcode::Call || block.instrs[i].callee != callee.name()) continue;

      const Instr call = block.instrs[i];

      // Remap bases for the cloned callee.
      const std::uint32_t vreg_base = caller.num_vregs();
      caller.set_num_vregs(vreg_base + callee.num_vregs());
      const BlockId block_base = caller.num_blocks();

      // Tail block receives everything after the call.
      const BlockId tail =
          caller.add_block(format("%s.tail%zu", caller.block(b).name.c_str(), i));
      {
        Block& from = caller.block(b);  // re-fetch: add_block may reallocate
        Block& to = caller.block(tail);
        to.instrs.assign(from.instrs.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                         from.instrs.end());
        from.instrs.erase(from.instrs.begin() + static_cast<std::ptrdiff_t>(i),
                          from.instrs.end());
      }

      // Clone callee blocks.
      for (BlockId cb = 0; cb < callee.num_blocks(); ++cb) {
        const BlockId nb = caller.add_block(callee.name() + "." + callee.block(cb).name);
        Block& dst = caller.block(nb);
        for (const Instr& cin : callee.block(cb).instrs) {
          if (cin.op == Opcode::Ret) {
            // ret v  ->  copy call.dst, v ; jump tail
            if (call.dst.valid()) {
              Instr cp;
              cp.op = Opcode::Copy;
              cp.dst = call.dst;
              Operand src = cin.inputs.empty() ? Operand(std::int64_t{0}) : cin.inputs[0];
              if (src.is_reg()) src = Operand(Vreg(src.reg.id + vreg_base));
              cp.inputs = {src};
              dst.instrs.push_back(std::move(cp));
            }
            Instr jmp;
            jmp.op = Opcode::Jump;
            jmp.targets = {tail};
            dst.instrs.push_back(std::move(jmp));
            continue;
          }
          Instr copy = cin;
          if (copy.dst.valid()) copy.dst = Vreg(copy.dst.id + vreg_base);
          for (Operand& opnd : copy.inputs) {
            if (opnd.is_reg()) opnd.reg = Vreg(opnd.reg.id + vreg_base);
          }
          for (BlockId& t : copy.targets) t = t + block_base + 1;  // +1 for tail block
          dst.instrs.push_back(std::move(copy));
        }
      }

      // Bind arguments: callee param p lives in cloned vreg (vreg_base + p).
      Block& head = caller.block(b);
      for (std::uint32_t p = 0; p < callee.num_params(); ++p) {
        Instr cp;
        cp.op = Opcode::Copy;
        cp.dst = Vreg(vreg_base + p);
        cp.inputs = {call.inputs[p]};
        head.instrs.push_back(std::move(cp));
      }
      Instr enter;
      enter.op = Opcode::Jump;
      enter.targets = {block_base + 1 + Function::kEntry};
      head.instrs.push_back(std::move(enter));
      return true;
    }
  }
  return false;
}

}  // namespace

void inline_all(Module& module, const std::string& root) {
  Function& caller = module.function(root);
  // Inline innermost-last: repeatedly scan for any remaining call. The
  // iteration bound catches (unsupported) recursion.
  for (int iteration = 0; iteration < 10000; ++iteration) {
    bool found = false;
    for (BlockId b = 0; b < caller.num_blocks() && !found; ++b) {
      for (const Instr& in : caller.block(b).instrs) {
        if (in.op == Opcode::Call) {
          const Function* callee = module.find_function(in.callee);
          TTSC_ASSERT(callee != nullptr, "call to unknown function " + in.callee);
          if (callee == &caller) throw Error("inline_all: direct recursion in " + root);
          found = inline_one(caller, *callee);
          TTSC_ASSERT(found, "inline_one failed to find the call it was given");
          break;
        }
      }
    }
    if (!found) {
      ir::verify(caller);
      return;
    }
  }
  throw Error("inline_all: iteration limit exceeded (recursive call graph?) in " + root);
}

}  // namespace ttsc::opt
