// Loop-invariant code motion over the non-SSA IR.
//
// Legality here is stricter than in SSA form: hoisting the single loop
// definition of vreg d to a preheader is safe when
//   * the instruction is pure,
//   * d has exactly one definition inside the loop,
//   * every operand is a literal or defined only outside the loop (or is
//     itself an already-hoisted invariant),
//   * d is not live-in at the loop header (no use of the previous-iteration
//     or pre-loop value), and
//   * the defining block dominates every latch, every in-loop use and every
//     loop exit block (so observable values are unchanged on all paths).
#include <map>
#include <set>

#include "ir/analysis.hpp"
#include "opt/passes.hpp"

namespace ttsc::opt {

using namespace ir;

namespace {

/// Create (or find) a preheader: the unique block outside the loop that
/// jumps unconditionally to the header, receiving all non-latch edges.
/// Returns kInvalidBlock when the header is the function entry (no edge to
/// redirect would exist).
BlockId make_preheader(Function& func, const Loop& loop) {
  if (loop.header == Function::kEntry) return kInvalidBlock;
  const Cfg cfg(func);
  std::vector<BlockId> outside_preds;
  for (BlockId p : cfg.preds(loop.header)) {
    if (!loop.contains(p)) outside_preds.push_back(p);
  }
  if (outside_preds.empty()) return kInvalidBlock;
  // Reuse an existing dedicated preheader.
  if (outside_preds.size() == 1) {
    const Block& candidate = func.block(outside_preds[0]);
    if (candidate.terminator().op == Opcode::Jump && cfg.succs(outside_preds[0]).size() == 1) {
      return outside_preds[0];
    }
  }
  const BlockId ph = func.add_block(func.block(loop.header).name + ".preheader");
  {
    Instr jmp;
    jmp.op = Opcode::Jump;
    jmp.targets = {loop.header};
    func.block(ph).instrs.push_back(std::move(jmp));
  }
  for (BlockId p : outside_preds) {
    for (BlockId& t : func.block(p).terminator().targets) {
      if (t == loop.header) t = ph;
    }
  }
  return ph;
}

}  // namespace

bool hoist_loop_invariants(Function& func) {
  bool changed = false;
  // Loops are recomputed after each loop's processing because preheader
  // insertion renumbers nothing but adds blocks.
  const Cfg cfg0(func);
  const Dominators dom0(func, cfg0);
  std::vector<Loop> loops = find_loops(func, cfg0, dom0);

  for (const Loop& loop : loops) {
    const Cfg cfg(func);
    const Dominators dom(func, cfg);
    const Liveness live(func, cfg);

    // Count in-loop definitions per vreg.
    std::map<std::uint32_t, int> def_count;
    for (BlockId b : loop.blocks) {
      if (b >= func.num_blocks()) continue;
      for (const Instr& in : func.block(b).instrs) {
        if (in.dst.valid()) ++def_count[in.dst.id];
      }
    }

    // Blocks with an edge out of the loop.
    std::vector<BlockId> exit_blocks;
    for (BlockId b : loop.blocks) {
      for (BlockId s : cfg.succs(b)) {
        if (!loop.contains(s)) {
          exit_blocks.push_back(b);
          break;
        }
      }
    }

    // Use blocks per vreg (inside loop only).
    std::map<std::uint32_t, std::vector<BlockId>> use_blocks;
    for (BlockId b : loop.blocks) {
      for (const Instr& in : func.block(b).instrs) {
        for (Vreg u : uses_of(in)) use_blocks[u.id].push_back(b);
      }
    }

    std::set<std::uint32_t> hoisted;  // vregs whose defs moved to preheader
    BlockId preheader = kInvalidBlock;

    bool progress = true;
    while (progress) {
      progress = false;
      for (BlockId b : loop.blocks) {
        Block& block = func.block(b);
        for (std::size_t i = 0; i < block.instrs.size(); ++i) {
          const Instr& in = block.instrs[i];
          if (!is_pure(in.op) || !in.dst.valid()) continue;
          if (def_count[in.dst.id] != 1) continue;
          if (live.live_in(loop.header)[in.dst.id]) continue;
          if (hoisted.count(in.dst.id)) continue;

          bool invariant = true;
          for (const Operand& opnd : in.inputs) {
            if (!opnd.is_reg()) continue;
            const bool defined_in_loop = def_count.count(opnd.reg.id) != 0 &&
                                         def_count[opnd.reg.id] > 0;
            if (defined_in_loop && !hoisted.count(opnd.reg.id)) {
              invariant = false;
              break;
            }
          }
          if (!invariant) continue;

          // Dominance conditions.
          bool dominates_all = true;
          for (BlockId l : loop.latches) dominates_all &= dom.dominates(b, l);
          for (BlockId e : exit_blocks) dominates_all &= dom.dominates(b, e);
          for (BlockId u : use_blocks[in.dst.id]) {
            if (u == b) continue;  // same-block order checked below
            dominates_all &= dom.dominates(b, u);
          }
          if (!dominates_all) continue;
          // Same-block uses must come after the def.
          bool use_before_def = false;
          for (std::size_t j = 0; j < i; ++j) {
            for (Vreg u : uses_of(block.instrs[j])) {
              if (u == in.dst) use_before_def = true;
            }
          }
          if (use_before_def) continue;

          if (preheader == kInvalidBlock) {
            preheader = make_preheader(func, loop);
            if (preheader == kInvalidBlock) goto next_loop;
          }
          // Move the instruction before the preheader's jump.
          Block& ph = func.block(preheader);
          ph.instrs.insert(ph.instrs.end() - 1, in);
          hoisted.insert(in.dst.id);
          def_count[in.dst.id] = 0;
          block.instrs.erase(block.instrs.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          progress = true;
          --i;
        }
      }
    }
  next_loop:;
  }
  return changed;
}

}  // namespace ttsc::opt
