// CFG cleanup: constant branches, jump threading, unreachable-block removal
// and straight-line merging. Keeps block ids dense (renumbers).
#include <map>

#include "ir/analysis.hpp"
#include "opt/passes.hpp"

namespace ttsc::opt {

using namespace ir;

namespace {

/// Redirect all branch targets according to `redirect` (applied transitively
/// by the caller).
void retarget(Function& func, const std::map<BlockId, BlockId>& redirect) {
  for (Block& block : func.blocks()) {
    for (BlockId& t : block.terminator().targets) {
      auto it = redirect.find(t);
      if (it != redirect.end()) t = it->second;
    }
  }
}

/// Remove blocks not reachable from entry; renumber the rest.
bool remove_unreachable(Function& func) {
  const Cfg cfg(func);
  bool any_unreachable = false;
  for (BlockId b = 0; b < func.num_blocks(); ++b) {
    if (!cfg.reachable(b)) {
      any_unreachable = true;
      break;
    }
  }
  if (!any_unreachable) return false;

  std::vector<Block> kept;
  std::map<BlockId, BlockId> remap;
  for (BlockId b = 0; b < func.num_blocks(); ++b) {
    if (cfg.reachable(b)) {
      remap[b] = static_cast<BlockId>(kept.size());
      kept.push_back(std::move(func.block(b)));
    }
  }
  for (Block& block : kept) {
    for (BlockId& t : block.terminator().targets) t = remap.at(t);
  }
  func.blocks() = std::move(kept);
  return true;
}

}  // namespace

bool simplify_cfg(Function& func) {
  bool changed = false;

  // 1. bnz with identical targets -> jump.
  for (Block& block : func.blocks()) {
    Instr& term = block.terminator();
    if (term.op == Opcode::Bnz && term.targets[0] == term.targets[1]) {
      term.op = Opcode::Jump;
      term.inputs.clear();
      term.targets = {term.targets[0]};
      changed = true;
    }
  }

  // 2. Jump threading: a block that contains only `jump T` can be bypassed.
  {
    std::map<BlockId, BlockId> redirect;
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      const Block& block = func.block(b);
      if (b != Function::kEntry && block.instrs.size() == 1 &&
          block.instrs[0].op == Opcode::Jump && block.instrs[0].targets[0] != b) {
        redirect[b] = block.instrs[0].targets[0];
      }
    }
    // Resolve chains (a->b->c) with a cycle guard.
    for (auto& [from, to] : redirect) {
      BlockId t = to;
      for (int hops = 0; hops < 64; ++hops) {
        auto it = redirect.find(t);
        if (it == redirect.end() || it->second == from) break;
        t = it->second;
      }
      to = t;
    }
    if (!redirect.empty()) {
      retarget(func, redirect);
      changed = true;
    }
  }

  // 3. Remove unreachable blocks.
  changed |= remove_unreachable(func);

  // 4. Merge a block into its unique predecessor when that predecessor ends
  //    in an unconditional jump to it.
  {
    bool merged = true;
    while (merged) {
      merged = false;
      const Cfg cfg(func);
      for (BlockId b = 0; b < func.num_blocks(); ++b) {
        if (b == Function::kEntry) continue;
        const auto& preds = cfg.preds(b);
        if (preds.size() != 1) continue;
        const BlockId p = preds[0];
        if (p == b) continue;
        Block& pred = func.block(p);
        if (pred.terminator().op != Opcode::Jump) continue;
        // Splice b's instructions after p (dropping p's jump).
        Block& victim = func.block(b);
        pred.instrs.pop_back();
        pred.instrs.insert(pred.instrs.end(), victim.instrs.begin(), victim.instrs.end());
        victim.instrs.clear();
        // Leave the victim as an unreachable stub and clean it up below.
        Instr stub;
        stub.op = Opcode::Ret;
        victim.instrs.push_back(std::move(stub));
        merged = true;
        changed = true;
        break;  // CFG changed; recompute
      }
      if (merged) remove_unreachable(func);
    }
  }

  return changed;
}

}  // namespace ttsc::opt
