// If-conversion: small, side-effect-free branch diamonds/triangles are
// flattened into straight-line code with branch-free selects.
//
// TCE's code generator predicates short conditionals on the exposed
// datapath (guarded moves); the multi-issue backends (VLIW and TTA) call
// this pass to get the equivalent effect, while the scalar (MicroBlaze)
// pipeline keeps its branches — mirroring the compilers in the paper's
// experimental setup.
#include <map>

#include "ir/analysis.hpp"
#include "opt/passes.hpp"

namespace ttsc::opt {

using namespace ir;

namespace {

constexpr std::size_t kMaxSideOps = 10;

/// A side block is convertible when it is pure straight-line code: only
/// pure ops, ending in an unconditional jump.
bool convertible_side(const Block& block) {
  if (block.instrs.empty() || block.instrs.size() > kMaxSideOps + 1) return false;
  if (block.terminator().op != Opcode::Jump) return false;
  for (std::size_t i = 0; i + 1 < block.instrs.size(); ++i) {
    const Instr& in = block.instrs[i];
    if (!is_pure(in.op) || !in.dst.valid()) return false;
  }
  return true;
}

/// Clone `side`'s body into `out` with fresh destination registers,
/// returning the final renamed register for each original destination.
std::map<std::uint32_t, Vreg> clone_renamed(Function& f, const Block& side,
                                            std::vector<Instr>& out) {
  std::map<std::uint32_t, Vreg> rename;
  for (std::size_t i = 0; i + 1 < side.instrs.size(); ++i) {
    Instr copy = side.instrs[i];
    for (Operand& opnd : copy.inputs) {
      if (opnd.is_reg()) {
        auto it = rename.find(opnd.reg.id);
        if (it != rename.end()) opnd.reg = it->second;
      }
    }
    const Vreg fresh = f.new_vreg();
    rename[copy.dst.id] = fresh;
    copy.dst = fresh;
    out.push_back(std::move(copy));
  }
  return rename;
}

/// Append `merged = cond != 0 ? then_val : else_val` built from bitwise ops.
void emit_select(Function& f, std::vector<Instr>& out, Vreg cond_mask, Vreg dst, Operand then_val,
                 Operand else_val) {
  const Vreg then_masked = f.new_vreg();
  out.push_back(Instr(Opcode::And, then_masked, {then_val, Operand(cond_mask)}));
  const Vreg inv_mask = f.new_vreg();
  out.push_back(Instr(Opcode::Xor, inv_mask, {Operand(cond_mask), Operand(std::int64_t{-1})}));
  const Vreg else_masked = f.new_vreg();
  out.push_back(Instr(Opcode::And, else_masked, {else_val, Operand(inv_mask)}));
  out.push_back(Instr(Opcode::Ior, dst, {Operand(then_masked), Operand(else_masked)}));
}

bool if_convert_impl(Function& func, bool use_select_ops);

}  // namespace

bool if_convert(Function& func) { return if_convert_impl(func, false); }

bool if_convert_selects(Function& func) { return if_convert_impl(func, true); }

namespace {

bool if_convert_impl(Function& func, bool use_select_ops) {
  bool changed = false;
  for (int round = 0; round < 16; ++round) {
    const Cfg cfg(func);
    bool round_changed = false;
    for (BlockId b = 0; b < func.num_blocks() && !round_changed; ++b) {
      Block& head = func.block(b);
      Instr& term = head.terminator();
      if (term.op != Opcode::Bnz) continue;
      const BlockId t_taken = term.targets[0];
      const BlockId t_fall = term.targets[1];
      if (t_taken == t_fall || t_taken == b || t_fall == b) continue;

      auto is_side = [&](BlockId side, BlockId join) {
        return side != join && cfg.preds(side).size() == 1 &&
               convertible_side(func.block(side)) &&
               func.block(side).terminator().targets[0] == join;
      };

      // Triangle with the side on the taken edge, triangle on the
      // fallthrough edge, or a full diamond.
      BlockId then_side = kInvalidBlock;
      BlockId else_side = kInvalidBlock;
      BlockId join = kInvalidBlock;
      if (is_side(t_taken, t_fall)) {
        then_side = t_taken;
        join = t_fall;
      } else if (is_side(t_fall, t_taken)) {
        else_side = t_fall;
        join = t_taken;
      } else if (cfg.succs(t_taken).size() == 1 && is_side(t_taken, cfg.succs(t_taken)[0]) &&
                 is_side(t_fall, cfg.succs(t_taken)[0])) {
        then_side = t_taken;
        else_side = t_fall;
        join = cfg.succs(t_taken)[0];
      } else {
        continue;
      }
      // The join must not be a side block itself (loop headers are fine).
      if (join == b) continue;

      const Operand cond = term.inputs[0];
      std::vector<Instr> merged;

      // cond_mask = (cond != 0) ? ~0 : 0, built as eq(cond,0) - 1 (mask
      // expansion only; the Select form takes the condition directly).
      Vreg cond_mask;
      if (!use_select_ops) {
        const Vreg is_zero = func.new_vreg();
        merged.push_back(Instr(Opcode::Eq, is_zero, {cond, Operand(std::int64_t{0})}));
        cond_mask = func.new_vreg();
        merged.push_back(Instr(Opcode::Sub, cond_mask, {Operand(is_zero), Operand(std::int64_t{1})}));
      }

      std::map<std::uint32_t, Vreg> then_rename;
      std::map<std::uint32_t, Vreg> else_rename;
      if (then_side != kInvalidBlock) {
        then_rename = clone_renamed(func, func.block(then_side), merged);
      }
      if (else_side != kInvalidBlock) {
        else_rename = clone_renamed(func, func.block(else_side), merged);
      }

      // Merge every register defined on either side.
      std::map<std::uint32_t, std::pair<Operand, Operand>> merges;
      for (const auto& [orig, fresh] : then_rename) {
        merges[orig] = {Operand(fresh), Operand(Vreg(orig))};
      }
      for (const auto& [orig, fresh] : else_rename) {
        auto it = merges.find(orig);
        if (it != merges.end()) {
          it->second.second = Operand(fresh);
        } else {
          merges[orig] = {Operand(Vreg(orig)), Operand(fresh)};
        }
      }
      for (const auto& [orig, vals] : merges) {
        if (use_select_ops) {
          merged.push_back(Instr(Opcode::Select, Vreg(orig), {cond, vals.first, vals.second}));
        } else {
          emit_select(func, merged, cond_mask, Vreg(orig), vals.first, vals.second);
        }
      }

      // Replace the branch with the merged body + jump to the join.
      head.instrs.pop_back();
      for (Instr& in : merged) head.instrs.push_back(std::move(in));
      Instr jmp;
      jmp.op = Opcode::Jump;
      jmp.targets = {join};
      head.instrs.push_back(std::move(jmp));

      round_changed = true;
      changed = true;
    }
    if (!round_changed) break;
    simplify_cfg(func);
  }
  if (changed) {
    fold_constants(func);
    propagate_copies(func);
    eliminate_common_subexpressions(func);
    eliminate_dead_code(func);
    simplify_cfg(func);
  }
  return changed;
}

}  // namespace

}  // namespace ttsc::opt
