#include "opt/superblock.hpp"

#include <algorithm>

#include "ir/verify.hpp"

namespace ttsc::opt {

using ir::Block;
using ir::BlockId;
using ir::Function;
using ir::Instr;
using ir::Opcode;

namespace {

bool has_call(const Block& b) {
  for (const Instr& in : b.instrs) {
    if (in.op == Opcode::Call) return true;
  }
  return false;
}

/// Distinct successors of `b`'s terminator (Bnz with equal targets yields
/// one entry).
std::vector<BlockId> succs_of(const Block& b) {
  std::vector<BlockId> out;
  for (const BlockId t : b.terminator().targets) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

/// A free negation of comparison `def` feeding a Bnz's != 0 test, when one
/// exists: Eq(a,c) <-> Xor(a,c), Sub(a,c) -> Eq(a,c), and for a literal
/// operand Gt(a,L) -> Gt(L+1,a) / Gt(L,a) -> Gt(a,L-1) (likewise Gtu),
/// nudging the bound by one and swapping sides — all same-cost duals.
/// Returns false (leaving `def` untouched) when none applies.
bool negate_comparison(Instr& def, bool apply) {
  switch (def.op) {
    case Opcode::Eq:
      if (apply) def.op = Opcode::Xor;
      return true;
    case Opcode::Xor:
    case Opcode::Sub:
      if (apply) def.op = Opcode::Eq;
      return true;
    case Opcode::Gt:
    case Opcode::Gtu: {
      const bool is_signed = def.op == Opcode::Gt;
      // !(a > L)  ==  a <= L  ==  L+1 > a   (no overflow at the top bound)
      if (def.inputs[1].is_literal()) {
        const std::int64_t lit = def.inputs[1].imm.value;
        if (is_signed ? lit >= 0x7fffffffll : static_cast<std::uint32_t>(lit) == 0xffffffffu) {
          return false;
        }
        if (apply) {
          def.inputs[1] = def.inputs[0];
          def.inputs[0] = ir::Operand(is_signed ? lit + 1
                                                : static_cast<std::int64_t>(
                                                      static_cast<std::uint32_t>(lit) + 1));
        }
        return true;
      }
      // !(L > a)  ==  L <= a  ==  a > L-1   (no overflow at the bottom bound)
      if (def.inputs[0].is_literal()) {
        const std::int64_t lit = def.inputs[0].imm.value;
        if (is_signed ? lit <= static_cast<std::int64_t>(-0x80000000ll)
                      : static_cast<std::uint32_t>(lit) == 0) {
          return false;
        }
        if (apply) {
          def.inputs[0] = def.inputs[1];
          def.inputs[1] = ir::Operand(is_signed ? lit - 1
                                                : static_cast<std::int64_t>(
                                                      static_cast<std::uint32_t>(lit) - 1));
        }
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

/// The single comparison feeding `b`'s branch condition, eligible for an
/// in-place flip: defined in `b`, the branch is its only reader and it is
/// the condition vreg's only writer anywhere (the IR is not SSA, so a
/// flip must not change another observer). Null when no such def exists.
Instr* flippable_condition_def(Function& f, Block& b) {
  Instr& term = b.terminator();
  if (!term.inputs[0].is_reg()) return nullptr;
  const ir::Vreg cond = term.inputs[0].reg;
  Instr* def = nullptr;
  for (Instr& in : b.instrs) {
    if (&in != &term && in.has_dst() && in.dst == cond) def = &in;
  }
  if (def == nullptr) return nullptr;
  int uses = 0;
  int defs = 0;
  for (BlockId id = 0; id < f.num_blocks(); ++id) {
    for (const Instr& in : f.block(id).instrs) {
      if (in.has_dst() && in.dst == cond) ++defs;
      for (const ir::Operand& op : in.inputs) {
        if (op.is_reg() && op.reg == cond) ++uses;
      }
    }
  }
  if (uses != 1 || defs != 1) return nullptr;
  return def;
}

/// Invert `b`'s branch condition for free when possible (see
/// negate_comparison). Returns false when no free flip exists; the caller
/// then falls back to inserting `Eq cond, 0`.
bool flip_branch_condition(Function& f, Block& b) {
  Instr* def = flippable_condition_def(f, b);
  return def != nullptr && negate_comparison(*def, /*apply=*/true);
}

/// Would inverting `b`'s branch be free? Pure query used during trace
/// growth: a trace is not grown through a boundary whose inversion would
/// need an explicit `Eq cond, 0` — that negation executes on the hot path
/// every iteration and routinely costs more than merging wins.
bool can_invert_for_free(Function& f, Block& b) {
  Instr* def = flippable_condition_def(f, b);
  return def != nullptr && negate_comparison(*def, /*apply=*/false);
}

/// Predecessor sets over the whole function in its current state (clones
/// included), as target-edge sources with duplicates collapsed.
std::vector<std::vector<BlockId>> compute_preds(const Function& f) {
  std::vector<std::vector<BlockId>> preds(f.num_blocks());
  for (BlockId p = 0; p < f.num_blocks(); ++p) {
    for (const BlockId t : f.block(p).terminator().targets) {
      auto& list = preds[t];
      if (std::find(list.begin(), list.end(), p) == list.end()) list.push_back(p);
    }
  }
  return preds;
}

}  // namespace

SuperblockPlan form_superblocks(Function& func, const ProfileData& profile,
                                const SuperblockOptions& options) {
  SuperblockPlan plan;
  if (!options.superblocks || profile.empty() || func.num_blocks() < 2) return plan;

  const BlockId num_orig = func.num_blocks();

  // --- Trace selection on the unmodified function, hottest seeds first. ---
  std::vector<BlockId> seeds;
  for (BlockId b = 0; b < num_orig; ++b) {
    if (profile.block_count(b) >= options.min_count && !has_call(func.block(b))) seeds.push_back(b);
  }
  std::sort(seeds.begin(), seeds.end(), [&](BlockId a, BlockId b) {
    const std::uint64_t ca = profile.block_count(a);
    const std::uint64_t cb = profile.block_count(b);
    return ca != cb ? ca > cb : a < b;
  });

  std::vector<bool> in_trace(num_orig, false);
  std::vector<std::vector<BlockId>> selected;
  for (const BlockId seed : seeds) {
    if (in_trace[seed]) continue;
    std::vector<BlockId> trace{seed};
    BlockId cur = seed;
    while (trace.size() < options.max_trace_len) {
      const Instr& term = func.block(cur).terminator();
      if (term.op == Opcode::Ret) break;
      // An equal-target Bnz cannot be given a fallthrough by inversion.
      if (term.op == Opcode::Bnz && term.targets[0] == term.targets[1]) break;
      const std::vector<BlockId> succs = succs_of(func.block(cur));
      std::uint64_t total = 0;
      for (const BlockId s : succs) total += profile.edge_count(cur, s);
      if (total == 0) break;
      // Most-likely successor; ties prefer the existing fallthrough, then
      // the smaller id (deterministic).
      BlockId best = ir::kInvalidBlock;
      std::uint64_t best_count = 0;
      const BlockId fallthrough =
          term.op == Opcode::Bnz ? term.targets[1] : term.targets[0];
      for (const BlockId s : succs) {
        const std::uint64_t c = profile.edge_count(cur, s);
        const bool wins = best == ir::kInvalidBlock || c > best_count ||
                          (c == best_count && s == fallthrough && best != fallthrough) ||
                          (c == best_count && best != fallthrough && s < best);
        if (wins) {
          best = s;
          best_count = c;
        }
      }
      if (static_cast<double>(best_count) < options.bias * static_cast<double>(total)) break;
      if (best == Function::kEntry || best == cur || in_trace[best]) break;
      if (std::find(trace.begin(), trace.end(), best) != trace.end()) break;  // stay acyclic
      if (profile.block_count(best) < options.min_count) break;
      if (has_call(func.block(best))) break;
      // Growing through the taken edge needs a branch inversion; only do it
      // when the inversion is free (comparison flip), never via an Eq
      // negation on the hot path.
      if (term.op == Opcode::Bnz && best == term.targets[0] && best != term.targets[1] &&
          !can_invert_for_free(func, func.block(cur))) {
        break;
      }
      trace.push_back(best);
      cur = best;
    }
    if (trace.size() < 2) continue;
    for (const BlockId b : trace) in_trace[b] = true;
    selected.push_back(std::move(trace));
  }
  if (selected.empty()) return plan;

  // --- Commit traces one at a time: tail-duplicate side entrances, then
  // invert branches so every on-trace successor is the fallthrough. ---
  std::uint64_t dup_budget_used = 0;
  std::vector<std::vector<BlockId>> committed;
  for (std::vector<BlockId>& trace : selected) {
    // First side entrance: an interior block with a predecessor other than
    // its on-trace predecessor (preds reflect earlier commits' redirects).
    const std::vector<std::vector<BlockId>> preds = compute_preds(func);
    std::size_t side = trace.size();
    for (std::size_t i = 1; i < trace.size(); ++i) {
      for (const BlockId p : preds[trace[i]]) {
        if (p != trace[i - 1]) {
          side = i;
          break;
        }
      }
      if (side != trace.size()) break;
    }
    if (side != trace.size()) {
      std::uint64_t suffix_instrs = 0;
      for (std::size_t j = side; j < trace.size(); ++j) {
        suffix_instrs += func.block(trace[j]).instrs.size();
      }
      if (dup_budget_used + suffix_instrs > options.tail_dup_budget) {
        // Over budget: keep the trace only up to the side entrance.
        trace.resize(side);
        if (trace.size() < 2) continue;
        side = trace.size();  // no duplication
      }
    }

    // Invert interior Bnz branches whose taken target is the next trace
    // block: `t = Eq cond, 0; Bnz t, side` makes the on-trace successor the
    // fallthrough. Done before cloning so clones carry the inverted form.
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
      Block& a = func.block(trace[i]);
      Instr& term = a.terminator();
      if (term.op == Opcode::Jump) {
        TTSC_ASSERT(term.targets[0] == trace[i + 1], "trace successor mismatch");
        continue;
      }
      TTSC_ASSERT(term.op == Opcode::Bnz, "trace block lacks a branch terminator");
      if (term.targets[1] == trace[i + 1]) continue;
      TTSC_ASSERT(term.targets[0] == trace[i + 1], "trace successor mismatch");
      std::swap(term.targets[0], term.targets[1]);
      // Prefer flipping the comparison that feeds the branch (free); only
      // fall back to an explicit negation when no free flip exists — the
      // extra Eq rides the hot path every iteration.
      if (!flip_branch_condition(func, a)) {
        Instr negate(Opcode::Eq, func.new_vreg(), {a.terminator().inputs[0], ir::Operand(0)});
        a.terminator().inputs[0] = ir::Operand(negate.dst);
        a.instrs.insert(a.instrs.end() - 1, std::move(negate));
      }
    }

    if (side != trace.size()) {
      // Tail-duplicate the suffix from the first side entrance and redirect
      // every predecessor except the on-trace one to the clones. The clones
      // are ordinary blocks (scheduled per-block): the compensation code.
      std::vector<BlockId> clone_of(trace.size(), ir::kInvalidBlock);
      for (std::size_t j = side; j < trace.size(); ++j) {
        const BlockId c = func.add_block(func.block(trace[j]).name + ".tail");
        func.block(c).instrs = func.block(trace[j]).instrs;
        clone_of[j] = c;
        plan.tail_dup_instrs += func.block(c).instrs.size();
        dup_budget_used += func.block(c).instrs.size();
      }
      for (BlockId p = 0; p < func.num_blocks(); ++p) {
        for (BlockId& t : func.block(p).terminator().targets) {
          for (std::size_t j = side; j < trace.size(); ++j) {
            if (t == trace[j] && p != trace[j - 1]) t = clone_of[j];
          }
        }
      }
    }
    committed.push_back(std::move(trace));
  }
  if (committed.empty()) return plan;

  // --- Merge unconditional interior boundaries: after duplication the next
  // trace block has a single predecessor, so a Jump boundary is a plain
  // straight-line merge. Remaining boundaries all carry Bnz side exits. ---
  std::vector<bool> dead(func.num_blocks(), false);
  for (std::vector<BlockId>& trace : committed) {
    std::vector<BlockId> survivors{trace[0]};
    for (std::size_t i = 1; i < trace.size(); ++i) {
      Block& prev = func.block(survivors.back());
      if (prev.terminator().op == Opcode::Jump) {
        TTSC_ASSERT(prev.terminator().targets[0] == trace[i], "trace successor mismatch");
        prev.instrs.pop_back();
        Block& b = func.block(trace[i]);
        prev.instrs.insert(prev.instrs.end(), std::make_move_iterator(b.instrs.begin()),
                           std::make_move_iterator(b.instrs.end()));
        b.instrs.clear();
        dead[trace[i]] = true;
      } else {
        survivors.push_back(trace[i]);
      }
    }
    trace = std::move(survivors);
  }

  // --- Relayout: traces become contiguous runs; everything else (clones
  // included) keeps its relative order. The entry block stays first. ---
  std::vector<int> trace_pos(func.num_blocks(), -1);  // >0 = interior
  for (std::size_t t = 0; t < committed.size(); ++t) {
    for (std::size_t i = 0; i < committed[t].size(); ++i) {
      trace_pos[committed[t][i]] = static_cast<int>(i);
    }
  }
  std::vector<BlockId> order;
  std::vector<BlockId> remap(func.num_blocks(), ir::kInvalidBlock);
  auto emit = [&](BlockId b) {
    remap[b] = static_cast<BlockId>(order.size());
    order.push_back(b);
  };
  for (BlockId b = 0; b < func.num_blocks(); ++b) {
    if (dead[b] || trace_pos[b] > 0) continue;
    if (trace_pos[b] == 0) {
      for (const auto& trace : committed) {
        if (trace[0] == b) {
          for (const BlockId m : trace) emit(m);
          break;
        }
      }
    } else {
      emit(b);
    }
  }
  TTSC_ASSERT(remap[Function::kEntry] == 0, "entry block must stay first");

  std::vector<Block> new_blocks(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) new_blocks[i] = std::move(func.block(order[i]));
  for (Block& b : new_blocks) {
    for (BlockId& t : b.terminator().targets) {
      TTSC_ASSERT(remap[t] != ir::kInvalidBlock, "branch into a merged-away block");
      t = remap[t];
    }
  }
  func.blocks() = std::move(new_blocks);

  for (const auto& trace : committed) {
    plan.traces.push_back(SuperblockTrace{remap[trace[0]], static_cast<std::uint32_t>(trace.size())});
  }
  plan.formed = plan.traces.size();
  ir::verify(func);
  return plan;
}

}  // namespace ttsc::opt
