#include "opt/profile.hpp"

#include "obs/json.hpp"
#include "sim/collectors.hpp"

namespace ttsc::opt {

ProfileData ProfileData::from_collector(const sim::ProfileCollector& collector) {
  ProfileData data;
  data.block_counts = collector.block_counts();
  data.edge_counts = collector.edge_counts();
  return data;
}

std::string ProfileData::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("blocks");
  w.begin_array();
  for (const std::uint64_t n : block_counts) w.value(n);
  w.end_array();
  w.key("edges");
  w.begin_array();
  for (const auto& [edge, n] : edge_counts) {
    w.begin_array();
    w.value(static_cast<std::uint64_t>(edge.first));
    w.value(static_cast<std::uint64_t>(edge.second));
    w.value(n);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

ProfileData ProfileData::from_json(const std::string& text) {
  const obs::JsonValue doc = obs::parse_json(text);
  ProfileData data;
  for (const obs::JsonValue& n : doc.at("blocks").items) {
    data.block_counts.push_back(n.as_uint());
  }
  for (const obs::JsonValue& e : doc.at("edges").items) {
    if (e.items.size() != 3) throw Error("profile edge entry needs [from, to, count]");
    data.edge_counts[{static_cast<std::uint32_t>(e.items[0].as_uint()),
                      static_cast<std::uint32_t>(e.items[1].as_uint())}] = e.items[2].as_uint();
  }
  return data;
}

}  // namespace ttsc::opt
