// Execution profiles for profile-guided optimization.
//
// ProfileData carries per-block execution frequencies and taken
// control-flow edge counts for one IR function, keyed by block id. It is
// produced from a sim::ProfileCollector attached to a profiling run
// (sim::ExecObserver::on_block_enter events) and consumed by superblock
// formation (opt/superblock.hpp). The data serializes to JSON so a
// profiling run can feed a later recompile — block ids are only meaningful
// against the exact IR the profile was gathered on, so the two-phase driver
// (report::compile_and_run_prebuilt) re-derives the same per-machine module
// before applying it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ttsc::sim {
class ProfileCollector;
}

namespace ttsc::opt {

struct ProfileData {
  /// Execution count per block id; blocks past the end count as zero.
  std::vector<std::uint64_t> block_counts;
  /// Count per observed (from, to) block transition.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edge_counts;

  bool empty() const { return block_counts.empty(); }

  std::uint64_t block_count(std::uint32_t block) const {
    return block < block_counts.size() ? block_counts[block] : 0;
  }

  std::uint64_t edge_count(std::uint32_t from, std::uint32_t to) const {
    const auto it = edge_counts.find({from, to});
    return it != edge_counts.end() ? it->second : 0;
  }

  /// Snapshot a profiling run's collector.
  static ProfileData from_collector(const sim::ProfileCollector& collector);

  /// Deterministic JSON form ({"blocks": [...], "edges": [[from, to, n]...]}).
  std::string to_json() const;
  /// Inverse of to_json. Throws ttsc::Error on malformed input.
  static ProfileData from_json(const std::string& text);

  bool operator==(const ProfileData&) const = default;
};

}  // namespace ttsc::opt
