// Operation-triggered VLIW backend.
//
// The scheduler is a DDG-driven list scheduler with the paper's VLIW
// constraints: operations issue atomically into issue slots, all register
// operands are read from the RF in the issue cycle (counting read ports),
// results are written back `latency` cycles later (counting write ports)
// and become readable one cycle after that — the paper's VLIW RTL has no
// forwarding network (Section V-B), which is exactly the +1 the TTA model
// saves by software bypassing. Control transfers expose
// machine.delay_slots delay slots which the scheduler fills.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "codegen/lower.hpp"
#include "ir/memory.hpp"
#include "mach/machine.hpp"
#include "sim/observer.hpp"

namespace ttsc::sim {
struct PredecodedVliw;
}

namespace ttsc::opt {
struct SuperblockPlan;
}

namespace ttsc::vliw {

struct SlotOp {
  codegen::MInstr instr;
  int fu = -1;
};

struct Bundle {
  std::vector<std::optional<SlotOp>> slots;  // one entry per issue slot
};

struct VliwProgram {
  std::vector<Bundle> bundles;
  std::vector<std::uint32_t> block_entry;  // block -> first bundle index
  int num_slots = 0;
  /// Static empty-slot cause per bundle (one prof::Cause byte per pc),
  /// recorded by the scheduler: why this issue cycle was not (fully) used.
  /// Empty for hand-built programs; the profiler then falls back to
  /// Dep/Frontend defaults.
  std::vector<std::uint8_t> stall_cause;

  std::uint64_t num_bundles() const { return bundles.size(); }
};

/// Signed short-immediate width of a VLIW slot's source fields; a wider
/// immediate spreads over one additional (otherwise idle) issue slot.
inline constexpr int kVliwSimmBits = 8;

/// Whether `in` carries an immediate operand too wide for the slot's
/// short-immediate field (branch targets are label fields, never wide).
bool needs_wide_imm(const codegen::MInstr& in);

struct ScheduleStats {
  std::uint64_t bundles = 0;
  std::uint64_t ops = 0;
  double fill_rate = 0.0;  // scheduled ops / (bundles * slots)

  // Scheduling-failure reasons (filled by schedule_tta-style list
  // scheduling, i.e. only when schedule_vliw collects stats): one count per
  // placement attempt rejected at a probed cycle before the op moved to a
  // later cycle.
  std::uint64_t fail_rf_read_port = 0;   // RF read ports exhausted
  std::uint64_t fail_rf_write_port = 0;  // RF write port exhausted at commit
  std::uint64_t fail_no_slot = 0;        // no free issue slot with a capable FU
  std::uint64_t fail_wide_imm = 0;       // wide immediate lacked a spare slot
};

/// Schedule `func` for the VLIW `machine`. Throws ttsc::Error when an
/// instruction cannot be mapped (missing FU). When given, `stats` receives
/// the schedule statistics (bundle/op counts, fill rate, failure reasons).
/// When `plan` is given (profile-guided superblock compile), each formed
/// trace is scheduled as one merged block whose interior branches become
/// side exits: every operation issued after a side exit stays past that
/// exit's delay slots, and all earlier write-backs commit inside them, so
/// the exit path observes exactly the per-block architectural state. A null
/// plan reproduces the per-block schedule exactly.
VliwProgram schedule_vliw(const codegen::MFunction& func, const mach::Machine& machine,
                          ScheduleStats* stats = nullptr,
                          const opt::SuperblockPlan* plan = nullptr);

ScheduleStats stats_of(const VliwProgram& program);

/// Instruction width in bits per the paper's manual VLIW encoding
/// (Section IV): per slot a 4-bit opcode, two source fields of
/// (register-address bits + 1 immediate-select bit) and a destination
/// register address; register addresses cover the machine's total register
/// count.
int instruction_bits(const mach::Machine& machine);

/// Program image bits: instruction width times bundle count (the VLIW has
/// no NOP compression, matching the paper's encoding).
std::uint64_t image_bits(const VliwProgram& program, const mach::Machine& machine);

struct ExecResult {
  /// Ok = the program returned; TimedOut = the cycle budget was exhausted
  /// and `cycles` holds the cycles actually executed; Trapped = the
  /// simulator failed closed on an illegal state and `trap` says why.
  sim::ExecStatus status = sim::ExecStatus::Ok;
  /// Valid when status == Trapped (default-initialized otherwise).
  sim::TrapInfo trap{};
  std::uint64_t cycles = 0;
  std::uint64_t ops = 0;   // non-nop operations executed
  std::uint32_t ret = 0;
  /// Architectural register state at halt (register files concatenated in
  /// machine order), for cycle-exact differential testing.
  std::vector<std::uint32_t> rf_state;

  bool timed_out() const { return status == sim::ExecStatus::TimedOut; }
  bool trapped() const { return status == sim::ExecStatus::Trapped; }
  bool operator==(const ExecResult&) const = default;
};

/// Human-readable listing of a scheduled bundle program.
std::string disassemble(const VliwProgram& program, const mach::Machine& machine);

/// Cycle-accurate bundle-stepping simulator. Models RF write-back latency
/// (a result is readable one cycle after its write-back commits), delayed
/// control transfer with delay-slot execution, and squashing of younger
/// control operations once a transfer is pending.
///
/// The default fast path executes a predecoded flat form
/// (sim/predecode.hpp); SimOptions{.fast_path = false} selects the original
/// interpretive reference loop, which produces bit-identical ExecResults.
class VliwSim {
 public:
  VliwSim(const VliwProgram& program, const mach::Machine& machine, ir::Memory& memory,
          sim::SimOptions options = {});
  ~VliwSim();

  /// Reuse an externally predecoded program (e.g. from report::ModuleCache)
  /// instead of predecoding on first run.
  void use_predecoded(std::shared_ptr<const sim::PredecodedVliw> predecoded);

  ExecResult run(std::uint64_t max_cycles = 2'000'000'000ull);

 private:
  template <bool kObserve, bool kHarden, bool kProfile>
  ExecResult run_fast(std::uint64_t max_cycles);
  ExecResult run_reference(std::uint64_t max_cycles);

  const VliwProgram& program_;
  const mach::Machine& machine_;
  ir::Memory& mem_;
  sim::SimOptions options_;
  std::shared_ptr<const sim::PredecodedVliw> predecoded_;
};

}  // namespace ttsc::vliw
