// Cycle-accurate VLIW bundle-stepping simulator.
//
// Two implementations of the same semantics live here:
//  * run_reference — the original interpretive loop over VliwProgram,
//    selected by SimOptions{.fast_path = false}; the differential baseline.
//  * run_fast<kObserve> — executes the predecoded flat form
//    (sim/predecode.hpp): no per-cycle FU-latency scans, registers in one
//    flat array, and the write-back priority queue replaced by a circular
//    buffer of per-cycle FIFO lists (append order reproduces the reference
//    queue's commit-sequence tie-break). Instantiated with and without
//    observer dispatch so a null observer is free.
// The two paths are locked together cycle-for-cycle by the differential
// suite in tests/property_test.cpp.
#include <queue>

#include "sim/fault.hpp"
#include "sim/harden.hpp"
#include "sim/predecode.hpp"
#include "sim/protect.hpp"
#include "support/bits.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::vliw {

using codegen::MInstr;
using codegen::MOperand;
using ir::Opcode;

VliwSim::VliwSim(const VliwProgram& program, const mach::Machine& machine, ir::Memory& memory,
                 sim::SimOptions options)
    : program_(program), machine_(machine), mem_(memory), options_(options) {}

VliwSim::~VliwSim() = default;

void VliwSim::use_predecoded(std::shared_ptr<const sim::PredecodedVliw> predecoded) {
  predecoded_ = std::move(predecoded);
}

namespace {

int latency_of(const mach::Machine& m, Opcode op) {
  if (op == Opcode::MovI || op == Opcode::Copy) return 1;
  const int fu = m.fu_for(op);
  TTSC_ASSERT(fu >= 0, "no FU for opcode in simulator");
  return m.fus[static_cast<std::size_t>(fu)].latency(op);
}

struct PendingWrite {
  std::uint64_t visible_at;
  mach::PhysReg reg;
  std::uint32_t value;
  std::uint64_t seq;  // commit order tie-break
  bool operator>(const PendingWrite& o) const {
    return visible_at != o.visible_at ? visible_at > o.visible_at : seq > o.seq;
  }
};

}  // namespace

ExecResult VliwSim::run(std::uint64_t max_cycles) {
  if (!options_.fast_path) return run_reference(max_cycles);
  if (predecoded_ == nullptr) {
    predecoded_ = std::make_shared<const sim::PredecodedVliw>(sim::predecode(program_, machine_));
  }
  const bool harden =
      options_.harden || options_.faults != nullptr || options_.protect != nullptr;
  if (options_.profile != nullptr) {
    if (options_.observer != nullptr) {
      return harden ? run_fast<true, true, true>(max_cycles)
                    : run_fast<true, false, true>(max_cycles);
    }
    return harden ? run_fast<false, true, true>(max_cycles)
                  : run_fast<false, false, true>(max_cycles);
  }
  if (options_.observer != nullptr) {
    return harden ? run_fast<true, true, false>(max_cycles)
                  : run_fast<true, false, false>(max_cycles);
  }
  return harden ? run_fast<false, true, false>(max_cycles)
                : run_fast<false, false, false>(max_cycles);
}

template <bool kObserve, bool kHarden, bool kProfile>
ExecResult VliwSim::run_fast(std::uint64_t max_cycles) {
  using sim::VliwPOp;
  const sim::PredecodedVliw& pre = *predecoded_;
  sim::ExecObserver* const obs = options_.observer;
  sim::ProfileCounts* const prof = options_.profile;
  const std::uint64_t ring = static_cast<std::uint64_t>(pre.ring);
  const std::size_t num_bundles = pre.num_bundles();

  // All run state is allocated up front; the cycle loop only appends to
  // preallocated ring lists (amortized allocation-free).
  std::vector<std::uint32_t> regs(pre.rf_slots, 0u);
  struct Write {
    std::uint32_t slot;
    std::uint32_t value;
    std::int16_t rf;
    std::int16_t reg;
  };
  // Write-back ring: writes issued at `cycle` with latency L land in the
  // list for cycle + L + 1 (readable one cycle after write-back). Ring size
  // max latency + 2 makes wraparound collisions impossible; FIFO order
  // within a list reproduces the reference queue's seq tie-break (pushes
  // arrive in issue order). Flat fixed-capacity rows: a row can accumulate
  // one write per issue slot from up to `ring` distinct issue cycles.
  const std::size_t row_cap = static_cast<std::size_t>(program_.num_slots) * ring;
  std::vector<Write> wb(ring * row_cap);
  std::vector<std::uint32_t> wb_count(ring, 0u);

  ExecResult result;
  std::uint64_t cycle = 0;
  std::size_t pc = 0;
  int transfer_in = -1;
  std::size_t transfer_target = 0;
  [[maybe_unused]] std::uint32_t last_arch = 0;

  auto capture_state = [&] {
    if constexpr (kProfile) {
      // Writes still in the ring at halt were issued but never committed —
      // the one-time fill the derivation needs to truncate rf_writes.
      for (std::size_t r = 0; r < ring; ++r) {
        const Write* const row = &wb[r * row_cap];
        for (std::uint32_t i = 0; i < wb_count[r]; ++i) {
          ++prof->uncommitted_rf_writes[static_cast<std::size_t>(row[i].rf)];
        }
      }
      prof->final_pc = last_arch;
      prof->end_pc = static_cast<std::uint32_t>(pc);
      prof->end_transfer_in = transfer_in;
      prof->end_transfer_target =
          transfer_in >= 0 ? static_cast<std::int32_t>(transfer_target) : -1;
    }
    result.rf_state = regs;
  };

  auto set_trap = [&](sim::TrapReason reason, int unit, std::uint32_t detail) {
    result.status = sim::ExecStatus::Trapped;
    result.trap = sim::TrapInfo{reason, cycle, unit, detail};
    result.cycles = cycle;
    capture_state();
  };

  // SEU state faults (sim/fault.hpp), applied at the top of their cycle.
  // Only RfBit faults target VLIW state (no exposed bypass/guard registers).
  [[maybe_unused]] const sim::StateFault* fault_next = nullptr;
  [[maybe_unused]] const sim::StateFault* fault_end = nullptr;
  if (options_.faults != nullptr) {
    fault_next = options_.faults->faults.data();
    fault_end = fault_next + options_.faults->faults.size();
  }
  // Declared protection semantics (sim/protect.hpp); null when unprotected.
  [[maybe_unused]] sim::ProtectState* const prot = options_.protect;
  [[maybe_unused]] auto apply_fault = [&](const sim::StateFault& f) {
    if (f.kind != sim::FaultKind::RfBit) return;
    if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= machine_.rfs.size()) return;
    if (f.index < 0 || f.index >= machine_.rfs[static_cast<std::size_t>(f.unit)].size) return;
    const std::uint32_t slot =
        pre.rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index);
    const std::uint32_t mask = sim::fault_mask(f);
    if (prot != nullptr) prot->on_rf_flip(slot, mask);
    regs[slot] ^= mask;
  };

  // Block-entry lookup for on_block_enter: entry pc -> block id, last block
  // wins when empty blocks share a pc. Only built when observing.
  std::vector<std::int32_t> entry_of;
  if constexpr (kObserve) {
    entry_of.assign(num_bundles, -1);
    for (std::size_t b = 0; b < program_.block_entry.size(); ++b) {
      const std::size_t entry = program_.block_entry[b];
      if (entry < num_bundles) entry_of[entry] = static_cast<std::int32_t>(b);
    }
  }

  std::size_t wb_idx = 0;
  while (cycle < max_cycles) {
    // State faults land between cycles, before write-back commits.
    if constexpr (kHarden) {
      while (fault_next != fault_end && fault_next->cycle <= cycle) {
        apply_fault(*fault_next);
        ++fault_next;
      }
    }
    // Writes committed in earlier cycles become visible before this cycle's
    // reads (readable one cycle after write-back).
    if (wb_count[wb_idx] != 0) {
      Write* const commits = &wb[wb_idx * row_cap];
      const std::uint32_t n = wb_count[wb_idx];
      for (std::uint32_t i = 0; i < n; ++i) {
        const Write& w = commits[i];
        regs[w.slot] = w.value;
        if constexpr (kHarden) {
          if (prot != nullptr) prot->clear_rf(w.slot);
        }
        if constexpr (kObserve) obs->on_rf_write(cycle, w.rf, w.reg, w.value);
      }
      wb_count[wb_idx] = 0;
    }

    if (pc >= num_bundles && transfer_in < 0) {
      // The PC ran off the end with no transfer pending: fail closed.
      set_trap(sim::TrapReason::PcOutOfRange, -1, static_cast<std::uint32_t>(pc));
      return result;
    }
    if (pc < num_bundles) {
      if constexpr (kHarden) {
        // Protected imem: scrub or detect the bundle's codeword at fetch.
        if (prot != nullptr &&
            prot->check_imem_fetch(static_cast<std::uint32_t>(pc)) ==
                sim::ProtectState::ImemAction::Detected) {
          set_trap(sim::TrapReason::ProtectionDetected, -1, static_cast<std::uint32_t>(pc));
          return result;
        }
      }
      if constexpr (kObserve) {
        // Only architectural block entries (not delay-slot shadows); see
        // the TTA fast loop.
        const std::int32_t blk = transfer_in < 0 ? entry_of[pc] : -1;
        if (blk >= 0) obs->on_block_enter(cycle, static_cast<std::uint32_t>(blk));
        obs->on_exec(cycle, static_cast<std::uint32_t>(pc), transfer_in >= 0);
      }
      if constexpr (kProfile) {
        // Register-only: derive_profile reconstructs the per-pc execution
        // counts from the taken-transfer counters, so the hot loop touches
        // no profile memory per cycle.
        if (transfer_in < 0) last_arch = static_cast<std::uint32_t>(pc);
      }
      const std::uint32_t begin = pre.bundle_begin[pc];
      const std::uint32_t end = pre.bundle_begin[pc + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        const VliwPOp& op = pre.ops[i];
        // A resolved transfer squashes younger control ops in its shadow.
        if (op.is_control && transfer_in >= 0) continue;
        // Fail-closed: an illegal op (decode-time trap marker) traps when
        // it issues; the transfer shadow squashed it above.
        if (op.trap != 0) {
          set_trap(static_cast<sim::TrapReason>(op.trap - 1), op.fu, op.trap_detail);
          return result;
        }
        ++result.ops;

        std::uint32_t a = op.a_val;
        std::uint32_t b = op.b_val;
        if (!op.a_imm) {
          if constexpr (kHarden) {
            if (prot != nullptr && prot->check_rf_read(op.a_slot, &regs[op.a_slot])) {
              set_trap(sim::TrapReason::ProtectionDetected, -1, op.a_slot);
              return result;
            }
          }
          a = regs[op.a_slot];
          if constexpr (kObserve) obs->on_rf_read(cycle, op.a_rf, op.a_reg);
        }
        if (!op.b_imm) {
          if constexpr (kHarden) {
            if (prot != nullptr && prot->check_rf_read(op.b_slot, &regs[op.b_slot])) {
              set_trap(sim::TrapReason::ProtectionDetected, -1, op.b_slot);
              return result;
            }
          }
          b = regs[op.b_slot];
          if constexpr (kObserve) obs->on_rf_read(cycle, op.b_rf, op.b_reg);
        }
        if constexpr (kHarden) {
          // `a` is the address of every memory operation.
          if (ir::is_memory(op.op) && !sim::mem_in_bounds(op.op, a, mem_.size())) {
            set_trap(sim::TrapReason::MemoryOutOfRange, op.fu, a);
            return result;
          }
        }
        if constexpr (kObserve) obs->on_trigger(cycle, op.fu, op.op);

        std::uint32_t value = 0;
        switch (op.op) {
          case Opcode::Add: value = a + b; break;
          case Opcode::Sub: value = a - b; break;
          case Opcode::Mul: value = a * b; break;
          case Opcode::And: value = a & b; break;
          case Opcode::Ior: value = a | b; break;
          case Opcode::Xor: value = a ^ b; break;
          case Opcode::Shl: value = a << (b & 31); break;
          case Opcode::Shru: value = a >> (b & 31); break;
          case Opcode::Shr:
            value = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
            break;
          case Opcode::Eq: value = a == b ? 1 : 0; break;
          case Opcode::Gt:
            value = static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0;
            break;
          case Opcode::Gtu: value = a > b ? 1 : 0; break;
          case Opcode::Sxhw: value = static_cast<std::uint32_t>(sign_extend(a, 16)); break;
          case Opcode::Sxqw: value = static_cast<std::uint32_t>(sign_extend(a, 8)); break;
          case Opcode::MovI:
          case Opcode::Copy: value = a; break;
          case Opcode::Ldw: value = mem_.load32(a); break;
          case Opcode::Ldh:
            value = static_cast<std::uint32_t>(sign_extend(mem_.load16(a), 16));
            break;
          case Opcode::Ldhu: value = mem_.load16(a); break;
          case Opcode::Ldq:
            value = static_cast<std::uint32_t>(sign_extend(mem_.load8(a), 8));
            break;
          case Opcode::Ldqu: value = mem_.load8(a); break;
          case Opcode::Stw:
            mem_.store32(a, b);
            if constexpr (kObserve) obs->on_store(cycle, a, b, 4);
            break;
          case Opcode::Sth:
            mem_.store16(a, static_cast<std::uint16_t>(b));
            if constexpr (kObserve) obs->on_store(cycle, a, b & 0xffffu, 2);
            break;
          case Opcode::Stq:
            mem_.store8(a, static_cast<std::uint8_t>(b));
            if constexpr (kObserve) obs->on_store(cycle, a, b & 0xffu, 1);
            break;
          case Opcode::Jump:
            transfer_in = machine_.delay_slots;
            transfer_target = op.target_pc;
            if constexpr (kProfile) ++prof->taken[i];
            break;
          case Opcode::Bnz:
            if (a != 0) {
              transfer_in = machine_.delay_slots;
              transfer_target = op.target_pc;
              if constexpr (kProfile) ++prof->taken[i];
            }
            break;
          case Opcode::Ret:
            result.cycles = cycle + 1;
            result.ret = a;
            capture_state();
            return result;
          case Opcode::Call:
          case Opcode::Select:
            // Rejected by the fail-closed decode (sim/harden.hpp): a trap
            // marker fires above before the switch is reached.
            TTSC_UNREACHABLE("calls/selects are lowered before VLIW scheduling");
        }
        if (op.dst_slot >= 0) {
          std::size_t row = wb_idx + static_cast<std::size_t>(op.latency) + 1;
          if (row >= ring) row -= ring;  // latency + 1 < ring: one wrap at most
          wb[row * row_cap + wb_count[row]++] =
              Write{static_cast<std::uint32_t>(op.dst_slot), value, op.dst_rf, op.dst_reg};
        }
      }
    }

    ++cycle;
    if (++wb_idx == ring) wb_idx = 0;
    if (transfer_in >= 0) {
      if (transfer_in == 0) {
        pc = transfer_target;
        transfer_in = -1;
      } else {
        --transfer_in;
        ++pc;
      }
    } else {
      ++pc;
    }
  }
  result.status = sim::ExecStatus::TimedOut;
  result.cycles = max_cycles;
  capture_state();
  return result;
}

ExecResult VliwSim::run_reference(std::uint64_t max_cycles) {
  sim::ExecObserver* const obs = options_.observer;
  sim::ProfileCounts* const prof = options_.profile;
  // Flat program-order op indices over the filled slots, for the
  // taken-transfer counters — the same numbering the predecoded path gets
  // for free (predecode emits exactly one record per filled slot, trap
  // markers included).
  std::vector<std::uint32_t> op_begin;
  if (prof != nullptr) {
    op_begin.reserve(program_.bundles.size());
    std::uint32_t flat = 0;
    for (const Bundle& bun : program_.bundles) {
      op_begin.push_back(flat);
      for (const auto& slot : bun.slots) {
        if (slot.has_value()) ++flat;
      }
    }
  }
  std::vector<std::vector<std::uint32_t>> regs;
  // Flat-slot bases mirroring sim/predecode.hpp's rf_base numbering, so
  // protection poison keys agree byte-for-byte with the fast path.
  std::vector<std::uint32_t> rf_base;
  std::uint32_t rf_slots = 0;
  for (const mach::RegisterFile& rf : machine_.rfs) {
    regs.emplace_back(static_cast<std::size_t>(rf.size), 0u);
    rf_base.push_back(rf_slots);
    rf_slots += static_cast<std::uint32_t>(rf.size);
  }
  std::priority_queue<PendingWrite, std::vector<PendingWrite>, std::greater<>> pending;
  std::uint64_t seq = 0;
  sim::ProtectState* const prot = options_.protect;

  auto reg_ref = [&](mach::PhysReg r) -> std::uint32_t& {
    return regs[static_cast<std::size_t>(r.rf)][static_cast<std::size_t>(r.index)];
  };
  auto flat_slot = [&](mach::PhysReg r) {
    return rf_base[static_cast<std::size_t>(r.rf)] + static_cast<std::uint32_t>(r.index);
  };
  auto value_of = [&](const MOperand& s) -> std::uint32_t {
    return s.is_imm() ? static_cast<std::uint32_t>(s.imm) : reg_ref(s.reg);
  };
  // Protection read check for a register operand: true = detection (the
  // caller traps with detail = flat slot). SEC-DED scrubs in place first.
  auto check_read = [&](const MOperand& s) {
    return s.is_reg() && prot != nullptr && prot->check_rf_read(flat_slot(s.reg), &reg_ref(s.reg));
  };

  ExecResult result;
  std::uint64_t cycle = 0;
  std::size_t pc = 0;
  // Pending control transfer: counts down delay slots.
  int transfer_in = -1;
  std::size_t transfer_target = 0;
  std::uint32_t last_arch = 0;

  auto capture_state = [&] {
    if (prof != nullptr) {
      // Same one-time uncommitted-writes fill as the fast loop.
      auto pend = pending;
      while (!pend.empty()) {
        ++prof->uncommitted_rf_writes[static_cast<std::size_t>(pend.top().reg.rf)];
        pend.pop();
      }
      prof->final_pc = last_arch;
      prof->end_pc = static_cast<std::uint32_t>(pc);
      prof->end_transfer_in = transfer_in;
      prof->end_transfer_target =
          transfer_in >= 0 ? static_cast<std::int32_t>(transfer_target) : -1;
    }
    result.rf_state.clear();
    for (const auto& rf : regs) result.rf_state.insert(result.rf_state.end(), rf.begin(), rf.end());
  };

  auto set_trap = [&](sim::TrapReason reason, int unit, std::uint32_t detail) {
    result.status = sim::ExecStatus::Trapped;
    result.trap = sim::TrapInfo{reason, cycle, unit, detail};
    result.cycles = cycle;
    capture_state();
  };

  // SEU state faults: same application point as the fast loop.
  const sim::StateFault* fault_next = nullptr;
  const sim::StateFault* fault_end = nullptr;
  if (options_.faults != nullptr) {
    fault_next = options_.faults->faults.data();
    fault_end = fault_next + options_.faults->faults.size();
  }
  auto apply_fault = [&](const sim::StateFault& f) {
    if (f.kind != sim::FaultKind::RfBit) return;
    if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= regs.size()) return;
    auto& file = regs[static_cast<std::size_t>(f.unit)];
    if (f.index < 0 || static_cast<std::size_t>(f.index) >= file.size()) return;
    const std::uint32_t mask = sim::fault_mask(f);
    if (prot != nullptr) {
      prot->on_rf_flip(
          rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index), mask);
    }
    file[static_cast<std::size_t>(f.index)] ^= mask;
  };

  // Block-entry lookup for on_block_enter (same semantics as the fast loop).
  std::vector<std::int32_t> entry_of;
  if (obs != nullptr) {
    entry_of.assign(program_.bundles.size(), -1);
    for (std::size_t b = 0; b < program_.block_entry.size(); ++b) {
      const std::size_t entry = program_.block_entry[b];
      if (entry < program_.bundles.size()) entry_of[entry] = static_cast<std::int32_t>(b);
    }
  }

  while (cycle < max_cycles) {
    // State faults land between cycles (see the fast loop).
    while (fault_next != fault_end && fault_next->cycle <= cycle) {
      apply_fault(*fault_next);
      ++fault_next;
    }
    // Writes committed in earlier cycles become visible before this cycle's
    // reads (readable one cycle after write-back).
    while (!pending.empty() && pending.top().visible_at <= cycle) {
      const PendingWrite& w = pending.top();
      reg_ref(w.reg) = w.value;
      if (prot != nullptr) prot->clear_rf(flat_slot(w.reg));
      if (obs != nullptr) obs->on_rf_write(cycle, w.reg.rf, w.reg.index, w.value);
      pending.pop();
    }

    if (pc >= program_.bundles.size() && transfer_in < 0) {
      // The PC ran off the end with no transfer pending: fail closed.
      set_trap(sim::TrapReason::PcOutOfRange, -1, static_cast<std::uint32_t>(pc));
      return result;
    }
    if (pc < program_.bundles.size()) {
      // Protected imem: same fetch check as the fast loop.
      if (prot != nullptr &&
          prot->check_imem_fetch(static_cast<std::uint32_t>(pc)) ==
              sim::ProtectState::ImemAction::Detected) {
        set_trap(sim::TrapReason::ProtectionDetected, -1, static_cast<std::uint32_t>(pc));
        return result;
      }
      if (obs != nullptr) {
        if (transfer_in < 0 && entry_of[pc] >= 0) {
          obs->on_block_enter(cycle, static_cast<std::uint32_t>(entry_of[pc]));
        }
        obs->on_exec(cycle, static_cast<std::uint32_t>(pc), transfer_in >= 0);
      }
      if (prof != nullptr && transfer_in < 0) last_arch = static_cast<std::uint32_t>(pc);
      const Bundle& bundle = program_.bundles[pc];
      std::uint32_t flat = prof != nullptr ? op_begin[pc] : 0u;
      for (const auto& slot : bundle.slots) {
        if (!slot.has_value()) continue;
        const std::uint32_t my_flat = flat++;
        const MInstr& in = slot->instr;
        const bool is_control = ir::is_branch(in.op) || in.op == Opcode::Ret;
        // A resolved transfer squashes younger control ops in its shadow.
        if (is_control && transfer_in >= 0) continue;
        // Fail-closed: the execute-time mirror of the decode-time checks on
        // the predecoded path (sim/harden.hpp).
        const sim::DecodeCheck chk =
            sim::check_minstr(in, machine_, /*needs_fu=*/true, program_.block_entry.size());
        if (!chk.ok()) {
          set_trap(chk.reason(), slot->fu, chk.detail);
          return result;
        }
        ++result.ops;

        // Storage codes check (and SEC-DED scrubs) each register operand at
        // the read, in operand order — same detection order as the fast
        // loop's a-then-b checks.
        if (!in.srcs.empty() && check_read(in.srcs[0])) {
          set_trap(sim::TrapReason::ProtectionDetected, -1, flat_slot(in.srcs[0].reg));
          return result;
        }
        const std::uint32_t a = in.srcs.empty() ? 0 : value_of(in.srcs[0]);
        if (in.srcs.size() > 1 && check_read(in.srcs[1])) {
          set_trap(sim::TrapReason::ProtectionDetected, -1, flat_slot(in.srcs[1].reg));
          return result;
        }
        const std::uint32_t b = in.srcs.size() > 1 ? value_of(in.srcs[1]) : 0;
        if (obs != nullptr) {
          if (!in.srcs.empty() && in.srcs[0].is_reg()) {
            obs->on_rf_read(cycle, in.srcs[0].reg.rf, in.srcs[0].reg.index);
          }
          if (in.srcs.size() > 1 && in.srcs[1].is_reg()) {
            obs->on_rf_read(cycle, in.srcs[1].reg.rf, in.srcs[1].reg.index);
          }
        }
        // `a` is the address of every memory operation; fail closed on an
        // out-of-range access (always: this is not a hot path).
        if (ir::is_memory(in.op) && !sim::mem_in_bounds(in.op, a, mem_.size())) {
          set_trap(sim::TrapReason::MemoryOutOfRange, slot->fu, a);
          return result;
        }
        if (obs != nullptr) obs->on_trigger(cycle, slot->fu, in.op);
        std::uint32_t value = 0;
        bool writes = in.has_dst();
        switch (in.op) {
          case Opcode::Add: value = a + b; break;
          case Opcode::Sub: value = a - b; break;
          case Opcode::Mul: value = a * b; break;
          case Opcode::And: value = a & b; break;
          case Opcode::Ior: value = a | b; break;
          case Opcode::Xor: value = a ^ b; break;
          case Opcode::Shl: value = a << (b & 31); break;
          case Opcode::Shru: value = a >> (b & 31); break;
          case Opcode::Shr:
            value = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
            break;
          case Opcode::Eq: value = a == b ? 1 : 0; break;
          case Opcode::Gt:
            value = static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0;
            break;
          case Opcode::Gtu: value = a > b ? 1 : 0; break;
          case Opcode::Sxhw: value = static_cast<std::uint32_t>(sign_extend(a, 16)); break;
          case Opcode::Sxqw: value = static_cast<std::uint32_t>(sign_extend(a, 8)); break;
          case Opcode::MovI:
          case Opcode::Copy: value = a; break;
          case Opcode::Ldw: value = mem_.load32(a); break;
          case Opcode::Ldh:
            value = static_cast<std::uint32_t>(sign_extend(mem_.load16(a), 16));
            break;
          case Opcode::Ldhu: value = mem_.load16(a); break;
          case Opcode::Ldq:
            value = static_cast<std::uint32_t>(sign_extend(mem_.load8(a), 8));
            break;
          case Opcode::Ldqu: value = mem_.load8(a); break;
          case Opcode::Stw:
            mem_.store32(a, b);
            if (obs != nullptr) obs->on_store(cycle, a, b, 4);
            break;
          case Opcode::Sth:
            mem_.store16(a, static_cast<std::uint16_t>(b));
            if (obs != nullptr) obs->on_store(cycle, a, b & 0xffffu, 2);
            break;
          case Opcode::Stq:
            mem_.store8(a, static_cast<std::uint8_t>(b));
            if (obs != nullptr) obs->on_store(cycle, a, b & 0xffu, 1);
            break;
          case Opcode::Jump:
            transfer_in = machine_.delay_slots;
            transfer_target = program_.block_entry[in.targets[0]];
            if (prof != nullptr) ++prof->taken[my_flat];
            break;
          case Opcode::Bnz:
            if (a != 0) {
              transfer_in = machine_.delay_slots;
              transfer_target = program_.block_entry[in.targets[0]];
              if (prof != nullptr) ++prof->taken[my_flat];
            }
            break;
          case Opcode::Ret:
            result.cycles = cycle + 1;
            result.ret = in.srcs.empty() ? 0 : a;
            capture_state();
            return result;
          case Opcode::Call:
          case Opcode::Select:
            // Rejected by check_minstr above; never reached.
            TTSC_UNREACHABLE("calls/selects are lowered before VLIW scheduling");
        }
        if (writes) {
          pending.push(PendingWrite{
              cycle + static_cast<std::uint64_t>(latency_of(machine_, in.op)) + 1, in.dst, value,
              seq++});
        }
      }
    }

    ++cycle;
    if (transfer_in >= 0) {
      if (transfer_in == 0) {
        pc = transfer_target;
        transfer_in = -1;
      } else {
        --transfer_in;
        ++pc;
      }
    } else {
      ++pc;
    }
  }
  result.status = sim::ExecStatus::TimedOut;
  result.cycles = max_cycles;
  capture_state();
  return result;
}

}  // namespace ttsc::vliw
