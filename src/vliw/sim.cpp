#include <queue>

#include "support/bits.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::vliw {

using codegen::MInstr;
using codegen::MOperand;
using ir::Opcode;

VliwSim::VliwSim(const VliwProgram& program, const mach::Machine& machine, ir::Memory& memory)
    : program_(program), machine_(machine), mem_(memory) {}

namespace {

int latency_of(const mach::Machine& m, Opcode op) {
  if (op == Opcode::MovI || op == Opcode::Copy) return 1;
  const int fu = m.fu_for(op);
  TTSC_ASSERT(fu >= 0, "no FU for opcode in simulator");
  return m.fus[static_cast<std::size_t>(fu)].latency(op);
}

struct PendingWrite {
  std::uint64_t visible_at;
  mach::PhysReg reg;
  std::uint32_t value;
  std::uint64_t seq;  // commit order tie-break
  bool operator>(const PendingWrite& o) const {
    return visible_at != o.visible_at ? visible_at > o.visible_at : seq > o.seq;
  }
};

}  // namespace

ExecResult VliwSim::run(std::uint64_t max_cycles) {
  std::vector<std::vector<std::uint32_t>> regs;
  for (const mach::RegisterFile& rf : machine_.rfs) {
    regs.emplace_back(static_cast<std::size_t>(rf.size), 0u);
  }
  std::priority_queue<PendingWrite, std::vector<PendingWrite>, std::greater<>> pending;
  std::uint64_t seq = 0;

  auto reg_ref = [&](mach::PhysReg r) -> std::uint32_t& {
    return regs[static_cast<std::size_t>(r.rf)][static_cast<std::size_t>(r.index)];
  };
  auto value_of = [&](const MOperand& s) -> std::uint32_t {
    return s.is_imm() ? static_cast<std::uint32_t>(s.imm) : reg_ref(s.reg);
  };

  ExecResult result;
  std::uint64_t cycle = 0;
  std::size_t pc = 0;
  // Pending control transfer: counts down delay slots.
  int transfer_in = -1;
  std::size_t transfer_target = 0;

  while (cycle < max_cycles) {
    // Writes committed in earlier cycles become visible before this cycle's
    // reads (readable one cycle after write-back).
    while (!pending.empty() && pending.top().visible_at <= cycle) {
      reg_ref(pending.top().reg) = pending.top().value;
      pending.pop();
    }

    TTSC_ASSERT(pc < program_.bundles.size() || transfer_in >= 0,
                "VLIW PC ran off the end of the program");
    if (pc < program_.bundles.size()) {
      const Bundle& bundle = program_.bundles[pc];
      for (const auto& slot : bundle.slots) {
        if (!slot.has_value()) continue;
        const MInstr& in = slot->instr;
        const bool is_control = ir::is_branch(in.op) || in.op == Opcode::Ret;
        // A resolved transfer squashes younger control ops in its shadow.
        if (is_control && transfer_in >= 0) continue;
        ++result.ops;

        const std::uint32_t a = in.srcs.empty() ? 0 : value_of(in.srcs[0]);
        const std::uint32_t b = in.srcs.size() > 1 ? value_of(in.srcs[1]) : 0;
        std::uint32_t value = 0;
        bool writes = in.has_dst();
        switch (in.op) {
          case Opcode::Add: value = a + b; break;
          case Opcode::Sub: value = a - b; break;
          case Opcode::Mul: value = a * b; break;
          case Opcode::And: value = a & b; break;
          case Opcode::Ior: value = a | b; break;
          case Opcode::Xor: value = a ^ b; break;
          case Opcode::Shl: value = a << (b & 31); break;
          case Opcode::Shru: value = a >> (b & 31); break;
          case Opcode::Shr:
            value = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
            break;
          case Opcode::Eq: value = a == b ? 1 : 0; break;
          case Opcode::Gt:
            value = static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0;
            break;
          case Opcode::Gtu: value = a > b ? 1 : 0; break;
          case Opcode::Sxhw: value = static_cast<std::uint32_t>(sign_extend(a, 16)); break;
          case Opcode::Sxqw: value = static_cast<std::uint32_t>(sign_extend(a, 8)); break;
          case Opcode::MovI:
          case Opcode::Copy: value = a; break;
          case Opcode::Ldw: value = mem_.load32(a); break;
          case Opcode::Ldh:
            value = static_cast<std::uint32_t>(sign_extend(mem_.load16(a), 16));
            break;
          case Opcode::Ldhu: value = mem_.load16(a); break;
          case Opcode::Ldq:
            value = static_cast<std::uint32_t>(sign_extend(mem_.load8(a), 8));
            break;
          case Opcode::Ldqu: value = mem_.load8(a); break;
          case Opcode::Stw: mem_.store32(a, b); break;
          case Opcode::Sth: mem_.store16(a, static_cast<std::uint16_t>(b)); break;
          case Opcode::Stq: mem_.store8(a, static_cast<std::uint8_t>(b)); break;
          case Opcode::Jump:
            transfer_in = machine_.delay_slots;
            transfer_target = program_.block_entry[in.targets[0]];
            break;
          case Opcode::Bnz:
            if (a != 0) {
              transfer_in = machine_.delay_slots;
              transfer_target = program_.block_entry[in.targets[0]];
            }
            break;
          case Opcode::Ret:
            result.cycles = cycle + 1;
            result.ret = in.srcs.empty() ? 0 : a;
            return result;
          case Opcode::Call:
            TTSC_UNREACHABLE("calls must be inlined before VLIW scheduling");
        }
        if (writes) {
          pending.push(PendingWrite{
              cycle + static_cast<std::uint64_t>(latency_of(machine_, in.op)) + 1, in.dst, value,
              seq++});
        }
      }
    }

    ++cycle;
    if (transfer_in >= 0) {
      if (transfer_in == 0) {
        pc = transfer_target;
        transfer_in = -1;
      } else {
        --transfer_in;
        ++pc;
      }
    } else {
      ++pc;
    }
  }
  throw Error("VLIW simulation exceeded cycle limit");
}

}  // namespace ttsc::vliw
