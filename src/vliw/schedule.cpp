#include <algorithm>
#include <map>

#include "codegen/ddg.hpp"
#include "obs/trace.hpp"
#include "opt/superblock.hpp"
#include "prof/cause.hpp"
#include "support/bits.hpp"
#include "support/strings.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::vliw {

using codegen::BlockDdg;
using codegen::DepKind;
using codegen::MInstr;
using codegen::MOperand;
using ir::Opcode;
using mach::Machine;

namespace {

/// Attribution priority among recorded per-cycle resource conflicts (see
/// the identical helper in tta/schedule.cpp and DESIGN.md).
int conflict_rank(prof::Cause c) {
  switch (c) {
    case prof::Cause::RfWritePort: return 4;
    case prof::Cause::RfReadPort: return 3;
    case prof::Cause::LongImm: return 2;
    case prof::Cause::Bus: return 1;
    default: return 0;
  }
}

/// Latency used for scheduling: pseudo ops (MovI/Copy) execute on an ALU as
/// single-cycle operations in the operation-triggered models.
int op_latency(const Machine& m, Opcode op) {
  if (op == Opcode::MovI || op == Opcode::Copy) return 1;
  const int fu = m.fu_for(op);
  TTSC_ASSERT(fu >= 0, format("machine %s lacks an FU for %s", m.name.c_str(),
                              std::string(ir::opcode_name(op)).c_str()));
  return m.fus[static_cast<std::size_t>(fu)].latency(op);
}

bool fu_can_execute(const mach::FunctionUnit& fu, Opcode op) {
  if (op == Opcode::MovI || op == Opcode::Copy) return fu.supports(Opcode::Add);
  return fu.supports(op);
}

/// Minimum issue-cycle distance consumer - producer for a dependence edge
/// in the VLIW (no-forwarding) timing model.
int edge_delay(const Machine& m, const codegen::DdgEdge& e, const codegen::MBlock& block) {
  const Opcode prod = block.instrs[e.from].op;
  const Opcode cons = block.instrs[e.to].op;
  switch (e.kind) {
    case DepKind::Raw:
      return op_latency(m, prod) + 1;  // through the RF, no forwarding
    case DepKind::War:
      return 0;
    case DepKind::Waw:
      return std::max(1, op_latency(m, prod) - op_latency(m, cons) + 1);
    case DepKind::MemRaw:
    case DepKind::MemWaw:
      return 1;
    case DepKind::MemWar:
      return 0;
  }
  (void)cons;
  return 0;
}

struct CycleResources {
  std::vector<bool> slot_used;
  std::vector<bool> fu_used;
  std::vector<int> rf_reads;
  std::vector<int> rf_writes;
};

class BlockScheduler {
 public:
  /// `region_of` (empty for a plain block) maps each instruction to its
  /// trace-member index; `interior_exits` lists the side-exit branches in
  /// region order (one per region except the last). See schedule_vliw.
  BlockScheduler(const Machine& m, const codegen::MBlock& block, ScheduleStats& stats,
                 std::vector<std::uint32_t> region_of = {},
                 std::vector<std::uint32_t> interior_exits = {})
      : machine_(m),
        block_(block),
        ddg_(block),
        stats_(stats),
        region_of_(std::move(region_of)),
        interior_exits_(std::move(interior_exits)) {}

  /// Schedules every instruction; returns per-instruction cycles plus the
  /// block length in cycles.
  struct Result {
    std::vector<std::int64_t> cycle;  // per instruction
    std::vector<int> fu;              // chosen FU
    std::vector<int> slot;            // chosen slot
    std::int64_t length = 0;
    /// Per-cycle static attribution (prof::Cause byte per bundle): recorded
    /// resource conflict > Frontend (cycle has issued ops) > Branch (delay
    /// slot) > FuLatency (result shadow) > Dep.
    std::vector<std::uint8_t> cycle_cause;
  };

  Result run();

 private:
  CycleResources& res(std::int64_t cycle) {
    auto [it, inserted] = resources_.try_emplace(cycle);
    if (inserted) {
      it->second.slot_used.assign(machine_.vliw_slots.size(), false);
      it->second.fu_used.assign(machine_.fus.size(), false);
      it->second.rf_reads.assign(machine_.rfs.size(), 0);
      it->second.rf_writes.assign(machine_.rfs.size(), 0);
    }
    return it->second;
  }

  /// Record a rejected placement attempt at cycle `c`; the highest-priority
  /// conflict per cycle wins (conflict_rank).
  void note_conflict(std::int64_t c, prof::Cause cause) {
    auto [it, inserted] = conflict_.try_emplace(c, static_cast<std::uint8_t>(cause));
    if (!inserted && conflict_rank(cause) > conflict_rank(static_cast<prof::Cause>(it->second))) {
      it->second = static_cast<std::uint8_t>(cause);
    }
  }

  /// Try to place instruction `node` at `cycle`; returns (slot, fu) or
  /// nullopt without mutating resources unless successful.
  std::optional<std::pair<int, int>> try_place(std::uint32_t node, std::int64_t cycle) {
    const MInstr& in = block_.instrs[node];
    CycleResources& r = res(cycle);

    // Register-file read ports.
    std::vector<int> reads(machine_.rfs.size(), 0);
    for (const MOperand& s : in.srcs) {
      if (s.is_reg()) ++reads[static_cast<std::size_t>(s.reg.rf)];
    }
    for (std::size_t f = 0; f < machine_.rfs.size(); ++f) {
      if (r.rf_reads[f] + reads[f] > machine_.rfs[f].read_ports) {
        ++stats_.fail_rf_read_port;
        note_conflict(cycle, prof::Cause::RfReadPort);
        return std::nullopt;
      }
    }
    // Write port at commit time.
    std::int64_t commit = -1;
    if (in.has_dst()) {
      commit = cycle + op_latency(machine_, in.op);
      CycleResources& w = res(commit);
      if (w.rf_writes[static_cast<std::size_t>(in.dst.rf)] >=
          machine_.rfs[static_cast<std::size_t>(in.dst.rf)].write_ports) {
        ++stats_.fail_rf_write_port;
        note_conflict(commit, prof::Cause::RfWritePort);
        return std::nullopt;
      }
    }
    // Issue slot hosting a capable, free FU.
    int chosen_slot = -1;
    int chosen_fu = -1;
    for (std::size_t s = 0; s < machine_.vliw_slots.size() && chosen_slot < 0; ++s) {
      if (r.slot_used[s]) continue;
      for (int f : machine_.vliw_slots[s]) {
        if (r.fu_used[static_cast<std::size_t>(f)]) continue;
        if (!fu_can_execute(machine_.fus[static_cast<std::size_t>(f)], in.op)) continue;
        chosen_slot = static_cast<int>(s);
        chosen_fu = f;
        break;
      }
    }
    if (chosen_slot < 0) {
      ++stats_.fail_no_slot;
      note_conflict(cycle, prof::Cause::Bus);
      return std::nullopt;
    }
    // A wide immediate is spread over one additional (otherwise idle) slot.
    int imm_slot = -1;
    if (needs_wide_imm(in)) {
      for (std::size_t s = 0; s < machine_.vliw_slots.size(); ++s) {
        if (static_cast<int>(s) != chosen_slot && !r.slot_used[s]) {
          imm_slot = static_cast<int>(s);
          break;
        }
      }
      if (imm_slot < 0) {
        ++stats_.fail_wide_imm;
        note_conflict(cycle, prof::Cause::LongImm);
        return std::nullopt;
      }
    }

    // Commit resources.
    r.slot_used[static_cast<std::size_t>(chosen_slot)] = true;
    r.fu_used[static_cast<std::size_t>(chosen_fu)] = true;
    if (imm_slot >= 0) r.slot_used[static_cast<std::size_t>(imm_slot)] = true;
    for (std::size_t f = 0; f < machine_.rfs.size(); ++f) r.rf_reads[f] += reads[f];
    if (commit >= 0) ++res(commit).rf_writes[static_cast<std::size_t>(in.dst.rf)];
    return std::make_pair(chosen_slot, chosen_fu);
  }

  const Machine& machine_;
  const codegen::MBlock& block_;
  BlockDdg ddg_;
  ScheduleStats& stats_;
  std::map<std::int64_t, CycleResources> resources_;
  std::vector<std::uint32_t> region_of_;
  std::vector<std::uint32_t> interior_exits_;
  /// Highest-priority placement conflict recorded per probed cycle.
  std::map<std::int64_t, std::uint8_t> conflict_;
};

BlockScheduler::Result BlockScheduler::run() {
  const std::uint32_t n = ddg_.size();
  Result out;
  out.cycle.assign(n, -1);
  out.fu.assign(n, -1);
  out.slot.assign(n, -1);
  if (n == 0) return out;

  // Critical-path heights (edges always point forward in program order).
  std::vector<std::int64_t> height(n, 0);
  for (std::uint32_t i = n; i-- > 0;) {
    for (std::uint32_t e : ddg_.succ_edges(i)) {
      const auto& edge = ddg_.edge(e);
      height[i] = std::max(height[i], edge_delay(machine_, edge, block_) + height[edge.to]);
    }
  }

  std::vector<bool> is_control(n, false);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Opcode op = block_.instrs[i].op;
    is_control[i] = ir::is_branch(op) || op == Opcode::Ret;
  }

  auto dep_ready = [&](std::uint32_t i) {
    std::int64_t ready = 0;
    for (std::uint32_t e : ddg_.pred_edges(i)) {
      const auto& edge = ddg_.edge(e);
      TTSC_ASSERT(out.cycle[edge.from] >= 0, "scheduling before predecessor");
      ready = std::max(ready, out.cycle[edge.from] + edge_delay(machine_, edge, block_));
    }
    return ready;
  };

  auto place = [&](std::uint32_t i, std::int64_t earliest) {
    for (std::int64_t c = earliest;; ++c) {
      TTSC_ASSERT(c < earliest + 100000, "scheduler failed to place op (resource deadlock)");
      if (auto sf = try_place(i, c)) {
        out.cycle[i] = c;
        out.slot[i] = sf->first;
        out.fu[i] = sf->second;
        return;
      }
    }
  };

  auto region = [&](std::uint32_t i) {
    return region_of_.empty() ? 0u : region_of_[i];
  };
  const std::uint32_t num_regions = static_cast<std::uint32_t>(interior_exits_.size()) + 1;

  // List-schedule the datapath operations by critical-path priority,
  // region by region (one region = one trace member; a plain block is a
  // single region). `max_completion` tracks the cycle by which every side
  // effect placed so far commits — results must be readable before any
  // control transfer leaves the block or crosses a side exit.
  std::int64_t floor = 0;                 // earliest issue cycle, current region
  std::int64_t max_completion = 0;
  std::int64_t last_control = -1;
  std::int64_t max_interior_exit = -1;
  for (std::uint32_t r = 0; r < num_regions; ++r) {
    std::uint32_t remaining = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!is_control[i] && region(i) == r) ++remaining;
    }
    while (remaining > 0) {
      std::int64_t best_height = -1;
      std::uint32_t best = n;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (is_control[i] || out.cycle[i] >= 0 || region(i) != r) continue;
        bool ready = true;
        for (std::uint32_t e : ddg_.pred_edges(i)) {
          // Predecessors are datapath ops of this or an earlier region, or
          // an already-placed side exit (anti-dependence on its condition).
          if (out.cycle[ddg_.edge(e).from] < 0) {
            ready = false;
            break;
          }
        }
        if (!ready) continue;
        if (height[i] > best_height) {
          best_height = height[i];
          best = i;
        }
      }
      TTSC_ASSERT(best < n, "no ready node (dependence cycle?)");
      place(best, std::max(dep_ready(best), floor));
      max_completion = std::max(
          max_completion, out.cycle[best] + (block_.instrs[best].has_dst()
                                                 ? op_latency(machine_, block_.instrs[best].op)
                                                 : 0));
      --remaining;
    }
    if (r + 1 == num_regions) break;

    // Side exit closing region r: all earlier write-backs must commit
    // inside its delay slots (the exit path reads them from the RF), and
    // every later-region op stays past the slots via the issue floor.
    const std::uint32_t exit = interior_exits_[r];
    std::int64_t lower = std::max(dep_ready(exit), max_completion - machine_.delay_slots);
    lower = std::max(lower, floor);
    if (last_control >= 0) lower = std::max(lower, last_control + 1);
    place(exit, std::max<std::int64_t>(lower, 0));
    last_control = out.cycle[exit];
    max_interior_exit = last_control;
    floor = last_control + machine_.delay_slots + 1;
  }

  // Final-region control operations (at most Bnz then Jump / a single
  // Ret); interior side exits are already placed.
  bool have_control = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!is_control[i] || out.cycle[i] >= 0) continue;
    const Opcode op = block_.instrs[i].op;
    std::int64_t lower = std::max(dep_ready(i), floor);
    if (op == Opcode::Ret) {
      lower = std::max(lower, max_completion);
    } else {
      lower = std::max(lower, max_completion - machine_.delay_slots);
    }
    if (last_control >= 0) lower = std::max(lower, last_control + 1);
    place(i, std::max<std::int64_t>(lower, 0));
    last_control = out.cycle[i];
    have_control = true;
  }

  if (have_control) {
    const bool is_ret = block_.instrs[n - 1].op == Opcode::Ret;
    out.length = last_control + 1 + (is_ret ? 0 : machine_.delay_slots);
  } else {
    out.length = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::int64_t readable =
          out.cycle[i] +
          (block_.instrs[i].has_dst() ? op_latency(machine_, block_.instrs[i].op) + 1 : 1);
      out.length = std::max(out.length, readable);
    }
  }
  if (max_interior_exit >= 0) {
    // A taken side exit's delay slots must stay inside the block.
    out.length = std::max(out.length, max_interior_exit + machine_.delay_slots + 1);
  }

  // Static per-cycle attribution for the profiler: why is each bundle
  // cycle in this block not (fully) issuing useful work? Priority:
  // recorded resource conflict > Frontend (ops did issue here; remaining
  // empty slots are an encoding/issue-width artifact) > Branch delay slot >
  // FU-latency shadow > plain dependence.
  {
    const std::size_t len = static_cast<std::size_t>(out.length);
    std::vector<bool> busy(len, false);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (out.cycle[i] >= 0 && static_cast<std::size_t>(out.cycle[i]) < len) {
        busy[static_cast<std::size_t>(out.cycle[i])] = true;
      }
    }
    std::vector<bool> branch_shadow(len, false);
    std::vector<bool> fu_shadow(len, false);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (out.cycle[i] < 0) continue;
      if (is_control[i]) {
        for (std::int64_t c = out.cycle[i] + 1;
             c <= out.cycle[i] + machine_.delay_slots && c < out.length; ++c) {
          branch_shadow[static_cast<std::size_t>(c)] = true;
        }
      } else if (block_.instrs[i].has_dst()) {
        const std::int64_t lat = op_latency(machine_, block_.instrs[i].op);
        for (std::int64_t c = out.cycle[i] + 1; c < out.cycle[i] + lat && c < out.length; ++c) {
          fu_shadow[static_cast<std::size_t>(c)] = true;
        }
      }
    }
    out.cycle_cause.resize(len);
    for (std::size_t c = 0; c < len; ++c) {
      const auto it = conflict_.find(static_cast<std::int64_t>(c));
      std::uint8_t cause;
      if (it != conflict_.end()) cause = it->second;
      else if (busy[c]) cause = static_cast<std::uint8_t>(prof::Cause::Frontend);
      else if (branch_shadow[c]) cause = static_cast<std::uint8_t>(prof::Cause::Branch);
      else if (fu_shadow[c]) cause = static_cast<std::uint8_t>(prof::Cause::FuLatency);
      else cause = static_cast<std::uint8_t>(prof::Cause::Dep);
      out.cycle_cause[c] = cause;
    }
  }
  return out;
}

}  // namespace

VliwProgram schedule_vliw(const codegen::MFunction& func, const Machine& machine,
                          ScheduleStats* stats, const opt::SuperblockPlan* plan) {
  TTSC_ASSERT(machine.model == mach::Model::Vliw, "schedule_vliw needs a VLIW machine");
  obs::Span span("vliw.schedule", [&] { return obs::SpanArgs{{"machine", machine.name}}; });
  ScheduleStats local_stats;
  ScheduleStats& st = stats != nullptr ? *stats : local_stats;
  VliwProgram prog;
  prog.num_slots = static_cast<int>(machine.vliw_slots.size());
  prog.block_entry.resize(func.blocks.size());

  std::size_t b = 0;
  while (b < func.blocks.size()) {
    const std::uint32_t base_pc = static_cast<std::uint32_t>(prog.bundles.size());
    prog.block_entry[b] = base_pc;

    // A trace from the superblock plan is scheduled as one merged block;
    // formation made interior members single-predecessor, so only the side
    // exits' taken targets are ever branched to.
    std::uint32_t len = 1;
    if (plan != nullptr) {
      const int ti = plan->trace_of(static_cast<std::uint32_t>(b));
      if (ti >= 0) {
        const opt::SuperblockTrace& tr = plan->traces[static_cast<std::size_t>(ti)];
        TTSC_ASSERT(b == tr.first, "trace entered mid-run");
        len = tr.len;
        for (std::uint32_t m = 1; m < len; ++m) prog.block_entry[b + m] = base_pc;
      }
    }

    codegen::MBlock block;
    std::vector<std::uint32_t> region_of;
    std::vector<std::uint32_t> interior_exits;
    for (std::uint32_t m = 0; m < len; ++m) {
      codegen::MBlock member = func.blocks[b + m];
      // Fallthrough elision: drop a trailing jump to the next block (for
      // trace interiors that is always the next member).
      if (!member.instrs.empty() && member.instrs.back().op == Opcode::Jump &&
          member.instrs.back().targets[0] == b + m + 1) {
        member.instrs.pop_back();
      }
      if (m + 1 < len) {
        TTSC_ASSERT(!member.instrs.empty() && member.instrs.back().op == Opcode::Bnz,
                    "trace interior boundary must be a side-exit branch");
        interior_exits.push_back(
            static_cast<std::uint32_t>(block.instrs.size() + member.instrs.size() - 1));
      }
      for (codegen::MInstr& in : member.instrs) {
        block.instrs.push_back(std::move(in));
        region_of.push_back(m);
      }
    }
    if (block.instrs.empty()) {
      b += len;
      continue;
    }

    BlockScheduler sched(machine, block, st, std::move(region_of), std::move(interior_exits));
    const BlockScheduler::Result r = sched.run();

    const std::size_t base = prog.bundles.size();
    prog.bundles.resize(base + static_cast<std::size_t>(r.length));
    prog.stall_cause.resize(prog.bundles.size(), static_cast<std::uint8_t>(prof::Cause::Dep));
    for (std::size_t i = 0; i < r.cycle_cause.size(); ++i) {
      prog.stall_cause[base + i] = r.cycle_cause[i];
    }
    for (std::size_t i = base; i < prog.bundles.size(); ++i) {
      prog.bundles[i].slots.resize(static_cast<std::size_t>(prog.num_slots));
    }
    for (std::uint32_t i = 0; i < block.instrs.size(); ++i) {
      TTSC_ASSERT(r.cycle[i] >= 0 && r.cycle[i] < r.length, "op outside block window");
      Bundle& bun = prog.bundles[base + static_cast<std::size_t>(r.cycle[i])];
      auto& slot = bun.slots[static_cast<std::size_t>(r.slot[i])];
      TTSC_ASSERT(!slot.has_value(), "slot double-booked");
      slot = SlotOp{block.instrs[i], r.fu[i]};
    }
    b += len;
  }
  const ScheduleStats totals = stats_of(prog);
  st.bundles = totals.bundles;
  st.ops = totals.ops;
  st.fill_rate = totals.fill_rate;
  return prog;
}

bool needs_wide_imm(const codegen::MInstr& in) {
  if (ir::is_branch(in.op) || in.op == Opcode::Ret) return false;
  for (const MOperand& s : in.srcs) {
    if (s.is_imm() && !fits_signed(s.imm, kVliwSimmBits)) return true;
  }
  return false;
}

ScheduleStats stats_of(const VliwProgram& program) {
  ScheduleStats s;
  s.bundles = program.bundles.size();
  for (const Bundle& b : program.bundles) {
    for (const auto& slot : b.slots) {
      if (slot.has_value()) ++s.ops;
    }
  }
  const double capacity = static_cast<double>(s.bundles) * program.num_slots;
  s.fill_rate = capacity > 0 ? static_cast<double>(s.ops) / capacity : 0.0;
  return s;
}

int instruction_bits(const Machine& machine) {
  const int regbits = index_bits(static_cast<std::uint64_t>(machine.total_registers()));
  const int slot_bits = 4 + 2 * (regbits + 1) + regbits;
  return slot_bits * static_cast<int>(machine.vliw_slots.size());
}

std::uint64_t image_bits(const VliwProgram& program, const Machine& machine) {
  return program.num_bundles() * static_cast<std::uint64_t>(instruction_bits(machine));
}

}  // namespace ttsc::vliw
