#include <map>

#include "support/strings.hpp"
#include "vliw/vliw.hpp"

namespace ttsc::vliw {

using codegen::MOperand;

namespace {

std::string operand_str(const mach::Machine& m, const MOperand& opnd) {
  if (opnd.is_imm()) return format("#%d", opnd.imm);
  return format("%s.%d", m.rfs[static_cast<std::size_t>(opnd.reg.rf)].name.c_str(),
                opnd.reg.index);
}

}  // namespace

std::string disassemble(const VliwProgram& program, const mach::Machine& machine) {
  std::string out;
  // Reverse block-entry map for labels.
  std::map<std::uint32_t, std::uint32_t> labels;
  for (std::size_t blk = 0; blk < program.block_entry.size(); ++blk) {
    labels.emplace(program.block_entry[blk], static_cast<std::uint32_t>(blk));
  }
  for (std::size_t pc = 0; pc < program.bundles.size(); ++pc) {
    auto lab = labels.find(static_cast<std::uint32_t>(pc));
    if (lab != labels.end()) out += format("B%u:\n", lab->second);
    out += format("%5zu:", pc);
    for (const auto& slot : program.bundles[pc].slots) {
      if (!slot.has_value()) {
        out += "  [nop]";
        continue;
      }
      std::string ops;
      for (std::size_t i = 0; i < slot->instr.srcs.size(); ++i) {
        ops += (i == 0 ? " " : ", ") + operand_str(machine, slot->instr.srcs[i]);
      }
      std::string dst;
      if (slot->instr.has_dst()) {
        dst = " -> " + operand_str(machine, MOperand(slot->instr.dst));
      }
      std::string tgt;
      for (std::uint32_t t : slot->instr.targets) tgt += format(" @B%u", t);
      out += format("  [%s %s%s%s%s]",
                    machine.fus[static_cast<std::size_t>(slot->fu)].name.c_str(),
                    std::string(ir::opcode_name(slot->instr.op)).c_str(), ops.c_str(),
                    dst.c_str(), tgt.c_str());
    }
    out += "\n";
  }
  return out;
}

}  // namespace ttsc::vliw
