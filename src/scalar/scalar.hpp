// Scalar (single-issue, operation-triggered) backend: the MicroBlaze
// stand-in. Sequential code generation from the shared machine-level form,
// a 32-bit fixed-width encoder with an IMM-prefix word for wide immediates
// (as MicroBlaze does), and an in-order pipeline timing simulator
// parameterized by mach::ScalarTiming (3-stage vs 5-stage models).
#pragma once

#include <cstdint>
#include <vector>

#include "codegen/lower.hpp"
#include "ir/memory.hpp"
#include "ir/module.hpp"
#include "mach/machine.hpp"

namespace ttsc::scalar {

struct ScalarProgram {
  std::vector<codegen::MInstr> instrs;
  std::vector<std::uint32_t> block_entry;  // block id -> instruction index
  std::uint32_t spill_base = 0;

  /// Number of 32-bit instruction words, including IMM prefixes and
  /// (without a barrel shifter) expanded shift sequences.
  std::uint64_t code_words(const mach::ScalarTiming& timing) const;
  /// Program image size in bits (Table II reports total program bits).
  std::uint64_t image_bits(const mach::ScalarTiming& timing) const {
    return code_words(timing) * 32;
  }
  static constexpr int kInstrBits = 32;
};

/// Immediates representable without an IMM prefix word.
bool fits_short_imm(std::int32_t value);

/// Linearize an MFunction into a scalar instruction stream. Jumps to the
/// immediately following block are elided (fallthrough).
ScalarProgram emit_scalar(const codegen::MFunction& func);

struct ExecResult {
  std::uint64_t cycles = 0;
  std::uint64_t instrs = 0;
  std::uint32_t ret = 0;
};

/// Cycle-approximate in-order pipeline simulation: functional execution plus
/// the hazard/penalty model of mach::ScalarTiming (forwarding, load-use /
/// multiply / shift stalls, taken-branch penalty, IMM prefix cycles).
class ScalarSim {
 public:
  ScalarSim(const ScalarProgram& program, const mach::Machine& machine, ir::Memory& memory);

  ExecResult run(std::uint64_t max_cycles = 2'000'000'000ull);

 private:
  const ScalarProgram& program_;
  const mach::Machine& machine_;
  ir::Memory& mem_;
};

}  // namespace ttsc::scalar
