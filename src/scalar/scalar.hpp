// Scalar (single-issue, operation-triggered) backend: the MicroBlaze
// stand-in. Sequential code generation from the shared machine-level form,
// a 32-bit fixed-width encoder with an IMM-prefix word for wide immediates
// (as MicroBlaze does), and an in-order pipeline timing simulator
// parameterized by mach::ScalarTiming (3-stage vs 5-stage models).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "codegen/lower.hpp"
#include "ir/memory.hpp"
#include "ir/module.hpp"
#include "mach/machine.hpp"
#include "sim/observer.hpp"

namespace ttsc::sim {
struct PredecodedScalar;
}

namespace ttsc::scalar {

struct ScalarProgram {
  std::vector<codegen::MInstr> instrs;
  std::vector<std::uint32_t> block_entry;  // block id -> instruction index
  std::uint32_t spill_base = 0;

  /// Number of 32-bit instruction words, including IMM prefixes and
  /// (without a barrel shifter) expanded shift sequences.
  std::uint64_t code_words(const mach::ScalarTiming& timing) const;
  /// Program image size in bits (Table II reports total program bits).
  std::uint64_t image_bits(const mach::ScalarTiming& timing) const {
    return code_words(timing) * 32;
  }
  static constexpr int kInstrBits = 32;
};

/// Immediates representable without an IMM prefix word.
bool fits_short_imm(std::int32_t value);

/// Instruction words for one operation: 1 plus an IMM prefix when a wide
/// immediate is used; without a barrel shifter, constant shifts expand into
/// single-bit sequences (capped). Shared with the simulator predecoder.
int instr_words(const mach::ScalarTiming& timing, const codegen::MInstr& in);

/// Extra cycles when `op`'s result feeds the immediately following use
/// (load-use / multiply / shift stalls of mach::ScalarTiming).
int dependent_use_stall(const mach::ScalarTiming& timing, ir::Opcode op);

/// Linearize an MFunction into a scalar instruction stream. Jumps to the
/// immediately following block are elided (fallthrough).
ScalarProgram emit_scalar(const codegen::MFunction& func);

struct ExecResult {
  /// Ok = the program returned; TimedOut = the cycle budget was exhausted
  /// and `cycles` holds the cycles actually executed; Trapped = the
  /// simulator failed closed on an illegal state and `trap` says why.
  sim::ExecStatus status = sim::ExecStatus::Ok;
  /// Valid when status == Trapped (default-initialized otherwise).
  sim::TrapInfo trap{};
  std::uint64_t cycles = 0;
  std::uint64_t instrs = 0;
  std::uint32_t ret = 0;
  /// Architectural register state at halt (register files concatenated in
  /// machine order), for cycle-exact differential testing.
  std::vector<std::uint32_t> rf_state;

  bool timed_out() const { return status == sim::ExecStatus::TimedOut; }
  bool trapped() const { return status == sim::ExecStatus::Trapped; }
  bool operator==(const ExecResult&) const = default;
};

/// Cycle-approximate in-order pipeline simulation: functional execution plus
/// the hazard/penalty model of mach::ScalarTiming (forwarding, load-use /
/// multiply / shift stalls, taken-branch penalty, IMM prefix cycles).
///
/// The default fast path executes a predecoded instruction form
/// (sim/predecode.hpp); SimOptions{.fast_path = false} selects the original
/// interpretive reference loop, which produces bit-identical ExecResults.
class ScalarSim {
 public:
  ScalarSim(const ScalarProgram& program, const mach::Machine& machine, ir::Memory& memory,
            sim::SimOptions options = {});
  ~ScalarSim();

  /// Reuse an externally predecoded program (e.g. from report::ModuleCache)
  /// instead of predecoding on first run.
  void use_predecoded(std::shared_ptr<const sim::PredecodedScalar> predecoded);

  ExecResult run(std::uint64_t max_cycles = 2'000'000'000ull);

 private:
  template <bool kObserve, bool kHarden, bool kProfile>
  ExecResult run_fast(std::uint64_t max_cycles);
  ExecResult run_reference(std::uint64_t max_cycles);

  const ScalarProgram& program_;
  const mach::Machine& machine_;
  ir::Memory& mem_;
  sim::SimOptions options_;
  std::shared_ptr<const sim::PredecodedScalar> predecoded_;
};

}  // namespace ttsc::scalar
