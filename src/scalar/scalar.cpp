#include "scalar/scalar.hpp"

#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "sim/harden.hpp"
#include "sim/predecode.hpp"
#include "sim/protect.hpp"
#include "support/bits.hpp"

namespace ttsc::scalar {

using codegen::MInstr;
using codegen::MOperand;
using ir::Opcode;

bool fits_short_imm(std::int32_t value) { return fits_signed(value, 16); }

namespace {

bool is_shift(Opcode op) { return op == Opcode::Shl || op == Opcode::Shr || op == Opcode::Shru; }

/// Static code size of a shift without a barrel shifter: one single-bit
/// shift instruction per position (capped), or a small loop for register
/// shift amounts.
int shift_words(const mach::ScalarTiming& t, const MInstr& in) {
  if (t.barrel_shifter) return 1;
  if (in.srcs[1].is_imm()) {
    const int amount = in.srcs[1].imm & 31;
    return std::max(1, std::min(amount, t.max_unrolled_shift));
  }
  return t.variable_shift_setup;  // compare/branch/shift/decrement loop body
}

}  // namespace

/// Instruction words for one operation: 1 plus an IMM prefix when any
/// immediate operand does not fit the 16-bit immediate field; shifts may
/// expand into multi-instruction sequences (see shift_words).
int instr_words(const mach::ScalarTiming& t, const MInstr& in) {
  // Branch targets are PC-relative label fields, not data immediates.
  if (ir::is_branch(in.op)) return 1;
  if (is_shift(in.op)) return shift_words(t, in);
  for (const MOperand& s : in.srcs) {
    if (s.is_imm() && !fits_short_imm(s.imm)) return 2;
  }
  return 1;
}

int dependent_use_stall(const mach::ScalarTiming& t, Opcode op) {
  if (ir::is_load(op)) return t.load_use_stall;
  if (op == Opcode::Mul) return t.mul_stall;
  if (op == Opcode::Shl || op == Opcode::Shr || op == Opcode::Shru) return t.shift_stall;
  return 0;
}

std::uint64_t ScalarProgram::code_words(const mach::ScalarTiming& timing) const {
  std::uint64_t words = 0;
  for (const MInstr& in : instrs) words += static_cast<std::uint64_t>(instr_words(timing, in));
  return words;
}

ScalarProgram emit_scalar(const codegen::MFunction& func) {
  obs::Span span("scalar.emit");
  ScalarProgram out;
  out.spill_base = func.spill_base;
  out.block_entry.resize(func.blocks.size());
  for (std::size_t b = 0; b < func.blocks.size(); ++b) {
    out.block_entry[b] = static_cast<std::uint32_t>(out.instrs.size());
    const auto& instrs = func.blocks[b].instrs;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const MInstr& in = instrs[i];
      // Elide a trailing jump to the next block (fallthrough layout).
      if (in.op == Opcode::Jump && i + 1 == instrs.size() && in.targets[0] == b + 1) continue;
      out.instrs.push_back(in);
    }
    // A block whose only instruction was an elided jump still needs a
    // landing pad for branches; block_entry correctly points at the next
    // block's first instruction in that case.
  }
  return out;
}

ScalarSim::ScalarSim(const ScalarProgram& program, const mach::Machine& machine,
                     ir::Memory& memory, sim::SimOptions options)
    : program_(program), machine_(machine), mem_(memory), options_(options) {
  TTSC_ASSERT(machine.model == mach::Model::Scalar, "ScalarSim needs a scalar machine");
}

ScalarSim::~ScalarSim() = default;

void ScalarSim::use_predecoded(std::shared_ptr<const sim::PredecodedScalar> predecoded) {
  predecoded_ = std::move(predecoded);
}

ExecResult ScalarSim::run(std::uint64_t max_cycles) {
  if (!options_.fast_path) return run_reference(max_cycles);
  if (predecoded_ == nullptr) {
    predecoded_ =
        std::make_shared<const sim::PredecodedScalar>(sim::predecode(program_, machine_));
  }
  const bool harden =
      options_.harden || options_.faults != nullptr || options_.protect != nullptr;
  if (options_.profile != nullptr) {
    if (options_.observer != nullptr) {
      return harden ? run_fast<true, true, true>(max_cycles)
                    : run_fast<true, false, true>(max_cycles);
    }
    return harden ? run_fast<false, true, true>(max_cycles)
                  : run_fast<false, false, true>(max_cycles);
  }
  if (options_.observer != nullptr) {
    return harden ? run_fast<true, true, false>(max_cycles)
                  : run_fast<true, false, false>(max_cycles);
  }
  return harden ? run_fast<false, true, false>(max_cycles)
                : run_fast<false, false, false>(max_cycles);
}

template <bool kObserve, bool kHarden, bool kProfile>
ExecResult ScalarSim::run_fast(std::uint64_t max_cycles) {
  using sim::ScalarPInstr;
  const sim::PredecodedScalar& pre = *predecoded_;
  sim::ExecObserver* const obs = options_.observer;
  sim::ProfileCounts* const prof = options_.profile;
  const mach::ScalarTiming& timing = machine_.scalar;
  if constexpr (kProfile) {
    prof->frontend_fill = static_cast<std::uint64_t>(timing.pipeline_stages - 1);
  }

  std::vector<std::uint32_t> regs(pre.rf_slots, 0u);
  std::vector<std::uint64_t> ready(pre.rf_slots, 0ull);

  ExecResult result;
  std::uint64_t cycle = static_cast<std::uint64_t>(timing.pipeline_stages - 1);  // fill
  std::uint32_t pc = 0;

  auto set_trap = [&](sim::TrapReason reason, std::uint32_t detail) {
    result.status = sim::ExecStatus::Trapped;
    result.trap = sim::TrapInfo{reason, cycle, -1, detail};
    result.cycles = cycle;
    result.rf_state = regs;
  };

  // SEU state faults (sim/fault.hpp): the scalar model exposes only RF
  // state. The loop steps instruction-wise over jumping cycle counts, so
  // faults apply at the first instruction whose start cycle reached them —
  // identical in both execution paths, which share the cycle sequence.
  [[maybe_unused]] const sim::StateFault* fault_next = nullptr;
  [[maybe_unused]] const sim::StateFault* fault_end = nullptr;
  if (options_.faults != nullptr) {
    fault_next = options_.faults->faults.data();
    fault_end = fault_next + options_.faults->faults.size();
  }
  [[maybe_unused]] sim::ProtectState* const prot = options_.protect;
  [[maybe_unused]] auto apply_fault = [&](const sim::StateFault& f) {
    if (f.kind != sim::FaultKind::RfBit) return;
    if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= machine_.rfs.size()) return;
    if (f.index < 0 || f.index >= machine_.rfs[static_cast<std::size_t>(f.unit)].size) return;
    const std::uint32_t slot =
        pre.rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index);
    const std::uint32_t mask = sim::fault_mask(f);
    regs[slot] ^= mask;
    if (prot != nullptr) prot->on_rf_flip(slot, mask);
  };

  // Block-entry lookup for on_block_enter: entry pc -> block id, last block
  // wins when empty blocks share a pc. Only built when observing.
  std::vector<std::int32_t> entry_of;
  if constexpr (kObserve) {
    entry_of.assign(pre.instrs.size(), -1);
    for (std::size_t b = 0; b < program_.block_entry.size(); ++b) {
      const std::size_t entry = program_.block_entry[b];
      if (entry < pre.instrs.size()) entry_of[entry] = static_cast<std::int32_t>(b);
    }
    // Pipeline-fill cycles before the first instruction issues.
    if (timing.pipeline_stages > 1) {
      obs->on_overhead(0, sim::OverheadKind::FrontendFill,
                       static_cast<std::uint64_t>(timing.pipeline_stages - 1));
    }
  }

  while (true) {
    if constexpr (kHarden) {
      while (fault_next != fault_end && fault_next->cycle <= cycle) {
        apply_fault(*fault_next);
        ++fault_next;
      }
    }
    if (pc >= pre.instrs.size()) {
      // The PC ran off the end (corrupted fallthrough): fail closed.
      set_trap(sim::TrapReason::PcOutOfRange, pc);
      return result;
    }
    if constexpr (kHarden) {
      if (prot != nullptr &&
          prot->check_imem_fetch(pc) == sim::ProtectState::ImemAction::Detected) {
        set_trap(sim::TrapReason::ProtectionDetected, pc);
        return result;
      }
    }
    if constexpr (kObserve) {
      const std::int32_t blk = entry_of[pc];
      if (blk >= 0) obs->on_block_enter(cycle, static_cast<std::uint32_t>(blk));
      obs->on_exec(cycle, pc, false);
    }
    const ScalarPInstr& in = pre.instrs[pc];
    // Fail-closed: an illegal instruction (decode-time trap marker) traps
    // before any of its operands are read.
    if (in.trap != 0) {
      set_trap(static_cast<sim::TrapReason>(in.trap - 1), in.trap_detail);
      return result;
    }

    std::uint64_t issue = cycle;
    std::uint32_t a = in.a_val;
    std::uint32_t b = in.b_val;
    if (!in.a_imm) {
      issue = std::max(issue, ready[in.a_slot]);
      if constexpr (kHarden) {
        if (prot != nullptr && prot->check_rf_read(in.a_slot, &regs[in.a_slot])) {
          set_trap(sim::TrapReason::ProtectionDetected, in.a_slot);
          return result;
        }
      }
      a = regs[in.a_slot];
      if constexpr (kObserve) obs->on_rf_read(cycle, in.a_rf, in.a_reg);
    }
    if (!in.b_imm) {
      issue = std::max(issue, ready[in.b_slot]);
      if constexpr (kHarden) {
        if (prot != nullptr && prot->check_rf_read(in.b_slot, &regs[in.b_slot])) {
          set_trap(sim::TrapReason::ProtectionDetected, in.b_slot);
          return result;
        }
      }
      b = regs[in.b_slot];
      if constexpr (kObserve) obs->on_rf_read(cycle, in.b_rf, in.b_reg);
    }
    if constexpr (kObserve) {
      if (issue > cycle) obs->on_stall(cycle, issue - cycle);
    }
    if constexpr (kProfile) {
      if (issue > cycle) prof->stall[pc] += issue - cycle;
    }
    // Multi-word expansions: IMM prefixes, and (without a barrel shifter)
    // single-bit shift sequences or the variable-shift loop.
    if (in.var_shift) {
      const std::uint64_t extra = static_cast<std::uint64_t>(timing.variable_shift_setup) +
                                  static_cast<std::uint64_t>(timing.variable_shift_per_bit) *
                                      (b & 31);
      issue += extra;
      if constexpr (kObserve) {
        if (extra > 0) obs->on_overhead(cycle, sim::OverheadKind::VarShift, extra);
      }
      if constexpr (kProfile) prof->var_shift[pc] += extra;
    } else {
      issue += in.extra_words;
      if constexpr (kObserve) {
        if (in.extra_words > 0) {
          obs->on_overhead(cycle,
                           is_shift(in.op) ? sim::OverheadKind::VarShift
                                           : sim::OverheadKind::ImmWords,
                           in.extra_words);
        }
      }
      if constexpr (kProfile) {
        if (in.extra_words > 0) {
          (is_shift(in.op) ? prof->var_shift[pc] : prof->imm_words[pc]) += in.extra_words;
        }
      }
    }
    if (issue + 1 > max_cycles) {
      if constexpr (kProfile) prof->final_pc = pc;
      result.status = sim::ExecStatus::TimedOut;
      result.cycles = cycle;
      result.rf_state = regs;
      return result;
    }
    ++result.instrs;
    if constexpr (kHarden) {
      // `a` is the address of every memory operation.
      if (ir::is_memory(in.op) && !sim::mem_in_bounds(in.op, a, mem_.size())) {
        set_trap(sim::TrapReason::MemoryOutOfRange, a);
        return result;
      }
    }
    if constexpr (kObserve) obs->on_trigger(issue, -1, in.op);

    std::uint32_t value = 0;
    switch (in.op) {
      case Opcode::Add: value = a + b; break;
      case Opcode::Sub: value = a - b; break;
      case Opcode::Mul: value = a * b; break;
      case Opcode::And: value = a & b; break;
      case Opcode::Ior: value = a | b; break;
      case Opcode::Xor: value = a ^ b; break;
      case Opcode::Shl: value = a << (b & 31); break;
      case Opcode::Shru: value = a >> (b & 31); break;
      case Opcode::Shr:
        value = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
        break;
      case Opcode::Eq: value = a == b ? 1 : 0; break;
      case Opcode::Gt:
        value = static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0;
        break;
      case Opcode::Gtu: value = a > b ? 1 : 0; break;
      case Opcode::Sxhw: value = static_cast<std::uint32_t>(sign_extend(a, 16)); break;
      case Opcode::Sxqw: value = static_cast<std::uint32_t>(sign_extend(a, 8)); break;
      case Opcode::MovI:
      case Opcode::Copy: value = a; break;
      case Opcode::Ldw: value = mem_.load32(a); break;
      case Opcode::Ldh: value = static_cast<std::uint32_t>(sign_extend(mem_.load16(a), 16)); break;
      case Opcode::Ldhu: value = mem_.load16(a); break;
      case Opcode::Ldq: value = static_cast<std::uint32_t>(sign_extend(mem_.load8(a), 8)); break;
      case Opcode::Ldqu: value = mem_.load8(a); break;
      case Opcode::Stw:
        mem_.store32(a, b);
        if constexpr (kObserve) obs->on_store(issue, a, b, 4);
        break;
      case Opcode::Sth:
        mem_.store16(a, static_cast<std::uint16_t>(b));
        if constexpr (kObserve) obs->on_store(issue, a, b & 0xffffu, 2);
        break;
      case Opcode::Stq:
        mem_.store8(a, static_cast<std::uint8_t>(b));
        if constexpr (kObserve) obs->on_store(issue, a, b & 0xffu, 1);
        break;
      case Opcode::Jump: {
        if constexpr (kObserve) {
          if (timing.branch_penalty > 0) {
            obs->on_overhead(issue, sim::OverheadKind::BranchPenalty,
                             static_cast<std::uint64_t>(timing.branch_penalty));
          }
        }
        if constexpr (kProfile) {
          ++prof->taken[pc];
          prof->branch_penalty[pc] += static_cast<std::uint64_t>(timing.branch_penalty);
        }
        cycle = issue + 1 + static_cast<std::uint64_t>(timing.branch_penalty);
        pc = in.target_pc;
        result.cycles = cycle;
        continue;
      }
      case Opcode::Bnz: {
        const bool taken = a != 0;
        if constexpr (kObserve) {
          if (taken && timing.branch_penalty > 0) {
            obs->on_overhead(issue, sim::OverheadKind::BranchPenalty,
                             static_cast<std::uint64_t>(timing.branch_penalty));
          }
        }
        if constexpr (kProfile) {
          if (taken) {
            ++prof->taken[pc];
            prof->branch_penalty[pc] += static_cast<std::uint64_t>(timing.branch_penalty);
          }
        }
        cycle = issue + 1 + (taken ? static_cast<std::uint64_t>(timing.branch_penalty) : 0ull);
        pc = taken ? in.target_pc : pc + 1;
        result.cycles = cycle;
        continue;
      }
      case Opcode::Ret: {
        if constexpr (kProfile) prof->final_pc = pc;
        result.cycles = issue + 1;
        result.ret = a;
        result.rf_state = regs;
        return result;
      }
      case Opcode::Call:
      case Opcode::Select:
        // Rejected by the fail-closed decode (sim/harden.hpp): a trap
        // marker fires above before the switch is reached.
        TTSC_UNREACHABLE("calls/selects are lowered before scalar emission");
    }

    cycle = issue + 1;
    if (in.dst_slot >= 0) {
      const std::size_t slot = static_cast<std::size_t>(in.dst_slot);
      regs[slot] = value;
      if constexpr (kHarden) {
        if (prot != nullptr) prot->clear_rf(static_cast<std::uint32_t>(slot));
      }
      ready[slot] =
          issue + 1 + static_cast<std::uint64_t>(in.stall) + (timing.forwarding ? 0 : 1);
      if constexpr (kObserve) obs->on_rf_write(issue, in.dst_rf, in.dst_reg, value);
    }
    ++pc;
  }
}

ExecResult ScalarSim::run_reference(std::uint64_t max_cycles) {
  sim::ExecObserver* const obs = options_.observer;
  sim::ProfileCounts* const prof = options_.profile;
  const mach::ScalarTiming& timing = machine_.scalar;
  if (prof != nullptr) {
    prof->frontend_fill = static_cast<std::uint64_t>(timing.pipeline_stages - 1);
  }

  // Register state, indexed [rf][index].
  std::vector<std::vector<std::uint32_t>> regs;
  std::vector<std::vector<std::uint64_t>> ready;
  for (const mach::RegisterFile& rf : machine_.rfs) {
    regs.emplace_back(static_cast<std::size_t>(rf.size), 0u);
    ready.emplace_back(static_cast<std::size_t>(rf.size), 0ull);
  }

  // Flat-slot numbering matching sim/predecode.hpp rf_base, so protection
  // poison keys agree byte-for-byte with the fast path.
  std::vector<std::uint32_t> rf_base(machine_.rfs.size() + 1, 0u);
  for (std::size_t i = 0; i < machine_.rfs.size(); ++i) {
    rf_base[i + 1] = rf_base[i] + static_cast<std::uint32_t>(machine_.rfs[i].size);
  }
  sim::ProtectState* const prot = options_.protect;
  auto flat_slot = [&](const mach::PhysReg& r) {
    return rf_base[static_cast<std::size_t>(r.rf)] + static_cast<std::uint32_t>(r.index);
  };

  auto read = [&](const MOperand& s, std::uint64_t& at) -> std::uint32_t {
    if (s.is_imm()) return static_cast<std::uint32_t>(s.imm);
    const auto& r = s.reg;
    at = std::max(at, ready[static_cast<std::size_t>(r.rf)][static_cast<std::size_t>(r.index)]);
    return regs[static_cast<std::size_t>(r.rf)][static_cast<std::size_t>(r.index)];
  };

  auto capture_state = [&](ExecResult& r) {
    r.rf_state.clear();
    for (const auto& rf : regs) r.rf_state.insert(r.rf_state.end(), rf.begin(), rf.end());
  };

  ExecResult result;
  std::uint64_t cycle = static_cast<std::uint64_t>(timing.pipeline_stages - 1);  // fill
  std::uint32_t pc = 0;

  auto set_trap = [&](sim::TrapReason reason, std::uint32_t detail) {
    result.status = sim::ExecStatus::Trapped;
    result.trap = sim::TrapInfo{reason, cycle, -1, detail};
    result.cycles = cycle;
    capture_state(result);
  };

  // SEU state faults: same application point as the fast loop.
  const sim::StateFault* fault_next = nullptr;
  const sim::StateFault* fault_end = nullptr;
  if (options_.faults != nullptr) {
    fault_next = options_.faults->faults.data();
    fault_end = fault_next + options_.faults->faults.size();
  }
  auto apply_fault = [&](const sim::StateFault& f) {
    if (f.kind != sim::FaultKind::RfBit) return;
    if (f.unit < 0 || static_cast<std::size_t>(f.unit) >= regs.size()) return;
    auto& file = regs[static_cast<std::size_t>(f.unit)];
    if (f.index < 0 || static_cast<std::size_t>(f.index) >= file.size()) return;
    const std::uint32_t mask = sim::fault_mask(f);
    file[static_cast<std::size_t>(f.index)] ^= mask;
    if (prot != nullptr) {
      prot->on_rf_flip(
          rf_base[static_cast<std::size_t>(f.unit)] + static_cast<std::uint32_t>(f.index), mask);
    }
  };

  // Block-entry lookup for on_block_enter (same semantics as the fast loop).
  std::vector<std::int32_t> entry_of;
  if (obs != nullptr) {
    entry_of.assign(program_.instrs.size(), -1);
    for (std::size_t b = 0; b < program_.block_entry.size(); ++b) {
      const std::size_t entry = program_.block_entry[b];
      if (entry < program_.instrs.size()) entry_of[entry] = static_cast<std::int32_t>(b);
    }
    // Pipeline-fill cycles before the first instruction issues.
    if (timing.pipeline_stages > 1) {
      obs->on_overhead(0, sim::OverheadKind::FrontendFill,
                       static_cast<std::uint64_t>(timing.pipeline_stages - 1));
    }
  }

  while (true) {
    while (fault_next != fault_end && fault_next->cycle <= cycle) {
      apply_fault(*fault_next);
      ++fault_next;
    }
    if (pc >= program_.instrs.size()) {
      // The PC ran off the end (corrupted fallthrough): fail closed.
      set_trap(sim::TrapReason::PcOutOfRange, pc);
      return result;
    }
    if (prot != nullptr &&
        prot->check_imem_fetch(pc) == sim::ProtectState::ImemAction::Detected) {
      set_trap(sim::TrapReason::ProtectionDetected, pc);
      return result;
    }
    if (obs != nullptr) {
      if (entry_of[pc] >= 0) obs->on_block_enter(cycle, static_cast<std::uint32_t>(entry_of[pc]));
      obs->on_exec(cycle, pc, false);
    }
    const MInstr& in = program_.instrs[pc];
    // Fail-closed: the execute-time mirror of the decode-time checks on the
    // predecoded path (sim/harden.hpp), before any operand is read.
    const sim::DecodeCheck chk =
        sim::check_minstr(in, machine_, /*needs_fu=*/false, program_.block_entry.size());
    if (!chk.ok()) {
      set_trap(chk.reason(), chk.detail);
      return result;
    }

    std::uint64_t issue = cycle;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    auto check_read = [&](const MOperand& s) {
      return s.is_reg() && prot != nullptr &&
             prot->check_rf_read(flat_slot(s.reg),
                                 &regs[static_cast<std::size_t>(s.reg.rf)]
                                      [static_cast<std::size_t>(s.reg.index)]);
    };
    if (!in.srcs.empty() && check_read(in.srcs[0])) {
      set_trap(sim::TrapReason::ProtectionDetected, flat_slot(in.srcs[0].reg));
      return result;
    }
    if (!in.srcs.empty()) a = read(in.srcs[0], issue);
    if (in.srcs.size() > 1 && check_read(in.srcs[1])) {
      set_trap(sim::TrapReason::ProtectionDetected, flat_slot(in.srcs[1].reg));
      return result;
    }
    if (in.srcs.size() > 1) b = read(in.srcs[1], issue);
    if (obs != nullptr) {
      if (!in.srcs.empty() && in.srcs[0].is_reg()) {
        obs->on_rf_read(cycle, in.srcs[0].reg.rf, in.srcs[0].reg.index);
      }
      if (in.srcs.size() > 1 && in.srcs[1].is_reg()) {
        obs->on_rf_read(cycle, in.srcs[1].reg.rf, in.srcs[1].reg.index);
      }
      if (issue > cycle) obs->on_stall(cycle, issue - cycle);
    }
    if (prof != nullptr && issue > cycle) prof->stall[pc] += issue - cycle;
    // Multi-word expansions: IMM prefixes, and (without a barrel shifter)
    // single-bit shift sequences or the variable-shift loop.
    if (is_shift(in.op) && !timing.barrel_shifter && in.srcs.size() > 1 &&
        in.srcs[1].is_reg()) {
      const std::uint64_t extra = static_cast<std::uint64_t>(timing.variable_shift_setup) +
                                  static_cast<std::uint64_t>(timing.variable_shift_per_bit) *
                                      (b & 31);
      issue += extra;
      if (obs != nullptr && extra > 0) {
        obs->on_overhead(cycle, sim::OverheadKind::VarShift, extra);
      }
      if (prof != nullptr) prof->var_shift[pc] += extra;
    } else {
      const std::uint64_t extra = static_cast<std::uint64_t>(instr_words(timing, in) - 1);
      issue += extra;
      if (obs != nullptr && extra > 0) {
        obs->on_overhead(cycle,
                         is_shift(in.op) ? sim::OverheadKind::VarShift
                                         : sim::OverheadKind::ImmWords,
                         extra);
      }
      if (prof != nullptr && extra > 0) {
        (is_shift(in.op) ? prof->var_shift[pc] : prof->imm_words[pc]) += extra;
      }
    }
    if (issue + 1 > max_cycles) {
      if (prof != nullptr) prof->final_pc = pc;
      result.status = sim::ExecStatus::TimedOut;
      result.cycles = cycle;
      capture_state(result);
      return result;
    }
    ++result.instrs;
    // `a` is the address of every memory operation; fail closed on an
    // out-of-range access (always: this is not a hot path).
    if (ir::is_memory(in.op) && !sim::mem_in_bounds(in.op, a, mem_.size())) {
      set_trap(sim::TrapReason::MemoryOutOfRange, a);
      return result;
    }
    if (obs != nullptr) obs->on_trigger(issue, -1, in.op);

    std::uint32_t value = 0;
    bool writes = in.has_dst();
    switch (in.op) {
      case Opcode::Add: value = a + b; break;
      case Opcode::Sub: value = a - b; break;
      case Opcode::Mul: value = a * b; break;
      case Opcode::And: value = a & b; break;
      case Opcode::Ior: value = a | b; break;
      case Opcode::Xor: value = a ^ b; break;
      case Opcode::Shl: value = a << (b & 31); break;
      case Opcode::Shru: value = a >> (b & 31); break;
      case Opcode::Shr:
        value = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
        break;
      case Opcode::Eq: value = a == b ? 1 : 0; break;
      case Opcode::Gt:
        value = static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0;
        break;
      case Opcode::Gtu: value = a > b ? 1 : 0; break;
      case Opcode::Sxhw: value = static_cast<std::uint32_t>(sign_extend(a, 16)); break;
      case Opcode::Sxqw: value = static_cast<std::uint32_t>(sign_extend(a, 8)); break;
      case Opcode::MovI:
      case Opcode::Copy: value = a; break;
      case Opcode::Ldw: value = mem_.load32(a); break;
      case Opcode::Ldh: value = static_cast<std::uint32_t>(sign_extend(mem_.load16(a), 16)); break;
      case Opcode::Ldhu: value = mem_.load16(a); break;
      case Opcode::Ldq: value = static_cast<std::uint32_t>(sign_extend(mem_.load8(a), 8)); break;
      case Opcode::Ldqu: value = mem_.load8(a); break;
      case Opcode::Stw:
        mem_.store32(a, b);
        if (obs != nullptr) obs->on_store(issue, a, b, 4);
        break;
      case Opcode::Sth:
        mem_.store16(a, static_cast<std::uint16_t>(b));
        if (obs != nullptr) obs->on_store(issue, a, b & 0xffffu, 2);
        break;
      case Opcode::Stq:
        mem_.store8(a, static_cast<std::uint8_t>(b));
        if (obs != nullptr) obs->on_store(issue, a, b & 0xffu, 1);
        break;
      case Opcode::Jump: {
        if (obs != nullptr && timing.branch_penalty > 0) {
          obs->on_overhead(issue, sim::OverheadKind::BranchPenalty,
                           static_cast<std::uint64_t>(timing.branch_penalty));
        }
        if (prof != nullptr) {
          ++prof->taken[pc];
          prof->branch_penalty[pc] += static_cast<std::uint64_t>(timing.branch_penalty);
        }
        cycle = issue + 1 + static_cast<std::uint64_t>(timing.branch_penalty);
        pc = program_.block_entry[in.targets[0]];
        result.cycles = cycle;
        continue;
      }
      case Opcode::Bnz: {
        const bool taken = a != 0;
        if (obs != nullptr && taken && timing.branch_penalty > 0) {
          obs->on_overhead(issue, sim::OverheadKind::BranchPenalty,
                           static_cast<std::uint64_t>(timing.branch_penalty));
        }
        if (prof != nullptr && taken) {
          ++prof->taken[pc];
          prof->branch_penalty[pc] += static_cast<std::uint64_t>(timing.branch_penalty);
        }
        cycle = issue + 1 +
                (taken ? static_cast<std::uint64_t>(timing.branch_penalty) : 0ull);
        pc = taken ? program_.block_entry[in.targets[0]] : pc + 1;
        result.cycles = cycle;
        continue;
      }
      case Opcode::Ret: {
        if (prof != nullptr) prof->final_pc = pc;
        result.cycles = issue + 1;
        result.ret = in.srcs.empty() ? 0u : a;
        capture_state(result);
        return result;
      }
      case Opcode::Call:
      case Opcode::Select:
        // Rejected by check_minstr above; never reached.
        TTSC_UNREACHABLE("calls/selects are lowered before scalar emission");
    }

    cycle = issue + 1;
    if (writes) {
      auto& r = in.dst;
      regs[static_cast<std::size_t>(r.rf)][static_cast<std::size_t>(r.index)] = value;
      if (prot != nullptr) prot->clear_rf(flat_slot(r));
      const int stall = dependent_use_stall(timing, in.op);
      const std::uint64_t visible =
          issue + 1 + static_cast<std::uint64_t>(stall) + (timing.forwarding ? 0 : 1);
      ready[static_cast<std::size_t>(r.rf)][static_cast<std::size_t>(r.index)] = visible;
      if (obs != nullptr) obs->on_rf_write(issue, r.rf, r.index, value);
    }
    ++pc;
  }
}

}  // namespace ttsc::scalar
