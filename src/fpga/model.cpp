#include "fpga/model.hpp"

#include <algorithm>
#include <cmath>

#include "support/bits.hpp"

namespace ttsc::fpga {

using mach::Machine;
using mach::PortRef;

namespace {

// ---- calibration constants (global, tuned once against Table III) ----------

// Register files.
constexpr double kRamLutPerBitBank = 0.70;   // LUT per register bit per replica (d <= 64)
constexpr double kDeepRamExtraPerBit = 0.5;  // extra output muxing per bit beyond 64 deep
constexpr double kLvtLutPerEntry = 2.2;      // live-value table upkeep per entry per extra W
constexpr double kLvtMuxPerBit = 0.9;        // read-side bank select per bit per extra W

// Interconnect.
constexpr double kMuxLutPerBitPerInput = 1.0 / 3.0;  // LUT6 ~ 4:1 mux per bit
constexpr double kBusDecodeLut = 14.0;               // per-bus control decode
constexpr double kVliwOperandRouteLut = 40.0;        // per FU input port: imm/operand routing

// Function units (32-bit datapath).
constexpr int kAdderLut = 37;
constexpr int kLogicLut = 50;       // and/ior/xor shared LUT fabric
constexpr int kCompareLut = 52;     // eq/gt/gtu
constexpr int kExtendLut = 12;      // sxhw/sxqw
constexpr int kBarrelLut = 175;     // shl/shr/shru
constexpr int kMulGlueLut = 28;     // DSP cascade glue
constexpr int kResultMuxLutPerOpClass = 16;
constexpr int kLsuLut = 140;        // byte lane align/extend + address path
constexpr int kCuLut = 110;         // PC, branch target, fetch control
constexpr int kFuPipelineFf = 150;  // operand/trigger/result + valid bits
constexpr int kLsuFf = 120;
constexpr int kCuFf = 90;
constexpr int kScalarControlLut = 240;  // operation-triggered decode/hazard unit
constexpr int kScalarControlFf = 120;
constexpr int kScalarForwardLutPerStage = 55;

// Timing (ns).
constexpr double kBasePathNs = 3.55;
constexpr double kRfDepthNsPer64 = 0.40;  // beyond native 64-deep LUT RAM
constexpr double kRfReadPortNs = 0.33;    // per read port beyond the first
constexpr double kRfWritePortNs = 0.50;   // per write port beyond the first
constexpr double kIcMuxNsPerInputLog = 0.30;
constexpr double kScalarControlNs = 1.55;
constexpr double kVliwDecodeBaseNs = 0.30;   // slot decode + operand fetch
constexpr double kVliwDecodePerSlotNs = 0.15;
constexpr double kDeepPipelineBonusNs = 0.18;  // 5-stage balancing

int mux_lut(int inputs, int width) {
  if (inputs <= 1) return 0;
  return static_cast<int>(std::lround(width * (inputs - 1) * kMuxLutPerBitPerInput));
}

}  // namespace

RfCost rf_cost(const mach::RegisterFile& rf) {
  RfCost cost;
  const int banks = rf.write_ports;
  const int replicas_per_bank = rf.read_ports;
  double per_replica = rf.size * rf.width / 32.0 * kRamLutPerBitBank;
  if (rf.size > 64) {
    per_replica += rf.width * kDeepRamExtraPerBit * (static_cast<double>(rf.size) / 32.0 - 2.0);
  }
  cost.lut_as_ram = static_cast<int>(std::lround(per_replica * banks * replicas_per_bank));

  int logic = 0;
  if (rf.write_ports > 1) {
    logic += static_cast<int>(std::lround(rf.size * (rf.write_ports - 1) * kLvtLutPerEntry));
    logic += static_cast<int>(
        std::lround(rf.read_ports * rf.width * (rf.write_ports - 1) * kLvtMuxPerBit));
    cost.ff = rf.size * bits_for_codes(static_cast<std::uint64_t>(rf.write_ports));
  }
  cost.lut_total = cost.lut_as_ram + logic;
  return cost;
}

namespace {

int fu_lut_cost(const mach::FunctionUnit& fu, bool barrel_shifter) {
  if (fu.is_control_unit()) return kCuLut;
  bool has_add = false;
  bool has_logic = false;
  bool has_cmp = false;
  bool has_ext = false;
  bool has_shift = false;
  bool has_mul = false;
  bool has_mem = false;
  for (const mach::Operation& op : fu.ops) {
    using ir::Opcode;
    switch (op.opcode) {
      case Opcode::Add:
      case Opcode::Sub: has_add = true; break;
      case Opcode::And:
      case Opcode::Ior:
      case Opcode::Xor: has_logic = true; break;
      case Opcode::Eq:
      case Opcode::Gt:
      case Opcode::Gtu: has_cmp = true; break;
      case Opcode::Sxhw:
      case Opcode::Sxqw: has_ext = true; break;
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Shru: has_shift = true; break;
      case Opcode::Mul: has_mul = true; break;
      default:
        if (ir::is_memory(op.opcode)) has_mem = true;
        break;
    }
  }
  if (has_mem) return kLsuLut;
  int lut = 0;
  int classes = 0;
  if (has_add) lut += kAdderLut, ++classes;
  if (has_logic) lut += kLogicLut, ++classes;
  if (has_cmp) lut += kCompareLut, ++classes;
  if (has_ext) lut += kExtendLut, ++classes;
  if (has_shift && barrel_shifter) lut += kBarrelLut, ++classes;
  if (has_shift && !barrel_shifter) lut += kAdderLut / 2, ++classes;  // 1-bit shift path
  if (has_mul) lut += kMulGlueLut, ++classes;
  lut += classes * kResultMuxLutPerOpClass;
  return lut;
}

int fu_ff_cost(const mach::FunctionUnit& fu) {
  if (fu.is_control_unit()) return kCuFf;
  for (const mach::Operation& op : fu.ops) {
    if (ir::is_memory(op.opcode)) return kLsuFf;
  }
  // Extra pipeline registers for multi-cycle ops (shifter/multiplier).
  int max_lat = 1;
  for (const mach::Operation& op : fu.ops) max_lat = std::max(max_lat, op.latency);
  return kFuPipelineFf + (max_lat - 1) * 34;
}

/// Interconnect cost from the connectivity graph: every bus is a mux over
/// its sources; every destination port is a mux over the buses that reach
/// it; VLIW/scalar machines additionally pay per-input operand routing.
int ic_lut_cost(const Machine& m) {
  double lut = 0.0;
  const int width = 32;
  for (const mach::Bus& bus : m.buses) {
    int inputs = 1;  // immediate injection
    for (const PortRef& s : bus.sources) {
      inputs += s.kind == PortRef::Kind::RfRead
                    ? m.rfs[static_cast<std::size_t>(s.unit)].read_ports
                    : 1;
    }
    lut += mux_lut(inputs, width);
    lut += kBusDecodeLut;
  }
  // Destination-side bus selection.
  auto dest_fanin = [&](PortRef p) {
    int n = 0;
    for (const mach::Bus& bus : m.buses) {
      if (bus.has_dest(p)) ++n;
    }
    return n;
  };
  for (int f = 0; f < static_cast<int>(m.fus.size()); ++f) {
    lut += mux_lut(dest_fanin({PortRef::Kind::FuOperand, f}), width);
    lut += mux_lut(dest_fanin({PortRef::Kind::FuTrigger, f}), width);
  }
  for (int r = 0; r < static_cast<int>(m.rfs.size()); ++r) {
    lut += mux_lut(dest_fanin({PortRef::Kind::RfWrite, r}), width) *
           m.rfs[static_cast<std::size_t>(r)].write_ports;
  }
  if (m.model == mach::Model::Vliw) {
    // Operation-triggered datapaths route operands/immediates per FU input.
    for (const mach::FunctionUnit& fu : m.fus) {
      (void)fu;
      lut += 2 * kVliwOperandRouteLut;
    }
  } else if (m.model == mach::Model::Scalar) {
    lut *= 0.45;  // single-issue operand routing folds into the pipeline
  }
  return static_cast<int>(std::lround(lut));
}

int ic_ff_cost(const Machine& m) {
  // Socket/bus pipeline registers (TTA) or operand staging (VLIW/scalar).
  return static_cast<int>(m.buses.size()) * 8;
}

// ---- fault-protection hardware (mach::Protection) ---------------------------
//
// Structural like everything else: parity is an XOR tree per RF port
// (~width/5 LUT6s), SEC-DED a (39,32) Hsiao code — the stored word widens
// by 7 check bits (scaling the LUT-RAM replicas), each write port pays an
// encoder and each read port a syndrome decoder/corrector. DMR duplicates
// the checked FU and adds a word comparator; the mod-3 residue checker is a
// narrow end-around-carry adder tree. TMR triplicates the 1-bit guard
// latches with a majority voter. Rollback keeps a shadow copy of every RF
// (same LaForest-style LUT RAM), a small store-buffer FIFO and the
// checkpoint/restore FSM.
constexpr double kParityLutPerPortBit = 1.0 / 5.0;  // XOR tree, LUT6 fabric
constexpr double kSecDedStorageScale = 7.0 / 32.0;  // 39-bit codeword replicas
constexpr int kSecDedEncodeLut = 28;                // per write port
constexpr int kSecDedDecodeLut = 70;                // syndrome + corrector per read port
constexpr int kDmrCompareLut = 11;                  // 32-bit equality reduce
constexpr int kDmrStageFf = 32;                     // duplicate result register
constexpr int kResidueLut = 16;                     // mod-3 residue + compare
constexpr int kResidueFf = 2;
constexpr int kTmrVoterLut = 1;                     // per guard: 3-input majority
constexpr int kImemParityCheckLut = 7;              // fetch-path word check
constexpr int kImemSecDedCheckLut = 70;             // fetch-path decode/correct
constexpr int kRollbackFifoLut = 64;                // store buffer between checkpoints
constexpr int kRollbackFsmLut = 80;                 // checkpoint/restore sequencing
constexpr int kRollbackFsmFf = 48;

// Timing: the decoder/checker sits on the consumer side of the protected
// read path, so the slowest enabled mechanism stretches the critical path.
constexpr double kParityCheckNs = 0.5;
constexpr double kSecDedCheckNs = 1.1;
constexpr double kDmrCompareNs = 0.7;
constexpr double kResidueCheckNs = 0.45;

struct ProtectCost {
  int lut = 0;
  int ff = 0;
};

ProtectCost protect_cost(const Machine& m) {
  ProtectCost c;
  const mach::Protection& p = m.protect;
  if (p.rf == mach::Protection::Code::Parity) {
    for (const mach::RegisterFile& rf : m.rfs) {
      const int ports = rf.read_ports + rf.write_ports;
      c.lut += static_cast<int>(std::lround(ports * rf.width * kParityLutPerPortBit));
    }
  } else if (p.rf == mach::Protection::Code::SecDed) {
    for (const mach::RegisterFile& rf : m.rfs) {
      c.lut += static_cast<int>(std::lround(rf_cost(rf).lut_as_ram * kSecDedStorageScale));
      c.lut += rf.write_ports * kSecDedEncodeLut + rf.read_ports * kSecDedDecodeLut;
    }
  }
  if (p.fu != mach::Protection::FuCheck::None) {
    const bool barrel = m.model != mach::Model::Scalar || m.scalar.barrel_shifter;
    for (const mach::FunctionUnit& fu : m.fus) {
      if (fu.is_control_unit()) continue;
      if (p.fu == mach::Protection::FuCheck::Dmr) {
        c.lut += fu_lut_cost(fu, barrel) + kDmrCompareLut;
        c.ff += kDmrStageFf;
      } else {
        c.lut += kResidueLut;
        c.ff += kResidueFf;
      }
    }
  }
  if (p.guard_tmr) {
    c.lut += m.guard_regs * kTmrVoterLut;
    c.ff += m.guard_regs * 2;  // two extra copies of each 1-bit latch
  }
  if (p.imem == mach::Protection::Code::Parity) {
    c.lut += kImemParityCheckLut;
  } else if (p.imem == mach::Protection::Code::SecDed) {
    c.lut += kImemSecDedCheckLut;
  }
  if (p.rollback) {
    for (const mach::RegisterFile& rf : m.rfs) c.lut += rf_cost(rf).lut_total;
    c.lut += kRollbackFifoLut + kRollbackFsmLut;
    c.ff += kRollbackFsmFf;
  }
  return c;
}

double protect_path_ns(const mach::Protection& p) {
  double ns = 0.0;
  if (p.rf == mach::Protection::Code::Parity || p.imem == mach::Protection::Code::Parity) {
    ns = std::max(ns, kParityCheckNs);
  }
  if (p.rf == mach::Protection::Code::SecDed || p.imem == mach::Protection::Code::SecDed) {
    ns = std::max(ns, kSecDedCheckNs);
  }
  if (p.fu == mach::Protection::FuCheck::Dmr) ns = std::max(ns, kDmrCompareNs);
  if (p.fu == mach::Protection::FuCheck::Residue3) ns = std::max(ns, kResidueCheckNs);
  return ns;
}

}  // namespace

AreaReport estimate_area(const Machine& m) {
  AreaReport a;
  for (const mach::RegisterFile& rf : m.rfs) {
    const RfCost c = rf_cost(rf);
    a.rf_lut += c.lut_total;
    a.rf_lut_as_ram += c.lut_as_ram;
    a.ff += c.ff;
    // Port staging registers (read data / write data+address per port).
    a.ff += static_cast<int>(std::lround((rf.read_ports + rf.write_ports) * rf.width * 0.9));
  }
  for (const mach::FunctionUnit& fu : m.fus) {
    const bool barrel = m.model != mach::Model::Scalar || m.scalar.barrel_shifter;
    a.fu_lut += fu_lut_cost(fu, barrel);
    a.ff += fu_ff_cost(fu);
    for (const mach::Operation& op : fu.ops) {
      if (op.opcode == ir::Opcode::Mul) {
        a.dsp += 3;  // 32x32 multiplier on Zynq DSP48E1 slices
        break;
      }
    }
  }
  a.ic_lut = ic_lut_cost(m);
  a.ff += ic_ff_cost(m);

  // Control: instruction fetch/dispatch for operation-triggered models is
  // heavier (decode + hazard handling); TTA decode is near-trivial
  // (Section III: "requires only a little hardware logic to decode").
  if (m.model == mach::Model::Scalar) {
    a.control_lut = kScalarControlLut + (m.scalar.pipeline_stages > 3
                                             ? kScalarForwardLutPerStage *
                                                   (m.scalar.pipeline_stages - 3)
                                             : 0);
    a.ff += kScalarControlFf + 40 * (m.scalar.pipeline_stages - 3);
  } else if (m.model == mach::Model::Vliw) {
    a.control_lut = 90 + 45 * static_cast<int>(m.vliw_slots.size());
    a.ff += 80;
  } else {
    a.control_lut = 40 + 6 * static_cast<int>(m.buses.size());
    a.ff += 40;
    // Guard registers + per-bus squash gating.
    a.control_lut += m.guard_regs * (4 + 2 * static_cast<int>(m.buses.size()));
    a.ff += m.guard_regs * 2;
  }

  // Declared fault protection: purely additive and gated on the machine
  // actually declaring any, so every unprotected estimate is bit-unchanged.
  if (m.protect.any()) {
    const ProtectCost pc = protect_cost(m);
    a.protect_lut = pc.lut;
    a.ff += pc.ff;
  }

  a.core_lut = a.rf_lut + a.ic_lut + a.fu_lut + a.control_lut + a.protect_lut;
  a.slices = static_cast<int>(std::lround(
      std::max(a.core_lut / 4.0, a.ff / 8.0) * 1.35));
  return a;
}

TimingReport estimate_timing(const Machine& m) {
  double ns = kBasePathNs;

  // Register file access dominates with many ports / deep files.
  double rf_ns = 0.0;
  for (const mach::RegisterFile& rf : m.rfs) {
    double t = kRfDepthNsPer64 * (std::ceil(rf.size / 64.0) - 1.0) +
               kRfReadPortNs * (rf.read_ports - 1) + kRfWritePortNs * (rf.write_ports - 1);
    rf_ns = std::max(rf_ns, t);
  }
  ns += rf_ns;

  // Interconnect depth: widest destination mux (log scale).
  int max_fanin = 1;
  auto dest_fanin = [&](PortRef p) {
    int n = 0;
    for (const mach::Bus& bus : m.buses) {
      if (bus.has_dest(p)) ++n;
    }
    return n;
  };
  for (int f = 0; f < static_cast<int>(m.fus.size()); ++f) {
    max_fanin = std::max(max_fanin, dest_fanin({PortRef::Kind::FuOperand, f}));
    max_fanin = std::max(max_fanin, dest_fanin({PortRef::Kind::FuTrigger, f}));
  }
  int max_bus_sources = 1;
  for (const mach::Bus& bus : m.buses) {
    max_bus_sources = std::max(max_bus_sources, static_cast<int>(bus.sources.size()) + 1);
  }
  ns += kIcMuxNsPerInputLog * bits_for_codes(static_cast<std::uint64_t>(max_fanin)) +
        0.5 * kIcMuxNsPerInputLog * bits_for_codes(static_cast<std::uint64_t>(max_bus_sources));

  if (m.model == mach::Model::Scalar) {
    ns += kScalarControlNs;
    if (m.scalar.pipeline_stages >= 5) ns -= kDeepPipelineBonusNs;
  } else if (m.model == mach::Model::Vliw) {
    ns += kVliwDecodeBaseNs + kVliwDecodePerSlotNs * static_cast<double>(m.vliw_slots.size());
  }

  if (m.protect.any()) ns += protect_path_ns(m.protect);

  TimingReport t;
  t.critical_path_ns = ns;
  t.fmax_mhz = 1000.0 / ns;
  return t;
}

}  // namespace ttsc::fpga
