// Analytical FPGA resource and timing model (the offline substitute for the
// paper's Vivado 2017.2 synthesis runs on the Zynq Z7020, speed grade -1).
//
// The model is structural: every estimate is derived from the machine
// description — register file geometry and port counts (LaForest–Steffan
// style distributed-RAM multiporting: one bank per write port, one replica
// per read port, plus live-value-table bookkeeping for multi-write files),
// interconnect multiplexer fan-ins counted from the bus/socket connectivity
// graph, per-operation function unit costs, and a critical-path estimate
// over the same structures. Coefficients are calibrated once, globally,
// against Table III; per-machine deviations are expected and are reported
// in EXPERIMENTS.md rather than tuned away.
#pragma once

#include "mach/machine.hpp"

namespace ttsc::fpga {

struct RfCost {
  int lut_total = 0;    // LUTs including RAM LUTs
  int lut_as_ram = 0;   // LUTs used as distributed RAM
  int ff = 0;           // live-value table + output registers
};

struct AreaReport {
  int core_lut = 0;
  int rf_lut = 0;
  int rf_lut_as_ram = 0;
  int ic_lut = 0;
  int fu_lut = 0;
  int control_lut = 0;
  /// Fault-protection hardware (mach::Protection): code encoders/decoders
  /// on RF ports and the fetch path, FU result checkers, TMR guard voters
  /// and the checkpoint-rollback shadow state. Zero for unprotected
  /// machines and included in core_lut, so every unprotected estimate is
  /// unchanged and the protection overhead is directly reportable as
  /// ΔLUT in the resilience-efficiency tables.
  int protect_lut = 0;
  int ff = 0;
  int dsp = 0;
  int slices = 0;  // for the Fig. 6 efficiency scatter
};

struct TimingReport {
  double critical_path_ns = 0.0;
  double fmax_mhz = 0.0;
};

/// Distributed-RAM register file cost (LaForest & Steffan [28]).
RfCost rf_cost(const mach::RegisterFile& rf);

/// Full machine area breakdown.
AreaReport estimate_area(const mach::Machine& machine);

/// Critical-path / fmax estimate.
TimingReport estimate_timing(const mach::Machine& machine);

}  // namespace ttsc::fpga
