// Instruction-memory cost model (Section V-D: "It is thus not typical to
// include a large dedicated on-chip program memory per core...").
//
// On the Zynq Z7020 the on-chip program store is built from BRAM36 blocks
// (36 Kib each, at most 72 bits wide per block). An instruction word of
// width W therefore needs at least ceil(W/72) parallel blocks, and the
// whole image at least ceil(bits/36Kib) blocks — whichever is larger. This
// quantifies the paper's discussion of how the wider TTA instructions
// translate into instruction-memory cost, and how compression (ref [24])
// buys most of it back.
#pragma once

#include <cstdint>

#include "tta/compress.hpp"

namespace ttsc::fpga {

constexpr std::uint64_t kBram36Bits = 36 * 1024;
constexpr int kBram36MaxWidth = 72;

/// BRAM36 blocks for a program store of `image_bits` total bits delivered
/// `instruction_bits` per cycle.
int bram_blocks(std::uint64_t image_bits, int instruction_bits);

/// BRAM36 blocks for a dictionary-compressed store: the index stream plus
/// the dictionary ROM (each sized and width-constrained separately; the
/// literal pool rides in the dictionary's spare capacity or its own block).
int bram_blocks_compressed(const tta::CompressionResult& compressed, int instruction_bits);

}  // namespace ttsc::fpga
