#include "fpga/imem.hpp"

#include <algorithm>

#include "support/bits.hpp"

namespace ttsc::fpga {

int bram_blocks(std::uint64_t image_bits, int instruction_bits) {
  if (image_bits == 0) return 0;
  const int width_blocks =
      static_cast<int>((instruction_bits + kBram36MaxWidth - 1) / kBram36MaxWidth);
  const int capacity_blocks = static_cast<int>((image_bits + kBram36Bits - 1) / kBram36Bits);
  return std::max(width_blocks, capacity_blocks);
}

int bram_blocks_compressed(const tta::CompressionResult& compressed, int instruction_bits) {
  // Index stream: narrow words, capacity-bound.
  const int index_blocks = bram_blocks(compressed.compressed_bits,
                                       std::max(1, compressed.index_bits));
  // Dictionary ROM: full-width instruction patterns plus the literal pool.
  const int dict_blocks =
      bram_blocks(compressed.dictionary_bits + compressed.pool_bits, instruction_bits);
  return index_blocks + dict_blocks;
}

}  // namespace ttsc::fpga
